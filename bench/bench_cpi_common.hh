/**
 * @file
 * Shared implementation of the translation-CPI breakdown figures
 * (paper Figures 10 and 11).
 */

#ifndef ANCHORTLB_BENCH_BENCH_CPI_COMMON_HH
#define ANCHORTLB_BENCH_BENCH_CPI_COMMON_HH

#include <iostream>

#include "bench_util.hh"
#include "trace/workload.hh"

namespace atlb::bench
{

/** Print the Fig. 10/11-style CPI breakdown for one scenario. */
inline void
printCpiBreakdown(ScenarioKind scenario, const std::string &figure)
{
    ExperimentContext ctx(figureOptions());

    Table table(figure + ": translation cycles per instruction "
                         "(L2-hit + coalesced-hit + page-walk)",
                {"workload", "scheme", "L2 hit", "coalesced", "walk",
                 "total CPI"});

    for (const auto &workload : paperWorkloadNames()) {
        for (const Scheme scheme : comparedSchemes()) {
            const SimResult r = ctx.run(workload, scenario, scheme);
            table.beginRow();
            table.cell(workload);
            table.cell(std::string(schemeName(scheme)));
            table.cell(r.cpiL2(), 4);
            table.cell(r.cpiCoalesced(), 4);
            table.cell(r.cpiWalk(), 4);
            table.cell(r.translationCpi(), 4);
        }
    }
    table.printAscii(std::cout);
}

} // namespace atlb::bench

#endif // ANCHORTLB_BENCH_BENCH_CPI_COMMON_HH
