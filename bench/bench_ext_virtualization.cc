/**
 * @file
 * Extension experiment: hybrid coalescing under virtualization.
 *
 * The paper's related work (Section 6) notes that virtualized systems
 * "exhibit more severe performance drops by TLB misses" because every
 * miss pays a two-dimensional walk (up to 24 memory references for
 * 4-level x 4-level paging). Coverage schemes therefore matter *more*
 * under a hypervisor. This bench runs baseline/THP/anchor natively and
 * nested (guest mapping x host mapping, anchors clipped to
 * host-contiguous runs) and reports the CPI amplification.
 */

#include <iostream>

#include "bench_util.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

struct Row
{
    double native_cpi = 0.0;
    double nested_cpi = 0.0;
    std::uint64_t misses = 0;
};

Row
runOne(Mmu &mmu, const WorkloadSpec &spec, std::uint64_t accesses,
       const PageTable *host_table, const MemoryMap *host_map)
{
    Row row;
    {
        PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), accesses, 3);
        const SimResult r =
            runSimulation(mmu, trace, spec.mem_per_instr);
        row.native_cpi = r.translationCpi();
        row.misses = r.misses();
    }
    mmu.setNested(host_table, host_map);
    {
        PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), accesses, 3);
        // Stats accumulate; measure the nested pass alone.
        const MmuStats before = mmu.stats();
        MemAccess a;
        while (trace.next(a))
            mmu.translate(a.vaddr);
        const MmuStats &after = mmu.stats();
        const double instructions =
            static_cast<double>(after.accesses - before.accesses) /
            spec.mem_per_instr;
        row.nested_cpi =
            static_cast<double>(after.translation_cycles -
                                before.translation_cycles) /
            instructions;
    }
    return row;
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Extension — translation CPI native vs nested (virtualized)");

    const SimOptions opts = bench::figureOptions();
    Table table("canneal & graph500, medium-contiguity guest on a "
                "demand-paged host",
                {"workload", "scheme", "native CPI", "nested CPI",
                 "amplification"});

    for (const char *wl : {"canneal", "graph500"}) {
        WorkloadSpec spec = findWorkload(wl);
        spec.footprint_bytes = static_cast<std::uint64_t>(
            static_cast<double>(spec.footprint_bytes) *
            opts.footprint_scale);

        ScenarioParams gp;
        gp.footprint_pages = spec.footprintPages();
        gp.seed = opts.seed;
        const MemoryMap guest =
            buildScenario(ScenarioKind::MedContig, gp);

        // Host: demand-style mapping over the guest-physical space.
        Ppn max_gpa{0};
        for (const Chunk &c : guest.chunks())
            max_gpa = std::max(max_gpa, c.ppn + c.pages);
        ScenarioParams hp;
        hp.footprint_pages = max_gpa.raw() + 8;
        hp.va_base = Vpn{0};
        hp.seed = opts.seed + 99;
        hp.demand_run_pages = 4096;
        const MemoryMap host_map =
            buildScenario(ScenarioKind::Demand, hp);
        const PageTable host_table = buildPageTable(host_map, true);

        const MmuConfig cfg = opts.mmu;
        const std::uint64_t accesses = opts.accesses / 2;

        {
            const PageTable t = buildPageTable(guest, false);
            BaselineMmu mmu(cfg, t, "base");
            const Row r =
                runOne(mmu, spec, accesses, &host_table, &host_map);
            table.beginRow();
            table.cell(std::string(wl));
            table.cell(std::string("Base"));
            table.cell(r.native_cpi, 4);
            table.cell(r.nested_cpi, 4);
            table.cell(r.native_cpi > 0 ? r.nested_cpi / r.native_cpi
                                        : 0.0,
                       2);
        }
        {
            const PageTable t = buildPageTable(guest, true);
            BaselineMmu mmu(cfg, t, "thp");
            const Row r =
                runOne(mmu, spec, accesses, &host_table, &host_map);
            table.beginRow();
            table.cell(std::string(wl));
            table.cell(std::string("THP"));
            table.cell(r.native_cpi, 4);
            table.cell(r.nested_cpi, 4);
            table.cell(r.native_cpi > 0 ? r.nested_cpi / r.native_cpi
                                        : 0.0,
                       2);
        }
        {
            const std::uint64_t d =
                selectAnchorDistance(guest.contiguityHistogram())
                    .distance;
            PageTable t = buildAnchorPageTable(guest, AnchorDist::fromPages(d));
            AnchorMmu mmu(cfg, t, AnchorDist::fromPages(d));
            const Row r =
                runOne(mmu, spec, accesses, &host_table, &host_map);
            table.beginRow();
            table.cell(std::string(wl));
            table.cell(std::string("Dynamic"));
            table.cell(r.native_cpi, 4);
            table.cell(r.nested_cpi, 4);
            table.cell(r.native_cpi > 0 ? r.nested_cpi / r.native_cpi
                                        : 0.0,
                       2);
        }
    }
    table.printAscii(std::cout);
    std::cout
        << "\nExpected shape: nesting multiplies every walk's cost "
           "(~24 refs vs 4), so the\nbaseline's CPI amplifies hardest; "
           "the anchor scheme, having removed most\nwalks, keeps nested "
           "translation CPI a small fraction of the nested baseline —\n"
           "coverage matters even more under a hypervisor (paper "
           "Section 6).\n";
    return 0;
}
