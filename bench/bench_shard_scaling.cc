/**
 * @file
 * Shard-scaling bench: serial vs K-sharded within-cell simulation.
 *
 * For every paper workload (MedContig, Base and Dynamic-anchor schemes)
 * runs the cell serially and at K in {2, 4, 8} shards, and reports
 * wall-clock speedup plus the accuracy cost: the absolute per-access
 * miss-rate delta (the contract metric of sharded_runner.hh) and the
 * relative page-walk error of the merged sharded result against the
 * exact serial run. Results go to stdout as a table and to
 * BENCH_shard_scaling.json (or argv[1]) for CI.
 *
 * Read the speedups with the host in mind: on a single-hardware-thread
 * machine sharding only adds overhead (see EXPERIMENTS.md); the
 * accuracy columns are the machine-independent payload.
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 200k here), ANCHORTLB_SCALE,
 * ANCHORTLB_THREADS, ANCHORTLB_SHARD_WARMUP.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "sim/sharded_runner.hh"
#include "stats/json_writer.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

constexpr unsigned kShardCounts[] = {2, 4, 8};

struct ShardPoint
{
    unsigned shards = 0;
    double seconds = 0.0;
    double speedup = 0.0;
    std::uint64_t walks = 0;
    double miss_rate_delta = 0.0;   //!< contract metric: walks/access
    double l2_fraction_delta = 0.0; //!< informational
    double relative_error = 0.0;
};

struct CellReport
{
    std::string workload;
    std::string scheme;
    std::uint64_t serial_walks = 0;
    double serial_seconds = 0.0;
    std::vector<ShardPoint> points;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

CellReport
measureCell(const SimOptions &base_options, const std::string &workload,
            ScenarioKind scenario, Scheme scheme)
{
    const WorkloadSpec spec = scaledWorkloadSpec(base_options, workload);
    const MemoryMap map =
        buildScenario(scenario, scenarioParamsFor(base_options, spec));
    std::uint64_t distance = 0;
    PageTable table;
    if (scheme == Scheme::Anchor) {
        distance = selectAnchorDistance(map.contiguityHistogram()).distance;
        table = buildAnchorPageTable(map, AnchorDist::fromPages(distance));
    } else {
        table = buildPageTable(map, false);
    }

    CellReport report;
    report.workload = workload;
    report.scheme = schemeName(scheme);

    SimOptions serial = base_options;
    serial.shards = 1;
    const auto serial_start = std::chrono::steady_clock::now();
    const SimResult serial_res = runSchemeCell(serial, spec, scenario, map,
                                               table, scheme, distance);
    report.serial_seconds = secondsSince(serial_start);
    report.serial_walks = serial_res.misses();

    for (const unsigned k : kShardCounts) {
        SimOptions opts = base_options;
        opts.shards = k;
        const auto start = std::chrono::steady_clock::now();
        const ShardedResult sharded = runShardedCell(
            opts, spec, scenario, map, table, scheme, distance);
        ShardPoint point;
        point.shards = k;
        point.seconds = secondsSince(start);
        point.speedup = point.seconds > 0.0
                            ? report.serial_seconds / point.seconds
                            : 0.0;
        point.walks = sharded.merged.misses();

        ShardAccuracy acc;
        acc.serial = serial_res;
        acc.sharded = sharded.merged;
        acc.shard_count = k;
        point.miss_rate_delta = acc.missRateDelta();
        point.l2_fraction_delta = acc.l2FractionDelta();
        point.relative_error = acc.relativeMissError();
        report.points.push_back(point);
    }
    return report;
}

void
emitJson(const std::string &path, const SimOptions &opts,
         ScenarioKind scenario, const std::vector<CellReport> &cells,
         double max_delta, double max_relative)
{
    std::ofstream out(path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", path);
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_shard_scaling");
    json.field("scenario", scenarioName(scenario));
    json.field("accesses_per_cell", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("shard_warmup", opts.shard_warmup);
    json.field("threads", opts.threads);
    json.field("hardware_concurrency",
               static_cast<std::uint64_t>(hardwareThreadCount()));
    json.field("miss_rate_epsilon", shardMissRateEpsilon);
    json.key("cells");
    json.beginArray();
    for (const CellReport &cell : cells) {
        json.beginObject();
        json.field("workload", cell.workload);
        json.field("scheme", cell.scheme);
        json.field("serial_walks", cell.serial_walks);
        json.field("serial_seconds", cell.serial_seconds);
        json.key("sharded");
        json.beginArray();
        for (const ShardPoint &p : cell.points) {
            json.beginObject();
            json.field("shards", p.shards);
            json.field("walks", p.walks);
            json.field("seconds", p.seconds);
            json.field("speedup", p.speedup);
            json.field("miss_rate_delta", p.miss_rate_delta);
            json.field("l2_fraction_delta", p.l2_fraction_delta);
            json.field("relative_miss_error", p.relative_error);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.field("max_miss_rate_delta", max_delta);
    json.field("max_relative_miss_error", max_relative);
    json.field("all_within_epsilon", max_delta <= shardMissRateEpsilon);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 200'000;
    opts.shards = 1; // each measurement sets its own K

    const ScenarioKind scenario = ScenarioKind::MedContig;
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_shard_scaling.json";

    printHeader("Within-cell shard scaling: serial vs K in {2, 4, 8}");
    std::cout << "scenario " << scenarioName(scenario) << ", "
              << opts.accesses << " accesses/cell, warmup "
              << opts.shard_warmup << ", threads " << opts.threads
              << " (hardware concurrency " << hardwareThreadCount()
              << ")\n\n";

    Table table("Shard scaling (speedup x / miss-rate delta)",
                {"workload", "scheme", "serial walks", "K=2", "K=4",
                 "K=8"});
    std::vector<CellReport> cells;
    double max_delta = 0.0, max_relative = 0.0;
    for (const auto &workload : paperWorkloadNames()) {
        for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
            const CellReport cell =
                measureCell(opts, workload, scenario, scheme);
            table.beginRow();
            table.cell(cell.workload);
            table.cell(cell.scheme);
            table.cell(cell.serial_walks);
            for (const ShardPoint &p : cell.points) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.2fx / %.5f",
                              p.speedup, p.miss_rate_delta);
                table.cell(std::string(buf));
                max_delta = std::max(max_delta, p.miss_rate_delta);
                max_relative = std::max(max_relative, p.relative_error);
            }
            cells.push_back(cell);
        }
    }
    table.printAscii(std::cout);
    std::cout << "\nmax |miss-rate delta| (walks/access) " << max_delta
              << " (declared epsilon " << shardMissRateEpsilon << "), "
              << "max relative walk error " << max_relative << "\n";

    emitJson(json_path, opts, scenario, cells, max_delta, max_relative);
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
