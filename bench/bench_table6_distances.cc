/**
 * @file
 * Paper Table 6: anchor distances selected by the dynamic distance
 * selection algorithm, per workload and mapping scenario.
 */

#include <iostream>

#include "bench_util.hh"
#include "os/distance_selector.hh"
#include "trace/workload.hh"

namespace
{

std::string
humanPages(std::uint64_t pages)
{
    if (pages >= 1024 && pages % 1024 == 0)
        return std::to_string(pages / 1024) + "K";
    return std::to_string(pages);
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Table 6 — dynamically selected anchor distances (pages)");
    ExperimentContext ctx(bench::figureOptions());

    std::vector<std::string> headers = {"workload"};
    for (const ScenarioKind k : allScenarios)
        headers.emplace_back(scenarioName(k));
    Table table("Table 6: anchor distance chosen by Algorithm 1",
                headers);

    for (const auto &workload : paperWorkloadNames()) {
        table.beginRow();
        table.cell(workload);
        for (const ScenarioKind k : allScenarios)
            table.cell(humanPages(ctx.dynamicDistance(workload, k)));
    }
    table.printAscii(std::cout);

    // Distance-selection stability (paper Section 5.2.3): re-running
    // the selector over epochs on a stable mapping never changes the
    // distance after the initial pick.
    std::uint64_t changes = 0, epochs = 0;
    for (const auto &workload : paperWorkloadNames()) {
        DistanceController ctl;
        const Histogram hist =
            ctx.mapping(workload, ScenarioKind::Demand)
                .contiguityHistogram();
        for (int e = 0; e < 12; ++e)
            ctl.epoch(hist);
        changes += ctl.changes();
        epochs += ctl.epochs();
    }
    std::cout << "\nStability check: " << changes
              << " distance changes over " << epochs
              << " epochs (expected: at most one initial selection per "
                 "workload — a workload whose selection equals the boot "
                 "default records none; never any re-selection).\n";
    std::cout << "\nExpected shape (paper Table 6): low contiguity -> 4 "
                 "everywhere; medium -> 16-32;\nhigh/max -> hundreds to "
                 "64K; demand/eager -> large for big-array codes "
                 "(mcf,\ngups, graph500: 16K-64K) and tiny (2-4) for "
                 "omnetpp/soplex/sphinx3/xalancbmk.\n";
    return 0;
}
