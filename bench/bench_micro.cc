/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator's hot paths:
 * TLB lookups, MMU translation pipelines, buddy allocation, page-table
 * walks and anchor sweeps, trace generation, and distance selection.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/buddy_allocator.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "tlb/set_assoc_tlb.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

constexpr Vpn bench_base{0x7f0000000ULL};

MemoryMap
benchMap(std::uint64_t pages, ScenarioKind kind = ScenarioKind::MedContig)
{
    ScenarioParams p;
    p.footprint_pages = pages;
    p.seed = 99;
    p.demand_run_pages = 128;
    p.eager_run_pages = 128;
    return buildScenario(kind, p);
}

void
BM_TlbLookupHit(benchmark::State &state)
{
    SetAssocTlb tlb(1024, 8, "bench");
    for (std::uint64_t k = 0; k < 1024; ++k) {
        TlbEntry e;
        e.kind = EntryKind::Page4K;
        e.key = TlbKey{k};
        e.ppn = Ppn{k};
        e.valid = true;
        tlb.insert(e);
    }
    std::uint64_t k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(EntryKind::Page4K, TlbKey{k}));
        k = (k + 1) & 1023;
    }
}
BENCHMARK(BM_TlbLookupHit);

void
BM_TlbLookupMiss(benchmark::State &state)
{
    SetAssocTlb tlb(1024, 8, "bench");
    std::uint64_t k = 1 << 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(EntryKind::Page4K, TlbKey{k}));
        ++k;
    }
}
BENCHMARK(BM_TlbLookupMiss);

void
BM_TlbInsertEvict(benchmark::State &state)
{
    SetAssocTlb tlb(1024, 8, "bench");
    std::uint64_t k = 0;
    for (auto _ : state) {
        TlbEntry e;
        e.kind = EntryKind::Page4K;
        e.key = TlbKey{++k};
        e.ppn = Ppn{k};
        e.valid = true;
        tlb.insert(e);
    }
}
BENCHMARK(BM_TlbInsertEvict);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    const auto order = static_cast<unsigned>(state.range(0));
    BuddyAllocator buddy(1 << 20);
    for (auto _ : state) {
        const Ppn p = buddy.allocate(order);
        benchmark::DoNotOptimize(p);
        buddy.free(p, order);
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(4)->Arg(9);

void
BM_PageWalk(benchmark::State &state)
{
    const MemoryMap map = benchMap(1 << 16);
    const PageTable table = buildPageTable(map, true);
    Rng rng(1);
    for (auto _ : state) {
        const Vpn vpn = bench_base + rng.nextBounded(1 << 16);
        benchmark::DoNotOptimize(table.walk(vpn));
    }
}
BENCHMARK(BM_PageWalk);

void
BM_BaselineTranslate(benchmark::State &state)
{
    const MemoryMap map = benchMap(1 << 16);
    const PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table);
    Rng rng(2);
    for (auto _ : state) {
        const VirtAddr va = vaOf(bench_base + rng.nextBounded(1 << 16));
        benchmark::DoNotOptimize(mmu.translate(va));
    }
}
BENCHMARK(BM_BaselineTranslate);

void
BM_AnchorTranslate(benchmark::State &state)
{
    const MemoryMap map = benchMap(1 << 16);
    PageTable table = buildAnchorPageTable(map, AnchorDist::fromPages(64));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, AnchorDist::fromPages(64));
    Rng rng(3);
    for (auto _ : state) {
        const VirtAddr va = vaOf(bench_base + rng.nextBounded(1 << 16));
        benchmark::DoNotOptimize(mmu.translate(va));
    }
}
BENCHMARK(BM_AnchorTranslate);

void
BM_SweepAnchors(benchmark::State &state)
{
    const std::uint64_t distance = state.range(0);
    const MemoryMap map = benchMap(1 << 18);
    PageTable table = buildPageTable(map, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.sweepAnchors(map, AnchorDist::fromPages(distance)));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * map.mappedPages()));
}
BENCHMARK(BM_SweepAnchors)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("canneal");
    PatternTrace trace(spec, vaOf(bench_base), ~0ULL, 5);
    MemAccess a;
    for (auto _ : state) {
        trace.next(a);
        benchmark::DoNotOptimize(a.vaddr);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_DistanceSelection(benchmark::State &state)
{
    const MemoryMap map = benchMap(1 << 18);
    const Histogram hist = map.contiguityHistogram();
    for (auto _ : state) {
        benchmark::DoNotOptimize(selectAnchorDistance(hist));
    }
}
BENCHMARK(BM_DistanceSelection);

void
BM_ScenarioBuild(benchmark::State &state)
{
    ScenarioParams p;
    p.footprint_pages = 1 << 16;
    p.seed = 4;
    p.demand_run_pages = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildScenario(ScenarioKind::Demand, p));
    }
}
BENCHMARK(BM_ScenarioBuild);

} // namespace

BENCHMARK_MAIN();
