/**
 * @file
 * Extension experiment: access-weighted, capacity-aware distance
 * selection.
 *
 * The paper notes (Section 5.2.1, the cactusADM case) that Algorithm 1
 * selects "based on the allocation snapshot, without knowing access
 * frequency", which can miss the access-weighted optimum. This bench
 * lets the OS sample the access stream for one profiling epoch, feeds
 * the per-chunk sample counts into a capacity-aware miss model, and
 * compares the result with the snapshot selection and the exhaustive
 * oracle on the medium-contiguity mapping — the regime where the gap
 * is largest.
 */

#include <iostream>

#include "bench_util.hh"
#include "os/access_sampler.hh"
#include "trace/workload.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Extension — access-weighted capacity-aware "
                       "distance selection (medium contiguity)");

    ExperimentContext ctx(bench::figureOptions());
    const SimOptions &opts = ctx.options();

    Table table("Relative TLB misses (%) by selection policy",
                {"workload", "snapshot d", "snapshot", "sampled d",
                 "sampled", "oracle d", "oracle"});

    for (const char *workload :
         {"canneal", "mcf", "cactusADM", "soplex_pds", "omnetpp"}) {
        const ScenarioKind k = ScenarioKind::MedContig;
        const std::uint64_t base =
            ctx.run(workload, k, Scheme::Base).misses();

        // Snapshot selection (the paper's Algorithm 1).
        const SimResult snap = ctx.run(workload, k, Scheme::Anchor);

        // Profiling epoch: the OS samples the access stream (here:
        // every 8th access of a short prefix) and selects with the
        // capacity-aware model.
        const MemoryMap &map = ctx.mapping(workload, k);
        AccessSampler sampler(map);
        WorkloadSpec spec = findWorkload(workload);
        spec.footprint_bytes = static_cast<std::uint64_t>(
            static_cast<double>(spec.footprint_bytes) *
            opts.footprint_scale);
        PatternTrace profile_trace(
            spec, vaOf(Vpn{0x7f0000000ULL}),
            std::min<std::uint64_t>(opts.accesses / 4, 250'000),
            opts.seed ^ 0x5eed);
        MemAccess a;
        std::uint64_t n = 0;
        while (profile_trace.next(a)) {
            if ((n++ & 7) == 0)
                sampler.sample(vpnOf(a.vaddr));
        }
        const CapacitySelection sampled = selectAnchorDistanceCapacityAware(
            sampler.chunkAccesses(), opts.mmu.l2_entries);
        const SimResult weighted =
            ctx.run(workload, k, Scheme::Anchor, sampled.distance);

        const SimResult oracle = ctx.run(workload, k, Scheme::AnchorIdeal);

        table.beginRow();
        table.cell(std::string(workload));
        table.cell(snap.anchor_distance);
        table.cellPercent(relativeMisses(snap.misses(), base));
        table.cell(sampled.distance);
        table.cellPercent(relativeMisses(weighted.misses(), base));
        table.cell(oracle.anchor_distance);
        table.cellPercent(relativeMisses(oracle.misses(), base));
    }
    table.printAscii(std::cout);
    std::cout
        << "\nExpected shape: for reuse-driven workloads the sampled, "
           "capacity-aware pick\ntracks the oracle distance and closes "
           "most of the snapshot-vs-oracle gap\n(mcf typically lands on "
           "the oracle's distance exactly). Streaming-dominated\n"
           "workloads (cactusADM) remain hard: their sampled stream has "
           "no residency\nstructure for the model to exploit — the same "
           "limitation the paper reports.\n";
    return 0;
}
