/**
 * @file
 * Ablation: 1GB pages vs anchors at extreme contiguity.
 *
 * Paper Section 2.1 notes that x86 supports 1GB pages through a
 * separate, smaller L2 TLB, and that fixed page sizes trade allocation
 * flexibility for coverage. This ablation makes that concrete: when the
 * OS can hand out gigabyte-aligned gigabyte chunks, 1GB pages rival the
 * anchor scheme; shave the alignment or shrink the chunks slightly and
 * their benefit collapses while anchors keep working.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"

namespace
{

using namespace atlb;

constexpr Vpn base{0x7f0000000ULL};

/** 4GB footprint in chunks of @p chunk_pages, PA congruent mod @p mod. */
MemoryMap
mapWith(std::uint64_t chunk_pages, std::uint64_t congruence)
{
    MemoryMap m;
    Vpn vpn = base;
    Ppn ppn{giantPages};
    const std::uint64_t total = 4 * giantPages;
    for (std::uint64_t done = 0; done < total; done += chunk_pages) {
        ppn = (ppn + 1).alignUp(congruence) + (vpn.raw() & (congruence - 1));
        m.add(vpn, ppn, PageCount{chunk_pages});
        vpn += chunk_pages;
        ppn += chunk_pages;
    }
    m.finalize();
    return m;
}

std::uint64_t
missesOf(Mmu &mmu, std::uint64_t accesses)
{
    Rng rng(5);
    for (std::uint64_t i = 0; i < accesses; ++i)
        mmu.translate(vaOf(base + rng.nextBounded(4 * giantPages)));
    return mmu.stats().page_walks;
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Ablation — 1GB pages vs anchors (4GB random footprint)");

    const SimOptions opts = bench::figureOptions();
    const std::uint64_t accesses = opts.accesses / 2;

    Table table("Misses per 1K accesses by allocation regime",
                {"chunks", "PA congruence", "THP", "THP+1GB",
                 "Dynamic anchor"});

    struct Case
    {
        const char *label;
        std::uint64_t chunk_pages;
        std::uint64_t congruence;
    };
    const Case cases[] = {
        {"1GB aligned", giantPages, giantPages},
        {"1GB, 2MB-aligned only", giantPages, hugePages},
        {"256MB aligned", giantPages / 4, giantPages / 4},
    };

    for (const Case &c : cases) {
        const MemoryMap m = mapWith(c.chunk_pages, c.congruence);
        const MmuConfig cfg = opts.mmu;
        const double per_k = 1000.0 / static_cast<double>(accesses);

        PageTable thp_table = buildPageTable(m, true, false);
        BaselineMmu thp(cfg, thp_table, "thp");
        const double thp_misses =
            static_cast<double>(missesOf(thp, accesses)) * per_k;

        PageTable giant_table = buildPageTable(m, true, true);
        BaselineMmu giant(cfg, giant_table, "thp-1g");
        const double giant_misses =
            static_cast<double>(missesOf(giant, accesses)) * per_k;

        const std::uint64_t d =
            selectAnchorDistance(m.contiguityHistogram()).distance;
        PageTable anchor_table = buildAnchorPageTable(m, AnchorDist::fromPages(d));
        AnchorMmu anchor(cfg, anchor_table, AnchorDist::fromPages(d));
        const double anchor_misses =
            static_cast<double>(missesOf(anchor, accesses)) * per_k;

        table.beginRow();
        table.cell(std::string(c.label));
        table.cell(c.congruence * pageBytes >> 20);
        table.cell(thp_misses, 2);
        table.cell(giant_misses, 2);
        table.cell(anchor_misses, 2);
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: with perfect gigabyte alignment, "
                 "four 1GB entries cover the\nfootprint and rival "
                 "anchors; with merely 2MB-aligned or 256MB chunks the "
                 "1GB\nTLB goes unused while anchors keep their "
                 "coverage — fixed page sizes demand\nexactly the "
                 "allocation rigidity the paper argues against.\n";
    return 0;
}
