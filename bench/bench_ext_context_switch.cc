/**
 * @file
 * Extension experiment: TLB warmup under context switching.
 *
 * The x86 Linux kernel the paper assumes flushes the TLB on context
 * switches (Section 3.3). After each flush, a scheme's miss cost is the
 * number of walks needed to regain coverage of the hot set — one walk
 * per 4KB entry for the baseline, one per 2MB page for THP, one per
 * anchor region for hybrid coalescing. This bench sweeps the switch
 * quantum and shows the coalescing schemes' advantage *growing* as
 * quanta shrink.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/multiprocess.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Extension — context-switch quantum sweep (shared TLBs, "
        "flush on switch)");

    const SimOptions base_opts = bench::figureOptions();
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::Demand},
        {"mcf", ScenarioKind::Demand},
        {"milc", ScenarioKind::MedContig},
    };

    Table table("Misses per 1K accesses vs scheduling quantum "
                "(canneal + mcf + milc)",
                {"quantum (accesses)", "switches", "Base", "THP",
                 "Cluster-2MB", "RMM", "Anchor",
                 "Anchor/Base"});

    for (const std::uint64_t quantum :
         {200'000ULL, 50'000ULL, 10'000ULL, 2'000ULL}) {
        MultiProcessOptions opts;
        opts.total_accesses = base_opts.accesses;
        opts.quantum_accesses = quantum;
        opts.seed = base_opts.seed;
        opts.footprint_scale = base_opts.footprint_scale;
        opts.mmu = base_opts.mmu;

        double per_k[5] = {0, 0, 0, 0, 0};
        std::uint64_t switches = 0;
        const Scheme schemes[5] = {Scheme::Base, Scheme::Thp,
                                   Scheme::Cluster2MB, Scheme::Rmm,
                                   Scheme::Anchor};
        for (int i = 0; i < 5; ++i) {
            const MultiProcessResult r =
                runMultiProcess(schemes[i], procs, opts);
            per_k[i] = r.missesPerKiloAccess();
            switches = r.context_switches;
        }
        table.beginRow();
        table.cell(quantum);
        table.cell(switches);
        for (const double v : per_k)
            table.cell(v, 2);
        table.cellPercent(per_k[0] > 0 ? per_k[4] / per_k[0] : 1.0);
    }
    table.printAscii(std::cout);
    std::cout
        << "\nExpected shape: the baseline hardly notices flushes (its "
           "capacity misses\ndominate with or without them), while the "
           "coalescing schemes pay a visible\nwarmup per switch. The "
           "anchor scheme re-covers a whole anchor block per walk,\nso "
           "its post-flush warmup is the cheapest (smallest rise vs "
           "THP/Cluster-2MB)\nand it stays several times better than "
           "the baseline even at tiny quanta.\n";
    return 0;
}
