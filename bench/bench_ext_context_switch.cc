/**
 * @file
 * Extension experiment: context-switch policy grid — flush-on-switch
 * vs ASID-tagged retention, across schemes and scheduling quanta.
 *
 * The x86 Linux kernel the paper assumes flushes the TLB on context
 * switches (Section 3.3). After each flush, a scheme's miss cost is the
 * number of walks needed to regain coverage of the hot set — one walk
 * per 4KB entry for the baseline, one per 2MB page for THP, one per
 * anchor region for hybrid coalescing. ASID tagging removes that
 * re-warm cost entirely but pays for it when mappings change: retained
 * translations of a remapped address space must be shot down with IPI
 * rounds (the MmuConfig shootdown model). This bench sweeps the
 * scheme x policy x quantum grid under periodic remap churn and
 * reports where retention flips the scheme ranking.
 *
 * Results go to BENCH_context_switch.json (or argv[1]). CI greps for
 * '"asid_retention_beats_flush": true' — for every scheme, the ASID
 * hit rate at the smallest quantum must be at least the flush hit rate
 * (retention can only add hits; stale entries are shot down, never
 * consulted).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/multiprocess.hh"
#include "stats/json_writer.hh"

namespace
{

using namespace atlb;

const Scheme kSchemes[] = {Scheme::Base,       Scheme::Thp,
                           Scheme::Cluster,    Scheme::Cluster2MB,
                           Scheme::Rmm,        Scheme::Anchor};
const std::uint64_t kQuanta[] = {200'000, 50'000, 10'000, 2'000};
const SwitchPolicy kPolicies[] = {SwitchPolicy::Flush, SwitchPolicy::Asid};

const char *
policyName(SwitchPolicy policy)
{
    return policy == SwitchPolicy::Flush ? "flush" : "asid";
}

/** One (scheme, policy, quantum) cell of the grid. */
struct Cell
{
    Scheme scheme;
    SwitchPolicy policy;
    std::uint64_t quantum;
    MultiProcessResult result;
};

const Cell &
cellAt(const std::vector<Cell> &cells, Scheme scheme, SwitchPolicy policy,
       std::uint64_t quantum)
{
    for (const Cell &c : cells)
        if (c.scheme == scheme && c.policy == policy &&
            c.quantum == quantum)
            return c;
    ATLB_PANIC("missing grid cell");
}

void
emitJson(const std::string &path, const SimOptions &opts,
         const std::vector<Cell> &cells)
{
    std::ofstream out(path);

    // CI greps for '"asid_retention_beats_flush": true' — JsonWriter's
    // `"key": value` layout is part of that contract.
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_ext_context_switch");
    json.field("total_accesses", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("processes", std::string("canneal+mcf+milc"));

    json.key("cells");
    json.beginObject();
    for (const Cell &c : cells) {
        json.key(std::string(schemeName(c.scheme)) + "/" +
                 policyName(c.policy) + "/" + std::to_string(c.quantum));
        json.beginObject();
        json.field("walks", c.result.stats.page_walks);
        json.field("hit_rate", c.result.hitRate());
        json.field("misses_per_kacc", c.result.missesPerKiloAccess());
        json.field("context_switches", c.result.context_switches);
        json.field("remap_epochs", c.result.remap_epochs);
        json.field("shootdowns", c.result.stats.shootdowns);
        json.field("shootdown_cycles",
                   static_cast<std::uint64_t>(
                       c.result.stats.shootdown_cycles));
        json.field("charged_cpi", c.result.chargedCpi());
        json.endObject();
    }
    json.endObject();

    // Per-scheme gate: at the smallest quantum (where flushes hurt
    // most), retention must not lose hits. Stale entries are shot
    // down before their owner runs again, so ASID tagging can only
    // ever add hits on top of the flush baseline.
    const std::uint64_t finest = kQuanta[std::size(kQuanta) - 1];
    bool all_beat = true;
    json.key("schemes");
    json.beginObject();
    for (const Scheme s : kSchemes) {
        const Cell &flush =
            cellAt(cells, s, SwitchPolicy::Flush, finest);
        const Cell &asid = cellAt(cells, s, SwitchPolicy::Asid, finest);
        const bool beats =
            asid.result.hitRate() >= flush.result.hitRate();
        all_beat = all_beat && beats;
        json.key(schemeName(s));
        json.beginObject();
        json.field("flush_hit_rate", flush.result.hitRate());
        json.field("asid_hit_rate", asid.result.hitRate());
        json.field("asid_beats_flush", beats);
        json.endObject();
    }
    json.endObject();

    // Ranking flips: quanta where retention changes which scheme pays
    // the least (by shootdown-charged CPI).
    json.key("ranking_flips");
    json.beginArray();
    for (const std::uint64_t q : kQuanta) {
        Scheme best_flush = kSchemes[0];
        Scheme best_asid = kSchemes[0];
        for (const Scheme s : kSchemes) {
            if (cellAt(cells, s, SwitchPolicy::Flush, q)
                    .result.chargedCpi() <
                cellAt(cells, best_flush, SwitchPolicy::Flush, q)
                    .result.chargedCpi())
                best_flush = s;
            if (cellAt(cells, s, SwitchPolicy::Asid, q)
                    .result.chargedCpi() <
                cellAt(cells, best_asid, SwitchPolicy::Asid, q)
                    .result.chargedCpi())
                best_asid = s;
        }
        if (best_flush != best_asid) {
            json.beginObject();
            json.field("quantum", q);
            json.field("flush_winner", schemeName(best_flush));
            json.field("asid_winner", schemeName(best_asid));
            json.endObject();
        }
    }
    json.endArray();

    json.field("asid_retention_beats_flush", all_beat);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atlb;
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_context_switch.json";

    bench::printHeader(
        "Extension — context-switch policy grid (flush vs ASID "
        "retention, remap churn every 8 quanta)");

    const SimOptions base_opts = bench::figureOptions();
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::Demand},
        {"mcf", ScenarioKind::Demand},
        {"milc", ScenarioKind::MedContig},
    };

    std::vector<Cell> cells;
    for (const SwitchPolicy policy : kPolicies) {
        for (const std::uint64_t quantum : kQuanta) {
            MultiProcessOptions opts;
            opts.total_accesses = base_opts.accesses;
            opts.quantum_accesses = quantum;
            opts.seed = base_opts.seed;
            opts.footprint_scale = base_opts.footprint_scale;
            opts.mmu = base_opts.mmu;
            opts.policy = policy;
            opts.remap_every_quanta = 8;
            opts.shared_cores = 3; // the other cores of a 4-core share
            for (const Scheme scheme : kSchemes)
                cells.push_back({scheme, policy, quantum,
                                 runMultiProcess(scheme, procs, opts)});
        }
    }

    for (const SwitchPolicy policy : kPolicies) {
        Table table(std::string("Misses per 1K accesses vs quantum — ") +
                        policyName(policy) +
                        " policy (canneal + mcf + milc)",
                    {"quantum (accesses)", "switches", "Base", "THP",
                     "Cluster", "Cluster-2MB", "RMM", "Anchor",
                     "Anchor/Base"});
        for (const std::uint64_t quantum : kQuanta) {
            table.beginRow();
            table.cell(quantum);
            table.cell(cellAt(cells, Scheme::Base, policy, quantum)
                           .result.context_switches);
            double base_per_k = 0.0;
            double anchor_per_k = 0.0;
            for (const Scheme s : kSchemes) {
                const double per_k = cellAt(cells, s, policy, quantum)
                                         .result.missesPerKiloAccess();
                if (s == Scheme::Base)
                    base_per_k = per_k;
                if (s == Scheme::Anchor)
                    anchor_per_k = per_k;
                table.cell(per_k, 2);
            }
            table.cellPercent(
                base_per_k > 0 ? anchor_per_k / base_per_k : 1.0);
        }
        table.printAscii(std::cout);
        std::cout << "\n";
    }

    Table tax("Shootdown tax under ASID retention (charged CPI = "
              "(translation + shootdown cycles) / instructions)",
              {"quantum (accesses)", "scheme", "flush CPI", "asid CPI",
               "shootdowns", "shootdown kcyc"});
    for (const std::uint64_t quantum : kQuanta) {
        for (const Scheme s : kSchemes) {
            const Cell &f = cellAt(cells, s, SwitchPolicy::Flush, quantum);
            const Cell &a = cellAt(cells, s, SwitchPolicy::Asid, quantum);
            tax.beginRow();
            tax.cell(quantum);
            tax.cell(std::string(schemeName(s)));
            tax.cell(f.result.chargedCpi(), 4);
            tax.cell(a.result.chargedCpi(), 4);
            tax.cell(a.result.stats.shootdowns);
            tax.cell(a.result.stats.shootdown_cycles / 1000);
        }
    }
    tax.printAscii(std::cout);

    std::cout
        << "\nExpected shape: under flush-on-switch the coalescing "
           "schemes pay a visible\nwarmup per switch that grows as "
           "quanta shrink; ASID retention removes that\nwarmup for "
           "every scheme (hit rates become nearly "
           "quantum-independent) and\ninstead charges explicit "
           "shootdown rounds for the remap churn. Where the\nrounds "
           "are cheaper than the re-warm walks, retention flips the "
           "cost ranking\n— exactly the trade paper Section 3.3 "
           "appeals to.\n";

    emitJson(json_path, base_opts, cells);
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
