/**
 * @file
 * Paper Section 3.3 overhead anecdote: the cost of changing the anchor
 * distance is a page-table sweep that touches only anchor-aligned
 * entries, so it shrinks roughly linearly in the distance (the paper
 * measured 452ms / 71.7ms / 1.7ms for distances 8 / 64 / 512 on a 30GB
 * process). We sweep a large mapping and report entries touched and
 * wall time per distance.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Section 3.3 — anchor-distance change (page-table sweep) cost");

    // A large, mostly contiguous mapping (every entry is a potential
    // anchor slot), scaled from the paper's 30GB by ANCHORTLB_SCALE.
    const SimOptions opts = bench::figureOptions();
    ScenarioParams params;
    params.footprint_pages = static_cast<std::uint64_t>(
        (30.0 * (1ULL << 30) / pageBytes) * opts.footprint_scale * 0.25);
    params.seed = 3;
    const MemoryMap map = buildScenario(ScenarioKind::MedContig, params);
    PageTable table = buildPageTable(map, true);

    Table out("Distance-change sweep cost over a " +
                  std::to_string(params.footprint_pages * pageBytes >>
                                 20) +
                  "MB mapping",
              {"new distance", "entries touched", "wall time (us)",
               "us per 1M mapped pages"});

    bool first = true;
    for (const std::uint64_t d : candidateDistances()) {
        // Each sweep also clears the previous distance's anchors, which
        // is exactly what a real distance change pays.
        const auto start = std::chrono::steady_clock::now();
        const std::uint64_t touched =
            table.sweepAnchors(map, AnchorDist::fromPages(d));
        const auto end = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(end - start)
                .count();
        out.beginRow();
        out.cell(d);
        out.cell(touched);
        out.cell(us, 1);
        out.cell(us * 1e6 /
                     static_cast<double>(map.mappedPages()) / 1.0,
                 3);
        if (first)
            first = false;
    }
    out.printAscii(std::cout);
    std::cout << "\nExpected shape (paper Section 3.3): cost is "
                 "proportional to the number of\nanchor entries touched, "
                 "i.e. ~1/distance (paper: 452ms -> 71.7ms -> 1.7ms for\n"
                 "8 -> 64 -> 512 at 30GB). Note each row below the first "
                 "also pays the clearing\npass for the previous "
                 "distance.\n";
    return 0;
}
