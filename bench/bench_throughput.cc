/**
 * @file
 * Sweep-engine throughput bench: serial vs ANCHORTLB_THREADS workers.
 *
 * Runs one scenario's full workload x scheme grid twice — once with one
 * thread (the exact serial path) and once with the configured worker
 * count — and reports wall-clock time and simulated accesses per second
 * for both, plus the speedup. A miss-count checksum cross-checks that
 * both runs produced identical results (the engine's determinism
 * guarantee). Results are written as machine-readable JSON to
 * BENCH_throughput.json in the working directory (or argv[1]).
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 200k here, small enough for
 * a CI smoke run), ANCHORTLB_SCALE, ANCHORTLB_THREADS.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "os/distance_selector.hh"
#include "sim/parallel_runner.hh"
#include "stats/json_writer.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

struct Measurement
{
    unsigned threads = 1;
    double seconds = 0.0;
    double accesses_per_sec = 0.0;
    std::uint64_t miss_checksum = 0;
};

std::vector<CellJob>
throughputJobs(ScenarioKind scenario)
{
    std::vector<CellJob> jobs;
    for (const auto &workload : paperWorkloadNames())
        for (const Scheme s : comparedSchemes())
            jobs.push_back({workload, scenario, s, {}});
    return jobs;
}

/** Simulations actually run: AnchorIdeal fans out over all distances. */
std::uint64_t
simulatedAccesses(const std::vector<CellJob> &jobs, std::uint64_t per_cell)
{
    const std::uint64_t fanout = candidateDistances().size();
    std::uint64_t leaves = 0;
    for (const CellJob &job : jobs)
        leaves += job.scheme == Scheme::AnchorIdeal ? fanout : 1;
    return leaves * per_cell;
}

Measurement
measure(SimOptions opts, unsigned threads,
        const std::vector<CellJob> &jobs)
{
    opts.threads = threads;
    ParallelRunner runner(opts);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<SimResult> results = runner.run(jobs);
    const auto stop = std::chrono::steady_clock::now();

    Measurement m;
    m.threads = threads;
    m.seconds = std::chrono::duration<double>(stop - start).count();
    m.accesses_per_sec =
        static_cast<double>(simulatedAccesses(jobs, opts.accesses)) /
        m.seconds;
    for (const SimResult &res : results)
        m.miss_checksum += res.misses();
    return m;
}

void
emitMeasurement(JsonWriter &json, const std::string &name,
                const Measurement &m)
{
    json.key(name);
    json.beginObject();
    json.field("threads", m.threads);
    json.field("seconds", m.seconds);
    json.field("accesses_per_sec", m.accesses_per_sec);
    json.endObject();
}

void
emitJson(const std::string &path, const SimOptions &opts,
         ScenarioKind scenario, std::size_t cells, const Measurement &serial,
         const Measurement &parallel)
{
    std::ofstream out(path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", path);
    // CI greps this file for '"results_identical": true' — JsonWriter's
    // `"key": value` layout is part of that contract.
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_throughput");
    json.field("scenario", scenarioName(scenario));
    json.field("cells", static_cast<std::uint64_t>(cells));
    json.field("accesses_per_cell", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("hardware_concurrency",
               static_cast<std::uint64_t>(hardwareThreadCount()));
    emitMeasurement(json, "serial", serial);
    emitMeasurement(json, "parallel", parallel);
    json.field("speedup", serial.seconds / parallel.seconds);
    json.field("results_identical",
               serial.miss_checksum == parallel.miss_checksum);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 200'000;

    const ScenarioKind scenario = ScenarioKind::MedContig;
    const std::vector<CellJob> jobs = throughputJobs(scenario);
    const unsigned threads = opts.threads;
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_throughput.json";

    printHeader("Sweep-engine throughput: serial vs " +
                std::to_string(threads) + " thread(s)");
    std::cout << "grid: " << paperWorkloadNames().size()
              << " workloads x " << comparedSchemes().size()
              << " schemes, scenario " << scenarioName(scenario) << ", "
              << opts.accesses << " accesses/cell\n";

    const Measurement serial = measure(opts, 1, jobs);
    const Measurement parallel = measure(opts, threads, jobs);

    if (serial.miss_checksum != parallel.miss_checksum) {
        ATLB_FATAL("parallel run diverged from serial run "
                   "(miss checksums differ)");
    }

    std::cout << "serial:   " << serial.seconds << " s, "
              << static_cast<std::uint64_t>(serial.accesses_per_sec)
              << " accesses/s\n"
              << "parallel: " << parallel.seconds << " s, "
              << static_cast<std::uint64_t>(parallel.accesses_per_sec)
              << " accesses/s (threads=" << parallel.threads << ")\n"
              << "speedup:  " << serial.seconds / parallel.seconds
              << "x (hardware concurrency " << hardwareThreadCount()
              << ")\n";

    emitJson(json_path, opts, scenario, jobs.size(), serial, parallel);
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
