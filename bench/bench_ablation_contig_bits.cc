/**
 * @file
 * Ablation: contiguity-field width.
 *
 * The paper allocates 16 bits for the anchor contiguity (Section 3.1),
 * which caps the useful anchor distance at 2^16 pages. This ablation
 * narrows the field and shows where high-contiguity mappings start to
 * suffer — the quantitative argument for the paper's choice.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Ablation — anchor contiguity field width");

    Table table("Relative TLB misses (%) vs contiguity-field width "
                "(Dynamic, distance capped at 2^bits)",
                {"field bits", "max distance", "medium", "high", "max"});

    for (const unsigned bits : {4u, 6u, 8u, 12u, 16u}) {
        SimOptions opts = bench::figureOptions();
        opts.mmu.max_contiguity = 1ULL << bits;
        ExperimentContext ctx(opts);
        table.beginRow();
        table.cell(static_cast<std::uint64_t>(bits));
        table.cell(opts.mmu.max_contiguity);
        for (const ScenarioKind k :
             {ScenarioKind::MedContig, ScenarioKind::HighContig,
              ScenarioKind::MaxContig}) {
            const std::uint64_t base =
                ctx.run("canneal", k, Scheme::Base).misses();
            const std::uint64_t capped_distance = std::min(
                ctx.dynamicDistance("canneal", k), opts.mmu.max_contiguity);
            const SimResult r =
                ctx.run("canneal", k, Scheme::Anchor, capped_distance);
            table.cellPercent(relativeMisses(r.misses(), base));
        }
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: medium contiguity is insensitive "
                 "(selected distances are small);\nhigh/max lose most of "
                 "their benefit once the field caps the distance below "
                 "the\nmapping's chunk scale — motivating the paper's "
                 "16-bit field.\n";
    return 0;
}
