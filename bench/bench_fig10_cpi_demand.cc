/**
 * @file
 * Paper Figure 10: translation-CPI breakdown under demand paging.
 */

#include "bench_cpi_common.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 10 — translation CPI breakdown, demand paging");
    bench::printCpiBreakdown(ScenarioKind::Demand, "Fig.10");
    std::cout << "\nExpected shape (paper Fig. 10): baseline CPI spans "
                 "~0.1 (sphinx3, milc) to\n~3.3 (gups, tigr) and ~12 "
                 "(graph500), dominated by the walk component;\nDynamic "
                 "cuts the walk share hardest (paper: graph500 12.4 -> "
                 "~6.6, tigr -2.7,\ngups -0.85 CPI), converting residual "
                 "cycles into cheap coalesced hits.\n";
    return 0;
}
