/**
 * @file
 * Paper Figure 8: relative TLB misses under the medium-contiguity
 * synthetic mapping (chunks uniform in 4KB..2MB).
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 8 — relative TLB misses, medium contiguity");
    ExperimentContext ctx(bench::figureOptions());
    bench::relativeMissTable(ctx, ScenarioKind::MedContig,
                             "Fig.8 relative TLB misses (%), medium")
        .printAscii(std::cout);
    std::cout << "\nExpected shape (paper Fig. 8): THP and RMM nearly "
                 "ineffective (no 2MB chunks);\ncluster variants help "
                 "moderately; Dynamic clearly best (paper means: "
                 "Cluster-2MB\n59.6%, Dynamic 21.5% relative misses); "
                 "gups is the worst case for everyone.\n";
    return 0;
}
