/**
 * @file
 * Ablation: HW-coalescing depth — cluster-8 vs CoLT-FA vs anchors.
 *
 * Paper Section 2.1: CoLT's fully-associative mode coalesces far more
 * pages per entry than cluster-8, but the FA lookup restricts it to a
 * handful of entries. This ablation shows where each HW-only design
 * saturates and how OS-guided anchors scale past both.
 */

#include <functional>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

std::uint64_t
runScheme(const WorkloadSpec &spec,
          std::uint64_t accesses, const std::function<
              std::unique_ptr<Mmu>(const PageTable &)> &make,
          const PageTable &table)
{
    std::unique_ptr<Mmu> mmu = make(table);
    PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), accesses, 7);
    MemAccess a;
    while (trace.next(a))
        mmu->translate(a.vaddr);
    return mmu->stats().page_walks;
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Ablation — coalescing depth: cluster-8, CoLT-FA, anchors");

    const SimOptions opts = bench::figureOptions();
    Table table("Relative TLB misses (%) per scenario (canneal)",
                {"mapping", "Cluster", "CoLT-FA", "Dynamic anchor"});

    for (const ScenarioKind scenario :
         {ScenarioKind::LowContig, ScenarioKind::MedContig,
          ScenarioKind::HighContig}) {
        WorkloadSpec spec = findWorkload("canneal");
        spec.footprint_bytes = static_cast<std::uint64_t>(
            static_cast<double>(spec.footprint_bytes) *
            opts.footprint_scale);
        ScenarioParams params;
        params.footprint_pages = spec.footprintPages();
        params.seed = opts.seed;
        const MemoryMap map = buildScenario(scenario, params);
        const MmuConfig cfg = opts.mmu;

        const PageTable plain = buildPageTable(map, false);
        const std::uint64_t base = runScheme(
            spec, opts.accesses,
            [&](const PageTable &t) {
                return std::make_unique<BaselineMmu>(cfg, t);
            },
            plain);
        const std::uint64_t cluster = runScheme(
            spec, opts.accesses,
            [&](const PageTable &t) {
                return std::make_unique<ClusterMmu>(cfg, t, false);
            },
            plain);
        const std::uint64_t colt = runScheme(
            spec, opts.accesses,
            [&](const PageTable &t) {
                return std::make_unique<ColtMmu>(cfg, t);
            },
            plain);
        const std::uint64_t d =
            selectAnchorDistance(map.contiguityHistogram()).distance;
        const PageTable anchor_table = buildAnchorPageTable(map, AnchorDist::fromPages(d));
        const std::uint64_t anchor = runScheme(
            spec, opts.accesses,
            [&](const PageTable &t) {
                return std::make_unique<AnchorMmu>(cfg, t, AnchorDist::fromPages(d));
            },
            anchor_table);

        table.beginRow();
        table.cell(std::string(scenarioName(scenario)));
        table.cellPercent(relativeMisses(cluster, base));
        table.cellPercent(relativeMisses(colt, base));
        table.cellPercent(relativeMisses(anchor, base));
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: CoLT-FA beats cluster-8 at medium "
                 "contiguity (runs up to 64\npages fit one FA entry) but "
                 "its 16 FA entries thrash as coverage demands\ngrow; "
                 "anchors, fed contiguity by the OS, keep scaling.\n";
    return 0;
}
