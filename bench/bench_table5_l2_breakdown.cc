/**
 * @file
 * Paper Table 5: L2 TLB hit/miss breakdown for the anchor scheme —
 * regular-entry hit rate (R.hit), anchor-entry hit rate (A.hit) and L2
 * miss rate, as fractions of L2-level accesses, for the demand-paging
 * and medium-contiguity mappings.
 */

#include <iostream>

#include "bench_util.hh"
#include "trace/workload.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Table 5 — L2 hit/miss breakdown, anchor scheme");
    ExperimentContext ctx(bench::figureOptions());

    Table table("Table 5: L2 TLB statistics under hybrid coalescing "
                "(Dynamic)",
                {"workload", "demand R.hit", "demand A.hit",
                 "demand L2 miss", "medium R.hit", "medium A.hit",
                 "medium L2 miss"});

    for (const auto &workload : paperWorkloadNames()) {
        const SimResult demand =
            ctx.run(workload, ScenarioKind::Demand, Scheme::Anchor);
        const SimResult medium =
            ctx.run(workload, ScenarioKind::MedContig, Scheme::Anchor);
        table.beginRow();
        table.cell(workload);
        table.cellPercent(demand.regularHitFraction(), 0);
        table.cellPercent(demand.coalescedHitFraction(), 0);
        table.cellPercent(demand.l2MissFraction(), 0);
        table.cellPercent(medium.regularHitFraction(), 0);
        table.cellPercent(medium.coalescedHitFraction(), 0);
        table.cellPercent(medium.l2MissFraction(), 0);
    }
    table.printAscii(std::cout);
    std::cout
        << "\nExpected shape (paper Table 5): under demand paging, 2MB "
           "pages give large\nR.hit fractions and anchors absorb "
           "16-55% more; under medium contiguity the\nregular hit rates "
           "collapse and anchors dominate; gups/graph500 keep large\n"
           "L2 miss rates in both (53-88% in the paper).\n";
    return 0;
}
