/**
 * @file
 * Sweep-service bench: cold vs warm store sweeps, plus the shared cell
 * scheduler under multiple clients.
 *
 * Phase 1 (store): runs one small grid (3 workloads x {Base, Dynamic}
 * x medium) twice through an ExperimentContext with a persistent
 * ResultStore attached: the cold pass simulates every cell and appends
 * it to the store, the warm pass reopens the store in a fresh context
 * and must answer every cell without simulating. Gates: warm results
 * byte-identical to cold, all warm cells answered from the store, warm
 * at least 5x faster than cold.
 *
 * Phase 2 (scheduler): N clients submit disjoint grids to a live
 * SweepServer, first one-at-a-time (the serial-admission baseline the
 * old per-request sim mutex enforced), then all at once through the
 * shared cell scheduler. Gate concurrent_no_worse_than_serial: the
 * concurrent pass must reach at least 0.95x the serial throughput —
 * the honest floor on a 1-hardware-thread container, where round-robin
 * interleaving can add bookkeeping but no parallel speedup (with more
 * workers the ratio should exceed 1).
 *
 * Phase 3 (fairness): while one client's 24-cell grid is in flight, a
 * 1-cell request from a second client must not queue behind it. Gate
 * small_latency_decoupled: the small request's wall time is at most
 * half the large grid's — round-robin bounds it near two cells' work,
 * while FIFO-behind-the-grid would push it to the full grid time.
 *
 * Results go to stdout as tables and to BENCH_serve.json (or argv[1]).
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 200k here), ANCHORTLB_SCALE.
 */

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "serve/client.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "stats/json_writer.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

constexpr const char *kWorkloads[] = {"canneal", "sphinx3", "milc"};
constexpr Scheme kSchemes[] = {Scheme::Base, Scheme::Anchor};
constexpr ScenarioKind kScenario = ScenarioKind::MedContig;

struct Pass
{
    double seconds = 0.0;
    std::uint64_t result_lookups = 0;
    std::uint64_t result_hits = 0;
    std::vector<SimResult> results;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Pass
runGrid(const SimOptions &opts, ResultStore &store)
{
    ExperimentContext ctx(opts);
    ctx.setResultCache(&store);
    Pass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const char *workload : kWorkloads) {
        for (const Scheme scheme : kSchemes)
            pass.results.push_back(ctx.run(workload, kScenario, scheme));
    }
    pass.seconds = secondsSince(start);
    pass.result_lookups = ctx.cacheCounters().result_lookups;
    pass.result_hits = ctx.cacheCounters().result_hits;
    return pass;
}

/** A live SweepServer on private socket/store paths. */
struct BenchServer
{
    ServeOptions opts;
    std::unique_ptr<SweepServer> server;
    std::thread thread;

    BenchServer(const std::string &name, const SimOptions &base)
    {
        const auto tmp = std::filesystem::temp_directory_path();
        opts.socket_path = (tmp / ("bench_" + name + ".sock")).string();
        opts.store_path = (tmp / ("bench_" + name + ".results")).string();
        std::filesystem::remove(opts.socket_path);
        std::filesystem::remove(opts.store_path);
        std::filesystem::remove(opts.store_path + ".lock");
        opts.base = base;
        server = std::make_unique<SweepServer>(opts);
        std::string error;
        if (!server->start(&error))
            ATLB_FATAL("bench server start failed: {}", error);
        thread = std::thread([this] { server->run(); });
    }

    ~BenchServer()
    {
        server->requestStop();
        thread.join();
        std::filesystem::remove(opts.store_path);
        std::filesystem::remove(opts.store_path + ".lock");
    }
};

/** Round-trip @p req, fatal on any transport error. */
SweepResponse
roundTrip(const BenchServer &bs, const SweepRequest &req)
{
    ServeClient client;
    std::string error;
    if (!client.connect(bs.opts.socket_path, &error))
        ATLB_FATAL("bench client connect failed: {}", error);
    SweepResponse resp;
    if (!client.roundTrip(req, resp, &error))
        ATLB_FATAL("bench round trip failed: {}", error);
    if (!resp.ok)
        ATLB_FATAL("bench request refused: {}", resp.error);
    return resp;
}

std::uint64_t
counterValue(const SweepResponse &resp, const std::string &name)
{
    for (const auto &[key, value] : resp.counters) {
        if (key == name)
            return value;
    }
    return 0;
}

/**
 * Disjoint per-client grids: every client gets its own slice of the
 * (workload x anchor-distance) product, so total work is additive and
 * no phase can hide behind store hits.
 */
std::vector<SweepRequest>
makeClientGrids(std::size_t clients, std::size_t cells_per_client)
{
    std::vector<CellRequest> cells;
    for (const char *workload : kWorkloads) {
        for (std::uint64_t d = 2; d <= (1u << 16); d <<= 1) {
            CellRequest cell;
            cell.workload = workload;
            cell.scenario = kScenario;
            cell.scheme = Scheme::Anchor;
            cell.distance = d;
            cells.push_back(cell);
        }
    }
    ATLB_ASSERT(clients * cells_per_client <= cells.size(),
                "bench grid slice exceeds the cell product");
    std::vector<SweepRequest> grids(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        grids[i].op = WireOp::Submit;
        grids[i].cells.assign(
            cells.begin() +
                static_cast<std::ptrdiff_t>(i * cells_per_client),
            cells.begin() +
                static_cast<std::ptrdiff_t>((i + 1) * cells_per_client));
    }
    return grids;
}

bool
sameResult(const SimResult &a, const SimResult &b)
{
    return a.workload == b.workload && a.scenario == b.scenario &&
           a.scheme == b.scheme &&
           a.anchor_distance == b.anchor_distance &&
           a.stats.accesses == b.stats.accesses &&
           a.stats.l1_hits == b.stats.l1_hits &&
           a.stats.l2_regular_hits == b.stats.l2_regular_hits &&
           a.stats.coalesced_hits == b.stats.coalesced_hits &&
           a.stats.page_walks == b.stats.page_walks &&
           a.stats.translation_cycles == b.stats.translation_cycles &&
           a.stats.shootdowns == b.stats.shootdowns &&
           a.stats.shootdown_cycles == b.stats.shootdown_cycles &&
           std::bit_cast<std::uint64_t>(a.instructions) ==
               std::bit_cast<std::uint64_t>(b.instructions) &&
           a.l2_hit_cycles == b.l2_hit_cycles &&
           a.coalesced_cycles == b.coalesced_cycles &&
           a.walk_cycles == b.walk_cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 200'000;

    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_serve.json";
    const std::string store_path =
        (std::filesystem::temp_directory_path() / "bench_serve.results")
            .string();
    std::filesystem::remove(store_path);

    printHeader("Result store: cold sweep vs warm (content-addressed)");
    std::cout << opts.accesses << " accesses/cell, scenario "
              << scenarioName(kScenario) << ", store " << store_path
              << "\n\n";

    Pass cold, warm;
    std::uint64_t live_cells = 0, file_bytes = 0, appends = 0;
    {
        ResultStore store(store_path);
        cold = runGrid(opts, store);
    }
    {
        // A fresh context over the reopened store: everything the cold
        // pass computed must come back without simulation.
        ResultStore store(store_path);
        warm = runGrid(opts, store);
        const ResultStore::Info info = store.info();
        live_cells = info.live_cells;
        file_bytes = info.file_bytes;
        appends = store.counters().appends;
    }
    std::filesystem::remove(store_path);

    bool identical = cold.results.size() == warm.results.size();
    for (std::size_t i = 0; identical && i < cold.results.size(); ++i)
        identical = sameResult(cold.results[i], warm.results[i]);

    const std::uint64_t cells = cold.results.size();
    const bool warm_all_hits = warm.result_hits == cells;
    const bool cold_all_misses = cold.result_hits == 0;
    const bool warm_faster = warm.seconds * 5.0 <= cold.seconds;

    Table table("Cold vs warm sweep",
                {"pass", "seconds", "result lookups", "store hits",
                 "simulated"});
    table.beginRow();
    table.cell("cold");
    table.cell(cold.seconds, 3);
    table.cell(cold.result_lookups);
    table.cell(cold.result_hits);
    table.cell(cells - cold.result_hits);
    table.beginRow();
    table.cell("warm");
    table.cell(warm.seconds, 3);
    table.cell(warm.result_lookups);
    table.cell(warm.result_hits);
    table.cell(cells - warm.result_hits);
    table.printAscii(std::cout);
    std::cout << "\nwarm speedup "
              << (warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0)
              << "x, warm hits " << warm.result_hits << "/" << cells
              << ", results identical " << (identical ? "yes" : "no")
              << "\n";

    // ---- Phase 2: serial-admission baseline vs concurrent clients.
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kCellsPerClient = 6;
    const std::vector<SweepRequest> grids =
        makeClientGrids(kClients, kCellsPerClient);

    printHeader("Cell scheduler: serial vs concurrent clients");
    std::cout << kClients << " clients x " << kCellsPerClient
              << " disjoint cells, " << opts.threads
              << " scheduler worker(s)\n\n";

    double serial_seconds = 0.0;
    {
        BenchServer server("serve_serial", opts);
        const auto start = std::chrono::steady_clock::now();
        for (const SweepRequest &grid : grids)
            roundTrip(server, grid);
        serial_seconds = secondsSince(start);
    }

    double concurrent_seconds = 0.0;
    std::uint64_t queue_wait_p99 = 0, queue_peak = 0, admission_stalls = 0;
    {
        BenchServer server("serve_conc", opts);
        std::vector<std::thread> threads;
        threads.reserve(kClients);
        const auto start = std::chrono::steady_clock::now();
        for (const SweepRequest &grid : grids) {
            threads.emplace_back(
                [&server, &grid] { roundTrip(server, grid); });
        }
        for (std::thread &t : threads)
            t.join();
        concurrent_seconds = secondsSince(start);

        SweepRequest stats;
        stats.op = WireOp::Stats;
        const SweepResponse s = roundTrip(server, stats);
        queue_wait_p99 = counterValue(s, "queue_wait_us_p99");
        queue_peak = counterValue(s, "queue_peak");
        admission_stalls = counterValue(s, "admission_stalls");
    }

    const double total_cells =
        static_cast<double>(kClients * kCellsPerClient);
    const double serial_cps =
        serial_seconds > 0.0 ? total_cells / serial_seconds : 0.0;
    const double concurrent_cps =
        concurrent_seconds > 0.0 ? total_cells / concurrent_seconds : 0.0;
    // Floor 0.95x: on one hardware thread the scheduler can only match
    // serial admission (plus noise); with real cores it should win.
    const bool concurrent_no_worse =
        concurrent_cps >= 0.95 * serial_cps;

    Table sched_table("Admission modes",
                      {"mode", "seconds", "cells/s"});
    sched_table.beginRow();
    sched_table.cell("serial");
    sched_table.cell(serial_seconds, 3);
    sched_table.cell(serial_cps, 1);
    sched_table.beginRow();
    sched_table.cell("concurrent");
    sched_table.cell(concurrent_seconds, 3);
    sched_table.cell(concurrent_cps, 1);
    sched_table.printAscii(std::cout);
    std::cout << "\nconcurrent/serial throughput "
              << (serial_cps > 0.0 ? concurrent_cps / serial_cps : 0.0)
              << "x, queue peak " << queue_peak << ", queue wait p99 "
              << queue_wait_p99 << "us, admission stalls "
              << admission_stalls << "\n";

    // ---- Phase 3: a 1-cell request against an in-flight 24-cell grid.
    printHeader("Fairness: small request vs in-flight grid");
    // Two distinct 1-cell requests of comparable cost: one timed on an
    // idle server as the reference, one timed mid-grid. Distinct cells,
    // so both simulate (no store hit can fake the latency).
    const auto one_cell = [](const char *workload) {
        SweepRequest req;
        req.op = WireOp::Submit;
        CellRequest cell;
        cell.workload = workload;
        cell.scenario = ScenarioKind::HighContig;
        cell.scheme = Scheme::Base;
        req.cells = {cell};
        return req;
    };
    const SweepRequest small_idle = one_cell("milc");
    const SweepRequest small = one_cell("canneal");
    SweepRequest large;
    large.op = WireOp::Submit;
    for (const char *workload : {"canneal", "sphinx3"}) {
        for (std::uint64_t d = 2; d <= (1u << 12); d <<= 1) {
            CellRequest cell;
            cell.workload = workload;
            cell.scenario = kScenario;
            cell.scheme = Scheme::Anchor;
            cell.distance = d;
            large.cells.push_back(cell);
        }
    }

    double small_idle_seconds = 0.0;
    double small_during_seconds = 0.0;
    double large_seconds = 0.0;
    {
        BenchServer server("serve_fair", opts);
        {
            const auto start = std::chrono::steady_clock::now();
            roundTrip(server, small_idle);
            small_idle_seconds = secondsSince(start);
        }

        double large_elapsed = 0.0;
        std::thread big([&server, &large, &large_elapsed] {
            const auto start = std::chrono::steady_clock::now();
            roundTrip(server, large);
            large_elapsed = secondsSince(start);
        });

        // Wait until the grid occupies the scheduler.
        SweepRequest stats;
        stats.op = WireOp::Stats;
        for (int i = 0; i < 1000; ++i) {
            const SweepResponse s = roundTrip(server, stats);
            if (counterValue(s, "sched_depth") +
                    counterValue(s, "sched_running") >
                0)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }

        const auto start = std::chrono::steady_clock::now();
        roundTrip(server, small);
        small_during_seconds = secondsSince(start);
        big.join();
        large_seconds = large_elapsed;
    }
    // Round-robin bounds the small request near two cells of the
    // grid's work; queueing behind all 24 cells would cost the full
    // grid time. Half the grid time separates the two regimes with
    // plenty of slack either way.
    const bool small_decoupled =
        small_during_seconds <= 0.5 * large_seconds;

    std::cout << "small idle " << small_idle_seconds << "s, during grid "
              << small_during_seconds << "s, grid " << large_seconds
              << "s, decoupled " << (small_decoupled ? "yes" : "no")
              << "\n";

    std::ofstream out(json_path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", json_path);
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_serve");
    json.field("scenario", scenarioName(kScenario));
    json.field("accesses_per_cell", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("cells", cells);
    json.field("cold_seconds", cold.seconds);
    json.field("warm_seconds", warm.seconds);
    json.field("cold_store_hits", cold.result_hits);
    json.field("warm_store_hits", warm.result_hits);
    json.field("store_live_cells", live_cells);
    json.field("store_file_bytes", file_bytes);
    json.field("store_appends_during_warm", appends);
    json.field("cold_all_misses", cold_all_misses);
    json.field("warm_all_hits", warm_all_hits);
    json.field("results_identical", identical);
    json.field("warm_store_faster_than_cold", warm_faster);
    json.field("clients", static_cast<std::uint64_t>(kClients));
    json.field("cells_per_client",
               static_cast<std::uint64_t>(kCellsPerClient));
    json.field("scheduler_threads",
               static_cast<std::uint64_t>(opts.threads));
    json.field("serial_seconds", serial_seconds);
    json.field("concurrent_seconds", concurrent_seconds);
    json.field("serial_cells_per_sec", serial_cps);
    json.field("concurrent_cells_per_sec", concurrent_cps);
    json.field("queue_peak", queue_peak);
    json.field("queue_wait_us_p99", queue_wait_p99);
    json.field("admission_stalls", admission_stalls);
    json.field("large_grid_seconds", large_seconds);
    json.field("small_idle_seconds", small_idle_seconds);
    json.field("small_during_grid_seconds", small_during_seconds);
    json.field("concurrent_no_worse_than_serial", concurrent_no_worse);
    json.field("small_latency_decoupled", small_decoupled);
    json.endObject();
    std::cout << "wrote " << json_path << "\n";

    if (!warm_all_hits || !cold_all_misses || !identical) {
        std::cerr << "bench_serve: store round-trip property violated\n";
        return 1;
    }
    if (!concurrent_no_worse) {
        std::cerr << "bench_serve: concurrent admission lost throughput "
                     "vs serial\n";
        return 1;
    }
    if (!small_decoupled) {
        std::cerr << "bench_serve: 1-cell request queued behind the "
                     "large grid\n";
        return 1;
    }
    return 0;
}
