/**
 * @file
 * Sweep-service store bench: cold vs warm content-addressed sweeps.
 *
 * Runs one small grid (3 workloads x {Base, Dynamic} x medium) twice
 * through an ExperimentContext with a persistent ResultStore attached:
 * the cold pass simulates every cell and appends it to the store, the
 * warm pass reopens the store in a fresh context and must answer every
 * cell without simulating. Reports both wall-clock times, the store
 * counters proving zero recomputation, and gates for CI: warm results
 * byte-identical to cold, all warm cells answered from the store, and
 * warm at least 5x faster than cold (the warm pass does no simulation
 * at all, so this bound is extremely loose). Results go to stdout as a
 * table and to BENCH_serve.json (or argv[1]).
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 200k here), ANCHORTLB_SCALE.
 */

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "serve/result_store.hh"
#include "stats/json_writer.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

constexpr const char *kWorkloads[] = {"canneal", "sphinx3", "milc"};
constexpr Scheme kSchemes[] = {Scheme::Base, Scheme::Anchor};
constexpr ScenarioKind kScenario = ScenarioKind::MedContig;

struct Pass
{
    double seconds = 0.0;
    std::uint64_t result_lookups = 0;
    std::uint64_t result_hits = 0;
    std::vector<SimResult> results;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Pass
runGrid(const SimOptions &opts, ResultStore &store)
{
    ExperimentContext ctx(opts);
    ctx.setResultCache(&store);
    Pass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const char *workload : kWorkloads) {
        for (const Scheme scheme : kSchemes)
            pass.results.push_back(ctx.run(workload, kScenario, scheme));
    }
    pass.seconds = secondsSince(start);
    pass.result_lookups = ctx.cacheCounters().result_lookups;
    pass.result_hits = ctx.cacheCounters().result_hits;
    return pass;
}

bool
sameResult(const SimResult &a, const SimResult &b)
{
    return a.workload == b.workload && a.scenario == b.scenario &&
           a.scheme == b.scheme &&
           a.anchor_distance == b.anchor_distance &&
           a.stats.accesses == b.stats.accesses &&
           a.stats.l1_hits == b.stats.l1_hits &&
           a.stats.l2_regular_hits == b.stats.l2_regular_hits &&
           a.stats.coalesced_hits == b.stats.coalesced_hits &&
           a.stats.page_walks == b.stats.page_walks &&
           a.stats.translation_cycles == b.stats.translation_cycles &&
           a.stats.shootdowns == b.stats.shootdowns &&
           a.stats.shootdown_cycles == b.stats.shootdown_cycles &&
           std::bit_cast<std::uint64_t>(a.instructions) ==
               std::bit_cast<std::uint64_t>(b.instructions) &&
           a.l2_hit_cycles == b.l2_hit_cycles &&
           a.coalesced_cycles == b.coalesced_cycles &&
           a.walk_cycles == b.walk_cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 200'000;

    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_serve.json";
    const std::string store_path =
        (std::filesystem::temp_directory_path() / "bench_serve.results")
            .string();
    std::filesystem::remove(store_path);

    printHeader("Result store: cold sweep vs warm (content-addressed)");
    std::cout << opts.accesses << " accesses/cell, scenario "
              << scenarioName(kScenario) << ", store " << store_path
              << "\n\n";

    Pass cold, warm;
    std::uint64_t live_cells = 0, file_bytes = 0, appends = 0;
    {
        ResultStore store(store_path);
        cold = runGrid(opts, store);
    }
    {
        // A fresh context over the reopened store: everything the cold
        // pass computed must come back without simulation.
        ResultStore store(store_path);
        warm = runGrid(opts, store);
        const ResultStore::Info info = store.info();
        live_cells = info.live_cells;
        file_bytes = info.file_bytes;
        appends = store.counters().appends;
    }
    std::filesystem::remove(store_path);

    bool identical = cold.results.size() == warm.results.size();
    for (std::size_t i = 0; identical && i < cold.results.size(); ++i)
        identical = sameResult(cold.results[i], warm.results[i]);

    const std::uint64_t cells = cold.results.size();
    const bool warm_all_hits = warm.result_hits == cells;
    const bool cold_all_misses = cold.result_hits == 0;
    const bool warm_faster = warm.seconds * 5.0 <= cold.seconds;

    Table table("Cold vs warm sweep",
                {"pass", "seconds", "result lookups", "store hits",
                 "simulated"});
    table.beginRow();
    table.cell("cold");
    table.cell(cold.seconds, 3);
    table.cell(cold.result_lookups);
    table.cell(cold.result_hits);
    table.cell(cells - cold.result_hits);
    table.beginRow();
    table.cell("warm");
    table.cell(warm.seconds, 3);
    table.cell(warm.result_lookups);
    table.cell(warm.result_hits);
    table.cell(cells - warm.result_hits);
    table.printAscii(std::cout);
    std::cout << "\nwarm speedup "
              << (warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0)
              << "x, warm hits " << warm.result_hits << "/" << cells
              << ", results identical " << (identical ? "yes" : "no")
              << "\n";

    std::ofstream out(json_path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", json_path);
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_serve");
    json.field("scenario", scenarioName(kScenario));
    json.field("accesses_per_cell", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("cells", cells);
    json.field("cold_seconds", cold.seconds);
    json.field("warm_seconds", warm.seconds);
    json.field("cold_store_hits", cold.result_hits);
    json.field("warm_store_hits", warm.result_hits);
    json.field("store_live_cells", live_cells);
    json.field("store_file_bytes", file_bytes);
    json.field("store_appends_during_warm", appends);
    json.field("cold_all_misses", cold_all_misses);
    json.field("warm_all_hits", warm_all_hits);
    json.field("results_identical", identical);
    json.field("warm_store_faster_than_cold", warm_faster);
    json.endObject();
    std::cout << "wrote " << json_path << "\n";

    if (!warm_all_hits || !cold_all_misses || !identical) {
        std::cerr << "bench_serve: store round-trip property violated\n";
        return 1;
    }
    return 0;
}
