/**
 * @file
 * Paper Figure 9: mean relative TLB misses of every scheme across all
 * six mapping scenarios — the paper's headline adaptivity result.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 9 — mean relative TLB misses, all six mappings");
    ExperimentContext ctx(bench::figureOptions());

    std::vector<std::string> headers = {"mapping"};
    for (const Scheme s : bench::comparedSchemes())
        headers.emplace_back(schemeName(s));
    Table table("Fig.9 mean relative TLB misses (%)", headers);

    for (const ScenarioKind scenario : allScenarios) {
        const auto means = bench::meanRelativeMisses(ctx, scenario);
        table.beginRow();
        table.cell(std::string(scenarioName(scenario)));
        for (const double mean : means)
            table.cellPercent(mean);
    }
    table.printAscii(std::cout);
    std::cout
        << "\nExpected shape (paper Fig. 9 / Section 5.2.2):\n"
           "  demand/eager: Cluster-2MB best prior (36%/31.6% relative); "
           "Dynamic better (32.3%/24.3%).\n"
           "  low/medium:   THP and RMM ~100%; Dynamic 64.8%/21.5% vs "
           "Cluster-2MB 68.5%/59.6%.\n"
           "  high/max:     RMM nearly eliminates misses; Dynamic "
           "nearly matches it.\n"
           "  Dynamic is best-or-tied in every column; Static Ideal "
           "bounds it from below.\n";
    bench::printSweepSummary(ctx);
    return 0;
}
