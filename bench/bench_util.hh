/**
 * @file
 * Shared plumbing for the table/figure regenerator binaries.
 *
 * Every bench prints the rows of one paper artifact. Trace length and
 * footprint scale come from ANCHORTLB_ACCESSES / ANCHORTLB_SCALE; the
 * defaults below keep the full bench suite runnable in minutes while
 * preserving the relative-miss shapes (see EXPERIMENTS.md).
 */

#ifndef ANCHORTLB_BENCH_BENCH_UTIL_HH
#define ANCHORTLB_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "stats/table.hh"

namespace atlb::bench
{

/** Options for figure benches: env overrides, else these defaults. */
SimOptions figureOptions();

/** The paper's scheme comparison set, in legend order. */
const std::vector<Scheme> &comparedSchemes();

/**
 * All (workload x scheme) cells of one scenario, run through the sweep
 * engine (parallel when ctx.options().threads > 1). Results come back
 * workload-major in paperWorkloadNames() x comparedSchemes() order.
 */
std::vector<SimResult> scenarioGrid(ExperimentContext &ctx,
                                    ScenarioKind scenario);

/**
 * Relative-miss table for one scenario over the 14 paper workloads:
 * one row per workload plus a final "mean" row — the format of paper
 * Figures 7 and 8.
 */
Table relativeMissTable(ExperimentContext &ctx, ScenarioKind scenario,
                        const std::string &title);

/**
 * One row of mean relative misses per scheme for @p scenario
 * (a column group of paper Figure 9). Values returned in
 * comparedSchemes() order, as fractions of the Base misses.
 */
std::vector<double> meanRelativeMisses(ExperimentContext &ctx,
                                       ScenarioKind scenario);

/** Pretty-print a header line for a bench binary. */
void printHeader(const std::string &what);

/**
 * Print the sweep summary — pair-cache capacity and hit rate, plus the
 * shard count when sharding is on — to stderr. Stderr, deliberately:
 * the tables on stdout must stay byte-identical across thread counts
 * (the parallel engine bypasses the context cache), and the golden
 * harness snapshots stdout only.
 */
void printSweepSummary(const ExperimentContext &ctx);

} // namespace atlb::bench

#endif // ANCHORTLB_BENCH_BENCH_UTIL_HH
