/**
 * @file
 * Ablation: TLB-miss sensitivity to the anchor distance.
 *
 * For representative workloads on the medium-contiguity mapping, run
 * the anchor scheme at every candidate distance and mark where the
 * dynamic selection lands — showing how close Algorithm 1 gets to the
 * empirical optimum (the gap the paper discusses for cactusADM).
 */

#include <iostream>

#include "bench_util.hh"
#include "os/distance_selector.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Ablation — anchor distance sweep (medium contiguity)");
    ExperimentContext ctx(bench::figureOptions());

    const char *workloads[] = {"canneal", "mcf", "cactusADM", "gups"};

    std::vector<std::string> headers = {"distance"};
    for (const char *w : workloads)
        headers.emplace_back(w);
    Table table("Relative TLB misses (%) vs anchor distance; '*' marks "
                "the dynamic selection",
                headers);

    std::vector<std::uint64_t> base;
    std::vector<std::uint64_t> dynamic_d;
    for (const char *w : workloads) {
        base.push_back(
            ctx.run(w, ScenarioKind::MedContig, Scheme::Base).misses());
        dynamic_d.push_back(
            ctx.dynamicDistance(w, ScenarioKind::MedContig));
    }

    for (const std::uint64_t d : candidateDistances()) {
        table.beginRow();
        table.cell(d);
        for (std::size_t i = 0; i < std::size(workloads); ++i) {
            const SimResult r = ctx.run(
                workloads[i], ScenarioKind::MedContig, Scheme::Anchor, d);
            std::string cell =
                std::to_string(static_cast<int>(
                    relativeMisses(r.misses(), base[i]) * 100)) +
                "%";
            if (d == dynamic_d[i])
                cell += " *";
            table.cell(cell);
        }
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: misses fall as the distance "
                 "approaches the mapping's chunk\nscale, then flatten or "
                 "rebound once anchors overshoot the chunks; the "
                 "dynamic\npick sits at or near each column's minimum "
                 "(the paper notes cactusADM as the\ncase where the "
                 "static histogram misses the access-weighted "
                 "optimum).\n";
    return 0;
}
