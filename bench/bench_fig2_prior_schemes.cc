/**
 * @file
 * Paper Figure 2: relative TLB misses of the prior schemes (baseline,
 * cluster TLB, RMM) under three mapping-contiguity regimes — the
 * motivating observation that no prior scheme wins everywhere.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 2 — prior schemes under small/medium/large contiguity");

    ExperimentContext ctx(bench::figureOptions());
    const Scheme schemes[] = {Scheme::Base, Scheme::Cluster, Scheme::Rmm};
    const std::pair<ScenarioKind, const char *> mappings[] = {
        {ScenarioKind::LowContig, "Small contig."},
        {ScenarioKind::MedContig, "Medium contig."},
        {ScenarioKind::HighContig, "Large contig."},
    };

    Table table("Fig.2 relative TLB misses (%), mean over the paper "
                "workload set",
                {"mapping", "Base", "cluster", "RMM"});
    for (const auto &[scenario, label] : mappings) {
        double sums[3] = {0, 0, 0};
        const auto workloads = paperWorkloadNames();
        for (const auto &workload : workloads) {
            const std::uint64_t base =
                ctx.run(workload, scenario, Scheme::Base).misses();
            for (int i = 0; i < 3; ++i) {
                sums[i] += relativeMisses(
                    ctx.run(workload, scenario, schemes[i]).misses(),
                    base);
            }
        }
        table.beginRow();
        table.cell(std::string(label));
        for (double sum : sums)
            table.cellPercent(sum /
                              static_cast<double>(workloads.size()));
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape (paper Fig. 2): cluster helps at small "
                 "chunks but saturates;\nRMM is ineffective at "
                 "small/medium chunks and nearly eliminates misses at\n"
                 "large chunks.\n";
    bench::printSweepSummary(ctx);
    return 0;
}
