/**
 * @file
 * Paper Figure 7: relative TLB misses under the demand-paging mapping,
 * every scheme x every workload, normalised to the baseline.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Figure 7 — relative TLB misses, demand paging");
    ExperimentContext ctx(bench::figureOptions());
    bench::relativeMissTable(ctx, ScenarioKind::Demand,
                             "Fig.7 relative TLB misses (%), demand")
        .printAscii(std::cout);
    std::cout << "\nExpected shape (paper Fig. 7): THP/RMM/Cluster-2MB "
                 "all benefit from the\n2MB-rich mapping; Dynamic "
                 "matches or beats the best prior scheme per workload\n"
                 "(paper means: THP 40%, Cluster-2MB 36%, Dynamic 32.7% "
                 "relative misses);\nomnetpp/xalancbmk only respond to "
                 "fine-grained coalescing.\n";
    return 0;
}
