/**
 * @file
 * Paper Figure 11: translation-CPI breakdown under the
 * medium-contiguity mapping.
 */

#include "bench_cpi_common.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 11 — translation CPI breakdown, medium contiguity");
    bench::printCpiBreakdown(ScenarioKind::MedContig, "Fig.11");
    std::cout << "\nExpected shape (paper Fig. 11): THP/RMM columns "
                 "match the baseline (no 2MB\nchunks to exploit); "
                 "cluster variants trim the walk component; Dynamic "
                 "removes\nmost of it (paper: graph500 down ~3.5 CPI "
                 "from 12.4).\n";
    return 0;
}
