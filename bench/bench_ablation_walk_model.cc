/**
 * @file
 * Ablation: walk-latency model — the paper's flat 50-cycle walk vs a
 * page-walk-cache model with per-level memory references.
 *
 * The paper's conclusions are about *miss counts*; the walk model only
 * scales the CPI figures. This ablation verifies that claim: relative
 * misses are identical under both models, and the CPI ordering of the
 * schemes is preserved even though absolute walk costs change.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Ablation — flat 50-cycle walk vs page-walk-cache model");

    Table table("canneal translation CPI under both walk models",
                {"mapping", "scheme", "flat CPI", "PWC CPI",
                 "flat misses", "PWC misses"});

    for (const ScenarioKind scenario :
         {ScenarioKind::Demand, ScenarioKind::MedContig}) {
        SimOptions flat_opts = bench::figureOptions();
        SimOptions pwc_opts = flat_opts;
        pwc_opts.mmu.pwc_enabled = true;
        ExperimentContext flat(flat_opts);
        ExperimentContext pwc(pwc_opts);

        for (const Scheme scheme :
             {Scheme::Base, Scheme::Thp, Scheme::Anchor}) {
            const SimResult a = flat.run("canneal", scenario, scheme);
            const SimResult b = pwc.run("canneal", scenario, scheme);
            table.beginRow();
            table.cell(std::string(scenarioName(scenario)));
            table.cell(std::string(schemeName(scheme)));
            table.cell(a.translationCpi(), 4);
            table.cell(b.translationCpi(), 4);
            table.cell(a.misses());
            table.cell(b.misses());
        }
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: miss counts are identical under "
                 "both models (the walk model\nonly prices walks); PWC "
                 "CPIs are lower (warm upper levels) but the scheme\n"
                 "ordering — Base > THP > Dynamic — is unchanged.\n";
    return 0;
}
