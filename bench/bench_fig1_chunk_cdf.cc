/**
 * @file
 * Paper Figure 1: cumulative distributions of mapping chunk sizes for
 * canneal and raytrace under varying co-runner memory pressure.
 *
 * The paper captured pagemaps on 2- and 4-socket machines while random
 * PARSEC background jobs churned memory. We reproduce the experiment's
 * structure by sweeping the fragmentation injector's pressure level
 * ("solo" = pristine pool, then increasingly shattered pools) and
 * printing the weighted CDF of the resulting chunk-size distribution at
 * the paper's x-axis points (2^0 .. 2^10 contiguous 4KB pages).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "os/scenario.hh"
#include "stats/table.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

/** Pressure sweep: mean free-run length of the pressured pool. */
const std::uint64_t pressure_runs[] = {0, 2048, 512, 128, 32, 8};

void
printCdf(const std::string &workload, double scale)
{
    const WorkloadSpec &spec = findWorkload(workload);
    ScenarioParams params;
    params.footprint_pages = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprintPages()) * scale);
    params.seed = 7;

    std::vector<std::string> headers = {"pressure (run pages)"};
    for (unsigned shift = 0; shift <= 10; ++shift)
        headers.push_back("<=2^" + std::to_string(shift));

    Table table("Fig.1 " + workload +
                    ": cumulative fraction of pages in chunks of <= N "
                    "contiguous 4KB pages",
                headers);
    for (const std::uint64_t run : pressure_runs) {
        const MemoryMap map = buildDemandWithPressure(params, run);
        const Histogram hist = map.contiguityHistogram();
        table.beginRow();
        table.cell(run == 0 ? std::string("solo (pristine)")
                            : std::to_string(run));
        for (unsigned shift = 0; shift <= 10; ++shift) {
            const std::uint64_t limit = 1ULL << shift;
            std::uint64_t pages_below = 0;
            for (const auto &[size, count] : hist.entries())
                if (size <= limit)
                    pages_below += size * count;
            table.cellPercent(static_cast<double>(pages_below) /
                              static_cast<double>(map.mappedPages()));
        }
        ++params.seed; // separate run, like a separate capture
    }
    table.printAscii(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Figure 1 — chunk-size CDFs under diverse memory pressure");
    const SimOptions opts = bench::figureOptions();
    printCdf("canneal", opts.footprint_scale);
    printCdf("raytrace", opts.footprint_scale);
    std::cout << "Expected shape (paper Fig. 1): the solo run is "
                 "dominated by large chunks;\nincreasing pressure shifts "
                 "weight toward small chunks with wide variation\n"
                 "between runs and no single representative "
                 "distribution.\n";
    return 0;
}
