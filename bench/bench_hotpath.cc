/**
 * @file
 * Translate-kernel hot-path bench: per-access loop vs batch kernel.
 *
 * Measures the translation inner loop in isolation: the access stream
 * is materialised once (untimed), then driven through a fresh MMU per
 * measurement twice — once via the per-access translate() reference
 * loop, once via the scheme's devirtualized translateBatch kernel in
 * 1024-access batches. Every concrete scheme class is covered,
 * including the two outside the experiment grid (COLT, multi-region
 * anchor). The two modes must land on byte-identical MmuStats (fatal
 * check, same contract the golden harness pins); the interesting
 * number is the speedup ratio.
 *
 * Each cell's batch kernel is additionally timed under the forced
 * scalar SIMD level (fresh MMU, same stream, forceSimdLevel), so the
 * report carries a per-cell `simd_vs_scalar` ratio — the speedup of
 * the process's detected vector level (AVX2/NEON) over the scalar
 * reference, with fatally-checked identical MmuStats. On hardware
 * with no vector level the double measurement is skipped and the
 * ratios record 1.0.
 *
 * Results go to BENCH_hotpath.json (or argv[1]). The CI gates are
 * machine-independent: `"batched_at_least_serial": true` requires
 * ratio >= 1.0 for every scheme, `"simd_at_least_scalar": true` the
 * same per-scheme aggregate for the vector kernel, and two floors
 * that pin the tentpole speedup whenever a vector level is present:
 * `"simd_gups_speedup_ok"` (>= 1.3 on gups/base, where every access
 * probes and the vector pre-pass + prefetch dominate; measured
 * 1.7-2.0x on the reference 1-hw-thread container) and
 * `"simd_mcf_speedup_ok"` (>= 1.05 on mcf/base and mcf/anchor, where
 * 94% of accesses are L0-filtered and the residual probes are
 * walk-bound; measured 1.1-1.3x on the same container, floored
 * conservatively because scheduler noise on a single hardware thread
 * swings per-cell ratios by ~15%). Absolute seconds are recorded
 * honestly per host and vary.
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 1M), ANCHORTLB_SCALE,
 * ANCHORTLB_SEED, ANCHORTLB_HOTPATH_REPS (default 3; min-of-reps
 * damps scheduler noise).
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/region_partitioner.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "stats/json_writer.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

/** The fig9-shaped cells measured: typical reuse plus scattered gups. */
const std::vector<std::string> &
hotpathWorkloads()
{
    static const std::vector<std::string> names = {"mcf", "gups"};
    return names;
}

struct CellTimes
{
    std::string workload;
    std::string scheme;
    double serial_seconds = 0.0;
    double batched_seconds = 0.0;
    double batched_scalar_seconds = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t l0_filtered = 0;

    double ratio() const { return serial_seconds / batched_seconds; }
    double simdRatio() const
    {
        return batched_scalar_seconds / batched_seconds;
    }
};

bool
statsEqual(const MmuStats &a, const MmuStats &b)
{
    return a.accesses == b.accesses && a.l1_hits == b.l1_hits &&
           a.l2_regular_hits == b.l2_regular_hits &&
           a.coalesced_hits == b.coalesced_hits &&
           a.page_walks == b.page_walks &&
           a.translation_cycles == b.translation_cycles;
}

double
secondsOf(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * One cell's worth of state: the materialised stream plus everything
 * needed to build a fresh MMU of each scheme over it.
 */
struct CellState
{
    std::vector<MemAccess> stream;
    MemoryMap map;
    PageTable plain_table;
    PageTable thp_table;
    PageTable anchor_table;
    PageTable region_table;
    RegionPartition partition;
    std::uint64_t anchor_distance = 0;

    CellState(const SimOptions &opts, const std::string &workload)
        : map(buildScenario(ScenarioKind::MedContig,
                            scenarioParamsFor(
                                opts, scaledWorkloadSpec(opts, workload)))),
          plain_table(buildPageTable(map, false)),
          thp_table(buildPageTable(map, true)),
          anchor_table(buildPageTable(map, true)),
          region_table(buildPageTable(map, false)),
          partition(partitionAnchorRegions(map))
    {
        const WorkloadSpec spec = scaledWorkloadSpec(opts, workload);
        anchor_distance =
            selectAnchorDistance(map.contiguityHistogram()).distance;
        anchor_table.sweepAnchors(map,
                                  AnchorDist::fromPages(anchor_distance));
        region_table = buildRegionAnchorPageTable(map, partition);

        stream.resize(static_cast<std::size_t>(opts.accesses));
        const std::unique_ptr<TraceSource> trace =
            makeCellTrace(opts, spec, opts.accesses);
        std::size_t filled = 0;
        while (filled < stream.size()) {
            const std::size_t n = trace->fill(stream.data() + filled,
                                              stream.size() - filled);
            ATLB_ASSERT(n > 0, "trace ended early");
            filled += n;
        }
    }

    std::unique_ptr<Mmu> makeMmu(const std::string &scheme,
                                 const MmuConfig &cfg) const
    {
        if (scheme == "base")
            return std::make_unique<BaselineMmu>(cfg, plain_table);
        if (scheme == "thp")
            return std::make_unique<BaselineMmu>(cfg, thp_table, "thp");
        if (scheme == "colt")
            return std::make_unique<ColtMmu>(cfg, plain_table);
        if (scheme == "cluster")
            return std::make_unique<ClusterMmu>(cfg, plain_table, false);
        if (scheme == "cluster-2mb")
            return std::make_unique<ClusterMmu>(cfg, thp_table, true);
        if (scheme == "rmm")
            return std::make_unique<RmmMmu>(cfg, thp_table, map);
        if (scheme == "anchor")
            return std::make_unique<AnchorMmu>(
                cfg, anchor_table, AnchorDist::fromPages(anchor_distance));
        if (scheme == "region-anchor")
            return std::make_unique<RegionAnchorMmu>(cfg, region_table,
                                                     partition);
        ATLB_FATAL("unknown hotpath scheme '{}'", scheme);
    }
};

const std::vector<std::string> &
hotpathSchemes()
{
    static const std::vector<std::string> names = {
        "base", "thp",    "colt",   "cluster",
        "rmm",  "anchor", "region-anchor", "cluster-2mb",
    };
    return names;
}

/**
 * Time both loop flavours over one cell, min over @p reps runs each.
 * Each run drives a fresh MMU so TLB warmth never leaks between
 * measurements; both flavours must produce identical MmuStats. When
 * the process's SIMD level is a vector one, the batch kernel is timed
 * a third time with the scalar level forced (the MMU captures the
 * level at construction, so forcing around makeMmu is sufficient);
 * the scalar run must also land on identical stats.
 */
CellTimes
measureCell(const std::string &workload, const CellState &cell,
            const std::string &scheme, const MmuConfig &cfg,
            unsigned reps)
{
    const SimdLevel active = simdLevel();
    CellTimes t;
    t.workload = workload;
    t.scheme = scheme;
    t.serial_seconds = std::numeric_limits<double>::infinity();
    t.batched_seconds = std::numeric_limits<double>::infinity();
    t.batched_scalar_seconds = std::numeric_limits<double>::infinity();

    for (unsigned rep = 0; rep < reps; ++rep) {
        MmuStats serial_stats;
        {
            const std::unique_ptr<Mmu> mmu = cell.makeMmu(scheme, cfg);
            const auto start = std::chrono::steady_clock::now();
            for (const MemAccess &a : cell.stream)
                mmu->translate(a.vaddr);
            t.serial_seconds =
                std::min(t.serial_seconds, secondsOf(start));
            serial_stats = mmu->stats();
        }

        BatchStats bs;
        {
            const std::unique_ptr<Mmu> mmu = cell.makeMmu(scheme, cfg);
            const auto start = std::chrono::steady_clock::now();
            constexpr std::size_t batch = 1024;
            for (std::size_t i = 0; i < cell.stream.size(); i += batch) {
                mmu->translateBatch(
                    cell.stream.data() + i,
                    std::min(batch, cell.stream.size() - i), bs);
            }
            t.batched_seconds =
                std::min(t.batched_seconds, secondsOf(start));
            if (!statsEqual(mmu->stats(), serial_stats))
                ATLB_FATAL("{}/{}: batch kernel diverged from the "
                           "per-access loop",
                           workload, scheme);
        }

        if (active != SimdLevel::Scalar) {
            forceSimdLevel(SimdLevel::Scalar);
            const std::unique_ptr<Mmu> mmu = cell.makeMmu(scheme, cfg);
            forceSimdLevel(active);
            BatchStats sbs;
            const auto start = std::chrono::steady_clock::now();
            constexpr std::size_t batch = 1024;
            for (std::size_t i = 0; i < cell.stream.size(); i += batch) {
                mmu->translateBatch(
                    cell.stream.data() + i,
                    std::min(batch, cell.stream.size() - i), sbs);
            }
            t.batched_scalar_seconds =
                std::min(t.batched_scalar_seconds, secondsOf(start));
            if (!statsEqual(mmu->stats(), serial_stats))
                ATLB_FATAL("{}/{}: scalar batch kernel diverged from "
                           "the per-access loop",
                           workload, scheme);
        } else {
            // No vector level on this host: record a neutral 1.0 ratio
            // rather than timing the same kernel twice.
            t.batched_scalar_seconds = t.batched_seconds;
        }

        if (rep == 0) {
            t.accesses = serial_stats.accesses;
            t.l0_filtered = bs.l0_filtered;
        }
    }
    if (active == SimdLevel::Scalar)
        t.batched_scalar_seconds = t.batched_seconds;
    return t;
}

void
emitJson(const std::string &path, const SimOptions &opts,
         const std::vector<CellTimes> &times)
{
    std::ofstream out(path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", path);
    // CI greps for '"batched_at_least_serial": true' — JsonWriter's
    // `"key": value` layout is part of that contract.
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_hotpath");
    json.field("accesses_per_cell", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    const bool vector = simdLevel() != SimdLevel::Scalar;
    json.field("simd_level", simdLevelName(simdLevel()));
    double min_cell_ratio = std::numeric_limits<double>::infinity();
    json.key("cells");
    json.beginObject();
    for (const CellTimes &t : times) {
        min_cell_ratio = std::min(min_cell_ratio, t.ratio());
        json.key(t.workload + "/" + t.scheme);
        json.beginObject();
        json.field("serial_seconds", t.serial_seconds);
        json.field("batched_seconds", t.batched_seconds);
        json.field("batched_scalar_seconds", t.batched_scalar_seconds);
        json.field("ratio", t.ratio());
        json.field("simd_vs_scalar", t.simdRatio());
        json.field("batched_accesses_per_sec",
                   static_cast<double>(t.accesses) / t.batched_seconds);
        json.field("l0_filtered_fraction",
                   static_cast<double>(t.l0_filtered) /
                       static_cast<double>(t.accesses));
        json.endObject();
    }
    json.endObject();

    // The gate aggregates each scheme over its workloads: per-cell
    // ratios on miss-dominated cells (gups) sit near 1.0 and jitter
    // across reps, while the scheme aggregate keeps mcf's batch margin
    // as a cushion — stable enough to enforce >= 1.0 in CI.
    double min_scheme_ratio = std::numeric_limits<double>::infinity();
    double min_scheme_simd = std::numeric_limits<double>::infinity();
    json.key("schemes");
    json.beginObject();
    for (const std::string &scheme : hotpathSchemes()) {
        double serial = 0.0;
        double batched = 0.0;
        double batched_scalar = 0.0;
        for (const CellTimes &t : times) {
            if (t.scheme != scheme)
                continue;
            serial += t.serial_seconds;
            batched += t.batched_seconds;
            batched_scalar += t.batched_scalar_seconds;
        }
        const double ratio = serial / batched;
        const double simd_ratio = batched_scalar / batched;
        min_scheme_ratio = std::min(min_scheme_ratio, ratio);
        min_scheme_simd = std::min(min_scheme_simd, simd_ratio);
        json.key(scheme);
        json.beginObject();
        json.field("serial_seconds", serial);
        json.field("batched_seconds", batched);
        json.field("batched_scalar_seconds", batched_scalar);
        json.field("ratio", ratio);
        json.field("simd_vs_scalar", simd_ratio);
        json.endObject();
    }
    json.endObject();
    json.field("min_cell_ratio", min_cell_ratio);
    json.field("min_scheme_ratio", min_scheme_ratio);
    json.field("min_scheme_simd_vs_scalar", min_scheme_simd);
    json.field("batched_at_least_serial", min_scheme_ratio >= 1.0);
    // Same aggregation rationale as batched_at_least_serial: per-cell
    // simd ratios on walk-dominated cells (gups) hover near 1.0, the
    // scheme aggregate keeps mcf's vector-filter margin as cushion.
    json.field("simd_at_least_scalar", min_scheme_simd >= 1.0);
    // The tentpole numbers (trivially true on scalar-only hosts,
    // which have nothing to compare):
    //  - gups/base probes on ~every access, so the vector pre-pass,
    //    inline probes and miss-path prefetch all show: measured
    //    1.7-2.0x on the reference container, gated at 1.3.
    //  - mcf cells are 94% L0-filtered; the filter itself is cheap in
    //    either kernel, so the residual walk-bound probes cap the
    //    vector win: measured 1.1-1.3x, gated at 1.05 — a floor a
    //    ~15% single-hardware-thread scheduler swing cannot flake.
    double gups_floor = std::numeric_limits<double>::infinity();
    double mcf_floor = std::numeric_limits<double>::infinity();
    for (const CellTimes &t : times) {
        if (t.workload == "gups" && t.scheme == "base")
            gups_floor = std::min(gups_floor, t.simdRatio());
        if (t.workload == "mcf" &&
            (t.scheme == "base" || t.scheme == "anchor"))
            mcf_floor = std::min(mcf_floor, t.simdRatio());
    }
    json.field("gups_simd_vs_scalar_floor", gups_floor);
    json.field("simd_gups_speedup_ok", !vector || gups_floor >= 1.3);
    json.field("mcf_simd_vs_scalar_floor", mcf_floor);
    json.field("simd_mcf_speedup_ok", !vector || mcf_floor >= 1.05);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = figureOptions();
    const unsigned reps = static_cast<unsigned>(
        envU64("ANCHORTLB_HOTPATH_REPS", 3));
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_hotpath.json";

    printHeader("Translate hot path: per-access loop vs batch kernel");
    std::cout << "simd level: " << simdLevelName(simdLevel()) << "\n";
    std::cout << "cells: " << hotpathWorkloads().size()
              << " workloads (MedContig) x " << hotpathSchemes().size()
              << " schemes, " << opts.accesses
              << " accesses/cell, min of " << reps << " reps\n";

    std::vector<CellTimes> times;
    for (const std::string &w : hotpathWorkloads()) {
        const CellState cell(opts, w);
        for (const std::string &scheme : hotpathSchemes()) {
            times.push_back(
                measureCell(w, cell, scheme, opts.mmu, reps));
            const CellTimes &t = times.back();
            std::cout << t.workload << "/" << t.scheme << ": serial "
                      << t.serial_seconds << " s, batched "
                      << t.batched_seconds << " s, ratio " << t.ratio()
                      << "x, simd vs scalar " << t.simdRatio()
                      << "x (L0 filtered "
                      << 100.0 * static_cast<double>(t.l0_filtered) /
                             static_cast<double>(t.accesses)
                      << "%)\n";
        }
    }

    emitJson(json_path, opts, times);
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
