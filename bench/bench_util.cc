#include "bench_util.hh"

#include <cstdlib>
#include <iostream>

#include "common/logging.hh"
#include "sim/parallel_runner.hh"
#include "trace/workload.hh"

namespace atlb::bench
{

SimOptions
figureOptions()
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 1'000'000;
    return opts;
}

const std::vector<Scheme> &
comparedSchemes()
{
    static const std::vector<Scheme> schemes(std::begin(allSchemes),
                                             std::end(allSchemes));
    return schemes;
}

namespace
{

/** Index of Scheme::Base in comparedSchemes() (the denominator). */
std::size_t
baseSchemeColumn()
{
    const auto &schemes = comparedSchemes();
    for (std::size_t i = 0; i < schemes.size(); ++i)
        if (schemes[i] == Scheme::Base)
            return i;
    ATLB_FATAL("comparedSchemes() must include Scheme::Base");
}

} // namespace

std::vector<SimResult>
scenarioGrid(ExperimentContext &ctx, ScenarioKind scenario)
{
    std::vector<CellJob> jobs;
    for (const auto &workload : paperWorkloadNames())
        for (const Scheme s : comparedSchemes())
            jobs.push_back({workload, scenario, s, {}});
    return runCells(ctx, jobs);
}

Table
relativeMissTable(ExperimentContext &ctx, ScenarioKind scenario,
                  const std::string &title)
{
    std::vector<std::string> headers = {"workload"};
    for (const Scheme s : comparedSchemes())
        headers.emplace_back(schemeName(s));

    Table table(title, headers);
    std::vector<double> sums(comparedSchemes().size(), 0.0);
    const auto workloads = paperWorkloadNames();
    const auto results = scenarioGrid(ctx, scenario);

    // One result row per workload, in comparedSchemes() order; the Base
    // column is the denominator.
    const std::size_t schemes = comparedSchemes().size();
    const std::size_t base_col = baseSchemeColumn();
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::uint64_t base =
            results[w * schemes + base_col].misses();
        table.beginRow();
        table.cell(workloads[w]);
        for (std::size_t i = 0; i < schemes; ++i) {
            const double rel =
                relativeMisses(results[w * schemes + i].misses(), base);
            sums[i] += rel;
            table.cellPercent(rel);
        }
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (const double sum : sums)
        table.cellPercent(sum / static_cast<double>(workloads.size()));
    return table;
}

std::vector<double>
meanRelativeMisses(ExperimentContext &ctx, ScenarioKind scenario)
{
    std::vector<double> sums(comparedSchemes().size(), 0.0);
    const auto workloads = paperWorkloadNames();
    const auto results = scenarioGrid(ctx, scenario);
    const std::size_t schemes = comparedSchemes().size();
    const std::size_t base_col = baseSchemeColumn();
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::uint64_t base =
            results[w * schemes + base_col].misses();
        for (std::size_t i = 0; i < schemes; ++i)
            sums[i] += relativeMisses(results[w * schemes + i].misses(),
                                      base);
    }
    for (double &sum : sums)
        sum /= static_cast<double>(workloads.size());
    return sums;
}

void
printSweepSummary(const ExperimentContext &ctx)
{
    const auto &c = ctx.cacheCounters();
    std::cerr << "### sweep summary: pair-cache capacity "
              << ctx.cacheCapacity() << ", " << c.hits << "/" << c.lookups
              << " hits (" << static_cast<int>(c.hitRate() * 100.0 + 0.5)
              << "%)";
    if (ctx.options().shards > 1)
        std::cerr << ", " << ctx.options().shards << " shards/cell";
    std::cerr << "\n";
}

void
printHeader(const std::string &what)
{
    std::cout << "\n### " << what << "\n"
              << "### (shapes comparable to the paper; absolute numbers "
                 "come from the synthetic substrate — see EXPERIMENTS.md)"
              << "\n\n";
}

} // namespace atlb::bench
