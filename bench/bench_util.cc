#include "bench_util.hh"

#include <cstdlib>
#include <iostream>

#include "trace/workload.hh"

namespace atlb::bench
{

SimOptions
figureOptions()
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 1'000'000;
    return opts;
}

const std::vector<Scheme> &
comparedSchemes()
{
    static const std::vector<Scheme> schemes(std::begin(allSchemes),
                                             std::end(allSchemes));
    return schemes;
}

Table
relativeMissTable(ExperimentContext &ctx, ScenarioKind scenario,
                  const std::string &title)
{
    std::vector<std::string> headers = {"workload"};
    for (const Scheme s : comparedSchemes())
        headers.emplace_back(schemeName(s));

    Table table(title, headers);
    std::vector<double> sums(comparedSchemes().size(), 0.0);
    const auto workloads = paperWorkloadNames();

    for (const auto &workload : workloads) {
        const std::uint64_t base =
            ctx.run(workload, scenario, Scheme::Base).misses();
        table.beginRow();
        table.cell(workload);
        for (std::size_t i = 0; i < comparedSchemes().size(); ++i) {
            const SimResult r =
                ctx.run(workload, scenario, comparedSchemes()[i]);
            const double rel = relativeMisses(r.misses(), base);
            sums[i] += rel;
            table.cellPercent(rel);
        }
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (const double sum : sums)
        table.cellPercent(sum / static_cast<double>(workloads.size()));
    return table;
}

std::vector<double>
meanRelativeMisses(ExperimentContext &ctx, ScenarioKind scenario)
{
    std::vector<double> sums(comparedSchemes().size(), 0.0);
    const auto workloads = paperWorkloadNames();
    for (const auto &workload : workloads) {
        const std::uint64_t base =
            ctx.run(workload, scenario, Scheme::Base).misses();
        for (std::size_t i = 0; i < comparedSchemes().size(); ++i) {
            const SimResult r =
                ctx.run(workload, scenario, comparedSchemes()[i]);
            sums[i] += relativeMisses(r.misses(), base);
        }
    }
    for (double &sum : sums)
        sum /= static_cast<double>(workloads.size());
    return sums;
}

void
printHeader(const std::string &what)
{
    std::cout << "\n### " << what << "\n"
              << "### (shapes comparable to the paper; absolute numbers "
                 "come from the synthetic substrate — see EXPERIMENTS.md)"
              << "\n\n";
}

} // namespace atlb::bench
