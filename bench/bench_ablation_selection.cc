/**
 * @file
 * Ablation: distance-selection cost models.
 *
 * Algorithm 1's prose ("weight is the inverse of the coverage") admits
 * two readings; this ablation compares the entry-count model we default
 * to against the literal coverage-weighted sum, showing the distances
 * each picks and the misses each achieves, next to the empirical best.
 */

#include <iostream>

#include "bench_util.hh"
#include "os/distance_selector.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Ablation — distance-selection cost models");
    ExperimentContext ctx(bench::figureOptions());

    Table table("Selection policy comparison (medium contiguity): "
                "distance picked and relative misses",
                {"workload", "count d", "count miss%", "weighted d",
                 "weighted miss%", "oracle d", "oracle miss%"});

    for (const char *workload :
         {"canneal", "mcf", "milc", "omnetpp", "gups"}) {
        const ScenarioKind k = ScenarioKind::MedContig;
        const Histogram hist =
            ctx.mapping(workload, k).contiguityHistogram();
        const std::uint64_t base =
            ctx.run(workload, k, Scheme::Base).misses();

        const auto count_sel =
            selectAnchorDistance(hist, DistanceCostModel::EntryCount);
        const auto weighted_sel = selectAnchorDistance(
            hist, DistanceCostModel::CoverageWeighted);
        const SimResult count_run =
            ctx.run(workload, k, Scheme::Anchor, count_sel.distance);
        const SimResult weighted_run =
            ctx.run(workload, k, Scheme::Anchor, weighted_sel.distance);
        const SimResult oracle = ctx.run(workload, k, Scheme::AnchorIdeal);

        table.beginRow();
        table.cell(std::string(workload));
        table.cell(count_sel.distance);
        table.cellPercent(relativeMisses(count_run.misses(), base));
        table.cell(weighted_sel.distance);
        table.cellPercent(relativeMisses(weighted_run.misses(), base));
        table.cell(oracle.anchor_distance);
        table.cellPercent(relativeMisses(oracle.misses(), base));
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: the coverage-weighted reading "
                 "systematically picks smaller\ndistances and loses "
                 "coverage; the entry-count model tracks the oracle "
                 "(and\nreproduces paper Table 6's selections).\n";
    return 0;
}
