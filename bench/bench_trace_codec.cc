/**
 * @file
 * Trace codec bench: ATLBTRC2 compression ratio and reader throughput.
 *
 * For a spread of paper workloads (tight loops through graph chasers)
 * materialises each access stream once, writes it as flat v1
 * (ATLBTRC1, 8 bytes/access) and as delta-varint v2 (ATLBTRC2), and
 * reports the size ratio plus encode/decode throughput for every
 * reader: the v1 ifstream reader, the v1 mmap reader, and the v2
 * block decoder. Results go to stdout as a table and to
 * BENCH_trace_codec.json (or argv[1]) for CI.
 *
 * The machine-independent payload is the compression column: the
 * declared target is v2 <= 60% of v1 on these streams (the JSON records
 * `all_within_target`). Throughput numbers are host-dependent; the one
 * portable claim — the mmap reader does not lose to the ifstream
 * reader — is recorded as `mmap_at_least_ifstream` per stream.
 *
 * The v2 decode column is measured twice when the process has a vector
 * SIMD level: once as built (whole-block SIMD unpack of packed blocks)
 * and once with the scalar level forced around TraceV2Source
 * construction (per-delta getBits). A separate unpack phase times the
 * raw bit-unpack kernels — scalarUnpackBits vs the dispatched kernel —
 * over packed buffers at a width sweep, isolated from I/O, checksums
 * and delta accumulation; `simd_unpack_at_least_scalar` gates the
 * sweep at >= 1.0 in CI and `simd_unpack_speedup` records the honest
 * minimum speedup.
 *
 * A streamed-import phase runs FIRST (getrusage peak RSS is a
 * process-wide high-water mark, so it must precede any stream
 * materialisation): the synthetic generator feeds TraceV2Writer
 * directly and TraceV2Source::fill replays the file, with no
 * std::vector<MemAccess> stage at either end. Two trace lengths (8x
 * apart) are run back to back; the peak RSS delta between them must
 * stay under a fixed slack, asserting O(block) decoder memory
 * independent of trace length (`rss_independent_of_length` in the
 * JSON).
 *
 * Budget knobs: ANCHORTLB_ACCESSES (default 1M here), ANCHORTLB_SCALE,
 * ANCHORTLB_STREAM_ACCESSES (long streamed length, default 100M).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "bench_util.hh"
#include "common/bitpack.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "ingest/mapped_trace.hh"
#include "ingest/trace_v2.hh"
#include "sim/experiment.hh"
#include "stats/json_writer.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;
using namespace atlb::bench;

/** Locality spread: dense, strided, mixed, and pointer-chasing. */
const char *const kWorkloads[] = {"gups", "milc", "graph500", "mcf",
                                  "mummer"};

struct StreamReport
{
    std::string workload;
    std::uint64_t accesses = 0;
    std::uint64_t v1_bytes = 0;
    std::uint64_t v2_bytes = 0;
    double ratio = 0.0; //!< v2 / v1
    double encode_maccess_s = 0.0;
    double v1_ifstream_maccess_s = 0.0;
    double v1_mmap_maccess_s = 0.0;
    double v2_maccess_s = 0.0;
    double v2_scalar_maccess_s = 0.0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        ATLB_FATAL("cannot stat '{}'", path);
    return static_cast<std::uint64_t>(in.tellg());
}

/** Drain @p source, returning accesses/second. */
double
drainRate(TraceSource &source, std::uint64_t expected)
{
    MemAccess buf[1024];
    std::uint64_t total = 0;
    std::uint64_t checksum = 0;
    const auto start = std::chrono::steady_clock::now();
    std::size_t n;
    while ((n = source.fill(buf, 1024)) > 0) {
        total += n;
        checksum ^= buf[0].vaddr.raw(); // keep the loop un-eliminable
    }
    const double secs = secondsSince(start);
    if (total != expected)
        ATLB_FATAL("reader drained {} of {} accesses", total, expected);
    if (checksum == 0x1234567887654321ULL)
        std::cerr << ""; // never taken; defeats dead-code elimination
    return secs > 0.0 ? static_cast<double>(total) / secs : 0.0;
}

/** Process-wide peak RSS in bytes (Linux ru_maxrss is in KiB). */
std::uint64_t
peakRssBytes()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        ATLB_FATAL("getrusage failed");
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

struct StreamedReport
{
    std::uint64_t accesses = 0;
    std::uint64_t file_bytes = 0;
    double import_maccess_s = 0.0; //!< generate+encode, no buffering
    double replay_maccess_s = 0.0; //!< streamed TraceV2Source::fill
    std::uint64_t peak_rss_bytes = 0; //!< high-water mark afterwards
};

/**
 * Streamed import + replay of @p accesses synthetic accesses: the
 * generator feeds TraceV2Writer access-by-access and the decoder
 * streams back through fill(); neither end materialises the stream.
 */
StreamedReport
runStreamed(const SimOptions &base, std::uint64_t accesses,
            const std::string &path)
{
    SimOptions opts = base;
    opts.accesses = accesses;
    const WorkloadSpec spec = scaledWorkloadSpec(opts, "mcf");

    StreamedReport r;
    r.accesses = accesses;
    {
        const std::unique_ptr<TraceSource> src =
            makeCellTrace(opts, spec, accesses);
        TraceV2Writer w(path);
        MemAccess buf[4096];
        std::size_t n;
        const auto start = std::chrono::steady_clock::now();
        while ((n = src->fill(buf, 4096)) > 0)
            for (std::size_t i = 0; i < n; ++i)
                w.append(buf[i]);
        w.close();
        const double secs = secondsSince(start);
        if (w.written() != accesses)
            ATLB_FATAL("streamed import wrote {} of {} accesses",
                       w.written(), accesses);
        r.import_maccess_s =
            secs > 0.0 ? static_cast<double>(accesses) / secs / 1e6
                       : 0.0;
    }
    r.file_bytes = fileBytes(path);
    {
        TraceV2Source src(path);
        r.replay_maccess_s = drainRate(src, accesses) / 1e6;
    }
    r.peak_rss_bytes = peakRssBytes();
    std::remove(path.c_str());
    return r;
}

StreamReport
measureStream(const SimOptions &options, const std::string &workload,
              const std::string &stem)
{
    const WorkloadSpec spec = scaledWorkloadSpec(options, workload);
    const std::string v1_path = stem + ".atlbtrc1";
    const std::string v2_path = stem + ".atlbtrc2";

    StreamReport report;
    report.workload = workload;
    report.accesses = options.accesses;

    // Materialise the stream once; write both containers from it.
    std::vector<MemAccess> stream;
    stream.reserve(options.accesses);
    {
        const std::unique_ptr<TraceSource> src =
            makeCellTrace(options, spec, options.accesses);
        MemAccess a;
        while (src->next(a))
            stream.push_back(a);
    }

    {
        TraceWriter w(v1_path);
        for (const MemAccess &a : stream)
            w.append(a);
    }
    {
        const auto start = std::chrono::steady_clock::now();
        TraceV2Writer w(v2_path);
        for (const MemAccess &a : stream)
            w.append(a);
        w.close();
        const double secs = secondsSince(start);
        report.encode_maccess_s =
            secs > 0.0 ? static_cast<double>(stream.size()) / secs / 1e6
                       : 0.0;
    }

    report.v1_bytes = fileBytes(v1_path);
    report.v2_bytes = fileBytes(v2_path);
    report.ratio = static_cast<double>(report.v2_bytes) /
                   static_cast<double>(report.v1_bytes);

    {
        TraceFileSource src(v1_path);
        report.v1_ifstream_maccess_s =
            drainRate(src, stream.size()) / 1e6;
    }
    {
        MappedTraceSource src(v1_path);
        report.v1_mmap_maccess_s = drainRate(src, stream.size()) / 1e6;
    }
    {
        TraceV2Source src(v2_path);
        report.v2_maccess_s = drainRate(src, stream.size()) / 1e6;
    }
    if (const SimdLevel active = simdLevel();
        active != SimdLevel::Scalar) {
        // The source captures its unpack kernel at construction, so
        // forcing the level around the constructor pins the decode
        // flavour for the whole drain.
        forceSimdLevel(SimdLevel::Scalar);
        TraceV2Source src(v2_path);
        forceSimdLevel(active);
        report.v2_scalar_maccess_s = drainRate(src, stream.size()) / 1e6;
    } else {
        report.v2_scalar_maccess_s = report.v2_maccess_s;
    }

    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
    return report;
}

struct UnpackReport
{
    unsigned width = 0;
    double scalar_melem_s = 0.0;
    double simd_melem_s = 0.0;

    double speedup() const
    {
        return scalar_melem_s > 0.0 ? simd_melem_s / scalar_melem_s
                                    : 1.0;
    }
};

/**
 * Raw bit-unpack kernel at one width, isolated from the codec: pack
 * @p count random @p width-bit values with putBits, then time
 * scalarUnpackBits against the dispatched SIMD kernel over the same
 * buffer. This is the piece the whole-block decoder amortises; the
 * full-file v2 columns above dilute it with I/O, checksumming and
 * delta accumulation.
 */
UnpackReport
measureUnpack(unsigned width, std::size_t count, unsigned reps)
{
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    std::vector<std::uint8_t> packed((count * width + 7) / 8 + 8, 0);
    Rng rng(0x5eedULL + width);
    std::uint64_t bitpos = 0;
    for (std::size_t i = 0; i < count; ++i, bitpos += width)
        putBits(packed.data(), bitpos, rng.next() & mask, width);

    AlignedU64Buffer out;
    out.reset(count);
    std::uint64_t sink = 0;

    UnpackReport r;
    r.width = width;
    {
        const auto start = std::chrono::steady_clock::now();
        for (unsigned rep = 0; rep < reps; ++rep) {
            scalarUnpackBits(packed.data(), packed.size(), width,
                             out.data(), count);
            sink ^= out[count - 1];
        }
        const double secs = secondsSince(start);
        r.scalar_melem_s = static_cast<double>(count) * reps / secs / 1e6;
    }
    if (const SimdUnpackFn fn = simdBlockUnpackFn(simdLevel())) {
        const auto start = std::chrono::steady_clock::now();
        for (unsigned rep = 0; rep < reps; ++rep) {
            fn(packed.data(), packed.size(), width, out.data(), count);
            sink ^= out[count - 1];
        }
        const double secs = secondsSince(start);
        r.simd_melem_s = static_cast<double>(count) * reps / secs / 1e6;
    } else {
        r.simd_melem_s = r.scalar_melem_s;
    }
    if (sink == 0x1234567887654321ULL)
        std::cerr << ""; // never taken; defeats dead-code elimination
    return r;
}

/**
 * Widths covering the packed encoder's real range: small deltas
 * (strided streams), the gups-like mid widths where bit-packing beats
 * varint hardest, and the widest vectorised bucket (58+ falls back to
 * scalar extraction by design).
 */
const std::vector<unsigned> &
unpackWidths()
{
    static const std::vector<unsigned> widths = {8, 16, 24, 33, 44, 52};
    return widths;
}

/**
 * Allowed peak-RSS growth between the short and 8x-longer streamed
 * run. The decoder holds one compressed block plus O(1)-per-block
 * index entries (~50KB at 100M accesses), so the honest delta is well
 * under 1MB; the slack absorbs allocator and page-cache jitter while
 * still catching any O(n) stage (even 1 byte/access at the default
 * 100M-access length costs ~87MB, beyond the slack).
 */
constexpr std::uint64_t kStreamRssSlackBytes = 64ull << 20;

void
emitJson(const std::string &path, const SimOptions &opts,
         const std::vector<StreamReport> &streams, double worst_ratio,
         bool mmap_ok, const StreamedReport &stream_short,
         const StreamedReport &stream_long,
         const std::vector<UnpackReport> &unpacks)
{
    std::ofstream out(path);
    if (!out)
        ATLB_FATAL("cannot write '{}'", path);
    JsonWriter json(out);
    json.beginObject();
    json.field("bench", "bench_trace_codec");
    json.field("accesses_per_stream", opts.accesses);
    json.field("footprint_scale", opts.footprint_scale);
    json.field("block_capacity", traceV2DefaultBlockCapacity);
    json.field("ratio_target", 0.60);
    json.field("simd_level", simdLevelName(simdLevel()));
    json.key("streamed_import");
    json.beginObject();
    for (const StreamedReport *r : {&stream_short, &stream_long}) {
        json.key(r == &stream_short ? "short" : "long");
        json.beginObject();
        json.field("accesses", r->accesses);
        json.field("file_bytes", r->file_bytes);
        json.field("import_maccess_per_s", r->import_maccess_s);
        json.field("replay_maccess_per_s", r->replay_maccess_s);
        json.field("peak_rss_bytes", r->peak_rss_bytes);
        json.endObject();
    }
    json.field("rss_slack_bytes", kStreamRssSlackBytes);
    json.field("rss_independent_of_length",
               stream_long.peak_rss_bytes <=
                   stream_short.peak_rss_bytes + kStreamRssSlackBytes);
    json.endObject();
    json.key("streams");
    json.beginArray();
    for (const StreamReport &s : streams) {
        json.beginObject();
        json.field("workload", s.workload);
        json.field("accesses", s.accesses);
        json.field("v1_bytes", s.v1_bytes);
        json.field("v2_bytes", s.v2_bytes);
        json.field("v2_over_v1", s.ratio);
        json.field("encode_maccess_per_s", s.encode_maccess_s);
        json.field("v1_ifstream_maccess_per_s", s.v1_ifstream_maccess_s);
        json.field("v1_mmap_maccess_per_s", s.v1_mmap_maccess_s);
        json.field("v2_decode_maccess_per_s", s.v2_maccess_s);
        json.field("v2_decode_scalar_maccess_per_s",
                   s.v2_scalar_maccess_s);
        json.field("v2_decode_simd_vs_scalar",
                   s.v2_scalar_maccess_s > 0.0
                       ? s.v2_maccess_s / s.v2_scalar_maccess_s
                       : 1.0);
        json.field("mmap_at_least_ifstream",
                   s.v1_mmap_maccess_s >= s.v1_ifstream_maccess_s);
        json.endObject();
    }
    json.endArray();
    double min_unpack_speedup = std::numeric_limits<double>::infinity();
    json.key("unpack_kernels");
    json.beginArray();
    for (const UnpackReport &u : unpacks) {
        min_unpack_speedup = std::min(min_unpack_speedup, u.speedup());
        json.beginObject();
        json.field("width_bits", u.width);
        json.field("scalar_melem_per_s", u.scalar_melem_s);
        json.field("simd_melem_per_s", u.simd_melem_s);
        json.field("speedup", u.speedup());
        json.endObject();
    }
    json.endArray();
    json.field("worst_v2_over_v1", worst_ratio);
    json.field("all_within_target", worst_ratio <= 0.60);
    json.field("mmap_at_least_ifstream_everywhere", mmap_ok);
    // Worst width's kernel speedup; trivially 1.0 on scalar-only hosts.
    json.field("simd_unpack_speedup", min_unpack_speedup);
    json.field("simd_unpack_at_least_scalar", min_unpack_speedup >= 1.0);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = 1'000'000;

    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_trace_codec.json";

    printHeader("Trace codec: ATLBTRC2 vs flat v1 (size and throughput)");
    std::cout << opts.accesses << " accesses/stream, v2 block capacity "
              << traceV2DefaultBlockCapacity << "\n\n";

    // Streamed phase first: ru_maxrss is a process-wide high-water
    // mark, so the materialising phases below must not run yet.
    const std::uint64_t stream_long_n =
        envU64("ANCHORTLB_STREAM_ACCESSES", 100'000'000);
    const std::uint64_t stream_short_n = std::max<std::uint64_t>(
        1, stream_long_n / 8);
    std::cout << "streamed import (no materialisation), mcf pattern:\n";
    const StreamedReport stream_short =
        runStreamed(opts, stream_short_n, "bench_codec_stream_tmp");
    std::cout << "  short: " << stream_short.accesses << " accesses, "
              << stream_short.file_bytes / 1e6 << " MB, import "
              << stream_short.import_maccess_s << " Maccess/s, replay "
              << stream_short.replay_maccess_s
              << " Maccess/s, peak RSS "
              << stream_short.peak_rss_bytes / 1e6 << " MB\n";
    const StreamedReport stream_long =
        runStreamed(opts, stream_long_n, "bench_codec_stream_tmp");
    std::cout << "  long:  " << stream_long.accesses << " accesses, "
              << stream_long.file_bytes / 1e6 << " MB, import "
              << stream_long.import_maccess_s << " Maccess/s, replay "
              << stream_long.replay_maccess_s
              << " Maccess/s, peak RSS "
              << stream_long.peak_rss_bytes / 1e6 << " MB\n";
    if (stream_long.peak_rss_bytes >
        stream_short.peak_rss_bytes + kStreamRssSlackBytes)
        ATLB_FATAL("streamed replay peak RSS grew {} -> {} bytes over "
                   "an 8x longer trace: decoder memory is not O(block)",
                   stream_short.peak_rss_bytes,
                   stream_long.peak_rss_bytes);
    std::cout << "  peak RSS delta "
              << (stream_long.peak_rss_bytes -
                  stream_short.peak_rss_bytes) /
                     1e6
              << " MB over an 8x longer trace (slack "
              << kStreamRssSlackBytes / 1e6 << " MB): O(block) holds\n\n";

    Table table("Codec comparison (sizes in MB, rates in Maccess/s)",
                {"workload", "v1 MB", "v2 MB", "v2/v1", "encode",
                 "v1 read", "v1 mmap", "v2 read", "v2 scalar"});

    std::vector<StreamReport> streams;
    double worst_ratio = 0.0;
    bool mmap_ok = true;
    for (const char *workload : kWorkloads) {
        const StreamReport r =
            measureStream(opts, workload, "bench_codec_tmp");
        worst_ratio = std::max(worst_ratio, r.ratio);
        mmap_ok = mmap_ok &&
                  r.v1_mmap_maccess_s >= r.v1_ifstream_maccess_s;
        table.beginRow();
        table.cell(r.workload);
        table.cell(r.v1_bytes / 1e6, 1);
        table.cell(r.v2_bytes / 1e6, 1);
        table.cell(r.ratio, 3);
        table.cell(r.encode_maccess_s, 1);
        table.cell(r.v1_ifstream_maccess_s, 1);
        table.cell(r.v1_mmap_maccess_s, 1);
        table.cell(r.v2_maccess_s, 1);
        table.cell(r.v2_scalar_maccess_s, 1);
        streams.push_back(r);
    }
    table.printAscii(std::cout);

    std::cout << "\nbit-unpack kernels (simd level "
              << simdLevelName(simdLevel()) << "), " << "1Mi elems, "
              << "Melem/s:\n";
    std::vector<UnpackReport> unpacks;
    for (const unsigned width : unpackWidths()) {
        const UnpackReport u = measureUnpack(width, 1 << 20, 32);
        std::cout << "  width " << width << ": scalar "
                  << u.scalar_melem_s << ", simd " << u.simd_melem_s
                  << " (" << u.speedup() << "x)\n";
        unpacks.push_back(u);
    }

    std::cout << "\nworst v2/v1 ratio: " << worst_ratio
              << (worst_ratio <= 0.60 ? " (within 0.60 target)"
                                      : " (MISSES 0.60 target)")
              << "\n";

    emitJson(json_path, opts, streams, worst_ratio, mmap_ok,
             stream_short, stream_long, unpacks);
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
