/**
 * @file
 * Extension experiment: mapping churn over a process's lifetime.
 *
 * The OS compacts memory, pressure fragments it again, and every change
 * ends in a shootdown (paper Sections 3.3/4). This bench runs one
 * workload through a fragmentation -> compaction -> pressure story and
 * reports per-epoch misses, the dynamic distance trajectory, and the
 * page-table sweep costs the distance changes incurred.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/churn.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader(
        "Extension — mapping churn: fragmentation, compaction, pressure");

    const SimOptions base_opts = bench::figureOptions();
    ChurnOptions opts;
    opts.workload = "canneal";
    opts.footprint_scale = base_opts.footprint_scale;
    opts.seed = base_opts.seed;
    opts.mmu = base_opts.mmu;

    const std::uint64_t per_epoch = base_opts.accesses / 8;
    const std::vector<ChurnEpoch> story = {
        {ScenarioKind::MedContig, per_epoch, 1},  // steady state
        {ScenarioKind::MedContig, per_epoch, 2},
        {ScenarioKind::LowContig, per_epoch, 3},  // co-runner pressure
        {ScenarioKind::LowContig, per_epoch, 4},
        {ScenarioKind::MaxContig, per_epoch, 5},  // OS compaction
        {ScenarioKind::MaxContig, per_epoch, 6},
        {ScenarioKind::MedContig, per_epoch, 7},  // pressure returns
        {ScenarioKind::MedContig, per_epoch, 8},
    };

    for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
        const ChurnResult r = runMappingChurn(scheme, story, opts);
        Table table(std::string(schemeName(scheme)) +
                        ": per-epoch behaviour over the churn story",
                    {"epoch", "mapping", "misses/1K", "anchor dist",
                     "changed", "sweep entries"});
        for (std::size_t i = 0; i < r.epochs.size(); ++i) {
            const auto &e = r.epochs[i];
            table.beginRow();
            table.cell(static_cast<std::uint64_t>(i));
            table.cell(e.scenario);
            table.cell(1000.0 * static_cast<double>(e.misses) /
                           static_cast<double>(e.accesses),
                       2);
            table.cell(e.anchor_distance
                           ? std::to_string(e.anchor_distance)
                           : std::string("-"));
            table.cell(std::string(e.distance_changed ? "yes" : ""));
            table.cell(e.sweep_touched);
        }
        table.printAscii(std::cout);
        std::cout << '\n';
    }
    std::cout << "Expected shape: the anchor distance tracks the "
                 "mapping regime (small under\npressure, huge after "
                 "compaction) with rare changes; its misses drop to "
                 "near zero\nin compacted epochs where the baseline "
                 "stays flat; sweep costs shrink as the\ndistance "
                 "grows (fewer anchor entries to touch).\n";
    return 0;
}
