/**
 * @file
 * Extension experiment (paper Section 4.2): multi-region anchor TLB.
 *
 * On a mapping whose VA space mixes contiguity regimes — a fragmented
 * pointer-heavy area next to large allocated runs — a single
 * process-wide anchor distance must pick one regime and strand the
 * other. The region extension gives each regime its own distance.
 *
 * We build segmented mappings with an increasing contiguity contrast
 * and compare: baseline, single-distance dynamic anchor, the
 * static-ideal single distance, and the multi-region anchor.
 */

#include <iostream>
#include <limits>

#include "bench_util.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "os/region_partitioner.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

namespace
{

using namespace atlb;

struct MixResult
{
    std::uint64_t base = 0;
    std::uint64_t single = 0;
    std::uint64_t single_ideal = 0;
    std::uint64_t multi = 0;
    std::uint64_t single_distance = 0;
    std::size_t regions = 0;
};

/** Drive identical access streams through each MMU. */
template <typename F>
void
driveBoth(const MemoryMap &map, const std::vector<AnchorRegion> &regions,
          std::uint64_t accesses, F &&touch)
{
    Rng rng(41);
    // Fragmented side: a 12MB hot working set (pointer-heavy code);
    // big-run side: scans over the whole area (array code).
    const AnchorRegion &frag = regions.front();
    const AnchorRegion &runs = regions.back();
    const std::uint64_t frag_hot =
        std::min<std::uint64_t>(frag.pages(), 2048);
    for (std::uint64_t i = 0; i < accesses; ++i) {
        Vpn vpn;
        if (i & 1)
            vpn = frag.begin + rng.nextBounded(frag_hot);
        else
            vpn = runs.begin + rng.nextBounded(runs.pages());
        if (map.mapped(vpn))
            touch(vaOf(vpn));
    }
}

MixResult
runMix(std::uint64_t frag_pages, std::uint64_t run_pages,
       std::uint64_t accesses)
{
    ScenarioParams params;
    params.footprint_pages = 1;
    params.seed = 5;
    const MemoryMap map = buildSegmentedScenario(
        params, {{frag_pages, 1, 16}, {run_pages, 4096, 16384}});
    const RegionPartition partition = partitionAnchorRegions(map);

    MmuConfig cfg;
    MixResult out;
    out.regions = partition.regions.size();
    out.single_distance = partition.default_distance.pages();

    PageTable base_table = buildPageTable(map, false);
    BaselineMmu base(cfg, base_table);
    driveBoth(map, partition.regions, accesses,
              [&](VirtAddr va) { base.translate(va); });
    out.base = base.stats().page_walks;

    PageTable single_table =
        buildAnchorPageTable(map, partition.default_distance);
    AnchorMmu single(cfg, single_table, partition.default_distance);
    driveBoth(map, partition.regions, accesses,
              [&](VirtAddr va) { single.translate(va); });
    out.single = single.stats().page_walks;

    // Oracle single distance: sweep all candidates.
    out.single_ideal = std::numeric_limits<std::uint64_t>::max();
    for (const std::uint64_t d : candidateDistances()) {
        single_table.sweepAnchors(map, AnchorDist::fromPages(d));
        AnchorMmu oracle(cfg, single_table, AnchorDist::fromPages(d));
        driveBoth(map, partition.regions, accesses,
                  [&](VirtAddr va) { oracle.translate(va); });
        out.single_ideal =
            std::min(out.single_ideal, oracle.stats().page_walks);
    }

    PageTable multi_table = buildRegionAnchorPageTable(map, partition);
    RegionAnchorMmu multi(cfg, multi_table, partition);
    driveBoth(map, partition.regions, accesses,
              [&](VirtAddr va) { multi.translate(va); });
    out.multi = multi.stats().page_walks;
    return out;
}

} // namespace

int
main()
{
    using namespace atlb;
    bench::printHeader("Extension (paper Section 4.2) — multi-region "
                       "anchor TLB on mixed-contiguity mappings");

    const SimOptions opts = bench::figureOptions();
    const std::uint64_t accesses = opts.accesses / 2;

    Table table("Relative TLB misses (%) on [fragmented | big-run] "
                "mappings, 50/50 access split",
                {"fragmented MB", "big-run MB", "regions",
                 "single d", "single Dynamic", "single Ideal",
                 "multi-region"});

    const std::pair<std::uint64_t, std::uint64_t> mixes[] = {
        {4096, 131072},  // 16MB fragments + 512MB runs
        {16384, 131072}, // 64MB fragments + 512MB runs
        {16384, 524288}, // 64MB fragments + 2GB runs
        {65536, 524288}, // 256MB fragments + 2GB runs
    };
    for (const auto &[frag, runs] : mixes) {
        const MixResult r = runMix(frag, runs, accesses);
        table.beginRow();
        table.cell(frag * pageBytes >> 20);
        table.cell(runs * pageBytes >> 20);
        table.cell(static_cast<std::uint64_t>(r.regions));
        table.cell(r.single_distance);
        table.cellPercent(relativeMisses(r.single, r.base));
        table.cellPercent(relativeMisses(r.single_ideal, r.base));
        table.cellPercent(relativeMisses(r.multi, r.base));
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: the single-distance scheme (even "
                 "with an oracle distance)\nstrands one of the two "
                 "regimes; per-region distances recover both, and the\n"
                 "advantage grows with the fragmented share of the "
                 "access stream.\n";
    return 0;
}
