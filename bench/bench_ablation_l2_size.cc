/**
 * @file
 * Ablation: L2 TLB capacity sensitivity.
 *
 * The anchor scheme's pitch is coverage per entry; this ablation checks
 * that its advantage over the baseline persists (indeed grows) when the
 * L2 shrinks, and that a huge L2 does not erase it for big-footprint
 * workloads.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace atlb;
    bench::printHeader("Ablation — L2 TLB size sweep (medium contiguity)");

    Table table("Misses per 1K accesses vs L2 entries (canneal / "
                "medium contiguity)",
                {"L2 entries", "Base", "Dynamic", "Dynamic/Base"});

    for (const unsigned entries : {256u, 512u, 1024u, 2048u, 4096u}) {
        SimOptions opts = bench::figureOptions();
        opts.mmu.l2_entries = entries;
        ExperimentContext ctx(opts);
        const SimResult base =
            ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
        const SimResult anchor =
            ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor);
        const double per_k =
            1000.0 / static_cast<double>(base.stats.accesses);
        table.beginRow();
        table.cell(static_cast<std::uint64_t>(entries));
        table.cell(static_cast<double>(base.misses()) * per_k, 2);
        table.cell(static_cast<double>(anchor.misses()) * per_k, 2);
        table.cellPercent(
            relativeMisses(anchor.misses(), base.misses()));
    }
    table.printAscii(std::cout);
    std::cout << "\nExpected shape: the anchor scheme's relative "
                 "advantage holds across L2 sizes;\ncapacity alone "
                 "cannot buy the coverage that coalescing provides.\n";
    return 0;
}
