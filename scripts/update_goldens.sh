#!/usr/bin/env bash
# Regenerate the golden files under tests/golden/ from a built tree.
#
# usage: scripts/update_goldens.sh [build-dir]   (default: build)
#
# Uses the same pinned environment as the ctest checker
# (tests/golden/golden_env.sh), so a regeneration followed by an
# unchanged build always passes the golden tests. Review the diff of
# the regenerated files before committing — every changed byte is a
# changed experiment output.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
golden_dir="$repo/tests/golden"

# shellcheck source=../tests/golden/golden_env.sh
. "$golden_dir/golden_env.sh"

declare -A benches=(
    [bench_fig2.txt]="$build/bench/bench_fig2_prior_schemes"
    [bench_fig9.txt]="$build/bench/bench_fig9_all_mappings"
)

for golden in "${!benches[@]}"; do
    bench="${benches[$golden]}"
    if [ ! -x "$bench" ]; then
        echo "error: $bench not built (build first: cmake --build $build)" >&2
        exit 1
    fi
    "$bench" 2>/dev/null > "$golden_dir/$golden"
    echo "regenerated tests/golden/$golden"
done

echo "done — review with: git diff tests/golden/"
