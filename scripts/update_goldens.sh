#!/usr/bin/env bash
# Regenerate the golden files under tests/golden/ from a built tree.
#
# usage: scripts/update_goldens.sh [build-dir]   (default: build)
#
# Uses the same pinned environment as the ctest checker
# (tests/golden/golden_env.sh), so a regeneration followed by an
# unchanged build always passes the golden tests. Review the diff of
# the regenerated files before committing — every changed byte is a
# changed experiment output.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
golden_dir="$repo/tests/golden"

# shellcheck source=../tests/golden/golden_env.sh
. "$golden_dir/golden_env.sh"

# The miniature binary trace is itself derived from the checked-in
# text capture — re-import first so a codec change regenerates both
# the .atlbtrc2 bytes and the pinned `trace info` output together.
if [ ! -x "$build/tools/anchortlb" ]; then
    echo "error: $build/tools/anchortlb not built" >&2
    exit 1
fi
"$build/tools/anchortlb" trace import "$golden_dir/mini.trace" \
    "$golden_dir/mini.atlbtrc2" --block-capacity=64 >/dev/null
echo "regenerated tests/golden/mini.atlbtrc2"

# Value = command line relative to the build tree; word-split on
# purpose (no paths with spaces in this repo).
declare -A benches=(
    [bench_fig2.txt]="$build/bench/bench_fig2_prior_schemes"
    [bench_fig9.txt]="$build/bench/bench_fig9_all_mappings"
    [bench_context_switch.txt]="$build/bench/bench_ext_context_switch"
    [trace_info_mini.txt]="$build/tools/anchortlb trace info \
$golden_dir/mini.atlbtrc2 --profile"
)

for golden in "${!benches[@]}"; do
    # shellcheck disable=SC2206
    cmd=(${benches[$golden]})
    if [ ! -x "${cmd[0]}" ]; then
        echo "error: ${cmd[0]} not built (build first: cmake --build $build)" >&2
        exit 1
    fi
    "${cmd[@]}" 2>/dev/null > "$golden_dir/$golden"
    echo "regenerated tests/golden/$golden"
done

echo "done — review with: git diff tests/golden/"
