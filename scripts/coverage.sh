#!/usr/bin/env bash
# Line-coverage measurement and gate for the simulator.
#
# usage: scripts/coverage.sh [build-dir]   (default: build-coverage)
#
# Builds with -DANCHORTLB_COVERAGE=ON (gcov instrumentation, -O0), runs
# the full ctest suite, then aggregates the per-object .gcda counters
# with `gcov --json-format` and a small python step (the container has
# no gcovr/lcov). Prints a per-module table for src/ and enforces a
# minimum line coverage over the focus set src/sim + src/tlb — the
# paper-critical translation and sharding logic — and, per file, over
# src/sim/multiprocess.cc (the switch-policy/shootdown scheduler).
#
# Knobs:
#   ANCHORTLB_COVERAGE_MIN   minimum percent for src/sim+src/tlb and
#                            for src/sim/multiprocess.cc individually
#                            (default 90; measured 96.0% at merge time)
#   ANCHORTLB_COVERAGE_JSON  optional path to write the aggregated
#                            per-module summary as JSON (CI artifact)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-coverage}"
min="${ANCHORTLB_COVERAGE_MIN:-90}"
json_out="${ANCHORTLB_COVERAGE_JSON:-}"

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DANCHORTLB_COVERAGE=ON > /dev/null
cmake --build "$build" -j "$(nproc)" > /dev/null

# Stale counters from a previous run would inflate the numbers.
find "$build" -name '*.gcda' -delete

ctest --test-dir "$build" --output-on-failure

# One uncompressed JSON document per object file; -t avoids the
# colliding <source>.gcov.json.gz on-disk names.
json_dir="$build/coverage-json"
rm -rf "$json_dir"
mkdir -p "$json_dir"
i=0
while IFS= read -r gcda; do
    gcov -t --json-format "$gcda" > "$json_dir/$i.json" 2> /dev/null
    i=$((i + 1))
done < <(find "$build" -name '*.gcda')
echo "gcov: processed $i object files"

ANCHORTLB_REPO="$repo" ANCHORTLB_MIN="$min" ANCHORTLB_JSON_OUT="$json_out" \
python3 - "$json_dir" <<'PY'
import glob, json, os, sys

repo = os.environ["ANCHORTLB_REPO"]
minimum = float(os.environ["ANCHORTLB_MIN"])
json_out = os.environ.get("ANCHORTLB_JSON_OUT", "")
src_root = os.path.join(repo, "src") + os.sep

# line -> executed?  A line counts as covered if any translation unit
# (header inlined into several tests, say) ever executed it.
lines = {}  # (relpath, line_number) -> bool
for path in glob.glob(os.path.join(sys.argv[1], "*.json")):
    with open(path) as f:
        doc = json.load(f)
    for fentry in doc.get("files", []):
        fpath = os.path.normpath(os.path.join(repo, fentry["file"]))
        if not fpath.startswith(src_root):
            continue
        rel = os.path.relpath(fpath, repo)
        for ln in fentry["lines"]:
            key = (rel, ln["line_number"])
            lines[key] = lines.get(key, False) or ln["count"] > 0

if not lines:
    sys.exit("coverage: no instrumented lines found under src/ "
             "(was the build configured with -DANCHORTLB_COVERAGE=ON?)")

modules = {}  # src/<module> -> [covered, total]
for (rel, _), hit in lines.items():
    mod = "/".join(rel.split(os.sep)[:2])
    cov = modules.setdefault(mod, [0, 0])
    cov[0] += 1 if hit else 0
    cov[1] += 1

print()
print(f"{'module':<16} {'covered':>8} {'total':>8} {'percent':>8}")
total_c = total_t = 0
for mod in sorted(modules):
    c, t = modules[mod]
    total_c += c
    total_t += t
    print(f"{mod:<16} {c:>8} {t:>8} {100.0 * c / t:>7.1f}%")
print(f"{'src (all)':<16} {total_c:>8} {total_t:>8} "
      f"{100.0 * total_c / total_t:>7.1f}%")

focus_c = sum(modules[m][0] for m in ("src/sim", "src/tlb") if m in modules)
focus_t = sum(modules[m][1] for m in ("src/sim", "src/tlb") if m in modules)
focus = 100.0 * focus_c / focus_t if focus_t else 0.0
print(f"{'src/sim+tlb':<16} {focus_c:>8} {focus_t:>8} {focus:>7.1f}%")

# Per-file gate: the multi-process scheduler carries the switch-policy
# and shootdown semantics — every branch of it must stay exercised.
mp_file = "src/sim/multiprocess.cc"
mp_c = sum(1 for (rel, _), hit in lines.items() if rel == mp_file and hit)
mp_t = sum(1 for (rel, _), _ in lines.items() if rel == mp_file)
mp = 100.0 * mp_c / mp_t if mp_t else 0.0
print(f"{'multiprocess.cc':<16} {mp_c:>8} {mp_t:>8} {mp:>7.1f}%")

if json_out:
    summary = {m: {"covered": c, "total": t, "percent": 100.0 * c / t}
               for m, (c, t) in sorted(modules.items())}
    summary["focus"] = {"modules": ["src/sim", "src/tlb"],
                        "covered": focus_c, "total": focus_t,
                        "percent": focus, "minimum": minimum}
    with open(json_out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print(f"wrote {json_out}")

if focus < minimum:
    sys.exit(f"\ncoverage gate FAILED: src/sim+src/tlb at {focus:.1f}% "
             f"< required {minimum:.1f}%")
if mp_t == 0:
    sys.exit(f"\ncoverage gate FAILED: {mp_file} not instrumented "
             f"(file moved or dropped from the build?)")
if mp < minimum:
    sys.exit(f"\ncoverage gate FAILED: {mp_file} at {mp:.1f}% "
             f"< required {minimum:.1f}%")
print(f"\ncoverage gate OK: src/sim+src/tlb at {focus:.1f}% and "
      f"{mp_file} at {mp:.1f}% >= {minimum:.1f}%")
PY
