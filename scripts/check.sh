#!/usr/bin/env bash
#
# Full correctness gate: clang-format (check only), shellcheck,
# clang-tidy, the anchortlb_lint domain-rule pass, a -Werror +
# ANCHORTLB_CHECKED build with the whole test suite (including the
# parallel-engine determinism tests), the same suite again under
# AddressSanitizer and UndefinedBehaviorSanitizer, and the concurrency
# suites (thread pool + parallel sweep engine) under ThreadSanitizer.
#
# This is the tier-1 entry point (see ROADMAP.md). The fast inner loop
# remains:  cmake -B build -S . && cmake --build build -j && ctest
#
# Usage:
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # skip the sanitizer builds
#
# Tools that are not installed (clang-format, clang-tidy, shellcheck)
# are reported and skipped, so the script is still a meaningful gate on
# a gcc-only box; CI runs the full set. anchortlb_lint is built by the
# project itself and always runs.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    -h | --help)
        sed -n '2,16p' "${BASH_SOURCE[0]}" | sed 's/^# \{0,1\}//'
        exit 0
        ;;
    *)
        printf 'check.sh: unknown option %s (try --help)\n' "$arg" >&2
        exit 2
        ;;
    esac
done

failures=()
note() { printf '\n==> %s\n' "$*"; }

# ----------------------------------------------------------- format --
if command -v clang-format > /dev/null 2>&1; then
    note "clang-format (check only)"
    if ! git -C "$repo" ls-files '*.cc' '*.hh' |
        xargs -I{} clang-format --dry-run --Werror "$repo/{}"; then
        failures+=("clang-format")
    fi
else
    note "clang-format not installed; skipping format check"
fi

# ------------------------------------------------------- shellcheck --
if command -v shellcheck > /dev/null 2>&1; then
    note "shellcheck"
    # -x -P SCRIPTDIR: follow the `# shellcheck source=` directives
    # (run_golden.sh and update_goldens.sh source golden_env.sh).
    if ! git -C "$repo" ls-files 'scripts/*.sh' 'tests/golden/*.sh' |
        xargs -I{} shellcheck -x -P SCRIPTDIR "$repo/{}"; then
        failures+=("shellcheck")
    fi
else
    note "shellcheck not installed; skipping shell script lint"
fi

# ------------------------------------------------------------- tidy --
if command -v clang-tidy > /dev/null 2>&1; then
    note "clang-tidy"
    cmake -S "$repo" -B "$repo/build-tidy" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    mapfile -t tidy_sources < <(git -C "$repo" ls-files \
        'src/*.cc' 'bench/*.cc' 'tests/*.cc' 'tools/*.cc')
    run_tidy=clang-tidy
    command -v run-clang-tidy > /dev/null 2>&1 && run_tidy=
    if [[ -n "$run_tidy" ]]; then
        ok=1
        for f in "${tidy_sources[@]}"; do
            clang-tidy -p "$repo/build-tidy" --quiet "$repo/$f" || ok=0
        done
        [[ $ok == 1 ]] || failures+=("clang-tidy")
    else
        run-clang-tidy -p "$repo/build-tidy" -quiet \
            "${tidy_sources[@]/#/$repo/}" || failures+=("clang-tidy")
    fi
else
    note "clang-tidy not installed; skipping static analysis"
fi

# ----------------------------------------- checked + -Werror + ctest --
build_and_test() {
    local dir="$1"
    shift
    note "build $dir ($*)"
    cmake -S "$repo" -B "$repo/$dir" -DANCHORTLB_WERROR=ON \
        -DANCHORTLB_CHECKED=ON "$@" > /dev/null
    cmake --build "$repo/$dir" -j "$jobs"
    (cd "$repo/$dir" && ctest --output-on-failure -j "$jobs")
}

build_and_test build-checked || failures+=("checked build")

# ------------------------------------------------- anchortlb_lint ----
# Domain-rule pass over the tree the checked build just compiled. A
# hard gate: the linter is built by the project itself, so there is no
# not-installed escape.
note "anchortlb_lint (domain rules)"
"$repo/build-checked/tools/anchortlb_lint" -p "$repo/build-checked" ||
    failures+=("anchortlb_lint")

# ------------------------------------------- scalar-forced dispatch --
# The SIMD kernels must be pure speed, never behaviour: the same
# checked build re-runs the whole suite (goldens included) with the
# scalar dispatch level forced, pinning byte-identical results.
note "ctest build-checked (ANCHORTLB_SIMD=scalar)"
(cd "$repo/build-checked" &&
    ANCHORTLB_SIMD=scalar ctest --output-on-failure -j "$jobs") ||
    failures+=("scalar-forced ctest")

# ------------------------------------------------------ serve smoke --
# The sweep service end to end: server up, a grid submitted twice, the
# second pass answered entirely from the persistent store, clean stop.
note "serve smoke (sweep service + result store)"
"$repo/scripts/serve_smoke.sh" "$repo/build-checked/tools/anchortlb" ||
    failures+=("serve smoke")

# TSan over the concurrency suites only: the full grid under TSan is
# slow, and everything else is single-threaded by construction.
tsan_leg() {
    note "build build-tsan (ThreadSanitizer, concurrency suites)"
    cmake -S "$repo" -B "$repo/build-tsan" -DANCHORTLB_WERROR=ON \
        -DANCHORTLB_SANITIZE=thread > /dev/null
    cmake --build "$repo/build-tsan" -j "$jobs" \
        --target test_common test_sim test_integration test_ingest \
        test_serve
    (cd "$repo/build-tsan" &&
        ctest --output-on-failure -j "$jobs" \
            -R 'ThreadPool|ParallelRunner|Sharded|Batch|MultiProcess|SwitchPolicy|AsidRetention|Serve')
}

if [[ $fast == 0 ]]; then
    build_and_test build-asan -DANCHORTLB_SANITIZE=address ||
        failures+=("asan build")
    build_and_test build-ubsan -DANCHORTLB_SANITIZE=undefined ||
        failures+=("ubsan build")
    tsan_leg || failures+=("tsan build")
else
    note "--fast: skipping sanitizer builds"
fi

# ------------------------------------------------------------ report --
if ((${#failures[@]})); then
    note "FAILED: ${failures[*]}"
    exit 1
fi
note "all checks passed"
