#!/usr/bin/env bash
#
# Sweep-service smoke test: start `anchortlb serve` on a private
# socket/store, submit a small grid twice, and require the second pass
# (and a follow-up query) to be answered entirely from the persistent
# result store — zero recomputation. Finishes with a clean `serve stop`
# and a `store info` over the store the server left behind.
#
# Usage:
#   scripts/serve_smoke.sh [path/to/anchortlb]
#
# The binary defaults to the tier-1 checked build's tool.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${1:-$repo/build-checked/tools/anchortlb}"
if [[ ! -x "$bin" ]]; then
    echo "serve_smoke: '$bin' not built (run the checked build first)" >&2
    exit 2
fi

# Keep the directory short: unix socket paths are limited to ~100 bytes.
tmp="$(mktemp -d /tmp/atlb-smoke.XXXXXX)"
socket="$tmp/serve.sock"
store="$tmp/results"
server_log="$tmp/server.log"
server_pid=

cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2> /dev/null; then
        kill "$server_pid" 2> /dev/null || true
        wait "$server_pid" 2> /dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: $*" >&2
    echo "--- server log ---" >&2
    cat "$server_log" >&2 || true
    exit 1
}

"$bin" serve --socket="$socket" --store="$store" \
    --accesses=20000 --scale=0.02 > "$server_log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
    [[ -S "$socket" ]] && break
    kill -0 "$server_pid" 2> /dev/null || fail "server exited early"
    sleep 0.1
done
[[ -S "$socket" ]] || fail "server socket never appeared"

submit() {
    "$bin" "$1" --socket="$socket" --csv \
        --workloads=canneal,sphinx3 --scenarios=medium \
        --schemes=Base,Dynamic
}

echo "== first submit (cold: every cell computed) =="
first="$(submit submit)"
echo "$first"
cold_computed="$(grep -c 'computed' <<< "$first" || true)"
[[ "$cold_computed" -eq 4 ]] ||
    fail "expected 4 computed cells on the cold pass, saw $cold_computed"

echo "== second submit (warm: every cell a store hit) =="
second="$(submit submit)"
echo "$second"
# Match the CSV status column only: counter names like
# "admission_stalls" must not trip the miss check.
if grep -Eq ',(computed|deduped),' <<< "$second"; then
    fail "second pass recomputed cells — the store did not serve them"
fi
warm_hits="$(grep -c ',hit' <<< "$second" || true)"
[[ "$warm_hits" -ge 4 ]] ||
    fail "expected 4 store hits on the warm pass, saw $warm_hits"

echo "== query (read-only: must hit, never simulate) =="
query="$(submit query)"
echo "$query"
if grep -Eq ',(computed|deduped|miss),' <<< "$query"; then
    fail "query pass missed the store"
fi

echo "== store gc while the server is running must be refused =="
if gc_out="$("$bin" store gc "$store" 2>&1)"; then
    fail "store gc succeeded against a live server's store"
fi
grep -q 'in use' <<< "$gc_out" ||
    fail "store gc refusal did not mention the lock: $gc_out"

echo "== serve stop =="
"$bin" serve stop --socket="$socket"
wait "$server_pid" || fail "server exited non-zero"
server_pid=

echo "== store info =="
"$bin" store info "$store" --csv
cells="$("$bin" store info "$store" --csv | grep -E '^live_cells,' |
    cut -d, -f2)"
[[ "$cells" -eq 4 ]] || fail "expected 4 live cells in store, saw $cells"

echo "serve_smoke: OK"
