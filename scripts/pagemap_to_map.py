#!/usr/bin/env python3
"""Convert a live process's Linux pagemap into an anchortlb mapping file.

This reproduces the paper's capture methodology (Section 5.1: "we
periodically captured the virtual to physical memory address mapping on
the real machine, using the pagemap interface"). Run as root:

    sudo ./pagemap_to_map.py <pid> > proc.map
    anchortlb inspect-map proc.map
    anchortlb replay trace.bin --scheme=anchor ...

Output format (see src/os/mapping_io.hh): one chunk per line,
"<vpn> <ppn> <pages>", where a chunk is a maximal run contiguous in both
virtual and physical page numbers.
"""

import struct
import sys

PAGE_SHIFT = 12
PM_PRESENT = 1 << 63
PM_PFN_MASK = (1 << 55) - 1


def iter_vmas(pid):
    """Yield (start_vpn, end_vpn) for each mapped region of the process."""
    with open(f"/proc/{pid}/maps") as maps:
        for line in maps:
            addr_range = line.split()[0]
            start_s, end_s = addr_range.split("-")
            yield int(start_s, 16) >> PAGE_SHIFT, int(end_s, 16) >> PAGE_SHIFT


def iter_present_pages(pid):
    """Yield (vpn, pfn) for every present page of the process."""
    with open(f"/proc/{pid}/pagemap", "rb") as pagemap:
        for start, end in iter_vmas(pid):
            pagemap.seek(start * 8)
            data = pagemap.read((end - start) * 8)
            for i in range(len(data) // 8):
                (entry,) = struct.unpack_from("<Q", data, i * 8)
                if entry & PM_PRESENT:
                    pfn = entry & PM_PFN_MASK
                    if pfn:  # zero without CAP_SYS_ADMIN
                        yield start + i, pfn


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <pid>")
    pid = int(sys.argv[1])

    print(f"# mapping of pid {pid}, captured via /proc/{pid}/pagemap")
    chunk_vpn = chunk_ppn = pages = 0
    for vpn, pfn in iter_present_pages(pid):
        if pages and vpn == chunk_vpn + pages and pfn == chunk_ppn + pages:
            pages += 1
            continue
        if pages:
            print(chunk_vpn, chunk_ppn, pages)
        chunk_vpn, chunk_ppn, pages = vpn, pfn, 1
    if pages:
        print(chunk_vpn, chunk_ppn, pages)


if __name__ == "__main__":
    main()
