/**
 * @file
 * Unit tests for the shared cell scheduler: determinism (results
 * byte-identical to a direct ExperimentContext run no matter how
 * tickets interleave), round-robin fairness across tickets, bounded
 * admission with counted stalls, and the pinned pair-state LRU.
 *
 * Suites are named Serve* so the TSan CI leg picks them up.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

namespace atlb
{
namespace
{

SimOptions
quickOptions()
{
    SimOptions opts;
    opts.accesses = 20'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02;
    return opts;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.stats.shootdowns, b.stats.shootdowns);
    EXPECT_EQ(a.stats.shootdown_cycles, b.stats.shootdown_cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.instructions),
              std::bit_cast<std::uint64_t>(b.instructions));
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

/** Submit @p jobs on one ticket, returning results by submit index. */
std::vector<SimResult>
runThroughScheduler(CellScheduler &scheduler, const SimOptions &options,
                    const std::vector<CellJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    const auto ticket = scheduler.open(
        options, [&results](std::size_t index, const SimResult &result,
                            std::uint64_t /*queue_wait_us*/) {
            results[index] = result;
        });
    for (std::size_t i = 0; i < jobs.size(); ++i)
        ticket->submit(i, jobs[i]);
    ticket->wait();
    return results;
}

TEST(ServeScheduler, ResultsMatchDirectRunAcrossSchemes)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(4, 64, 4);

    std::vector<CellJob> jobs;
    for (const Scheme scheme :
         {Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Anchor,
          Scheme::AnchorIdeal}) {
        jobs.push_back(
            CellJob{"canneal", ScenarioKind::MedContig, scheme, {}});
    }
    jobs.push_back(CellJob{"canneal", ScenarioKind::MedContig,
                           Scheme::Anchor, 16});

    const std::vector<SimResult> results =
        runThroughScheduler(scheduler, opts, jobs);

    ExperimentContext ctx(opts);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimResult direct =
            ctx.run(jobs[i].workload, jobs[i].scenario, jobs[i].scheme,
                    jobs[i].distance_override);
        expectSameResult(results[i], direct);
    }

    const CellScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.enqueued, jobs.size());
    EXPECT_EQ(stats.completed, jobs.size());
    EXPECT_EQ(stats.depth, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.tickets_open, 0u);
}

TEST(ServeScheduler, ConcurrentTicketsStayDeterministic)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(4, 64, 4);

    // Two overlapping grids submitted from two threads: interleaving
    // must not leak into any cell's numbers.
    std::vector<CellJob> grid_a;
    std::vector<CellJob> grid_b;
    for (const char *workload : {"canneal", "sphinx3"}) {
        for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
            grid_a.push_back(
                CellJob{workload, ScenarioKind::MedContig, scheme, {}});
            grid_b.push_back(
                CellJob{workload, ScenarioKind::MedContig, scheme, {}});
        }
    }
    grid_b.push_back(CellJob{"canneal", ScenarioKind::HighContig,
                             Scheme::Base, {}});

    std::vector<SimResult> results_a;
    std::vector<SimResult> results_b;
    std::thread ta([&] {
        results_a = runThroughScheduler(scheduler, opts, grid_a);
    });
    std::thread tb([&] {
        results_b = runThroughScheduler(scheduler, opts, grid_b);
    });
    ta.join();
    tb.join();

    ExperimentContext ctx(opts);
    for (std::size_t i = 0; i < grid_a.size(); ++i) {
        const SimResult direct = ctx.run(
            grid_a[i].workload, grid_a[i].scenario, grid_a[i].scheme);
        expectSameResult(results_a[i], direct);
        expectSameResult(results_b[i], direct); // identical overlap
    }
    const CellJob &extra = grid_b.back();
    expectSameResult(results_b.back(),
                     ctx.run(extra.workload, extra.scenario,
                             extra.scheme));
}

TEST(ServeScheduler, RoundRobinLetsASmallTicketOvertakeALargeOne)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(1, 64, 4); // one worker: strict interleave

    std::atomic<std::uint64_t> completions{0};

    // A large ticket: many distinct Anchor cells over one pair.
    constexpr std::size_t large_cells = 10;
    std::vector<SimResult> large_results(large_cells);
    const auto large = scheduler.open(
        opts,
        [&](std::size_t index, const SimResult &result, std::uint64_t) {
            large_results[index] = result;
            completions.fetch_add(1);
        });
    for (std::size_t i = 0; i < large_cells; ++i) {
        large->submit(i, CellJob{"canneal", ScenarioKind::MedContig,
                                 Scheme::Anchor, std::uint64_t{2} << i});
    }

    // Now a 1-cell ticket. Round-robin bounds how much of the large
    // grid may still cut in front of it: the job a worker already
    // holds, plus at most one more before the ring rotates here.
    std::atomic<std::uint64_t> small_ordinal{0};
    SimResult small_result;
    {
        const auto small = scheduler.open(
            opts, [&](std::size_t, const SimResult &result,
                      std::uint64_t) {
                small_result = result;
                small_ordinal = completions.fetch_add(1) + 1;
            });
        small->submit(0, CellJob{"sphinx3", ScenarioKind::MedContig,
                                 Scheme::Base, {}});
        // Read after submit: completions landing in between only
        // loosen the bound, so the check cannot flake tight.
        const std::uint64_t completed_at_submit = completions.load();
        small->wait();
        EXPECT_LE(small_ordinal.load(), completed_at_submit + 3)
            << "the 1-cell ticket queued behind the whole large grid";
    }
    large->wait();
    EXPECT_EQ(completions.load(), large_cells + 1);

    ExperimentContext ctx(opts);
    expectSameResult(small_result, ctx.run("sphinx3",
                                           ScenarioKind::MedContig,
                                           Scheme::Base));
    for (std::size_t i = 0; i < large_cells; ++i) {
        expectSameResult(large_results[i],
                         ctx.run("canneal", ScenarioKind::MedContig,
                                 Scheme::Anchor, std::uint64_t{2} << i));
    }
}

TEST(ServeScheduler, BoundedAdmissionStallsAndRecovers)
{
    const SimOptions opts = quickOptions();
    // One worker, one queue slot: while a cell simulates, a second
    // queued cell fills the queue, so further submits must stall.
    CellScheduler scheduler(1, 1, 4);

    constexpr std::size_t cells = 6;
    std::vector<SimResult> results(cells);
    const auto ticket = scheduler.open(
        opts,
        [&](std::size_t index, const SimResult &result, std::uint64_t) {
            results[index] = result;
        });
    for (std::size_t i = 0; i < cells; ++i) {
        ticket->submit(i, CellJob{"canneal", ScenarioKind::MedContig,
                                  Scheme::Anchor, std::uint64_t{2} << i});
    }
    ticket->wait();

    const CellScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.enqueued, cells);
    EXPECT_EQ(stats.completed, cells);
    EXPECT_GE(stats.admission_stalls, 1u);
    EXPECT_LE(stats.depth_peak, 1u) << "the queue bound was exceeded";
    EXPECT_EQ(stats.depth, 0u);

    ExperimentContext ctx(opts);
    for (std::size_t i = 0; i < cells; ++i) {
        expectSameResult(results[i],
                         ctx.run("canneal", ScenarioKind::MedContig,
                                 Scheme::Anchor, std::uint64_t{2} << i));
    }
}

TEST(ServeScheduler, PairStateIsBuiltOnceAndSharedAcrossTickets)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(2, 64, 4);

    const std::vector<CellJob> same_pair = {
        CellJob{"canneal", ScenarioKind::MedContig, Scheme::Base, {}},
        CellJob{"canneal", ScenarioKind::MedContig, Scheme::Thp, {}},
        CellJob{"canneal", ScenarioKind::MedContig, Scheme::Anchor, {}},
    };
    runThroughScheduler(scheduler, opts, same_pair);

    CellScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.pair_builds, 1u);
    EXPECT_EQ(stats.pair_reuses, 2u);
    EXPECT_EQ(stats.pairs_cached, 1u);

    // A later ticket for the same pair reuses the cached build.
    runThroughScheduler(
        scheduler, opts,
        {CellJob{"canneal", ScenarioKind::MedContig, Scheme::Cluster,
                 {}}});
    stats = scheduler.stats();
    EXPECT_EQ(stats.pair_builds, 1u);
    EXPECT_EQ(stats.pair_reuses, 3u);
}

TEST(ServeScheduler, PairCacheEvictsColdestUnpinnedEntry)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(1, 64, 1); // room for exactly one pair

    const auto one_cell = [](const char *workload) {
        return std::vector<CellJob>{
            CellJob{workload, ScenarioKind::MedContig, Scheme::Base,
                    {}}};
    };
    runThroughScheduler(scheduler, opts, one_cell("canneal"));
    runThroughScheduler(scheduler, opts, one_cell("sphinx3"));

    CellScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.pair_builds, 2u);
    EXPECT_EQ(stats.pairs_cached, 1u) << "eviction must keep the cap";

    // The first pair was evicted, so revisiting it rebuilds.
    runThroughScheduler(scheduler, opts, one_cell("canneal"));
    stats = scheduler.stats();
    EXPECT_EQ(stats.pair_builds, 3u);
    EXPECT_EQ(stats.pairs_cached, 1u);
}

TEST(ServeScheduler, TicketDestructorWaitsForOutstandingJobs)
{
    const SimOptions opts = quickOptions();
    CellScheduler scheduler(2, 64, 4);

    std::atomic<std::uint64_t> completions{0};
    {
        const auto ticket = scheduler.open(
            opts, [&](std::size_t, const SimResult &, std::uint64_t) {
                completions.fetch_add(1);
            });
        for (std::size_t i = 0; i < 4; ++i) {
            ticket->submit(i,
                           CellJob{"canneal", ScenarioKind::MedContig,
                                   Scheme::Anchor, std::uint64_t{2} << i});
        }
        // No wait(): destruction itself must block on the jobs.
    }
    EXPECT_EQ(completions.load(), 4u);
    EXPECT_EQ(scheduler.stats().tickets_open, 0u);
}

} // namespace
} // namespace atlb
