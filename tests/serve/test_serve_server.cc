/**
 * @file
 * End-to-end tests for the sweep service: a real SweepServer on a unix
 * socket, driven through ServeClient (and one raw socket for malformed
 * lines). Pins the ISSUE acceptance properties: served results are
 * byte-identical to a direct ExperimentContext run, a repeated sweep
 * recomputes zero cells, and N identical concurrent submissions
 * simulate exactly once.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "sim/experiment.hh"

namespace atlb
{
namespace
{

namespace fs = std::filesystem;

SimOptions
quickOptions()
{
    SimOptions opts;
    opts.accesses = 20'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02;
    return opts;
}

/** A running server on fresh socket/store paths, torn down on exit. */
struct TestServer
{
    ServeOptions opts;
    std::unique_ptr<SweepServer> server;
    std::thread thread;

    explicit TestServer(const std::string &name)
    {
        opts.socket_path = testing::TempDir() + "atlb_" + name + ".sock";
        opts.store_path =
            testing::TempDir() + "atlb_" + name + ".results";
        fs::remove(opts.socket_path);
        fs::remove(opts.store_path);
        opts.base = quickOptions();
        server = std::make_unique<SweepServer>(opts);
        std::string error;
        if (!server->start(&error)) {
            ADD_FAILURE() << "server start failed: " << error;
            return;
        }
        thread = std::thread([this] { server->run(); });
    }

    ~TestServer()
    {
        if (server)
            server->requestStop();
        if (thread.joinable())
            thread.join();
        fs::remove(opts.store_path);
    }
};

SweepResponse
roundTrip(const TestServer &ts, const SweepRequest &req)
{
    ServeClient client;
    std::string error;
    EXPECT_TRUE(client.connect(ts.opts.socket_path, &error)) << error;
    SweepResponse resp;
    EXPECT_TRUE(client.roundTrip(req, resp, &error)) << error;
    return resp;
}

std::uint64_t
counterValue(const SweepResponse &resp, const std::string &name)
{
    for (const auto &[key, value] : resp.counters) {
        if (key == name)
            return value;
    }
    ADD_FAILURE() << "response carries no counter '" << name << "'";
    return 0;
}

/** 2 workloads x medium x 2 schemes: small but exercises Anchor. */
SweepRequest
gridRequest(WireOp op)
{
    SweepRequest req;
    req.op = op;
    for (const char *workload : {"canneal", "sphinx3"}) {
        for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
            CellRequest cell;
            cell.workload = workload;
            cell.scenario = ScenarioKind::MedContig;
            cell.scheme = scheme;
            req.cells.push_back(cell);
        }
    }
    return req;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.stats.shootdowns, b.stats.shootdowns);
    EXPECT_EQ(a.stats.shootdown_cycles, b.stats.shootdown_cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.instructions),
              std::bit_cast<std::uint64_t>(b.instructions));
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

TEST(ServeServer, RepeatSubmitHitsAndMatchesDirectRun)
{
    TestServer ts("repeat");

    const SweepResponse first = roundTrip(ts, gridRequest(WireOp::Submit));
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_EQ(first.cells.size(), 4u);
    for (const CellReply &cell : first.cells)
        EXPECT_EQ(cell.status, CellStatus::Computed);
    EXPECT_EQ(counterValue(first, "simulations"), 4u);
    EXPECT_EQ(counterValue(first, "hits"), 0u);

    // The whole grid again: zero cells recomputed, all from the store.
    const SweepResponse second =
        roundTrip(ts, gridRequest(WireOp::Submit));
    ASSERT_TRUE(second.ok) << second.error;
    for (std::size_t i = 0; i < second.cells.size(); ++i) {
        EXPECT_EQ(second.cells[i].status, CellStatus::Hit);
        EXPECT_EQ(second.cells[i].key, first.cells[i].key);
        expectSameResult(second.cells[i].result, first.cells[i].result);
    }
    EXPECT_EQ(counterValue(second, "simulations"), 4u); // unchanged
    EXPECT_EQ(counterValue(second, "hits"), 4u);

    // Served results are byte-identical to a direct local run.
    ExperimentContext ctx(quickOptions());
    const SweepRequest grid = gridRequest(WireOp::Submit);
    for (std::size_t i = 0; i < grid.cells.size(); ++i) {
        const CellRequest &cell = grid.cells[i];
        const SimResult direct =
            ctx.run(cell.workload, cell.scenario, cell.scheme);
        expectSameResult(first.cells[i].result, direct);
        EXPECT_EQ(first.cells[i].key,
                  ctx.cellKey(cell.workload, cell.scenario, cell.scheme)
                      .raw());
    }
}

TEST(ServeServer, QueryMissesThenHitsAfterSubmit)
{
    TestServer ts("query");

    const SweepResponse miss = roundTrip(ts, gridRequest(WireOp::Query));
    ASSERT_TRUE(miss.ok) << miss.error;
    for (const CellReply &cell : miss.cells)
        EXPECT_EQ(cell.status, CellStatus::Miss);
    EXPECT_EQ(counterValue(miss, "simulations"), 0u)
        << "query must never simulate";

    roundTrip(ts, gridRequest(WireOp::Submit));
    const SweepResponse hit = roundTrip(ts, gridRequest(WireOp::Query));
    ASSERT_TRUE(hit.ok) << hit.error;
    for (const CellReply &cell : hit.cells)
        EXPECT_EQ(cell.status, CellStatus::Hit);
}

TEST(ServeServer, UnknownWorkloadIsACellError)
{
    TestServer ts("cell_error");

    SweepRequest req;
    req.op = WireOp::Submit;
    CellRequest bad;
    bad.workload = "no_such_workload";
    CellRequest good;
    good.workload = "canneal";
    req.cells = {bad, good};

    const SweepResponse resp = roundTrip(ts, req);
    ASSERT_TRUE(resp.ok) << resp.error; // request-level ok
    ASSERT_EQ(resp.cells.size(), 2u);
    EXPECT_EQ(resp.cells[0].status, CellStatus::Error);
    EXPECT_FALSE(resp.cells[0].error.empty());
    EXPECT_EQ(resp.cells[1].status, CellStatus::Computed);
    EXPECT_EQ(counterValue(resp, "cell_errors"), 1u);
}

TEST(ServeServer, InvalidKnobsAreARequestError)
{
    TestServer ts("bad_knobs");

    SweepRequest req = gridRequest(WireOp::Submit);
    req.scale = 2.0; // out of (0, 1]
    const SweepResponse resp = roundTrip(ts, req);
    EXPECT_FALSE(resp.ok);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(counterValue(resp, "simulations"), 0u);
}

TEST(ServeServer, MalformedLinePoisonsOnlyThatRequest)
{
    TestServer ts("malformed");

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ts.opts.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    const auto raw_round_trip = [fd](const std::string &line) {
        const std::string msg = line + "\n";
        EXPECT_EQ(::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL),
                  static_cast<long>(msg.size()));
        std::string buf;
        char chunk[4096];
        while (buf.find('\n') == std::string::npos) {
            const long n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        return buf.substr(0, buf.find('\n'));
    };

    SweepResponse resp;
    std::string error;
    ASSERT_TRUE(
        decodeResponse(raw_round_trip("this is not json"), resp, &error))
        << error;
    EXPECT_FALSE(resp.ok);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(counterValue(resp, "bad_requests"), 1u);

    // The connection survives: a valid request on the same socket.
    SweepRequest stats;
    stats.op = WireOp::Stats;
    SweepResponse ok_resp;
    ASSERT_TRUE(decodeResponse(raw_round_trip(encodeRequest(stats)),
                               ok_resp, &error))
        << error;
    EXPECT_TRUE(ok_resp.ok);
    ::close(fd);
}

TEST(ServeServer, ConcurrentIdenticalSubmitsSimulateOnce)
{
    TestServer ts("dedup");

    SweepRequest req;
    req.op = WireOp::Submit;
    CellRequest cell;
    cell.workload = "canneal";
    cell.scenario = ScenarioKind::MedContig;
    cell.scheme = Scheme::Base;
    req.cells = {cell};

    constexpr int clients = 6;
    std::vector<SweepResponse> responses(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&ts, &req, &responses, i] {
            responses[static_cast<std::size_t>(i)] = roundTrip(ts, req);
        });
    }
    for (std::thread &t : threads)
        t.join();

    int computed = 0;
    for (const SweepResponse &resp : responses) {
        ASSERT_TRUE(resp.ok) << resp.error;
        ASSERT_EQ(resp.cells.size(), 1u);
        const CellStatus status = resp.cells[0].status;
        EXPECT_TRUE(status == CellStatus::Computed ||
                    status == CellStatus::Deduped ||
                    status == CellStatus::Hit)
            << cellStatusName(status);
        computed += status == CellStatus::Computed ? 1 : 0;
        expectSameResult(resp.cells[0].result, responses[0].cells[0].result);
    }
    EXPECT_EQ(computed, 1) << "exactly one client may simulate the cell";

    SweepRequest stats;
    stats.op = WireOp::Stats;
    const SweepResponse final_stats = roundTrip(ts, stats);
    EXPECT_EQ(counterValue(final_stats, "simulations"), 1u);
    EXPECT_EQ(counterValue(final_stats, "cells"),
              static_cast<std::uint64_t>(clients));
}

TEST(ServeServer, OverlappingGridsConserveCountersAndMatchDirectRun)
{
    TestServer ts("stress");

    // Every client submits the shared 4-cell grid plus one unique
    // Anchor cell, so requests overlap (dedup/hit paths) and diverge
    // (claimed paths) at the same time.
    constexpr int clients = 6;
    std::vector<SweepRequest> requests;
    for (int i = 0; i < clients; ++i) {
        SweepRequest req = gridRequest(WireOp::Submit);
        CellRequest unique;
        unique.workload = i % 2 == 0 ? "canneal" : "sphinx3";
        unique.scenario = ScenarioKind::MedContig;
        unique.scheme = Scheme::Anchor;
        unique.distance = std::uint64_t{2} << i; // valid: power of two
        req.cells.push_back(unique);
        requests.push_back(req);
    }

    std::vector<SweepResponse> responses(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&ts, &requests, &responses, i] {
            responses[static_cast<std::size_t>(i)] =
                roundTrip(ts, requests[static_cast<std::size_t>(i)]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Bit-identity: every reply cell, regardless of whether it was
    // computed, deduped, or served from the store, matches a direct
    // local run of the same cell.
    ExperimentContext ctx(quickOptions());
    for (int i = 0; i < clients; ++i) {
        const SweepResponse &resp =
            responses[static_cast<std::size_t>(i)];
        const SweepRequest &req = requests[static_cast<std::size_t>(i)];
        ASSERT_TRUE(resp.ok) << resp.error;
        ASSERT_EQ(resp.cells.size(), req.cells.size());
        for (std::size_t c = 0; c < req.cells.size(); ++c) {
            const CellRequest &cell = req.cells[c];
            EXPECT_NE(resp.cells[c].status, CellStatus::Error);
            expectSameResult(resp.cells[c].result,
                             ctx.run(cell.workload, cell.scenario,
                                     cell.scheme, cell.distance));
        }
    }

    // Counter conservation: a submitted cell ends as exactly one of
    // hit / dedup / simulation / error, and each distinct cell
    // simulates exactly once.
    SweepRequest stats;
    stats.op = WireOp::Stats;
    const SweepResponse final_stats = roundTrip(ts, stats);
    const std::uint64_t cells = counterValue(final_stats, "cells");
    EXPECT_EQ(cells, static_cast<std::uint64_t>(clients) * 5u);
    EXPECT_EQ(counterValue(final_stats, "hits") +
                  counterValue(final_stats, "dedups") +
                  counterValue(final_stats, "simulations") +
                  counterValue(final_stats, "cell_errors"),
              cells);
    EXPECT_EQ(counterValue(final_stats, "simulations"),
              4u + static_cast<std::uint64_t>(clients));
    EXPECT_EQ(counterValue(final_stats, "cell_errors"), 0u);
    EXPECT_EQ(counterValue(final_stats, "queue_wait_us_count"),
              counterValue(final_stats, "simulations"))
        << "every simulated cell must record its queue wait";
    EXPECT_GE(counterValue(final_stats, "request_wall_us_count"),
              static_cast<std::uint64_t>(clients));
}

TEST(ServeServer, SmallRequestIsNotStuckBehindALargeGrid)
{
    TestServer ts("fairness");

    // A large grid: 24 distinct Anchor cells. With the server's single
    // scheduler worker (base threads = 1) this runs long enough for a
    // small request to arrive mid-flight.
    SweepRequest large;
    large.op = WireOp::Submit;
    for (const char *workload : {"canneal", "sphinx3"}) {
        for (std::uint64_t d = 2; d <= (1u << 12); d <<= 1) {
            CellRequest cell;
            cell.workload = workload;
            cell.scenario = ScenarioKind::MedContig;
            cell.scheme = Scheme::Anchor;
            cell.distance = d;
            large.cells.push_back(cell);
        }
    }

    std::atomic<bool> large_done{false};
    SweepResponse large_resp;
    std::thread big([&] {
        large_resp = roundTrip(ts, large);
        large_done = true;
    });

    // Wait until the large grid is actually inside the scheduler.
    SweepRequest stats;
    stats.op = WireOp::Stats;
    for (int i = 0; i < 1000 && !large_done; ++i) {
        const SweepResponse s = roundTrip(ts, stats);
        if (counterValue(s, "sched_depth") +
                counterValue(s, "sched_running") >
            0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    SweepRequest small;
    small.op = WireOp::Submit;
    CellRequest cell;
    cell.workload = "canneal";
    cell.scenario = ScenarioKind::HighContig;
    cell.scheme = Scheme::Base;
    small.cells = {cell};
    const SweepResponse small_resp = roundTrip(ts, small);

    // Round-robin admission: the 1-cell request finishes after at most
    // a couple of the large grid's 24 cells, so the grid must still be
    // in flight when the small reply lands.
    EXPECT_FALSE(large_done.load())
        << "the small request queued behind the whole large grid";
    ASSERT_TRUE(small_resp.ok) << small_resp.error;
    ASSERT_EQ(small_resp.cells.size(), 1u);
    EXPECT_EQ(small_resp.cells[0].status, CellStatus::Computed);

    big.join();
    ASSERT_TRUE(large_resp.ok) << large_resp.error;
    for (const CellReply &reply : large_resp.cells)
        EXPECT_EQ(reply.status, CellStatus::Computed);

    // Interleaving must not bend any result: spot-check both requests
    // against direct runs.
    ExperimentContext ctx(quickOptions());
    expectSameResult(small_resp.cells[0].result,
                     ctx.run("canneal", ScenarioKind::HighContig,
                             Scheme::Base));
    expectSameResult(large_resp.cells[0].result,
                     ctx.run("canneal", ScenarioKind::MedContig,
                             Scheme::Anchor, 2));
}

TEST(ServeServer, ShutdownOpStopsTheServer)
{
    TestServer ts("shutdown");

    SweepRequest req;
    req.op = WireOp::Shutdown;
    const SweepResponse resp = roundTrip(ts, req);
    EXPECT_TRUE(resp.ok);

    ts.thread.join(); // run() must return on its own
    EXPECT_FALSE(fs::exists(ts.opts.socket_path))
        << "a stopped server unlinks its socket";
}

} // namespace
} // namespace atlb
