/**
 * @file
 * Tests for the sweep-service wire protocol (JSON codec + messages).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "serve/wire.hh"

namespace atlb
{
namespace
{

TEST(ServeWire, ParsesScalars)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("null", v, nullptr));
    EXPECT_EQ(v.kind, JsonValue::Kind::Null);

    ASSERT_TRUE(parseJson("true", v, nullptr));
    EXPECT_EQ(v.kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(v.boolean);

    ASSERT_TRUE(parseJson("12345", v, nullptr));
    EXPECT_EQ(v.kind, JsonValue::Kind::Number);
    EXPECT_TRUE(v.integer);
    EXPECT_EQ(v.u64, 12'345u);

    ASSERT_TRUE(parseJson("-1.5e2", v, nullptr));
    EXPECT_EQ(v.kind, JsonValue::Kind::Number);
    EXPECT_FALSE(v.integer);
    EXPECT_DOUBLE_EQ(v.number, -150.0);

    ASSERT_TRUE(parseJson("\"hi\"", v, nullptr));
    EXPECT_EQ(v.kind, JsonValue::Kind::String);
    EXPECT_EQ(v.text, "hi");
}

TEST(ServeWire, ParsesNestedStructure)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(
        R"({"op":"submit","cells":[{"workload":"milc","n":3}]})", v,
        nullptr));
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    const JsonValue *op = v.find("op");
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->text, "submit");
    const JsonValue *cells = v.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->items.size(), 1u);
    const JsonValue *n = cells->items[0].find("n");
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->u64, 3u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeWire, ParsesStringEscapes)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"("a\"b\\c\n\tA")", v, nullptr));
    EXPECT_EQ(v.text, "a\"b\\c\n\tA");
}

TEST(ServeWire, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("", v, &error));
    EXPECT_FALSE(parseJson("{", v, &error));
    EXPECT_FALSE(parseJson("{\"a\":}", v, &error));
    EXPECT_FALSE(parseJson("[1,]", v, &error));
    EXPECT_FALSE(parseJson("\"unterminated", v, &error));
    EXPECT_FALSE(parseJson("1 2", v, &error)); // trailing garbage
    EXPECT_FALSE(error.empty());
}

TEST(ServeWire, RejectsAdversarialNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(deep, v, &error));
}

TEST(ServeWire, EscapeRoundTripsThroughParser)
{
    const std::string nasty = "quote \" backslash \\ newline \n tab \t";
    JsonValue v;
    ASSERT_TRUE(parseJson("\"" + escapeJson(nasty) + "\"", v, nullptr));
    EXPECT_EQ(v.text, nasty);
}

TEST(ServeWire, SchemeAndScenarioLookupsAreNonFatal)
{
    Scheme scheme = Scheme::Base;
    EXPECT_TRUE(schemeFromWireName("Dynamic", scheme));
    EXPECT_EQ(scheme, Scheme::Anchor);
    EXPECT_FALSE(schemeFromWireName("NoSuchScheme", scheme));

    ScenarioKind scenario = ScenarioKind::Demand;
    EXPECT_TRUE(scenarioFromWireName("medium", scenario));
    EXPECT_EQ(scenario, ScenarioKind::MedContig);
    EXPECT_FALSE(scenarioFromWireName("bogus", scenario));
}

SweepRequest
sampleRequest()
{
    SweepRequest req;
    req.op = WireOp::Submit;
    req.accesses = 30'000;
    req.seed = 7;
    req.scale = 0.02;
    req.shards = 2;
    req.warmup = 4'096;
    CellRequest a;
    a.workload = "canneal";
    a.scenario = ScenarioKind::MedContig;
    a.scheme = Scheme::Anchor;
    a.distance = 64;
    CellRequest b;
    b.workload = "trace:/tmp/x.atlbtrc2";
    b.scenario = ScenarioKind::Demand;
    b.scheme = Scheme::Base;
    req.cells = {a, b};
    return req;
}

TEST(ServeWire, RequestRoundTrips)
{
    const SweepRequest req = sampleRequest();
    SweepRequest out;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), out, &error)) << error;
    EXPECT_EQ(out.op, WireOp::Submit);
    EXPECT_EQ(out.accesses, req.accesses);
    EXPECT_EQ(out.seed, req.seed);
    EXPECT_EQ(out.shards, req.shards);
    EXPECT_EQ(out.warmup, req.warmup);
    ASSERT_TRUE(out.scale.has_value());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(*out.scale),
              std::bit_cast<std::uint64_t>(*req.scale));
    ASSERT_EQ(out.cells.size(), 2u);
    EXPECT_EQ(out.cells[0].workload, "canneal");
    EXPECT_EQ(out.cells[0].scenario, ScenarioKind::MedContig);
    EXPECT_EQ(out.cells[0].scheme, Scheme::Anchor);
    EXPECT_EQ(out.cells[0].distance, std::optional<std::uint64_t>{64});
    EXPECT_EQ(out.cells[1].workload, "trace:/tmp/x.atlbtrc2");
    EXPECT_FALSE(out.cells[1].distance.has_value());
}

TEST(ServeWire, RequestOmittedKnobsStayAbsent)
{
    SweepRequest req;
    req.op = WireOp::Query;
    SweepRequest out;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), out, nullptr));
    EXPECT_EQ(out.op, WireOp::Query);
    EXPECT_FALSE(out.accesses.has_value());
    EXPECT_FALSE(out.seed.has_value());
    EXPECT_FALSE(out.scale.has_value());
    EXPECT_FALSE(out.shards.has_value());
    EXPECT_FALSE(out.warmup.has_value());
    EXPECT_TRUE(out.cells.empty());
}

TEST(ServeWire, DecodeRequestRejectsBadOps)
{
    SweepRequest out;
    std::string error;
    EXPECT_FALSE(decodeRequest("{\"op\":\"explode\"}", out, &error));
    EXPECT_FALSE(decodeRequest("{}", out, &error));
    EXPECT_FALSE(decodeRequest("not json at all", out, &error));
    EXPECT_FALSE(error.empty());
}

SimResult
sampleResult()
{
    SimResult r;
    r.workload = "canneal";
    r.scenario = "medium";
    r.scheme = "Dynamic";
    r.anchor_distance = 64;
    r.stats.accesses = 30'000;
    r.stats.l1_hits = 25'000;
    r.stats.l2_regular_hits = 3'000;
    r.stats.coalesced_hits = 1'000;
    r.stats.page_walks = 1'000;
    r.stats.translation_cycles = 123'456;
    r.stats.shootdowns = 3;
    r.stats.shootdown_cycles = 999;
    r.instructions = 0.1 + 0.2; // deliberately non-representable
    r.l2_hit_cycles = 9;
    r.coalesced_cycles = 11;
    r.walk_cycles = 37;
    return r;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.stats.shootdowns, b.stats.shootdowns);
    EXPECT_EQ(a.stats.shootdown_cycles, b.stats.shootdown_cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.instructions),
              std::bit_cast<std::uint64_t>(b.instructions))
        << "instructions must cross the wire bit-exactly";
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

TEST(ServeWire, ResponseRoundTripsResultsBitExactly)
{
    SweepResponse resp;
    resp.ok = true;
    CellReply hit;
    hit.status = CellStatus::Hit;
    hit.key = 0xdeadbeefcafef00dULL;
    hit.result = sampleResult();
    CellReply miss;
    miss.status = CellStatus::Miss;
    miss.key = 42;
    CellReply err;
    err.status = CellStatus::Error;
    err.error = "unknown workload 'nope'";
    resp.cells = {hit, miss, err};
    resp.counters = {{"hits", 1}, {"simulations", 0}};

    SweepResponse out;
    std::string error;
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), out, &error))
        << error;
    EXPECT_TRUE(out.ok);
    ASSERT_EQ(out.cells.size(), 3u);
    EXPECT_EQ(out.cells[0].status, CellStatus::Hit);
    EXPECT_EQ(out.cells[0].key, 0xdeadbeefcafef00dULL);
    expectSameResult(out.cells[0].result, hit.result);
    EXPECT_EQ(out.cells[1].status, CellStatus::Miss);
    EXPECT_EQ(out.cells[1].key, 42u);
    EXPECT_EQ(out.cells[2].status, CellStatus::Error);
    EXPECT_EQ(out.cells[2].error, "unknown workload 'nope'");
    ASSERT_EQ(out.counters.size(), 2u);
    EXPECT_EQ(out.counters[0].first, "hits");
    EXPECT_EQ(out.counters[0].second, 1u);
}

TEST(ServeWire, ErrorResponseRoundTrips)
{
    SweepResponse resp;
    resp.ok = false;
    resp.error = "bad request: no cells";
    SweepResponse out;
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), out, nullptr));
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.error, "bad request: no cells");
    EXPECT_TRUE(out.cells.empty());
}

TEST(ServeWire, OpAndStatusNamesRoundTrip)
{
    EXPECT_STREQ(wireOpName(WireOp::Submit), "submit");
    EXPECT_STREQ(wireOpName(WireOp::Query), "query");
    EXPECT_STREQ(wireOpName(WireOp::Stats), "stats");
    EXPECT_STREQ(wireOpName(WireOp::Shutdown), "shutdown");
    EXPECT_STREQ(cellStatusName(CellStatus::Hit), "hit");
    EXPECT_STREQ(cellStatusName(CellStatus::Computed), "computed");
    EXPECT_STREQ(cellStatusName(CellStatus::Deduped), "deduped");
    EXPECT_STREQ(cellStatusName(CellStatus::Miss), "miss");
    EXPECT_STREQ(cellStatusName(CellStatus::Error), "error");
}

} // namespace
} // namespace atlb
