/**
 * @file
 * Tests for the content-addressed persistent result store.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "serve/result_store.hh"

namespace atlb
{
namespace
{

namespace fs = std::filesystem;

/** Fresh store path for one test (any previous file removed). */
std::string
storePath(const std::string &name)
{
    const std::string path =
        testing::TempDir() + "atlb_" + name + ".results";
    fs::remove(path);
    return path;
}

SimResult
makeResult(std::uint64_t salt)
{
    SimResult r;
    r.workload = "canneal";
    r.scenario = "medium";
    r.scheme = "Dynamic";
    r.anchor_distance = 64 + salt;
    r.stats.accesses = 30'000 + salt;
    r.stats.l1_hits = 25'000;
    r.stats.l2_regular_hits = 3'000;
    r.stats.coalesced_hits = 1'000;
    r.stats.page_walks = 1'000 + salt;
    r.stats.translation_cycles = 123'456;
    r.stats.shootdowns = 3;
    r.stats.shootdown_cycles = 999;
    r.instructions = 0.1 + 0.2 + static_cast<double>(salt);
    r.l2_hit_cycles = 9;
    r.coalesced_cycles = 11;
    r.walk_cycles = 37;
    return r;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.stats.shootdowns, b.stats.shootdowns);
    EXPECT_EQ(a.stats.shootdown_cycles, b.stats.shootdown_cycles);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.instructions),
              std::bit_cast<std::uint64_t>(b.instructions))
        << "instructions must round-trip bit-exactly";
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

TEST(ServeStore, PayloadCodecRoundTripsBitExactly)
{
    const SimResult r = makeResult(7);
    SimResult out;
    ASSERT_TRUE(decodeSimResult(encodeSimResult(r), out));
    expectSameResult(out, r);
}

TEST(ServeStore, PayloadCodecRejectsMalformedPayloads)
{
    const std::string good = encodeSimResult(makeResult(1));
    SimResult out;
    EXPECT_FALSE(decodeSimResult("", out));
    EXPECT_FALSE(decodeSimResult(good.substr(0, good.size() - 1), out));
    EXPECT_FALSE(decodeSimResult(good + "x", out)); // trailing bytes
}

TEST(ServeStore, StoreAndLookup)
{
    ResultStore store(storePath("store_lookup"));
    const CellKey key{0x1111};
    EXPECT_FALSE(store.lookup(key).has_value());

    store.store(key, makeResult(2));
    const auto cached = store.lookup(key);
    ASSERT_TRUE(cached.has_value());
    expectSameResult(*cached, makeResult(2));
    EXPECT_FALSE(store.lookup(CellKey{0x2222}).has_value());

    const ResultStore::Counters c = store.counters();
    EXPECT_EQ(c.lookups, 3u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.appends, 1u);
    EXPECT_EQ(c.corrupt_dropped, 0u);
}

TEST(ServeStore, PersistsAcrossReopen)
{
    const std::string path = storePath("reopen");
    {
        ResultStore store(path);
        store.store(CellKey{1}, makeResult(10));
        store.store(CellKey{2}, makeResult(20));
    }
    ResultStore reopened(path);
    const auto r1 = reopened.lookup(CellKey{1});
    const auto r2 = reopened.lookup(CellKey{2});
    ASSERT_TRUE(r1.has_value());
    ASSERT_TRUE(r2.has_value());
    expectSameResult(*r1, makeResult(10));
    expectSameResult(*r2, makeResult(20));
    EXPECT_EQ(reopened.info().live_cells, 2u);
    EXPECT_EQ(reopened.info().records, 2u);
}

TEST(ServeStore, LatestRecordForAKeyWins)
{
    const std::string path = storePath("latest_wins");
    {
        ResultStore store(path);
        store.store(CellKey{5}, makeResult(1));
        store.store(CellKey{5}, makeResult(2));
    }
    ResultStore reopened(path);
    const auto r = reopened.lookup(CellKey{5});
    ASSERT_TRUE(r.has_value());
    expectSameResult(*r, makeResult(2));
    EXPECT_EQ(reopened.info().live_cells, 1u);
    EXPECT_EQ(reopened.info().records, 2u); // superseded record remains
}

TEST(ServeStore, InvalidationTombstonesSurviveReopen)
{
    const std::string path = storePath("tombstone");
    {
        ResultStore store(path);
        store.store(CellKey{9}, makeResult(3));
        store.invalidate(CellKey{9});
        EXPECT_FALSE(store.lookup(CellKey{9}).has_value());
        EXPECT_EQ(store.counters().invalidations, 1u);
    }
    ResultStore reopened(path);
    EXPECT_FALSE(reopened.lookup(CellKey{9}).has_value());
    EXPECT_EQ(reopened.info().live_cells, 0u);
}

TEST(ServeStore, TruncatedTailIsDroppedNotFatal)
{
    const std::string path = storePath("truncated_tail");
    {
        ResultStore store(path);
        store.store(CellKey{1}, makeResult(1));
        store.store(CellKey{2}, makeResult(2));
    }
    // Tear the last record: a torn write leaves a short tail.
    fs::resize_file(path, fs::file_size(path) - 5);

    {
        ResultStore reopened(path);
        EXPECT_EQ(reopened.counters().corrupt_dropped, 1u);
        ASSERT_TRUE(reopened.lookup(CellKey{1}).has_value());
        EXPECT_FALSE(reopened.lookup(CellKey{2}).has_value());
        EXPECT_EQ(reopened.info().records, 1u);

        // The tail was truncated back to the last intact record, so
        // the store must be appendable again.
        reopened.store(CellKey{3}, makeResult(3));
    }
    ResultStore again(path);
    EXPECT_EQ(again.counters().corrupt_dropped, 0u);
    EXPECT_TRUE(again.lookup(CellKey{1}).has_value());
    EXPECT_TRUE(again.lookup(CellKey{3}).has_value());
}

TEST(ServeStore, FlippedPayloadByteFailsTheChecksum)
{
    const std::string path = storePath("flipped_byte");
    {
        ResultStore store(path);
        store.store(CellKey{1}, makeResult(1));
        store.store(CellKey{2}, makeResult(2));
    }
    // Flip the final payload byte of the last record.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(-1, std::ios::end);
        char c = 0;
        f.get(c);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(c ^ 0x40));
    }

    ResultStore reopened(path);
    EXPECT_EQ(reopened.counters().corrupt_dropped, 1u);
    EXPECT_TRUE(reopened.lookup(CellKey{1}).has_value());
    EXPECT_FALSE(reopened.lookup(CellKey{2}).has_value())
        << "a checksum-corrupt record must not be served";
}

TEST(ServeStore, GcCompactsSupersededRecordsAndTombstones)
{
    const std::string path = storePath("gc");
    {
        ResultStore store(path);
        store.store(CellKey{1}, makeResult(1));
        store.store(CellKey{1}, makeResult(2)); // supersedes
        store.store(CellKey{2}, makeResult(3));
        store.invalidate(CellKey{2}); // tombstone
        store.store(CellKey{3}, makeResult(4));
        ASSERT_EQ(store.info().records, 5u);
        ASSERT_EQ(store.info().live_cells, 2u);

        const std::uint64_t before_bytes = store.info().file_bytes;
        EXPECT_EQ(store.gc(), 3u);
        EXPECT_EQ(store.info().records, 2u);
        EXPECT_EQ(store.info().live_cells, 2u);
        EXPECT_LT(store.info().file_bytes, before_bytes);
        EXPECT_EQ(store.counters().gc_evicted, 3u);

        const auto r1 = store.lookup(CellKey{1});
        ASSERT_TRUE(r1.has_value());
        expectSameResult(*r1, makeResult(2));
        EXPECT_FALSE(store.lookup(CellKey{2}).has_value());
    }

    // The compacted file must replay cleanly.
    ResultStore reopened(path);
    EXPECT_EQ(reopened.info().records, 2u);
    EXPECT_TRUE(reopened.lookup(CellKey{3}).has_value());
}

TEST(ResultStoreDeath, ForeignMagicIsFatal)
{
    const std::string path = storePath("bad_magic");
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTASTORE-this is some other file format\n";
    }
    EXPECT_DEATH({ ResultStore store(path); }, "bad magic");
}

TEST(ResultStoreDeath, SecondOpenOfALiveStoreIsRefused)
{
    // Regression: `store gc` against a running server's store would
    // truncate its in-flight appends as a "corrupt tail" and rename
    // the file out from under it. Any second open while the first is
    // live must refuse instead.
    const std::string path = storePath("live_lock");
    ResultStore live(path);
    live.store(CellKey{1}, makeResult(1));
    EXPECT_DEATH({ ResultStore second(path); }, "in use");
}

TEST(ServeStore, LockIsReleasedByDestructionAndSurvivesGc)
{
    const std::string path = storePath("lock_release");
    {
        ResultStore store(path);
        store.store(CellKey{1}, makeResult(1));
        store.store(CellKey{1}, makeResult(2));
        // gc renames a fresh file over path; the sidecar lock must
        // stay attached to this instance throughout.
        EXPECT_EQ(store.gc(), 1u);
    }
    // First owner gone: reopening must succeed.
    ResultStore reopened(path);
    EXPECT_TRUE(reopened.lookup(CellKey{1}).has_value());
}

} // namespace
} // namespace atlb
