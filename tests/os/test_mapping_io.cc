/**
 * @file
 * Tests for mapping import/export.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "os/mapping_io.hh"
#include "os/scenario.hh"

namespace atlb
{
namespace
{

class MappingIoTest : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(MappingIoTest, ParsesDecimalAndHex)
{
    std::istringstream in("100 1000 10\n0x200 0x4000 0x20\n");
    const MemoryMap m = readMappingText(in, "test");
    EXPECT_EQ(m.translate(Vpn{105}), Ppn{1005u});
    EXPECT_EQ(m.translate(Vpn{0x210}), Ppn{0x4010u});
    EXPECT_EQ(m.mappedPages(), 10u + 0x20);
}

TEST_F(MappingIoTest, IgnoresCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n\n100 1000 4   # trailing comment\n\n");
    const MemoryMap m = readMappingText(in, "test");
    EXPECT_EQ(m.chunks().size(), 1u);
    EXPECT_EQ(m.translate(Vpn{102}), Ppn{1002u});
}

TEST_F(MappingIoTest, RoundTripPreservesChunks)
{
    ScenarioParams p;
    p.footprint_pages = 5000;
    p.seed = 3;
    const MemoryMap original =
        buildScenario(ScenarioKind::MedContig, p);
    std::ostringstream out;
    writeMappingText(out, original);
    std::istringstream in(out.str());
    const MemoryMap loaded = readMappingText(in, "roundtrip");
    ASSERT_EQ(loaded.chunks().size(), original.chunks().size());
    for (std::size_t i = 0; i < loaded.chunks().size(); ++i) {
        EXPECT_EQ(loaded.chunks()[i].vpn, original.chunks()[i].vpn);
        EXPECT_EQ(loaded.chunks()[i].ppn, original.chunks()[i].ppn);
        EXPECT_EQ(loaded.chunks()[i].pages, original.chunks()[i].pages);
    }
}

TEST_F(MappingIoTest, MissingFieldIsFatal)
{
    std::istringstream in("100 1000\n");
    EXPECT_THROW(readMappingText(in, "test"), std::runtime_error);
}

TEST_F(MappingIoTest, TrailingFieldIsFatal)
{
    std::istringstream in("100 1000 4 9\n");
    EXPECT_THROW(readMappingText(in, "test"), std::runtime_error);
}

TEST_F(MappingIoTest, BadNumberIsFatal)
{
    std::istringstream in("100 banana 4\n");
    EXPECT_THROW(readMappingText(in, "test"), std::runtime_error);
}

TEST_F(MappingIoTest, ZeroLengthChunkIsFatal)
{
    std::istringstream in("100 1000 0\n");
    EXPECT_THROW(readMappingText(in, "test"), std::runtime_error);
}

TEST_F(MappingIoTest, OverlapIsFatalAtFinalize)
{
    std::istringstream in("100 1000 10\n105 2000 10\n");
    EXPECT_THROW(readMappingText(in, "test"), std::logic_error);
}

TEST_F(MappingIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadMapping("/nonexistent/mapping.txt"),
                 std::runtime_error);
}

} // namespace
} // namespace atlb
