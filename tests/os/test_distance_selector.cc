/**
 * @file
 * Tests for the dynamic anchor-distance selection (paper Algorithm 1).
 */

#include <gtest/gtest.h>

#include "os/distance_selector.hh"

namespace atlb
{
namespace
{

TEST(Distances, CandidateListMatchesPaper)
{
    const auto d = candidateDistances();
    ASSERT_EQ(d.size(), 16u);
    EXPECT_EQ(d.front(), 2u);
    EXPECT_EQ(d.back(), 65536u);
    for (std::size_t i = 1; i < d.size(); ++i)
        EXPECT_EQ(d[i], d[i - 1] * 2);
}

TEST(DistanceSelector, EmptyHistogramPicksSmallest)
{
    Histogram h;
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_EQ(sel.distance, 2u);
}

TEST(DistanceSelector, UniformChunksPickMatchingDistance)
{
    // All memory in 64-page chunks: 64 is the exact cover.
    Histogram h;
    h.add(64, 1000);
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_EQ(sel.distance, 64u);
    EXPECT_DOUBLE_EQ(sel.cost, 1000.0); // one anchor per chunk
}

TEST(DistanceSelector, SingleGiantChunkPicksMaximum)
{
    Histogram h;
    h.add(1ULL << 21, 1); // 8GB in one run
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_EQ(sel.distance, 65536u);
}

TEST(DistanceSelector, LowContiguityRangePicksSmall)
{
    // Paper Table 4 low contiguity: uniform 1..16 pages. Table 6: every
    // workload selects 4.
    Histogram h;
    for (std::uint64_t c = 1; c <= 16; ++c)
        h.add(c, 100);
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_EQ(sel.distance, 4u);
}

TEST(DistanceSelector, MediumContiguityRangePicksTens)
{
    // Paper Table 4 medium: uniform 1..512 pages; Table 6 selects 16-32.
    Histogram h;
    for (std::uint64_t c = 1; c <= 512; c += 3)
        h.add(c, 10);
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_GE(sel.distance, 16u);
    EXPECT_LE(sel.distance, 32u);
}

TEST(DistanceSelector, HighContiguityRangePicksHundreds)
{
    // Paper Table 4 high: uniform 512..65536; Table 6 selects 32-1K.
    Histogram h;
    for (std::uint64_t c = 512; c <= 65536; c += 777)
        h.add(c, 3);
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_GE(sel.distance, 256u);
    EXPECT_LE(sel.distance, 16384u);
}

TEST(DistanceSelector, HugePageNeutralTailDoesNotDragSelection)
{
    // Big runs plus a tail of exactly-2MB chunks: the 2MB chunks cost
    // one entry under any large distance, so the big runs decide.
    Histogram h;
    h.add(1ULL << 15, 64); // 2M pages in 128MB runs
    h.add(512, 2048);      // 1M pages in 2MB runs
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_GE(sel.distance, 1ULL << 14);
}

TEST(DistanceSelector, SmallFragmentsPullSelectionDown)
{
    Histogram h;
    h.add(1ULL << 15, 2);  // a little memory in big runs
    h.add(4, 100000);      // most pages in 4-page fragments
    const DistanceSelection sel = selectAnchorDistance(h);
    EXPECT_LE(sel.distance, 8u);
}

TEST(DistanceSelector, CandidatesAreReportedForAllDistances)
{
    Histogram h;
    h.add(32, 10);
    const DistanceSelection sel = selectAnchorDistance(h);
    ASSERT_EQ(sel.candidates.size(), candidateDistances().size());
    // Chosen cost matches the candidate record.
    for (const auto &[d, c] : sel.candidates) {
        if (d == sel.distance) {
            EXPECT_DOUBLE_EQ(c, sel.cost);
        }
    }
}

TEST(DistanceSelector, CoverageWeightedFavoursSmallerDistances)
{
    Histogram h;
    for (std::uint64_t c = 1; c <= 512; c += 3)
        h.add(c, 10);
    const auto count = selectAnchorDistance(
        h, DistanceCostModel::EntryCount);
    const auto weighted = selectAnchorDistance(
        h, DistanceCostModel::CoverageWeighted);
    EXPECT_LE(weighted.distance, count.distance);
}

TEST(DistanceController, FirstEpochAdopts)
{
    Histogram h;
    h.add(64, 1000);
    DistanceController ctl(8);
    EXPECT_TRUE(ctl.epoch(h));
    EXPECT_EQ(ctl.distance(), 64u);
    EXPECT_EQ(ctl.changes(), 1u);
}

TEST(DistanceController, StableHistogramNeverChangesAgain)
{
    Histogram h;
    h.add(64, 1000);
    DistanceController ctl(8);
    ctl.epoch(h);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(ctl.epoch(h));
    EXPECT_EQ(ctl.changes(), 1u);
    EXPECT_EQ(ctl.epochs(), 21u);
}

TEST(DistanceController, SmallImprovementIsHysteresisFiltered)
{
    // 64- and 128-page chunks in proportions that make the two
    // distances nearly equivalent.
    Histogram h;
    h.add(64, 1000);
    DistanceController ctl(8, 0.5); // very sticky
    ctl.epoch(h);
    EXPECT_EQ(ctl.distance(), 64u);
    Histogram h2;
    h2.add(64, 900); // slightly different mix
    h2.add(128, 50);
    EXPECT_FALSE(ctl.epoch(h2));
    EXPECT_EQ(ctl.distance(), 64u);
}

TEST(DistanceController, DrasticChangeCommits)
{
    Histogram small;
    small.add(4, 1000);
    Histogram big;
    big.add(1ULL << 16, 100);
    DistanceController ctl(8, 0.1);
    ctl.epoch(small);
    const std::uint64_t d1 = ctl.distance();
    EXPECT_TRUE(ctl.epoch(big));
    EXPECT_GT(ctl.distance(), d1);
    EXPECT_EQ(ctl.changes(), 2u);
}

} // namespace
} // namespace atlb
