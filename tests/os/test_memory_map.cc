/**
 * @file
 * Tests for the chunk-based memory map.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "os/memory_map.hh"

namespace atlb
{
namespace
{

/** Raw-argument shorthand: the tests enumerate many small mappings. */
void
add(MemoryMap &m, std::uint64_t vpn, std::uint64_t ppn,
    std::uint64_t pages)
{
    m.add(Vpn{vpn}, Ppn{ppn}, PageCount{pages});
}

TEST(MemoryMap, LookupInsideChunk)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.translate(Vpn{100}), Ppn{1000});
    EXPECT_EQ(m.translate(Vpn{105}), Ppn{1005});
    EXPECT_EQ(m.translate(Vpn{109}), Ppn{1009});
}

TEST(MemoryMap, UnmappedReturnsInvalid)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.translate(Vpn{99}), invalidPpn);
    EXPECT_EQ(m.translate(Vpn{110}), invalidPpn);
    EXPECT_FALSE(m.mapped(Vpn{0}));
    EXPECT_TRUE(m.mapped(Vpn{104}));
}

TEST(MemoryMap, OutOfOrderAddsSorted)
{
    MemoryMap m;
    add(m, 500, 90, 5);
    add(m, 100, 10, 5);
    add(m, 300, 50, 5);
    m.finalize();
    ASSERT_EQ(m.chunks().size(), 3u);
    EXPECT_EQ(m.chunks()[0].vpn, Vpn{100});
    EXPECT_EQ(m.chunks()[1].vpn, Vpn{300});
    EXPECT_EQ(m.chunks()[2].vpn, Vpn{500});
}

TEST(MemoryMap, MergesVaPaAdjacentChunks)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    add(m, 110, 1010, 5); // VA and PA adjacent -> merge
    m.finalize();
    ASSERT_EQ(m.chunks().size(), 1u);
    EXPECT_EQ(m.chunks()[0].pages, 15u);
    EXPECT_EQ(m.translate(Vpn{114}), Ppn{1014});
}

TEST(MemoryMap, DoesNotMergePaDiscontiguous)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    add(m, 110, 2000, 5); // VA adjacent, PA not
    m.finalize();
    EXPECT_EQ(m.chunks().size(), 2u);
}

TEST(MemoryMap, DoesNotMergeVaGapped)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    add(m, 111, 1011, 5); // VA gap of one page
    m.finalize();
    EXPECT_EQ(m.chunks().size(), 2u);
    EXPECT_FALSE(m.mapped(Vpn{110}));
}

TEST(MemoryMap, ContiguityFromIsChunkSuffix)
{
    MemoryMap m;
    add(m, 100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.contiguityFrom(Vpn{100}), 10u);
    EXPECT_EQ(m.contiguityFrom(Vpn{105}), 5u);
    EXPECT_EQ(m.contiguityFrom(Vpn{109}), 1u);
    EXPECT_EQ(m.contiguityFrom(Vpn{110}), 0u);
    EXPECT_EQ(m.contiguityFrom(Vpn{50}), 0u);
}

TEST(MemoryMap, MappedPagesAccumulates)
{
    MemoryMap m;
    add(m, 0, 0, 4);
    add(m, 100, 100, 6);
    m.finalize();
    EXPECT_EQ(m.mappedPages(), 10u);
}

TEST(MemoryMap, HugeEligibleRequiresAlignmentAndSpan)
{
    MemoryMap m;
    // Chunk covers VA [512, 1536), PA congruent mod 512.
    add(m, 512, 512 + 512 * 7, 1024);
    m.finalize();
    EXPECT_TRUE(m.hugeEligible(Vpn{512}));
    EXPECT_TRUE(m.hugeEligible(Vpn{700}));  // inside first aligned block
    EXPECT_TRUE(m.hugeEligible(Vpn{1024})); // second block
    EXPECT_FALSE(m.hugeEligible(Vpn{1536}));
}

TEST(MemoryMap, HugeIneligibleWhenPaMisaligned)
{
    MemoryMap m;
    add(m, 512, 513, 1024); // PA not congruent mod 512
    m.finalize();
    EXPECT_FALSE(m.hugeEligible(Vpn{512}));
    EXPECT_FALSE(m.hugeEligible(Vpn{1024}));
}

TEST(MemoryMap, HugeIneligibleWhenBlockCrossesChunkEnd)
{
    MemoryMap m;
    add(m, 512, 512, 700); // ends mid-second-block at VA 1212
    m.finalize();
    EXPECT_TRUE(m.hugeEligible(Vpn{512}));
    EXPECT_FALSE(m.hugeEligible(Vpn{1024}));
}

TEST(MemoryMap, HugeIneligibleWhenBlockStartUnmapped)
{
    MemoryMap m;
    add(m, 600, 600, 1000); // block [512, 1024) not fully mapped
    m.finalize();
    EXPECT_FALSE(m.hugeEligible(Vpn{600}));
    EXPECT_TRUE(m.hugeEligible(Vpn{1024}));
}

TEST(MemoryMap, ContiguityHistogramCountsRuns)
{
    MemoryMap m;
    add(m, 0, 0, 4);
    add(m, 100, 200, 4);
    add(m, 200, 400, 16);
    m.finalize();
    const Histogram h = m.contiguityHistogram();
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.count(16), 1u);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.weightedSum(), 24u);
}

class MemoryMapErrors : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(MemoryMapErrors, OverlapPanicsAtFinalize)
{
    MemoryMap m;
    add(m, 100, 0, 10);
    add(m, 105, 50, 10);
    EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST_F(MemoryMapErrors, LookupBeforeFinalizePanics)
{
    MemoryMap m;
    add(m, 0, 0, 1);
    EXPECT_THROW(m.translate(Vpn{0}), std::logic_error);
}

TEST_F(MemoryMapErrors, DoubleFinalizePanics)
{
    MemoryMap m;
    add(m, 0, 0, 1);
    m.finalize();
    EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST_F(MemoryMapErrors, AddAfterFinalizePanics)
{
    MemoryMap m;
    add(m, 0, 0, 1);
    m.finalize();
    EXPECT_THROW(add(m, 10, 10, 1), std::logic_error);
}

} // namespace
} // namespace atlb
