/**
 * @file
 * Tests for the chunk-based memory map.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "os/memory_map.hh"

namespace atlb
{
namespace
{

TEST(MemoryMap, LookupInsideChunk)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.translate(100), 1000u);
    EXPECT_EQ(m.translate(105), 1005u);
    EXPECT_EQ(m.translate(109), 1009u);
}

TEST(MemoryMap, UnmappedReturnsInvalid)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.translate(99), invalidPpn);
    EXPECT_EQ(m.translate(110), invalidPpn);
    EXPECT_FALSE(m.mapped(0));
    EXPECT_TRUE(m.mapped(104));
}

TEST(MemoryMap, OutOfOrderAddsSorted)
{
    MemoryMap m;
    m.add(500, 90, 5);
    m.add(100, 10, 5);
    m.add(300, 50, 5);
    m.finalize();
    ASSERT_EQ(m.chunks().size(), 3u);
    EXPECT_EQ(m.chunks()[0].vpn, 100u);
    EXPECT_EQ(m.chunks()[1].vpn, 300u);
    EXPECT_EQ(m.chunks()[2].vpn, 500u);
}

TEST(MemoryMap, MergesVaPaAdjacentChunks)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.add(110, 1010, 5); // VA and PA adjacent -> merge
    m.finalize();
    ASSERT_EQ(m.chunks().size(), 1u);
    EXPECT_EQ(m.chunks()[0].pages, 15u);
    EXPECT_EQ(m.translate(114), 1014u);
}

TEST(MemoryMap, DoesNotMergePaDiscontiguous)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.add(110, 2000, 5); // VA adjacent, PA not
    m.finalize();
    EXPECT_EQ(m.chunks().size(), 2u);
}

TEST(MemoryMap, DoesNotMergeVaGapped)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.add(111, 1011, 5); // VA gap of one page
    m.finalize();
    EXPECT_EQ(m.chunks().size(), 2u);
    EXPECT_FALSE(m.mapped(110));
}

TEST(MemoryMap, ContiguityFromIsChunkSuffix)
{
    MemoryMap m;
    m.add(100, 1000, 10);
    m.finalize();
    EXPECT_EQ(m.contiguityFrom(100), 10u);
    EXPECT_EQ(m.contiguityFrom(105), 5u);
    EXPECT_EQ(m.contiguityFrom(109), 1u);
    EXPECT_EQ(m.contiguityFrom(110), 0u);
    EXPECT_EQ(m.contiguityFrom(50), 0u);
}

TEST(MemoryMap, MappedPagesAccumulates)
{
    MemoryMap m;
    m.add(0, 0, 4);
    m.add(100, 100, 6);
    m.finalize();
    EXPECT_EQ(m.mappedPages(), 10u);
}

TEST(MemoryMap, HugeEligibleRequiresAlignmentAndSpan)
{
    MemoryMap m;
    // Chunk covers VA [512, 1536), PA congruent mod 512.
    m.add(512, 512 + 512 * 7, 1024);
    m.finalize();
    EXPECT_TRUE(m.hugeEligible(512));
    EXPECT_TRUE(m.hugeEligible(700));  // inside first aligned block
    EXPECT_TRUE(m.hugeEligible(1024)); // second block
    EXPECT_FALSE(m.hugeEligible(1536));
}

TEST(MemoryMap, HugeIneligibleWhenPaMisaligned)
{
    MemoryMap m;
    m.add(512, 513, 1024); // PA not congruent mod 512
    m.finalize();
    EXPECT_FALSE(m.hugeEligible(512));
    EXPECT_FALSE(m.hugeEligible(1024));
}

TEST(MemoryMap, HugeIneligibleWhenBlockCrossesChunkEnd)
{
    MemoryMap m;
    m.add(512, 512, 700); // ends mid-second-block at VA 1212
    m.finalize();
    EXPECT_TRUE(m.hugeEligible(512));
    EXPECT_FALSE(m.hugeEligible(1024));
}

TEST(MemoryMap, HugeIneligibleWhenBlockStartUnmapped)
{
    MemoryMap m;
    m.add(600, 600, 1000); // block [512, 1024) not fully mapped
    m.finalize();
    EXPECT_FALSE(m.hugeEligible(600));
    EXPECT_TRUE(m.hugeEligible(1024));
}

TEST(MemoryMap, ContiguityHistogramCountsRuns)
{
    MemoryMap m;
    m.add(0, 0, 4);
    m.add(100, 200, 4);
    m.add(200, 400, 16);
    m.finalize();
    const Histogram h = m.contiguityHistogram();
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.count(16), 1u);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.weightedSum(), 24u);
}

class MemoryMapErrors : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(MemoryMapErrors, OverlapPanicsAtFinalize)
{
    MemoryMap m;
    m.add(100, 0, 10);
    m.add(105, 50, 10);
    EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST_F(MemoryMapErrors, LookupBeforeFinalizePanics)
{
    MemoryMap m;
    m.add(0, 0, 1);
    EXPECT_THROW(m.translate(0), std::logic_error);
}

TEST_F(MemoryMapErrors, DoubleFinalizePanics)
{
    MemoryMap m;
    m.add(0, 0, 1);
    m.finalize();
    EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST_F(MemoryMapErrors, AddAfterFinalizePanics)
{
    MemoryMap m;
    m.add(0, 0, 1);
    m.finalize();
    EXPECT_THROW(m.add(10, 10, 1), std::logic_error);
}

} // namespace
} // namespace atlb
