/**
 * @file
 * Tests for VA-region partitioning (the Section 4.2 extension's OS
 * side).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "os/memory_map.hh"
#include "os/region_partitioner.hh"
#include "os/scenario.hh"

namespace atlb
{
namespace
{

constexpr Vpn base{0x7f0000000ULL};

/** Map with two clearly different contiguity regimes. */
MemoryMap
twoRegimeMap()
{
    MemoryMap m;
    Vpn vpn = base;
    Ppn ppn{0x100000};
    // 8K pages of 4-page fragments.
    for (int i = 0; i < 2048; ++i) {
        m.add(vpn, ppn, PageCount{4});
        vpn += 4;
        ppn += 5;
    }
    // 64K pages of 8K-page runs.
    for (int i = 0; i < 8; ++i) {
        ppn = (ppn + 1).alignUp(hugePages);
        m.add(vpn, ppn, PageCount{8192});
        vpn += 8192;
        ppn += 8192;
    }
    m.finalize();
    return m;
}

TEST(RegionPartitioner, SplitsAtScaleShift)
{
    const MemoryMap m = twoRegimeMap();
    const RegionPartition p = partitionAnchorRegions(m);
    ASSERT_GE(p.regions.size(), 2u);
    ASSERT_LE(p.regions.size(), 8u);
    // First region covers the fragment area with a small distance;
    // last region covers the runs with a large one.
    EXPECT_LE(p.regions.front().distance.pages(), 8u);
    EXPECT_GE(p.regions.back().distance.pages(), 1024u);
}

TEST(RegionPartitioner, RegionsAreSortedDisjointAndCover)
{
    const MemoryMap m = twoRegimeMap();
    const RegionPartition p = partitionAnchorRegions(m);
    Vpn prev_end{0};
    for (const AnchorRegion &r : p.regions) {
        EXPECT_LT(r.begin, r.end);
        EXPECT_GE(r.begin, prev_end);
        prev_end = r.end;
    }
    // Every mapped page falls in exactly one region.
    for (const Chunk &c : m.chunks()) {
        for (Vpn v = c.vpn; v < c.vpnEnd(); v += 97) {
            int owners = 0;
            for (const AnchorRegion &r : p.regions)
                owners += r.contains(v);
            ASSERT_EQ(owners, 1) << "vpn offset " << v - base;
        }
    }
}

TEST(RegionPartitioner, RespectsMaxRegions)
{
    const MemoryMap m = twoRegimeMap();
    RegionPartitionConfig cfg;
    cfg.max_regions = 2;
    const RegionPartition p = partitionAnchorRegions(m, cfg);
    EXPECT_LE(p.regions.size(), 2u);
}

TEST(RegionPartitioner, SingleRegimeYieldsFewRegions)
{
    MemoryMap m;
    Vpn vpn = base;
    Ppn ppn{1000};
    for (int i = 0; i < 1000; ++i) {
        m.add(vpn, ppn, PageCount{16});
        vpn += 16;
        ppn += 17;
    }
    m.finalize();
    const RegionPartition p = partitionAnchorRegions(m);
    EXPECT_EQ(p.regions.size(), 1u);
    // The single region's distance comes from the coverage-aware model
    // over the same histogram.
    EXPECT_EQ(p.regions[0].distance.pages(),
              selectAnchorDistance(m.contiguityHistogram(),
                                   DistanceCostModel::CoverageAware)
                  .distance);
}

TEST(RegionPartitioner, EmptyMapHasNoRegions)
{
    MemoryMap m;
    m.finalize();
    const RegionPartition p = partitionAnchorRegions(m);
    EXPECT_TRUE(p.regions.empty());
}

TEST(RegionPartitioner, DefaultDistanceMatchesGlobalSelection)
{
    const MemoryMap m = twoRegimeMap();
    const RegionPartition p = partitionAnchorRegions(m);
    EXPECT_EQ(p.default_distance.pages(),
              selectAnchorDistance(m.contiguityHistogram()).distance);
}

TEST(RegionPartitioner, MinRegionPagesPreventsTinyRegions)
{
    // Alternating tiny regimes below min_region_pages must not shatter
    // into many regions.
    MemoryMap m;
    Vpn vpn = base;
    Ppn ppn{0x100000};
    for (int block = 0; block < 20; ++block) {
        if (block % 2 == 0) {
            for (int i = 0; i < 64; ++i) { // 256 pages of fragments
                m.add(vpn, ppn, PageCount{4});
                vpn += 4;
                ppn += 5;
            }
        } else {
            ppn += 1;
            m.add(vpn, ppn, PageCount{256}); // one 1MB run
            vpn += 256;
            ppn += 256;
        }
    }
    m.finalize();
    RegionPartitionConfig cfg;
    cfg.min_region_pages = 4096;
    const RegionPartition p = partitionAnchorRegions(m, cfg);
    EXPECT_LE(p.regions.size(), 3u);
}

TEST(RegionPartitioner, SegmentedScenarioPartitionsAsDesigned)
{
    ScenarioParams params;
    params.footprint_pages = 1; // unused by segmented builder
    params.seed = 5;
    const MemoryMap m = buildSegmentedScenario(
        params, {{16384, 1, 16}, {131072, 4096, 16384}});
    const RegionPartition p = partitionAnchorRegions(m);
    ASSERT_GE(p.regions.size(), 2u);
    EXPECT_LE(p.regions.front().distance.pages(), 8u);
    EXPECT_GE(p.regions.back().distance.pages(), 64u);
    EXPECT_GT(p.regions.back().distance, p.regions.front().distance);
}

} // namespace
} // namespace atlb
