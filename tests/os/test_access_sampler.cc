/**
 * @file
 * Tests for access sampling and capacity-aware distance selection.
 */

#include <gtest/gtest.h>

#include "os/access_sampler.hh"
#include "os/memory_map.hh"
#include "os/scenario.hh"

namespace atlb
{
namespace
{

constexpr Vpn base{0x7f0000000ULL};

MemoryMap
twoChunkMap()
{
    MemoryMap m;
    m.add(base, Ppn{0x1000}, PageCount{64});
    m.add(base + 1000, Ppn{0x9000}, PageCount{4096});
    m.finalize();
    return m;
}

TEST(AccessSampler, AttributesSamplesToChunks)
{
    const MemoryMap m = twoChunkMap();
    AccessSampler sampler(m);
    sampler.sample(base + 3);
    sampler.sample(base + 10);
    sampler.sample(base + 1000);
    sampler.sample(base + 2000);
    sampler.sample(base + 2000);
    EXPECT_EQ(sampler.totalSamples(), 5u);
    const auto counts = sampler.chunkAccesses();
    ASSERT_EQ(counts.size(), 2u);
    std::uint64_t small = 0, big = 0;
    for (const auto &c : counts) {
        if (c.pages == 64)
            small = c.samples;
        else
            big = c.samples;
    }
    EXPECT_EQ(small, 2u);
    EXPECT_EQ(big, 3u);
}

TEST(AccessSampler, IgnoresUnmappedVpns)
{
    const MemoryMap m = twoChunkMap();
    AccessSampler sampler(m);
    sampler.sample(base - 1);
    sampler.sample(base + 500); // in the VA gap
    EXPECT_EQ(sampler.totalSamples(), 0u);
    EXPECT_TRUE(sampler.chunkAccesses().empty());
}

TEST(AccessSampler, ResetClears)
{
    const MemoryMap m = twoChunkMap();
    AccessSampler sampler(m);
    sampler.sample(base);
    sampler.reset();
    EXPECT_EQ(sampler.totalSamples(), 0u);
}

TEST(CapacityAware, NoSamplesPredictsFullMiss)
{
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware({}, 1024);
    EXPECT_DOUBLE_EQ(sel.predicted_miss, 1.0);
}

TEST(CapacityAware, SmallHotSetPicksCoveringDistance)
{
    // 64 chunks of 64 pages, all hot: 4096 pages need 1024 entries at
    // d=4 but only 64 at d=64 — any d >= 64 covers with slack, and the
    // prefix penalty pushes the optimum to a moderate distance.
    std::vector<ChunkAccess> chunks(64, {64, 100});
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware(chunks, 1024);
    EXPECT_GE(sel.distance, 8u);
    EXPECT_LE(sel.distance, 64u);
    EXPECT_LT(sel.predicted_miss, 0.3);
}

TEST(CapacityAware, OversubscriptionPushesDistanceUp)
{
    // A hot set of 2048 chunks x 256 pages (512K pages) on a 1024-entry
    // TLB: small distances oversubscribe catastrophically; the model
    // must trade uncovered prefixes for residency.
    std::vector<ChunkAccess> tight(2048, {256, 10});
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware(tight, 1024);
    EXPECT_GE(sel.distance, 128u);

    // The same chunks on a huge TLB: capacity no longer binds and the
    // prefix penalty favours a smaller distance.
    const CapacitySelection roomy =
        selectAnchorDistanceCapacityAware(tight, 1 << 20);
    EXPECT_LT(roomy.distance, sel.distance);
}

TEST(CapacityAware, HugeChunksToleratePrefixes)
{
    // 2MB-capable chunks serve their prefixes from 2MB entries, so big
    // distances stay cheap and ties break upward.
    std::vector<ChunkAccess> big(32, {16384, 5});
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware(big, 1024);
    EXPECT_GE(sel.distance, 512u);
    EXPECT_LT(sel.predicted_miss, 0.05);
}

TEST(CapacityAware, ColdChunksDoNotDistort)
{
    // The hot mass sits in big runs; a sea of cold fragments (zero
    // samples) must not drag the distance down the way it does for the
    // unweighted Algorithm 1.
    std::vector<ChunkAccess> chunks;
    chunks.push_back({32768, 1000});
    for (int i = 0; i < 5000; ++i)
        chunks.push_back({4, 0});
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware(chunks, 1024);
    EXPECT_GE(sel.distance, 4096u);
}

TEST(CapacityAware, EndToEndBeatsSnapshotSelection)
{
    // Medium-contiguity mapping, accesses concentrated in a hot subset:
    // the capacity-aware pick must predict (and achieve) fewer misses
    // than the unweighted snapshot pick. Full end-to-end check lives in
    // bench_ext_weighted_selection; here we check the predicted curve
    // is sane: monotone pieces with a single broad basin.
    ScenarioParams p;
    p.footprint_pages = 100000;
    p.seed = 3;
    const MemoryMap m = buildScenario(ScenarioKind::MedContig, p);
    AccessSampler sampler(m);
    // Hot window: first 32K pages.
    for (Vpn v = p.va_base; v < p.va_base + 32768; v += 3)
        sampler.sample(v);
    const CapacitySelection sel =
        selectAnchorDistanceCapacityAware(sampler.chunkAccesses(), 1024);
    EXPECT_GE(sel.distance, 16u);
    EXPECT_LT(sel.predicted_miss, 0.7);
}

} // namespace
} // namespace atlb
