/**
 * @file
 * Tests for the mapping-scenario engine (paper Section 5.1 / Table 4).
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "os/scenario.hh"

namespace atlb
{
namespace
{

ScenarioParams
params(std::uint64_t pages, std::uint64_t seed = 1)
{
    ScenarioParams p;
    p.footprint_pages = pages;
    p.seed = seed;
    return p;
}

/** Every page of the footprint must be mapped exactly once. */
void
expectFullCoverage(const MemoryMap &m, const ScenarioParams &p)
{
    EXPECT_EQ(m.mappedPages(), p.footprint_pages);
    EXPECT_TRUE(m.mapped(p.va_base));
    EXPECT_TRUE(m.mapped(p.va_base + p.footprint_pages - 1));
    EXPECT_FALSE(m.mapped(p.va_base + p.footprint_pages));
    EXPECT_FALSE(m.mapped(p.va_base - 1));
    // Chunks must tile the VA range without gaps.
    Vpn expect = p.va_base;
    for (const Chunk &c : m.chunks()) {
        EXPECT_EQ(c.vpn, expect);
        expect = c.vpnEnd();
    }
    EXPECT_EQ(expect, p.va_base + p.footprint_pages);
}

TEST(ScenarioNames, RoundTrip)
{
    for (const ScenarioKind kind : allScenarios)
        EXPECT_EQ(scenarioFromName(scenarioName(kind)), kind);
}

class AllScenariosCoverage : public ::testing::TestWithParam<ScenarioKind>
{
};

TEST_P(AllScenariosCoverage, FootprintFullyMapped)
{
    ScenarioParams p = params(3000);
    p.demand_run_pages = 64;
    p.eager_run_pages = 64;
    const MemoryMap m = buildScenario(GetParam(), p);
    expectFullCoverage(m, p);
}

TEST_P(AllScenariosCoverage, DeterministicPerSeed)
{
    ScenarioParams p = params(2000, 77);
    p.demand_run_pages = 32;
    p.eager_run_pages = 32;
    const MemoryMap a = buildScenario(GetParam(), p);
    const MemoryMap b = buildScenario(GetParam(), p);
    ASSERT_EQ(a.chunks().size(), b.chunks().size());
    for (std::size_t i = 0; i < a.chunks().size(); ++i) {
        EXPECT_EQ(a.chunks()[i].vpn, b.chunks()[i].vpn);
        EXPECT_EQ(a.chunks()[i].ppn, b.chunks()[i].ppn);
        EXPECT_EQ(a.chunks()[i].pages, b.chunks()[i].pages);
    }
}

TEST_P(AllScenariosCoverage, DifferentSeedsDiffer)
{
    // max contiguity is a single deterministic chunk; skip it.
    if (GetParam() == ScenarioKind::MaxContig)
        GTEST_SKIP();
    // Large enough that even high-contiguity runs hold several chunks.
    ScenarioParams pa = params(150000, 1);
    ScenarioParams pb = params(150000, 2);
    pa.demand_run_pages = pb.demand_run_pages = 16;
    pa.eager_run_pages = pb.eager_run_pages = 16;
    const MemoryMap a = buildScenario(GetParam(), pa);
    const MemoryMap b = buildScenario(GetParam(), pb);
    bool differs = a.chunks().size() != b.chunks().size();
    if (!differs) {
        for (std::size_t i = 0; i < a.chunks().size(); ++i)
            differs |= a.chunks()[i].ppn != b.chunks()[i].ppn ||
                       a.chunks()[i].pages != b.chunks()[i].pages;
    }
    EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllScenariosCoverage,
                         ::testing::ValuesIn(allScenarios));

TEST(Scenario, LowContigChunkSizesInRange)
{
    const MemoryMap m =
        buildScenario(ScenarioKind::LowContig, params(20000));
    for (const Chunk &c : m.chunks()) {
        EXPECT_GE(c.pages, 1u);
        EXPECT_LE(c.pages, 16u);
    }
    EXPECT_GT(m.chunks().size(), 20000u / 16);
}

TEST(Scenario, MediumContigChunkSizesInRange)
{
    const MemoryMap m =
        buildScenario(ScenarioKind::MedContig, params(100000));
    std::uint64_t over_16 = 0;
    for (const Chunk &c : m.chunks()) {
        EXPECT_GE(c.pages, 1u);
        EXPECT_LE(c.pages, 512u);
        over_16 += c.pages > 16;
    }
    EXPECT_GT(over_16, 0u);
}

TEST(Scenario, HighContigChunkSizesInRange)
{
    const MemoryMap m =
        buildScenario(ScenarioKind::HighContig, params(300000));
    for (const Chunk &c : m.chunks()) {
        // Final chunk may be clipped by the footprint end.
        if (c.vpnEnd() != m.chunks().back().vpnEnd()) {
            EXPECT_GE(c.pages, 512u);
        }
        EXPECT_LE(c.pages, 65536u);
    }
}

TEST(Scenario, MaxContigIsSingleChunk)
{
    ScenarioParams p = params(50000);
    const MemoryMap m = buildScenario(ScenarioKind::MaxContig, p);
    ASSERT_EQ(m.chunks().size(), 1u);
    EXPECT_EQ(m.chunks()[0].pages, 50000u);
    EXPECT_TRUE(m.hugeEligible(p.va_base));
}

TEST(Scenario, HighContigMostlyHugeEligible)
{
    ScenarioParams p = params(300000);
    const MemoryMap m = buildScenario(ScenarioKind::HighContig, p);
    std::uint64_t eligible = 0, checked = 0;
    for (Vpn v = p.va_base; v < p.va_base + p.footprint_pages;
         v += hugePages) {
        ++checked;
        eligible += m.hugeEligible(v);
    }
    // Chunks of >= 512 pages are placed 2MB-congruent, so the vast
    // majority of blocks must be THP-promotable.
    EXPECT_GT(eligible * 10, checked * 9);
}

TEST(Scenario, LowContigNeverHugeEligible)
{
    ScenarioParams p = params(20000);
    const MemoryMap m = buildScenario(ScenarioKind::LowContig, p);
    for (Vpn v = p.va_base; v < p.va_base + p.footprint_pages;
         v += hugePages)
        EXPECT_FALSE(m.hugeEligible(v));
}

TEST(Scenario, EagerAtLeastAsContiguousAsDemand)
{
    ScenarioParams p = params(50000, 3);
    p.demand_run_pages = 256;
    p.eager_run_pages = 256;
    const MemoryMap d = buildScenario(ScenarioKind::Demand, p);
    const MemoryMap e = buildScenario(ScenarioKind::Eager, p);
    const auto mean = [](const MemoryMap &m) {
        return static_cast<double>(m.mappedPages()) /
               static_cast<double>(m.chunks().size());
    };
    EXPECT_GE(mean(e) * 2, mean(d));
}

TEST(Scenario, PristineDemandIsNearlyOneRun)
{
    ScenarioParams p = params(10000, 4);
    p.demand_run_pages = 0; // pristine pool
    const MemoryMap m = buildScenario(ScenarioKind::Demand, p);
    // Sequential faults on an empty buddy give one giant merged run.
    EXPECT_LE(m.chunks().size(), 3u);
}

TEST(Scenario, FragmentedDemandTracksRunTarget)
{
    ScenarioParams p = params(100000, 5);
    p.demand_run_pages = 64;
    const MemoryMap m = buildScenario(ScenarioKind::Demand, p);
    const double mean = static_cast<double>(m.mappedPages()) /
                        static_cast<double>(m.chunks().size());
    EXPECT_GT(mean, 16.0);
    EXPECT_LT(mean, 256.0);
}

TEST(Scenario, DemandChurnBreaksAdjacency)
{
    ScenarioParams quiet = params(20000, 6);
    quiet.demand_run_pages = 0;
    ScenarioParams churny = quiet;
    churny.demand_churn = 0.2;
    const MemoryMap a = buildScenario(ScenarioKind::Demand, quiet);
    const MemoryMap b = buildScenario(ScenarioKind::Demand, churny);
    EXPECT_GT(b.chunks().size(), a.chunks().size());
}

TEST(Scenario, PressureSweepIncreasesFragmentation)
{
    ScenarioParams p = params(50000, 7);
    const MemoryMap light = buildDemandWithPressure(p, 4096);
    const MemoryMap heavy = buildDemandWithPressure(p, 8);
    EXPECT_GT(heavy.chunks().size(), light.chunks().size() * 4);
}

TEST(Scenario, SyntheticTranslationsAreSane)
{
    ScenarioParams p = params(10000, 8);
    const MemoryMap m = buildScenario(ScenarioKind::MedContig, p);
    // Distinct VPNs map to distinct PPNs (no aliasing).
    for (const Chunk &a : m.chunks()) {
        for (const Chunk &b : m.chunks()) {
            if (&a == &b)
                continue;
            const bool disjoint = a.ppn + a.pages <= b.ppn ||
                                  b.ppn + b.pages <= a.ppn;
            ASSERT_TRUE(disjoint)
                << "chunks alias in physical memory";
        }
    }
}

} // namespace
} // namespace atlb
