/**
 * @file
 * Tests for the radix page table and anchor-contiguity encoding.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

constexpr Vpn base{0x7f0000000ULL}; // 2MB-aligned test VPN base

/** Shorthand for the test's anchor distances. */
AnchorDist
dist(std::uint64_t pages)
{
    return AnchorDist::fromPages(pages);
}

TEST(Pte, FieldRoundTrip)
{
    const std::uint64_t e = pte::make(Ppn{0x12345}, false);
    EXPECT_TRUE(pte::present(e));
    EXPECT_FALSE(pte::huge(e));
    EXPECT_EQ(pte::pfn(e), Ppn{0x12345});
}

TEST(Pte, HugeFieldRoundTrip)
{
    const std::uint64_t e = pte::make(Ppn{0x2000}, true);
    EXPECT_TRUE(pte::present(e));
    EXPECT_TRUE(pte::huge(e));
    EXPECT_EQ(pte::hugePfn(e), Ppn{0x2000});
}

TEST(Pte, ContigByteDoesNotDisturbPfn)
{
    std::uint64_t e = pte::make(Ppn{0xabcdef}, false);
    e = pte::withContigByte(e, 0x5a);
    EXPECT_EQ(pte::pfn(e), Ppn{0xabcdef});
    EXPECT_EQ(pte::contigByte(e), 0x5a);
    e = pte::withContigByte(e, 0);
    EXPECT_EQ(pte::contigByte(e), 0);
    EXPECT_EQ(pte::pfn(e), Ppn{0xabcdef});
}

TEST(Pte, HugeContigByteCoexistsWithHugePfn)
{
    std::uint64_t e = pte::make(Ppn{0x2000}, true); // 2MB-aligned frame
    e = pte::withHugeContigByte(e, 0xff);
    e = pte::withContigByte(e, 0xee);
    EXPECT_EQ(pte::hugePfn(e), Ppn{0x2000});
    EXPECT_EQ(pte::hugeContigByte(e), 0xff);
    EXPECT_EQ(pte::contigByte(e), 0xee);
    EXPECT_TRUE(pte::huge(e));
}

TEST(PageTable, WalkUnmappedMisses)
{
    PageTable t;
    EXPECT_FALSE(t.walk(base).present);
    EXPECT_FALSE(t.walk(Vpn{0}).present);
}

TEST(PageTable, Map4KWalk)
{
    PageTable t;
    t.map4K(base + 5, Ppn{777});
    const WalkResult w = t.walk(base + 5);
    EXPECT_TRUE(w.present);
    EXPECT_EQ(w.ppn, Ppn{777});
    EXPECT_EQ(w.size, PageSize::Base4K);
    EXPECT_FALSE(t.walk(base + 4).present);
    EXPECT_FALSE(t.walk(base + 6).present);
    EXPECT_EQ(t.mapped4K(), 1u);
}

TEST(PageTable, Map2MWalkCoversBlock)
{
    PageTable t;
    t.map2M(base, Ppn{512 * 9});
    for (const std::uint64_t off : {0ULL, 1ULL, 255ULL, 511ULL}) {
        const WalkResult w = t.walk(base + off);
        ASSERT_TRUE(w.present);
        EXPECT_EQ(w.ppn, Ppn{512 * 9} + off);
        EXPECT_EQ(w.size, PageSize::Huge2M);
    }
    EXPECT_FALSE(t.walk(base + 512).present);
    EXPECT_EQ(t.mapped2M(), 1u);
}

TEST(PageTable, PrefetchWalkIsSemanticsFree)
{
    // prefetchWalk only issues cache hints; it must be callable on any
    // VPN — 4K-mapped, 2M-mapped, unmapped, partially built subtrees —
    // and leave every later walk() result unchanged.
    PageTable t;
    t.map4K(base + 5, Ppn{777});
    t.map2M(base + 512, Ppn{512 * 9});
    for (const Vpn v : {base + 5, base + 512, base + 600, base + 4,
                        Vpn{0}, Vpn{1ULL << 40}}) {
        t.prefetchWalk(v);
        t.prefetchWalk(v); // idempotent
    }
    EXPECT_EQ(t.walk(base + 5).ppn, Ppn{777});
    EXPECT_EQ(t.walk(base + 513).ppn, Ppn{512 * 9 + 1});
    EXPECT_FALSE(t.walk(base + 4).present);
    EXPECT_FALSE(t.walk(Vpn{0}).present);
    EXPECT_EQ(t.mapped4K(), 1u);
    EXPECT_EQ(t.mapped2M(), 1u);
}

TEST(PageTable, MixedSizesCoexist)
{
    PageTable t;
    t.map2M(base, Ppn{512 * 4});
    t.map4K(base + 512, Ppn{99});
    EXPECT_EQ(t.walk(base + 100).size, PageSize::Huge2M);
    EXPECT_EQ(t.walk(base + 512).size, PageSize::Base4K);
    EXPECT_EQ(t.walk(base + 512).ppn, Ppn{99});
}

TEST(PageTable, MoveSemantics)
{
    PageTable t;
    t.map4K(base, Ppn{1});
    PageTable u = std::move(t);
    EXPECT_TRUE(u.walk(base).present);
}

class AnchorEncoding
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>>
{
};

TEST_P(AnchorEncoding, RoundTripAt4KEntries)
{
    const auto [distance, contig] = GetParam();
    PageTable t;
    // Map a run long enough to hold the anchor and its neighbour.
    for (Vpn v = base; v < base + 4; ++v)
        t.map4K(v, Ppn{5000 + (v - base)});
    t.setAnchorContiguity(base, contig, dist(distance));
    EXPECT_EQ(t.anchorContiguity(base, dist(distance)), contig);
    // PFNs must be undisturbed by the encoding.
    EXPECT_EQ(t.walk(base).ppn, Ppn{5000});
    EXPECT_EQ(t.walk(base + 1).ppn, Ppn{5001});
}

INSTANTIATE_TEST_SUITE_P(
    DistancesAndContigs, AnchorEncoding,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{2, 1},
                      std::pair<std::uint64_t, std::uint64_t>{2, 2},
                      std::pair<std::uint64_t, std::uint64_t>{8, 8},
                      std::pair<std::uint64_t, std::uint64_t>{64, 33},
                      std::pair<std::uint64_t, std::uint64_t>{256, 256},
                      std::pair<std::uint64_t, std::uint64_t>{512, 257},
                      std::pair<std::uint64_t, std::uint64_t>{512, 512},
                      std::pair<std::uint64_t, std::uint64_t>{4096, 4096},
                      std::pair<std::uint64_t, std::uint64_t>{65536,
                                                              65536}));

TEST(PageTableAnchor, HighByteLivesInNeighbourEntry)
{
    PageTable t;
    for (Vpn v = base; v < base + 2; ++v)
        t.map4K(v, Ppn{100 + (v - base)});
    // Contiguity 300 with distance 512 needs the neighbour's byte.
    t.setAnchorContiguity(base, 300, dist(512));
    EXPECT_EQ(t.anchorContiguity(base, dist(512)), 300u);
    // The neighbour entry still translates normally.
    EXPECT_EQ(t.walk(base + 1).ppn, Ppn{101});
}

TEST(PageTableAnchor, ClearRemovesAnchor)
{
    PageTable t;
    t.map4K(base, Ppn{1});
    t.map4K(base + 1, Ppn{2});
    t.setAnchorContiguity(base, 400, dist(512));
    t.setAnchorContiguity(base, 0, dist(512));
    // Cleared anchor reads back as the self-covering minimum.
    EXPECT_EQ(t.anchorContiguity(base, dist(512)), 1u);
}

TEST(PageTableAnchor, HugeAnchorStoresFullContiguity)
{
    PageTable t;
    t.map2M(base, Ppn{512 * 20});
    t.setAnchorContiguity(base, 40000, dist(65536));
    EXPECT_EQ(t.anchorContiguity(base, dist(65536)), 40000u);
    // Frame must be intact after packing 16 bits into the entry.
    EXPECT_EQ(t.walk(base).ppn, Ppn{512 * 20});
    EXPECT_EQ(t.walk(base + 511).ppn, Ppn{512 * 20 + 511});
}

TEST(PageTableAnchor, InsideHugePageHasNoAnchorSlot)
{
    PageTable t;
    t.map2M(base, Ppn{512 * 20});
    // distance 8 anchor at base+8 falls inside the huge page.
    EXPECT_EQ(t.anchorContiguity(base + 8, dist(8)), 0u);
}

TEST(PageTableAnchor, UnmappedAnchorReadsZero)
{
    PageTable t;
    EXPECT_EQ(t.anchorContiguity(base, dist(64)), 0u);
}

TEST(PageTableAnchor, SweepSetsAllAnchorsOfChunk)
{
    MemoryMap m;
    m.add(base, Ppn{9000}, PageCount{100}); // unaligned-by-8 length
    m.finalize();
    PageTable t = buildPageTable(m, false);
    // Anchors at base+0, +8, ..., +96: thirteen aligned positions.
    const std::uint64_t touched = t.sweepAnchors(m, dist(8));
    EXPECT_EQ(touched, 13u);
    // Interior anchors carry min(run, distance).
    EXPECT_EQ(t.anchorContiguity(base, dist(8)), 8u);
    EXPECT_EQ(t.anchorContiguity(base + 48, dist(8)), 8u);
    // Final anchor covers only the tail.
    EXPECT_EQ(t.anchorContiguity(base + 96, dist(8)), 4u);
}

TEST(PageTableAnchor, SweepCapsAtDistance)
{
    MemoryMap m;
    m.add(base, Ppn{9000}, PageCount{1000});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    t.sweepAnchors(m, dist(64));
    EXPECT_EQ(t.anchorContiguity(base, dist(64)), 64u);
}

TEST(PageTableAnchor, ResweepClearsStaleAnchors)
{
    MemoryMap m;
    m.add(base, Ppn{9000}, PageCount{64});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    t.sweepAnchors(m, dist(8));
    EXPECT_EQ(t.anchorContiguity(base + 8, dist(8)), 8u);
    t.sweepAnchors(m, dist(32));
    EXPECT_EQ(t.anchorContiguity(base, dist(32)), 32u);
    // Old distance-8 anchor at +8 must be gone (reads as self-cover).
    EXPECT_EQ(t.anchorContiguity(base + 8, dist(8)), 1u);
}

TEST(PageTableAnchor, SweepCountGrowsWithSmallerDistance)
{
    MemoryMap m;
    m.add(base, Ppn{9000}, PageCount{1 << 15});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    const std::uint64_t big = t.sweepAnchors(m, dist(512));
    PageTable t2 = buildPageTable(m, false);
    const std::uint64_t small = t2.sweepAnchors(m, dist(8));
    EXPECT_GT(small, big * 32);
}

class PageTableErrors : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(PageTableErrors, DoubleMapPanics)
{
    PageTable t;
    t.map4K(base, Ppn{1});
    EXPECT_THROW(t.map4K(base, Ppn{2}), std::logic_error);
}

TEST_F(PageTableErrors, MisalignedHugeMapPanics)
{
    PageTable t;
    EXPECT_THROW(t.map2M(base + 1, Ppn{512}), std::logic_error);
}

TEST_F(PageTableErrors, HugeOverExisting4KPanics)
{
    PageTable t;
    t.map4K(base + 3, Ppn{1});
    EXPECT_THROW(t.map2M(base, Ppn{512}), std::logic_error);
}

TEST_F(PageTableErrors, AnchorOnUnalignedVpnPanics)
{
    PageTable t;
    t.map4K(base + 1, Ppn{1});
    EXPECT_THROW(t.setAnchorContiguity(base + 1, 1, dist(8)),
                 std::logic_error);
}

TEST_F(PageTableErrors, ContiguityBeyondDistancePanics)
{
    PageTable t;
    t.map4K(base, Ppn{1});
    EXPECT_THROW(t.setAnchorContiguity(base, 9, dist(8)),
                 std::logic_error);
}

TEST_F(PageTableErrors, BadDistancePanics)
{
    PageTable t;
    t.map4K(base, Ppn{1});
    EXPECT_THROW(t.setAnchorContiguity(base, 1, dist(3)),
                 std::logic_error);
    EXPECT_THROW(t.setAnchorContiguity(base, 1, dist(1)),
                 std::logic_error);
}

} // namespace
} // namespace atlb
