// MUST NOT COMPILE: positions never add to each other; only
// position +/- count and position - position (= PageCount) exist.
#include "common/types.hh"

int
main()
{
    auto sum = atlb::Vpn{1} + atlb::Vpn{2};
    return static_cast<int>(sum.raw());
}
