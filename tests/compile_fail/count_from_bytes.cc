// MUST NOT COMPILE: PageCount construction from a raw integer is
// explicit, so a byte size cannot silently become a page count —
// convert through pagesForBytes() instead.
#include "common/types.hh"

static std::uint64_t
footprint(atlb::PageCount pages)
{
    return atlb::bytesOf(pages);
}

int
main()
{
    std::uint64_t bytes = 1ULL << 30;
    return static_cast<int>(footprint(bytes));
}
