// MUST NOT COMPILE: a byte address is not a page number; the only
// crossing is the named vpnOf()/vaOf() pair.
#include "common/types.hh"

int
main()
{
    atlb::Vpn vpn = atlb::VirtAddr{0x7f00'0000'0000ULL};
    return static_cast<int>(vpn.raw());
}
