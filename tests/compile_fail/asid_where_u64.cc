// MUST NOT COMPILE: an address-space identifier is a name, not a raw
// integer — it must be constructed explicitly and never converts back.
#include "common/types.hh"

int
main()
{
    atlb::Asid asid = 7;
    return static_cast<int>(asid.raw());
}
