// Positive control for the compile-fail harness: the sanctioned
// spellings of the same operations MUST compile. If this file breaks,
// the harness is testing the toolchain, not the types.
#include "common/types.hh"

int
main()
{
    using namespace atlb;
    const VirtAddr va{0x7f00'0000'1234ULL};
    const Vpn vpn = vpnOf(va);
    const Ppn frame{0x5000};
    const Vpn host = hostVpnOf(frame);
    const PageCount span = (vpn + 8) - vpn;
    const PageCount from_bytes = pagesForBytes(1ULL << 30);
    const AnchorDist dist = AnchorDist::fromPages(64);
    const Asid asid{7}; // explicit construction is the sanctioned form
    return static_cast<int>(vaOf(host).raw() + span + from_bytes +
                            dist.keyOf(dist.anchorOf(vpn)).raw() +
                            (asid == Asid{7} ? asid.raw() : 0));
}
