// MUST NOT COMPILE: a virtual page number is not a physical frame.
#include "common/types.hh"

int
main()
{
    atlb::Ppn frame = atlb::Vpn{0x1000};
    return static_cast<int>(frame.raw());
}
