/**
 * @file
 * Tests for the HW-coalescing cluster TLB pipeline.
 */

#include <gtest/gtest.h>

#include "mmu/cluster_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

class ClusterMmuTest : public ::testing::Test
{
  protected:
    ClusterMmuTest()
        : map_(test::makeVariedMap()), plain_(buildPageTable(map_, false)),
          thp_(buildPageTable(map_, true))
    {
    }

    MemoryMap map_;
    PageTable plain_;
    PageTable thp_;
    MmuConfig cfg_;
};

TEST_F(ClusterMmuTest, WalkFillsClusterForContiguousGroup)
{
    ClusterMmu mmu(cfg_, plain_, false);
    // Chunk A covers pages +0..+7, one aligned group, fully contiguous.
    EXPECT_EQ(mmu.translate(va(0)).level, HitLevel::PageWalk);
    // Remaining 7 pages of the group: L1 misses but cluster hits.
    for (std::uint64_t i = 1; i < 8; ++i) {
        const TranslationResult r = mmu.translate(va(i));
        ASSERT_EQ(r.level, HitLevel::Coalesced) << "page " << i;
        ASSERT_EQ(r.ppn, map_.translate(baseVpn + i));
        ASSERT_EQ(r.cycles, cfg_.coalesced_hit_cycles);
    }
    EXPECT_EQ(mmu.stats().page_walks, 1u);
}

TEST_F(ClusterMmuTest, SingletonRunFillsRegularEntry)
{
    // Chunk D is 3 pages at +8192 but the group [+8192, +8200) holds
    // only those 3; a group with a 1-page neighbourhood still clusters
    // if >= 2 coalesce. Build a truly-isolated page instead.
    MemoryMap m;
    m.add(baseVpn, Ppn{0x5000}, PageCount{1});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    ClusterMmu mmu(cfg_, t, false);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.clusterTlb().stats().insertions, 0u);
    EXPECT_EQ(mmu.regularTlb().stats().insertions, 1u);
}

TEST_F(ClusterMmuTest, PartialGroupCoalesces)
{
    ClusterMmu mmu(cfg_, plain_, false);
    // Chunk D: 3 pages at +8192 (group-aligned); bitmap = 0b111.
    mmu.translate(va(8192));
    EXPECT_EQ(mmu.translate(va(8193)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.translate(va(8194)).level, HitLevel::Coalesced);
    // Page +8195 is unmapped; nothing to test there. The cluster entry
    // must not claim it: verified via the bitmap (aux).
    const TlbEntry *e =
        mmu.clusterTlb().probe(EntryKind::Cluster,
                               TlbKey{(baseVpn + 8192).raw() / 8});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->aux, 0b111u);
}

TEST_F(ClusterMmuTest, MisalignedRunSplitsAcrossGroups)
{
    // 8-page run starting at +4096 with PA ending in ...7: VA group
    // alignment doesn't match PA group alignment, but cluster coalescing
    // only needs VA-group-relative contiguity, which holds.
    ClusterMmu mmu(cfg_, plain_, false);
    mmu.translate(va(4096));
    const TranslationResult r = mmu.translate(va(4097));
    EXPECT_EQ(r.level, HitLevel::Coalesced);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 4097));
}

TEST_F(ClusterMmuTest, ClusterAndRegularPartitionsAreIndependent)
{
    ClusterMmu mmu(cfg_, plain_, false);
    EXPECT_EQ(mmu.regularTlb().numWays(), cfg_.cluster_regular_ways);
    EXPECT_EQ(mmu.clusterTlb().numWays(), cfg_.cluster_ways);
    EXPECT_EQ(mmu.regularTlb().numSets() * mmu.regularTlb().numWays(),
              cfg_.cluster_regular_entries);
    EXPECT_EQ(mmu.clusterTlb().numSets() * mmu.clusterTlb().numWays(),
              cfg_.cluster_entries);
}

TEST_F(ClusterMmuTest, Plain4KOnlyIgnoresHugePages)
{
    // Plain cluster on an all-4K table: big chunk still clusters.
    ClusterMmu mmu(cfg_, plain_, false);
    mmu.translate(va(512));
    EXPECT_EQ(mmu.translate(va(513)).level, HitLevel::Coalesced);
}

TEST_F(ClusterMmuTest, Cluster2MBCaches2MEntries)
{
    ClusterMmu mmu(cfg_, thp_, true);
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.size, PageSize::Huge2M);
    // A far-away page of the same huge page: L1 2M already covers it;
    // evict L1 by touching other 2M regions is overkill — instead check
    // the regular TLB got a 2M entry.
    const TlbEntry *e = mmu.regularTlb().probe(
        EntryKind::Page2M, TlbKey{(baseVpn + 512).raw() >> 9});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppn, map_.translate(baseVpn + 512));
}

TEST_F(ClusterMmuTest, TranslationsAlwaysCorrect)
{
    ClusterMmu mmu(cfg_, plain_, false);
    for (int pass = 0; pass < 2; ++pass) {
        for (const Chunk &c : map_.chunks()) {
            for (std::uint64_t i = 0; i < c.pages; i += 3) {
                const Vpn vpn = c.vpn + i;
                ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                          map_.translate(vpn));
            }
        }
    }
}

TEST_F(ClusterMmuTest, FlushClearsBothPartitions)
{
    ClusterMmu mmu(cfg_, plain_, false);
    mmu.translate(va(0));
    mmu.translate(va(1));
    mmu.flushAll();
    EXPECT_EQ(mmu.regularTlb().validCount(), 0u);
    EXPECT_EQ(mmu.clusterTlb().validCount(), 0u);
}

TEST_F(ClusterMmuTest, NamesFollowVariant)
{
    ClusterMmu plain_mmu(cfg_, plain_, false);
    ClusterMmu thp_mmu(cfg_, thp_, true);
    EXPECT_EQ(plain_mmu.name(), "cluster");
    EXPECT_EQ(thp_mmu.name(), "cluster-2mb");
}

} // namespace
} // namespace atlb
