/**
 * @file
 * Targeted-shootdown tests: after the OS migrates a page, a
 * page-granular invalidation must leave no stale translation behind in
 * any scheme — including stale *coalesced* entries that merely cover
 * the page (the subtle case the paper's Section 3.3 warns about for
 * anchor entries).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

/** A 16-page contiguous chunk (one run, simple to reason about). */
MemoryMap
runMap()
{
    MemoryMap m;
    m.add(baseVpn, Ppn{0x9000}, PageCount{16});
    m.finalize();
    return m;
}

constexpr Ppn migrated{0x4444};

TEST(Shootdown, BaselineL1AndL2)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t);
    mmu.translate(va(5));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::L1);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    // Untouched neighbours keep their entries.
    mmu.translate(va(6));
}

TEST(Shootdown, AnchorEntryCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, t, AnchorDist::fromPages(8));
    // Cache the anchor for block [0,8) and hit through it.
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    // OS migrates page 5: run is broken at 5. Update the PTE and the
    // anchor's contiguity, then shoot the page down.
    t.remap4K(baseVpn + 5, migrated);
    t.setAnchorContiguity(baseVpn, 5, AnchorDist::fromPages(8));
    mmu.invalidatePage(baseVpn + 5);

    // Without the anchor invalidation, the stale cached anchor (contig
    // 8) would translate page 5 to the *old* frame. It must re-walk.
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    // And the refreshed anchor covers only the first 5 pages now.
    mmu.flushAll();
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(3)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.translate(va(6)).level, HitLevel::PageWalk);
}

TEST(Shootdown, ClusterEntryCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    ClusterMmu mmu(cfg, t, false);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST(Shootdown, RmmRangeCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, true);
    MmuConfig cfg;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, t, m);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
}

TEST(Shootdown, ColtFaRunCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    ColtMmu mmu(cfg, t);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(9)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 9, migrated);
    mmu.invalidatePage(baseVpn + 9);
    const TranslationResult r = mmu.translate(va(9));
    EXPECT_EQ(r.ppn, migrated);
}

TEST(Shootdown, UnrelatedPagesKeepTheirEntries)
{
    const MemoryMap m = runMap();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, t, AnchorDist::fromPages(8));
    mmu.translate(va(0));  // anchor for block [0,8)
    mmu.translate(va(8));  // anchor for block [8,16)
    const std::uint64_t walks = mmu.stats().page_walks;

    t.remap4K(baseVpn + 2, migrated);
    t.setAnchorContiguity(baseVpn, 2, AnchorDist::fromPages(8));
    mmu.invalidatePage(baseVpn + 2);

    // Block [8,16)'s anchor must have survived: no new walk.
    EXPECT_EQ(mmu.translate(va(12)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.stats().page_walks, walks);
}

TEST(Shootdown, UnmapThenAccessIsFatal)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t);
    t.unmap4K(baseVpn + 7);
    mmu.invalidatePage(baseVpn + 7);
    detail::setThrowOnError(true);
    EXPECT_THROW(mmu.translate(va(7)), std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace atlb
