/**
 * @file
 * Targeted-shootdown tests: after the OS migrates a page, a
 * page-granular invalidation must leave no stale translation behind in
 * any scheme — including stale *coalesced* entries that merely cover
 * the page (the subtle case the paper's Section 3.3 warns about for
 * anchor entries).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <stdexcept>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "mmu_test_util.hh"
#include "os/region_partitioner.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

/** A 16-page contiguous chunk (one run, simple to reason about). */
MemoryMap
runMap()
{
    MemoryMap m;
    m.add(baseVpn, Ppn{0x9000}, PageCount{16});
    m.finalize();
    return m;
}

constexpr Ppn migrated{0x4444};

TEST(Shootdown, BaselineL1AndL2)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t);
    mmu.translate(va(5));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::L1);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    // Untouched neighbours keep their entries.
    mmu.translate(va(6));
}

TEST(Shootdown, AnchorEntryCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, t, AnchorDist::fromPages(8));
    // Cache the anchor for block [0,8) and hit through it.
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    // OS migrates page 5: run is broken at 5. Update the PTE and the
    // anchor's contiguity, then shoot the page down.
    t.remap4K(baseVpn + 5, migrated);
    t.setAnchorContiguity(baseVpn, 5, AnchorDist::fromPages(8));
    mmu.invalidatePage(baseVpn + 5);

    // Without the anchor invalidation, the stale cached anchor (contig
    // 8) would translate page 5 to the *old* frame. It must re-walk.
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    // And the refreshed anchor covers only the first 5 pages now.
    mmu.flushAll();
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(3)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.translate(va(6)).level, HitLevel::PageWalk);
}

TEST(Shootdown, ClusterEntryCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    ClusterMmu mmu(cfg, t, false);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST(Shootdown, RmmRangeCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, true);
    MmuConfig cfg;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, t, m);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5);
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.ppn, migrated);
}

TEST(Shootdown, ColtFaRunCoveringThePageDies)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    ColtMmu mmu(cfg, t);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(9)).level, HitLevel::Coalesced);

    t.remap4K(baseVpn + 9, migrated);
    mmu.invalidatePage(baseVpn + 9);
    const TranslationResult r = mmu.translate(va(9));
    EXPECT_EQ(r.ppn, migrated);
}

TEST(Shootdown, UnrelatedPagesKeepTheirEntries)
{
    const MemoryMap m = runMap();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, t, AnchorDist::fromPages(8));
    mmu.translate(va(0));  // anchor for block [0,8)
    mmu.translate(va(8));  // anchor for block [8,16)
    const std::uint64_t walks = mmu.stats().page_walks;

    t.remap4K(baseVpn + 2, migrated);
    t.setAnchorContiguity(baseVpn, 2, AnchorDist::fromPages(8));
    mmu.invalidatePage(baseVpn + 2);

    // Block [8,16)'s anchor must have survived: no new walk.
    EXPECT_EQ(mmu.translate(va(12)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.stats().page_walks, walks);
}

// ---------------------------------------------------------------------
// Shootdown storms: four ASID-tagged address spaces share one MMU under
// SwitchPolicy::Asid while their pages keep migrating. Every remap is
// followed by an ASID-qualified invalidatePage against the (descheduled)
// owner; no stale translation may survive it. Checked builds
// additionally oracle-verify every translation against the loaded page
// table inside translate(), so a stale hit anywhere in the storm is
// fatal even where the test only asserts the remapped page.
// ---------------------------------------------------------------------

/** Four 16-page address spaces at distinct frame bases. */
std::array<MemoryMap, 4>
stormMaps()
{
    std::array<MemoryMap, 4> maps;
    for (std::size_t i = 0; i < maps.size(); ++i) {
        maps[i].add(baseVpn, Ppn{0x9000 + 0x1000 * i}, PageCount{16});
        maps[i].finalize();
    }
    return maps;
}

/**
 * Per-space anchor-contiguity ledger: a block's contiguity only ever
 * shrinks, to the smallest migrated offset seen so far. Writing the
 * latest offset unconditionally would re-cover earlier breaks and make
 * the anchor sweep resurrect pre-migration frames.
 */
struct ContigLedger {
    std::array<std::map<std::uint64_t, std::uint64_t>, 4> broken;

    std::uint64_t breakAt(int space, Vpn anchor, std::uint64_t offset)
    {
        auto [it, inserted] =
            broken[static_cast<std::size_t>(space)].try_emplace(
                anchor.raw(), offset);
        if (!inserted)
            it->second = std::min(it->second, offset);
        return it->second;
    }
};

/**
 * Drive @p mmu through 12 remap epochs over four ASID-tagged spaces.
 * @p ctx yields space i's ProcessContext (ASID i + 1); @p remapPage
 * applies one migration to space @p target's page table.
 */
void
runStorm(Mmu &mmu, const std::function<ProcessContext(int)> &ctx,
         const std::function<void(int target, unsigned page, Ppn frame)>
             &remapPage)
{
    mmu.setSwitchPolicy(SwitchPolicy::Asid);
    for (int i = 0; i < 4; ++i) {
        mmu.switchProcess(ctx(i));
        for (unsigned p = 0; p < 16; ++p)
            mmu.translate(va(p));
    }
    int current = 3;
    std::uint64_t fresh = 0x100000;
    for (int epoch = 0; epoch < 12; ++epoch) {
        int target = epoch % 4;
        if (target == current) {
            current = (target + 1) % 4;
            mmu.switchProcess(ctx(current));
        }
        const unsigned page = static_cast<unsigned>(epoch) % 16;
        const Ppn frame{fresh++};
        remapPage(target, page, frame);
        // Cross-ASID shootdown while the owner is descheduled.
        mmu.invalidatePage(
            baseVpn + page,
            Asid{static_cast<std::uint64_t>(target) + 1});
        mmu.switchProcess(ctx(target));
        current = target;
        ASSERT_EQ(mmu.translate(va(page)).ppn, frame)
            << "stale translation survived epoch " << epoch;
        for (unsigned q = 0; q < 16; ++q)
            mmu.translate(va(q));
    }
}

TEST(ShootdownStorm, BaselineNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildPageTable(maps[i], false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, tables[0]);
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            tables[t].remap4K(baseVpn + p, f);
        });
}

TEST(ShootdownStorm, ClusterNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildPageTable(maps[i], false);
    MmuConfig cfg;
    ClusterMmu mmu(cfg, tables[0], false);
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            tables[t].remap4K(baseVpn + p, f);
        });
}

TEST(ShootdownStorm, ColtNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildPageTable(maps[i], false);
    MmuConfig cfg;
    // The FA array would refill broken runs from neighbouring PTE
    // scans, which do see the migrations — safe to leave on.
    ColtMmu mmu(cfg, tables[0]);
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            tables[t].remap4K(baseVpn + p, f);
        });
}

TEST(ShootdownStorm, RmmNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildPageTable(maps[i], true);
    MmuConfig cfg;
    // The harness's range table (the MemoryMap) is immutable, so a
    // range refill after a migration would resurrect pre-migration
    // frames — real RMM requires the OS to update the range table on
    // migration. Model that by keeping runs below the refill floor;
    // range-TLB ASID exactness is pinned by the targeted tests above
    // and the RangeTlb unit tests.
    cfg.rmm_min_range_pages = 32;
    RmmMmu mmu(cfg, tables[0], maps[0]);
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.map = &maps[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            tables[t].remap4K(baseVpn + p, f);
        });
}

TEST(ShootdownStorm, AnchorFallbackNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    // Distinct distances per space: the storm also exercises retained
    // anchor entries of different per-process distance registers
    // coexisting in the shared L2.
    const std::array<AnchorDist, 4> dists = {
        AnchorDist::fromPages(4), AnchorDist::fromPages(8),
        AnchorDist::fromPages(16), AnchorDist::fromPages(8)};
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildAnchorPageTable(maps[i], dists[i]);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, tables[0], dists[0]);
    ContigLedger ledger;
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.anchor_distance = dists[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            // Keep the anchor sweep honest: the migrated page breaks
            // its block's contiguity at the page's offset (and the
            // block never heals — see ContigLedger).
            tables[t].remap4K(baseVpn + p, f);
            const Vpn vpn = baseVpn + p;
            const Vpn anchor = dists[t].anchorOf(vpn);
            tables[t].setAnchorContiguity(
                anchor,
                ledger.breakAt(t, anchor, dists[t].offsetOf(vpn)),
                dists[t]);
        });
}

TEST(ShootdownStorm, RegionAnchorFallbackNoStaleAcrossFourAsids)
{
    auto maps = stormMaps();
    std::array<RegionPartition, 4> parts;
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i) {
        parts[i] = partitionAnchorRegions(maps[i]);
        tables[i] = buildRegionAnchorPageTable(maps[i], parts[i]);
    }
    MmuConfig cfg;
    RegionAnchorMmu mmu(cfg, tables[0], parts[0]);
    const auto distFor = [&](int t, Vpn vpn) {
        for (const AnchorRegion &r : parts[t].regions)
            if (r.contains(vpn))
                return r.distance;
        return parts[t].default_distance;
    };
    ContigLedger ledger;
    runStorm(
        mmu,
        [&](int i) {
            ProcessContext c;
            c.table = &tables[i];
            c.partition = &parts[i];
            c.asid = Asid{static_cast<std::uint64_t>(i) + 1};
            return c;
        },
        [&](int t, unsigned p, Ppn f) {
            tables[t].remap4K(baseVpn + p, f);
            const Vpn vpn = baseVpn + p;
            const AnchorDist d = distFor(t, vpn);
            const Vpn anchor = d.anchorOf(vpn);
            tables[t].setAnchorContiguity(
                anchor, ledger.breakAt(t, anchor, d.offsetOf(vpn)), d);
        });
}

TEST(ShootdownStorm, CrossAsidInvalidationIsTargeted)
{
    // Exact (register-free) schemes must not disturb other address
    // spaces or other pages: after one cross-ASID page shootdown, the
    // bystander space replays hit-for-hit and the owner re-walks only
    // the shot-down page.
    auto maps = stormMaps();
    std::array<PageTable, 4> tables;
    for (int i = 0; i < 4; ++i)
        tables[i] = buildPageTable(maps[i], false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, tables[0]);
    mmu.setSwitchPolicy(SwitchPolicy::Asid);

    ProcessContext a;
    a.table = &tables[0];
    a.asid = Asid{1};
    ProcessContext b;
    b.table = &tables[1];
    b.asid = Asid{2};

    mmu.switchProcess(a);
    for (unsigned p = 0; p < 16; ++p)
        mmu.translate(va(p));
    mmu.switchProcess(b);
    for (unsigned p = 0; p < 16; ++p)
        mmu.translate(va(p));

    // From b, migrate a's page 5 and shoot it down in a only.
    tables[0].remap4K(baseVpn + 5, migrated);
    mmu.invalidatePage(baseVpn + 5, Asid{1});

    std::uint64_t walks = mmu.stats().page_walks;
    for (unsigned p = 0; p < 16; ++p)
        mmu.translate(va(p));
    EXPECT_EQ(mmu.stats().page_walks, walks) << "bystander lost entries";

    mmu.switchProcess(a);
    walks = mmu.stats().page_walks;
    for (unsigned p = 0; p < 16; ++p)
        mmu.translate(va(p));
    EXPECT_EQ(mmu.stats().page_walks, walks + 1)
        << "exact shootdown must re-walk exactly the shot-down page";
    EXPECT_EQ(mmu.translate(va(5)).ppn, migrated);
}

TEST(Shootdown, UnmapThenAccessIsFatal)
{
    const MemoryMap m = runMap();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t);
    t.unmap4K(baseVpn + 7);
    mmu.invalidatePage(baseVpn + 7);
    detail::setThrowOnError(true);
    EXPECT_THROW(mmu.translate(va(7)), std::runtime_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace atlb
