/**
 * @file
 * Tests for the anchor (hybrid coalescing) MMU — paper Section 3,
 * Table 2 L2 flow, and Fig. 6 indexing.
 */

#include <gtest/gtest.h>

#include "mmu/anchor_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

class AnchorMmuTest : public ::testing::Test
{
  protected:
    AnchorMmuTest() : map_(test::makeVariedMap()) {}

    PageTable
    anchorTable(std::uint64_t distance)
    {
        return buildAnchorPageTable(map_, AnchorDist::fromPages(distance));
    }

    MemoryMap map_;
    MmuConfig cfg_;
};

TEST_F(AnchorMmuTest, Table2Row1RegularHit)
{
    // Pages 4..7 have an unmapped anchor VPN, so walks fill regular 4KB
    // entries; pages 16..115 are anchor-covered L1-eviction fodder.
    MemoryMap m;
    m.add(baseVpn + 4, Ppn{0x3000}, PageCount{4});
    m.add(baseVpn + 16, Ppn{0x5000}, PageCount{100});
    m.finalize();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    mmu.translate(va(5)); // walk, regular 4KB fill
    for (std::uint64_t i = 0; i < 100; ++i)
        mmu.translate(va(16 + i)); // evict the L1 4KB TLB
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.level, HitLevel::L2Regular);
    EXPECT_EQ(r.cycles, cfg_.l2_hit_cycles);
    EXPECT_EQ(r.ppn, Ppn{0x3001});
}

TEST_F(AnchorMmuTest, HugePagePreferredOverSmallDistanceAnchor)
{
    // Chunk B is huge-mapped; with distance 8 (< 512) the OS places no
    // anchor at the huge-page start, so translation uses 2MB entries.
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.size, PageSize::Huge2M);
    EXPECT_EQ(mmu.anchorStats().anchor_fills, 0u);
    EXPECT_EQ(mmu.anchorStats().regular_fills, 1u);
    // The whole block is now covered by the L1 2MB entry.
    EXPECT_EQ(mmu.translate(va(900)).level, HitLevel::L1);
}

TEST_F(AnchorMmuTest, Table2Row2AnchorHit)
{
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    EXPECT_EQ(mmu.translate(va(0)).level, HitLevel::PageWalk);
    // Pages 1..7 share page 0's anchor (contiguity 8).
    for (std::uint64_t i = 1; i < 8; ++i) {
        const TranslationResult r = mmu.translate(va(i));
        ASSERT_EQ(r.level, HitLevel::Coalesced) << "page " << i;
        ASSERT_EQ(r.ppn, map_.translate(baseVpn + i));
        ASSERT_EQ(r.cycles, cfg_.coalesced_hit_cycles);
    }
    EXPECT_EQ(mmu.stats().page_walks, 1u);
    EXPECT_EQ(mmu.anchorStats().anchor_hits, 7u);
}

TEST_F(AnchorMmuTest, Table2Row3AnchorHitContiguityMiss)
{
    // Chunk D has 3 pages: its anchor (distance 8) has contiguity 3.
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    // Make page +8195 exist: extend the map locally instead — use the
    // varied map's chunk C tail: last anchor at +4192 covers 4 pages
    // (chunk C is 100 pages: anchors at +4096..+4192, last contig 4).
    mmu.translate(va(4192)); // fills anchor with contiguity 4
    const TranslationResult hit = mmu.translate(va(4195));
    EXPECT_EQ(hit.level, HitLevel::Coalesced);
    // Page +4196 is unmapped; instead exercise the row-3 path with a
    // *different* chunk: +8192 anchor has contiguity 3; after caching
    // it, accessing +8194 hits but +8195.. are unmapped. Row 3 needs a
    // mapped page beyond the anchor's contiguity within the same
    // distance block, i.e. a PA-discontinuity inside a block.
    MemoryMap m;
    m.add(baseVpn, Ppn{0x1000}, PageCount{3});          // pages 0-2
    m.add(baseVpn + 3, Ppn{0x2000}, PageCount{5});      // pages 3-7, different PA run
    m.finalize();
    PageTable t2 = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    AnchorMmu mmu2(cfg_, t2, AnchorDist::fromPages(8));
    mmu2.translate(va(0)); // walk; anchor contiguity 3 cached
    EXPECT_EQ(mmu2.translate(va(1)).level, HitLevel::Coalesced);
    // Page 4 is beyond the anchor's contiguity: anchor entry hits but
    // the contiguity check fails -> walk, regular fill (row 3).
    const TranslationResult r = mmu2.translate(va(4));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    EXPECT_EQ(r.ppn, Ppn{0x2000 + 1});
    EXPECT_EQ(mmu2.anchorStats().anchor_partial_misses, 1u);
    // The regular entry (not another anchor) was filled (row 3).
    EXPECT_EQ(mmu2.anchorStats().regular_fills, 1u);
}

TEST_F(AnchorMmuTest, Table2Row4WalkFillsAnchorOnly)
{
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    mmu.translate(va(3)); // covered page: walk fills anchor, not regular
    EXPECT_EQ(mmu.anchorStats().anchor_fills, 1u);
    EXPECT_EQ(mmu.anchorStats().regular_fills, 0u);
    // The anchor covers the whole block including page 0.
    EXPECT_EQ(mmu.translate(va(0)).level, HitLevel::Coalesced);
}

TEST_F(AnchorMmuTest, Table2Row5WalkFillsRegularOnly)
{
    // A page whose anchor VPN is unmapped: block [+8192..+8200) anchor
    // at +8192 exists (chunk D), so use a chunk starting mid-block.
    MemoryMap m;
    m.add(baseVpn + 4, Ppn{0x3000}, PageCount{4}); // pages 4-7 only; anchor VPN +0 unmapped
    m.finalize();
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(8));
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    const TranslationResult r = mmu.translate(va(5));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    EXPECT_EQ(r.ppn, Ppn{0x3001});
    EXPECT_EQ(mmu.anchorStats().anchor_fills, 0u);
    EXPECT_EQ(mmu.anchorStats().regular_fills, 1u);
}

TEST_F(AnchorMmuTest, AnchorCoverageCappedByDistance)
{
    // Chunk C (100 pages, never huge-mapped) with distance 64: the
    // anchor at +4096 covers [+4096, +4160) only.
    PageTable t = anchorTable(64);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(64));
    mmu.translate(va(4096)); // walk; anchor at +4096, contiguity 64
    EXPECT_EQ(mmu.translate(va(4150)).level, HitLevel::Coalesced);
    // +4170 is in the next anchor block: that anchor is not cached yet.
    const TranslationResult r = mmu.translate(va(4170));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    // ... and is covered once its own anchor is cached.
    EXPECT_EQ(mmu.translate(va(4180)).level, HitLevel::Coalesced);
}

TEST_F(AnchorMmuTest, LargeDistanceCoversHugeMappedRun)
{
    // Distance >= 512 anchors sit at PMD level over huge-mapped runs:
    // one anchor translates pages spanning several 2MB pages.
    MemoryMap m;
    m.add(baseVpn, Ppn{0x40000}, PageCount{4096}); // 16MB aligned chunk, huge-eligible
    m.finalize();
    PageTable t2 = buildAnchorPageTable(m, AnchorDist::fromPages(2048));
    AnchorMmu mmu2(cfg_, t2, AnchorDist::fromPages(2048));
    mmu2.translate(vaOf(baseVpn + 1));
    // Anything in [0, 2048) is covered by the cached anchor.
    const TranslationResult r = mmu2.translate(vaOf(baseVpn + 1500));
    EXPECT_EQ(r.level, HitLevel::Coalesced);
    EXPECT_EQ(r.ppn, Ppn{0x40000 + 1500});
    // [2048, 4096) needs the second anchor.
    EXPECT_EQ(mmu2.translate(vaOf(baseVpn + 3000)).level,
              HitLevel::PageWalk);
    EXPECT_EQ(mmu2.translate(vaOf(baseVpn + 3500)).level,
              HitLevel::Coalesced);
}

TEST_F(AnchorMmuTest, SetDistanceFlushesAndRekeys)
{
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    mmu.translate(va(0));
    mmu.translate(va(1));
    EXPECT_GT(mmu.l2Tlb().validCount(), 0u);
    t.sweepAnchors(map_, AnchorDist::fromPages(4));
    mmu.setDistance(AnchorDist::fromPages(4));
    EXPECT_EQ(mmu.distance().pages(), 4u);
    EXPECT_EQ(mmu.l2Tlb().validCount(), 0u);
    // Still translates correctly at the new distance.
    EXPECT_EQ(mmu.translate(va(1)).ppn, map_.translate(baseVpn + 1));
    EXPECT_EQ(mmu.translate(va(2)).level, HitLevel::Coalesced);
}

TEST_F(AnchorMmuTest, TranslationsAlwaysCorrectAcrossDistances)
{
    for (const std::uint64_t d : {2ULL, 8ULL, 64ULL, 512ULL, 4096ULL}) {
        PageTable t = anchorTable(d);
        AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(d));
        for (int pass = 0; pass < 2; ++pass) {
            for (const Chunk &c : map_.chunks()) {
                for (std::uint64_t i = 0; i < c.pages; i += 5) {
                    const Vpn vpn = c.vpn + i;
                    ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                              map_.translate(vpn))
                        << "distance " << d << " vpn offset "
                        << vpn - baseVpn;
                }
            }
        }
    }
}

TEST_F(AnchorMmuTest, AnchorEntriesSpreadAcrossSets)
{
    // Fig. 6: consecutive anchors must land in consecutive sets so the
    // whole TLB is usable for anchors. With the naive VPN indexing all
    // anchors of distance >= numSets would alias into one set.
    MemoryMap m;
    m.add(baseVpn, Ppn{0x40000}, PageCount{1 << 16}); // 256MB contiguous
    m.finalize();
    const std::uint64_t d = 512;
    PageTable t = buildAnchorPageTable(m, AnchorDist::fromPages(d));
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(d));
    // Touch one page in each of 64 distinct anchor blocks.
    for (std::uint64_t b = 0; b < 64; ++b)
        mmu.translate(vaOf(baseVpn + b * d + 3));
    // All 64 anchors must be resident simultaneously (64 sets used).
    std::uint64_t resident = 0;
    for (std::uint64_t b = 0; b < 64; ++b) {
        if (mmu.l2Tlb().probe(EntryKind::Anchor,
                                  AnchorDist::fromPages(d).keyOf(
                                      baseVpn + b * d)))
            ++resident;
    }
    EXPECT_EQ(resident, 64u);
}

TEST_F(AnchorMmuTest, StatsBreakdownConsistent)
{
    PageTable t = anchorTable(8);
    AnchorMmu mmu(cfg_, t, AnchorDist::fromPages(8));
    for (std::uint64_t i = 0; i < 8; ++i)
        mmu.translate(va(i));
    const MmuStats &s = mmu.stats();
    EXPECT_EQ(s.accesses, 8u);
    EXPECT_EQ(s.l1_hits + s.l2_regular_hits + s.coalesced_hits +
                  s.page_walks,
              s.accesses);
}

} // namespace
} // namespace atlb
