/**
 * @file
 * Tests for nested (virtualized) translation: two-dimensional walks,
 * combined-entry page-size clamping, and host-clipped anchor coverage.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu_test_util.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

/** End-to-end expected machine frame: host(guest(vpn)). */
Ppn
combined(const MemoryMap &guest, const MemoryMap &host, Vpn vpn)
{
    const Ppn gpa = guest.translate(vpn);
    return gpa == invalidPpn ? invalidPpn
                             : host.translate(hostVpnOf(gpa));
}

/** Host environment covering all GPAs of @p guest. */
struct HostEnv
{
    MemoryMap map;
    PageTable table;
};

HostEnv
makeHost(const MemoryMap &guest, ScenarioKind kind, std::uint64_t seed)
{
    Ppn max_gpa{0};
    for (const Chunk &c : guest.chunks())
        max_gpa = std::max(max_gpa, c.ppn + c.pages);
    ScenarioParams p;
    p.footprint_pages = max_gpa.raw() + 8;
    p.va_base = Vpn{0}; // GPA space starts at zero
    p.seed = seed;
    HostEnv env;
    env.map = buildScenario(kind, p);
    env.table = buildPageTable(env.map, true);
    return env;
}

TEST(Nested, BaselineTwoDimensionalCorrectness)
{
    const MemoryMap guest = test::makeVariedMap();
    const PageTable guest_table = buildPageTable(guest, true);
    const HostEnv host = makeHost(guest, ScenarioKind::MedContig, 3);

    MmuConfig cfg;
    BaselineMmu mmu(cfg, guest_table, "nested-base");
    mmu.setNested(&host.table, &host.map);
    ASSERT_TRUE(mmu.nested());

    for (const Chunk &c : guest.chunks()) {
        for (std::uint64_t i = 0; i < c.pages; i += 5) {
            const Vpn vpn = c.vpn + i;
            ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                      combined(guest, host.map, vpn))
                << "vpn offset " << vpn - baseVpn;
        }
    }
}

TEST(Nested, WalkCostIsTwoDimensional)
{
    const MemoryMap guest = test::makeVariedMap();
    const PageTable guest_table = buildPageTable(guest, false);
    const HostEnv host = makeHost(guest, ScenarioKind::MaxContig, 5);

    MmuConfig cfg;
    cfg.nested_ref_cycles = 10;
    BaselineMmu mmu(cfg, guest_table, "nested-base");
    mmu.setNested(&host.table, &host.map);

    // Guest 4KB leaf (4 levels); host side is one giant chunk, THP'd
    // into 2MB leaves (3 levels): (4+1)(3+1)-1 = 19 refs.
    const TranslationResult r = mmu.translate(va(0));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    EXPECT_EQ(r.cycles, cfg.l2_hit_cycles + 19 * 10u);
}

TEST(Nested, CombinedEntryClampedToHostPageSize)
{
    // Guest maps a huge-eligible chunk; host maps its GPAs as 4KB only.
    const MemoryMap guest = test::makeVariedMap();
    const PageTable guest_table = buildPageTable(guest, true);
    HostEnv host = makeHost(guest, ScenarioKind::LowContig, 7);

    MmuConfig cfg;
    BaselineMmu mmu(cfg, guest_table, "nested-base");
    mmu.setNested(&host.table, &host.map);

    // Chunk B (+512) is guest-2MB-mapped, but the low-contiguity host
    // cannot back it with 2MB: the combined entry must be 4KB.
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.size, PageSize::Base4K);
    EXPECT_EQ(r.ppn, combined(guest, host.map, baseVpn + 512));
}

TEST(Nested, AnchorCoverageClippedByHostRun)
{
    // Guest: one 16-page run. Host: breaks the corresponding GPA run
    // after 6 pages.
    MemoryMap guest;
    guest.add(baseVpn, Ppn{1000}, PageCount{16});
    guest.finalize();
    PageTable guest_table = buildAnchorPageTable(guest, AnchorDist::fromPages(16));

    MemoryMap host_map;
    host_map.add(Vpn{994}, Ppn{0x5000}, PageCount{12});  // GPAs 1000..1005 in run one
    host_map.add(Vpn{1006}, Ppn{0x8000}, PageCount{20}); // GPAs 1006.. in another
    host_map.finalize();
    PageTable host_table = buildPageTable(host_map, false);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, guest_table, AnchorDist::fromPages(16));
    mmu.setNested(&host_table, &host_map);

    // Walk page 0: the guest anchor claims 16 pages but the host run
    // from GPA 1000 covers only 6; the cached anchor must be clipped.
    mmu.translate(va(0));
    EXPECT_EQ(mmu.translate(va(5)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.translate(va(5)).ppn, Ppn{0x5000 + 11});
    const TranslationResult beyond = mmu.translate(va(6));
    EXPECT_EQ(beyond.level, HitLevel::PageWalk) << "host break crossed";
    EXPECT_EQ(beyond.ppn, Ppn{0x8000});
}

TEST(Nested, AnchorRandomAccessAlwaysCorrect)
{
    ScenarioParams gp;
    gp.footprint_pages = 4000;
    gp.seed = 11;
    const MemoryMap guest = buildScenario(ScenarioKind::MedContig, gp);
    const std::uint64_t d =
        selectAnchorDistance(guest.contiguityHistogram()).distance;
    PageTable guest_table = buildAnchorPageTable(guest, AnchorDist::fromPages(d));
    const HostEnv host = makeHost(guest, ScenarioKind::MedContig, 13);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, guest_table, AnchorDist::fromPages(d));
    mmu.setNested(&host.table, &host.map);

    Rng rng(17);
    for (int i = 0; i < 30000; ++i) {
        const Vpn vpn = gp.va_base + rng.nextBounded(gp.footprint_pages);
        ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                  combined(guest, host.map, vpn))
            << "vpn offset " << vpn - gp.va_base;
    }
}

TEST(Nested, UnsupportedSchemeRejectsNestedMode)
{
    const MemoryMap guest = test::makeVariedMap();
    const PageTable guest_table = buildPageTable(guest, false);
    const HostEnv host = makeHost(guest, ScenarioKind::MedContig, 19);
    MmuConfig cfg;
    ClusterMmu mmu(cfg, guest_table, false);
    detail::setThrowOnError(true);
    EXPECT_THROW(mmu.setNested(&host.table, &host.map),
                 std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Nested, ReturningToNativeModeRestoresFlatWalks)
{
    const MemoryMap guest = test::makeVariedMap();
    const PageTable guest_table = buildPageTable(guest, false);
    const HostEnv host = makeHost(guest, ScenarioKind::MaxContig, 23);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, guest_table);
    mmu.setNested(&host.table, &host.map);
    mmu.translate(va(0));
    mmu.setNested(nullptr, nullptr);
    EXPECT_FALSE(mmu.nested());
    const TranslationResult r = mmu.translate(va(0));
    EXPECT_EQ(r.ppn, guest.translate(baseVpn));
    EXPECT_EQ(r.cycles, cfg.l2_hit_cycles + cfg.walk_cycles);
}

} // namespace
} // namespace atlb
