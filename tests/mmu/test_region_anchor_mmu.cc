/**
 * @file
 * Tests for the multi-region anchor MMU (Section 4.2 extension).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu_test_util.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;

/** Mixed mapping: 16K pages of fragments then 128K pages of big runs. */
MemoryMap
mixedMap(std::uint64_t seed = 5)
{
    ScenarioParams params;
    params.footprint_pages = 1;
    params.seed = seed;
    return buildSegmentedScenario(
        params, {{16384, 1, 16}, {131072, 4096, 16384}});
}

class RegionAnchorMmuTest : public ::testing::Test
{
  protected:
    RegionAnchorMmuTest()
        : map_(mixedMap()), partition_(partitionAnchorRegions(map_)),
          table_(buildRegionAnchorPageTable(map_, partition_))
    {
    }

    MemoryMap map_;
    RegionPartition partition_;
    PageTable table_;
    MmuConfig cfg_;
};

TEST_F(RegionAnchorMmuTest, PartitionHasTwoScales)
{
    ASSERT_GE(partition_.regions.size(), 2u);
    EXPECT_LT(partition_.regions.front().distance,
              partition_.regions.back().distance);
}

TEST_F(RegionAnchorMmuTest, TranslationsAlwaysCorrect)
{
    RegionAnchorMmu mmu(cfg_, table_, partition_);
    Rng rng(17);
    const Vpn lo = map_.chunks().front().vpn;
    const Vpn hi = map_.chunks().back().vpnEnd();
    for (int i = 0; i < 50000; ++i) {
        const Vpn vpn = lo + rng.nextBounded(hi - lo);
        if (!map_.mapped(vpn))
            continue;
        ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn, map_.translate(vpn))
            << "vpn offset " << vpn - lo;
    }
}

TEST_F(RegionAnchorMmuTest, AnchorsServeBothRegions)
{
    RegionAnchorMmu mmu(cfg_, table_, partition_);
    // Sweep a stretch of each regime: interior pages must be served by
    // anchors filled at each region's own distance.
    const auto sweep = [&](const AnchorRegion &region) {
        const std::uint64_t span =
            std::min<std::uint64_t>(region.pages(), 2000);
        for (Vpn v = region.begin; v < region.begin + span; ++v) {
            if (map_.mapped(v)) {
                ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_.translate(v));
            }
        }
    };
    sweep(partition_.regions.front());
    const std::uint64_t front_hits = mmu.regionStats().anchor_hits;
    EXPECT_GT(mmu.regionStats().anchor_fills, 0u);
    EXPECT_GT(front_hits, 0u);
    sweep(partition_.regions.back());
    EXPECT_GT(mmu.regionStats().anchor_hits, front_hits)
        << "big-run region saw no anchor hits";
}

TEST_F(RegionAnchorMmuTest, BeatsSingleDistanceOnMixedMapping)
{
    // Single-distance dynamic anchor (the paper's base scheme).
    PageTable single_table =
        buildAnchorPageTable(map_, partition_.default_distance);
    AnchorMmu single(cfg_, single_table, partition_.default_distance);
    RegionAnchorMmu multi(cfg_, table_, partition_);

    // Access both regimes evenly: uniform pages over each regime.
    Rng rng(23);
    const AnchorRegion &frag = partition_.regions.front();
    const AnchorRegion &runs = partition_.regions.back();
    for (int i = 0; i < 60000; ++i) {
        Vpn vpn;
        if (i & 1)
            vpn = frag.begin + rng.nextBounded(frag.pages());
        else
            vpn = runs.begin + rng.nextBounded(runs.pages());
        if (!map_.mapped(vpn))
            continue;
        single.translate(vaOf(vpn));
        multi.translate(vaOf(vpn));
    }
    EXPECT_LT(multi.stats().page_walks, single.stats().page_walks);
}

TEST_F(RegionAnchorMmuTest, CrossRegionAnchorsNeverUsed)
{
    // A VPN near a region boundary whose anchor VPN (at this region's
    // distance) falls before the region start must not be served by an
    // anchor — the slot belongs to the previous region.
    RegionAnchorMmu mmu(cfg_, table_, partition_);
    const AnchorRegion &runs = partition_.regions.back();
    // First page of the big-run region whose aligned anchor VPN is
    // below the region start.
    Vpn probe = invalidVpn;
    for (Vpn v = runs.begin; v < runs.begin + runs.distance.pages();
         ++v) {
        if (map_.mapped(v) &&
            v.alignDown(runs.distance.pages()) < runs.begin) {
            probe = v;
            break;
        }
    }
    if (probe == invalidVpn)
        GTEST_SKIP() << "region start happens to be aligned";
    const TranslationResult r = mmu.translate(vaOf(probe));
    EXPECT_EQ(r.ppn, map_.translate(probe));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST_F(RegionAnchorMmuTest, FlushClearsState)
{
    RegionAnchorMmu mmu(cfg_, table_, partition_);
    mmu.translate(vaOf(partition_.regions.front().begin));
    EXPECT_GT(mmu.l2Tlb().validCount(), 0u);
    mmu.flushAll();
    EXPECT_EQ(mmu.l2Tlb().validCount(), 0u);
}

TEST_F(RegionAnchorMmuTest, RejectsOversizedRegionTable)
{
    detail::setThrowOnError(true);
    RegionPartition big = partition_;
    while (big.regions.size() <= RegionAnchorMmu::maxRegions) {
        AnchorRegion r = big.regions.back();
        r.begin = r.end;
        r.end = r.begin + 1;
        big.regions.push_back(r);
    }
    EXPECT_THROW(RegionAnchorMmu(cfg_, table_, big), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace atlb
