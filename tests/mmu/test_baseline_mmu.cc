/**
 * @file
 * Tests for the baseline/THP MMU pipeline.
 */

#include <gtest/gtest.h>

#include "mmu/baseline_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

class BaselineMmuTest : public ::testing::Test
{
  protected:
    BaselineMmuTest()
        : map_(test::makeVariedMap()), plain_(buildPageTable(map_, false)),
          thp_(buildPageTable(map_, true))
    {
    }

    MemoryMap map_;
    PageTable plain_;
    PageTable thp_;
    MmuConfig cfg_;
};

TEST_F(BaselineMmuTest, FirstAccessWalks)
{
    BaselineMmu mmu(cfg_, plain_);
    const TranslationResult r = mmu.translate(va(0));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn));
    EXPECT_EQ(r.cycles, cfg_.l2_hit_cycles + cfg_.walk_cycles);
    EXPECT_EQ(mmu.stats().page_walks, 1u);
}

TEST_F(BaselineMmuTest, SecondAccessHitsL1)
{
    BaselineMmu mmu(cfg_, plain_);
    mmu.translate(va(0));
    const TranslationResult r = mmu.translate(va(0, 128));
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn));
}

TEST_F(BaselineMmuTest, L1EvictionFallsBackToL2)
{
    BaselineMmu mmu(cfg_, plain_);
    // Touch far more pages than L1 holds (64), fewer than L2 (1024).
    for (std::uint64_t i = 0; i < 512; ++i)
        mmu.translate(va(512 + i));
    // Re-touch the first page: L1 long evicted, L2 still has it.
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.level, HitLevel::L2Regular);
    EXPECT_EQ(r.cycles, cfg_.l2_hit_cycles);
}

TEST_F(BaselineMmuTest, PlainTableNeverUses2M)
{
    BaselineMmu mmu(cfg_, plain_);
    for (std::uint64_t i = 0; i < 1024; ++i) {
        const TranslationResult r = mmu.translate(va(512 + i));
        ASSERT_EQ(r.size, PageSize::Base4K);
        ASSERT_EQ(r.ppn, map_.translate(baseVpn + 512 + i));
    }
}

TEST_F(BaselineMmuTest, ThpTableUses2MForEligibleChunk)
{
    BaselineMmu mmu(cfg_, thp_, "thp");
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.size, PageSize::Huge2M);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 512));
    // Whole 2MB block now hits the L1 2MB TLB.
    const TranslationResult r2 = mmu.translate(va(1000));
    EXPECT_EQ(r2.level, HitLevel::L1);
    EXPECT_EQ(r2.ppn, map_.translate(baseVpn + 1000));
}

TEST_F(BaselineMmuTest, ThpTableKeeps4KForMisalignedChunk)
{
    BaselineMmu mmu(cfg_, thp_, "thp");
    const TranslationResult r = mmu.translate(va(4096));
    EXPECT_EQ(r.size, PageSize::Base4K);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 4096));
}

TEST_F(BaselineMmuTest, ThpReducesWalksForBigChunk)
{
    BaselineMmu plain_mmu(cfg_, plain_);
    BaselineMmu thp_mmu(cfg_, thp_, "thp");
    for (std::uint64_t i = 0; i < 1024; ++i) {
        plain_mmu.translate(va(512 + i));
        thp_mmu.translate(va(512 + i));
    }
    // 1024 pages = 2 huge pages: two walks instead of ~1024.
    EXPECT_EQ(thp_mmu.stats().page_walks, 2u);
    EXPECT_EQ(plain_mmu.stats().page_walks, 1024u);
}

TEST_F(BaselineMmuTest, StatsAccumulate)
{
    BaselineMmu mmu(cfg_, plain_);
    mmu.translate(va(0));
    mmu.translate(va(0));
    mmu.translate(va(1));
    EXPECT_EQ(mmu.stats().accesses, 3u);
    EXPECT_EQ(mmu.stats().l1_hits, 1u);
    EXPECT_EQ(mmu.stats().page_walks, 2u);
    EXPECT_EQ(mmu.stats().translation_cycles,
              2 * (cfg_.l2_hit_cycles + cfg_.walk_cycles));
}

TEST_F(BaselineMmuTest, FlushForcesRewalk)
{
    BaselineMmu mmu(cfg_, plain_);
    mmu.translate(va(0));
    mmu.flushAll();
    const TranslationResult r = mmu.translate(va(0));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST_F(BaselineMmuTest, CustomLatenciesHonoured)
{
    MmuConfig cfg;
    cfg.l2_hit_cycles = 11;
    cfg.walk_cycles = 99;
    BaselineMmu mmu(cfg, plain_);
    EXPECT_EQ(mmu.translate(va(0)).cycles, 110u);
    // Evict from L1 but not L2.
    for (std::uint64_t i = 0; i < 512; ++i)
        mmu.translate(va(512 + i));
    EXPECT_EQ(mmu.translate(va(0)).cycles, 11u);
}

} // namespace
} // namespace atlb
