/**
 * @file
 * Shared helpers for MMU tests.
 */

#ifndef ANCHORTLB_TESTS_MMU_TEST_UTIL_HH
#define ANCHORTLB_TESTS_MMU_TEST_UTIL_HH

#include "common/types.hh"
#include "os/memory_map.hh"

namespace atlb::test
{

/** 2MB-aligned VPN base used across MMU tests. */
constexpr Vpn baseVpn{0x7f0000000ULL};

/** Byte address of a VPN offset from baseVpn. */
inline VirtAddr
va(std::uint64_t page_offset, std::uint64_t byte_offset = 0)
{
    return vaOf(baseVpn + page_offset) + byte_offset;
}

/**
 * A mapping with varied structure:
 *   chunk A: 8 pages at +0 (small, PA 0x1000)
 *   chunk B: 1024 pages at +512, 2MB-congruent (huge-eligible)
 *   chunk C: 100 pages at +4096, PA misaligned mod 512
 *   chunk D: 3 pages at +8192
 */
inline MemoryMap
makeVariedMap()
{
    MemoryMap m;
    m.add(baseVpn + 0, Ppn{0x1000}, PageCount{8});
    m.add(baseVpn + 512, Ppn{0x20000 + 512},
          PageCount{1024}); // congruent mod 512
    m.add(baseVpn + 4096, Ppn{0x80007}, PageCount{100});
    m.add(baseVpn + 8192, Ppn{0x90001}, PageCount{3});
    m.finalize();
    return m;
}

} // namespace atlb::test

#endif // ANCHORTLB_TESTS_MMU_TEST_UTIL_HH
