/**
 * @file
 * Tests for the RMM (range TLB) pipeline.
 */

#include <gtest/gtest.h>

#include "mmu/rmm_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

class RmmMmuTest : public ::testing::Test
{
  protected:
    RmmMmuTest()
        : map_(test::makeVariedMap()), thp_(buildPageTable(map_, true))
    {
        cfg_.rmm_min_range_pages = 64; // chunk B and C qualify
    }

    MemoryMap map_;
    PageTable thp_;
    MmuConfig cfg_;
};

TEST_F(RmmMmuTest, WalkInstallsRangeThenRangeHits)
{
    RmmMmu mmu(cfg_, thp_, map_);
    // Chunk C (100 pages, not huge-eligible) at +4096.
    EXPECT_EQ(mmu.translate(va(4096)).level, HitLevel::PageWalk);
    const TranslationResult r = mmu.translate(va(4150));
    EXPECT_EQ(r.level, HitLevel::Coalesced);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 4150));
    EXPECT_EQ(r.cycles, cfg_.coalesced_hit_cycles);
    EXPECT_EQ(mmu.stats().page_walks, 1u);
}

TEST_F(RmmMmuTest, SmallChunksGetNoRange)
{
    RmmMmu mmu(cfg_, thp_, map_);
    mmu.translate(va(0)); // chunk A: 8 pages < min range
    EXPECT_EQ(mmu.rangeTlb().size(), 0u);
    // Next page of chunk A misses the range TLB and walks.
    EXPECT_EQ(mmu.translate(va(1)).level, HitLevel::PageWalk);
}

TEST_F(RmmMmuTest, MinRangeConfigurable)
{
    MmuConfig cfg = cfg_;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, thp_, map_);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.rangeTlb().size(), 1u);
    EXPECT_EQ(mmu.translate(va(1)).level, HitLevel::Coalesced);
}

TEST_F(RmmMmuTest, L2StillFilledOnWalks)
{
    RmmMmu mmu(cfg_, thp_, map_);
    mmu.translate(va(4096));
    // Evict from L1 only.
    for (std::uint64_t i = 0; i < 90; ++i)
        mmu.translate(va(4097 + i));
    // The original page is now served by the regular L2 entry (checked
    // first) rather than the range.
    const TranslationResult r = mmu.translate(va(4096));
    EXPECT_EQ(r.level, HitLevel::L2Regular);
}

TEST_F(RmmMmuTest, HugePagesServedByRegularEntries)
{
    RmmMmu mmu(cfg_, thp_, map_);
    const TranslationResult r = mmu.translate(va(512));
    EXPECT_EQ(r.size, PageSize::Huge2M);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 512));
}

TEST_F(RmmMmuTest, RangeTranslationsAlwaysCorrect)
{
    RmmMmu mmu(cfg_, thp_, map_);
    for (int pass = 0; pass < 2; ++pass) {
        for (const Chunk &c : map_.chunks()) {
            for (std::uint64_t i = 0; i < c.pages; i += 7) {
                const Vpn vpn = c.vpn + i;
                ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                          map_.translate(vpn));
            }
        }
    }
}

TEST_F(RmmMmuTest, FlushClearsRangeTlb)
{
    RmmMmu mmu(cfg_, thp_, map_);
    mmu.translate(va(4096));
    EXPECT_EQ(mmu.rangeTlb().size(), 1u);
    mmu.flushAll();
    EXPECT_EQ(mmu.rangeTlb().size(), 0u);
}

TEST_F(RmmMmuTest, ThirtyTwoEntryCapacityThrashes)
{
    // Build a map with 64 qualifying chunks and touch them round-robin:
    // the 32-entry FA range TLB cannot hold them all.
    MemoryMap m;
    for (std::uint64_t i = 0; i < 64; ++i)
        m.add(baseVpn + i * 128, Ppn{0x100000 + i * 256},
              PageCount{64});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    MmuConfig cfg;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, t, m);
    // Two round-robin passes over one page per chunk.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i)
            mmu.translate(vaOf(baseVpn + i * 128 + pass));
    // Pass 2 pages are new VPNs; their chunks' ranges were evicted
    // before reuse, so most of pass 2 walks again.
    EXPECT_GT(mmu.stats().page_walks, 96u);
}

} // namespace
} // namespace atlb
