/**
 * @file
 * Tests for the CoLT MMU (SA + FA coalescing).
 */

#include <gtest/gtest.h>

#include "mmu/colt_mmu.hh"
#include "mmu_test_util.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

class ColtMmuTest : public ::testing::Test
{
  protected:
    ColtMmuTest()
        : map_(test::makeVariedMap()), plain_(buildPageTable(map_, false))
    {
    }

    MemoryMap map_;
    PageTable plain_;
    MmuConfig cfg_;
};

TEST_F(ColtMmuTest, LongRunGoesToFaPart)
{
    ColtMmu mmu(cfg_, plain_);
    // Chunk B is 1024 contiguous pages: one walk coalesces a 64-page
    // FA run around the missing page.
    mmu.translate(va(600));
    EXPECT_EQ(mmu.faTlb().size(), 1u);
    // Neighbours within the window hit the FA entry.
    const TranslationResult r = mmu.translate(va(610));
    EXPECT_EQ(r.level, HitLevel::Coalesced);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 610));
}

TEST_F(ColtMmuTest, FaRunCappedAtWindow)
{
    ColtMmu mmu(cfg_, plain_);
    mmu.translate(va(600));
    // 600 lies in window [576, 640): a page outside it misses.
    EXPECT_EQ(mmu.translate(va(640)).level, HitLevel::PageWalk);
}

TEST_F(ColtMmuTest, ShortRunGoesToSaPart)
{
    ColtMmu mmu(cfg_, plain_);
    // Chunk D: 3 pages (>= 2, < colt_fa_min_pages).
    mmu.translate(va(8192));
    EXPECT_EQ(mmu.faTlb().size(), 0u);
    const TranslationResult r = mmu.translate(va(8193));
    EXPECT_EQ(r.level, HitLevel::Coalesced);
    EXPECT_EQ(r.ppn, map_.translate(baseVpn + 8193));
}

TEST_F(ColtMmuTest, SingletonGoesToRegular)
{
    MemoryMap m;
    m.add(baseVpn, Ppn{0x5000}, PageCount{1});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    ColtMmu mmu(cfg_, t);
    mmu.translate(va(0));
    EXPECT_EQ(mmu.faTlb().size(), 0u);
    EXPECT_EQ(mmu.coalescedTlb().stats().insertions, 0u);
    EXPECT_EQ(mmu.regularTlb().stats().insertions, 1u);
}

TEST_F(ColtMmuTest, RunGrowsBackwardAndForward)
{
    ColtMmu mmu(cfg_, plain_);
    // Missing in the middle of chunk C (100 pages at +4096): the run
    // spans the whole aligned window around the page.
    mmu.translate(va(4130)); // window [4096, 4160) inside chunk C
    EXPECT_EQ(mmu.translate(va(4097)).level, HitLevel::Coalesced);
    EXPECT_EQ(mmu.translate(va(4159)).level, HitLevel::Coalesced);
}

TEST_F(ColtMmuTest, FaCapacityThrashes)
{
    // More hot runs than FA entries: CoLT-FA's restriction the paper
    // points out.
    MemoryMap m;
    for (std::uint64_t i = 0; i < 64; ++i)
        m.add(baseVpn + i * 128, Ppn{0x100000 + i * 256},
              PageCount{64});
    m.finalize();
    PageTable t = buildPageTable(m, false);
    ColtMmu mmu(cfg_, t);
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i)
            mmu.translate(vaOf(baseVpn + i * 128 + 64 * pass / 2));
    // Second pass pages sit in the same runs but the FA entries were
    // long evicted.
    EXPECT_GT(mmu.stats().page_walks, 96u);
}

TEST_F(ColtMmuTest, TranslationsAlwaysCorrect)
{
    ColtMmu mmu(cfg_, plain_);
    for (int pass = 0; pass < 2; ++pass) {
        for (const Chunk &c : map_.chunks()) {
            for (std::uint64_t i = 0; i < c.pages; i += 3) {
                const Vpn vpn = c.vpn + i;
                ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn,
                          map_.translate(vpn));
            }
        }
    }
}

TEST_F(ColtMmuTest, FlushClearsAllParts)
{
    ColtMmu mmu(cfg_, plain_);
    mmu.translate(va(600));
    mmu.translate(va(8192));
    mmu.flushAll();
    EXPECT_EQ(mmu.faTlb().size(), 0u);
    EXPECT_EQ(mmu.regularTlb().validCount(), 0u);
    EXPECT_EQ(mmu.coalescedTlb().validCount(), 0u);
}

} // namespace
} // namespace atlb
