/**
 * @file
 * Tests for 1GB page support (the separate small 1GB L2 TLB of paper
 * Section 2.1).
 */

#include <gtest/gtest.h>

#include "mmu/baseline_mmu.hh"
#include "mmu_test_util.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

/** 4GB chunk, fully 1GB-congruent. */
MemoryMap
giantMap()
{
    MemoryMap m;
    m.add(baseVpn, Ppn{baseVpn.raw() + (1ULL << 30)},
          PageCount{4 * giantPages});
    m.finalize();
    return m;
}

TEST(GiantPages, EligibilityRequiresAlignmentAndSpan)
{
    const MemoryMap m = giantMap();
    EXPECT_TRUE(m.giantEligible(baseVpn));
    EXPECT_TRUE(m.giantEligible(baseVpn + 3 * giantPages + 7));
    EXPECT_FALSE(m.giantEligible(baseVpn + 4 * giantPages));

    MemoryMap small;
    small.add(baseVpn, Ppn{0x40000}, PageCount{giantPages / 2});
    small.finalize();
    EXPECT_FALSE(small.giantEligible(baseVpn));
}

TEST(GiantPages, TableBuilderCreates1GLeaves)
{
    const MemoryMap m = giantMap();
    const PageTable t = buildPageTable(m, true, true);
    EXPECT_EQ(t.mapped1G(), 4u);
    EXPECT_EQ(t.mapped2M(), 0u);
    EXPECT_EQ(t.mapped4K(), 0u);
    const WalkResult w = t.walk(baseVpn + giantPages + 12345);
    EXPECT_TRUE(w.present);
    EXPECT_EQ(w.size, PageSize::Giant1G);
    EXPECT_EQ(w.ppn, m.translate(baseVpn + giantPages + 12345));
    // A 1GB leaf terminates the walk one level earlier than 2MB.
    EXPECT_EQ(w.levels, 2u);
}

TEST(GiantPages, Without1GFlagUses2M)
{
    const MemoryMap m = giantMap();
    const PageTable t = buildPageTable(m, true, false);
    EXPECT_EQ(t.mapped1G(), 0u);
    EXPECT_EQ(t.mapped2M(), 4u * 512);
}

TEST(GiantPages, MisalignedChunkFallsBackTo2M)
{
    MemoryMap m;
    // Congruent mod 512 but not mod 2^18.
    m.add(baseVpn, Ppn{baseVpn.raw() + 512},
          PageCount{2 * giantPages});
    m.finalize();
    const PageTable t = buildPageTable(m, true, true);
    EXPECT_EQ(t.mapped1G(), 0u);
    EXPECT_GT(t.mapped2M(), 0u);
}

TEST(GiantPages, MmuServesFromSeparate1GTlb)
{
    const MemoryMap m = giantMap();
    const PageTable t = buildPageTable(m, true, true);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t, "thp-1g");
    const TranslationResult first = mmu.translate(va(100));
    EXPECT_EQ(first.level, HitLevel::PageWalk);
    EXPECT_EQ(first.size, PageSize::Giant1G);
    EXPECT_EQ(mmu.l2Tlb1G().validCount(), 1u);
    EXPECT_EQ(mmu.l2Tlb().validCount(), 0u);
    // A page far away in the same 1GB block: L1 4K misses, 1G L2 hits.
    const TranslationResult r = mmu.translate(va(200000));
    EXPECT_EQ(r.level, HitLevel::L2Regular);
    EXPECT_EQ(r.ppn, m.translate(baseVpn + 200000));
}

TEST(GiantPages, FourEntriesCoverFourGigabytes)
{
    const MemoryMap m = giantMap();
    const PageTable t = buildPageTable(m, true, true);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t, "thp-1g");
    // Touch 4K-page-strided addresses across all 4GB: only 4 walks.
    for (std::uint64_t i = 0; i < 4000; ++i)
        mmu.translate(va(i * 262)); // ~1MB stride
    EXPECT_EQ(mmu.stats().page_walks, 4u);
}

TEST(GiantPages, InvalidateAndFlushCover1G)
{
    const MemoryMap m = giantMap();
    const PageTable t = buildPageTable(m, true, true);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, t, "thp-1g");
    mmu.translate(va(0));
    mmu.invalidatePage(baseVpn + 5);
    EXPECT_EQ(mmu.l2Tlb1G().validCount(), 0u);
    mmu.translate(va(0));
    mmu.flushAll();
    EXPECT_EQ(mmu.l2Tlb1G().validCount(), 0u);
}

TEST(GiantPages, MaxContigScenarioIsGiantEligible)
{
    ScenarioParams p;
    p.footprint_pages = 2 * giantPages;
    const MemoryMap m = buildScenario(ScenarioKind::MaxContig, p);
    // The max-contiguity builder aligns mod 512 only; 1GB eligibility
    // additionally needs 2^18 congruence, which the single chunk often
    // lacks — the allocation-flexibility argument in miniature. Just
    // confirm the query is well-defined across the footprint.
    for (Vpn v = p.va_base; v < p.va_base + p.footprint_pages;
         v += giantPages)
        (void)m.giantEligible(v);
}

} // namespace
} // namespace atlb
