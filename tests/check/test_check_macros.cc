/**
 * @file
 * Semantics of the ANCHOR_CHECK / ANCHOR_DCHECK macro family: the
 * always-on level fires in every build, and the checked level is
 * compiled out entirely — condition unevaluated — when the build does
 * not define ANCHORTLB_CHECKED.
 */

#include <gtest/gtest.h>

#include "common/check.hh"

namespace atlb
{
namespace
{

TEST(CheckMacros, CheckPassesSilently)
{
    int evaluations = 0;
    ANCHOR_CHECK(++evaluations == 1, "must not fire");
    ANCHOR_CHECK_EQ(2 + 2, 4, "must not fire");
    EXPECT_EQ(evaluations, 1);
}

TEST(CheckMacrosDeathTest, CheckFiresInEveryBuild)
{
    EXPECT_DEATH(ANCHOR_CHECK(1 == 2, "forced failure"),
                 "check failed");
    EXPECT_DEATH(ANCHOR_CHECK_EQ(3, 4, "forced failure"),
                 "3 vs 4");
}

TEST(CheckMacros, DcheckMatchesBuildFlavour)
{
    // checkedBuild() is the single source of truth tests can branch on.
#ifdef ANCHORTLB_CHECKED
    EXPECT_TRUE(checkedBuild());
#else
    EXPECT_FALSE(checkedBuild());
#endif
}

#ifdef ANCHORTLB_CHECKED

TEST(CheckMacrosDeathTest, DcheckFiresWhenChecked)
{
    EXPECT_DEATH(ANCHOR_DCHECK(false, "forced failure"), "check failed");
    EXPECT_DEATH(ANCHOR_DCHECK_EQ(1, 2, "forced failure"), "1 vs 2");
}

TEST(CheckMacros, DcheckEvaluatesConditionWhenChecked)
{
    int evaluations = 0;
    ANCHOR_DCHECK(++evaluations == 1, "must not fire");
    EXPECT_EQ(evaluations, 1);
}

#else

TEST(CheckMacros, DcheckIsFullyCompiledOutWhenUnchecked)
{
    // The condition must not even be evaluated: this is what makes
    // ANCHORTLB_CHECKED=OFF genuinely zero-overhead.
    int evaluations = 0;
    ANCHOR_DCHECK(++evaluations == 1, "never reached");
    ANCHOR_DCHECK(false, "never reached");
    ANCHOR_DCHECK_EQ(++evaluations, 99, "never reached");
    EXPECT_EQ(evaluations, 0);
}

#endif // ANCHORTLB_CHECKED

} // namespace
} // namespace atlb
