/**
 * @file
 * TranslationOracle / DifferentialOracle: silent on correct pipelines,
 * loud the moment a fast path and the authoritative page table diverge.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/translation_oracle.hh"
#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/mmu_test_util.hh"
#include "mmu/rmm_mmu.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

using test::baseVpn;

TEST(TranslationOracle, SilentOnCorrectTranslations)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable table = buildAnchorPageTable(map, AnchorDist::fromPages(16));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, AnchorDist::fromPages(16));
    TranslationOracle oracle(mmu, &map);

    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Vpn vpn = baseVpn + 512 + rng.nextBounded(1024);
        const TranslationResult r = oracle.translate(vaOf(vpn));
        EXPECT_EQ(r.ppn, map.translate(vpn));
    }
    EXPECT_EQ(oracle.verified(), 2000u);
}

TEST(TranslationOracleDeathTest, CatchesFabricatedTranslation)
{
    // Plant a corrupt anchor whose contiguity reaches past the end of
    // its 8-page run into unmapped VA space.
    MemoryMap map;
    map.add(Vpn{0x100000}, Ppn{0x5000}, PageCount{24});
    map.finalize();
    PageTable table = buildAnchorPageTable(map, AnchorDist::fromPages(16));
    table.setAnchorContiguity(Vpn{0x100000 + 16}, 16,
                              AnchorDist::fromPages(16));

    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, AnchorDist::fromPages(16));
    TranslationOracle oracle(mmu, &map);
    // Caches the over-long anchor entry (translation still correct).
    oracle.translate(vaOf(Vpn{0x100000} + 17));
    // The anchor fast path now fabricates a frame for an unmapped page
    // without ever walking; only the oracle can notice.
    EXPECT_DEATH(oracle.translate(vaOf(Vpn{0x100000} + 25)), "unmapped vpn");
}

TEST(TranslationOracleDeathTest, CatchesStaleTlbAfterMigration)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table);
    TranslationOracle oracle(mmu, &map);

    oracle.translate(test::va(2)); // now cached in the L1
    // Migration without shootdown: the cached frame goes stale.
    table.remap4K(baseVpn + 2, Ppn{0x4444});
    EXPECT_DEATH(oracle.translate(test::va(2)), "frame");
}

TEST(DifferentialOracle, AllFiveSchemesAgree)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable plain = buildPageTable(map, false);
    PageTable thp = buildPageTable(map, true);
    PageTable anchored = buildAnchorPageTable(map, AnchorDist::fromPages(32));

    MmuConfig cfg;
    BaselineMmu base(cfg, plain);
    ColtMmu colt(cfg, plain);
    ClusterMmu cluster(cfg, plain, false);
    RmmMmu rmm(cfg, thp, map);
    AnchorMmu anchor(cfg, anchored, AnchorDist::fromPages(32));

    DifferentialOracle diff(&map);
    diff.attach(base);
    diff.attach(colt);
    diff.attach(cluster);
    diff.attach(rmm);
    diff.attach(anchor);

    Rng rng(17);
    const std::uint64_t offsets[] = {0, 512, 4096, 8192};
    const std::uint64_t lens[] = {8, 1024, 100, 3};
    for (int i = 0; i < 1500; ++i) {
        const unsigned c = static_cast<unsigned>(rng.nextBounded(4));
        const Vpn vpn = baseVpn + offsets[c] + rng.nextBounded(lens[c]);
        EXPECT_EQ(diff.translateAll(vaOf(vpn)), map.translate(vpn));
    }
    EXPECT_EQ(diff.steps(), 1500u);
    for (const TranslationOracle &oracle : diff.oracles())
        EXPECT_EQ(oracle.verified(), 1500u);
}

TEST(TranslationOracle, SilentOnCorrectNestedTranslations)
{
    // Nested mode: the oracle re-derives every frame through both the
    // guest and the host dimension.
    MemoryMap guest;
    guest.add(Vpn{0x100000}, Ppn{0x5000}, PageCount{24});
    guest.finalize();
    MemoryMap host;
    host.add(Vpn{0x5000}, Ppn{0x9000}, PageCount{24}); // GPA -> HPA
    host.finalize();
    PageTable guest_table = buildAnchorPageTable(guest, AnchorDist::fromPages(16));
    PageTable host_table = buildPageTable(host, false);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, guest_table, AnchorDist::fromPages(16));
    mmu.setNested(&host_table, &host);
    TranslationOracle oracle(mmu, &guest);

    for (std::uint64_t i = 0; i < 24; ++i) {
        const TranslationResult r = oracle.translate(vaOf(Vpn{0x100000} + i));
        EXPECT_EQ(r.ppn, Ppn{0x9000} + i);
    }
    EXPECT_EQ(oracle.verified(), 24u);
}

TEST(TranslationOracleDeathTest, CatchesGuestFrameUnmappedInHost)
{
    MemoryMap guest;
    guest.add(Vpn{0x100000}, Ppn{0x5000}, PageCount{24});
    guest.finalize();
    MemoryMap host;
    host.add(Vpn{0x5000}, Ppn{0x9000}, PageCount{24});
    host.finalize();
    PageTable guest_table = buildPageTable(guest, false);
    PageTable host_table = buildPageTable(host, false);

    MmuConfig cfg;
    BaselineMmu mmu(cfg, guest_table);
    mmu.setNested(&host_table, &host);
    TranslationOracle oracle(mmu, &guest);

    // Ballooning without a shootdown: the guest page now names a GPA
    // the host never mapped. verify() must refuse whatever result the
    // fast path fabricated for it.
    guest_table.remap4K(Vpn{0x100000 + 2}, Ppn{0x7f000});
    TranslationResult res;
    res.ppn = Ppn{0x9000 + 2};
    EXPECT_DEATH(oracle.verify(vaOf(Vpn{0x100000} + 2), res),
                 "unmapped in host");
}

TEST(TranslationOracleDeathTest, CatchesGuestFrameMismatchOnWalk)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table);
    TranslationOracle oracle(mmu, &map);

    // A walk result whose guest frame disagrees with the table: the
    // combined frame is right, so only the guest-dimension cross-check
    // can catch it.
    TranslationResult res;
    res.ppn = map.translate(baseVpn + 1);
    res.level = HitLevel::PageWalk;
    res.guest_ppn = res.ppn + 0x123;
    EXPECT_DEATH(oracle.verify(test::va(1), res),
                 "guest frame mismatch");
}

TEST(TranslationOracleDeathTest, CatchesTableDisagreeingWithMapping)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable table = buildPageTable(map, false);
    // A wrongly *built* table: walk and fast path agree with each
    // other but not with the OS mapping — only ground truth #2 sees it.
    table.remap4K(baseVpn + 1, Ppn{0x7777});

    MmuConfig cfg;
    BaselineMmu mmu(cfg, table);
    TranslationOracle oracle(mmu, &map);
    EXPECT_DEATH(oracle.translate(test::va(1)),
                 "disagrees with the OS mapping");
}

TEST(DifferentialOracleDeathTest, NoAttachedMmusIsFatal)
{
    DifferentialOracle diff;
    EXPECT_DEATH(diff.translateAll(vaOf(Vpn{0x1000})), "no MMUs attached");
}

TEST(DifferentialOracleDeathTest, CatchesSchemeDivergence)
{
    const MemoryMap map = test::makeVariedMap();
    PageTable plain = buildPageTable(map, false);
    PageTable plain2 = buildPageTable(map, false);

    MmuConfig cfg;
    BaselineMmu a(cfg, plain);
    BaselineMmu b(cfg, plain2, "base2");
    DifferentialOracle diff(&map);
    diff.attach(a);
    diff.attach(b);

    diff.translateAll(test::va(1)); // both agree while tables match
    // One scheme's table silently drifts from the shared mapping.
    plain2.remap4K(baseVpn + 1, Ppn{0x7777});
    EXPECT_DEATH(diff.translateAll(test::va(1)), "frame|disagree");
}

} // namespace
} // namespace atlb
