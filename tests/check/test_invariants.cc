/**
 * @file
 * Corruption-injection tests for the structural invariant checkers:
 * deliberately break each guarded invariant and assert the checker
 * reports it (and that the verify*() wrappers die loudly). A checker
 * that cannot detect planted corruption proves nothing about runs
 * where it stays silent.
 */

#include <gtest/gtest.h>

#include "check/invariants.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/mmu_config.hh"
#include "os/memory_map.hh"
#include "os/table_builder.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{
namespace
{

TlbEntry
makeEntry(EntryKind kind, std::uint64_t key, std::uint64_t ppn)
{
    TlbEntry e;
    e.kind = kind;
    e.key = TlbKey{key};
    e.ppn = Ppn{ppn};
    e.valid = true;
    return e;
}

// ---------------------------------------------------------------- TLB --

TEST(TlbInvariants, CleanTlbPasses)
{
    SetAssocTlb tlb(16, 4, "t");
    for (std::uint64_t k = 0; k < 12; ++k)
        tlb.insert(makeEntry(EntryKind::Page4K, k, 100 + k));
    EXPECT_TRUE(checkTlbInvariants(tlb).ok());
    verifyTlbInvariants(tlb); // must not die
}

TEST(TlbInvariants, DetectsDuplicateTagInSet)
{
    SetAssocTlb tlb(16, 4, "t");
    tlb.insert(makeEntry(EntryKind::Page4K, 4, 100));
    // Plant a second valid entry with the same (kind, key) in another
    // way of the same set — unreachable through insert(), which
    // overwrites in place.
    const unsigned set = static_cast<unsigned>(4 % tlb.numSets());
    tlb.entryAtForTest(set, 3) = makeEntry(EntryKind::Page4K, 4, 200);
    tlb.setLastUseForTest(set, 3, 1);

    const InvariantReport report = checkTlbInvariants(tlb);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("duplicate tag"),
              std::string::npos);
}

TEST(TlbInvariants, DetectsEntryInWrongSet)
{
    SetAssocTlb tlb(16, 4, "t");
    // Key 1 indexes set 1; plant it in set 0.
    tlb.entryAtForTest(0, 0) = makeEntry(EntryKind::Page4K, 1, 100);
    tlb.setLastUseForTest(0, 0, 1);

    const InvariantReport report = checkTlbInvariants(tlb);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("indexes set"),
              std::string::npos);
}

TEST(TlbInvariants, DetectsAmbiguousLruOrder)
{
    SetAssocTlb tlb(16, 4, "t");
    tlb.insert(makeEntry(EntryKind::Page4K, 0, 100));
    tlb.insert(makeEntry(EntryKind::Page4K, 4, 101)); // same set (0)
    const unsigned set = 0;
    tlb.setLastUseForTest(set, 1, tlb.lastUseAt(set, 0));

    const InvariantReport report = checkTlbInvariants(tlb);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("LRU"), std::string::npos);
}

TEST(TlbInvariants, DetectsTimestampBeyondClock)
{
    SetAssocTlb tlb(16, 4, "t");
    tlb.insert(makeEntry(EntryKind::Page4K, 0, 100));
    tlb.setLastUseForTest(0, 0, tlb.lruTick() + 1000);

    const InvariantReport report = checkTlbInvariants(tlb);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("exceeds clock"),
              std::string::npos);
}

TEST(TlbInvariantsDeathTest, VerifyDiesOnDuplicateTag)
{
    SetAssocTlb tlb(16, 4, "t");
    tlb.insert(makeEntry(EntryKind::Page4K, 4, 100));
    const unsigned set = static_cast<unsigned>(4 % tlb.numSets());
    tlb.entryAtForTest(set, 3) = makeEntry(EntryKind::Page4K, 4, 200);
    tlb.setLastUseForTest(set, 3, 1);
    EXPECT_DEATH(verifyTlbInvariants(tlb), "duplicate tag");
}

// ------------------------------------------------------------- anchor --

/** 24 mapped pages, then a hole; anchor distance 16. */
constexpr Vpn anchorBase{0x100000};
constexpr std::uint64_t anchorDistance = 16;
constexpr AnchorDist anchorDist = AnchorDist::fromPages(anchorDistance);

MemoryMap
shortRunMap()
{
    MemoryMap m;
    m.add(anchorBase, Ppn{0x5000},
          PageCount{24}); // second anchor's run is 8 pages
    m.finalize();
    return m;
}

TEST(AnchorInvariants, CleanAnchorStatePasses)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    for (std::uint64_t i = 0; i < 24; ++i)
        mmu.translate(vaOf(anchorBase + i));
    EXPECT_TRUE(checkAnchorInvariants(mmu).ok());
    verifyAnchorInvariants(mmu); // must not die
}

TEST(AnchorInvariants, DetectsContiguityCrossingUnmappedPage)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    // Corrupt the OS state: the second anchor (avpn +16) really covers
    // 8 pages; claim the full distance, crossing into the hole at +24.
    table.setAnchorContiguity(anchorBase + 16, anchorDistance,
                              anchorDist);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    // Accessing a *mapped* page caches the over-long anchor entry; the
    // translation itself is still correct, so only the invariant
    // checker can expose the latent corruption.
    mmu.translate(vaOf(anchorBase + 17));

    const InvariantReport report = checkAnchorInvariants(mmu);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("crosses unmapped"),
              std::string::npos);
}

TEST(AnchorInvariants, DetectsStaleContiguityAfterMigration)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    mmu.translate(vaOf(anchorBase + 3)); // caches anchor at +0

    // The OS migrates a page inside the anchor's run but forgets the
    // shootdown: the cached contiguity is now stale.
    table.remap4K(anchorBase + 5, Ppn{0x9999});

    const InvariantReport report = checkAnchorInvariants(mmu);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("disagrees"),
              std::string::npos);
}

TEST(AnchorInvariants, DetectsContiguityOutOfRange)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);

    // Plant an anchor entry whose cached contiguity is zero — a value
    // insert() can never produce — straight into the L2.
    SetAssocTlb &l2 = mmu.l2TlbForTest();
    TlbEntry e = makeEntry(EntryKind::Anchor,
                           anchorBase.raw() >> 4 /* log2(distance) */,
                           0x5000);
    e.aux = 0;
    const unsigned set = static_cast<unsigned>(e.key.raw() % l2.numSets());
    l2.entryAtForTest(set, 0) = e;
    l2.setLastUseForTest(set, 0, 1);

    const InvariantReport report = checkAnchorInvariants(mmu);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("outside"),
              std::string::npos);

    // Claiming more than the distance is equally unrepresentable.
    e.aux = static_cast<std::uint32_t>(anchorDistance) + 1;
    l2.entryAtForTest(set, 0) = e;
    const InvariantReport over = checkAnchorInvariants(mmu);
    ASSERT_FALSE(over.ok());
    EXPECT_NE(over.violations.front().find("outside"),
              std::string::npos);
}

/** Host environment mapping exactly the GPAs of shortRunMap(). */
MemoryMap
shortRunHostMap()
{
    MemoryMap m;
    m.add(Vpn{0x5000} /* GPA as the host's "vpn" dimension */,
          Ppn{0x9000}, PageCount{24});
    m.finalize();
    return m;
}

TEST(AnchorInvariants, NestedCleanStatePasses)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    const MemoryMap host_map = shortRunHostMap();
    PageTable host_table = buildPageTable(host_map, false);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    mmu.setNested(&host_table, &host_map);
    for (std::uint64_t i = 0; i < 24; ++i)
        mmu.translate(vaOf(anchorBase + i));
    EXPECT_TRUE(checkAnchorInvariants(mmu).ok());
}

TEST(AnchorInvariants, DetectsGuestFrameUnmappedInHost)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    const MemoryMap host_map = shortRunHostMap();
    PageTable host_table = buildPageTable(host_map, false);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    mmu.setNested(&host_table, &host_map);
    mmu.translate(vaOf(anchorBase + 3)); // caches the anchor at +0

    // Ballooning without a shootdown: a page inside the cached anchor's
    // run now points at a GPA the host no longer maps.
    table.remap4K(anchorBase + 5, Ppn{0x7f000});

    const InvariantReport report = checkAnchorInvariants(mmu);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("unmapped in host"),
              std::string::npos);
}

TEST(AnchorInvariants, DetectsStaleCombinedFrameAfterHostMigration)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    const MemoryMap host_map = shortRunHostMap();
    PageTable host_table = buildPageTable(host_map, false);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    mmu.setNested(&host_table, &host_map);
    mmu.translate(vaOf(anchorBase + 3));

    // The *host* migrates a frame inside the run: the anchor's combined
    // GVA -> HPA arithmetic is now stale in the host dimension.
    host_table.remap4K(Vpn{0x5000 + 5}, Ppn{0x4444});

    const InvariantReport report = checkAnchorInvariants(mmu);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("disagrees"),
              std::string::npos);
}

TEST(AnchorInvariantsDeathTest, VerifyDiesOnCorruptContiguity)
{
    const MemoryMap map = shortRunMap();
    PageTable table = buildAnchorPageTable(map, anchorDist);
    table.setAnchorContiguity(anchorBase + 16, anchorDistance,
                              anchorDist);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, anchorDist);
    mmu.translate(vaOf(anchorBase + 17));
    EXPECT_DEATH(verifyAnchorInvariants(mmu), "crosses unmapped");
}

// -------------------------------------------------------------- buddy --

TEST(BuddyInvariants, CleanAllocatorPasses)
{
    BuddyAllocator buddy(256, 6);
    const Ppn a = buddy.allocate(2);
    const Ppn b = buddy.allocate(0);
    ASSERT_NE(a, invalidPpn);
    ASSERT_NE(b, invalidPpn);
    buddy.free(a, 2);
    EXPECT_TRUE(checkBuddyInvariants(buddy).ok());
    verifyBuddyInvariants(buddy); // must not die
    buddy.free(b, 0);
    EXPECT_TRUE(checkBuddyInvariants(buddy).ok());
}

TEST(BuddyInvariants, DetectsDoubleFree)
{
    BuddyAllocator buddy(64, 6);
    const Ppn a = buddy.allocate(0);
    ASSERT_NE(a, invalidPpn);
    buddy.free(a, 0); // coalesces back into the big block
    buddy.free(a, 0); // double free: overlaps the merged block

    const InvariantReport report = checkBuddyInvariants(buddy);
    ASSERT_FALSE(report.ok());
    bool mentions_overlap_or_count = false;
    for (const std::string &v : report.violations) {
        if (v.find("overlap") != std::string::npos ||
            v.find("counter") != std::string::npos) {
            mentions_overlap_or_count = true;
        }
    }
    EXPECT_TRUE(mentions_overlap_or_count);
}

TEST(BuddyInvariants, DetectsMisalignedFreeBlock)
{
    BuddyAllocator buddy(64, 6);
    const Ppn all = buddy.allocate(6); // drain the pool: no real blocks
    ASSERT_NE(all, invalidPpn);
    buddy.plantFreeBlockForTest(Ppn{1}, 1); // order-1 block must be 2-aligned

    const InvariantReport report = checkBuddyInvariants(buddy);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("misaligned"),
              std::string::npos);
}

TEST(BuddyInvariants, DetectsBlockPastPoolEnd)
{
    BuddyAllocator buddy(64, 6);
    const Ppn all = buddy.allocate(6);
    ASSERT_NE(all, invalidPpn);
    buddy.plantFreeBlockForTest(Ppn{64}, 0); // aligned, but outside the pool

    const InvariantReport report = checkBuddyInvariants(buddy);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations.front().find("past pool end"),
              std::string::npos);
}

TEST(BuddyInvariants, DetectsUncoalescedBuddies)
{
    BuddyAllocator buddy(64, 6);
    const Ppn all = buddy.allocate(6);
    ASSERT_NE(all, invalidPpn);
    // Two free buddies at the same order are unreachable state under
    // eager coalescing — free() would have merged them to order 1.
    buddy.plantFreeBlockForTest(Ppn{4}, 0);
    buddy.plantFreeBlockForTest(Ppn{5}, 0);

    const InvariantReport report = checkBuddyInvariants(buddy);
    ASSERT_FALSE(report.ok());
    bool mentions_coalesce = false;
    for (const std::string &v : report.violations)
        if (v.find("failed to coalesce") != std::string::npos)
            mentions_coalesce = true;
    EXPECT_TRUE(mentions_coalesce);
}

TEST(BuddyInvariantsDeathTest, VerifyDiesOnDoubleFree)
{
    BuddyAllocator buddy(64, 6);
    const Ppn a = buddy.allocate(0);
    ASSERT_NE(a, invalidPpn);
    buddy.free(a, 0);
    buddy.free(a, 0);
    EXPECT_DEATH(verifyBuddyInvariants(buddy), "buddy invariant");
}

} // namespace
} // namespace atlb
