/**
 * @file
 * Tests for the simulation driver and its derived metrics.
 */

#include <gtest/gtest.h>

#include "mmu/baseline_mmu.hh"
#include "os/table_builder.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"

#include "../mmu/mmu_test_util.hh"

namespace atlb
{
namespace
{

using test::baseVpn;

/** Trace that touches a fixed list of page offsets once each. */
class ListTrace : public TraceSource
{
  public:
    explicit ListTrace(std::vector<std::uint64_t> offsets)
        : offsets_(std::move(offsets))
    {
    }

    bool
    next(MemAccess &out) override
    {
        if (pos_ >= offsets_.size())
            return false;
        out.vaddr = vaOf(baseVpn + offsets_[pos_++]);
        out.write = false;
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    std::vector<std::uint64_t> offsets_;
    std::size_t pos_ = 0;
};

class SimulatorTest : public ::testing::Test
{
  protected:
    SimulatorTest()
        : map_(test::makeVariedMap()), table_(buildPageTable(map_, false))
    {
    }

    MemoryMap map_;
    PageTable table_;
    MmuConfig cfg_;
};

TEST_F(SimulatorTest, CountsAndCyclesMatchHandComputation)
{
    BaselineMmu mmu(cfg_, table_);
    // page 0 walks; page 0 again hits L1; page 1 walks.
    ListTrace trace({0, 0, 1});
    const SimResult r = runSimulation(mmu, trace, 0.5);
    EXPECT_EQ(r.stats.accesses, 3u);
    EXPECT_EQ(r.stats.l1_hits, 1u);
    EXPECT_EQ(r.stats.page_walks, 2u);
    EXPECT_EQ(r.misses(), 2u);
    EXPECT_DOUBLE_EQ(r.instructions, 6.0);
    const Cycles expected = 2 * (cfg_.l2_hit_cycles + cfg_.walk_cycles);
    EXPECT_EQ(r.stats.translation_cycles, expected);
    EXPECT_DOUBLE_EQ(r.translationCpi(),
                     static_cast<double>(expected) / 6.0);
}

TEST_F(SimulatorTest, CycleBucketsSumToTotal)
{
    BaselineMmu mmu(cfg_, table_);
    std::vector<std::uint64_t> offsets;
    for (std::uint64_t i = 0; i < 600; ++i)
        offsets.push_back(512 + (i * 7) % 1024);
    ListTrace trace(offsets);
    const SimResult r = runSimulation(mmu, trace, 0.33);
    EXPECT_EQ(r.l2_hit_cycles + r.coalesced_cycles + r.walk_cycles,
              r.stats.translation_cycles);
    EXPECT_NEAR(r.cpiL2() + r.cpiCoalesced() + r.cpiWalk(),
                r.translationCpi(), 1e-9);
}

TEST_F(SimulatorTest, FractionsOverL2Accesses)
{
    BaselineMmu mmu(cfg_, table_);
    ListTrace trace({0, 0, 1});
    const SimResult r = runSimulation(mmu, trace, 1.0);
    // Two L2-level accesses (the two walks), zero regular L2 hits.
    EXPECT_DOUBLE_EQ(r.regularHitFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.coalescedHitFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.l2MissFraction(), 1.0);
}

TEST_F(SimulatorTest, EmptyTraceYieldsZeroes)
{
    BaselineMmu mmu(cfg_, table_);
    ListTrace trace({});
    const SimResult r = runSimulation(mmu, trace, 0.5);
    EXPECT_EQ(r.stats.accesses, 0u);
    EXPECT_DOUBLE_EQ(r.translationCpi(), 0.0);
    EXPECT_DOUBLE_EQ(r.regularHitFraction(), 0.0);
}

TEST_F(SimulatorTest, PatternTraceDrivesSimulation)
{
    WorkloadSpec w;
    w.name = "mini";
    w.footprint_bytes = 8 * pageBytes; // fits chunk A exactly
    w.page_reuse = 0.0;
    PatternPhase p;
    p.kind = PatternKind::Random;
    w.phases = {p};
    PatternTrace trace(w, vaOf(baseVpn), 5000, 3);
    BaselineMmu mmu(cfg_, table_);
    const SimResult r = runSimulation(mmu, trace, w.mem_per_instr);
    EXPECT_EQ(r.stats.accesses, 5000u);
    // Eight pages fit in L1: after at most 8 walks, everything hits.
    EXPECT_LE(r.misses(), 8u);
}

} // namespace
} // namespace atlb
