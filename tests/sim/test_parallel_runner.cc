/**
 * @file
 * Determinism regression tests for the parallel sweep engine: for any
 * thread count, results must be identical — field for field — to the
 * serial ExperimentContext path. This is the guarantee that lets every
 * figure bench run parallel by default (ISSUE: THREADS=1 vs THREADS=8
 * byte-identical output).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/parallel_runner.hh"

namespace atlb
{
namespace
{

SimOptions
quickOptions(unsigned threads)
{
    SimOptions opts;
    opts.accesses = 15'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02; // shrink footprints for test speed
    opts.threads = threads;
    return opts;
}

/** 3 workloads x 3 scenarios x all schemes: the regression grid. */
std::vector<CellJob>
regressionGrid()
{
    const std::vector<std::string> workloads = {"sphinx3", "omnetpp",
                                                "canneal"};
    const std::vector<ScenarioKind> scenarios = {
        ScenarioKind::Demand, ScenarioKind::MedContig,
        ScenarioKind::MaxContig};
    std::vector<CellJob> jobs;
    for (const auto &workload : workloads)
        for (const ScenarioKind scenario : scenarios)
            for (const Scheme scheme : allSchemes)
                jobs.push_back({workload, scenario, scheme, {}});
    return jobs;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

TEST(ParallelRunner, EightThreadsMatchSerialOnFullGrid)
{
    const std::vector<CellJob> jobs = regressionGrid();

    ParallelRunner serial(quickOptions(1));
    ParallelRunner parallel(quickOptions(8));
    const std::vector<SimResult> a = serial.run(jobs);
    const std::vector<SimResult> b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].workload + "/" +
                     scenarioName(jobs[i].scenario) + "/" +
                     schemeName(jobs[i].scheme));
        expectIdentical(a[i], b[i]);
    }
}

TEST(ParallelRunner, ParallelMatchesExperimentContextCellByCell)
{
    // The engine must reproduce the original serial API exactly, not
    // just itself at threads=1.
    const std::vector<CellJob> jobs = regressionGrid();

    ExperimentContext ctx(quickOptions(1));
    ParallelRunner parallel(quickOptions(8));
    const std::vector<SimResult> results = parallel.run(jobs);

    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].workload + "/" +
                     scenarioName(jobs[i].scenario) + "/" +
                     schemeName(jobs[i].scheme));
        const SimResult expect = ctx.run(
            jobs[i].workload, jobs[i].scenario, jobs[i].scheme,
            jobs[i].distance_override);
        expectIdentical(expect, results[i]);
    }
}

TEST(ParallelRunner, DistanceOverrideHonoured)
{
    const CellJob job = {"canneal", ScenarioKind::MedContig,
                         Scheme::Anchor, 64};

    ParallelRunner parallel(quickOptions(4));
    const std::vector<SimResult> results = parallel.run({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].anchor_distance, 64u);

    ExperimentContext ctx(quickOptions(1));
    expectIdentical(ctx.run(job.workload, job.scenario, job.scheme, 64),
                    results[0]);
}

TEST(ParallelRunner, RunCellsRoutesThroughContextWhenSerial)
{
    const std::vector<CellJob> jobs = {
        {"canneal", ScenarioKind::Demand, Scheme::Base, {}},
        {"canneal", ScenarioKind::Demand, Scheme::Anchor, {}},
    };

    ExperimentContext serial_ctx(quickOptions(1));
    const std::vector<SimResult> serial = runCells(serial_ctx, jobs);

    ExperimentContext parallel_ctx(quickOptions(8));
    const std::vector<SimResult> parallel = runCells(parallel_ctx, jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(ParallelRunner, EmptyJobListYieldsEmptyResults)
{
    ParallelRunner parallel(quickOptions(8));
    EXPECT_TRUE(parallel.run({}).empty());
}

TEST(ParallelRunner, RepeatedParallelRunsAreStable)
{
    // Two runs of the same jobs through fresh pools must agree: no
    // hidden shared state survives between runs.
    const std::vector<CellJob> jobs = {
        {"sphinx3", ScenarioKind::HighContig, Scheme::AnchorIdeal, {}},
    };
    ParallelRunner parallel(quickOptions(8));
    const std::vector<SimResult> first = parallel.run(jobs);
    const std::vector<SimResult> second = parallel.run(jobs);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    expectIdentical(first[0], second[0]);
}

} // namespace
} // namespace atlb
