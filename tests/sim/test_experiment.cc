/**
 * @file
 * Tests for the experiment context (cell runner + caching).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace atlb
{
namespace
{

SimOptions
quickOptions()
{
    SimOptions opts;
    opts.accesses = 30'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02; // shrink footprints for test speed
    return opts;
}

TEST(Experiment, RunProducesLabelledResult)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(r.workload, "canneal");
    EXPECT_EQ(r.scenario, "medium");
    EXPECT_EQ(r.scheme, "Base");
    EXPECT_EQ(r.stats.accesses, 30'000u);
    EXPECT_EQ(r.anchor_distance, 0u);
}

TEST(Experiment, AnchorRunRecordsDistance)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor);
    EXPECT_GT(r.anchor_distance, 0u);
    EXPECT_EQ(r.anchor_distance,
              ctx.dynamicDistance("canneal", ScenarioKind::MedContig));
}

TEST(Experiment, DistanceOverrideHonoured)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor, 64);
    EXPECT_EQ(r.anchor_distance, 64u);
}

TEST(Experiment, RunsAreReproducible)
{
    ExperimentContext a(quickOptions());
    ExperimentContext b(quickOptions());
    const SimResult ra =
        a.run("milc", ScenarioKind::LowContig, Scheme::Cluster);
    const SimResult rb =
        b.run("milc", ScenarioKind::LowContig, Scheme::Cluster);
    EXPECT_EQ(ra.misses(), rb.misses());
    EXPECT_EQ(ra.stats.translation_cycles, rb.stats.translation_cycles);
}

TEST(Experiment, CacheSurvivesSchemeSwitches)
{
    ExperimentContext ctx(quickOptions());
    const auto &m1 = ctx.mapping("milc", ScenarioKind::LowContig);
    ctx.run("milc", ScenarioKind::LowContig, Scheme::Base);
    ctx.run("milc", ScenarioKind::LowContig, Scheme::Thp);
    const auto &m2 = ctx.mapping("milc", ScenarioKind::LowContig);
    EXPECT_EQ(&m1, &m2) << "mapping must be cached across schemes";
}

TEST(Experiment, ClearCacheRebuilds)
{
    ExperimentContext ctx(quickOptions());
    ctx.mapping("milc", ScenarioKind::LowContig);
    ctx.clearCache();
    // Must not crash and must rebuild deterministically.
    const auto &m = ctx.mapping("milc", ScenarioKind::LowContig);
    EXPECT_GT(m.mappedPages(), 0u);
}

TEST(Experiment, IdealAnchorAtLeastAsGoodAsDynamic)
{
    ExperimentContext ctx(quickOptions());
    const SimResult dyn =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor);
    const SimResult ideal =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::AnchorIdeal);
    EXPECT_LE(ideal.misses(), dyn.misses());
}

TEST(Experiment, BaseAndThpIdenticalWithoutHugeChunks)
{
    // The low-contiguity mapping has no huge-eligible blocks, so THP
    // degenerates to the baseline (paper Fig. 9, low columns).
    ExperimentContext ctx(quickOptions());
    const SimResult base =
        ctx.run("astar_biglake", ScenarioKind::LowContig, Scheme::Base);
    const SimResult thp =
        ctx.run("astar_biglake", ScenarioKind::LowContig, Scheme::Thp);
    EXPECT_EQ(base.misses(), thp.misses());
}

TEST(Experiment, RelativeMissesHelper)
{
    EXPECT_DOUBLE_EQ(relativeMisses(50, 100), 0.5);
    EXPECT_DOUBLE_EQ(relativeMisses(100, 100), 1.0);
    EXPECT_DOUBLE_EQ(relativeMisses(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(relativeMisses(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(relativeMisses(5, 0), 1.0);
}

TEST(Experiment, OptionsFromEnvDefaults)
{
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_GT(opts.accesses, 0u);
    EXPECT_GT(opts.footprint_scale, 0.0);
    EXPECT_LE(opts.footprint_scale, 1.0);
    EXPECT_GE(opts.threads, 1u);
    EXPECT_GE(opts.cache_pairs, 1u);
}

TEST(Experiment, OptionsFromEnvReadsCachePairs)
{
    ::setenv("ANCHORTLB_CACHE_PAIRS", "7", 1);
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_EQ(opts.cache_pairs, 7u);
    EXPECT_TRUE(opts.cache_pairs_from_env);
    ::unsetenv("ANCHORTLB_CACHE_PAIRS");
    EXPECT_FALSE(SimOptions::fromEnv().cache_pairs_from_env);
}

TEST(Experiment, OptionsFromEnvReadsShardKnobs)
{
    EXPECT_EQ(SimOptions::fromEnv().shards, 1u); // serial by default
    ::setenv("ANCHORTLB_SHARDS", "4", 1);
    ::setenv("ANCHORTLB_SHARD_WARMUP", "4096", 1);
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_EQ(opts.shards, 4u);
    EXPECT_EQ(opts.shard_warmup, 4'096u);
    ::unsetenv("ANCHORTLB_SHARDS");
    ::unsetenv("ANCHORTLB_SHARD_WARMUP");
}

TEST(Experiment, SizeCacheForPairsGrowsToRunShape)
{
    SimOptions opts = quickOptions();
    opts.cache_pairs = 2; // built-in default
    ExperimentContext ctx(opts);
    EXPECT_EQ(ctx.cacheCapacity(), 2u);

    ctx.sizeCacheForPairs(6);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);

    // Never shrinks below a larger current capacity or the default.
    ctx.sizeCacheForPairs(3);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);
    ctx.sizeCacheForPairs(0);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);
}

TEST(Experiment, SizeCacheForPairsRespectsEnvClamp)
{
    // An explicit ANCHORTLB_CACHE_PAIRS is a memory budget: run-shape
    // sizing may shrink-to-fit below it but never exceed it.
    SimOptions opts = quickOptions();
    opts.cache_pairs = 3;
    opts.cache_pairs_from_env = true;
    ExperimentContext ctx(opts);

    ctx.sizeCacheForPairs(10);
    EXPECT_EQ(ctx.cacheCapacity(), 3u);
    ctx.sizeCacheForPairs(2);
    EXPECT_EQ(ctx.cacheCapacity(), 2u);
    ctx.sizeCacheForPairs(0);
    EXPECT_EQ(ctx.cacheCapacity(), 1u); // capacity floor is one pair
}

TEST(Experiment, CacheCountersTrackHitsAndMisses)
{
    ExperimentContext ctx(quickOptions());
    EXPECT_EQ(ctx.cacheCounters().lookups, 0u);

    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(ctx.cacheCounters().lookups, 1u);
    EXPECT_EQ(ctx.cacheCounters().hits, 0u);

    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Thp);
    EXPECT_EQ(ctx.cacheCounters().lookups, 2u);
    EXPECT_EQ(ctx.cacheCounters().hits, 1u);
    EXPECT_DOUBLE_EQ(ctx.cacheCounters().hitRate(), 0.5);

    ctx.clearCache();
    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(ctx.cacheCounters().lookups, 3u);
    EXPECT_EQ(ctx.cacheCounters().hits, 1u); // cleared cache = miss
}

TEST(Experiment, CacheEvictionDoesNotChangeResults)
{
    // Thrash pattern: alternate pairs so a capacity-1 cache evicts and
    // rebuilds every call. Rebuilt state must reproduce cached state.
    SimOptions small = quickOptions();
    small.cache_pairs = 1;
    SimOptions big = quickOptions();
    big.cache_pairs = 8;

    ExperimentContext thrash(small);
    ExperimentContext warm(big);

    const std::vector<std::pair<std::string, ScenarioKind>> pairs = {
        {"canneal", ScenarioKind::Demand},
        {"canneal", ScenarioKind::MedContig},
        {"sphinx3", ScenarioKind::Demand},
        {"canneal", ScenarioKind::Demand}, // revisit after eviction
    };
    for (const auto &[workload, scenario] : pairs) {
        for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
            const SimResult a = thrash.run(workload, scenario, scheme);
            const SimResult b = warm.run(workload, scenario, scheme);
            EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
            EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
            EXPECT_EQ(a.anchor_distance, b.anchor_distance);
        }
    }
}

TEST(Experiment, RevisitedPairSurvivesLruSweep)
{
    // With capacity 2, touching A, B, A, C must keep A alive (LRU
    // evicts B); the revisit must still return consistent state.
    SimOptions opts = quickOptions();
    opts.cache_pairs = 2;
    ExperimentContext ctx(opts);

    const std::uint64_t first =
        ctx.dynamicDistance("canneal", ScenarioKind::MedContig);
    ctx.dynamicDistance("sphinx3", ScenarioKind::MedContig);
    ctx.dynamicDistance("canneal", ScenarioKind::MedContig);
    ctx.dynamicDistance("omnetpp", ScenarioKind::MedContig);
    EXPECT_EQ(ctx.dynamicDistance("canneal", ScenarioKind::MedContig),
              first);
}

} // namespace
} // namespace atlb
