/**
 * @file
 * Tests for the experiment context (cell runner + caching).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace atlb
{
namespace
{

SimOptions
quickOptions()
{
    SimOptions opts;
    opts.accesses = 30'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02; // shrink footprints for test speed
    return opts;
}

TEST(Experiment, RunProducesLabelledResult)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(r.workload, "canneal");
    EXPECT_EQ(r.scenario, "medium");
    EXPECT_EQ(r.scheme, "Base");
    EXPECT_EQ(r.stats.accesses, 30'000u);
    EXPECT_EQ(r.anchor_distance, 0u);
}

TEST(Experiment, AnchorRunRecordsDistance)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor);
    EXPECT_GT(r.anchor_distance, 0u);
    EXPECT_EQ(r.anchor_distance,
              ctx.dynamicDistance("canneal", ScenarioKind::MedContig));
}

TEST(Experiment, DistanceOverrideHonoured)
{
    ExperimentContext ctx(quickOptions());
    const SimResult r =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor, 64);
    EXPECT_EQ(r.anchor_distance, 64u);
}

TEST(Experiment, RunsAreReproducible)
{
    ExperimentContext a(quickOptions());
    ExperimentContext b(quickOptions());
    const SimResult ra =
        a.run("milc", ScenarioKind::LowContig, Scheme::Cluster);
    const SimResult rb =
        b.run("milc", ScenarioKind::LowContig, Scheme::Cluster);
    EXPECT_EQ(ra.misses(), rb.misses());
    EXPECT_EQ(ra.stats.translation_cycles, rb.stats.translation_cycles);
}

TEST(Experiment, CacheSurvivesSchemeSwitches)
{
    ExperimentContext ctx(quickOptions());
    const auto &m1 = ctx.mapping("milc", ScenarioKind::LowContig);
    ctx.run("milc", ScenarioKind::LowContig, Scheme::Base);
    ctx.run("milc", ScenarioKind::LowContig, Scheme::Thp);
    const auto &m2 = ctx.mapping("milc", ScenarioKind::LowContig);
    EXPECT_EQ(&m1, &m2) << "mapping must be cached across schemes";
}

TEST(Experiment, ClearCacheRebuilds)
{
    ExperimentContext ctx(quickOptions());
    ctx.mapping("milc", ScenarioKind::LowContig);
    ctx.clearCache();
    // Must not crash and must rebuild deterministically.
    const auto &m = ctx.mapping("milc", ScenarioKind::LowContig);
    EXPECT_GT(m.mappedPages(), 0u);
}

TEST(Experiment, IdealAnchorAtLeastAsGoodAsDynamic)
{
    ExperimentContext ctx(quickOptions());
    const SimResult dyn =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Anchor);
    const SimResult ideal =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::AnchorIdeal);
    EXPECT_LE(ideal.misses(), dyn.misses());
}

TEST(Experiment, BaseAndThpIdenticalWithoutHugeChunks)
{
    // The low-contiguity mapping has no huge-eligible blocks, so THP
    // degenerates to the baseline (paper Fig. 9, low columns).
    ExperimentContext ctx(quickOptions());
    const SimResult base =
        ctx.run("astar_biglake", ScenarioKind::LowContig, Scheme::Base);
    const SimResult thp =
        ctx.run("astar_biglake", ScenarioKind::LowContig, Scheme::Thp);
    EXPECT_EQ(base.misses(), thp.misses());
}

TEST(Experiment, RelativeMissesHelper)
{
    EXPECT_DOUBLE_EQ(relativeMisses(50, 100), 0.5);
    EXPECT_DOUBLE_EQ(relativeMisses(100, 100), 1.0);
    EXPECT_DOUBLE_EQ(relativeMisses(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(relativeMisses(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(relativeMisses(5, 0), 1.0);
}

TEST(Experiment, OptionsFromEnvDefaults)
{
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_GT(opts.accesses, 0u);
    EXPECT_GT(opts.footprint_scale, 0.0);
    EXPECT_LE(opts.footprint_scale, 1.0);
    EXPECT_GE(opts.threads, 1u);
    EXPECT_GE(opts.cache_pairs, 1u);
}

TEST(Experiment, OptionsFromEnvReadsCachePairs)
{
    ::setenv("ANCHORTLB_CACHE_PAIRS", "7", 1);
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_EQ(opts.cache_pairs, 7u);
    EXPECT_TRUE(opts.cache_pairs_from_env);
    ::unsetenv("ANCHORTLB_CACHE_PAIRS");
    EXPECT_FALSE(SimOptions::fromEnv().cache_pairs_from_env);
}

TEST(Experiment, OptionsFromEnvReadsShardKnobs)
{
    EXPECT_EQ(SimOptions::fromEnv().shards, 1u); // serial by default
    ::setenv("ANCHORTLB_SHARDS", "4", 1);
    ::setenv("ANCHORTLB_SHARD_WARMUP", "4096", 1);
    const SimOptions opts = SimOptions::fromEnv();
    EXPECT_EQ(opts.shards, 4u);
    EXPECT_EQ(opts.shard_warmup, 4'096u);
    ::unsetenv("ANCHORTLB_SHARDS");
    ::unsetenv("ANCHORTLB_SHARD_WARMUP");
}

TEST(Experiment, SizeCacheForPairsGrowsToRunShape)
{
    SimOptions opts = quickOptions();
    opts.cache_pairs = 2; // built-in default
    ExperimentContext ctx(opts);
    EXPECT_EQ(ctx.cacheCapacity(), 2u);

    ctx.sizeCacheForPairs(6);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);

    // Never shrinks below a larger current capacity or the default.
    ctx.sizeCacheForPairs(3);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);
    ctx.sizeCacheForPairs(0);
    EXPECT_EQ(ctx.cacheCapacity(), 6u);
}

TEST(Experiment, SizeCacheForPairsRespectsEnvClamp)
{
    // An explicit ANCHORTLB_CACHE_PAIRS is a memory budget: run-shape
    // sizing may shrink-to-fit below it but never exceed it.
    SimOptions opts = quickOptions();
    opts.cache_pairs = 3;
    opts.cache_pairs_from_env = true;
    ExperimentContext ctx(opts);

    ctx.sizeCacheForPairs(10);
    EXPECT_EQ(ctx.cacheCapacity(), 3u);
    ctx.sizeCacheForPairs(2);
    EXPECT_EQ(ctx.cacheCapacity(), 2u);
    ctx.sizeCacheForPairs(0);
    EXPECT_EQ(ctx.cacheCapacity(), 1u); // capacity floor is one pair
}

TEST(Experiment, CacheCountersTrackHitsAndMisses)
{
    ExperimentContext ctx(quickOptions());
    EXPECT_EQ(ctx.cacheCounters().lookups, 0u);

    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(ctx.cacheCounters().lookups, 1u);
    EXPECT_EQ(ctx.cacheCounters().hits, 0u);

    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Thp);
    EXPECT_EQ(ctx.cacheCounters().lookups, 2u);
    EXPECT_EQ(ctx.cacheCounters().hits, 1u);
    EXPECT_DOUBLE_EQ(ctx.cacheCounters().hitRate(), 0.5);

    ctx.clearCache();
    ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(ctx.cacheCounters().lookups, 3u);
    EXPECT_EQ(ctx.cacheCounters().hits, 1u); // cleared cache = miss
}

TEST(Experiment, CacheEvictionDoesNotChangeResults)
{
    // Thrash pattern: alternate pairs so a capacity-1 cache evicts and
    // rebuilds every call. Rebuilt state must reproduce cached state.
    SimOptions small = quickOptions();
    small.cache_pairs = 1;
    SimOptions big = quickOptions();
    big.cache_pairs = 8;

    ExperimentContext thrash(small);
    ExperimentContext warm(big);

    const std::vector<std::pair<std::string, ScenarioKind>> pairs = {
        {"canneal", ScenarioKind::Demand},
        {"canneal", ScenarioKind::MedContig},
        {"sphinx3", ScenarioKind::Demand},
        {"canneal", ScenarioKind::Demand}, // revisit after eviction
    };
    for (const auto &[workload, scenario] : pairs) {
        for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
            const SimResult a = thrash.run(workload, scenario, scheme);
            const SimResult b = warm.run(workload, scenario, scheme);
            EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
            EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
            EXPECT_EQ(a.anchor_distance, b.anchor_distance);
        }
    }
}

TEST(Experiment, CellKeyIsStableAndCanonical)
{
    const SimOptions opts = quickOptions();
    const CellSpec spec{"canneal", ScenarioKind::MedContig, Scheme::Base,
                        {}};
    EXPECT_EQ(cellKeyFor(opts, spec), cellKeyFor(opts, spec))
        << "the content address must be deterministic";

    // A stray distance override on a non-Anchor scheme is ignored by
    // run(), so it must not split the cell into two addresses.
    CellSpec stray = spec;
    stray.distance_override = 64;
    EXPECT_EQ(cellKeyFor(opts, stray), cellKeyFor(opts, spec));

    // On Anchor the override shapes the result and must be folded in.
    CellSpec anchor = spec;
    anchor.scheme = Scheme::Anchor;
    CellSpec anchor_d = anchor;
    anchor_d.distance_override = 64;
    EXPECT_NE(cellKeyFor(opts, anchor), cellKeyFor(opts, anchor_d));
}

TEST(Experiment, CellKeyCoversEveryResultShapingInput)
{
    const SimOptions base = quickOptions();
    const CellSpec spec{"canneal", ScenarioKind::MedContig, Scheme::Base,
                        {}};
    const CellKey key = cellKeyFor(base, spec);

    CellSpec other = spec;
    other.workload = "sphinx3";
    EXPECT_NE(cellKeyFor(base, other), key);
    other = spec;
    other.scenario = ScenarioKind::Demand;
    EXPECT_NE(cellKeyFor(base, other), key);
    other = spec;
    other.scheme = Scheme::Thp;
    EXPECT_NE(cellKeyFor(base, other), key);

    // Every sweep knob that shapes the stream changes the address.
    SimOptions opts = base;
    opts.accesses += 1;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.seed += 1;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.footprint_scale = 0.03;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.shards = 2;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.shard_warmup += 1;
    EXPECT_NE(cellKeyFor(opts, spec), key);

    // Hardware parameters too (spot checks across MmuConfig).
    opts = base;
    opts.mmu.l2_entries *= 2;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.mmu.cluster_span += 1;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.mmu.walk_cycles += 1;
    EXPECT_NE(cellKeyFor(opts, spec), key);
    opts = base;
    opts.mmu.pwc_enabled = !opts.mmu.pwc_enabled;
    EXPECT_NE(cellKeyFor(opts, spec), key);

    // A different trace content hash is a different cell.
    EXPECT_NE(cellKeyFor(base, spec, 0x1234), key);
}

TEST(Experiment, CellKeyExcludesExecutionModeKnobs)
{
    // These knobs are pinned byte-identical by the test suite, so two
    // runs differing only in them must share one content address.
    const SimOptions base = quickOptions();
    const CellSpec spec{"canneal", ScenarioKind::MedContig, Scheme::Base,
                        {}};
    const CellKey key = cellKeyFor(base, spec);

    SimOptions opts = base;
    opts.threads = 8;
    EXPECT_EQ(cellKeyFor(opts, spec), key);
    opts = base;
    opts.cache_pairs = 16;
    EXPECT_EQ(cellKeyFor(opts, spec), key);
    opts = base;
    opts.translate_mode = TranslateMode::PerAccess;
    EXPECT_EQ(cellKeyFor(opts, spec), key);
}

TEST(Experiment, SyntheticWorkloadsHaveNoTraceContentHash)
{
    EXPECT_EQ(traceContentHash("canneal"), 0u);
    EXPECT_EQ(traceContentHash("milc"), 0u);
}

/** In-memory ResultCache for the hook tests. */
class MapResultCache final : public ResultCache
{
  public:
    std::optional<SimResult> lookup(CellKey key) override
    {
        const auto it = cells_.find(key.raw());
        if (it == cells_.end())
            return std::nullopt;
        return it->second;
    }

    void store(CellKey key, const SimResult &result) override
    {
        cells_[key.raw()] = result;
    }

    std::size_t size() const { return cells_.size(); }

  private:
    std::unordered_map<std::uint64_t, SimResult> cells_;
};

TEST(Experiment, ResultCacheAnswersRepeatRunsWithoutSimulating)
{
    MapResultCache cache;
    ExperimentContext ctx(quickOptions());
    ctx.setResultCache(&cache);

    const SimResult first =
        ctx.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(ctx.cacheCounters().result_lookups, 1u);
    EXPECT_EQ(ctx.cacheCounters().result_hits, 0u);

    // A fresh context with the same options must answer from the cache
    // (no pair state is ever built for a cached cell).
    ExperimentContext warm(quickOptions());
    warm.setResultCache(&cache);
    const SimResult cached =
        warm.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(warm.cacheCounters().result_hits, 1u);
    EXPECT_EQ(warm.cacheCounters().lookups, 0u)
        << "a result-cache hit must not touch pair state";
    EXPECT_EQ(cached.stats.page_walks, first.stats.page_walks);
    EXPECT_EQ(cached.stats.translation_cycles,
              first.stats.translation_cycles);

    // Detaching goes back to plain simulation.
    warm.setResultCache(nullptr);
    const SimResult direct =
        warm.run("canneal", ScenarioKind::MedContig, Scheme::Base);
    EXPECT_EQ(warm.cacheCounters().result_lookups, 1u); // unchanged
    EXPECT_EQ(direct.stats.page_walks, first.stats.page_walks);
}

TEST(Experiment, ContextCellKeyMatchesFreeFunction)
{
    ExperimentContext ctx(quickOptions());
    const CellKey via_ctx =
        ctx.cellKey("canneal", ScenarioKind::MedContig, Scheme::Anchor,
                    64);
    const CellKey via_free = cellKeyFor(
        ctx.options(), CellSpec{"canneal", ScenarioKind::MedContig,
                                Scheme::Anchor, 64});
    EXPECT_EQ(via_ctx, via_free);
}

TEST(Experiment, RevisitedPairSurvivesLruSweep)
{
    // With capacity 2, touching A, B, A, C must keep A alive (LRU
    // evicts B); the revisit must still return consistent state.
    SimOptions opts = quickOptions();
    opts.cache_pairs = 2;
    ExperimentContext ctx(opts);

    const std::uint64_t first =
        ctx.dynamicDistance("canneal", ScenarioKind::MedContig);
    ctx.dynamicDistance("sphinx3", ScenarioKind::MedContig);
    ctx.dynamicDistance("canneal", ScenarioKind::MedContig);
    ctx.dynamicDistance("omnetpp", ScenarioKind::MedContig);
    EXPECT_EQ(ctx.dynamicDistance("canneal", ScenarioKind::MedContig),
              first);
}

} // namespace
} // namespace atlb
