/**
 * @file
 * Tests for the within-cell sharded runner and the SimResult merge
 * algebra it depends on (ISSUE: sharded simulation with mergeable
 * stats).
 *
 *  - planShards: the slicing is a deterministic, exact partition of the
 *    stream with clamped warmups.
 *  - SimResult::merge: identity element, associativity and order
 *    independence (exact for the integer counters, FP-tolerant for
 *    `instructions`), merged counters = sum of shard counters.
 *  - K = 1 is byte-identical to the serial runSchemeCell path.
 *  - K in {2, 4, 8}: the merged miss rate stays within the declared
 *    shardMissRateEpsilon of serial across the paper workloads — the
 *    checked-build accuracy contract.
 *  - Worker count never changes results (threads knob is perf-only).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "sim/sharded_runner.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

SimOptions
quickOptions(unsigned shards, std::uint64_t warmup = 2'048)
{
    SimOptions opts;
    opts.accesses = 15'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02; // shrink footprints for test speed
    opts.threads = 1;
    opts.shards = shards;
    // Small warmup so shards at this budget are a real approximation
    // (the default 32k warmup would replay nearly the whole prefix).
    opts.shard_warmup = warmup;
    return opts;
}

/** Built-once inputs of one cell, matching runSchemeCell's contract. */
struct CellFixture
{
    WorkloadSpec spec;
    MemoryMap map;
    PageTable table;
    std::uint64_t distance = 0;

    CellFixture(const SimOptions &options, const std::string &workload,
                ScenarioKind scenario, Scheme scheme)
        : spec(scaledWorkloadSpec(options, workload)),
          map(buildScenario(scenario, scenarioParamsFor(options, spec)))
    {
        switch (scheme) {
          case Scheme::Base:
          case Scheme::Cluster:
            table = buildPageTable(map, false);
            break;
          case Scheme::Thp:
          case Scheme::Cluster2MB:
          case Scheme::Rmm:
            table = buildPageTable(map, true);
            break;
          case Scheme::Anchor:
          case Scheme::AnchorIdeal:
            distance =
                selectAnchorDistance(map.contiguityHistogram()).distance;
            table = buildAnchorPageTable(map, AnchorDist::fromPages(distance));
            break;
        }
    }
};

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.anchor_distance, b.anchor_distance);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
}

/** Integer counters exactly equal; `instructions` up to FP rounding. */
void
expectEquivalent(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.stats.accesses, b.stats.accesses);
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits);
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits);
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks);
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles);
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles);
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles);
    EXPECT_EQ(a.walk_cycles, b.walk_cycles);
    EXPECT_NEAR(a.instructions, b.instructions,
                1e-9 * (1.0 + a.instructions));
}

// --- planShards properties ----------------------------------------------

TEST(PlanShards, PartitionsTheStreamExactly)
{
    for (const unsigned k : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
        const auto plan = planShards(1'000'003, k, 4'096);
        ASSERT_EQ(plan.size(), k);
        std::uint64_t cursor = 0;
        for (const ShardSlice &s : plan) {
            EXPECT_EQ(s.begin, cursor); // contiguous, in order
            EXPECT_GT(s.end, s.begin);  // never empty
            cursor = s.end;
        }
        EXPECT_EQ(cursor, 1'000'003u); // covers the whole stream
    }
}

TEST(PlanShards, SlicesAreNearEqual)
{
    const auto plan = planShards(1'000'003, 8, 0);
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const ShardSlice &s : plan) {
        lo = std::min(lo, s.length());
        hi = std::max(hi, s.length());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(PlanShards, WarmupClampedToSliceBegin)
{
    const auto plan = planShards(10'000, 4, 1'000'000);
    EXPECT_EQ(plan[0].warmup, 0u); // shard 0 starts like serial
    for (std::size_t i = 1; i < plan.size(); ++i)
        EXPECT_EQ(plan[i].warmup, plan[i].begin); // clamped
    const auto small = planShards(1'000'000, 4, 777);
    for (std::size_t i = 1; i < small.size(); ++i)
        EXPECT_EQ(small[i].warmup, 777u); // requested warmup fits
}

TEST(PlanShards, MoreShardsThanAccessesClampsToAccesses)
{
    const auto plan = planShards(3, 8, 0);
    ASSERT_EQ(plan.size(), 3u);
    for (const ShardSlice &s : plan)
        EXPECT_EQ(s.length(), 1u);
}

TEST(PlanShards, EmptyStreamYieldsOneEmptySlice)
{
    const auto plan = planShards(0, 4, 128);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].length(), 0u);
    EXPECT_EQ(plan[0].warmup, 0u);
}

// --- SimResult::merge algebra -------------------------------------------

/** Real per-shard partials: the algebra's interesting inputs. */
std::vector<SimResult>
shardPartials(const std::string &workload, ScenarioKind scenario,
              Scheme scheme, unsigned k)
{
    const SimOptions options = quickOptions(k);
    const CellFixture cell(options, workload, scenario, scheme);
    ShardedResult run = runShardedCell(options, cell.spec, scenario,
                                       cell.map, cell.table, scheme,
                                       cell.distance);
    return run.shards;
}

TEST(SimResultMerge, DefaultConstructedIsIdentity)
{
    const auto shards =
        shardPartials("canneal", ScenarioKind::MedContig, Scheme::Base, 4);
    ASSERT_FALSE(shards.empty());

    SimResult left;
    left.merge(shards[0]);
    expectIdentical(left, shards[0]); // left identity

    SimResult right = shards[0];
    right.merge(SimResult{});
    expectIdentical(right, shards[0]); // right identity
}

TEST(SimResultMerge, AssociativeOnShardPartials)
{
    const auto shards = shardPartials("sphinx3", ScenarioKind::Demand,
                                      Scheme::Anchor, 4);
    ASSERT_EQ(shards.size(), 4u);

    SimResult ab = shards[0];
    ab.merge(shards[1]);
    SimResult ab_c = ab;
    ab_c.merge(shards[2]);

    SimResult bc = shards[1];
    bc.merge(shards[2]);
    SimResult a_bc = shards[0];
    a_bc.merge(bc);

    expectEquivalent(ab_c, a_bc);
}

TEST(SimResultMerge, OrderIndependentOnShardPartials)
{
    const auto shards = shardPartials("omnetpp", ScenarioKind::HighContig,
                                      Scheme::Rmm, 4);
    ASSERT_EQ(shards.size(), 4u);

    SimResult forward;
    for (const SimResult &s : shards)
        forward.merge(s);

    SimResult backward;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it)
        backward.merge(*it);

    expectEquivalent(forward, backward);
}

TEST(SimResultMerge, MergedCountersAreTheSumOfShardCounters)
{
    const SimOptions options = quickOptions(4);
    const CellFixture cell(options, "canneal", ScenarioKind::LowContig,
                           Scheme::Cluster);
    const ShardedResult run =
        runShardedCell(options, cell.spec, ScenarioKind::LowContig,
                       cell.map, cell.table, Scheme::Cluster, 0);

    MmuStats sum;
    double instructions = 0.0;
    Cycles l2 = 0, coalesced = 0, walk = 0;
    for (const SimResult &s : run.shards) {
        sum += s.stats;
        instructions += s.instructions;
        l2 += s.l2_hit_cycles;
        coalesced += s.coalesced_cycles;
        walk += s.walk_cycles;
    }
    EXPECT_EQ(run.merged.stats.accesses, sum.accesses);
    EXPECT_EQ(run.merged.stats.accesses, options.accesses);
    EXPECT_EQ(run.merged.stats.l1_hits, sum.l1_hits);
    EXPECT_EQ(run.merged.stats.l2_regular_hits, sum.l2_regular_hits);
    EXPECT_EQ(run.merged.stats.coalesced_hits, sum.coalesced_hits);
    EXPECT_EQ(run.merged.stats.page_walks, sum.page_walks);
    EXPECT_EQ(run.merged.stats.translation_cycles,
              sum.translation_cycles);
    EXPECT_EQ(run.merged.l2_hit_cycles, l2);
    EXPECT_EQ(run.merged.coalesced_cycles, coalesced);
    EXPECT_EQ(run.merged.walk_cycles, walk);
    EXPECT_DOUBLE_EQ(run.merged.instructions, instructions);
}

// --- K = 1: the exact serial path ---------------------------------------

TEST(ShardedRunner, OneShardIsByteIdenticalToSerial)
{
    for (const Scheme scheme :
         {Scheme::Base, Scheme::Thp, Scheme::Rmm, Scheme::Anchor}) {
        SCOPED_TRACE(schemeName(scheme));
        const SimOptions options = quickOptions(1);
        const CellFixture cell(options, "sphinx3",
                               ScenarioKind::MedContig, scheme);

        const SimResult serial =
            runSchemeCell(options, cell.spec, ScenarioKind::MedContig,
                          cell.map, cell.table, scheme, cell.distance);
        const ShardedResult sharded =
            runShardedCell(options, cell.spec, ScenarioKind::MedContig,
                           cell.map, cell.table, scheme, cell.distance);

        ASSERT_EQ(sharded.shards.size(), 1u);
        expectIdentical(serial, sharded.merged);
        expectIdentical(serial, sharded.shards[0]);
    }
}

TEST(ShardedRunner, RunSchemeCellRoutesShardsOption)
{
    // runSchemeCell with shards > 1 must return the merged sharded
    // result, so every caller (context, sweep engine, benches) gets
    // sharding from the one env knob.
    SimOptions options = quickOptions(4);
    const CellFixture cell(options, "canneal", ScenarioKind::Demand,
                           Scheme::Base);

    const SimResult via_cell =
        runSchemeCell(options, cell.spec, ScenarioKind::Demand, cell.map,
                      cell.table, Scheme::Base, 0);
    const ShardedResult direct =
        runShardedCell(options, cell.spec, ScenarioKind::Demand, cell.map,
                       cell.table, Scheme::Base, 0);
    expectIdentical(via_cell, direct.merged);
}

TEST(ShardedRunner, WorkerCountNeverChangesResults)
{
    SimOptions one = quickOptions(4);
    SimOptions eight = quickOptions(4);
    eight.threads = 8;
    const CellFixture cell(one, "omnetpp", ScenarioKind::MaxContig,
                           Scheme::Anchor);

    const ShardedResult a =
        runShardedCell(one, cell.spec, ScenarioKind::MaxContig, cell.map,
                       cell.table, Scheme::Anchor, cell.distance);
    const ShardedResult b =
        runShardedCell(eight, cell.spec, ScenarioKind::MaxContig,
                       cell.map, cell.table, Scheme::Anchor,
                       cell.distance);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t i = 0; i < a.shards.size(); ++i)
        expectIdentical(a.shards[i], b.shards[i]);
    expectIdentical(a.merged, b.merged);
}

TEST(ShardedRunner, ShardsMeasureTheirExactSlices)
{
    const SimOptions options = quickOptions(8);
    const CellFixture cell(options, "sphinx3", ScenarioKind::LowContig,
                           Scheme::Base);
    const ShardedResult run =
        runShardedCell(options, cell.spec, ScenarioKind::LowContig,
                       cell.map, cell.table, Scheme::Base, 0);
    ASSERT_EQ(run.shards.size(), run.plan.size());
    for (std::size_t i = 0; i < run.shards.size(); ++i)
        EXPECT_EQ(run.shards[i].stats.accesses, run.plan[i].length());
}

// --- K > 1: the accuracy contract ---------------------------------------

TEST(ShardedRunner, PaperWorkloadMissRatesWithinEpsilon)
{
    // The declared contract (sharded_runner.hh): for every paper
    // workload, the K-shard L2 miss rate stays within
    // shardMissRateEpsilon of serial. Checked builds additionally
    // oracle-verify every translation along the way. The contract is
    // stated for realistic stream lengths — slices must dwarf the TLB
    // warmup transient — so this test runs a larger budget than the
    // structural tests above (at 15k accesses a K=8 slice is shorter
    // than the TLB refill itself and boundary noise dominates).
    const ScenarioKind scenario = ScenarioKind::MedContig;
    for (const unsigned k : {2u, 4u, 8u}) {
        for (const auto &workload : paperWorkloadNames()) {
            for (const Scheme scheme : {Scheme::Base, Scheme::Anchor}) {
                SCOPED_TRACE(workload + "/K=" + std::to_string(k) + "/" +
                             schemeName(scheme));
                SimOptions options = quickOptions(k);
                options.accesses = 120'000;
                options.shard_warmup = 32'768; // production default
                const CellFixture cell(options, workload, scenario,
                                       scheme);
                const ShardAccuracy acc = compareShardedToSerial(
                    options, cell.spec, scenario, cell.map, cell.table,
                    scheme, cell.distance);
                EXPECT_TRUE(acc.withinEpsilon())
                    << "miss-rate delta " << acc.missRateDelta()
                    << " exceeds " << shardMissRateEpsilon << " (serial "
                    << acc.serial.misses() << " walks, sharded "
                    << acc.sharded.misses() << ")";
                // Sanity: both runs measured the same stream length.
                EXPECT_EQ(acc.serial.stats.accesses,
                          acc.sharded.stats.accesses);
            }
        }
    }
}

TEST(ShardedRunner, LongerWarmupNeverHurtsAccuracyMuch)
{
    // Warmup exists to rebuild TLB warmth: a generous warmup must land
    // at least as close to serial as no warmup on a miss-heavy cell.
    const ScenarioKind scenario = ScenarioKind::Demand;
    const SimOptions cold = quickOptions(8, 0);
    const SimOptions warm = quickOptions(8, 4'096);
    const CellFixture cell(cold, "canneal", scenario, Scheme::Base);

    const ShardAccuracy cold_acc = compareShardedToSerial(
        cold, cell.spec, scenario, cell.map, cell.table, Scheme::Base, 0);
    const ShardAccuracy warm_acc = compareShardedToSerial(
        warm, cell.spec, scenario, cell.map, cell.table, Scheme::Base, 0);
    EXPECT_LE(warm_acc.missRateDelta(),
              cold_acc.missRateDelta() + 1e-12);
}

} // namespace
} // namespace atlb
