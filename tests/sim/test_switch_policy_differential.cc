/**
 * @file
 * Flush-vs-ASID differential harness — the pin for the switch-policy
 * tentpole. For every scheme, a multi-process run under ASID retention
 * must translate exactly the same access stream to exactly the same
 * physical frames as the same run under flush-on-switch: retained
 * entries may only ever change *where* a translation is found (the
 * hit/miss counters), never what it translates to. The per-process
 * FNV-1a PPN hashes pin the streams; a single stale entry consulted
 * anywhere diverges the hash.
 *
 * The sweep covers 16 seeds x all six runnable schemes x K in {1,2,4}
 * processes; even seeds additionally run remap churn (which exercises
 * the shootdown path under retention) and weighted round-robin quanta.
 * Counter conservation is asserted on both sides: the per-process stat
 * blocks must sum to the aggregate exactly, field by field — the same
 * algebra SimResult::merge relies on (MmuStats::operator+=).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/multiprocess.hh"

namespace atlb
{
namespace
{

constexpr const char *kWorkloads[] = {"canneal", "milc", "mcf",
                                      "sphinx3"};
constexpr ScenarioKind kScenarios[] = {
    ScenarioKind::MedContig, ScenarioKind::Demand,
    ScenarioKind::LowContig, ScenarioKind::MaxContig};

MultiProcessOptions
diffOptions(std::uint64_t seed, SwitchPolicy policy, unsigned nprocs)
{
    MultiProcessOptions opts;
    opts.total_accesses = 24'000;
    opts.quantum_accesses = 2'000;
    opts.footprint_scale = 0.02;
    opts.seed = seed;
    opts.policy = policy;
    if (seed % 2 == 0) {
        // Even seeds add remap churn (shootdowns under retention) and
        // weighted quanta — both must be policy-invariant too.
        opts.remap_every_quanta = 3;
        for (unsigned i = 0; i < nprocs; ++i)
            opts.weights.push_back(i + 1);
    }
    return opts;
}

/** Per-process stat blocks must sum to the aggregate, field by field. */
void
expectConservation(const MultiProcessResult &r, const char *what)
{
    MmuStats sum;
    std::uint64_t accesses = 0;
    for (const MultiProcessResult::PerProcess &p : r.processes) {
        sum += p.stats;
        accesses += p.accesses;
    }
    EXPECT_EQ(sum.accesses, r.stats.accesses) << what;
    EXPECT_EQ(sum.l1_hits, r.stats.l1_hits) << what;
    EXPECT_EQ(sum.l2_regular_hits, r.stats.l2_regular_hits) << what;
    EXPECT_EQ(sum.coalesced_hits, r.stats.coalesced_hits) << what;
    EXPECT_EQ(sum.page_walks, r.stats.page_walks) << what;
    EXPECT_EQ(sum.translation_cycles, r.stats.translation_cycles) << what;
    EXPECT_EQ(sum.shootdowns, r.stats.shootdowns) << what;
    EXPECT_EQ(sum.shootdown_cycles, r.stats.shootdown_cycles) << what;
    EXPECT_EQ(accesses, r.stats.accesses) << what;
}

void
runDifferential(Scheme scheme)
{
    for (const unsigned nprocs : {1u, 2u, 4u}) {
        std::vector<ProcessSpec> procs;
        for (unsigned i = 0; i < nprocs; ++i)
            procs.push_back({kWorkloads[i], kScenarios[i]});

        for (std::uint64_t seed = 1; seed <= 16; ++seed) {
            const MultiProcessResult flush = runMultiProcess(
                scheme, procs,
                diffOptions(seed, SwitchPolicy::Flush, nprocs));
            const MultiProcessResult asid = runMultiProcess(
                scheme, procs,
                diffOptions(seed, SwitchPolicy::Asid, nprocs));

            SCOPED_TRACE(std::string(schemeName(scheme)) + " K=" +
                         std::to_string(nprocs) + " seed=" +
                         std::to_string(seed));
            // The schedule is policy-independent...
            ASSERT_EQ(flush.context_switches, asid.context_switches);
            ASSERT_EQ(flush.remap_epochs, asid.remap_epochs);
            ASSERT_EQ(flush.stats.accesses, asid.stats.accesses);
            // ...and so is every process's translated PPN stream. Only
            // the hit/miss counters may differ between the policies.
            ASSERT_EQ(flush.processes.size(), asid.processes.size());
            for (std::size_t i = 0; i < flush.processes.size(); ++i) {
                ASSERT_EQ(flush.processes[i].accesses,
                          asid.processes[i].accesses)
                    << "process " << i;
                ASSERT_EQ(flush.processes[i].ppn_hash,
                          asid.processes[i].ppn_hash)
                    << "process " << i;
            }
            expectConservation(flush, "flush");
            expectConservation(asid, "asid");
            // The flush policy never issues shootdowns; retention only
            // does when there is churn to shoot down.
            EXPECT_EQ(flush.stats.shootdowns, 0u);
            if (asid.remap_epochs == 0) {
                EXPECT_EQ(asid.stats.shootdowns, 0u);
            }
        }
    }
}

TEST(SwitchPolicyDifferential, Base)
{
    runDifferential(Scheme::Base);
}

TEST(SwitchPolicyDifferential, Thp)
{
    runDifferential(Scheme::Thp);
}

TEST(SwitchPolicyDifferential, Cluster)
{
    runDifferential(Scheme::Cluster);
}

TEST(SwitchPolicyDifferential, Cluster2MB)
{
    runDifferential(Scheme::Cluster2MB);
}

TEST(SwitchPolicyDifferential, Rmm)
{
    runDifferential(Scheme::Rmm);
}

TEST(SwitchPolicyDifferential, Anchor)
{
    runDifferential(Scheme::Anchor);
}

} // namespace
} // namespace atlb
