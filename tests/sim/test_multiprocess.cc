/**
 * @file
 * Tests for context switching and the multi-process simulator.
 */

#include <gtest/gtest.h>

#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "sim/multiprocess.hh"

namespace atlb
{
namespace
{

constexpr Vpn base{0x7f0000000ULL};

MemoryMap
mapWithSeed(std::uint64_t seed, std::uint64_t pages = 4000)
{
    ScenarioParams p;
    p.footprint_pages = pages;
    p.seed = seed;
    return buildScenario(ScenarioKind::MedContig, p);
}

TEST(SwitchProcess, BaselineLoadsNewTableAndFlushes)
{
    const MemoryMap map_a = mapWithSeed(1);
    const MemoryMap map_b = mapWithSeed(2);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);

    EXPECT_EQ(mmu.translate(vaOf(base + 7)).ppn, map_a.translate(base + 7));
    ProcessContext ctx;
    ctx.table = &table_b;
    mmu.switchProcess(ctx);
    // Same VPN now translates through the other process's table, and
    // the first access after the switch is a cold walk.
    const TranslationResult r = mmu.translate(vaOf(base + 7));
    EXPECT_EQ(r.ppn, map_b.translate(base + 7));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST(SwitchProcess, StaleEntriesNeverSurviveSwitch)
{
    const MemoryMap map_a = mapWithSeed(3);
    const MemoryMap map_b = mapWithSeed(4);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);

    for (Vpn v = base; v < base + 200; ++v)
        mmu.translate(vaOf(v));
    ProcessContext ctx;
    ctx.table = &table_b;
    mmu.switchProcess(ctx);
    for (Vpn v = base; v < base + 200; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

TEST(SwitchProcess, AnchorSwitchesDistanceRegister)
{
    const MemoryMap map_a = mapWithSeed(5);
    const MemoryMap map_b = mapWithSeed(6);
    const std::uint64_t d_a = 8;
    const std::uint64_t d_b = 64;
    PageTable table_a = buildAnchorPageTable(map_a, AnchorDist::fromPages(d_a));
    PageTable table_b = buildAnchorPageTable(map_b, AnchorDist::fromPages(d_b));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table_a, AnchorDist::fromPages(d_a));

    mmu.translate(vaOf(base + 9));
    ProcessContext ctx;
    ctx.table = &table_b;
    ctx.anchor_distance = AnchorDist::fromPages(d_b);
    mmu.switchProcess(ctx);
    EXPECT_EQ(mmu.distance().pages(), d_b);
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

TEST(SwitchProcess, RmmSwitchesRangeTable)
{
    const MemoryMap map_a = mapWithSeed(7);
    const MemoryMap map_b = mapWithSeed(8);
    const PageTable table_a = buildPageTable(map_a, true);
    const PageTable table_b = buildPageTable(map_b, true);
    MmuConfig cfg;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, table_a, map_a);

    mmu.translate(vaOf(base + 11));
    ProcessContext ctx;
    ctx.table = &table_b;
    ctx.map = &map_b;
    mmu.switchProcess(ctx);
    EXPECT_EQ(mmu.rangeTlb().size(), 0u);
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

MultiProcessOptions
quickOptions()
{
    MultiProcessOptions opts;
    opts.total_accesses = 100'000;
    opts.quantum_accesses = 10'000;
    opts.footprint_scale = 0.02;
    return opts;
}

TEST(MultiProcess, CountsSwitchesAndAccesses)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, quickOptions());
    EXPECT_EQ(r.stats.accesses, 100'000u);
    EXPECT_EQ(r.context_switches, 9u); // 10 quanta, 9 boundaries
    ASSERT_EQ(r.processes.size(), 2u);
    EXPECT_EQ(r.processes[0].accesses + r.processes[1].accesses,
              100'000u);
}

TEST(MultiProcess, SingleProcessNeverSwitches)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig}};
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, quickOptions());
    EXPECT_EQ(r.context_switches, 0u);
}

TEST(MultiProcess, AnchorRecordsPerProcessDistances)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::LowContig},
        {"milc", ScenarioKind::MaxContig},
    };
    const MultiProcessResult r =
        runMultiProcess(Scheme::Anchor, procs, quickOptions());
    EXPECT_EQ(r.processes[0].anchor_distance, 4u);
    EXPECT_GT(r.processes[1].anchor_distance, 256u);
}

TEST(MultiProcess, SmallerQuantumMeansMoreMisses)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    MultiProcessOptions coarse = quickOptions();
    coarse.quantum_accesses = 50'000;
    MultiProcessOptions fine = quickOptions();
    fine.quantum_accesses = 2'000;
    const auto r_coarse =
        runMultiProcess(Scheme::Base, procs, coarse);
    const auto r_fine = runMultiProcess(Scheme::Base, procs, fine);
    EXPECT_GT(r_fine.stats.page_walks, r_coarse.stats.page_walks);
}

TEST(MultiProcess, SchemesRunForAllSchemes)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"sphinx3", ScenarioKind::Demand},
    };
    MultiProcessOptions opts = quickOptions();
    opts.total_accesses = 30'000;
    for (const Scheme s :
         {Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Cluster2MB,
          Scheme::Rmm, Scheme::Anchor}) {
        const MultiProcessResult r = runMultiProcess(s, procs, opts);
        EXPECT_EQ(r.stats.accesses, 30'000u) << schemeName(s);
    }
}

} // namespace
} // namespace atlb
