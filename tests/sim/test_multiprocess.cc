/**
 * @file
 * Tests for context switching and the multi-process simulator.
 */

#include <gtest/gtest.h>

#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "sim/multiprocess.hh"

namespace atlb
{
namespace
{

constexpr Vpn base{0x7f0000000ULL};

MemoryMap
mapWithSeed(std::uint64_t seed, std::uint64_t pages = 4000)
{
    ScenarioParams p;
    p.footprint_pages = pages;
    p.seed = seed;
    return buildScenario(ScenarioKind::MedContig, p);
}

TEST(SwitchProcess, BaselineLoadsNewTableAndFlushes)
{
    const MemoryMap map_a = mapWithSeed(1);
    const MemoryMap map_b = mapWithSeed(2);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);

    EXPECT_EQ(mmu.translate(vaOf(base + 7)).ppn, map_a.translate(base + 7));
    ProcessContext ctx;
    ctx.table = &table_b;
    mmu.switchProcess(ctx);
    // Same VPN now translates through the other process's table, and
    // the first access after the switch is a cold walk.
    const TranslationResult r = mmu.translate(vaOf(base + 7));
    EXPECT_EQ(r.ppn, map_b.translate(base + 7));
    EXPECT_EQ(r.level, HitLevel::PageWalk);
}

TEST(SwitchProcess, StaleEntriesNeverSurviveSwitch)
{
    const MemoryMap map_a = mapWithSeed(3);
    const MemoryMap map_b = mapWithSeed(4);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);

    for (Vpn v = base; v < base + 200; ++v)
        mmu.translate(vaOf(v));
    ProcessContext ctx;
    ctx.table = &table_b;
    mmu.switchProcess(ctx);
    for (Vpn v = base; v < base + 200; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

TEST(SwitchProcess, AnchorSwitchesDistanceRegister)
{
    const MemoryMap map_a = mapWithSeed(5);
    const MemoryMap map_b = mapWithSeed(6);
    const std::uint64_t d_a = 8;
    const std::uint64_t d_b = 64;
    PageTable table_a = buildAnchorPageTable(map_a, AnchorDist::fromPages(d_a));
    PageTable table_b = buildAnchorPageTable(map_b, AnchorDist::fromPages(d_b));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table_a, AnchorDist::fromPages(d_a));

    mmu.translate(vaOf(base + 9));
    ProcessContext ctx;
    ctx.table = &table_b;
    ctx.anchor_distance = AnchorDist::fromPages(d_b);
    mmu.switchProcess(ctx);
    EXPECT_EQ(mmu.distance().pages(), d_b);
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

TEST(SwitchProcess, RmmSwitchesRangeTable)
{
    const MemoryMap map_a = mapWithSeed(7);
    const MemoryMap map_b = mapWithSeed(8);
    const PageTable table_a = buildPageTable(map_a, true);
    const PageTable table_b = buildPageTable(map_b, true);
    MmuConfig cfg;
    cfg.rmm_min_range_pages = 2;
    RmmMmu mmu(cfg, table_a, map_a);

    mmu.translate(vaOf(base + 11));
    ProcessContext ctx;
    ctx.table = &table_b;
    ctx.map = &map_b;
    mmu.switchProcess(ctx);
    EXPECT_EQ(mmu.rangeTlb().size(), 0u);
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

// ---------------------------------------------------------------------
// ASID retention (SwitchPolicy::Asid): entries survive the switch,
// tagged so they can never serve another address space.
// ---------------------------------------------------------------------

TEST(AsidRetention, KeepsEntriesAcrossSwitch)
{
    const MemoryMap map_a = mapWithSeed(11);
    const MemoryMap map_b = mapWithSeed(12);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);
    mmu.setSwitchPolicy(SwitchPolicy::Asid);

    ProcessContext a;
    a.table = &table_a;
    a.asid = Asid{1};
    ProcessContext b;
    b.table = &table_b;
    b.asid = Asid{2};

    mmu.switchProcess(a);
    for (Vpn v = base; v < base + 200; ++v)
        mmu.translate(vaOf(v));
    mmu.switchProcess(b);
    for (Vpn v = base; v < base + 16; ++v)
        mmu.translate(vaOf(v));

    // Back in A: the working set is still warm — zero new walks.
    mmu.switchProcess(a);
    const std::uint64_t walks = mmu.stats().page_walks;
    for (Vpn v = base; v < base + 200; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_a.translate(v));
    EXPECT_EQ(mmu.stats().page_walks, walks);
}

TEST(AsidRetention, EntriesNeverCrossAddressSpaces)
{
    const MemoryMap map_a = mapWithSeed(13);
    const MemoryMap map_b = mapWithSeed(14);
    const PageTable table_a = buildPageTable(map_a, false);
    const PageTable table_b = buildPageTable(map_b, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table_a);
    mmu.setSwitchPolicy(SwitchPolicy::Asid);

    ProcessContext a;
    a.table = &table_a;
    a.asid = Asid{1};
    ProcessContext b;
    b.table = &table_b;
    b.asid = Asid{2};

    mmu.switchProcess(a);
    for (Vpn v = base; v < base + 200; ++v)
        mmu.translate(vaOf(v));
    // Same VPNs in B: A's retained entries must never answer, even
    // though they are still resident in the shared L1/L2 arrays.
    mmu.switchProcess(b);
    for (Vpn v = base; v < base + 200; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));
}

TEST(AsidRetention, AnchorDistancesCoexist)
{
    const MemoryMap map_a = mapWithSeed(15);
    const MemoryMap map_b = mapWithSeed(16);
    const AnchorDist d_a = AnchorDist::fromPages(8);
    const AnchorDist d_b = AnchorDist::fromPages(64);
    const PageTable table_a = buildAnchorPageTable(map_a, d_a);
    const PageTable table_b = buildAnchorPageTable(map_b, d_b);
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table_a, d_a);
    mmu.setSwitchPolicy(SwitchPolicy::Asid);

    ProcessContext a;
    a.table = &table_a;
    a.anchor_distance = d_a;
    a.asid = Asid{1};
    ProcessContext b;
    b.table = &table_b;
    b.anchor_distance = d_b;
    b.asid = Asid{2};

    mmu.switchProcess(a);
    for (Vpn v = base; v < base + 300; ++v)
        mmu.translate(vaOf(v));
    // B's distance-64 anchors enter the same L2 that still holds A's
    // distance-8 anchors; the ASID tag keeps the two key spaces apart.
    mmu.switchProcess(b);
    EXPECT_EQ(mmu.distance().pages(), 64u);
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_b.translate(v));

    mmu.switchProcess(a);
    EXPECT_EQ(mmu.distance().pages(), 8u);
    const std::uint64_t walks = mmu.stats().page_walks;
    for (Vpn v = base; v < base + 300; ++v)
        ASSERT_EQ(mmu.translate(vaOf(v)).ppn, map_a.translate(v));
    EXPECT_EQ(mmu.stats().page_walks, walks);
}

MultiProcessOptions
quickOptions()
{
    MultiProcessOptions opts;
    opts.total_accesses = 100'000;
    opts.quantum_accesses = 10'000;
    opts.footprint_scale = 0.02;
    return opts;
}

TEST(MultiProcess, CountsSwitchesAndAccesses)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, quickOptions());
    EXPECT_EQ(r.stats.accesses, 100'000u);
    EXPECT_EQ(r.context_switches, 9u); // 10 quanta, 9 boundaries
    ASSERT_EQ(r.processes.size(), 2u);
    EXPECT_EQ(r.processes[0].accesses + r.processes[1].accesses,
              100'000u);
}

TEST(MultiProcess, SingleProcessNeverSwitches)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig}};
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, quickOptions());
    EXPECT_EQ(r.context_switches, 0u);
}

TEST(MultiProcess, AnchorRecordsPerProcessDistances)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::LowContig},
        {"milc", ScenarioKind::MaxContig},
    };
    const MultiProcessResult r =
        runMultiProcess(Scheme::Anchor, procs, quickOptions());
    EXPECT_EQ(r.processes[0].anchor_distance, 4u);
    EXPECT_GT(r.processes[1].anchor_distance, 256u);
}

TEST(MultiProcess, SmallerQuantumMeansMoreMisses)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    MultiProcessOptions coarse = quickOptions();
    coarse.quantum_accesses = 50'000;
    MultiProcessOptions fine = quickOptions();
    fine.quantum_accesses = 2'000;
    const auto r_coarse =
        runMultiProcess(Scheme::Base, procs, coarse);
    const auto r_fine = runMultiProcess(Scheme::Base, procs, fine);
    EXPECT_GT(r_fine.stats.page_walks, r_coarse.stats.page_walks);
}

TEST(MultiProcess, SchemesRunForAllSchemes)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"sphinx3", ScenarioKind::Demand},
    };
    MultiProcessOptions opts = quickOptions();
    opts.total_accesses = 30'000;
    for (const Scheme s :
         {Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Cluster2MB,
          Scheme::Rmm, Scheme::Anchor}) {
        const MultiProcessResult r = runMultiProcess(s, procs, opts);
        EXPECT_EQ(r.stats.accesses, 30'000u) << schemeName(s);
    }
}

TEST(MultiProcess, AsidPolicyNeverWalksMoreThanFlush)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::Demand},
    };
    MultiProcessOptions flush = quickOptions();
    flush.quantum_accesses = 2'000;
    MultiProcessOptions asid = flush;
    asid.policy = SwitchPolicy::Asid;
    const auto r_flush = runMultiProcess(Scheme::Base, procs, flush);
    const auto r_asid = runMultiProcess(Scheme::Base, procs, asid);
    EXPECT_LE(r_asid.stats.page_walks, r_flush.stats.page_walks);
    EXPECT_GE(r_asid.hitRate(), r_flush.hitRate());
}

TEST(MultiProcess, RemapChurnChargesShootdownsOnlyUnderAsid)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    MultiProcessOptions opts = quickOptions();
    opts.remap_every_quanta = 2;
    opts.shared_cores = 3;
    const auto r_flush = runMultiProcess(Scheme::Base, procs, opts);
    EXPECT_GT(r_flush.remap_epochs, 0u);
    EXPECT_EQ(r_flush.stats.shootdowns, 0u);
    EXPECT_EQ(r_flush.stats.shootdown_cycles, 0u);

    opts.policy = SwitchPolicy::Asid;
    const auto r_asid = runMultiProcess(Scheme::Base, procs, opts);
    EXPECT_EQ(r_asid.remap_epochs, r_flush.remap_epochs);
    EXPECT_EQ(r_asid.stats.shootdowns, r_asid.remap_epochs);
    EXPECT_GT(r_asid.stats.shootdown_cycles, 0u);
    // The charged CPI folds the shootdown cycles in on top of the
    // translation cycles.
    EXPECT_GT(r_asid.chargedCpi(),
              static_cast<double>(r_asid.stats.translation_cycles) /
                  (static_cast<double>(r_asid.stats.accesses) / 0.33));
}

TEST(MultiProcess, WeightedQuantaSkewAccesses)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    MultiProcessOptions opts = quickOptions();
    opts.weights = {1, 3};
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, opts);
    ASSERT_EQ(r.processes.size(), 2u);
    EXPECT_EQ(r.stats.accesses, 100'000u);
    EXPECT_GT(r.processes[1].accesses, 2 * r.processes[0].accesses);
}

TEST(MultiProcess, AssignsDistinctAsids)
{
    const std::vector<ProcessSpec> procs = {
        {"canneal", ScenarioKind::MedContig},
        {"milc", ScenarioKind::MedContig},
    };
    MultiProcessOptions opts = quickOptions();
    opts.total_accesses = 20'000;
    opts.policy = SwitchPolicy::Asid;
    const MultiProcessResult r =
        runMultiProcess(Scheme::Base, procs, opts);
    ASSERT_EQ(r.processes.size(), 2u);
    EXPECT_EQ(r.processes[0].asid, 1u);
    EXPECT_EQ(r.processes[1].asid, 2u);
}

} // namespace
} // namespace atlb
