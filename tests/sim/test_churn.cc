/**
 * @file
 * Tests for the mapping-churn simulator: shootdown correctness and
 * distance-controller behaviour under changing mappings.
 */

#include <gtest/gtest.h>

#include "sim/churn.hh"

namespace atlb
{
namespace
{

ChurnOptions
quickOptions()
{
    ChurnOptions opts;
    opts.workload = "canneal";
    opts.footprint_scale = 0.02;
    return opts;
}

TEST(Churn, RunsAllEpochs)
{
    const std::vector<ChurnEpoch> epochs = {
        {ScenarioKind::MedContig, 20'000, 1},
        {ScenarioKind::MedContig, 20'000, 2},
        {ScenarioKind::MedContig, 20'000, 3},
    };
    const ChurnResult r =
        runMappingChurn(Scheme::Base, epochs, quickOptions());
    ASSERT_EQ(r.epochs.size(), 3u);
    EXPECT_EQ(r.stats.accesses, 60'000u);
    for (const auto &e : r.epochs)
        EXPECT_EQ(e.accesses, 20'000u);
}

TEST(Churn, StableMappingKeepsDistance)
{
    // Same scenario kind across epochs: the controller must settle
    // after its initial selection (paper Section 5.2.3). Use a larger
    // footprint and the hysteresis threshold a real OS would: tiny
    // samples make neighbouring distances statistically tied.
    std::vector<ChurnEpoch> epochs;
    for (std::uint64_t i = 0; i < 6; ++i)
        epochs.push_back({ScenarioKind::MedContig, 10'000, 10 + i});
    ChurnOptions opts = quickOptions();
    opts.footprint_scale = 0.1;
    opts.distance_threshold = 0.25;
    const ChurnResult r = runMappingChurn(Scheme::Anchor, epochs, opts);
    EXPECT_LE(r.distance_changes, 1u);
    const std::uint64_t settled = r.epochs.back().anchor_distance;
    for (std::size_t i = 1; i < r.epochs.size(); ++i)
        EXPECT_EQ(r.epochs[i].anchor_distance, settled);
}

TEST(Churn, DrasticRemapChangesDistance)
{
    const std::vector<ChurnEpoch> epochs = {
        {ScenarioKind::LowContig, 10'000, 1},
        {ScenarioKind::LowContig, 10'000, 2},
        {ScenarioKind::MaxContig, 10'000, 3}, // OS compacted memory
        {ScenarioKind::MaxContig, 10'000, 4},
    };
    const ChurnResult r =
        runMappingChurn(Scheme::Anchor, epochs, quickOptions());
    EXPECT_GE(r.distance_changes, 2u); // initial pick + compaction
    EXPECT_LT(r.epochs[0].anchor_distance,
              r.epochs[2].anchor_distance);
    // Compaction cuts the miss rate.
    EXPECT_LT(r.epochs[3].misses, r.epochs[1].misses);
}

TEST(Churn, SweepCostReportedOnChange)
{
    const std::vector<ChurnEpoch> epochs = {
        {ScenarioKind::LowContig, 5'000, 1},
        {ScenarioKind::MaxContig, 5'000, 2},
    };
    const ChurnResult r =
        runMappingChurn(Scheme::Anchor, epochs, quickOptions());
    for (const auto &e : r.epochs)
        EXPECT_GT(e.sweep_touched, 0u);
}

TEST(Churn, AllSchemesSurviveChurn)
{
    const std::vector<ChurnEpoch> epochs = {
        {ScenarioKind::MedContig, 8'000, 1},
        {ScenarioKind::HighContig, 8'000, 2},
        {ScenarioKind::LowContig, 8'000, 3},
    };
    for (const Scheme s :
         {Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Cluster2MB,
          Scheme::Rmm, Scheme::Anchor}) {
        const ChurnResult r =
            runMappingChurn(s, epochs, quickOptions());
        EXPECT_EQ(r.stats.accesses, 24'000u) << schemeName(s);
    }
}

TEST(Churn, AnchorBeatsBaseAcrossChurn)
{
    std::vector<ChurnEpoch> epochs;
    for (std::uint64_t i = 0; i < 4; ++i)
        epochs.push_back({ScenarioKind::MedContig, 25'000, i + 1});
    const ChurnResult base =
        runMappingChurn(Scheme::Base, epochs, quickOptions());
    const ChurnResult anchor =
        runMappingChurn(Scheme::Anchor, epochs, quickOptions());
    EXPECT_LT(anchor.stats.page_walks, base.stats.page_walks);
}

} // namespace
} // namespace atlb
