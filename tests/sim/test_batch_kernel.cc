/**
 * @file
 * Batch translate kernel equivalence suite (ISSUE 5 tentpole).
 *
 * The contract under test (mmu.hh runBatchKernel): translateBatch is
 * counter-identical to calling translate() on every element, for every
 * scheme, every trace source the grid can replay (synthetic pattern,
 * v1 ifstream, v1 mmap, v2 block codec), serial and sharded, with the
 * L0 same-page filter engaged. The per-access pipeline is always the
 * reference; nothing here encodes expected absolute counts.
 *
 * Also covered: the L0 filter invalidation contract (flushAll /
 * invalidatePage / switchProcess / interleaved per-access probes must
 * drop the carried VPN rather than serve stale short-circuits), batch
 * accounting in BatchStats, and — in checked builds — that the batch
 * path routes through the verifying per-access pipeline so the oracle
 * still catches planted corruption (ISSUE 5 satellite fix).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/simd_test_util.hh"
#include "ingest/trace_open.hh"
#include "ingest/trace_v2.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/mmu_test_util.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/region_partitioner.hh"
#include "os/table_builder.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

using test::baseVpn;

void
expectStatsEqual(const MmuStats &a, const MmuStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.l1_hits, b.l1_hits) << what;
    EXPECT_EQ(a.l2_regular_hits, b.l2_regular_hits) << what;
    EXPECT_EQ(a.coalesced_hits, b.coalesced_hits) << what;
    EXPECT_EQ(a.page_walks, b.page_walks) << what;
    EXPECT_EQ(a.translation_cycles, b.translation_cycles) << what;
}

void
expectResultsEqual(const SimResult &a, const SimResult &b,
                   const std::string &what)
{
    expectStatsEqual(a.stats, b.stats, what);
    EXPECT_EQ(a.l2_hit_cycles, b.l2_hit_cycles) << what;
    EXPECT_EQ(a.coalesced_cycles, b.coalesced_cycles) << what;
    EXPECT_EQ(a.walk_cycles, b.walk_cycles) << what;
    EXPECT_DOUBLE_EQ(a.instructions, b.instructions) << what;
}

SimOptions
quickOptions()
{
    SimOptions opts;
    opts.accesses = 15'000;
    opts.seed = 42;
    opts.footprint_scale = 0.02;
    opts.threads = 1;
    return opts;
}

/** The experiment-grid schemes the equivalence bar names. */
const std::vector<Scheme> &
gridSchemes()
{
    static const std::vector<Scheme> schemes = {
        Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Rmm,
        Scheme::Anchor,
    };
    return schemes;
}

/** Cell inputs for one scheme, mirroring runSchemeCell's contract. */
struct CellFixture
{
    WorkloadSpec spec;
    MemoryMap map;
    PageTable table;
    std::uint64_t distance = 0;

    CellFixture(const SimOptions &options, const std::string &workload,
                ScenarioKind scenario, Scheme scheme)
        : spec(scaledWorkloadSpec(options, workload)),
          map(buildScenario(scenario, scenarioParamsFor(options, spec)))
    {
        switch (scheme) {
          case Scheme::Base:
          case Scheme::Cluster:
            table = buildPageTable(map, false);
            break;
          case Scheme::Thp:
          case Scheme::Cluster2MB:
          case Scheme::Rmm:
            table = buildPageTable(map, true);
            break;
          case Scheme::Anchor:
          case Scheme::AnchorIdeal:
            distance =
                selectAnchorDistance(map.contiguityHistogram()).distance;
            table = buildAnchorPageTable(map, AnchorDist::fromPages(distance));
            break;
        }
    }
};

/** Run one cell in the given translate mode. */
SimResult
runCellIn(TranslateMode mode, const SimOptions &base,
          const CellFixture &cell, ScenarioKind scenario, Scheme scheme)
{
    SimOptions opts = base;
    opts.translate_mode = mode;
    return runSchemeCell(opts, cell.spec, scenario, cell.map, cell.table,
                         scheme, cell.distance);
}

// --- serial grid equivalence: synthetic source --------------------------

TEST(BatchEquivalence, SyntheticCellsMatchPerAccess)
{
    const SimOptions opts = quickOptions();
    for (const Scheme scheme : gridSchemes()) {
        for (const ScenarioKind scenario :
             {ScenarioKind::MedContig, ScenarioKind::Demand}) {
            const std::string what = std::string(schemeName(scheme)) +
                                     "/" + scenarioName(scenario);
            SCOPED_TRACE(what);
            const CellFixture cell(opts, "canneal", scenario, scheme);
            const SimResult batch =
                runCellIn(TranslateMode::Batch, opts, cell, scenario,
                          scheme);
            const SimResult ref =
                runCellIn(TranslateMode::PerAccess, opts, cell, scenario,
                          scheme);
            expectResultsEqual(batch, ref, what);
            EXPECT_EQ(batch.stats.accesses, opts.accesses) << what;
        }
    }
}

// --- serial grid equivalence: on-disk containers ------------------------

class BatchTraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        stem_ = testing::TempDir() + "atlb_batch_" + info->name() + "_" +
                std::to_string(::getpid());
        v1_ = stem_ + ".atlbtrc1";
        v2_ = stem_ + ".atlbtrc2";
        detail::setThrowOnError(true);

        // Deterministic capture over 512 pages at the simulated region
        // base: page-local runs (so the L0 filter engages) mixed with
        // scattered jumps (so the miss pipeline runs too).
        std::uint64_t x = 999;
        const VirtAddr base = traceBaseVa();
        std::vector<MemAccess> stream;
        stream.reserve(6'000);
        while (stream.size() < 6'000) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const VirtAddr page =
                base + ((x >> 24) % 512) * pageBytes;
            const std::uint64_t run = 1 + (x % 5);
            for (std::uint64_t i = 0;
                 i < run && stream.size() < 6'000; ++i)
                stream.push_back(
                    {page + ((x >> 8) + i * 64) % pageBytes,
                     (x & 1) != 0});
        }
        {
            TraceWriter w(v1_);
            for (const MemAccess &a : stream)
                w.append(a);
        }
        {
            TraceV2Writer w(v2_, 512); // force multiple blocks
            for (const MemAccess &a : stream)
                w.append(a);
            w.close();
        }
    }

    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(v1_.c_str());
        std::remove(v2_.c_str());
    }

    std::string stem_, v1_, v2_;
};

TEST_F(BatchTraceTest, ContainerCellsMatchPerAccess)
{
    // The grid replays v1 through the mmap reader and v2 through the
    // block decoder (openTraceFile); both must be batch/per-access
    // equivalent for every scheme.
    const SimOptions opts = quickOptions();
    for (const std::string &path : {v1_, v2_}) {
        for (const Scheme scheme : gridSchemes()) {
            const std::string what =
                std::string(schemeName(scheme)) +
                (path == v1_ ? "/v1-mmap" : "/v2");
            SCOPED_TRACE(what);
            const CellFixture cell(opts, "trace:" + path,
                                   ScenarioKind::MedContig, scheme);
            const SimResult batch =
                runCellIn(TranslateMode::Batch, opts, cell,
                          ScenarioKind::MedContig, scheme);
            const SimResult ref =
                runCellIn(TranslateMode::PerAccess, opts, cell,
                          ScenarioKind::MedContig, scheme);
            expectResultsEqual(batch, ref, what);
            EXPECT_EQ(batch.stats.accesses, 6'000u) << what;
        }
    }
}

TEST_F(BatchTraceTest, IfstreamSourceMatchesPerAccess)
{
    // The v1 ifstream reader is not what openTraceFile picks, but
    // runSimulation must be mode-agnostic for any TraceSource. Drive it
    // directly for a hit-heavy and a coalescing scheme.
    const SimOptions opts = quickOptions();
    const CellFixture base_cell(opts, "trace:" + v1_,
                                ScenarioKind::MedContig, Scheme::Base);
    const CellFixture anchor_cell(opts, "trace:" + v1_,
                                  ScenarioKind::MedContig, Scheme::Anchor);

    struct Case
    {
        const CellFixture *cell;
        Scheme scheme;
    } cases[] = {{&base_cell, Scheme::Base},
                 {&anchor_cell, Scheme::Anchor}};
    for (const Case &c : cases) {
        SCOPED_TRACE(schemeName(c.scheme));
        const std::unique_ptr<Mmu> batch_mmu = buildSchemeMmu(
            opts.mmu, c.cell->table, c.cell->map, c.scheme,
            c.cell->distance);
        const std::unique_ptr<Mmu> ref_mmu = buildSchemeMmu(
            opts.mmu, c.cell->table, c.cell->map, c.scheme,
            c.cell->distance);

        TraceFileSource batch_src(v1_);
        const SimResult batch =
            runSimulation(*batch_mmu, batch_src,
                          c.cell->spec.mem_per_instr,
                          TranslateMode::Batch);
        TraceFileSource ref_src(v1_);
        const SimResult ref =
            runSimulation(*ref_mmu, ref_src, c.cell->spec.mem_per_instr,
                          TranslateMode::PerAccess);
        expectResultsEqual(batch, ref, schemeName(c.scheme));
        EXPECT_EQ(batch.stats.accesses, 6'000u);
    }
}

// --- sharded equivalence ------------------------------------------------

TEST(BatchEquivalence, ShardedCellsMatchPerAccess)
{
    // K in {1, 2, 4}: the warmup replay and the measured slice both go
    // through the batch kernel; every shard and the merge must equal
    // the per-access run of the same plan.
    for (const unsigned k : {1u, 2u, 4u}) {
        for (const Scheme scheme :
             {Scheme::Base, Scheme::Rmm, Scheme::Anchor}) {
            const std::string what = "K=" + std::to_string(k) + "/" +
                                     schemeName(scheme);
            SCOPED_TRACE(what);
            SimOptions opts = quickOptions();
            opts.shards = k;
            opts.shard_warmup = 2'048;
            const CellFixture cell(opts, "sphinx3",
                                   ScenarioKind::MedContig, scheme);

            opts.translate_mode = TranslateMode::Batch;
            const ShardedResult batch =
                runShardedCell(opts, cell.spec, ScenarioKind::MedContig,
                               cell.map, cell.table, scheme,
                               cell.distance);
            opts.translate_mode = TranslateMode::PerAccess;
            const ShardedResult ref =
                runShardedCell(opts, cell.spec, ScenarioKind::MedContig,
                               cell.map, cell.table, scheme,
                               cell.distance);

            ASSERT_EQ(batch.shards.size(), ref.shards.size());
            for (std::size_t i = 0; i < batch.shards.size(); ++i)
                expectResultsEqual(batch.shards[i], ref.shards[i],
                                   what + "/shard " +
                                       std::to_string(i));
            expectResultsEqual(batch.merged, ref.merged, what);
        }
    }
}

TEST_F(BatchTraceTest, ShardedV2CellMatchesPerAccess)
{
    SimOptions opts = quickOptions();
    opts.shards = 2;
    opts.shard_warmup = 500;
    const CellFixture cell(opts, "trace:" + v2_, ScenarioKind::MedContig,
                           Scheme::Anchor);

    opts.translate_mode = TranslateMode::Batch;
    const ShardedResult batch =
        runShardedCell(opts, cell.spec, ScenarioKind::MedContig, cell.map,
                       cell.table, Scheme::Anchor, cell.distance);
    opts.translate_mode = TranslateMode::PerAccess;
    const ShardedResult ref =
        runShardedCell(opts, cell.spec, ScenarioKind::MedContig, cell.map,
                       cell.table, Scheme::Anchor, cell.distance);
    ASSERT_EQ(batch.shards.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        expectResultsEqual(batch.shards[i], ref.shards[i],
                           "shard " + std::to_string(i));
    expectResultsEqual(batch.merged, ref.merged, "merged");
}

// --- randomized differential against the per-access reference -----------

/**
 * Every concrete scheme over the varied test map. Region-anchor and
 * COLT ride along here even though the grid bar doesn't name them —
 * their translateBatch overrides must honour the same contract.
 */
struct SchemePair
{
    std::string name;
    std::unique_ptr<Mmu> batch;
    std::unique_ptr<Mmu> ref;
};

struct DifferentialRig
{
    MemoryMap map = test::makeVariedMap();
    PageTable plain, thp, anchored, region;
    RegionPartition partition;
    std::vector<SchemePair> pairs;

    DifferentialRig()
        : plain(buildPageTable(map, false)),
          thp(buildPageTable(map, true)),
          anchored(buildAnchorPageTable(map, AnchorDist::fromPages(32))),
          partition(partitionAnchorRegions(map))
    {
        region = buildRegionAnchorPageTable(map, partition);
        MmuConfig cfg;
        add<BaselineMmu>("base", cfg, plain);
        add<ColtMmu>("colt", cfg, plain);
        add<ClusterMmu>("cluster", cfg, plain, false);
        add<RmmMmu>("rmm", cfg, thp, map);
        add<AnchorMmu>("anchor", cfg, anchored, AnchorDist::fromPages(32));
        add<RegionAnchorMmu>("region-anchor", cfg, region, partition);
    }

    template <class M, class... Args>
    void add(const std::string &name, const MmuConfig &cfg,
             Args &&...args)
    {
        pairs.push_back({name, std::make_unique<M>(cfg, args...),
                         std::make_unique<M>(cfg, args...)});
    }
};

/** Random stream over the varied map: page-local runs plus jumps. */
std::vector<MemAccess>
randomMappedStream(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint64_t offsets[] = {0, 512, 4096, 8192};
    const std::uint64_t lens[] = {8, 1024, 100, 3};
    std::vector<MemAccess> out;
    out.reserve(n);
    while (out.size() < n) {
        const unsigned c = static_cast<unsigned>(rng.nextBounded(4));
        const Vpn vpn =
            baseVpn + offsets[c] + rng.nextBounded(lens[c]);
        // Dwell on the page 1-6 accesses so the L0 filter engages.
        const std::uint64_t run = 1 + rng.nextBounded(6);
        for (std::uint64_t i = 0; i < run && out.size() < n; ++i)
            out.push_back({vaOf(vpn) + rng.nextBounded(pageBytes),
                           rng.nextBounded(4) == 0});
    }
    return out;
}

TEST(BatchEquivalence, RandomizedDifferentialAllSchemes)
{
    // Feed the same random stream to a batch-driven and a per-access
    // MMU of every scheme, comparing full stats at every (randomly
    // sized) batch boundary — including empty and size-1 batches.
    for (const std::uint64_t seed : {7ull, 21ull, 63ull}) {
        DifferentialRig rig;
        const std::vector<MemAccess> stream =
            randomMappedStream(20'000, seed);
        Rng chunks(seed * 31 + 1);
        for (SchemePair &p : rig.pairs) {
            SCOPED_TRACE(p.name + "/seed " + std::to_string(seed));
            BatchStats bs;
            std::size_t i = 0;
            while (i < stream.size()) {
                const std::size_t n = static_cast<std::size_t>(
                    chunks.nextBounded(65)); // 0..64
                const std::size_t take =
                    std::min(n, stream.size() - i);
                p.batch->translateBatch(stream.data() + i, take, bs);
                for (std::size_t j = 0; j < take; ++j)
                    p.ref->translate(stream[i + j].vaddr);
                i += take;
                expectStatsEqual(p.batch->stats(), p.ref->stats(),
                                 p.name + " at access " +
                                     std::to_string(i));
                if (HasFailure())
                    return; // one divergence floods the log otherwise
            }
            // BatchStats mirrors the MmuStats the kernel accumulated.
            EXPECT_EQ(bs.accesses, p.batch->stats().accesses);
            EXPECT_EQ(bs.l1_hits, p.batch->stats().l1_hits);
            EXPECT_LE(bs.l0_filtered, bs.l1_hits);
#ifndef ANCHORTLB_CHECKED
            // The stream dwells on pages, so the filter must actually
            // engage (the speedup the kernel exists for).
            EXPECT_GT(bs.l0_filtered, 0u) << p.name;
#else
            // Checked builds route through the verifying per-access
            // path and never short-circuit.
            EXPECT_EQ(bs.l0_filtered, 0u) << p.name;
#endif
        }
    }
}

// --- L0 filter invalidation ---------------------------------------------

/**
 * Drive the same access/event script through a batch MMU and a
 * per-access MMU; any stale L0 short-circuit shows up as a counter
 * divergence (the reference re-probes every time).
 */
struct FilterProbe
{
    MemoryMap map = test::makeVariedMap();
    PageTable table;
    MmuConfig cfg;
    BaselineMmu batch_mmu;
    BaselineMmu ref_mmu;
    BatchStats bs;

    FilterProbe()
        : table(buildPageTable(map, false)),
          batch_mmu(cfg, table),
          ref_mmu(cfg, table, "ref")
    {
    }

    void run(const std::vector<MemAccess> &accs)
    {
        batch_mmu.translateBatch(accs.data(), accs.size(), bs);
        for (const MemAccess &a : accs)
            ref_mmu.translate(a.vaddr);
    }

    void expectInSync(const std::string &what)
    {
        expectStatsEqual(batch_mmu.stats(), ref_mmu.stats(), what);
    }
};

std::vector<MemAccess>
sameVpnBurst(Vpn vpn, std::size_t n)
{
    std::vector<MemAccess> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({vaOf(vpn) + i * 8, false});
    return out;
}

TEST(BatchL0Filter, FlushAllDropsTheCarriedVpn)
{
    FilterProbe probe;
    const Vpn vpn = baseVpn + 600;
    probe.run(sameVpnBurst(vpn, 4));
    probe.expectInSync("before flush");

    probe.batch_mmu.flushAll();
    probe.ref_mmu.flushAll();
    // After the flush the first access must miss again; a stale filter
    // would count it as an L1 hit and skip the refill.
    probe.run(sameVpnBurst(vpn, 4));
    probe.expectInSync("after flush");
    EXPECT_GE(probe.batch_mmu.stats().page_walks, 2u);
}

TEST(BatchL0Filter, InvalidatePageAfterRemapIsNotServedStale)
{
    FilterProbe probe;
    const Vpn vpn = baseVpn + 700;
    probe.run(sameVpnBurst(vpn, 3));
    probe.expectInSync("before remap");

    // OS migrates the page and shoots down the TLBs. The next batch
    // must re-walk and pick up the new frame.
    probe.table.remap4K(vpn, Ppn{0x4444});
    probe.batch_mmu.invalidatePage(vpn);
    probe.ref_mmu.invalidatePage(vpn);
    probe.run(sameVpnBurst(vpn, 3));
    probe.expectInSync("after remap+invalidate");
    // The refilled L1 entry carries the migrated frame, not the stale
    // one — observable through the per-access path.
    EXPECT_EQ(probe.batch_mmu.translate(vaOf(vpn)).ppn, Ppn{0x4444});
}

TEST(BatchL0Filter, SwitchProcessDropsTheCarriedVpn)
{
    FilterProbe probe;
    const Vpn vpn = baseVpn + 2;
    probe.run(sameVpnBurst(vpn, 3));
    probe.expectInSync("process A");

    // Same VA, different address space: the other process maps it to a
    // different frame.
    PageTable other = buildPageTable(probe.map, false);
    other.remap4K(vpn, Ppn{0x9999});
    ProcessContext ctx;
    ctx.table = &other;
    probe.batch_mmu.switchProcess(ctx);
    probe.ref_mmu.switchProcess(ctx);

    probe.run(sameVpnBurst(vpn, 3));
    probe.expectInSync("process B");
    EXPECT_EQ(probe.batch_mmu.translate(vaOf(vpn)).ppn, Ppn{0x9999});
}

TEST(BatchL0Filter, InterleavedPerAccessProbesInvalidateTheCarry)
{
    // A per-access translate() between two batches advances the L1
    // lookup counters; the next batch must notice and re-probe instead
    // of trusting the carried VPN (the probed page may have evicted
    // it). The reference MMU sees the identical interleaving.
    FilterProbe probe;
    const Vpn hot = baseVpn + 512;
    probe.run(sameVpnBurst(hot, 2));

    // Thrash the hot page's set via per-access calls: congruent pages
    // 512 + k*64 share a 64-entry 4-way set's index stride.
    for (const Vpn v : {baseVpn + 512 + 64, baseVpn + 512 + 128,
                        baseVpn + 512 + 192, baseVpn + 512 + 256}) {
        probe.batch_mmu.translate(vaOf(v));
        probe.ref_mmu.translate(vaOf(v));
    }
    probe.run(sameVpnBurst(hot, 2));
    probe.expectInSync("after interleaved probes");
}

// --- scalar vs SIMD dispatch levels -------------------------------------

TEST(BatchSimdLevels, GridCellsMatchAcrossLevels)
{
    // The vectorised batch kernel (VPN/eq pre-pass + set-probe kernel)
    // must land on results byte-identical to the scalar-dispatch
    // kernel AND the per-access reference, cell by cell. The MMU
    // captures its kernels at construction, so forcing the level
    // around the whole cell run pins the flavour.
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    const SimOptions opts = quickOptions();
    for (const Scheme scheme : gridSchemes()) {
        const std::string what = schemeName(scheme);
        SCOPED_TRACE(what);
        const CellFixture cell(opts, "canneal", ScenarioKind::MedContig,
                               scheme);
        const SimResult vec = runCellIn(
            TranslateMode::Batch, opts, cell, ScenarioKind::MedContig,
            scheme);
        SimResult scalar;
        SimResult scalar_ref;
        {
            test::ScopedSimdLevel forced(SimdLevel::Scalar);
            scalar = runCellIn(TranslateMode::Batch, opts, cell,
                               ScenarioKind::MedContig, scheme);
            scalar_ref = runCellIn(TranslateMode::PerAccess, opts, cell,
                                   ScenarioKind::MedContig, scheme);
        }
        expectResultsEqual(vec, scalar, what + " vec-batch vs scalar-batch");
        expectResultsEqual(vec, scalar_ref,
                           what + " vec-batch vs per-access");
    }
}

TEST(BatchSimdLevels, RandomizedDifferentialScalarVsSimd)
{
    // Same random chunked streams as the per-access differential, but
    // the reference is now the scalar-dispatch *batch* kernel: both
    // rigs take the batch path, only the kernel flavour differs. Any
    // pre-pass mistake (eq bit off by one, prev-VPN carry, stats
    // accounting) diverges the counters at some chunk boundary.
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    for (const std::uint64_t seed : {7ull, 21ull}) {
        DifferentialRig vec_rig;
        std::unique_ptr<DifferentialRig> scalar_rig;
        {
            test::ScopedSimdLevel forced(SimdLevel::Scalar);
            scalar_rig = std::make_unique<DifferentialRig>();
        }
        const std::vector<MemAccess> stream =
            randomMappedStream(20'000, seed);
        Rng chunks(seed * 77 + 5);
        ASSERT_EQ(vec_rig.pairs.size(), scalar_rig->pairs.size());
        for (std::size_t p = 0; p < vec_rig.pairs.size(); ++p) {
            Mmu &vec = *vec_rig.pairs[p].batch;
            Mmu &ref = *scalar_rig->pairs[p].batch;
            const std::string &name = vec_rig.pairs[p].name;
            SCOPED_TRACE(name + "/seed " + std::to_string(seed));
            BatchStats vec_bs;
            BatchStats ref_bs;
            std::size_t i = 0;
            while (i < stream.size()) {
                const std::size_t take = std::min(
                    static_cast<std::size_t>(chunks.nextBounded(65)),
                    stream.size() - i);
                vec.translateBatch(stream.data() + i, take, vec_bs);
                ref.translateBatch(stream.data() + i, take, ref_bs);
                i += take;
                expectStatsEqual(vec.stats(), ref.stats(),
                                 name + " at access " +
                                     std::to_string(i));
                if (HasFailure())
                    return; // one divergence floods the log otherwise
            }
            // The L0 filter must fire identically, not just the MMU
            // counters: the eq-bitset pre-pass IS the filter.
            EXPECT_EQ(vec_bs.accesses, ref_bs.accesses) << name;
            EXPECT_EQ(vec_bs.l1_hits, ref_bs.l1_hits) << name;
            EXPECT_EQ(vec_bs.l0_filtered, ref_bs.l0_filtered) << name;
        }
    }
}

// --- checked-build routing (satellite fix) ------------------------------

#ifdef ANCHORTLB_CHECKED
TEST(BatchCheckedBuild, OracleSeesEveryBatchAccess)
{
    // Plant the classic stale-TLB corruption (migration without
    // shootdown). The batch kernel must route through the verifying
    // per-access pipeline, so the oracle catches it on the *batch*
    // call — before the fix, batches bypassed verifyTranslation
    // entirely.
    detail::setThrowOnError(true);
    MemoryMap map = test::makeVariedMap();
    PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    BaselineMmu mmu(cfg, table);

    BatchStats bs;
    const std::vector<MemAccess> warm = sameVpnBurst(baseVpn + 2, 2);
    mmu.translateBatch(warm.data(), warm.size(), bs); // caches the page
    table.remap4K(baseVpn + 2, Ppn{0x4444}); // no shootdown: stale TLB

    const std::vector<MemAccess> again = sameVpnBurst(baseVpn + 2, 1);
    EXPECT_THROW(mmu.translateBatch(again.data(), again.size(), bs),
                 std::logic_error); // ANCHOR_CHECK panics throw this
    detail::setThrowOnError(false);
}
#endif // ANCHORTLB_CHECKED

} // namespace
} // namespace atlb
