/**
 * @file
 * Tests for the page-walk cache model.
 */

#include <gtest/gtest.h>

#include "mmu/baseline_mmu.hh"
#include "os/table_builder.hh"
#include "tlb/walk_cache.hh"

#include "../mmu/mmu_test_util.hh"

namespace atlb
{
namespace
{

using test::baseVpn;
using test::va;

TEST(WalkCache, ColdWalkTouchesAllLevels)
{
    WalkCache pwc(2, 4, 32);
    EXPECT_EQ(pwc.walkRefs(baseVpn, 4), 4u);
}

TEST(WalkCache, WarmWalkTouchesOnlyPte)
{
    WalkCache pwc(2, 4, 32);
    pwc.walkRefs(baseVpn, 4);
    // Same 2MB region: the PDE is cached, only the PTE is fetched.
    EXPECT_EQ(pwc.walkRefs(baseVpn + 5, 4), 1u);
}

TEST(WalkCache, HugeLeafStopsAtPde)
{
    WalkCache pwc(2, 4, 32);
    EXPECT_EQ(pwc.walkRefs(baseVpn, 3), 3u);
    // The PDPTE is now cached; a 2MB walk in the same 1GB region costs
    // one reference (the PDE leaf itself).
    EXPECT_EQ(pwc.walkRefs(baseVpn + 512, 3), 1u);
}

TEST(WalkCache, PdpteCoversGigabyteRegion)
{
    WalkCache pwc(2, 4, 32);
    pwc.walkRefs(baseVpn, 4);
    // Different 2MB region, same 1GB region: PDE misses, PDPTE hits.
    EXPECT_EQ(pwc.walkRefs(baseVpn + (1 << 10), 4), 2u);
}

TEST(WalkCache, Pml4CoversHalfTerabyte)
{
    WalkCache pwc(2, 4, 32);
    pwc.walkRefs(baseVpn, 4);
    // Different 1GB region, same 512GB region.
    EXPECT_EQ(pwc.walkRefs(baseVpn + (1ULL << 20), 4), 3u);
}

TEST(WalkCache, CapacityEvicts)
{
    WalkCache pwc(2, 4, 4);
    pwc.walkRefs(baseVpn, 4);
    for (std::uint64_t i = 1; i <= 4; ++i)
        pwc.walkRefs(baseVpn + i * 512, 4);
    // The original PDE got evicted (4-entry cache, 5 distinct PDEs),
    // but the PDPTE still covers the region.
    EXPECT_EQ(pwc.walkRefs(baseVpn + 5, 4), 2u);
}

TEST(WalkCache, FlushForgetsEverything)
{
    WalkCache pwc(2, 4, 32);
    pwc.walkRefs(baseVpn, 4);
    pwc.flush();
    EXPECT_EQ(pwc.walkRefs(baseVpn, 4), 4u);
}

TEST(WalkCachedMmu, VariableWalkLatency)
{
    const MemoryMap map = test::makeVariedMap();
    const PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    cfg.pwc_enabled = true;
    cfg.pwc_mem_ref_cycles = 10;
    BaselineMmu mmu(cfg, table);
    // Cold walk: 4 refs + 7-cycle lookup.
    EXPECT_EQ(mmu.translate(va(0)).cycles, 7 + 40u);
    // Warm walk in the same 2MB region: 1 ref.
    EXPECT_EQ(mmu.translate(va(1)).cycles, 7 + 10u);
}

TEST(WalkCachedMmu, FlushAllClearsPwc)
{
    const MemoryMap map = test::makeVariedMap();
    const PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    cfg.pwc_enabled = true;
    cfg.pwc_mem_ref_cycles = 10;
    BaselineMmu mmu(cfg, table);
    mmu.translate(va(0));
    mmu.flushAll();
    EXPECT_EQ(mmu.translate(va(0)).cycles, 7 + 40u);
}

TEST(WalkCachedMmu, DisabledKeepsFlatModel)
{
    const MemoryMap map = test::makeVariedMap();
    const PageTable table = buildPageTable(map, false);
    MmuConfig cfg; // pwc off by default
    BaselineMmu mmu(cfg, table);
    EXPECT_EQ(mmu.translate(va(0)).cycles,
              cfg.l2_hit_cycles + cfg.walk_cycles);
}

} // namespace
} // namespace atlb
