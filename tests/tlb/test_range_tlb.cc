/**
 * @file
 * Tests for the fully-associative range TLB (RMM).
 */

#include <gtest/gtest.h>

#include "tlb/range_tlb.hh"

namespace atlb
{
namespace
{

TEST(RangeTlb, MissOnEmpty)
{
    RangeTlb t(4);
    EXPECT_EQ(t.lookup(100), nullptr);
    EXPECT_EQ(t.stats().misses(), 1u);
}

TEST(RangeTlb, HitInsideRange)
{
    RangeTlb t(4);
    t.insert({100, 200, 5000});
    const RangeEntry *r = t.lookup(150);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->translate(150), 5050u);
    EXPECT_EQ(r->translate(100), 5000u);
}

TEST(RangeTlb, BoundsAreHalfOpen)
{
    RangeTlb t(4);
    t.insert({100, 200, 5000});
    EXPECT_NE(t.lookup(100), nullptr);
    EXPECT_NE(t.lookup(199), nullptr);
    EXPECT_EQ(t.lookup(200), nullptr);
    EXPECT_EQ(t.lookup(99), nullptr);
}

TEST(RangeTlb, MultipleRanges)
{
    RangeTlb t(4);
    t.insert({100, 200, 1000});
    t.insert({300, 400, 2000});
    EXPECT_EQ(t.lookup(150)->translate(150), 1050u);
    EXPECT_EQ(t.lookup(350)->translate(350), 2050u);
    EXPECT_EQ(t.lookup(250), nullptr);
    EXPECT_EQ(t.size(), 2u);
}

TEST(RangeTlb, LruEvictionWhenFull)
{
    RangeTlb t(2);
    t.insert({0, 10, 0});
    t.insert({10, 20, 100});
    t.lookup(5); // protect the first range
    t.insert({20, 30, 200});
    EXPECT_NE(t.lookup(5), nullptr);
    EXPECT_EQ(t.lookup(15), nullptr) << "LRU range should be evicted";
    EXPECT_NE(t.lookup(25), nullptr);
    EXPECT_EQ(t.stats().evictions, 1u);
}

TEST(RangeTlb, DuplicateInsertRefreshes)
{
    RangeTlb t(2);
    t.insert({0, 10, 0});
    t.insert({0, 10, 0});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.stats().evictions, 0u);
}

TEST(RangeTlb, FlushEmpties)
{
    RangeTlb t(4);
    t.insert({0, 10, 0});
    t.flush();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.lookup(5), nullptr);
}

TEST(RangeTlb, CapacityReported)
{
    RangeTlb t(32);
    EXPECT_EQ(t.capacity(), 32u);
    for (std::uint64_t i = 0; i < 64; ++i)
        t.insert({i * 10, i * 10 + 10, i * 100});
    EXPECT_EQ(t.size(), 32u);
}

} // namespace
} // namespace atlb
