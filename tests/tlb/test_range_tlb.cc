/**
 * @file
 * Tests for the fully-associative range TLB (RMM).
 */

#include <gtest/gtest.h>

#include "tlb/range_tlb.hh"

namespace atlb
{
namespace
{

TEST(RangeTlb, MissOnEmpty)
{
    RangeTlb t(4);
    EXPECT_EQ(t.lookup(Vpn{100}), nullptr);
    EXPECT_EQ(t.stats().misses(), 1u);
}

TEST(RangeTlb, HitInsideRange)
{
    RangeTlb t(4);
    t.insert({Vpn{100}, Vpn{200}, Ppn{5000}});
    const RangeEntry *r = t.lookup(Vpn{150});
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->translate(Vpn{150}), Ppn{5050});
    EXPECT_EQ(r->translate(Vpn{100}), Ppn{5000});
}

TEST(RangeTlb, BoundsAreHalfOpen)
{
    RangeTlb t(4);
    t.insert({Vpn{100}, Vpn{200}, Ppn{5000}});
    EXPECT_NE(t.lookup(Vpn{100}), nullptr);
    EXPECT_NE(t.lookup(Vpn{199}), nullptr);
    EXPECT_EQ(t.lookup(Vpn{200}), nullptr);
    EXPECT_EQ(t.lookup(Vpn{99}), nullptr);
}

TEST(RangeTlb, MultipleRanges)
{
    RangeTlb t(4);
    t.insert({Vpn{100}, Vpn{200}, Ppn{1000}});
    t.insert({Vpn{300}, Vpn{400}, Ppn{2000}});
    EXPECT_EQ(t.lookup(Vpn{150})->translate(Vpn{150}), Ppn{1050});
    EXPECT_EQ(t.lookup(Vpn{350})->translate(Vpn{350}), Ppn{2050});
    EXPECT_EQ(t.lookup(Vpn{250}), nullptr);
    EXPECT_EQ(t.size(), 2u);
}

TEST(RangeTlb, LruEvictionWhenFull)
{
    RangeTlb t(2);
    t.insert({Vpn{0}, Vpn{10}, Ppn{0}});
    t.insert({Vpn{10}, Vpn{20}, Ppn{100}});
    t.lookup(Vpn{5}); // protect the first range
    t.insert({Vpn{20}, Vpn{30}, Ppn{200}});
    EXPECT_NE(t.lookup(Vpn{5}), nullptr);
    EXPECT_EQ(t.lookup(Vpn{15}), nullptr) << "LRU range should be evicted";
    EXPECT_NE(t.lookup(Vpn{25}), nullptr);
    EXPECT_EQ(t.stats().evictions, 1u);
}

TEST(RangeTlb, DuplicateInsertRefreshes)
{
    RangeTlb t(2);
    t.insert({Vpn{0}, Vpn{10}, Ppn{0}});
    t.insert({Vpn{0}, Vpn{10}, Ppn{0}});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.stats().evictions, 0u);
}

TEST(RangeTlb, FlushEmpties)
{
    RangeTlb t(4);
    t.insert({Vpn{0}, Vpn{10}, Ppn{0}});
    t.flush();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.lookup(Vpn{5}), nullptr);
}

TEST(RangeTlb, CapacityReported)
{
    RangeTlb t(32);
    EXPECT_EQ(t.capacity(), 32u);
    for (std::uint64_t i = 0; i < 64; ++i)
        t.insert({Vpn{i * 10}, Vpn{i * 10 + 10}, Ppn{i * 100}});
    EXPECT_EQ(t.size(), 32u);
}

// ---------------------------------------------------------------------
// ASID tagging: ranges of different address spaces coexist and only
// match lookups of their own space.
// ---------------------------------------------------------------------

TEST(RangeTlbAsid, RangesOnlyMatchTheirOwnSpace)
{
    RangeTlb t(4);
    t.setAsid(Asid{1});
    t.insert({Vpn{100}, Vpn{200}, Ppn{1000}});

    t.setAsid(Asid{2});
    EXPECT_EQ(t.lookup(Vpn{150}), nullptr);
    t.insert({Vpn{100}, Vpn{200}, Ppn{2000}});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.lookup(Vpn{150})->translate(Vpn{150}), Ppn{2050});

    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(Vpn{150})->translate(Vpn{150}), Ppn{1050});
}

TEST(RangeTlbAsid, InvalidateContainingIsAsidQualified)
{
    RangeTlb t(4);
    t.setAsid(Asid{1});
    t.insert({Vpn{100}, Vpn{200}, Ppn{1000}});
    t.setAsid(Asid{2});
    t.insert({Vpn{100}, Vpn{200}, Ppn{2000}});

    // Shoot down space 1's range while space 2 is current.
    t.invalidateContaining(Vpn{150}, Asid{1});
    EXPECT_EQ(t.lookup(Vpn{150})->translate(Vpn{150}), Ppn{2050});
    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(Vpn{150}), nullptr);
}

TEST(RangeTlbAsid, InvalidateAsidDropsAllRangesOfSpace)
{
    RangeTlb t(8);
    t.setAsid(Asid{1});
    t.insert({Vpn{0}, Vpn{10}, Ppn{0}});
    t.insert({Vpn{20}, Vpn{30}, Ppn{100}});
    t.setAsid(Asid{2});
    t.insert({Vpn{0}, Vpn{10}, Ppn{200}});

    t.invalidateAsid(Asid{1});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.lookup(Vpn{5})->translate(Vpn{5}), Ppn{205});
    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(Vpn{5}), nullptr);
    EXPECT_EQ(t.lookup(Vpn{25}), nullptr);
}

} // namespace
} // namespace atlb
