/**
 * @file
 * Tests for the set-associative TLB.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/simd_test_util.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{
namespace
{

TlbEntry
entry(EntryKind kind, std::uint64_t key, std::uint64_t ppn,
      std::uint32_t aux = 0)
{
    TlbEntry e;
    e.kind = kind;
    e.key = TlbKey{key};
    e.ppn = Ppn{ppn};
    e.aux = aux;
    e.valid = true;
    return e;
}

TEST(SetAssocTlb, Geometry)
{
    SetAssocTlb t(1024, 8, "l2");
    EXPECT_EQ(t.numSets(), 128u);
    EXPECT_EQ(t.numWays(), 8u);
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(SetAssocTlb, MissOnEmpty)
{
    SetAssocTlb t(64, 4, "t");
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42}), nullptr);
    EXPECT_EQ(t.stats().lookups, 1u);
    EXPECT_EQ(t.stats().hits, 0u);
}

TEST(SetAssocTlb, InsertThenHit)
{
    SetAssocTlb t(64, 4, "t");
    t.insert(entry(EntryKind::Page4K, 42, 777));
    const TlbEntry *e = t.lookup(EntryKind::Page4K, TlbKey{42});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppn, Ppn{777});
    EXPECT_EQ(t.stats().hits, 1u);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(SetAssocTlb, KindsDoNotCollide)
{
    SetAssocTlb t(64, 4, "t");
    t.insert(entry(EntryKind::Page4K, 42, 1));
    t.insert(entry(EntryKind::Page2M, 42, 2));
    t.insert(entry(EntryKind::Anchor, 42, 3, 16));
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42})->ppn, Ppn{1});
    EXPECT_EQ(t.lookup(EntryKind::Page2M, TlbKey{42})->ppn, Ppn{2});
    EXPECT_EQ(t.lookup(EntryKind::Anchor, TlbKey{42})->ppn, Ppn{3});
    EXPECT_EQ(t.lookup(EntryKind::Anchor, TlbKey{42})->aux, 16u);
    EXPECT_EQ(t.lookup(EntryKind::Cluster, TlbKey{42}), nullptr);
}

TEST(SetAssocTlb, OverwriteInPlace)
{
    SetAssocTlb t(64, 4, "t");
    t.insert(entry(EntryKind::Page4K, 7, 100));
    t.insert(entry(EntryKind::Page4K, 7, 200));
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{7})->ppn, Ppn{200});
    EXPECT_EQ(t.stats().evictions, 0u);
}

TEST(SetAssocTlb, LruEvictionWithinSet)
{
    SetAssocTlb t(8, 4, "t"); // 2 sets
    // Fill set 0 (even keys land in set 0).
    t.insert(entry(EntryKind::Page4K, 0, 10));
    t.insert(entry(EntryKind::Page4K, 2, 12));
    t.insert(entry(EntryKind::Page4K, 4, 14));
    t.insert(entry(EntryKind::Page4K, 6, 16));
    // Touch 0 so key 2 becomes LRU.
    t.lookup(EntryKind::Page4K, TlbKey{0});
    t.insert(entry(EntryKind::Page4K, 8, 18));
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{2}), nullptr)
        << "LRU not evicted";
    EXPECT_NE(t.lookup(EntryKind::Page4K, TlbKey{0}), nullptr);
    EXPECT_NE(t.lookup(EntryKind::Page4K, TlbKey{8}), nullptr);
    EXPECT_EQ(t.stats().evictions, 1u);
}

TEST(SetAssocTlb, EvictionDoesNotCrossSets)
{
    SetAssocTlb t(8, 4, "t"); // 2 sets
    for (std::uint64_t k = 0; k < 8; k += 2)
        t.insert(entry(EntryKind::Page4K, k, k));
    // Odd keys (set 1) must all fit without evicting set 0.
    for (std::uint64_t k = 1; k < 8; k += 2)
        t.insert(entry(EntryKind::Page4K, k, k));
    EXPECT_EQ(t.validCount(), 8u);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_NE(t.probe(EntryKind::Page4K, TlbKey{k}), nullptr) << k;
}

TEST(SetAssocTlb, ProbeDoesNotTouchLruOrStats)
{
    SetAssocTlb t(8, 2, "t");
    t.insert(entry(EntryKind::Page4K, 0, 1));
    t.insert(entry(EntryKind::Page4K, 4, 2));
    const auto lookups_before = t.stats().lookups;
    // Probing key 0 must not protect it from LRU eviction.
    t.probe(EntryKind::Page4K, TlbKey{0});
    EXPECT_EQ(t.stats().lookups, lookups_before);
    t.insert(entry(EntryKind::Page4K, 8, 3));
    EXPECT_EQ(t.probe(EntryKind::Page4K, TlbKey{0}), nullptr);
}

TEST(SetAssocTlb, FlushInvalidatesEverything)
{
    SetAssocTlb t(64, 4, "t");
    for (std::uint64_t k = 0; k < 32; ++k)
        t.insert(entry(EntryKind::Page4K, k, k));
    t.flush();
    EXPECT_EQ(t.validCount(), 0u);
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{0}), nullptr);
}

TEST(SetAssocTlb, InvalidateSingleEntry)
{
    SetAssocTlb t(64, 4, "t");
    t.insert(entry(EntryKind::Page4K, 1, 1));
    t.insert(entry(EntryKind::Page4K, 2, 2));
    t.invalidate(EntryKind::Page4K, TlbKey{1});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{1}), nullptr);
    EXPECT_NE(t.lookup(EntryKind::Page4K, TlbKey{2}), nullptr);
    // Invalidating a missing entry is a no-op.
    t.invalidate(EntryKind::Page4K, TlbKey{99});
}

TEST(SetAssocTlb, StatsCountInsertions)
{
    SetAssocTlb t(64, 4, "t");
    for (std::uint64_t k = 0; k < 10; ++k)
        t.insert(entry(EntryKind::Page4K, k, k));
    EXPECT_EQ(t.stats().insertions, 10u);
}

TEST(SetAssocTlb, FullyAssociativeSingleSet)
{
    SetAssocTlb t(4, 4, "fa"); // 1 set
    for (std::uint64_t k = 100; k < 104; ++k)
        t.insert(entry(EntryKind::Page4K, k, k));
    EXPECT_EQ(t.validCount(), 4u);
    t.insert(entry(EntryKind::Page4K, 104, 104));
    EXPECT_EQ(t.validCount(), 4u);
    EXPECT_EQ(t.probe(EntryKind::Page4K, TlbKey{100}), nullptr);
}

/** Capacity sweep: working sets within capacity never miss after warmup. */
class TlbCapacity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TlbCapacity, NoConflictMissesWithinCapacity)
{
    const unsigned ways = GetParam();
    SetAssocTlb t(64, ways, "t");
    const unsigned sets = t.numSets();
    // One entry per set per way: conflict-free by construction.
    for (unsigned w = 0; w < ways; ++w)
        for (unsigned s = 0; s < sets; ++s)
            t.insert(entry(EntryKind::Page4K, w * sets + s, w));
    for (unsigned w = 0; w < ways; ++w)
        for (unsigned s = 0; s < sets; ++s)
            ASSERT_NE(
                t.probe(EntryKind::Page4K, TlbKey{w * sets + s}),
                nullptr);
}

INSTANTIATE_TEST_SUITE_P(Ways, TlbCapacity, ::testing::Values(1, 2, 4, 8));

// --- scalar vs SIMD probe differential ----------------------------------

/**
 * SimdDispatch TLB whose probe kernel was captured under a forced
 * dispatch level — under SimdLevel::Scalar the capture degrades to
 * the inline scalar scan, making "forced scalar" the reference the
 * vector-level instance is diffed against.
 */
std::unique_ptr<SetAssocTlb>
makeTlbAt(SimdLevel level, unsigned entries, unsigned ways,
          const std::string &name)
{
    test::ScopedSimdLevel forced(level);
    return std::make_unique<SetAssocTlb>(entries, ways, name,
                                         SetProbe::SimdDispatch);
}

void
expectTlbStatsEqual(const SetAssocTlb &a, const SetAssocTlb &b,
                    const std::string &what)
{
    EXPECT_EQ(a.stats().lookups, b.stats().lookups) << what;
    EXPECT_EQ(a.stats().hits, b.stats().hits) << what;
    EXPECT_EQ(a.stats().insertions, b.stats().insertions) << what;
    EXPECT_EQ(a.stats().evictions, b.stats().evictions) << what;
    EXPECT_EQ(a.validCount(), b.validCount()) << what;
}

TEST(SetAssocTlbSimd, RandomizedOpsMatchScalarReference)
{
    // The vector probe must be interchangeable with the scalar scan for
    // every externally observable outcome: hit/miss, returned entry,
    // LRU updates (observed through later victim choices), stats. The
    // key space is kept small relative to capacity so sets overflow and
    // evictions/LRU ties happen constantly; geometries include the
    // non-power-of-two way counts the cluster TLB uses (vector groups
    // plus a scalar tail).
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    const EntryKind kinds[] = {EntryKind::Page4K, EntryKind::Page2M,
                               EntryKind::Anchor, EntryKind::Cluster};
    struct Geometry
    {
        unsigned entries, ways;
    } const geometries[] = {{4, 4}, {8, 4}, {64, 4}, {320, 5},
                            {768, 6}, {1024, 8}};
    for (const Geometry g : geometries) {
        for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
            const std::string what = std::to_string(g.entries) + "/" +
                                     std::to_string(g.ways) + " seed " +
                                     std::to_string(seed);
            SCOPED_TRACE(what);
            const std::unique_ptr<SetAssocTlb> vec = makeTlbAt(
                detectedSimdLevel(), g.entries, g.ways, "vec");
            const std::unique_ptr<SetAssocTlb> ref =
                makeTlbAt(SimdLevel::Scalar, g.entries, g.ways, "ref");
            Rng rng(seed);
            const std::uint64_t keyspace =
                3 * (g.entries / g.ways) * g.ways / 2 + 1;
            for (unsigned op = 0; op < 5'000; ++op) {
                const EntryKind kind = kinds[rng.nextBounded(4)];
                const TlbKey key{rng.nextBounded(keyspace)};
                const unsigned what_op = static_cast<unsigned>(
                    rng.nextBounded(100));
                if (what_op < 55) {
                    const TlbEntry *ve = vec->lookup(kind, key);
                    const TlbEntry *re = ref->lookup(kind, key);
                    ASSERT_EQ(ve != nullptr, re != nullptr) << op;
                    if (ve != nullptr) {
                        ASSERT_EQ(ve->ppn, re->ppn) << op;
                        ASSERT_EQ(ve->aux, re->aux) << op;
                    }
                } else if (what_op < 85) {
                    const TlbEntry e = entry(
                        kind, key.raw(), op + 1,
                        static_cast<std::uint32_t>(op));
                    vec->insert(e);
                    ref->insert(e);
                } else if (what_op < 95) {
                    vec->invalidate(kind, key);
                    ref->invalidate(kind, key);
                } else if (what_op < 99) {
                    const TlbEntry *ve = vec->probe(kind, key);
                    const TlbEntry *re = ref->probe(kind, key);
                    ASSERT_EQ(ve != nullptr, re != nullptr) << op;
                } else {
                    vec->flush();
                    ref->flush();
                }
                if (op % 256 == 0)
                    expectTlbStatsEqual(*vec, *ref,
                                        what + " op " +
                                            std::to_string(op));
                if (HasFailure())
                    return; // one divergence floods the log otherwise
            }
            expectTlbStatsEqual(*vec, *ref, what + " final");
        }
    }
}

TEST(SetAssocTlbSimd, LruTieVictimsIdenticalAcrossLevels)
{
    // All-equal last_use ties (never-touched ways) and deliberate
    // touch patterns must elect the same victim under both probe
    // flavours — victim choice is scalar by design, but it consumes
    // the LRU stamps the vector lookup wrote.
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    const std::unique_ptr<SetAssocTlb> vec =
        makeTlbAt(detectedSimdLevel(), 4, 4, "vec");
    const std::unique_ptr<SetAssocTlb> ref =
        makeTlbAt(SimdLevel::Scalar, 4, 4, "ref");
    for (std::uint64_t k = 0; k < 4; ++k) {
        vec->insert(entry(EntryKind::Page4K, k, k));
        ref->insert(entry(EntryKind::Page4K, k, k));
    }
    // Untouched tie: both must evict the same way.
    vec->insert(entry(EntryKind::Page4K, 100, 100));
    ref->insert(entry(EntryKind::Page4K, 100, 100));
    for (std::uint64_t k = 0; k < 4; ++k)
        ASSERT_EQ(vec->probe(EntryKind::Page4K, TlbKey{k}) != nullptr,
                  ref->probe(EntryKind::Page4K, TlbKey{k}) != nullptr)
            << k;
    // Touch two survivors in opposite-of-insertion order, then evict
    // twice more; the vector lookup's LRU stamps drive the choices.
    for (const std::uint64_t k : {3ull, 2ull}) {
        vec->lookup(EntryKind::Page4K, TlbKey{k});
        ref->lookup(EntryKind::Page4K, TlbKey{k});
    }
    for (const std::uint64_t k : {101ull, 102ull}) {
        vec->insert(entry(EntryKind::Page4K, k, k));
        ref->insert(entry(EntryKind::Page4K, k, k));
    }
    for (std::uint64_t k = 0; k < 103; ++k)
        ASSERT_EQ(vec->probe(EntryKind::Page4K, TlbKey{k}) != nullptr,
                  ref->probe(EntryKind::Page4K, TlbKey{k}) != nullptr)
            << k;
    expectTlbStatsEqual(*vec, *ref, "lru ties");
}

// ---------------------------------------------------------------------
// ASID tagging: keys of different address spaces live side by side in
// the same arrays and never match each other.
// ---------------------------------------------------------------------

TEST(SetAssocTlbAsid, AsidZeroIsByteIdenticalUntagged)
{
    // The single-process default: tagging with ASID 0 is the identity,
    // so every pre-ASID golden stays byte-for-byte.
    static_assert(tlbTagKey(TlbKey{42}, Asid{0}) == TlbKey{42});
    SetAssocTlb t(64, 4, "t");
    EXPECT_EQ(t.asid(), Asid{0});
    t.insert(entry(EntryKind::Page4K, 42, 777));
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42})->ppn, Ppn{777});
}

TEST(SetAssocTlbAsid, TaggingSeparatesKeySpaces)
{
    SetAssocTlb t(64, 4, "t");
    t.setAsid(Asid{1});
    t.insert(entry(EntryKind::Page4K, 42, 100));
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42})->ppn, Ppn{100});

    // Same untagged key, other address space: no match, and the two
    // entries coexist after the second insert.
    t.setAsid(Asid{2});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42}), nullptr);
    t.insert(entry(EntryKind::Page4K, 42, 200));
    EXPECT_EQ(t.validCount(), 2u);
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42})->ppn, Ppn{200});

    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{42})->ppn, Ppn{100});
}

TEST(SetAssocTlbAsid, InvalidateAsidDropsOnlyThatSpace)
{
    SetAssocTlb t(64, 4, "t");
    t.setAsid(Asid{1});
    t.insert(entry(EntryKind::Page4K, 1, 11));
    t.insert(entry(EntryKind::Anchor, 2, 12, 8));
    t.setAsid(Asid{2});
    t.insert(entry(EntryKind::Page4K, 1, 21));

    t.invalidateAsid(Asid{1});
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{1})->ppn, Ppn{21});
    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{1}), nullptr);
    EXPECT_EQ(t.lookup(EntryKind::Anchor, TlbKey{2}), nullptr);
}

TEST(SetAssocTlbAsid, CrossAsidInvalidateTargetsOneKey)
{
    SetAssocTlb t(64, 4, "t");
    t.setAsid(Asid{1});
    t.insert(entry(EntryKind::Page4K, 7, 100));
    t.setAsid(Asid{2});
    t.insert(entry(EntryKind::Page4K, 7, 200));

    // A shootdown aimed at a descheduled address space: current ASID
    // stays 2, the victim is named explicitly.
    t.invalidate(EntryKind::Page4K, TlbKey{7}, Asid{1});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{7})->ppn, Ppn{200});
    t.setAsid(Asid{1});
    EXPECT_EQ(t.lookup(EntryKind::Page4K, TlbKey{7}), nullptr);
}

} // namespace
} // namespace atlb
