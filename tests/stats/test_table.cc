/**
 * @file
 * Tests for ASCII/CSV table rendering.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "stats/table.hh"

namespace atlb
{
namespace
{

TEST(Table, BasicShape)
{
    Table t("demo", {"a", "b"});
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.numRows(), 0u);
    t.beginRow();
    t.cell(std::string("x"));
    t.cell(std::uint64_t{7});
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_EQ(t.at(0, 0), "x");
    EXPECT_EQ(t.at(0, 1), "7");
}

TEST(Table, DoubleFormatting)
{
    Table t("demo", {"v"});
    t.beginRow();
    t.cell(3.14159, 2);
    EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(Table, PercentFormatting)
{
    Table t("demo", {"v"});
    t.beginRow();
    t.cellPercent(0.1234, 1);
    EXPECT_EQ(t.at(0, 0), "12.3%");
}

TEST(Table, AsciiContainsHeadersAndCells)
{
    Table t("title here", {"col1", "col2"});
    t.beginRow();
    t.cell(std::string("v1"));
    t.cell(std::string("v2"));
    const std::string out = t.toAscii();
    EXPECT_NE(out.find("title here"), std::string::npos);
    EXPECT_NE(out.find("col1"), std::string::npos);
    EXPECT_NE(out.find("v2"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table t("demo", {"a", "b"});
    t.beginRow();
    t.cell(std::string("x,y"));
    t.cell(std::string("say \"hi\""));
    const std::string out = t.toCsv();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderLine)
{
    Table t("demo", {"h1", "h2"});
    EXPECT_EQ(t.toCsv(), "h1,h2\n");
}

TEST(Table, ShortRowsRenderEmptyCells)
{
    Table t("demo", {"a", "b", "c"});
    t.beginRow();
    t.cell(std::string("only"));
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("only,,"), std::string::npos);
}

class TableErrors : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(TableErrors, CellBeforeRowPanics)
{
    Table t("demo", {"a"});
    EXPECT_THROW(t.cell(std::string("x")), std::logic_error);
}

TEST_F(TableErrors, RowOverflowPanics)
{
    Table t("demo", {"a"});
    t.beginRow();
    t.cell(std::string("x"));
    EXPECT_THROW(t.cell(std::string("y")), std::logic_error);
}

TEST_F(TableErrors, OutOfRangeAtPanics)
{
    Table t("demo", {"a"});
    EXPECT_THROW(t.at(0, 0), std::logic_error);
}

} // namespace
} // namespace atlb
