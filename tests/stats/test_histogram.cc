/**
 * @file
 * Tests for the histogram statistics.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace atlb
{
namespace
{

TEST(Histogram, StartsEmpty)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.weightedSum(), 0u);
    EXPECT_EQ(h.distinct(), 0u);
    EXPECT_EQ(h.minKey(), 0u);
    EXPECT_EQ(h.maxKey(), 0u);
}

TEST(Histogram, AddAccumulates)
{
    Histogram h;
    h.add(4, 2);
    h.add(4, 3);
    h.add(16);
    EXPECT_EQ(h.count(4), 5u);
    EXPECT_EQ(h.count(16), 1u);
    EXPECT_EQ(h.count(99), 0u);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.weightedSum(), 4 * 5 + 16u);
    EXPECT_EQ(h.distinct(), 2u);
}

TEST(Histogram, ZeroCountIsNoop)
{
    Histogram h;
    h.add(7, 0);
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(7), 0u);
}

TEST(Histogram, MinMaxKeys)
{
    Histogram h;
    h.add(100);
    h.add(3);
    h.add(50);
    EXPECT_EQ(h.minKey(), 3u);
    EXPECT_EQ(h.maxKey(), 100u);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(8, 4);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.weightedSum(), 0u);
}

TEST(Histogram, CdfMonotoneAndEndsAtOne)
{
    Histogram h;
    h.add(1, 10);
    h.add(8, 5);
    h.add(64, 1);
    const auto cdf = h.cdf();
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_LT(cdf[0].second, cdf[1].second);
    EXPECT_LT(cdf[1].second, cdf[2].second);
    EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
    EXPECT_DOUBLE_EQ(cdf[0].second, 10.0 / 16.0);
}

TEST(Histogram, WeightedCdfWeightsByKeyTimesCount)
{
    Histogram h;
    h.add(1, 10); // weight 10
    h.add(10, 1); // weight 10
    const auto cdf = h.weightedCdf();
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
    EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
}

TEST(Histogram, EmptyCdfs)
{
    Histogram h;
    EXPECT_TRUE(h.cdf().empty());
    EXPECT_TRUE(h.weightedCdf().empty());
}

TEST(Histogram, WeightedQuantile)
{
    Histogram h;
    h.add(1, 512);  // 512 pages in 1-page chunks
    h.add(512, 1);  // 512 pages in one big chunk
    EXPECT_EQ(h.weightedQuantile(0.25), 1u);
    EXPECT_EQ(h.weightedQuantile(0.75), 512u);
    EXPECT_EQ(h.weightedQuantile(1.0), 512u);
    EXPECT_EQ(h.weightedQuantile(-1.0), 1u); // clamped
}

TEST(Log2Histogram, BucketsByFloorLog2)
{
    Log2Histogram h(10);
    h.add(0); // bucket 0
    h.add(1); // bucket 0
    h.add(2); // bucket 1
    h.add(3); // bucket 1
    h.add(4); // bucket 2
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Log2Histogram, OverflowClampsToLastBucket)
{
    Log2Histogram h(4);
    h.add(1ULL << 60);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, ClearResets)
{
    Log2Histogram h(8);
    h.add(100);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucket(i), 0u);
}

TEST(Log2Histogram, SumAndMaxTrackExactValues)
{
    Log2Histogram h(16);
    h.add(3);
    h.add(7);
    h.add(100);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.maxValue(), 100u);
}

TEST(Log2Histogram, BucketUpperBounds)
{
    Log2Histogram h(64);
    EXPECT_EQ(h.bucketUpperBound(0), 1u);
    EXPECT_EQ(h.bucketUpperBound(1), 3u);
    EXPECT_EQ(h.bucketUpperBound(10), 2047u);
    EXPECT_EQ(h.bucketUpperBound(63), ~std::uint64_t{0});
}

TEST(Log2Histogram, QuantileEmptyIsZero)
{
    Log2Histogram h(8);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Log2Histogram, QuantileSingleValueClampsToMax)
{
    Log2Histogram h(16);
    h.add(100); // bucket 6, upper bound 127 -> clamped to 100
    EXPECT_EQ(h.quantile(0.0), 100u);
    EXPECT_EQ(h.quantile(0.5), 100u);
    EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Log2Histogram, QuantilePicksContainingBucket)
{
    Log2Histogram h(16);
    for (int i = 0; i < 99; ++i)
        h.add(1); // bucket 0, upper bound 1
    h.add(1000); // bucket 9, upper bound 1023
    EXPECT_EQ(h.quantile(0.50), 1u);
    EXPECT_EQ(h.quantile(0.99), 1u);
    EXPECT_EQ(h.quantile(1.0), 1000u); // clamped to the observed max
}

TEST(Log2Histogram, QuantileClampsArgument)
{
    Log2Histogram h(8);
    h.add(2);
    h.add(8);
    EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

} // namespace
} // namespace atlb
