/**
 * @file
 * Tests for the binary trace file format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace atlb
{
namespace
{

class TraceIoTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Unique per test case and process: ctest runs cases of this
        // binary concurrently.
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = testing::TempDir() + "atlb_" + info->name() + "_" +
                std::to_string(::getpid()) + ".bin";
        detail::setThrowOnError(true);
    }
    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTrip)
{
    std::vector<MemAccess> accesses = {
        {VirtAddr{0x7f0000000000}, false},
        {VirtAddr{0x7f0000001008}, true},
        {VirtAddr{0x12345678}, false},
        {VirtAddr{~0ULL - 7}, true},
    };
    {
        TraceWriter w(path_);
        for (const auto &a : accesses)
            w.append(a);
        EXPECT_EQ(w.written(), accesses.size());
    }
    TraceFileSource src(path_);
    EXPECT_EQ(src.length(), accesses.size());
    MemAccess got;
    for (const auto &expect : accesses) {
        ASSERT_TRUE(src.next(got));
        EXPECT_EQ(got.vaddr, VirtAddr{expect.vaddr.raw() & ~1ULL});
        EXPECT_EQ(got.write, expect.write);
    }
    EXPECT_FALSE(src.next(got));
}

TEST_F(TraceIoTest, EmptyTrace)
{
    { TraceWriter w(path_); }
    TraceFileSource src(path_);
    EXPECT_EQ(src.length(), 0u);
    MemAccess a;
    EXPECT_FALSE(src.next(a));
}

TEST_F(TraceIoTest, ResetReplays)
{
    {
        TraceWriter w(path_);
        w.append({VirtAddr{0x1000}, false});
        w.append({VirtAddr{0x2000}, true});
    }
    TraceFileSource src(path_);
    MemAccess a;
    ASSERT_TRUE(src.next(a));
    ASSERT_TRUE(src.next(a));
    ASSERT_FALSE(src.next(a));
    src.reset();
    ASSERT_TRUE(src.next(a));
    EXPECT_EQ(a.vaddr, VirtAddr{0x1000});
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileSource("/nonexistent/path/trace.bin"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "NOTATRACEFILE___garbage";
    }
    EXPECT_THROW(TraceFileSource src(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyIsFatalAtOpen)
{
    {
        TraceWriter w(path_);
        for (int i = 0; i < 10; ++i)
            w.append({VirtAddr{static_cast<std::uint64_t>(i) << 12}, false});
    }
    // Chop half a record: the open-time size check must reject the file
    // before any record is served (previously this failed mid-replay).
    {
        std::ifstream in(path_, std::ios::binary | std::ios::ate);
        const auto size = in.tellg();
        std::vector<char> buf(static_cast<std::size_t>(size) - 4);
        in.seekg(0);
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    EXPECT_THROW(TraceFileSource src(path_), std::runtime_error);
}

TEST_F(TraceIoTest, OversizedFileIsFatalAtOpen)
{
    {
        TraceWriter w(path_);
        for (int i = 0; i < 10; ++i)
            w.append({VirtAddr{static_cast<std::uint64_t>(i) << 12}, false});
    }
    // Append stray bytes: the header now undercounts the body, which
    // would silently drop the tail without the size check.
    {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::app);
        out << "junk";
    }
    EXPECT_THROW(TraceFileSource src(path_), std::runtime_error);
}

TEST_F(TraceIoTest, OverflowingHeaderCountIsFatalAtOpen)
{
    // A 16-byte file claiming 2^61 accesses makes count * 8 wrap to 0,
    // so a naive `16 + count * 8 == size` check would pass; the count
    // must be bounded by division before it is multiplied.
    {
        TraceWriter w(path_); // empty trace: header only
    }
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(8);
        const std::uint64_t bogus = 1ULL << 61;
        for (int i = 0; i < 8; ++i) {
            const char byte =
                static_cast<char>((bogus >> (8 * i)) & 0xff);
            f.write(&byte, 1);
        }
    }
    EXPECT_THROW(TraceFileSource src(path_), std::runtime_error);
}

TEST_F(TraceIoTest, SkipSeeksToTheSamePositionAsDraining)
{
    const std::uint64_t n = 1'000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({VirtAddr{i << 12}, false});
    }

    // skip is an O(1) seek over the fixed-width records; it must land
    // exactly where draining lands, compose across calls, and clamp at
    // the end of the file.
    TraceFileSource drained(path_);
    TraceFileSource skipped(path_);
    MemAccess a, b;
    for (int i = 0; i < 400; ++i)
        ASSERT_TRUE(drained.next(a));
    skipped.skip(123);
    skipped.skip(277);
    for (std::uint64_t i = 400; i < n; ++i) {
        ASSERT_TRUE(drained.next(a));
        ASSERT_TRUE(skipped.next(b));
        ASSERT_EQ(a.vaddr, b.vaddr) << "record " << i;
        ASSERT_EQ(a.write, b.write) << "record " << i;
    }
    EXPECT_FALSE(drained.next(a));
    EXPECT_FALSE(skipped.next(b));

    TraceFileSource past_end(path_);
    past_end.skip(n + 500);
    EXPECT_FALSE(past_end.next(a));
    past_end.reset();
    EXPECT_TRUE(past_end.next(a));
    EXPECT_EQ(a.vaddr, VirtAddr{0});
}

TEST_F(TraceIoTest, LargeRoundTripPreservesOrder)
{
    const std::uint64_t n = 50000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({VirtAddr{(i * 0x9e3779b9ULL) << 3}, (i & 3) == 0});
    }
    TraceFileSource src(path_);
    MemAccess a;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(src.next(a));
        ASSERT_EQ(a.vaddr, VirtAddr{((i * 0x9e3779b9ULL) << 3) & ~1ULL});
        ASSERT_EQ(a.write, (i & 3) == 0);
    }
    EXPECT_FALSE(src.next(a));
}

} // namespace
} // namespace atlb
