/**
 * @file
 * Tests for the page-level trace profiler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/profiler.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

MemAccess
page(std::uint64_t vpn)
{
    return {vaOf(Vpn{vpn}), false};
}

TEST(Profiler, CountsBasics)
{
    TraceProfiler prof;
    prof.record({vaOf(Vpn{1}), true});
    prof.record({vaOf(Vpn{2}), false});
    prof.record({vaOf(Vpn{1}) + 64, false});
    const TraceProfile p = prof.profile();
    EXPECT_EQ(p.accesses, 3u);
    EXPECT_EQ(p.writes, 1u);
    EXPECT_EQ(p.unique_pages, 2u);
    EXPECT_EQ(p.cold_accesses, 2u);
}

TEST(Profiler, SamePageFraction)
{
    TraceProfiler prof;
    for (int i = 0; i < 10; ++i)
        prof.record(page(7)); // 1 cold + 9 same-page
    const TraceProfile p = prof.profile();
    EXPECT_NEAR(p.same_page_fraction, 0.9, 1e-9);
    EXPECT_EQ(p.unique_pages, 1u);
}

TEST(Profiler, SequentialFraction)
{
    TraceProfiler prof;
    for (std::uint64_t v = 0; v < 100; ++v)
        prof.record(page(v));
    const TraceProfile p = prof.profile();
    EXPECT_NEAR(p.sequential_fraction, 1.0, 1e-9);
}

TEST(Profiler, ReuseDistanceExactSmallCase)
{
    TraceProfiler prof;
    // Touch A B C A: A's re-touch sees 2 distinct pages in between.
    prof.record(page(10));
    prof.record(page(20));
    prof.record(page(30));
    prof.record(page(10));
    const TraceProfile p = prof.profile();
    EXPECT_EQ(p.cold_accesses, 3u);
    EXPECT_EQ(p.reuse_distance.samples(), 1u);
    EXPECT_EQ(p.reuse_distance.bucket(1), 1u); // distance 2 -> bucket 1
}

TEST(Profiler, ImmediateRetouchAfterOtherPageIsDistanceOne)
{
    TraceProfiler prof;
    prof.record(page(1));
    prof.record(page(2));
    prof.record(page(1)); // one distinct page (2) in between
    const TraceProfile p = prof.profile();
    EXPECT_EQ(p.reuse_distance.bucket(0), 1u); // distance 1 -> bucket 0
}

TEST(Profiler, CyclicSweepHasFixedDistance)
{
    // Sweeping N pages repeatedly: every re-touch sees N-1 others.
    const std::uint64_t n = 64;
    TraceProfiler prof;
    for (int round = 0; round < 5; ++round)
        for (std::uint64_t v = 0; v < n; ++v)
            prof.record(page(v));
    const TraceProfile p = prof.profile();
    EXPECT_EQ(p.cold_accesses, n);
    EXPECT_EQ(p.reuse_distance.samples(), 4 * n);
    // All distances are 63 -> bucket 5.
    EXPECT_EQ(p.reuse_distance.bucket(5), 4 * n);
}

TEST(Profiler, HitFractionAtReach)
{
    const std::uint64_t n = 64;
    TraceProfiler prof;
    for (int round = 0; round < 4; ++round)
        for (std::uint64_t v = 0; v < n; ++v)
            prof.record(page(v));
    const TraceProfile p = prof.profile();
    // Reach 64 captures the whole sweep, reach 32 nothing.
    EXPECT_DOUBLE_EQ(p.hitFractionAtReach(64), 1.0);
    EXPECT_DOUBLE_EQ(p.hitFractionAtReach(32), 0.0);
}

TEST(Profiler, CompactionPreservesDistances)
{
    // Force several Fenwick compactions with a small working set.
    TraceProfiler prof;
    const std::uint64_t n = 512;
    for (int round = 0; round < 3000; ++round)
        for (std::uint64_t v = 0; v < n; ++v)
            prof.record(page(v));
    const TraceProfile p = prof.profile();
    // > 2^20 touches forces compaction; distances must stay exact:
    // every re-touch sees 511 distinct pages (bucket 8).
    EXPECT_EQ(p.reuse_distance.samples(), (3000u - 1) * n);
    EXPECT_EQ(p.reuse_distance.bucket(8), (3000u - 1) * n);
}

TEST(Profiler, ConsumeDrainsSource)
{
    WorkloadSpec w;
    w.name = "mini";
    w.footprint_bytes = 256 * pageBytes;
    w.page_reuse = 0.5;
    PatternPhase phase;
    phase.kind = PatternKind::Random;
    w.phases = {phase};
    PatternTrace trace(w, vaOf(Vpn{0x1000}), 20000, 3);
    TraceProfiler prof;
    prof.consume(trace);
    const TraceProfile p = prof.profile();
    EXPECT_EQ(p.accesses, 20000u);
    EXPECT_LE(p.unique_pages, 256u);
    EXPECT_GT(p.same_page_fraction, 0.3);
}

TEST(Profiler, HotSetReflectsWorkloadStructure)
{
    // 90% of traffic in 64 pages, 10% in 4096: the 90% hot set must be
    // far smaller than the 99% hot set.
    WorkloadSpec w;
    w.name = "hotcold";
    w.footprint_bytes = 4096 * pageBytes;
    w.page_reuse = 0.0;
    PatternPhase phase;
    phase.kind = PatternKind::HotCold;
    phase.hot_fraction = 64.0 / 4096.0;
    phase.hot_prob = 0.9;
    phase.hot_base_page = 0;
    w.phases = {phase};
    PatternTrace trace(w, vaOf(Vpn{0x10000}), 100000, 9);
    TraceProfiler prof;
    prof.consume(trace);
    const TraceProfile p = prof.profile();
    const std::uint64_t hot90 = p.hotSetPages(0.85);
    const std::uint64_t hot99 = p.hotSetPages(0.99);
    EXPECT_LE(hot90, 256u);
    EXPECT_GT(hot99, 1024u);
}

} // namespace
} // namespace atlb
