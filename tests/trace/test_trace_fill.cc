/**
 * @file
 * Tests for TraceSource::fill() batching: the chunked path must produce
 * exactly the access stream next() produces, for every catalog workload
 * and any chunk size. runSimulation() consumes traces through fill(), so
 * any divergence here would silently change every experiment result.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "trace/access.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

constexpr std::uint64_t kAccesses = 4'000;
constexpr std::uint64_t kSeed = 1234;
constexpr VirtAddr kBase{0x10'0000'0000ULL};

std::vector<MemAccess>
drainOneAtATime(TraceSource &trace)
{
    std::vector<MemAccess> out;
    MemAccess a;
    while (trace.next(a))
        out.push_back(a);
    return out;
}

/** Drain via fill(), cycling through a mix of chunk sizes. */
std::vector<MemAccess>
drainChunked(TraceSource &trace, const std::vector<std::size_t> &chunks)
{
    std::vector<MemAccess> out;
    std::vector<MemAccess> buffer;
    std::size_t turn = 0;
    for (;;) {
        const std::size_t chunk = chunks[turn++ % chunks.size()];
        buffer.resize(chunk);
        const std::size_t n = trace.fill(buffer.data(), chunk);
        out.insert(out.end(), buffer.begin(), buffer.begin() + n);
        if (n == 0)
            return out;
    }
}

void
expectSameStream(const std::vector<MemAccess> &a,
                 const std::vector<MemAccess> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].vaddr, b[i].vaddr) << "access " << i;
        ASSERT_EQ(a[i].write, b[i].write) << "access " << i;
    }
}

TEST(TraceFill, MatchesNextForEveryCatalogWorkload)
{
    const std::vector<std::size_t> chunks = {1, 3, 7, 64, 1024};
    for (const WorkloadSpec &spec : workloadCatalog()) {
        SCOPED_TRACE(spec.name);
        PatternTrace serial(spec, kBase, kAccesses, kSeed);
        PatternTrace batched(spec, kBase, kAccesses, kSeed);
        expectSameStream(drainOneAtATime(serial),
                         drainChunked(batched, chunks));
    }
}

TEST(TraceFill, ChunkLargerThanStreamReturnsPartialFill)
{
    const WorkloadSpec &spec = findWorkload("canneal");
    PatternTrace trace(spec, kBase, 100, kSeed);
    std::vector<MemAccess> buffer(256);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 100u);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 0u);
}

TEST(TraceFill, ExhaustedTraceKeepsReturningZero)
{
    const WorkloadSpec &spec = findWorkload("gups");
    PatternTrace trace(spec, kBase, 10, kSeed);
    std::vector<MemAccess> buffer(10);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 10u);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 0u);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 0u);
    MemAccess a;
    EXPECT_FALSE(trace.next(a));
}

TEST(TraceFill, ResetReproducesTheStream)
{
    const WorkloadSpec &spec = findWorkload("omnetpp");
    PatternTrace trace(spec, kBase, 500, kSeed);
    const std::vector<MemAccess> first = drainChunked(trace, {128});
    trace.reset();
    const std::vector<MemAccess> second = drainChunked(trace, {37});
    expectSameStream(first, second);
}

TEST(TraceFill, MixedNextAndFillConsumeOneStream)
{
    const WorkloadSpec &spec = findWorkload("mcf");
    PatternTrace reference(spec, kBase, 1'000, kSeed);
    PatternTrace mixed(spec, kBase, 1'000, kSeed);

    const std::vector<MemAccess> expect = drainOneAtATime(reference);
    std::vector<MemAccess> got;
    std::vector<MemAccess> buffer(64);
    MemAccess a;
    for (;;) {
        // Alternate: a few next() calls, then a fill() chunk.
        bool progressed = false;
        for (int i = 0; i < 5 && mixed.next(a); ++i) {
            got.push_back(a);
            progressed = true;
        }
        const std::size_t n = mixed.fill(buffer.data(), buffer.size());
        got.insert(got.end(), buffer.begin(), buffer.begin() + n);
        if (!progressed && n == 0)
            break;
    }
    expectSameStream(expect, got);
}

/** Minimal source exercising TraceSource's default fill(). */
class CountingTrace : public TraceSource
{
  public:
    explicit CountingTrace(std::uint64_t length) : length_(length) {}

    bool
    next(MemAccess &out) override
    {
        if (produced_ == length_)
            return false;
        out.vaddr = VirtAddr{produced_ * pageBytes};
        out.write = produced_ % 2 == 0;
        ++produced_;
        return true;
    }

    void reset() override { produced_ = 0; }

  private:
    std::uint64_t length_;
    std::uint64_t produced_ = 0;
};

TEST(TraceFill, BaseClassDefaultFillDelegatesToNext)
{
    CountingTrace reference(100);
    CountingTrace batched(100);
    expectSameStream(drainOneAtATime(reference),
                     drainChunked(batched, {9, 32}));
}

// --- skip(): the sharded runner's seek primitive ------------------------

TEST(TraceSkip, SkipNEqualsDrainingNAccesses)
{
    // skip(n) must leave the source exactly where n next() calls would
    // — including the generator's RNG state, which produceOne advances
    // data-dependently — for every catalog workload.
    for (const WorkloadSpec &spec : workloadCatalog()) {
        SCOPED_TRACE(spec.name);
        PatternTrace reference(spec, kBase, kAccesses, kSeed);
        PatternTrace skipped(spec, kBase, kAccesses, kSeed);

        const std::uint64_t n = kAccesses / 3;
        MemAccess a;
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_TRUE(reference.next(a));
        skipped.skip(n);
        expectSameStream(drainOneAtATime(reference),
                         drainOneAtATime(skipped));
    }
}

TEST(TraceSkip, SplitSkipsComposeLikeOneSkip)
{
    const WorkloadSpec &spec = findWorkload("canneal");
    PatternTrace once(spec, kBase, kAccesses, kSeed);
    PatternTrace twice(spec, kBase, kAccesses, kSeed);
    once.skip(1'000);
    twice.skip(317);
    twice.skip(683);
    expectSameStream(drainOneAtATime(once), drainOneAtATime(twice));
}

TEST(TraceSkip, SkipZeroIsANoOp)
{
    const WorkloadSpec &spec = findWorkload("gups");
    PatternTrace reference(spec, kBase, 500, kSeed);
    PatternTrace skipped(spec, kBase, 500, kSeed);
    skipped.skip(0);
    expectSameStream(drainOneAtATime(reference),
                     drainOneAtATime(skipped));
}

TEST(TraceSkip, SkipPastEndExhaustsTheSource)
{
    const WorkloadSpec &spec = findWorkload("mcf");
    PatternTrace trace(spec, kBase, 100, kSeed);
    trace.skip(1'000'000);
    MemAccess a;
    EXPECT_FALSE(trace.next(a));
    std::vector<MemAccess> buffer(8);
    EXPECT_EQ(trace.fill(buffer.data(), buffer.size()), 0u);
}

TEST(TraceSkip, BaseClassDefaultSkipDrainsViaFill)
{
    CountingTrace reference(100);
    CountingTrace skipped(100);
    MemAccess a;
    for (int i = 0; i < 60; ++i)
        ASSERT_TRUE(reference.next(a));
    skipped.skip(60);
    expectSameStream(drainOneAtATime(reference),
                     drainOneAtATime(skipped));

    CountingTrace short_trace(10);
    short_trace.skip(500); // must terminate despite fill() returning 0
    EXPECT_FALSE(short_trace.next(a));
}

} // namespace
} // namespace atlb
