/**
 * @file
 * Model-regression tests: each catalog workload's page-level character
 * (measured by the profiler) must stay inside the band its TLB results
 * depend on. These tests pin the calibration described in DESIGN.md —
 * if a future edit to the generators shifts a workload's locality
 * class, the reproduction figures would silently drift; this suite
 * fails instead.
 */

#include <gtest/gtest.h>

#include <string>

#include "trace/profiler.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

/** Expected page-level character band for one workload. */
struct ModelBand
{
    const char *name;
    /** same-page fraction band (intra-page locality ~ page_reuse). */
    double same_page_lo, same_page_hi;
    /** band for the fraction of reuses within the base L2 reach. */
    double l2_reach_lo, l2_reach_hi;
    /** band for the fraction of reuses within 32K pages (anchor-class
     *  coverage); this is what separates coalescing winners from gups. */
    double anchor_reach_lo, anchor_reach_hi;
};

// Bands are deliberately wide: they encode the workload's *class*
// (streaming / reuse-driven / uniform-random), not exact numbers.
const ModelBand bands[] = {
    // streaming/stencil codes: most reuse is short-range
    {"GemsFDTD", 0.80, 0.97, 0.55, 1.00, 0.90, 1.00},
    {"cactusADM", 0.75, 0.95, 0.40, 1.00, 0.80, 1.00},
    {"milc", 0.80, 0.97, 0.40, 1.00, 0.80, 1.00},
    // reuse-driven pointer codes: reuse mass between L2 and anchor reach
    {"canneal", 0.85, 0.97, 0.20, 0.80, 0.80, 1.00},
    {"mcf", 0.80, 0.95, 0.10, 0.90, 0.75, 1.00},
    {"omnetpp", 0.80, 0.97, 0.30, 0.95, 0.90, 1.00},
    {"xalancbmk", 0.80, 0.97, 0.20, 0.90, 0.80, 1.00},
    {"astar_biglake", 0.80, 0.97, 0.20, 0.90, 0.80, 1.00},
    {"soplex_pds", 0.85, 0.97, 0.30, 0.95, 0.80, 1.00},
    {"sphinx3", 0.80, 0.99, 0.50, 1.00, 0.95, 1.00},
    {"mummer", 0.70, 0.97, 0.20, 0.99, 0.80, 1.00},
    {"tigr", 0.55, 0.995, 0.20, 0.90, 0.60, 1.00},
    // uniform random: almost nothing within any reach
    {"gups", 0.00, 0.05, 0.00, 0.15, 0.00, 0.40},
};

class WorkloadModelBand : public ::testing::TestWithParam<ModelBand>
{
};

TEST_P(WorkloadModelBand, ProfileStaysInBand)
{
    const ModelBand &band = GetParam();
    WorkloadSpec spec = findWorkload(band.name);
    // Quarter-scale footprints keep the test fast; locality *fractions*
    // are scale-insensitive because hot regions scale with footprint.
    spec.footprint_bytes /= 4;
    PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), 300'000, 17);
    TraceProfiler prof;
    prof.consume(trace);
    const TraceProfile p = prof.profile();

    EXPECT_GE(p.same_page_fraction, band.same_page_lo) << band.name;
    EXPECT_LE(p.same_page_fraction, band.same_page_hi) << band.name;
    const double l2 = p.hitFractionAtReach(1024);
    EXPECT_GE(l2, band.l2_reach_lo) << band.name;
    EXPECT_LE(l2, band.l2_reach_hi) << band.name;
    const double anchor = p.hitFractionAtReach(32768);
    EXPECT_GE(anchor, band.anchor_reach_lo) << band.name;
    EXPECT_LE(anchor, band.anchor_reach_hi) << band.name;
}

std::string
bandName(const ::testing::TestParamInfo<ModelBand> &info)
{
    return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, WorkloadModelBand,
                         ::testing::ValuesIn(bands), bandName);

TEST(WorkloadModels, Graph500IsBetweenGupsAndSpec)
{
    WorkloadSpec spec = findWorkload("graph500");
    spec.footprint_bytes /= 8;
    PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), 300'000, 17);
    TraceProfiler prof;
    prof.consume(trace);
    const TraceProfile p = prof.profile();
    // BFS mixes random gathers with skewed and sequential phases: more
    // locality than gups, far less than SPEC.
    EXPECT_GT(p.hitFractionAtReach(32768), 0.1);
    EXPECT_LT(p.hitFractionAtReach(1024), 0.7);
}

} // namespace
} // namespace atlb
