/**
 * @file
 * Tests for the synthetic workload generators and catalog.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/types.hh"
#include "trace/workload.hh"

namespace atlb
{
namespace
{

constexpr VirtAddr base{0x7f0000000000ULL};

WorkloadSpec
tinySpec(PatternKind kind)
{
    WorkloadSpec w;
    w.name = "tiny";
    w.footprint_bytes = 64 * pageBytes;
    w.page_reuse = 0.0;
    PatternPhase p;
    p.kind = kind;
    p.burst = 32;
    w.phases = {p};
    return w;
}

TEST(PatternTrace, ProducesExactlyRequestedLength)
{
    PatternTrace t(tinySpec(PatternKind::Random), base, 1000, 1);
    MemAccess a;
    std::uint64_t n = 0;
    while (t.next(a))
        ++n;
    EXPECT_EQ(n, 1000u);
    EXPECT_FALSE(t.next(a));
}

TEST(PatternTrace, AddressesStayInFootprint)
{
    for (const PatternKind kind :
         {PatternKind::Sequential, PatternKind::Random, PatternKind::Zipf,
          PatternKind::PointerChase, PatternKind::Stencil,
          PatternKind::HotCold}) {
        PatternTrace t(tinySpec(kind), base, 5000, 7);
        MemAccess a;
        while (t.next(a)) {
            ASSERT_GE(a.vaddr, base);
            ASSERT_LT(a.vaddr, base + 64 * pageBytes)
                << "kind " << static_cast<int>(kind);
        }
    }
}

TEST(PatternTrace, DeterministicPerSeed)
{
    PatternTrace a(tinySpec(PatternKind::Zipf), base, 2000, 42);
    PatternTrace b(tinySpec(PatternKind::Zipf), base, 2000, 42);
    MemAccess x, y;
    while (a.next(x)) {
        ASSERT_TRUE(b.next(y));
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.write, y.write);
    }
}

TEST(PatternTrace, ResetReplaysStream)
{
    PatternTrace t(tinySpec(PatternKind::HotCold), base, 500, 9);
    std::vector<VirtAddr> first;
    MemAccess a;
    while (t.next(a))
        first.push_back(a.vaddr);
    t.reset();
    for (const VirtAddr expected : first) {
        ASSERT_TRUE(t.next(a));
        ASSERT_EQ(a.vaddr, expected);
    }
}

TEST(PatternTrace, DifferentSeedsDiffer)
{
    PatternTrace a(tinySpec(PatternKind::Random), base, 500, 1);
    PatternTrace b(tinySpec(PatternKind::Random), base, 500, 2);
    MemAccess x, y;
    int same = 0;
    while (a.next(x) && b.next(y))
        same += x.vaddr == y.vaddr;
    EXPECT_LT(same, 50);
}

TEST(PatternTrace, SequentialAdvancesByStride)
{
    WorkloadSpec w = tinySpec(PatternKind::Sequential);
    w.phases[0].stride_bytes = 64;
    w.phases[0].burst = 1 << 20;
    PatternTrace t(w, base, 100, 3);
    MemAccess a;
    ASSERT_TRUE(t.next(a));
    VirtAddr prev = a.vaddr;
    while (t.next(a)) {
        ASSERT_EQ(a.vaddr, prev + 64);
        prev = a.vaddr;
    }
}

TEST(PatternTrace, PageReuseRepeatsPages)
{
    WorkloadSpec w = tinySpec(PatternKind::Random);
    w.page_reuse = 0.9;
    PatternTrace t(w, base, 10000, 5);
    MemAccess a;
    ASSERT_TRUE(t.next(a));
    Vpn prev = vpnOf(a.vaddr);
    std::uint64_t same_page = 0, total = 0;
    while (t.next(a)) {
        ++total;
        same_page += vpnOf(a.vaddr) == prev;
        prev = vpnOf(a.vaddr);
    }
    EXPECT_GT(static_cast<double>(same_page) / total, 0.8);
}

TEST(PatternTrace, HotColdConcentratesInContiguousRegion)
{
    WorkloadSpec w = tinySpec(PatternKind::HotCold);
    w.footprint_bytes = 4096 * pageBytes;
    w.phases[0].hot_fraction = 0.05; // ~205 pages
    w.phases[0].hot_prob = 0.95;
    PatternTrace t(w, base, 20000, 11);
    MemAccess a;
    std::set<Vpn> pages;
    while (t.next(a))
        pages.insert(vpnOf(a.vaddr));
    // 95% of accesses in ~205 pages: distinct count far below uniform.
    EXPECT_LT(pages.size(), 1500u);
}

TEST(PatternTrace, ZipfSkewsAccesses)
{
    WorkloadSpec w = tinySpec(PatternKind::Zipf);
    w.footprint_bytes = 4096 * pageBytes;
    w.phases[0].zipf_theta = 0.99;
    PatternTrace t(w, base, 30000, 13);
    MemAccess a;
    std::map<Vpn, int> counts;
    while (t.next(a))
        ++counts[vpnOf(a.vaddr)];
    int max_count = 0;
    for (const auto &[vpn, c] : counts)
        max_count = std::max(max_count, c);
    // The most popular page gets far more than the uniform share.
    EXPECT_GT(max_count, 30000 / 4096 * 20);
}

TEST(PatternTrace, WriteFractionRespected)
{
    WorkloadSpec w = tinySpec(PatternKind::Random);
    w.write_fraction = 0.25;
    PatternTrace t(w, base, 40000, 17);
    MemAccess a;
    std::uint64_t writes = 0;
    while (t.next(a))
        writes += a.write;
    EXPECT_NEAR(static_cast<double>(writes) / 40000, 0.25, 0.02);
}

TEST(Catalog, ContainsThePaperSet)
{
    const auto names = paperWorkloadNames();
    EXPECT_EQ(names.size(), 14u);
    for (const auto &name : names) {
        const WorkloadSpec &w = findWorkload(name);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.footprint_bytes, 0u);
        EXPECT_GT(w.mem_per_instr, 0.0);
        EXPECT_FALSE(w.phases.empty());
    }
}

TEST(Catalog, KernelFootprintsAre8GB)
{
    EXPECT_EQ(findWorkload("gups").footprint_bytes, 8ULL << 30);
    EXPECT_EQ(findWorkload("graph500").footprint_bytes, 8ULL << 30);
}

TEST(Catalog, FragmentationKnobsSpreadAcrossWorkloads)
{
    // Pointer-churny workloads face fragmented pools; array codes get
    // big runs — the spread behind paper Table 6's demand column.
    EXPECT_LE(findWorkload("omnetpp").demand_run_pages, 8u);
    EXPECT_LE(findWorkload("xalancbmk").demand_run_pages, 8u);
    EXPECT_GE(findWorkload("mcf").demand_run_pages, 1u << 14);
    EXPECT_GE(findWorkload("gups").demand_run_pages, 1u << 14);
}

TEST(Catalog, AllSpecsGenerateValidTraces)
{
    for (const WorkloadSpec &w : workloadCatalog()) {
        WorkloadSpec scaled = w;
        // Shrink for test speed; generators only need a valid footprint.
        scaled.footprint_bytes =
            std::min<std::uint64_t>(w.footprint_bytes, 1024 * pageBytes);
        PatternTrace t(scaled, base, 2000, 23);
        MemAccess a;
        std::uint64_t n = 0;
        while (t.next(a)) {
            ASSERT_GE(a.vaddr, base);
            ASSERT_LT(a.vaddr, base + scaled.footprint_bytes);
            ++n;
        }
        ASSERT_EQ(n, 2000u) << w.name;
    }
}

} // namespace
} // namespace atlb
