/**
 * @file
 * Tests for the fragmentation injector.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/buddy_allocator.hh"
#include "mem/fragmenter.hh"

namespace atlb
{
namespace
{

/** Mean length of free runs observed by draining the pool in order. */
double
meanFreeRun(BuddyAllocator &b)
{
    std::vector<Ppn> pages;
    for (;;) {
        const Ppn p = b.allocate(0);
        if (p == invalidPpn)
            break;
        pages.push_back(p);
    }
    if (pages.empty())
        return 0.0;
    std::sort(pages.begin(), pages.end());
    std::uint64_t runs = 1;
    for (std::size_t i = 1; i < pages.size(); ++i)
        if (pages[i] != pages[i - 1] + 1)
            ++runs;
    return static_cast<double>(pages.size()) / static_cast<double>(runs);
}

TEST(Fragmenter, ZeroMeanIsNoop)
{
    BuddyAllocator b(1 << 14);
    Rng rng(1);
    Fragmenter f(b, rng);
    f.apply({});
    EXPECT_EQ(b.freePages(), 1u << 14);
    EXPECT_EQ(f.pinnedPages(), 0u);
}

TEST(Fragmenter, CreatesRunsNearTargetMean)
{
    BuddyAllocator b(1 << 16);
    Rng rng(2);
    Fragmenter f(b, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = 32;
    f.apply(profile);
    EXPECT_GT(f.pinnedPages(), 0u);
    const double mean = meanFreeRun(b);
    EXPECT_GT(mean, 16.0);
    EXPECT_LT(mean, 64.0);
}

TEST(Fragmenter, DeterministicRunsNearExactMean)
{
    BuddyAllocator b(1 << 16);
    Rng rng(3);
    Fragmenter f(b, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = 16;
    profile.randomize = false;
    f.apply(profile);
    const double mean = meanFreeRun(b);
    EXPECT_NEAR(mean, 16.0, 1.0);
}

TEST(Fragmenter, RespectsPinBudget)
{
    BuddyAllocator b(1 << 14);
    Rng rng(4);
    Fragmenter f(b, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = 1; // would pin ~50% unconstrained
    profile.max_pinned_fraction = 0.10;
    f.apply(profile);
    EXPECT_LE(f.pinnedPages(), (1u << 14) / 10 + 2);
}

TEST(Fragmenter, ReleaseAllRestoresPool)
{
    BuddyAllocator b(1 << 14);
    Rng rng(5);
    {
        Fragmenter f(b, rng);
        FragmentProfile profile;
        profile.mean_free_run_pages = 8;
        f.apply(profile);
        EXPECT_LT(b.freePages(), 1u << 14);
        f.releaseAll();
        EXPECT_EQ(f.pinnedPages(), 0u);
    }
    EXPECT_EQ(b.freePages(), 1u << 14);
    EXPECT_TRUE(b.checkInvariants());
}

TEST(Fragmenter, DestructorReleasesPins)
{
    BuddyAllocator b(1 << 12);
    Rng rng(6);
    {
        Fragmenter f(b, rng);
        FragmentProfile profile;
        profile.mean_free_run_pages = 4;
        f.apply(profile);
    }
    EXPECT_EQ(b.freePages(), 1u << 12);
}

TEST(Fragmenter, AccountingMatchesPool)
{
    BuddyAllocator b(1 << 15);
    Rng rng(7);
    Fragmenter f(b, rng);
    FragmentProfile profile;
    profile.mean_free_run_pages = 64;
    f.apply(profile);
    EXPECT_EQ(b.freePages() + f.pinnedPages(), 1u << 15);
}

TEST(Fragmenter, TailMixesSmallRuns)
{
    BuddyAllocator big(1 << 18);
    Rng rng_a(8);
    Fragmenter fa(big, rng_a);
    FragmentProfile with_tail;
    with_tail.mean_free_run_pages = 4096;
    with_tail.tail_run_pages = 8;
    with_tail.tail_fraction = 0.5;
    fa.apply(with_tail);
    const double mixed = meanFreeRun(big);

    BuddyAllocator pure(1 << 18);
    Rng rng_b(8);
    Fragmenter fb(pure, rng_b);
    FragmentProfile no_tail;
    no_tail.mean_free_run_pages = 4096;
    fb.apply(no_tail);
    const double unmixed = meanFreeRun(pure);

    // The tail drags the mean run length down dramatically.
    EXPECT_LT(mixed, unmixed / 4);
}

} // namespace
} // namespace atlb
