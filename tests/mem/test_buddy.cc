/**
 * @file
 * Unit and property tests for the buddy allocator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "mem/buddy_allocator.hh"

namespace atlb
{
namespace
{

TEST(Buddy, FreshPoolFullyFree)
{
    BuddyAllocator b(1 << 16);
    EXPECT_EQ(b.freePages(), 1u << 16);
    EXPECT_EQ(b.totalPages(), 1u << 16);
    EXPECT_TRUE(b.checkInvariants());
}

TEST(Buddy, NonPow2PoolSeeded)
{
    BuddyAllocator b(1000);
    EXPECT_EQ(b.freePages(), 1000u);
    EXPECT_TRUE(b.checkInvariants());
}

TEST(Buddy, AllocateReturnsAlignedBlocks)
{
    BuddyAllocator b(1 << 16);
    for (unsigned order = 0; order <= 10; ++order) {
        const Ppn base = b.allocate(order);
        ASSERT_NE(base, invalidPpn);
        EXPECT_EQ(base.raw() & ((1ULL << order) - 1), 0u)
            << "order " << order << " base " << base;
    }
    EXPECT_TRUE(b.checkInvariants());
}

TEST(Buddy, AllocateLowestAddressFirst)
{
    BuddyAllocator b(1 << 12);
    EXPECT_EQ(b.allocate(0), Ppn{0});
    EXPECT_EQ(b.allocate(0), Ppn{1});
    EXPECT_EQ(b.allocate(0), Ppn{2});
}

TEST(Buddy, SequentialPagesAreAdjacent)
{
    // The property that makes demand faults physically contiguous.
    BuddyAllocator b(1 << 14);
    Ppn prev = b.allocate(0);
    for (int i = 0; i < 100; ++i) {
        const Ppn cur = b.allocate(0);
        ASSERT_EQ(cur, prev + 1);
        prev = cur;
    }
}

TEST(Buddy, ExhaustionReturnsInvalid)
{
    BuddyAllocator b(16, 4);
    EXPECT_NE(b.allocate(4), invalidPpn);
    EXPECT_EQ(b.allocate(0), invalidPpn);
    EXPECT_EQ(b.freePages(), 0u);
}

TEST(Buddy, TooLargeOrderRejected)
{
    BuddyAllocator b(1 << 10, 8);
    EXPECT_EQ(b.allocate(9), invalidPpn);
}

TEST(Buddy, FreeCoalescesBuddies)
{
    BuddyAllocator b(1 << 10, 10);
    const Ppn a0 = b.allocate(0);
    const Ppn a1 = b.allocate(0);
    ASSERT_EQ(a1, Ppn{a0.raw() ^ 1}); // buddies
    b.free(a0, 0);
    b.free(a1, 0);
    EXPECT_EQ(b.freePages(), 1u << 10);
    // Whole pool should have re-coalesced into a single max block.
    EXPECT_EQ(b.freeBlocksAt(10), 1u);
    EXPECT_TRUE(b.checkInvariants());
}

TEST(Buddy, SplitLeavesBuddyFree)
{
    BuddyAllocator b(1 << 10, 10);
    ASSERT_NE(b.allocate(0), invalidPpn);
    // Splitting a 1024 block down to order 0 leaves one free buddy at
    // each order 0..9.
    for (unsigned order = 0; order <= 9; ++order)
        EXPECT_EQ(b.freeBlocksAt(order), 1u) << "order " << order;
}

TEST(Buddy, LargestFreeOrderTracksState)
{
    BuddyAllocator b(1 << 10, 10);
    EXPECT_EQ(b.largestFreeOrder(), 10);
    ASSERT_NE(b.allocate(0), invalidPpn);
    EXPECT_EQ(b.largestFreeOrder(), 9);
}

TEST(Buddy, AllocateLargestPrefersBiggestAvailable)
{
    BuddyAllocator b(1 << 10, 10);
    unsigned got = 0;
    const Ppn base = b.allocateLargest(10, got);
    EXPECT_NE(base, invalidPpn);
    EXPECT_EQ(got, 10u);
}

TEST(Buddy, AllocateLargestFallsBackToSplitting)
{
    BuddyAllocator b(1 << 10, 10);
    unsigned got = 0;
    // Only a 1024-page block exists; ask for at most 4 pages.
    const Ppn base = b.allocateLargest(2, got);
    EXPECT_NE(base, invalidPpn);
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(b.freePages(), (1u << 10) - 4);
}

TEST(Buddy, AllocateLargestCapsWantedOrder)
{
    BuddyAllocator b(1 << 6, 6);
    unsigned got = 0;
    const Ppn base = b.allocateLargest(30, got);
    EXPECT_NE(base, invalidPpn);
    EXPECT_EQ(got, 6u);
}

TEST(Buddy, FreeBlockHistogramMatchesFreeLists)
{
    BuddyAllocator b(1 << 8, 8);
    ASSERT_NE(b.allocate(0), invalidPpn);
    const Histogram h = b.freeBlockHistogram();
    // One free block at each of orders 0..7.
    for (unsigned order = 0; order < 8; ++order)
        EXPECT_EQ(h.count(1ULL << order), 1u);
    EXPECT_EQ(h.weightedSum(), b.freePages());
}

/** Random alloc/free torture: invariants hold, frames never overlap. */
class BuddyTorture : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuddyTorture, RandomOpsPreserveInvariants)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    BuddyAllocator b(1 << 14, 12);
    std::vector<std::pair<Ppn, unsigned>> live;
    std::set<Ppn> owned;

    for (int step = 0; step < 4000; ++step) {
        if (live.empty() || rng.nextBool(0.6)) {
            const unsigned order =
                static_cast<unsigned>(rng.nextBounded(6));
            const Ppn base = b.allocate(order);
            if (base == invalidPpn)
                continue;
            for (std::uint64_t i = 0; i < (1ULL << order); ++i) {
                // No frame may be handed out twice.
                ASSERT_TRUE(owned.insert(base + i).second)
                    << "frame " << base + i << " double-allocated";
            }
            live.emplace_back(base, order);
        } else {
            const std::size_t idx = rng.nextBounded(live.size());
            const auto [base, order] = live[idx];
            live[idx] = live.back();
            live.pop_back();
            for (std::uint64_t i = 0; i < (1ULL << order); ++i)
                owned.erase(base + i);
            b.free(base, order);
        }
    }
    EXPECT_TRUE(b.checkInvariants());
    // Free everything; the pool must return to fully-coalesced state.
    for (const auto &[base, order] : live)
        b.free(base, order);
    EXPECT_EQ(b.freePages(), 1u << 14);
    EXPECT_TRUE(b.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyTorture,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace atlb
