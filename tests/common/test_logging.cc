/**
 * @file
 * Tests for message formatting and error paths.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"

namespace atlb
{
namespace
{

TEST(Format, PlainString)
{
    EXPECT_EQ(format("hello"), "hello");
}

TEST(Format, SingleSubstitution)
{
    EXPECT_EQ(format("x = {}", 42), "x = 42");
}

TEST(Format, MultipleSubstitutions)
{
    EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, MixedTypes)
{
    EXPECT_EQ(format("{}/{}", "a", 2.5), "a/2.5");
}

TEST(Format, ExtraArgumentsIgnored)
{
    EXPECT_EQ(format("just {}", 1, 2, 3), "just 1");
}

TEST(Format, MissingArgumentsLeaveText)
{
    EXPECT_EQ(format("a {} b {}", 1), "a 1 b {}");
}

class ErrorPaths : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_F(ErrorPaths, PanicThrowsLogicError)
{
    EXPECT_THROW(ATLB_PANIC("bug {}", 1), std::logic_error);
}

TEST_F(ErrorPaths, FatalThrowsRuntimeError)
{
    EXPECT_THROW(ATLB_FATAL("config {}", "bad"), std::runtime_error);
}

TEST_F(ErrorPaths, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(ATLB_ASSERT(1 + 1 == 2, "fine"));
}

TEST_F(ErrorPaths, AssertThrowsOnFalse)
{
    EXPECT_THROW(ATLB_ASSERT(false, "broken {}", 7), std::logic_error);
}

} // namespace
} // namespace atlb
