/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"

namespace atlb
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123), b(124);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(99);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(a.next());
    a.reseed(99);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                      1ULL << 40}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.nextRange(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoolProbability)
{
    Rng rng(17);
    const int n = 100000;
    int trues = 0;
    for (int i = 0; i < n; ++i)
        trues += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.01);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(19);
    const std::uint64_t buckets = 16;
    std::vector<int> counts(buckets, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (const int c : counts)
        EXPECT_NEAR(c, n / static_cast<int>(buckets), n / 100);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(23);
    const std::uint64_t n = 10000;
    int low = 0, total = 50000;
    for (int i = 0; i < total; ++i) {
        const std::uint64_t r = rng.nextZipf(n, 0.9);
        ASSERT_LT(r, n);
        if (r < n / 100)
            ++low;
    }
    // Top 1% of ranks should receive far more than 1% of draws.
    EXPECT_GT(low, total / 20);
}

TEST(Rng, ZipfHandlesDegenerateSizes)
{
    Rng rng(29);
    EXPECT_EQ(rng.nextZipf(0, 0.9), 0u);
    EXPECT_EQ(rng.nextZipf(1, 0.9), 0u);
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(rng.nextZipf(2, 1.0), 2u);
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(31);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(16.0, 1 << 20));
    EXPECT_NEAR(sum / n, 16.0, 1.0);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(37);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.nextGeometric(100.0, 64);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 64u);
    }
}

TEST(Rng, GeometricMeanOneIsConstant)
{
    Rng rng(41);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.nextGeometric(1.0, 100), 1u);
}

} // namespace
} // namespace atlb
