/**
 * @file
 * Test helper for comparing SIMD dispatch levels in one process.
 */

#ifndef ANCHORTLB_TESTS_COMMON_SIMD_TEST_UTIL_HH
#define ANCHORTLB_TESTS_COMMON_SIMD_TEST_UTIL_HH

#include "common/simd.hh"

namespace atlb::test
{

/**
 * RAII forceSimdLevel: pins @p level for the scope and restores the
 * previous process level on exit, so a test that builds scalar-forced
 * objects can never leak the override into later tests.
 */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : prev_(simdLevel())
    {
        forceSimdLevel(level);
    }
    ~ScopedSimdLevel() { forceSimdLevel(prev_); }

    ScopedSimdLevel(const ScopedSimdLevel &) = delete;
    ScopedSimdLevel &operator=(const ScopedSimdLevel &) = delete;

  private:
    SimdLevel prev_;
};

} // namespace atlb::test

#endif // ANCHORTLB_TESTS_COMMON_SIMD_TEST_UTIL_HH
