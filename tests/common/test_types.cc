// Unit tests for the strong address/page types: named conversions,
// per-domain arithmetic, alignment helpers, AnchorDist coherence and
// the zero-cost layout pins. The compile-FAIL side (vpn<->ppn and
// page<->byte mix-ups must not build) lives in tests/compile_fail/.
#include "common/types.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace atlb
{
namespace
{

TEST(Types, NamedAddressConversionsRoundTrip)
{
    const VirtAddr va{0x7f00'1234'5678ULL};
    EXPECT_EQ(vpnOf(va).raw(), 0x7f00'1234'5678ULL >> pageShift);
    EXPECT_EQ(pageOffset(va), 0x678U);
    EXPECT_EQ(vaOf(vpnOf(va)) + pageOffset(va), va);

    const PhysAddr pa{0x1'0000'2000ULL};
    EXPECT_EQ(ppnOf(pa).raw(), 0x1'0000'2000ULL >> pageShift);
    EXPECT_EQ(paOf(ppnOf(pa)), pa);
}

TEST(Types, HostVpnOfIsTheSanctionedPpnCrossing)
{
    // Nested translation keys the host dimension by guest frame
    // number; the named crossing must preserve the raw value exactly.
    const Ppn guest_frame{0xabcdeULL};
    EXPECT_EQ(hostVpnOf(guest_frame).raw(), guest_frame.raw());
}

TEST(Types, PageNumArithmeticStaysInDomain)
{
    Vpn v{100};
    v += 28;
    EXPECT_EQ(v, Vpn{128});
    EXPECT_EQ(v - 28, Vpn{100});
    EXPECT_EQ(++v, Vpn{129});
    EXPECT_EQ(--v, Vpn{128});

    // Same-axis difference is a PageCount (a length, not a position).
    const PageCount d = Vpn{128} - Vpn{100};
    EXPECT_EQ(d, PageCount{28});

    // Wrap-around on the raw payload is well-defined (unsigned).
    const Vpn top{std::numeric_limits<std::uint64_t>::max()};
    EXPECT_EQ(top + 1, Vpn{0});
    EXPECT_EQ(Vpn{0} - 1, top);
}

TEST(Types, AlignmentHelpers)
{
    const Vpn v{0x1234d};
    EXPECT_EQ(v.alignDown(hugePages), Vpn{0x12200});
    EXPECT_EQ(v.alignUp(hugePages), Vpn{0x12400});
    EXPECT_EQ(v.offsetIn(hugePages), 0x14dULL);
    EXPECT_FALSE(v.isAligned(hugePages));
    EXPECT_TRUE(v.alignDown(hugePages).isAligned(hugePages));
    // Aligning an already-aligned value is the identity.
    EXPECT_EQ(v.alignDown(hugePages).alignUp(hugePages),
              v.alignDown(hugePages));
}

TEST(Types, ByteAddrArithmetic)
{
    VirtAddr a{0x1000};
    a += 0x234;
    EXPECT_EQ(a, VirtAddr{0x1234});
    EXPECT_EQ(a - 0x234, VirtAddr{0x1000});
    // Same-space difference is a plain byte distance.
    EXPECT_EQ(VirtAddr{0x2000} - VirtAddr{0x1800}, 0x800ULL);
    EXPECT_LT(VirtAddr{0x1000}, VirtAddr{0x1001});
}

TEST(Types, PageCountIsExplicitInImplicitOut)
{
    const PageCount c{512};
    // Decays to uint64_t for ordinary arithmetic and indexing.
    const std::uint64_t doubled = c * 2;
    EXPECT_EQ(doubled, 1024U);
    EXPECT_EQ(c + PageCount{12}, PageCount{524});
    EXPECT_EQ(c - PageCount{12}, PageCount{500});
    PageCount acc{1};
    acc += PageCount{2};
    EXPECT_EQ(acc.raw(), 3U);

    EXPECT_EQ(bytesOf(PageCount{3}), 3 * pageBytes);
    EXPECT_EQ(pagesForBytes(1), PageCount{1});
    EXPECT_EQ(pagesForBytes(pageBytes), PageCount{1});
    EXPECT_EQ(pagesForBytes(pageBytes + 1), PageCount{2});
    EXPECT_EQ(pagesForBytes(0), PageCount{0});
}

TEST(Types, TlbKeyMakersMatchGranularityShifts)
{
    const Vpn v{0x7f12'3456ULL};
    EXPECT_EQ(pageKey(v), TlbKey{v.raw()});
    EXPECT_EQ(hugeKey(v), TlbKey{v.raw() >> hugeShift});
    EXPECT_EQ(giantKey(v), TlbKey{v.raw() >> giantShift});
    EXPECT_EQ(groupKey(v, 4), TlbKey{v.raw() >> 4});
    // groupKey at log2 0 is the identity (pageKey).
    EXPECT_EQ(groupKey(v, 0), pageKey(v));
}

TEST(Types, AnchorDistCarriesCoherentPagesAndLog2)
{
    const AnchorDist d = AnchorDist::fromPages(64);
    EXPECT_FALSE(d.none());
    EXPECT_TRUE(d.valid());
    EXPECT_EQ(d.pages(), 64U);
    EXPECT_EQ(d.log2(), 6U);
    EXPECT_EQ(d, AnchorDist::fromLog2(6));

    const Vpn v{0x1234d};
    EXPECT_EQ(d.anchorOf(v), v.alignDown(64));
    EXPECT_EQ(d.offsetOf(v), v.offsetIn(64));
    EXPECT_EQ(d.keyOf(d.anchorOf(v)), groupKey(d.anchorOf(v), 6));
}

TEST(Types, AnchorDistRejectsIncoherentValues)
{
    // Default-constructed means "no distance".
    EXPECT_TRUE(AnchorDist{}.none());
    EXPECT_FALSE(AnchorDist{}.valid());
    // Non-power-of-two and too-small inputs survive construction (the
    // pair stays coherent with log2 = ceil) but report invalid, so the
    // config-layer range checks still fire.
    EXPECT_FALSE(AnchorDist::fromPages(3).valid());
    EXPECT_FALSE(AnchorDist::fromPages(1).valid());
    EXPECT_TRUE(AnchorDist::fromPages(2).valid());
    EXPECT_TRUE(AnchorDist::fromPages(1ULL << 16).valid());
    // Ordering follows the page count (distance sweeps sort on it).
    EXPECT_LT(AnchorDist::fromPages(8), AnchorDist::fromPages(16));
}

TEST(Types, SentinelsAndOrdering)
{
    EXPECT_EQ(invalidPpn.raw(), ~0ULL);
    EXPECT_EQ(invalidVpn.raw(), ~0ULL);
    EXPECT_NE(Ppn{0}, invalidPpn);
    EXPECT_LT(Ppn{5}, invalidPpn);
}

TEST(Types, StreamsAsRawValue)
{
    std::ostringstream os;
    os << Vpn{42} << ' ' << Ppn{7} << ' ' << AnchorDist::fromPages(32);
    EXPECT_EQ(os.str(), "42 7 32");
}

TEST(Types, HashableForPageIndexedContainers)
{
    std::unordered_set<Vpn> set;
    set.insert(Vpn{1});
    set.insert(Vpn{1});
    set.insert(Vpn{2});
    EXPECT_EQ(set.size(), 2U);
    EXPECT_TRUE(set.count(Vpn{1}));
    EXPECT_FALSE(set.count(Vpn{3}));
}

TEST(Types, PagesCoveredMatchesPageSizes)
{
    EXPECT_EQ(pagesCovered(PageSize::Base4K), PageCount{1});
    EXPECT_EQ(pagesCovered(PageSize::Huge2M), PageCount{hugePages});
    EXPECT_EQ(pagesCovered(PageSize::Giant1G), PageCount{giantPages});
}

// The zero-cost claim, restated where a failure reports a test name
// instead of a build break alone.
TEST(Types, WrappersAreZeroCost)
{
    EXPECT_EQ(sizeof(Vpn), sizeof(std::uint64_t));
    EXPECT_EQ(sizeof(VirtAddr), sizeof(std::uint64_t));
    EXPECT_EQ(sizeof(TlbKey), sizeof(std::uint64_t));
    EXPECT_TRUE(std::is_trivially_copyable_v<Ppn>);
    EXPECT_TRUE(std::is_standard_layout_v<PhysAddr>);
}

} // namespace
} // namespace atlb
