/**
 * @file
 * Tests for the runtime SIMD dispatch layer and its kernels.
 *
 * The dispatch contract (common/simd.hh): every vector kernel is
 * bit-for-bit equivalent to its scalar reference. The differentials
 * here sweep the full input space boundaries — all 65 bit widths,
 * counts crossing every 4-lane group and buffer tail, eq-bitset word
 * straddles — against references built from the same primitives the
 * production scalar paths use (getBits, plain loops). On hosts whose
 * detected level is scalar the kernel tests skip; the dispatch tests
 * still run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/bitpack.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/simd_test_util.hh"

namespace atlb
{
namespace
{

TEST(SimdDispatch, LevelNames)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Neon), "neon");
}

TEST(SimdDispatch, ScalarLevelHasNoKernelPointers)
{
    // nullptr is the scalar contract: call sites keep their inline
    // reference loops instead of an indirect call.
    EXPECT_EQ(simdFindU64Fn(SimdLevel::Scalar), nullptr);
    EXPECT_EQ(simdVpnEqFn(SimdLevel::Scalar), nullptr);
    EXPECT_EQ(simdBlockUnpackFn(SimdLevel::Scalar), nullptr);
}

TEST(SimdDispatch, DetectedVectorLevelProvidesAllKernels)
{
    const SimdLevel d = detectedSimdLevel();
    if (d == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    EXPECT_NE(simdFindU64Fn(d), nullptr);
    EXPECT_NE(simdVpnEqFn(d), nullptr);
    // NEON's block unpack is the shared scalar routine on purpose
    // (whole-block amortisation without a 64-bit gather); it is still
    // non-null so the decoder takes the block path.
    EXPECT_NE(simdBlockUnpackFn(d), nullptr);
}

TEST(SimdDispatch, ForceIsScopedAndRestored)
{
    const SimdLevel before = simdLevel();
    {
        test::ScopedSimdLevel forced(SimdLevel::Scalar);
        EXPECT_EQ(simdLevel(), SimdLevel::Scalar);
    }
    EXPECT_EQ(simdLevel(), before);
}

TEST(AlignedU64Buffer, AlignedZeroedCopyableMovable)
{
    AlignedU64Buffer a(9);
    ASSERT_EQ(a.size(), 9u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % simdAlignBytes,
              0u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], 0u);
    a[3] = 42;

    AlignedU64Buffer b = a; // copy
    EXPECT_EQ(b.size(), 9u);
    EXPECT_EQ(b[3], 42u);
    b[3] = 7;
    EXPECT_EQ(a[3], 42u) << "copy must not alias";

    const AlignedU64Buffer c = std::move(b); // move
    EXPECT_EQ(c[3], 7u);
    EXPECT_EQ(b.size(), 0u); // NOLINT(bugprone-use-after-move)

    a.reset(2);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], 0u);
}

// --- set-probe kernel ---------------------------------------------------

TEST(SimdFindU64, EveryPositionAndCountMatchesScalarScan)
{
    const SimdFindU64Fn fn = simdFindU64Fn(detectedSimdLevel());
    if (fn == nullptr)
        GTEST_SKIP() << "no vector level on this host";
    const std::uint64_t want = 0xdeadbeefcafef00dULL;
    for (unsigned count = 1; count <= 16; ++count) {
        AlignedU64Buffer words(count);
        for (unsigned i = 0; i < count; ++i)
            words[i] = 1000 + i; // never equal to want
        EXPECT_EQ(fn(words.data(), count, want), -1) << count;
        for (unsigned pos = 0; pos < count; ++pos) {
            words[pos] = want;
            EXPECT_EQ(fn(words.data(), count, want),
                      static_cast<int>(pos))
                << count << "/" << pos;
            words[pos] = 1000 + pos;
        }
    }
}

TEST(SimdFindU64, ZeroCountNeverMatches)
{
    const SimdFindU64Fn fn = simdFindU64Fn(detectedSimdLevel());
    if (fn == nullptr)
        GTEST_SKIP() << "no vector level on this host";
    const std::uint64_t word = 5;
    EXPECT_EQ(fn(&word, 0, 5), -1);
}

// --- bit-unpack kernel --------------------------------------------------

/**
 * Pack @p vals at @p width bits with putBits into an *exact-size*
 * buffer — no slack, so a kernel that over-reads its tail trips ASan.
 */
std::vector<std::uint8_t>
packExact(const std::vector<std::uint64_t> &vals, unsigned width)
{
    const std::size_t bytes = (vals.size() * width + 7) / 8;
    std::vector<std::uint8_t> buf(std::max<std::size_t>(bytes, 1), 0);
    std::uint64_t bitpos = 0;
    for (const std::uint64_t v : vals) {
        putBits(buf.data(), bitpos, v, width);
        bitpos += width;
    }
    return buf;
}

TEST(SimdUnpack, WidthExhaustiveRoundTrip)
{
    // Every width 0..64 x counts crossing each 4-lane group boundary
    // and the gather-safe/tail crossover. The scalar routine is itself
    // checked against the values packed (putBits/getBits round-trip),
    // then the vector kernel against the scalar output.
    const SimdUnpackFn fn = simdBlockUnpackFn(detectedSimdLevel());
    Rng rng(0xbeef);
    const std::size_t counts[] = {0, 1, 3, 4, 5, 7, 8, 9, 31, 100};
    for (unsigned width = 0; width <= 64; ++width) {
        const std::uint64_t mask =
            width >= 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
        for (const std::size_t count : counts) {
            std::vector<std::uint64_t> vals(count);
            for (std::uint64_t &v : vals)
                v = rng.next() & mask;
            const std::vector<std::uint8_t> buf = packExact(vals, width);

            std::vector<std::uint64_t> scalar(count + 1, 0xa5a5);
            scalarUnpackBits(buf.data(), buf.size(), width,
                             scalar.data(), count);
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(scalar[i], vals[i])
                    << "scalar w=" << width << " n=" << count
                    << " i=" << i;

            if (fn == nullptr)
                continue;
            std::vector<std::uint64_t> simd(count + 1, 0x5a5a);
            fn(buf.data(), buf.size(), width, simd.data(), count);
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(simd[i], vals[i])
                    << "simd w=" << width << " n=" << count
                    << " i=" << i;
        }
    }
}

TEST(SimdUnpack, SlackBufferTakesTheVectorPathAllTheWay)
{
    // With >= 8 trailing slack bytes every field is gather-safe, so
    // the vector loop covers the whole run — the configuration the
    // codec presents (a block body is followed by the next block).
    const SimdUnpackFn fn = simdBlockUnpackFn(detectedSimdLevel());
    if (fn == nullptr)
        GTEST_SKIP() << "no vector level on this host";
    Rng rng(0xf00d);
    for (const unsigned width : {1u, 13u, 33u, 52u, 57u}) {
        const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
        std::vector<std::uint64_t> vals(257);
        for (std::uint64_t &v : vals)
            v = rng.next() & mask;
        std::vector<std::uint8_t> buf = packExact(vals, width);
        buf.resize(buf.size() + 8, 0);
        std::vector<std::uint64_t> out(vals.size());
        fn(buf.data(), buf.size(), width, out.data(), vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i)
            ASSERT_EQ(out[i], vals[i]) << "w=" << width << " i=" << i;
    }
}

// --- VPN/same-page pre-pass kernel --------------------------------------

/** Reference form of the SimdVpnEqFn contract, written as plain loops. */
void
refVpnEq(const std::uint8_t *accesses, std::size_t count, unsigned shift,
         std::uint64_t prev, std::uint64_t *vpns, std::uint64_t *eqbits)
{
    for (std::size_t w = 0; w < (count + 63) / 64; ++w)
        eqbits[w] = 0;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, accesses + 16 * i, sizeof(raw));
        vpns[i] = raw >> shift;
        const std::uint64_t before = i == 0 ? prev : vpns[i - 1];
        if (vpns[i] == before)
            eqbits[i / 64] |= std::uint64_t{1} << (i % 64);
    }
}

TEST(SimdVpnEq, MatchesReferenceAcrossCountsAndStraddles)
{
    const SimdVpnEqFn fn = simdVpnEqFn(detectedSimdLevel());
    if (fn == nullptr)
        GTEST_SKIP() << "no vector level on this host";
    Rng rng(0x51bd);
    // Counts crossing 4-lane groups and the 64-bit bitset words (the
    // vector eq groups start at i = 1, so movemask nibbles straddle
    // word boundaries near 64/128).
    const std::size_t counts[] = {0,  1,  2,  3,   4,   5,   7,  8,
                                  63, 64, 65, 127, 128, 200, 512};
    for (const std::size_t count : counts) {
        for (const unsigned shift : {12u, 21u}) {
            // 16-byte records; repeats are frequent so eq bits are
            // dense (same page := same value after the shift).
            std::vector<std::uint8_t> recs(16 * count + 1);
            std::uint64_t va = 0x7f00000000ULL;
            for (std::size_t i = 0; i < count; ++i) {
                if (rng.nextBounded(3) != 0)
                    va += rng.nextBounded(2) << shift;
                const std::uint64_t low = rng.nextBounded(
                    std::uint64_t{1} << shift);
                const std::uint64_t word = (va & ~((std::uint64_t{1}
                                                    << shift) -
                                                   1)) |
                                           low;
                std::memcpy(recs.data() + 16 * i, &word, sizeof(word));
            }
            const std::uint64_t prev =
                count != 0 && rng.nextBounded(2) != 0
                    ? va >> shift
                    : ~std::uint64_t{0};

            const std::size_t words = (count + 63) / 64;
            std::vector<std::uint64_t> ref_vpns(count + 1);
            std::vector<std::uint64_t> ref_bits(words + 1);
            refVpnEq(recs.data(), count, shift, prev, ref_vpns.data(),
                     ref_bits.data());

            AlignedU64Buffer vpns(count + 1);
            AlignedU64Buffer bits(words + 1);
            for (std::size_t w = 0; w < words; ++w)
                bits[w] = ~std::uint64_t{0}; // kernel must zero these
            fn(recs.data(), count, shift, prev, vpns.data(),
               bits.data());

            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(vpns[i], ref_vpns[i])
                    << "n=" << count << " i=" << i;
            for (std::size_t w = 0; w < words; ++w)
                ASSERT_EQ(bits[w], ref_bits[w])
                    << "n=" << count << " word=" << w;
        }
    }
}

} // namespace
} // namespace atlb
