/**
 * @file
 * Tests for the fixed-size thread pool behind the sweep engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/thread_pool.hh"

namespace atlb
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillDrainsQueue)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ZeroRequestedWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitIsABarrierEvenForSlowJobs)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must finish the queue before joining.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitFromWithinAJob)
{
    // A job enqueueing follow-up work must not deadlock, and wait()
    // must cover the follow-up job too.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&pool, &count] {
        ++count;
        pool.submit([&count] { ++count; });
    });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolEnv, ConfiguredCountHonoursEnvVariable)
{
    ::setenv("ANCHORTLB_THREADS", "5", 1);
    EXPECT_EQ(configuredThreadCount(), 5u);
    ::unsetenv("ANCHORTLB_THREADS");
}

TEST(ThreadPoolEnv, ConfiguredCountDefaultsToHardware)
{
    ::unsetenv("ANCHORTLB_THREADS");
    EXPECT_EQ(configuredThreadCount(), hardwareThreadCount());
    EXPECT_GE(hardwareThreadCount(), 1u);
}

} // namespace
} // namespace atlb
