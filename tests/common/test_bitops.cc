/**
 * @file
 * Unit tests for bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace atlb
{
namespace
{

TEST(Bitops, IsPow2RecognisesPowers)
{
    for (unsigned shift = 0; shift < 64; ++shift)
        EXPECT_TRUE(isPow2(1ULL << shift)) << "shift " << shift;
}

TEST(Bitops, IsPow2RejectsNonPowers)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(6));
    EXPECT_FALSE(isPow2(12));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
    EXPECT_FALSE(isPow2(~0ULL));
}

TEST(Bitops, FloorLog2Exact)
{
    for (unsigned shift = 0; shift < 64; ++shift)
        EXPECT_EQ(floorLog2(1ULL << shift), shift);
}

TEST(Bitops, FloorLog2Rounding)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(5), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, AlignDown)
{
    EXPECT_EQ(alignDown(0, 8), 0u);
    EXPECT_EQ(alignDown(7, 8), 0u);
    EXPECT_EQ(alignDown(8, 8), 8u);
    EXPECT_EQ(alignDown(1023, 512), 512u);
    EXPECT_EQ(alignDown(0xdeadbeef, 1ULL << 12), 0xdeadb000u);
}

TEST(Bitops, AlignUp)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 8), 16u);
    EXPECT_EQ(alignUp(0xdeadbeef, 1ULL << 12), 0xdeadc000u);
}

TEST(Bitops, IsAligned)
{
    EXPECT_TRUE(isAligned(0, 512));
    EXPECT_TRUE(isAligned(1024, 512));
    EXPECT_FALSE(isAligned(1025, 512));
    EXPECT_TRUE(isAligned(~0ULL & ~511ULL, 512));
}

TEST(Bitops, NextPrevPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(4), 4u);
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(prevPow2(1), 1u);
    EXPECT_EQ(prevPow2(3), 2u);
    EXPECT_EQ(prevPow2(4), 4u);
    EXPECT_EQ(prevPow2(5), 4u);
    EXPECT_EQ(prevPow2(1023), 512u);
}

/** alignDown/alignUp bracket the value and are idempotent. */
class AlignProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignProperty, BracketsAndIdempotence)
{
    const std::uint64_t v = GetParam();
    for (const std::uint64_t a : {1ULL, 2ULL, 8ULL, 512ULL, 4096ULL}) {
        const std::uint64_t down = alignDown(v, a);
        const std::uint64_t up = alignUp(v, a);
        EXPECT_LE(down, v);
        EXPECT_GE(up, v);
        EXPECT_LT(v - down, a);
        EXPECT_EQ(alignDown(down, a), down);
        EXPECT_EQ(alignUp(up, a), up);
        EXPECT_TRUE(isAligned(down, a));
        EXPECT_TRUE(isAligned(up, a));
    }
}

INSTANTIATE_TEST_SUITE_P(Values, AlignProperty,
                         ::testing::Values(0, 1, 7, 8, 511, 512, 513,
                                           4095, 4096, 123456789,
                                           (1ULL << 52) + 3));

} // namespace
} // namespace atlb
