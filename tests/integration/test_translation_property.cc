/**
 * @file
 * Cross-scheme property test: every MMU must return the exact physical
 * page the OS mapping defines, for every scheme, every scenario kind,
 * and thousands of randomly ordered accesses. Translation *performance*
 * differs per scheme; translation *results* never may.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "sim/scheme.hh"

namespace atlb
{
namespace
{

struct SchemeUnderTest
{
    Scheme scheme;
    ScenarioKind scenario;
    std::uint64_t seed;
};

class TranslationProperty
    : public ::testing::TestWithParam<SchemeUnderTest>
{
};

TEST_P(TranslationProperty, AllTranslationsMatchTheMapping)
{
    const SchemeUnderTest p = GetParam();

    ScenarioParams sp;
    sp.footprint_pages = 6000;
    sp.seed = p.seed;
    sp.demand_run_pages = 48;
    sp.eager_run_pages = 48;
    sp.map_tail_run_pages = 8;
    sp.map_tail_fraction = 0.3;
    const MemoryMap map = buildScenario(p.scenario, sp);

    MmuConfig cfg;
    std::unique_ptr<PageTable> table;
    std::unique_ptr<Mmu> mmu;
    switch (p.scheme) {
      case Scheme::Base:
        table = std::make_unique<PageTable>(buildPageTable(map, false));
        mmu = std::make_unique<BaselineMmu>(cfg, *table);
        break;
      case Scheme::Thp:
        table = std::make_unique<PageTable>(buildPageTable(map, true));
        mmu = std::make_unique<BaselineMmu>(cfg, *table, "thp");
        break;
      case Scheme::Cluster:
        table = std::make_unique<PageTable>(buildPageTable(map, false));
        mmu = std::make_unique<ClusterMmu>(cfg, *table, false);
        break;
      case Scheme::Cluster2MB:
        table = std::make_unique<PageTable>(buildPageTable(map, true));
        mmu = std::make_unique<ClusterMmu>(cfg, *table, true);
        break;
      case Scheme::Rmm:
        table = std::make_unique<PageTable>(buildPageTable(map, true));
        mmu = std::make_unique<RmmMmu>(cfg, *table, map);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal: {
        const std::uint64_t d =
            selectAnchorDistance(map.contiguityHistogram()).distance;
        table = std::make_unique<PageTable>(
            buildAnchorPageTable(map, AnchorDist::fromPages(d)));
        mmu = std::make_unique<AnchorMmu>(cfg, *table,
                                          AnchorDist::fromPages(d));
        break;
      }
    }

    Rng rng(p.seed * 33 + 1);
    for (int i = 0; i < 30000; ++i) {
        const Vpn vpn =
            sp.va_base + rng.nextBounded(sp.footprint_pages);
        const VirtAddr va =
            vaOf(vpn) + rng.nextBounded(pageBytes / 8) * 8;
        const TranslationResult r = mmu->translate(va);
        ASSERT_EQ(r.ppn, map.translate(vpn))
            << schemeName(p.scheme) << "/" << scenarioName(p.scenario)
            << " vpn offset " << vpn - sp.va_base << " iter " << i;
    }
    // Sanity: the MMU actually exercised several hit levels.
    EXPECT_EQ(mmu->stats().accesses, 30000u);
}

std::vector<SchemeUnderTest>
allCombos()
{
    std::vector<SchemeUnderTest> out;
    for (const Scheme s :
         {Scheme::Base, Scheme::Thp, Scheme::Cluster, Scheme::Cluster2MB,
          Scheme::Rmm, Scheme::Anchor}) {
        for (const ScenarioKind k : allScenarios)
            out.push_back({s, k, 7});
    }
    return out;
}

std::string
comboName(const ::testing::TestParamInfo<SchemeUnderTest> &info)
{
    std::string s = schemeName(info.param.scheme);
    for (auto &ch : s)
        if (ch == '-' || ch == ' ')
            ch = '_';
    return s + "_" + scenarioName(info.param.scenario);
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllScenarios, TranslationProperty,
                         ::testing::ValuesIn(allCombos()), comboName);

/** Anchor correctness across every candidate distance on one mapping. */
class AnchorDistanceProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AnchorDistanceProperty, CorrectAtEveryDistance)
{
    const std::uint64_t d = GetParam();
    ScenarioParams sp;
    sp.footprint_pages = 5000;
    sp.seed = 11;
    const MemoryMap map = buildScenario(ScenarioKind::MedContig, sp);
    PageTable table =
        buildAnchorPageTable(map, AnchorDist::fromPages(d));
    MmuConfig cfg;
    AnchorMmu mmu(cfg, table, AnchorDist::fromPages(d));

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Vpn vpn = sp.va_base + rng.nextBounded(sp.footprint_pages);
        ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn, map.translate(vpn))
            << "distance " << d << " vpn offset " << vpn - sp.va_base;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, AnchorDistanceProperty,
                         ::testing::ValuesIn(candidateDistances()));

} // namespace
} // namespace atlb
