/**
 * @file
 * Randomized differential stress: a deterministic stream of
 * map/unmap/access/churn steps drives all five translation schemes
 * (baseline, COLT, cluster, RMM, anchor) in lockstep under the
 * TranslationOracle, with the structural invariant checkers run at
 * every churn boundary.
 *
 * The OS model is the real one: frames come from a BuddyAllocator,
 * mappings churn over epochs (allocate runs, free runs, remap the
 * survivors), and each epoch rebuilds the page tables and context-
 * switches every MMU — exactly the life cycle that the ROADMAP's
 * scaling PRs will be refactoring. Any divergence between a fast path
 * and the authoritative page table, any duplicate TLB tag, stale
 * anchor contiguity or buddy free-list corruption fails the run at
 * the step that introduced it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "check/invariants.hh"
#include "check/translation_oracle.hh"
#include "common/rng.hh"
#include "mem/buddy_allocator.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"
#include "os/table_builder.hh"
#include "sim/sharded_runner.hh"

namespace atlb
{
namespace
{

/** One live allocation: a VA run backed by one buddy block. */
struct Segment
{
    Vpn vpn;
    Ppn ppn;
    unsigned order;

    std::uint64_t pages() const { return 1ULL << order; }
};

class DifferentialStress : public ::testing::Test
{
  protected:
    static constexpr Vpn vaBase{0x7f0000000ULL};
    static constexpr std::uint64_t poolPages = 1ULL << 15; // 128MB

    Rng rng_{20260807};
    BuddyAllocator buddy_{poolPages, 12};
    std::vector<Segment> segments_;
    Vpn va_cursor_ = vaBase;
    std::uint64_t steps_ = 0;

    /** Map one run of 2^order pages at the VA cursor (churn step). */
    void mapOne(unsigned order)
    {
        const Ppn base = buddy_.allocate(order);
        if (base == invalidPpn)
            return; // pool exhausted; unmaps will catch up
        // An occasional VA gap keeps chunks from merging into one run.
        if (rng_.nextBool(0.25))
            va_cursor_ += rng_.nextRange(1, 64);
        segments_.push_back({va_cursor_, base, order});
        va_cursor_ += 1ULL << order;
        ++steps_;
    }

    /** Unmap a random live segment (churn step). */
    void unmapOne()
    {
        if (segments_.empty())
            return;
        const std::size_t victim =
            static_cast<std::size_t>(rng_.nextBounded(segments_.size()));
        buddy_.free(segments_[victim].ppn, segments_[victim].order);
        segments_[victim] = segments_.back();
        segments_.pop_back();
        ++steps_;
    }

    /** Rebuild the OS view of the current segments. */
    MemoryMap buildMap() const
    {
        MemoryMap map;
        for (const Segment &s : segments_)
            map.add(s.vpn, s.ppn, PageCount{s.pages()});
        map.finalize();
        return map;
    }

    /** A uniformly random currently-mapped VPN. */
    Vpn randomMappedVpn()
    {
        const Segment &s = segments_[static_cast<std::size_t>(
            rng_.nextBounded(segments_.size()))];
        return s.vpn + rng_.nextBounded(s.pages());
    }
};

TEST_F(DifferentialStress, TenThousandStepsZeroMismatches)
{
    constexpr int epochs = 40;
    constexpr int maps_per_epoch = 12;
    constexpr int unmaps_per_epoch = 7;
    constexpr int accesses_per_epoch = 250;

    MmuConfig cfg;
    // Construct the five schemes once against a small bootstrap
    // mapping; every epoch context-switches them onto the new tables,
    // exercising the flush paths the paper's Section 3.3 describes.
    for (int i = 0; i < 4; ++i)
        mapOne(4);
    // The map and tables live behind stable pointers: RMM and the
    // oracle keep references across epochs until the next switch.
    auto map = std::make_unique<MemoryMap>(buildMap());
    auto plain =
        std::make_unique<PageTable>(buildPageTable(*map, false));
    auto thp = std::make_unique<PageTable>(buildPageTable(*map, true));
    std::uint64_t distance =
        selectAnchorDistance(map->contiguityHistogram()).distance;
    auto anchored = std::make_unique<PageTable>(
        buildAnchorPageTable(*map, AnchorDist::fromPages(distance)));

    BaselineMmu base(cfg, *plain);
    ColtMmu colt(cfg, *plain);
    ClusterMmu cluster(cfg, *plain, false);
    RmmMmu rmm(cfg, *thp, *map);
    AnchorMmu anchor(cfg, *anchored, AnchorDist::fromPages(distance));

    DifferentialOracle oracle(map.get());
    oracle.attach(base);
    oracle.attach(colt);
    oracle.attach(cluster);
    oracle.attach(rmm);
    oracle.attach(anchor);

    std::uint64_t distance_changes = 0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Churn the mapping: allocate fresh runs, drop old ones.
        for (int i = 0; i < maps_per_epoch; ++i)
            mapOne(static_cast<unsigned>(rng_.nextBounded(6)));
        for (int i = 0; i < unmaps_per_epoch; ++i)
            unmapOne();
        ASSERT_FALSE(segments_.empty());

        // The OS rebuilds its view and re-selects the anchor distance.
        auto next_map = std::make_unique<MemoryMap>(buildMap());
        auto next_plain = std::make_unique<PageTable>(
            buildPageTable(*next_map, false));
        auto next_thp = std::make_unique<PageTable>(
            buildPageTable(*next_map, true));
        const std::uint64_t next_distance =
            selectAnchorDistance(next_map->contiguityHistogram())
                .distance;
        if (next_distance != distance)
            ++distance_changes;
        distance = next_distance;
        auto next_anchored = std::make_unique<PageTable>(
            buildAnchorPageTable(*next_map, AnchorDist::fromPages(distance)));

        ProcessContext ctx;
        ctx.table = next_plain.get();
        base.switchProcess(ctx);
        colt.switchProcess(ctx);
        cluster.switchProcess(ctx);
        ctx.table = next_thp.get();
        ctx.map = next_map.get();
        rmm.switchProcess(ctx);
        ctx.table = next_anchored.get();
        ctx.anchor_distance = AnchorDist::fromPages(distance);
        anchor.switchProcess(ctx);

        // Only now may the previous epoch's structures die.
        plain = std::move(next_plain);
        thp = std::move(next_thp);
        anchored = std::move(next_anchored);
        map = std::move(next_map);
        oracle.setMap(map.get());

        for (int i = 0; i < accesses_per_epoch; ++i) {
            const Vpn vpn = randomMappedVpn();
            const VirtAddr va =
                vaOf(vpn) + rng_.nextBounded(pageBytes / 8) * 8;
            ASSERT_EQ(oracle.translateAll(va), map->translate(vpn))
                << "epoch " << epoch << " access " << i;
            ++steps_;
        }

        // Churn boundary: every structural invariant must hold.
        for (const TranslationOracle &o : oracle.oracles()) {
            verifyTlbInvariants(o.mmu().l1Tlb4K());
            verifyTlbInvariants(o.mmu().l1Tlb2M());
        }
        verifyTlbInvariants(base.l2Tlb());
        verifyTlbInvariants(colt.regularTlb());
        verifyTlbInvariants(colt.coalescedTlb());
        verifyTlbInvariants(cluster.regularTlb());
        verifyTlbInvariants(cluster.clusterTlb());
        verifyTlbInvariants(rmm.l2Tlb());
        verifyTlbInvariants(anchor.l2Tlb());
        verifyAnchorInvariants(anchor);
        verifyBuddyInvariants(buddy_);
    }

    // The acceptance bar: >= 10k deterministic steps, zero mismatches
    // (any mismatch would have panicked), all five schemes exercised.
    EXPECT_GE(steps_, 10000u);
    EXPECT_EQ(oracle.steps(), static_cast<std::uint64_t>(epochs) *
                                  accesses_per_epoch);
    EXPECT_GT(distance_changes, 0u)
        << "churn never moved the anchor distance; the distance-change "
           "path went untested";
    for (const TranslationOracle &o : oracle.oracles()) {
        EXPECT_EQ(o.mmu().stats().accesses, oracle.steps());
        EXPECT_GT(o.mmu().stats().l1_hits, 0u);
        EXPECT_GT(o.mmu().stats().page_walks, 0u);
    }
}

/**
 * Seed-sweep stress for sharded mode: 16 RNG seeds x the five
 * translation schemes, each cell run both serially and 4-way sharded.
 * Under ANCHORTLB_CHECKED every translate() of every shard is
 * oracle-verified against the authoritative page table and ANCHOR_DCHECK
 * validates merge labels and slice sizes, so this sweep drags the
 * sharded code path through 16 different mapping layouts and access
 * streams with the full checker armour on. The release-build assertions
 * here are the conservation laws that hold at ANY budget: merged
 * counters account for exactly the serial stream, and every per-shard
 * counter sums into the merged result. (The tight accuracy epsilon is
 * enforced at a realistic budget by test_sharded_runner.cc; this sweep
 * only guards against gross divergence.)
 */
TEST(ShardedSeedSweep, SixteenSeedsFiveSchemesConserveCounters)
{
    const Scheme schemes[] = {Scheme::Base, Scheme::Thp, Scheme::Cluster,
                              Scheme::Rmm, Scheme::Anchor};
    const std::string workloads[] = {"canneal", "sphinx3", "omnetpp",
                                     "mcf"};
    const ScenarioKind scenarios[] = {
        ScenarioKind::Demand, ScenarioKind::LowContig,
        ScenarioKind::MedContig, ScenarioKind::HighContig};

    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        SimOptions options;
        options.accesses = 12'000;
        options.seed = seed * 7919; // spread seeds far apart
        options.footprint_scale = 0.02;
        options.threads = 1;
        options.shards = 4;
        options.shard_warmup = 2'048;
        // Rotate the pair with the seed so the sweep covers different
        // mapping layouts, not just different streams over one layout.
        const std::string &workload = workloads[seed % 4];
        const ScenarioKind scenario = scenarios[(seed / 4) % 4];
        SCOPED_TRACE("seed " + std::to_string(options.seed) + " " +
                     workload + "/" + scenarioName(scenario));

        const WorkloadSpec spec = scaledWorkloadSpec(options, workload);
        const MemoryMap map =
            buildScenario(scenario, scenarioParamsFor(options, spec));
        const PageTable plain = buildPageTable(map, false);
        const PageTable thp = buildPageTable(map, true);
        const std::uint64_t distance =
            selectAnchorDistance(map.contiguityHistogram()).distance;
        const PageTable anchored =
            buildAnchorPageTable(map, AnchorDist::fromPages(distance));

        for (const Scheme scheme : schemes) {
            SCOPED_TRACE(schemeName(scheme));
            const PageTable &table =
                scheme == Scheme::Base || scheme == Scheme::Cluster
                    ? plain
                    : (scheme == Scheme::Anchor ? anchored : thp);
            const std::uint64_t dist =
                scheme == Scheme::Anchor ? distance : 0;

            const ShardAccuracy acc = compareShardedToSerial(
                options, spec, scenario, map, table, scheme, dist);

            // Conservation: both modes measured the exact stream.
            ASSERT_EQ(acc.serial.stats.accesses, options.accesses);
            ASSERT_EQ(acc.sharded.stats.accesses, options.accesses);
            const auto accounted = [](const MmuStats &s) {
                return s.l1_hits + s.l2_regular_hits + s.coalesced_hits +
                       s.page_walks;
            };
            EXPECT_EQ(accounted(acc.sharded.stats),
                      acc.sharded.stats.accesses);

            // Gross-divergence guard (loose: quick-budget slices are
            // shorter than a TLB refill, see the accuracy-test note).
            EXPECT_LE(acc.missRateDelta(), 0.05)
                << "sharded walks " << acc.sharded.misses()
                << " vs serial " << acc.serial.misses();

            // Per-shard partials must sum into the merged result.
            const ShardedResult run = runShardedCell(
                options, spec, scenario, map, table, scheme, dist);
            MmuStats sum;
            for (const SimResult &shard : run.shards)
                sum += shard.stats;
            EXPECT_EQ(sum.accesses, run.merged.stats.accesses);
            EXPECT_EQ(sum.page_walks, run.merged.stats.page_walks);
            EXPECT_EQ(sum.translation_cycles,
                      run.merged.stats.translation_cycles);
            // And the sharded run must be reproducible.
            EXPECT_EQ(run.merged.misses(), acc.sharded.misses());
        }
    }
}

} // namespace
} // namespace atlb
