/**
 * @file
 * Qualitative reproduction checks: the per-scenario scheme orderings the
 * paper's claims rest on must hold in miniature. These are the "who
 * wins, where" invariants of Figures 2 and 9:
 *
 *  - low/medium contiguity: THP and RMM ~ineffective; clustering helps;
 *    anchor at least matches clustering.
 *  - high/max contiguity: RMM nearly eliminates misses; anchor nearly
 *    matches it; plain cluster's 8-page span lags far behind.
 *  - anchor adapts: its chosen distance grows with mapping contiguity.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace atlb
{
namespace
{

class PaperShapes : public ::testing::Test
{
  protected:
    static SimOptions
    options()
    {
        SimOptions opts;
        opts.accesses = 120'000;
        opts.seed = 42;
        opts.footprint_scale = 0.05;
        return opts;
    }

    static ExperimentContext &
    ctx()
    {
        static ExperimentContext context(options());
        return context;
    }

    static double
    rel(const std::string &workload, ScenarioKind scenario, Scheme scheme)
    {
        const std::uint64_t base =
            ctx().run(workload, scenario, Scheme::Base).misses();
        return relativeMisses(
            ctx().run(workload, scenario, scheme).misses(), base);
    }
};

TEST_F(PaperShapes, ThpUselessWithoutHugeChunks)
{
    EXPECT_GE(rel("canneal", ScenarioKind::LowContig, Scheme::Thp), 0.999);
    EXPECT_GE(rel("canneal", ScenarioKind::MedContig, Scheme::Thp), 0.95);
}

TEST_F(PaperShapes, RmmUselessAtLowContiguity)
{
    EXPECT_GE(rel("canneal", ScenarioKind::LowContig, Scheme::Rmm), 0.95);
}

TEST_F(PaperShapes, RmmNearlyEliminatesMissesAtMaxContiguity)
{
    EXPECT_LE(rel("canneal", ScenarioKind::MaxContig, Scheme::Rmm), 0.05);
}

TEST_F(PaperShapes, AnchorNearlyMatchesRmmAtHighContiguity)
{
    const double anchor =
        rel("canneal", ScenarioKind::HighContig, Scheme::Anchor);
    EXPECT_LE(anchor, 0.25);
}

TEST_F(PaperShapes, ClusterSpanLimitsItAtHighContiguity)
{
    const double cluster =
        rel("canneal", ScenarioKind::HighContig, Scheme::Cluster);
    const double anchor =
        rel("canneal", ScenarioKind::HighContig, Scheme::Anchor);
    // Paper Fig. 9: cluster's benefit saturates with 8-page coverage
    // while the anchor scheme keeps scaling.
    EXPECT_GT(cluster, anchor + 0.2);
}

TEST_F(PaperShapes, ClusterHelpsAtLowContiguity)
{
    EXPECT_LE(rel("milc", ScenarioKind::LowContig, Scheme::Cluster), 0.9);
}

TEST_F(PaperShapes, AnchorBestOrTiedAtMediumContiguity)
{
    const ScenarioKind k = ScenarioKind::MedContig;
    const double anchor = rel("canneal", k, Scheme::Anchor);
    EXPECT_LE(anchor, rel("canneal", k, Scheme::Thp) + 0.02);
    EXPECT_LE(anchor, rel("canneal", k, Scheme::Cluster2MB) + 0.02);
    EXPECT_LE(anchor, rel("canneal", k, Scheme::Rmm) + 0.02);
}

TEST_F(PaperShapes, AnchorDistanceGrowsWithContiguity)
{
    const std::uint64_t low =
        ctx().dynamicDistance("canneal", ScenarioKind::LowContig);
    const std::uint64_t med =
        ctx().dynamicDistance("canneal", ScenarioKind::MedContig);
    const std::uint64_t max =
        ctx().dynamicDistance("canneal", ScenarioKind::MaxContig);
    EXPECT_LT(low, med);
    EXPECT_LT(med, max);
    EXPECT_EQ(low, 4u); // paper Table 6: every low-contig cell picks 4
}

TEST_F(PaperShapes, ThpEffectiveAtMaxContiguity)
{
    EXPECT_LE(rel("canneal", ScenarioKind::MaxContig, Scheme::Thp), 0.4);
}

TEST_F(PaperShapes, GupsResistsEverything)
{
    // Uniform random over the whole footprint: nothing except massive
    // coverage helps (paper: gups is the worst case at medium).
    const ScenarioKind k = ScenarioKind::MedContig;
    EXPECT_GE(rel("gups", k, Scheme::Cluster2MB), 0.9);
    EXPECT_GE(rel("gups", k, Scheme::Rmm), 0.9);
}

} // namespace
} // namespace atlb
