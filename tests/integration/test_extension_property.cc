/**
 * @file
 * Translation-correctness properties for the extension MMUs (CoLT-FA,
 * multi-region anchors) and for nested mode, across every scenario
 * kind: like test_translation_property.cc, results must always equal
 * the mapping's answer regardless of hit path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/colt_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "os/distance_selector.hh"
#include "os/region_partitioner.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"

namespace atlb
{
namespace
{

class ExtensionProperty : public ::testing::TestWithParam<ScenarioKind>
{
  protected:
    MemoryMap
    makeMap() const
    {
        ScenarioParams sp;
        sp.footprint_pages = 6000;
        sp.seed = 91;
        sp.demand_run_pages = 48;
        sp.eager_run_pages = 48;
        sp.map_tail_run_pages = 8;
        sp.map_tail_fraction = 0.3;
        return buildScenario(GetParam(), sp);
    }

    static void
    verify(Mmu &mmu, const MemoryMap &map)
    {
        Rng rng(123);
        const Vpn lo = map.chunks().front().vpn;
        const Vpn hi = map.chunks().back().vpnEnd();
        for (int i = 0; i < 25000; ++i) {
            const Vpn vpn = lo + rng.nextBounded(hi - lo);
            if (!map.mapped(vpn))
                continue;
            ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn, map.translate(vpn))
                << "vpn offset " << vpn - lo;
        }
    }
};

TEST_P(ExtensionProperty, ColtFaAlwaysCorrect)
{
    const MemoryMap map = makeMap();
    const PageTable table = buildPageTable(map, false);
    MmuConfig cfg;
    ColtMmu mmu(cfg, table);
    verify(mmu, map);
}

TEST_P(ExtensionProperty, RegionAnchorAlwaysCorrect)
{
    const MemoryMap map = makeMap();
    const RegionPartition partition = partitionAnchorRegions(map);
    const PageTable table = buildRegionAnchorPageTable(map, partition);
    MmuConfig cfg;
    RegionAnchorMmu mmu(cfg, table, partition);
    verify(mmu, map);
}

TEST_P(ExtensionProperty, NestedAnchorAlwaysCorrect)
{
    const MemoryMap guest = makeMap();
    const std::uint64_t d =
        selectAnchorDistance(guest.contiguityHistogram()).distance;
    PageTable guest_table =
        buildAnchorPageTable(guest, AnchorDist::fromPages(d));

    Ppn max_gpa{0};
    for (const Chunk &c : guest.chunks())
        max_gpa = std::max(max_gpa, c.ppn + c.pages);
    ScenarioParams hp;
    hp.footprint_pages = max_gpa.raw() + 8;
    hp.va_base = Vpn{0};
    hp.seed = 17;
    hp.demand_run_pages = 64;
    hp.eager_run_pages = 64;
    const MemoryMap host_map = buildScenario(GetParam(), hp);
    const PageTable host_table = buildPageTable(host_map, true);

    MmuConfig cfg;
    AnchorMmu mmu(cfg, guest_table, AnchorDist::fromPages(d));
    mmu.setNested(&host_table, &host_map);

    Rng rng(321);
    const Vpn lo = guest.chunks().front().vpn;
    const Vpn hi = guest.chunks().back().vpnEnd();
    for (int i = 0; i < 20000; ++i) {
        const Vpn vpn = lo + rng.nextBounded(hi - lo);
        if (!guest.mapped(vpn))
            continue;
        const Ppn expect =
            host_map.translate(hostVpnOf(guest.translate(vpn)));
        ASSERT_EQ(mmu.translate(vaOf(vpn)).ppn, expect)
            << "vpn offset " << vpn - lo;
    }
}

std::string
kindName(const ::testing::TestParamInfo<ScenarioKind> &info)
{
    return scenarioName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ExtensionProperty,
                         ::testing::ValuesIn(allScenarios), kindName);

} // namespace
} // namespace atlb
