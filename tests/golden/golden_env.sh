# shellcheck shell=bash
# Pinned environment for the golden-file regression harness.
#
# Sourced by run_golden.sh (the ctest checker) and by
# scripts/update_goldens.sh (the regenerator) so the two can never
# drift. The budget is deliberately tiny — goldens guard the *exact
# bytes* of the bench tables at a fixed seed, not the paper shapes
# (test_paper_shapes.cc does that at realistic budgets).
#
# ANCHORTLB_THREADS=2 and ANCHORTLB_SHARDS=1 are part of the contract
# being pinned: stdout must be byte-identical to a serial 1-thread run
# (PR 2's determinism guarantee) and the K=1 sharded path must be
# byte-identical to the pre-sharding serial walk (this PR's guarantee).

export ANCHORTLB_ACCESSES=20000
export ANCHORTLB_SCALE=0.02
export ANCHORTLB_SEED=42
export ANCHORTLB_THREADS=2
export ANCHORTLB_SHARDS=1
unset ANCHORTLB_CACHE_PAIRS ANCHORTLB_SHARD_WARMUP
