#!/usr/bin/env bash
# Golden-file regression check for one binary.
#
# usage: run_golden.sh <binary> <golden-file> [arg...]
#
# Runs the binary (any extra args are passed through — the trace-info
# golden runs `anchortlb trace info ...`) under the pinned environment
# (golden_env.sh) and diffs its *stdout* against the checked-in golden.
# Stdout only: the sweep summary (cache hit rate, timing-ish numbers)
# goes to stderr precisely so the bytes compared here are
# deterministic. Any difference — down to a single character — fails
# with the diff shown.
#
# To regenerate after an intentional output change:
#   scripts/update_goldens.sh <build-dir>

set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 <binary> <golden-file> [arg...]" >&2
    exit 2
fi
bench="$1"
golden="$2"
shift 2

# shellcheck source=golden_env.sh
. "$(dirname "$0")/golden_env.sh"

if [ ! -x "$bench" ]; then
    echo "bench binary '$bench' not found or not executable" >&2
    exit 2
fi
if [ ! -f "$golden" ]; then
    echo "golden file '$golden' missing — run scripts/update_goldens.sh" >&2
    exit 2
fi

actual="$("$bench" "$@" 2>/dev/null)"
if ! diff -u "$golden" <(printf '%s\n' "$actual"); then
    echo "" >&2
    echo "GOLDEN MISMATCH: $(basename "$bench") no longer reproduces" >&2
    echo "$golden byte-for-byte." >&2
    echo "If the change is intentional, regenerate with:" >&2
    echo "  scripts/update_goldens.sh <build-dir>" >&2
    exit 1
fi
echo "golden OK: $(basename "$golden")"
