/**
 * @file
 * End-to-end fidelity of the ingestion pipeline: a text capture
 * imported to v1 and to v2 must drive every scheme to counter-identical
 * results, and a trace-driven cell must behave exactly like any other
 * cell under the sharded runner (K=1 byte-identical to serial, K>1
 * slicing exactly).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "ingest/text_importer.hh"
#include "ingest/trace_v2.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "sim/experiment.hh"
#include "sim/sharded_runner.hh"
#include "trace/trace_io.hh"

namespace atlb
{
namespace
{

void
expectSameCounters(const SimResult &a, const SimResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.stats.accesses, b.stats.accesses) << what;
    EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits) << what;
    EXPECT_EQ(a.stats.l2_regular_hits, b.stats.l2_regular_hits) << what;
    EXPECT_EQ(a.stats.coalesced_hits, b.stats.coalesced_hits) << what;
    EXPECT_EQ(a.stats.page_walks, b.stats.page_walks) << what;
    EXPECT_EQ(a.stats.translation_cycles, b.stats.translation_cycles)
        << what;
}

class TraceE2eTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        stem_ = testing::TempDir() + "atlb_e2e_" + info->name() + "_" +
                std::to_string(::getpid());
        text_ = stem_ + ".txt";
        v1_ = stem_ + ".atlbtrc1";
        v2_ = stem_ + ".atlbtrc2";
        detail::setThrowOnError(true);

        // A deterministic capture over 512 pages at the simulated
        // region base: sequential runs (coalescing-friendly) mixed with
        // scattered jumps, all offsets 8-aligned so v1's dropped low
        // bit cannot matter.
        std::ofstream out(text_);
        std::uint64_t x = 12345;
        const VirtAddr base = traceBaseVa();
        for (int i = 0; i < 6'000; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            VirtAddr va;
            if (i % 3 != 0) {
                va = base + (static_cast<std::uint64_t>(i) % 512) *
                                pageBytes +
                     (x % 500) * 8;
            } else {
                va = base + ((x >> 32) % 512) * pageBytes + (x % 500) * 8;
            }
            out << ((x >> 16) % 4 == 0 ? "W 0x" : "R 0x") << std::hex
                << va << std::dec << "\n";
        }
        out.close();

        ImportOptions opts;
        opts.format = TextTraceFormat::Plain;
        {
            TraceWriter w(v1_);
            importTextTrace(text_, opts,
                            [&](const MemAccess &a) { w.append(a); });
        }
        {
            TraceV2Writer w(v2_, 512); // multiple blocks
            importTextTrace(text_, opts,
                            [&](const MemAccess &a) { w.append(a); });
        }
    }

    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(text_.c_str());
        std::remove(v1_.c_str());
        std::remove(v2_.c_str());
    }

    static SimOptions testOptions()
    {
        SimOptions opts;
        opts.accesses = 6'000;
        opts.seed = 42;
        opts.threads = 1;
        return opts;
    }

    std::string stem_, text_, v1_, v2_;
};

TEST_F(TraceE2eTest, SpecFromTraceFile)
{
    const SimOptions opts = testOptions();
    const WorkloadSpec spec1 =
        scaledWorkloadSpec(opts, "trace:" + v1_);
    const WorkloadSpec spec2 =
        scaledWorkloadSpec(opts, "trace:" + v2_);
    EXPECT_TRUE(spec1.traceDriven());
    EXPECT_EQ(spec1.trace_accesses, 6'000u);
    EXPECT_EQ(spec2.trace_accesses, 6'000u);
    // Both containers hold the same stream, so the derived footprints
    // agree (and cover the 512 touched pages).
    EXPECT_EQ(spec1.footprintPages(), spec2.footprintPages());
    EXPECT_EQ(spec1.footprintPages(), 512u);
    EXPECT_EQ(cellAccesses(opts, spec1), 6'000u);
}

TEST_F(TraceE2eTest, AllSchemesCounterIdenticalAcrossContainers)
{
    // The acceptance bar: replaying the v2 conversion is
    // counter-identical to replaying the v1 trace across all five
    // schemes (same mapping and tables; only the container differs).
    const SimOptions opts = testOptions();
    const WorkloadSpec spec1 = scaledWorkloadSpec(opts, "trace:" + v1_);
    const WorkloadSpec spec2 = scaledWorkloadSpec(opts, "trace:" + v2_);

    const MemoryMap map = buildScenario(
        ScenarioKind::MedContig, scenarioParamsFor(opts, spec1));
    const PageTable plain = buildPageTable(map, false);
    const PageTable thp = buildPageTable(map, true);
    const std::uint64_t distance =
        selectAnchorDistance(map.contiguityHistogram()).distance;
    const PageTable anchored =
        buildAnchorPageTable(map, AnchorDist::fromPages(distance));

    const struct
    {
        Scheme scheme;
        const PageTable *table;
    } cells[] = {
        {Scheme::Base, &plain},         {Scheme::Thp, &thp},
        {Scheme::Cluster, &plain},      {Scheme::Rmm, &thp},
        {Scheme::Anchor, &anchored},
    };
    for (const auto &cell : cells) {
        const SimResult r1 = runSchemeCell(opts, spec1, ScenarioKind::MedContig,
                                           map, *cell.table, cell.scheme,
                                           distance);
        const SimResult r2 = runSchemeCell(opts, spec2, ScenarioKind::MedContig,
                                           map, *cell.table, cell.scheme,
                                           distance);
        expectSameCounters(r1, r2, schemeName(cell.scheme));
        EXPECT_EQ(r1.stats.accesses, 6'000u) << schemeName(cell.scheme);
    }
}

TEST_F(TraceE2eTest, ShardedOneShardIsByteIdenticalToSerial)
{
    SimOptions opts = testOptions();
    const WorkloadSpec spec = scaledWorkloadSpec(opts, "trace:" + v2_);
    const MemoryMap map = buildScenario(
        ScenarioKind::MedContig, scenarioParamsFor(opts, spec));
    const PageTable thp = buildPageTable(map, true);

    const SimResult serial = runSchemeCell(
        opts, spec, ScenarioKind::MedContig, map, thp, Scheme::Thp, 0);
    opts.shards = 1;
    const ShardedResult sharded = runShardedCell(
        opts, spec, ScenarioKind::MedContig, map, thp, Scheme::Thp, 0);
    ASSERT_EQ(sharded.plan.size(), 1u);
    expectSameCounters(serial, sharded.merged, "K=1");
}

TEST_F(TraceE2eTest, ShardedSlicesCoverTheTraceExactly)
{
    SimOptions opts = testOptions();
    opts.shards = 3;
    opts.shard_warmup = 500;
    const WorkloadSpec spec = scaledWorkloadSpec(opts, "trace:" + v2_);
    const MemoryMap map = buildScenario(
        ScenarioKind::MedContig, scenarioParamsFor(opts, spec));
    const PageTable thp = buildPageTable(map, true);

    const ShardedResult sharded = runShardedCell(
        opts, spec, ScenarioKind::MedContig, map, thp, Scheme::Thp, 0);
    ASSERT_EQ(sharded.plan.size(), 3u);
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < sharded.plan.size(); ++i) {
        EXPECT_EQ(sharded.shards[i].stats.accesses,
                  sharded.plan[i].length())
            << "shard " << i;
        covered += sharded.shards[i].stats.accesses;
    }
    EXPECT_EQ(covered, 6'000u);
    EXPECT_EQ(sharded.merged.stats.accesses, 6'000u);
}

TEST_F(TraceE2eTest, AccessClampAndPrefixReplay)
{
    // Asking for more accesses than the capture holds clamps to the
    // trace length; asking for fewer replays exactly that prefix.
    SimOptions opts = testOptions();
    opts.accesses = 100'000;
    const WorkloadSpec spec = scaledWorkloadSpec(opts, "trace:" + v2_);
    EXPECT_EQ(cellAccesses(opts, spec), 6'000u);

    opts.accesses = 1'000;
    EXPECT_EQ(cellAccesses(opts, spec), 1'000u);
    const MemoryMap map = buildScenario(
        ScenarioKind::MedContig, scenarioParamsFor(opts, spec));
    const PageTable thp = buildPageTable(map, true);
    const SimResult r = runSchemeCell(
        opts, spec, ScenarioKind::MedContig, map, thp, Scheme::Thp, 0);
    EXPECT_EQ(r.stats.accesses, 1'000u);
}

TEST_F(TraceE2eTest, UnrebasedTraceIsRejected)
{
    // A capture below the simulated region base must be refused with
    // the re-import hint rather than simulated against unmapped VAs.
    const std::string low = stem_ + "_low.atlbtrc1";
    {
        TraceWriter w(low);
        w.append({VirtAddr{0x1000}, false});
    }
    const SimOptions opts = testOptions();
    EXPECT_THROW(scaledWorkloadSpec(opts, "trace:" + low),
                 std::runtime_error);
    std::remove(low.c_str());
}

} // namespace
} // namespace atlb
