/**
 * @file
 * Tests for the mmap-backed zero-copy v1 reader.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "ingest/mapped_trace.hh"
#include "trace/trace_io.hh"

namespace atlb
{
namespace
{

class MappedTraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = testing::TempDir() + "atlb_map_" + info->name() + "_" +
                std::to_string(::getpid()) + ".bin";
        detail::setThrowOnError(true);
    }
    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(MappedTraceTest, MatchesIfstreamReaderExactly)
{
    const std::uint64_t n = 20'000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({VirtAddr{(i * 0x9e3779b9ULL) << 3}, (i & 3) == 0});
    }
    TraceFileSource ifs(path_);
    MappedTraceSource mapped(path_);
    EXPECT_EQ(mapped.length(), n);
    MemAccess a, b;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(ifs.next(a));
        ASSERT_TRUE(mapped.next(b));
        ASSERT_EQ(a.vaddr, b.vaddr) << "record " << i;
        ASSERT_EQ(a.write, b.write) << "record " << i;
    }
    EXPECT_FALSE(mapped.next(b));
}

TEST_F(MappedTraceTest, BatchedFillMatchesNext)
{
    const std::uint64_t n = 5'000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({VirtAddr{i << 12}, (i & 1) == 0});
    }
    MappedTraceSource mapped(path_);
    std::vector<MemAccess> got;
    MemAccess buf[333];
    std::size_t k;
    while ((k = mapped.fill(buf, 333)) > 0)
        got.insert(got.end(), buf, buf + k);
    ASSERT_EQ(got.size(), n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i].vaddr, VirtAddr{i << 12});
        ASSERT_EQ(got[i].write, (i & 1) == 0);
    }
}

TEST_F(MappedTraceTest, SkipAndResetAreExact)
{
    const std::uint64_t n = 1'000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({VirtAddr{i << 12}, false});
    }
    MappedTraceSource mapped(path_);
    mapped.skip(123);
    mapped.skip(277);
    MemAccess a;
    ASSERT_TRUE(mapped.next(a));
    EXPECT_EQ(a.vaddr, VirtAddr{400ull << 12});
    mapped.skip(10'000); // clamps at the end
    EXPECT_FALSE(mapped.next(a));
    mapped.reset();
    ASSERT_TRUE(mapped.next(a));
    EXPECT_EQ(a.vaddr, VirtAddr{0});
}

TEST_F(MappedTraceTest, MissingFileIsFatal)
{
    EXPECT_THROW(MappedTraceSource("/nonexistent/trace.bin"),
                 std::runtime_error);
}

TEST_F(MappedTraceTest, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "NOTATRACEFILE___";
    }
    EXPECT_THROW(MappedTraceSource src(path_), std::runtime_error);
}

TEST_F(MappedTraceTest, SizeMismatchIsFatalAtOpen)
{
    {
        TraceWriter w(path_);
        for (int i = 0; i < 8; ++i)
            w.append({VirtAddr{static_cast<std::uint64_t>(i) << 12}, false});
    }
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "xx"; // header now undercounts the body
    }
    EXPECT_THROW(MappedTraceSource src(path_), std::runtime_error);
}

TEST_F(MappedTraceTest, OverflowingHeaderCountIsFatalAtOpen)
{
    // A 16-byte file whose header claims 2^61 accesses makes
    // count * 8 wrap to 0, so a naive `16 + count * 8 == size` check
    // passes and fill() runs off the end of the mapping. The open
    // must reject the count instead.
    {
        TraceWriter w(path_); // empty trace: header only
    }
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(8);
        const std::uint64_t bogus = 1ULL << 61;
        for (int i = 0; i < 8; ++i) {
            const char byte =
                static_cast<char>((bogus >> (8 * i)) & 0xff);
            f.write(&byte, 1);
        }
    }
    EXPECT_THROW(MappedTraceSource src(path_), std::runtime_error);
}

} // namespace
} // namespace atlb
