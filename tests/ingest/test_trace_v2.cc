/**
 * @file
 * Tests for the ATLBTRC2 block codec: round-trip fidelity, seek
 * behaviour across block boundaries, and corruption detection.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/simd_test_util.hh"
#include "ingest/trace_v2.hh"
#include "trace/trace_io.hh"

namespace atlb
{
namespace
{

class TraceV2Test : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = testing::TempDir() + "atlb_v2_" + info->name() + "_" +
                std::to_string(::getpid()) + ".bin";
        detail::setThrowOnError(true);
    }
    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(path_.c_str());
    }

    void write(const std::vector<MemAccess> &accesses,
               std::uint64_t block_capacity)
    {
        TraceV2Writer w(path_, block_capacity);
        for (const MemAccess &a : accesses)
            w.append(a);
        w.close();
        ASSERT_EQ(w.written(), accesses.size());
    }

    std::vector<MemAccess> readAll()
    {
        TraceV2Source src(path_);
        std::vector<MemAccess> out;
        MemAccess a;
        while (src.next(a))
            out.push_back(a);
        return out;
    }

    /** Random stream mixing local and far jumps, reads and writes. */
    static std::vector<MemAccess> randomStream(std::size_t n,
                                               std::uint32_t seed)
    {
        std::mt19937_64 rng(seed);
        std::vector<MemAccess> out;
        out.reserve(n);
        std::uint64_t va = 0x7f0000000000ULL;
        for (std::size_t i = 0; i < n; ++i) {
            switch (rng() % 4) {
              case 0: va += rng() % 4096; break;            // same page
              case 1: va += pageBytes * (rng() % 8); break; // near
              case 2: va -= std::min(va, pageBytes * (rng() % 512));
                      break;                                // backwards
              default: va = 0x7f0000000000ULL + (rng() % (1ULL << 34));
                      break;                                // far jump
            }
            out.push_back({VirtAddr{va}, (rng() & 1) != 0});
        }
        return out;
    }

    static std::vector<char> slurp(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        std::vector<char> buf(static_cast<std::size_t>(in.tellg()));
        in.seekg(0);
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        return buf;
    }

    static void dump(const std::string &path,
                     const std::vector<char> &buf)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }

    static std::uint64_t readU64At(const std::vector<char> &buf,
                                   std::size_t at)
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[at + i]))
                 << (8 * i);
        return v;
    }

    static void putU64At(std::vector<char> &buf, std::size_t at,
                         std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }

    std::string path_;
};

TEST_F(TraceV2Test, RoundTripIsByteEqual)
{
    // Property: decode(encode(s)) == s exactly, including write flags
    // and odd vaddrs (v2, unlike v1, keeps vaddr's low bit).
    for (const std::uint32_t seed : {1u, 2u, 3u}) {
        const std::vector<MemAccess> in = randomStream(10'000, seed);
        write(in, 1024);
        const std::vector<MemAccess> out = readAll();
        ASSERT_EQ(out.size(), in.size());
        for (std::size_t i = 0; i < in.size(); ++i) {
            ASSERT_EQ(out[i].vaddr, in[i].vaddr) << "access " << i;
            ASSERT_EQ(out[i].write, in[i].write) << "access " << i;
        }
    }
}

TEST_F(TraceV2Test, BitPackedBlocksRoundTripAndCompress)
{
    // A gups-like stream — uniformly random jumps over a huge
    // footprint — defeats varint coding (every delta needs 5+ bytes),
    // so the writer must fall back to the tag-1 bit-packed block
    // encoding. Check the round trip stays exact and the file still
    // beats v1's flat 8 bytes/access.
    std::mt19937_64 rng(29);
    std::vector<MemAccess> in;
    in.reserve(20'000);
    for (std::size_t i = 0; i < 20'000; ++i) {
        const std::uint64_t va =
            0x100000000ULL + (rng() % (1ULL << 33)) * 8;
        in.push_back({VirtAddr{va}, (rng() & 1) != 0});
    }
    write(in, 1024);
    const std::vector<MemAccess> out = readAll();
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_EQ(out[i].vaddr, in[i].vaddr) << "access " << i;
        ASSERT_EQ(out[i].write, in[i].write) << "access " << i;
    }
    std::ifstream f(path_, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<std::uint64_t>(f.tellg());
    // 36-bit deltas pack to ~4.5 bytes/access plus index overhead;
    // varint would need ~5.6. Anything under 5x shows tag 1 engaged.
    EXPECT_LT(bytes, in.size() * 5);
}

TEST_F(TraceV2Test, EmptyTrace)
{
    write({}, 64);
    TraceV2Source src(path_);
    EXPECT_EQ(src.length(), 0u);
    EXPECT_EQ(src.blockCount(), 0u);
    MemAccess a;
    EXPECT_FALSE(src.next(a));
    src.reset();
    EXPECT_FALSE(src.next(a));
}

TEST_F(TraceV2Test, MultiBlockGeometry)
{
    const std::vector<MemAccess> in = randomStream(1000, 7);
    write(in, 64); // 15 full blocks + a 40-access tail
    TraceV2Source src(path_);
    EXPECT_EQ(src.length(), 1000u);
    EXPECT_EQ(src.blockCapacity(), 64u);
    EXPECT_EQ(src.blockCount(), 16u);
}

TEST_F(TraceV2Test, TrailerCarriesVaddrBounds)
{
    std::vector<MemAccess> in = randomStream(500, 11);
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const MemAccess &a : in) {
        lo = std::min(lo, a.vaddr.raw());
        hi = std::max(hi, a.vaddr.raw());
    }
    write(in, 128);
    TraceV2Source src(path_);
    EXPECT_EQ(src.minVaddr(), lo);
    EXPECT_EQ(src.maxVaddr(), hi);
}

TEST_F(TraceV2Test, SkipMatchesDrainingAcrossBlockBoundaries)
{
    const std::vector<MemAccess> in = randomStream(2'000, 5);
    write(in, 64);

    // skip(n) must land exactly where n next() calls land, including
    // when the landing point is mid-block, on a block boundary, or
    // composed from several calls that cross boundaries.
    for (const std::uint64_t target : {1ull, 63ull, 64ull, 65ull,
                                       640ull, 1999ull}) {
        TraceV2Source skipped(path_);
        skipped.skip(target);
        MemAccess a;
        ASSERT_TRUE(skipped.next(a)) << "target " << target;
        EXPECT_EQ(a.vaddr, in[static_cast<std::size_t>(target)].vaddr)
            << "target " << target;
    }

    TraceV2Source composed(path_);
    composed.skip(30);
    composed.skip(50);  // crosses the first boundary
    composed.skip(190); // crosses several more
    MemAccess a;
    ASSERT_TRUE(composed.next(a));
    EXPECT_EQ(a.vaddr, in[270].vaddr);

    // Past the end: exhausted, and reset() rewinds to access 0.
    TraceV2Source past(path_);
    past.skip(5'000);
    EXPECT_FALSE(past.next(a));
    past.reset();
    ASSERT_TRUE(past.next(a));
    EXPECT_EQ(a.vaddr, in[0].vaddr);
}

TEST_F(TraceV2Test, FillMatchesNext)
{
    const std::vector<MemAccess> in = randomStream(777, 13);
    write(in, 64);
    TraceV2Source batched(path_);
    std::vector<MemAccess> got;
    MemAccess buf[100]; // deliberately not a divisor of the block size
    std::size_t n;
    while ((n = batched.fill(buf, 100)) > 0)
        got.insert(got.end(), buf, buf + n);
    ASSERT_EQ(got.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        ASSERT_EQ(got[i].vaddr, in[i].vaddr) << "access " << i;
}

TEST_F(TraceV2Test, BackwardRepositionWithinTheLoadedBlock)
{
    // The streamed decoder caches only the compressed body of the
    // loaded block; rewinding inside it (reset, or a skip landing
    // earlier in the same block) must restart the incremental decode
    // rather than re-read the file or serve stale words.
    const std::vector<MemAccess> in = randomStream(500, 41);
    write(in, 256);
    TraceV2Source src(path_);
    MemAccess a;
    for (int i = 0; i < 100; ++i) // land mid-block 0
        ASSERT_TRUE(src.next(a));
    src.reset();
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(src.next(a)) << "access " << i;
        EXPECT_EQ(a.vaddr, in[static_cast<std::size_t>(i)].vaddr)
            << "access " << i;
    }
    // Forward again past the original cursor, still block 0.
    src.skip(150); // now at access 180
    ASSERT_TRUE(src.next(a));
    EXPECT_EQ(a.vaddr, in[180].vaddr);
}

TEST_F(TraceV2Test, BlockStatsMatchIndexAndObserveBothEncodings)
{
    // Half page-local (varint wins), half uniformly scattered
    // (bit-packed wins): blockStats must agree with the index on
    // count/bytes and surface both encoding tags.
    std::mt19937_64 rng(43);
    std::vector<MemAccess> in;
    for (std::size_t i = 0; i < 2'000; ++i)
        in.push_back({VirtAddr{0x7f0000000000ULL + i * 64}, false});
    for (std::size_t i = 0; i < 2'000; ++i)
        in.push_back(
            {VirtAddr{0x100000000ULL + (rng() % (1ULL << 33)) * 8},
             false});
    write(in, 256);

    TraceV2Source src(path_);
    std::uint64_t total = 0, varint = 0, packed = 0;
    for (std::size_t b = 0; b < src.blockCount(); ++b) {
        const TraceV2BlockStats s = src.blockStats(b);
        EXPECT_GE(s.bytes, 2u) << "block " << b; // tag + payload
        EXPECT_GT(s.count, 0u) << "block " << b;
        if (s.encoding == traceV2EncodingVarint) {
            ++varint;
            EXPECT_EQ(s.packed_width, 0u) << "block " << b;
        } else {
            ASSERT_EQ(s.encoding, traceV2EncodingPacked);
            ++packed;
            EXPECT_GE(s.packed_width, 1u) << "block " << b;
            EXPECT_LE(s.packed_width, 64u) << "block " << b;
        }
        total += s.count;
    }
    EXPECT_EQ(total, src.length());
    EXPECT_GT(varint, 0u);
    EXPECT_GT(packed, 0u);
}

TEST_F(TraceV2Test, BlockStatsDoesNotDisturbReplay)
{
    const std::vector<MemAccess> in = randomStream(1'000, 47);
    write(in, 128);
    TraceV2Source src(path_);
    MemAccess a;
    for (int i = 0; i < 200; ++i) // cursor mid-block 1
        ASSERT_TRUE(src.next(a));
    // Interrogate every block — including the loaded one and blocks
    // behind/ahead of the cursor — then keep replaying.
    for (std::size_t b = 0; b < src.blockCount(); ++b)
        (void)src.blockStats(b);
    for (std::size_t i = 200; i < in.size(); ++i) {
        ASSERT_TRUE(src.next(a)) << "access " << i;
        ASSERT_EQ(a.vaddr, in[i].vaddr) << "access " << i;
        ASSERT_EQ(a.write, in[i].write) << "access " << i;
    }
    EXPECT_FALSE(src.next(a));
}

TEST_F(TraceV2Test, ConvertFromV1IsStreamEqual)
{
    // v1 drops vaddr's low bit at write time; converting the decoded v1
    // stream to v2 and back must reproduce it exactly.
    const std::string v1_path = path_ + ".v1";
    const std::vector<MemAccess> in = randomStream(3'000, 17);
    {
        TraceWriter w(v1_path);
        for (const MemAccess &a : in)
            w.append(a);
    }
    {
        TraceFileSource v1(v1_path);
        TraceV2Writer w(path_, 256);
        MemAccess a;
        while (v1.next(a))
            w.append(a);
        w.close();
    }
    TraceFileSource v1(v1_path);
    TraceV2Source v2(path_);
    MemAccess a, b;
    std::size_t i = 0;
    while (v1.next(a)) {
        ASSERT_TRUE(v2.next(b)) << "access " << i;
        ASSERT_EQ(a.vaddr, b.vaddr) << "access " << i;
        ASSERT_EQ(a.write, b.write) << "access " << i;
        ++i;
    }
    EXPECT_FALSE(v2.next(b));
    std::remove(v1_path.c_str());
}

TEST_F(TraceV2Test, HugeVaddrIsFatalAtWrite)
{
    TraceV2Writer w(path_);
    EXPECT_THROW(w.append({VirtAddr{1ULL << 63}, false}), std::runtime_error);
}

TEST_F(TraceV2Test, FlippedBlockByteIsFatalAtDecode)
{
    write(randomStream(1'000, 19), 64);
    // Flip one byte inside the first block's payload (offset 16 is the
    // first encoded access): the per-block FNV must catch it when that
    // block is decoded.
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekg(20);
        char byte;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(20);
        f.write(&byte, 1);
    }
    TraceV2Source src(path_); // index still intact: open succeeds
    MemAccess a;
    EXPECT_THROW(src.next(a), std::runtime_error);
}

TEST_F(TraceV2Test, MangledIndexFooterIsFatalAtOpen)
{
    write(randomStream(1'000, 23), 64);
    std::uint64_t file_bytes;
    {
        std::ifstream in(path_, std::ios::binary | std::ios::ate);
        file_bytes = static_cast<std::uint64_t>(in.tellg());
    }
    // Corrupt a byte inside the block index (between the trailer's
    // index_offset and the trailer itself): the index checksum in the
    // trailer must reject the file before any block is read.
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(static_cast<std::streamoff>(file_bytes - 64 - 8));
        const char junk = 0x5a;
        f.write(&junk, 1);
    }
    EXPECT_THROW(TraceV2Source src(path_), std::runtime_error);
}

TEST_F(TraceV2Test, TruncatedFileIsFatalAtOpen)
{
    write(randomStream(1'000, 29), 64);
    std::vector<char> buf;
    {
        std::ifstream in(path_, std::ios::binary | std::ios::ate);
        buf.resize(static_cast<std::size_t>(in.tellg()) - 9);
        in.seekg(0);
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    EXPECT_THROW(TraceV2Source src(path_), std::runtime_error);
}

TEST_F(TraceV2Test, OverflowingBlockCountIsFatalAtOpen)
{
    write(randomStream(1'000, 31), 64);
    // Add 2^59 to the trailer's block_count: block_count * 32 wraps by
    // exactly 2^64, so a naive geometry sum still matches the file
    // size while the index allocation balloons to exabytes. The open
    // must reject the count with a clean fatal instead.
    std::vector<char> buf = slurp(path_);
    const std::size_t count_at = buf.size() - 64 + 8;
    std::uint64_t block_count = readU64At(buf, count_at);
    putU64At(buf, count_at, block_count + (1ULL << 59));
    dump(path_, buf);
    EXPECT_THROW(TraceV2Source src(path_), std::runtime_error);
}

TEST_F(TraceV2Test, PayloadIndexGapIsFatalAtOpen)
{
    write(randomStream(1'000, 37), 64);
    // Splice pad bytes between the last block and the index, bumping
    // the trailer's index_offset to match: every per-block check and
    // the index checksum still pass, but the payload no longer ends
    // where the index starts — open-time validation must notice.
    std::vector<char> buf = slurp(path_);
    const std::size_t offset_at = buf.size() - 64;
    const std::uint64_t index_offset = readU64At(buf, offset_at);
    putU64At(buf, offset_at, index_offset + 8);
    buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(index_offset),
               8, '\x5a');
    dump(path_, buf);
    EXPECT_THROW(TraceV2Source src(path_), std::runtime_error);
}

TEST_F(TraceV2Test, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "definitely not a trace file, but comfortably over "
               "eighty bytes of content so the length check passes";
    }
    EXPECT_THROW(TraceV2Source src(path_), std::runtime_error);
}

// --- scalar vs SIMD block decode ----------------------------------------

/**
 * The decoder captures its unpack kernel at construction, so a source
 * built inside a ScopedSimdLevel(Scalar) scope replays the whole file
 * through the per-delta getBits reference even after the scope ends.
 */
class TraceV2SimdTest : public TraceV2Test
{
  protected:
    std::vector<MemAccess> readAllScalar()
    {
        std::vector<MemAccess> out;
        std::unique_ptr<TraceV2Source> src;
        {
            test::ScopedSimdLevel forced(SimdLevel::Scalar);
            src = std::make_unique<TraceV2Source>(path_);
        }
        MemAccess a;
        while (src->next(a))
            out.push_back(a);
        return out;
    }

    static void expectSameStream(const std::vector<MemAccess> &a,
                                 const std::vector<MemAccess> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].vaddr, b[i].vaddr) << i;
            ASSERT_EQ(a[i].write, b[i].write) << i;
        }
    }

    /** Scattered stream: every delta is large, so bit-packing wins. */
    static std::vector<MemAccess> scatteredStream(std::size_t n,
                                                  std::uint32_t seed)
    {
        std::mt19937_64 rng(seed);
        std::vector<MemAccess> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back({VirtAddr{0x7f0000000000ULL +
                                    (rng() % (1ULL << 40))},
                           (rng() & 1) != 0});
        return out;
    }

    /** Count blocks using each encoding tag. */
    void countEncodings(std::size_t &varint, std::size_t &packed)
    {
        TraceV2Source src(path_);
        varint = packed = 0;
        for (std::size_t b = 0; b < src.blockCount(); ++b) {
            if (src.blockStats(b).encoding == traceV2EncodingPacked)
                ++packed;
            else
                ++varint;
        }
    }
};

TEST_F(TraceV2SimdTest, PackedBlocksDecodeIdenticallyAcrossLevels)
{
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    // Scattered stream, small capacity: many packed blocks plus a
    // partial tail block exercising the whole-block unpack boundary.
    write(scatteredStream(10'000, 5), 512);
    std::size_t varint = 0;
    std::size_t packed = 0;
    countEncodings(varint, packed);
    ASSERT_GT(packed, 0u) << "stream failed to force packed blocks";
    expectSameStream(readAll(), readAllScalar());
}

TEST_F(TraceV2SimdTest, MixedEncodingStreamDecodesIdentically)
{
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    // The writer picks per block whichever of varint/packed is smaller
    // (the packed_bytes < varint_bytes crossover). Alternate
    // block-aligned segments: tiny deltas with one far jump per block
    // (varint wins — packed would pay the jump's width on every
    // delta) and uniform scatter (packed wins — every delta is wide
    // anyway). The vector decoder must flip between the per-block
    // unpack cache and the plain varint path on every block boundary.
    constexpr std::size_t cap = 256;
    std::mt19937_64 rng(11);
    std::vector<MemAccess> stream;
    std::uint64_t va = 0x7f0000000000ULL;
    for (std::size_t b = 0; b < 40; ++b) {
        for (std::size_t i = 0; i < cap; ++i) {
            if ((b & 1) != 0)
                va = 0x7f0000000000ULL + (rng() % (1ULL << 40));
            else if (i == cap / 2)
                va = 0x7f0000000000ULL + (rng() % (1ULL << 38));
            else
                va += rng() % 16;
            stream.push_back({VirtAddr{va}, (rng() & 1) != 0});
        }
    }
    write(stream, cap);
    std::size_t varint = 0;
    std::size_t packed = 0;
    countEncodings(varint, packed);
    ASSERT_GT(varint, 0u) << "local segments no longer varint-encoded";
    ASSERT_GT(packed, 0u) << "scatter segments no longer packed";
    expectSameStream(readAll(), readAllScalar());
}

TEST_F(TraceV2SimdTest, MidBlockSkipAndResetDecodeIdentically)
{
    if (detectedSimdLevel() == SimdLevel::Scalar)
        GTEST_SKIP() << "no vector level on this host";
    const std::vector<MemAccess> stream = scatteredStream(3'000, 23);
    write(stream, 512);

    TraceV2Source vec(path_);
    std::unique_ptr<TraceV2Source> scalar;
    {
        test::ScopedSimdLevel forced(SimdLevel::Scalar);
        scalar = std::make_unique<TraceV2Source>(path_);
    }
    // Mid-block landings (block capacity 512): decode-and-discard of
    // the block prefix must go through the same unpack flavour as the
    // reads, including after reset() re-priming the cache.
    for (const std::uint64_t skip : {1ull, 511ull, 513ull, 1'029ull}) {
        vec.reset();
        scalar->reset();
        vec.skip(skip);
        scalar->skip(skip);
        MemAccess va;
        MemAccess sa;
        for (std::size_t i = 0; i < 600; ++i) {
            const bool vn = vec.next(va);
            const bool sn = scalar->next(sa);
            ASSERT_EQ(vn, sn) << "skip=" << skip << " i=" << i;
            if (!vn)
                break;
            ASSERT_EQ(va.vaddr, sa.vaddr) << "skip=" << skip
                                          << " i=" << i;
            ASSERT_EQ(va.write, sa.write) << "skip=" << skip
                                          << " i=" << i;
            ASSERT_EQ(va.vaddr, stream[skip + i].vaddr)
                << "skip=" << skip << " i=" << i;
        }
    }
}

} // namespace
} // namespace atlb
