/**
 * @file
 * Tests for the workload profiler: footprint, strides, and the
 * contiguity histogram cross-checked against the OS mapping layer's own
 * histogram (the distance-selection input it stands in for).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/types.hh"
#include "ingest/workload_profile.hh"
#include "os/memory_map.hh"

namespace atlb
{
namespace
{

/** Touch every page of each [start, start+len) VPN run, in order. */
WorkloadProfile
profileRuns(const std::vector<std::pair<Vpn, std::uint64_t>> &runs)
{
    WorkloadProfiler profiler;
    for (const auto &[start, len] : runs)
        for (std::uint64_t i = 0; i < len; ++i)
            profiler.record({vaOf(start + i), false});
    return profiler.profile();
}

TEST(WorkloadProfile, FootprintAndBounds)
{
    WorkloadProfiler profiler;
    profiler.record({VirtAddr{0x1000}, false});
    profiler.record({VirtAddr{0x1008}, true});  // same page
    profiler.record({VirtAddr{0x5000}, false});
    const WorkloadProfile p = profiler.profile();
    EXPECT_EQ(p.footprint_pages, 2u);
    EXPECT_EQ(p.footprint_bytes, 2 * pageBytes);
    EXPECT_EQ(p.min_vaddr, 0x1000u);
    EXPECT_EQ(p.max_vaddr, 0x5000u);
    EXPECT_EQ(p.pages.accesses, 3u);
    EXPECT_EQ(p.pages.writes, 1u);
}

TEST(WorkloadProfile, EmptyProfile)
{
    WorkloadProfiler profiler;
    const WorkloadProfile p = profiler.profile();
    EXPECT_EQ(p.footprint_pages, 0u);
    EXPECT_EQ(p.min_vaddr, 0u);
    EXPECT_EQ(p.max_vaddr, 0u);
    EXPECT_TRUE(p.contiguity.empty());
    // Algorithm 1 on an empty histogram picks the smallest candidate.
    EXPECT_EQ(p.anchor_distance.distance, 2u);
}

TEST(WorkloadProfile, ContiguityFindsMaximalVpnRuns)
{
    // Touched VPNs form runs of 3, 1 and 5 pages (with gaps); access
    // order must not matter, so interleave the runs.
    WorkloadProfiler profiler;
    const Vpn base{0x7f0000000ULL};
    for (const Vpn v : {base + 0, base + 10, base + 20, base + 1,
                        base + 21, base + 2, base + 22, base + 23,
                        base + 24, base + 0, base + 21})
        profiler.record({vaOf(v), false});
    const WorkloadProfile p = profiler.profile();
    EXPECT_EQ(p.contiguity.count(3), 1u);
    EXPECT_EQ(p.contiguity.count(1), 1u);
    EXPECT_EQ(p.contiguity.count(5), 1u);
    EXPECT_EQ(p.contiguity.samples(), 3u);
    EXPECT_EQ(p.contiguity.weightedSum(), 9u);
}

TEST(WorkloadProfile, ContiguityMatchesMemoryMapHistogram)
{
    // The profiler's histogram must be interchangeable with the one the
    // OS derives from its own mapping: map each touched run as one
    // chunk (physically separated so nothing merges) and compare.
    const std::vector<std::pair<Vpn, std::uint64_t>> runs = {
        {Vpn{0x7f0000000ULL}, 4},
        {Vpn{0x7f0000100ULL}, 17},
        {Vpn{0x7f0000200ULL}, 1},
        {Vpn{0x7f0000300ULL}, 17},
        {Vpn{0x7f0000400ULL}, 600},
    };
    const WorkloadProfile p = profileRuns(runs);

    MemoryMap map;
    Ppn ppn{0x1000};
    for (const auto &[start, len] : runs) {
        map.add(start, ppn, PageCount{len});
        ppn += len + 7; // gap: chunks must not merge physically
    }
    map.finalize();
    const Histogram os_hist = map.contiguityHistogram();

    ASSERT_EQ(p.contiguity.entries().size(), os_hist.entries().size());
    for (const auto &[size, count] : os_hist.entries())
        EXPECT_EQ(p.contiguity.count(size), count) << "run size " << size;

    // And identical inputs give Algorithm 1 identical picks.
    const DistanceSelection os_pick = selectAnchorDistance(os_hist);
    EXPECT_EQ(p.anchor_distance.distance, os_pick.distance);
    EXPECT_EQ(p.anchor_distance.cost, os_pick.cost);
}

TEST(WorkloadProfile, StrideHistogram)
{
    WorkloadProfiler profiler;
    const Vpn base{0x7f0000000ULL};
    profiler.record({vaOf(base), false});
    profiler.record({vaOf(base) + 8, false});   // same page: delta 0
    profiler.record({vaOf(base + 1), false});   // delta 1
    profiler.record({vaOf(base + 9), false});   // delta 8
    profiler.record({vaOf(base), false});       // delta 9 (backwards)
    const WorkloadProfile p = profiler.profile();
    EXPECT_EQ(p.stride.samples(), 4u);
    EXPECT_EQ(p.stride.bucket(0), 2u); // deltas 0 and 1
    EXPECT_EQ(p.stride.bucket(3), 2u); // deltas 8 and 9 land in [8,16)
}

TEST(WorkloadProfile, ConsumeDrainsASource)
{
    class CountedSource : public TraceSource
    {
      public:
        explicit CountedSource(std::uint64_t n) : n_(n) {}
        bool next(MemAccess &out) override
        {
            if (i_ >= n_)
                return false;
            out = {vaOf(Vpn{0x7f0000000ULL} + i_), false};
            ++i_;
            return true;
        }
        void reset() override { i_ = 0; }

      private:
        std::uint64_t n_;
        std::uint64_t i_ = 0;
    };
    CountedSource source(2'500);
    WorkloadProfiler profiler;
    profiler.consume(source);
    const WorkloadProfile p = profiler.profile();
    EXPECT_EQ(p.pages.accesses, 2'500u);
    EXPECT_EQ(p.footprint_pages, 2'500u);
    EXPECT_EQ(p.contiguity.count(2'500), 1u);
}

TEST(WorkloadProfile, JsonEmitsAllSections)
{
    const WorkloadProfile p =
        profileRuns({{Vpn{0x7f0000000ULL}, 8}, {Vpn{0x7f0000100ULL}, 3}});
    std::ostringstream os;
    writeWorkloadProfileJson(os, p);
    const std::string json = os.str();
    for (const char *needle :
         {"\"accesses\": 11", "\"footprint_pages\": 11",
          "\"reuse_distance_log2\"", "\"stride_log2\"", "\"contiguity\"",
          "\"chunk_pages\": 8", "\"anchor_distance\"", "\"candidates\""})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << json;
}

} // namespace
} // namespace atlb
