/**
 * @file
 * Tests for the text trace importers: per-grammar parsing,
 * auto-detection priority, rebasing, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "ingest/text_importer.hh"

namespace atlb
{
namespace
{

class TextImporterTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        path_ = testing::TempDir() + "atlb_txt_" + info->name() + "_" +
                std::to_string(::getpid()) + ".txt";
        detail::setThrowOnError(true);
    }
    void TearDown() override
    {
        detail::setThrowOnError(false);
        std::remove(path_.c_str());
    }

    void writeFile(const std::string &content)
    {
        std::ofstream out(path_);
        out << content;
    }

    std::vector<MemAccess> import(const ImportOptions &options,
                                  ImportResult *result = nullptr)
    {
        std::vector<MemAccess> out;
        const ImportResult r = importTextTrace(
            path_, options, [&](const MemAccess &a) { out.push_back(a); });
        if (result != nullptr)
            *result = r;
        return out;
    }

    std::string path_;
};

TEST_F(TextImporterTest, PlainFormat)
{
    writeFile("# comment line\n"
              "R 0x1000\n"
              "W 4096\n"     // decimal: same page as 0x1000
              "r 0x2abc\n"   // lower case accepted
              "W 7ffd8\n"    // bare hex (has hex letters)
              "\n");
    ImportResult res;
    const std::vector<MemAccess> got =
        import({TextTraceFormat::Plain, false, 0}, &res);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x1000});
    EXPECT_FALSE(got[0].write);
    EXPECT_EQ(got[1].vaddr, VirtAddr{4096});
    EXPECT_TRUE(got[1].write);
    EXPECT_EQ(got[2].vaddr, VirtAddr{0x2abc});
    EXPECT_FALSE(got[2].write);
    EXPECT_EQ(got[3].vaddr, VirtAddr{0x7ffd8});
    EXPECT_TRUE(got[3].write);
    EXPECT_EQ(res.format, TextTraceFormat::Plain);
    EXPECT_EQ(res.accesses, 4u);
    EXPECT_EQ(res.skipped, 2u); // the comment and the blank line
}

TEST_F(TextImporterTest, LackeyFormat)
{
    writeFile("==1234== Memcheck-style banner, skipped\n"
              "I  0x400500,4\n"
              " L 0x04025310,8\n"
              " S 0x04025318,8\n"
              "M 0x0402531c,4\n");
    ImportResult res;
    const std::vector<MemAccess> got =
        import({TextTraceFormat::Lackey, false, 0}, &res);
    // I is skipped; M expands to a read then a write at the same vaddr.
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x04025310});
    EXPECT_FALSE(got[0].write);
    EXPECT_EQ(got[1].vaddr, VirtAddr{0x04025318});
    EXPECT_TRUE(got[1].write);
    EXPECT_EQ(got[2].vaddr, VirtAddr{0x0402531c});
    EXPECT_FALSE(got[2].write);
    EXPECT_EQ(got[3].vaddr, VirtAddr{0x0402531c});
    EXPECT_TRUE(got[3].write);
    EXPECT_EQ(res.accesses, 4u);
}

TEST_F(TextImporterTest, LackeyBareAddressesAreHex)
{
    // Real lackey output omits the 0x prefix: an address made only of
    // decimal digits (04025310) is still hex — a per-token radix guess
    // would read it as decimal and corrupt every intra-stream
    // distance. Sizes after the comma are decimal, as valgrind emits.
    writeFile(" L 04025310,8\n"
              " S 10000,16\n");
    const std::vector<MemAccess> got =
        import({TextTraceFormat::Lackey, false, 0});
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x04025310});
    EXPECT_FALSE(got[0].write);
    EXPECT_EQ(got[1].vaddr, VirtAddr{0x10000});
    EXPECT_TRUE(got[1].write);
}

TEST_F(TextImporterTest, ChampSimFormat)
{
    writeFile("1 R 0x7f0000001000\n"
              "2 W 0x7f0000002000\n"
              "401020 R 0x7f0000001008\n"  // first token may be an ip
              "4010a4 W 7f0000003000\n");  // bare hex, no 0x
    const std::vector<MemAccess> got =
        import({TextTraceFormat::ChampSim, false, 0});
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x7f0000001000});
    EXPECT_TRUE(got[1].write);
    EXPECT_EQ(got[2].vaddr, VirtAddr{0x7f0000001008});
    EXPECT_EQ(got[3].vaddr, VirtAddr{0x7f0000003000});
}

TEST_F(TextImporterTest, AutoDetection)
{
    writeFile(" L 0x1000,8\n S 0x2000,4\n");
    EXPECT_EQ(detectTextTraceFormat(path_), TextTraceFormat::Lackey);

    writeFile("R 0x1000\nW 0x2000\n");
    EXPECT_EQ(detectTextTraceFormat(path_), TextTraceFormat::Plain);

    writeFile("1 R 0x1000\n2 W 0x2000\n");
    EXPECT_EQ(detectTextTraceFormat(path_), TextTraceFormat::ChampSim);

    writeFile("neither fish nor fowl\n");
    EXPECT_THROW(detectTextTraceFormat(path_), std::runtime_error);
}

TEST_F(TextImporterTest, AutoImportUsesDetectedFormat)
{
    writeFile("I  0x400500,4\n L 0x9000,8\n");
    ImportResult res;
    const std::vector<MemAccess> got =
        import({TextTraceFormat::Auto, false, 0}, &res);
    EXPECT_EQ(res.format, TextTraceFormat::Lackey);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x9000});
}

TEST_F(TextImporterTest, RebaseShiftsToTargetPage)
{
    writeFile("R 0x555555550123\n"
              "W 0x555555551000\n"
              "R 0x555555554018\n");
    ImportOptions opts;
    opts.format = TextTraceFormat::Plain;
    opts.rebase = true;
    opts.rebase_to = 0x7f0000000000ULL;
    ImportResult res;
    const std::vector<MemAccess> got = import(opts, &res);
    ASSERT_EQ(got.size(), 3u);
    // The lowest touched page lands exactly on rebase_to; page offsets
    // and inter-access distances are preserved.
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x7f0000000123});
    EXPECT_EQ(got[1].vaddr, VirtAddr{0x7f0000001000});
    EXPECT_EQ(got[2].vaddr, VirtAddr{0x7f0000004018});
    EXPECT_EQ(res.min_vaddr, 0x7f0000000123u);
    EXPECT_EQ(res.max_vaddr, 0x7f0000004018u);
    EXPECT_EQ(res.rebase_shift,
              static_cast<std::int64_t>(0x7f0000000000ULL) -
                  static_cast<std::int64_t>(0x555555550000ULL));
}

TEST_F(TextImporterTest, RebaseDownwardWorks)
{
    // Rebasing can also shift addresses down (target below the capture).
    writeFile("R 0x7fffffff0000\n");
    ImportOptions opts;
    opts.format = TextTraceFormat::Plain;
    opts.rebase = true;
    opts.rebase_to = 0x1000;
    const std::vector<MemAccess> got = import(opts);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vaddr, VirtAddr{0x1000});
}

TEST_F(TextImporterTest, MalformedLineIsFatal)
{
    writeFile("R 0x1000\nR zzzz\n");
    EXPECT_THROW(import({TextTraceFormat::Plain, false, 0}),
                 std::runtime_error);

    writeFile("R 0x1000 extra\n");
    EXPECT_THROW(import({TextTraceFormat::Plain, false, 0}),
                 std::runtime_error);

    writeFile(" L 0x1000\n"); // lackey needs the ,size suffix
    EXPECT_THROW(import({TextTraceFormat::Lackey, false, 0}),
                 std::runtime_error);

    writeFile(" L 0x1000,f\n"); // lackey sizes are decimal
    EXPECT_THROW(import({TextTraceFormat::Lackey, false, 0}),
                 std::runtime_error);
}

TEST_F(TextImporterTest, MissingFileIsFatal)
{
    EXPECT_THROW(importTextTrace("/nonexistent/trace.txt", {},
                                 [](const MemAccess &) {}),
                 std::runtime_error);
}

TEST_F(TextImporterTest, FormatNamesRoundTrip)
{
    for (const TextTraceFormat f :
         {TextTraceFormat::Auto, TextTraceFormat::Plain,
          TextTraceFormat::Lackey, TextTraceFormat::ChampSim})
        EXPECT_EQ(parseTextTraceFormat(textTraceFormatName(f)), f);
    EXPECT_THROW(parseTextTraceFormat("tabular"), std::runtime_error);
}

} // namespace
} // namespace atlb
