/**
 * @file
 * Using the library with your own workload and hardware configuration.
 *
 * Demonstrates the pieces a downstream user composes:
 *   1. a WorkloadSpec describing an access-pattern mixture,
 *   2. a ScenarioParams describing the memory-allocation state,
 *   3. an MmuConfig describing the TLB hardware,
 *   4. page-table construction + an MMU + the simulation driver.
 *
 * The example models a 2GB in-memory key-value store: a hot index
 * (pointer chasing), a Zipf-popular value region, and background scans,
 * on a moderately fragmented machine, and asks: how much translation
 * time would anchor coalescing save over THP, and what anchor distance
 * should the OS pick?
 */

#include <iostream>

#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"
#include "trace/workload.hh"

int
main()
{
    using namespace atlb;

    // 1. The workload: a synthetic key-value store.
    WorkloadSpec kv;
    kv.name = "kvstore";
    kv.footprint_bytes = 2ULL << 30;
    kv.mem_per_instr = 0.4;
    kv.page_reuse = 0.85;
    kv.phases = {
        // hash index: dependent chain walks in a ~80MB region
        {.kind = PatternKind::PointerChase, .weight = 0.5, .burst = 256,
         .jump_prob = 0.05, .hot_fraction = 0.04},
        // value lookups: Zipf-popular keys
        {.kind = PatternKind::Zipf, .weight = 0.35, .burst = 128,
         .zipf_theta = 0.85},
        // compaction scans
        {.kind = PatternKind::Sequential, .weight = 0.15, .burst = 4096,
         .stride_bytes = 64},
    };

    // 2. The machine: demand paging on a fragmented box.
    ScenarioParams machine;
    machine.footprint_pages = kv.footprintPages();
    machine.seed = 2026;
    machine.demand_run_pages = 192; // free runs below THP size
    machine.map_tail_run_pages = 16;
    machine.map_tail_fraction = 0.35;
    const MemoryMap map = buildScenario(ScenarioKind::Demand, machine);

    // 3. What distance would the OS pick for this mapping?
    const DistanceSelection sel =
        selectAnchorDistance(map.contiguityHistogram());
    std::cout << "mapping: " << map.chunks().size()
              << " chunks over " << (map.mappedPages() >> 18)
              << "GB; Algorithm 1 picks anchor distance "
              << sel.distance << " pages\n\n";

    // 4. Simulate THP hardware vs anchor hardware on identical traces.
    MmuConfig hw; // paper Table 3 defaults
    const std::uint64_t accesses = 1'000'000;

    PageTable thp_table = buildPageTable(map, true);
    BaselineMmu thp(hw, thp_table, "thp");
    PatternTrace trace_a(kv, vaOf(machine.va_base), accesses, 1);
    const SimResult thp_result =
        runSimulation(thp, trace_a, kv.mem_per_instr);

    const AnchorDist distance = AnchorDist::fromPages(sel.distance);
    PageTable anchor_table = buildAnchorPageTable(map, distance);
    AnchorMmu anchor(hw, anchor_table, distance);
    PatternTrace trace_b(kv, vaOf(machine.va_base), accesses, 1);
    const SimResult anchor_result =
        runSimulation(anchor, trace_b, kv.mem_per_instr);

    Table table("kvstore on a fragmented demand-paged host",
                {"metric", "THP", "anchor (hybrid)"});
    table.beginRow();
    table.cell(std::string("TLB misses (page walks)"));
    table.cell(thp_result.misses());
    table.cell(anchor_result.misses());
    table.beginRow();
    table.cell(std::string("translation CPI"));
    table.cell(thp_result.translationCpi(), 4);
    table.cell(anchor_result.translationCpi(), 4);
    table.beginRow();
    table.cell(std::string("L2 coalesced-hit share"));
    table.cellPercent(thp_result.coalescedHitFraction());
    table.cellPercent(anchor_result.coalescedHitFraction());
    table.printAscii(std::cout);

    const double saved =
        thp_result.misses() == 0
            ? 0.0
            : 1.0 - static_cast<double>(anchor_result.misses()) /
                        static_cast<double>(thp_result.misses());
    std::cout << "\nanchor coalescing removes "
              << static_cast<int>(saved * 100)
              << "% of the TLB misses THP leaves behind on this host.\n";
    return 0;
}
