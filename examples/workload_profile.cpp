/**
 * @file
 * Profiling a workload model and predicting scheme behaviour.
 *
 * Shows how the profiler's page-level metrics (footprint, reuse
 * distances, hot sets) explain the TLB results: a scheme helps exactly
 * when its per-entry coverage times the TLB capacity exceeds the hot
 * set. The example profiles two contrasting workloads and checks the
 * predictions against an actual simulation.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "stats/table.hh"
#include "trace/profiler.hh"
#include "trace/workload.hh"

namespace
{

using namespace atlb;

TraceProfile
profileOf(const std::string &name, std::uint64_t accesses)
{
    WorkloadSpec spec = findWorkload(name);
    spec.footprint_bytes /= 4; // keep the example snappy
    PatternTrace trace(spec, vaOf(Vpn{0x7f0000000ULL}), accesses, 7);
    TraceProfiler prof;
    prof.consume(trace);
    return prof.profile();
}

} // namespace

int
main()
{
    using namespace atlb;
    const std::uint64_t accesses = 400'000;

    Table table("page-level character of two contrasting workloads",
                {"metric", "canneal", "gups"});
    const TraceProfile canneal = profileOf("canneal", accesses);
    const TraceProfile gups = profileOf("gups", accesses);

    const auto row = [&table](const std::string &metric,
                              const std::string &a,
                              const std::string &b) {
        table.beginRow();
        table.cell(metric);
        table.cell(a);
        table.cell(b);
    };
    row("unique pages touched", std::to_string(canneal.unique_pages),
        std::to_string(gups.unique_pages));
    row("same-page fraction",
        std::to_string(canneal.same_page_fraction),
        std::to_string(gups.same_page_fraction));
    row("hot set for 90% of reuses (pages)",
        std::to_string(canneal.hotSetPages(0.9)),
        std::to_string(gups.hotSetPages(0.9)));
    row("reuses within base L2 reach (1K pages)",
        std::to_string(canneal.hitFractionAtReach(1024)),
        std::to_string(gups.hitFractionAtReach(1024)));
    row("reuses within anchor reach (32K pages)",
        std::to_string(canneal.hitFractionAtReach(32768)),
        std::to_string(gups.hitFractionAtReach(32768)));
    table.printAscii(std::cout);

    std::cout
        << "\nPrediction: canneal's reuse mass sits between the "
           "baseline's reach and the\nanchor scheme's reach, so hybrid "
           "coalescing should help canneal a lot and\ngups barely. "
           "Checking with the simulator (medium contiguity):\n\n";

    SimOptions opts = SimOptions::fromEnv();
    opts.accesses = accesses;
    opts.footprint_scale = 0.25;
    ExperimentContext ctx(opts);
    for (const char *wl : {"canneal", "gups"}) {
        const std::uint64_t base =
            ctx.run(wl, ScenarioKind::MedContig, Scheme::Base).misses();
        const std::uint64_t anchor =
            ctx.run(wl, ScenarioKind::MedContig, Scheme::Anchor)
                .misses();
        std::cout << "  " << wl << ": relative misses with anchors = "
                  << static_cast<int>(
                         relativeMisses(anchor, base) * 100)
                  << "%\n";
    }
    return 0;
}
