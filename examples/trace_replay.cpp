/**
 * @file
 * Capturing and replaying trace files.
 *
 * Users with real traces (e.g. Pin captures converted to the format in
 * trace_io.hh) can drive the simulator from disk. This example
 * round-trips a generated trace through a file and shows that replay
 * reproduces the simulation exactly.
 *
 * Usage: trace_replay [path]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "mmu/anchor_mmu.hh"
#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "os/table_builder.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace atlb;

    const std::string path =
        argc > 1 ? argv[1] : "/tmp/anchortlb_example.trace";
    const std::uint64_t accesses = 500'000;

    // Capture: write a canneal-like trace to disk.
    WorkloadSpec spec = findWorkload("canneal");
    spec.footprint_bytes /= 8; // keep the example snappy
    ScenarioParams params;
    params.footprint_pages = spec.footprintPages();
    params.seed = 5;
    {
        PatternTrace source(spec, vaOf(params.va_base), accesses, 11);
        TraceWriter writer(path);
        MemAccess a;
        while (source.next(a))
            writer.append(a);
        std::cout << "captured " << writer.written() << " accesses to "
                  << path << "\n";
    }

    // Build the memory system once.
    const MemoryMap map =
        buildScenario(ScenarioKind::MedContig, params);
    const AnchorDist distance = AnchorDist::fromPages(
        selectAnchorDistance(map.contiguityHistogram()).distance);
    MmuConfig hw;

    // Run live generator and file replay; results must be identical.
    PageTable table_a = buildAnchorPageTable(map, distance);
    AnchorMmu mmu_a(hw, table_a, distance);
    PatternTrace live(spec, vaOf(params.va_base), accesses, 11);
    const SimResult from_live =
        runSimulation(mmu_a, live, spec.mem_per_instr);

    PageTable table_b = buildAnchorPageTable(map, distance);
    AnchorMmu mmu_b(hw, table_b, distance);
    TraceFileSource replay(path);
    const SimResult from_file =
        runSimulation(mmu_b, replay, spec.mem_per_instr);

    std::cout << "live generator : " << from_live.misses()
              << " TLB misses, CPI " << from_live.translationCpi()
              << "\n";
    std::cout << "file replay    : " << from_file.misses()
              << " TLB misses, CPI " << from_file.translationCpi()
              << "\n";
    if (from_live.misses() != from_file.misses()) {
        std::cerr << "ERROR: replay diverged from live simulation\n";
        return 1;
    }
    std::cout << "replay matches the live run exactly.\n";
    std::remove(path.c_str());
    return 0;
}
