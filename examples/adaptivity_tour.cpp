/**
 * @file
 * Adaptivity tour: the paper's core claim in one run.
 *
 * For a single workload, sweep all six mapping scenarios and show that
 * each prior scheme only wins where its favourite chunk size exists,
 * while hybrid coalescing re-tunes its anchor distance per mapping and
 * stays at or near the front everywhere.
 *
 * Usage: adaptivity_tour [workload]
 */

#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace atlb;

    const std::string workload = argc > 1 ? argv[1] : "mcf";
    SimOptions options = SimOptions::fromEnv();
    if (!std::getenv("ANCHORTLB_ACCESSES"))
        options.accesses = 400'000;
    ExperimentContext ctx(options);

    std::cout << "How each scheme copes as the OS hands '" << workload
              << "' different memory mappings\n(relative TLB misses, "
                 "baseline = 100%):\n\n";

    Table table("adaptivity of translation schemes",
                {"mapping", "THP", "Cluster-2MB", "RMM", "Dynamic",
                 "anchor distance"});
    for (const ScenarioKind scenario : allScenarios) {
        const std::uint64_t base =
            ctx.run(workload, scenario, Scheme::Base).misses();
        table.beginRow();
        table.cell(std::string(scenarioName(scenario)));
        for (const Scheme s : {Scheme::Thp, Scheme::Cluster2MB,
                               Scheme::Rmm, Scheme::Anchor}) {
            table.cellPercent(
                relativeMisses(ctx.run(workload, scenario, s).misses(),
                               base));
        }
        table.cell(ctx.dynamicDistance(workload, scenario));
    }
    table.printAscii(std::cout);

    std::cout << "\nReading guide: THP needs 2MB chunks (demand/eager/"
                 "high/max); RMM needs huge\nruns (high/max); clustering "
                 "caps at 8 pages; the anchor distance column shows\n"
                 "hybrid coalescing re-tuning itself to each mapping's "
                 "contiguity.\n";
    return 0;
}
