/**
 * @file
 * Quickstart: simulate one workload under one mapping scenario with
 * every translation scheme and print the paper-style comparison.
 *
 * Usage: quickstart [workload] [scenario] [accesses]
 *   workload  catalog name (default "canneal"); see DESIGN.md
 *   scenario  demand | eager | low | medium | high | max (default medium)
 *   accesses  trace length (default 500000)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace atlb;

    const std::string workload = argc > 1 ? argv[1] : "canneal";
    const std::string scenario_name = argc > 2 ? argv[2] : "medium";
    const ScenarioKind scenario = scenarioFromName(scenario_name);

    SimOptions options = SimOptions::fromEnv();
    if (argc > 3)
        options.accesses = std::strtoull(argv[3], nullptr, 10);
    else if (!std::getenv("ANCHORTLB_ACCESSES"))
        options.accesses = 500'000;

    ExperimentContext ctx(options);

    std::cout << "workload: " << workload << "  scenario: " << scenario_name
              << "  accesses: " << options.accesses << "\n";
    std::cout << "dynamic anchor distance: "
              << ctx.dynamicDistance(workload, scenario) << " pages\n\n";

    const SimResult base = ctx.run(workload, scenario, Scheme::Base);

    Table table("TLB performance, " + workload + " / " + scenario_name,
                {"scheme", "walks", "relative misses", "L2 reg hit%",
                 "coalesced hit%", "translation CPI", "anchor dist"});
    for (const Scheme scheme : allSchemes) {
        const SimResult r = ctx.run(workload, scenario, scheme);
        table.beginRow();
        table.cell(r.scheme);
        table.cell(r.misses());
        table.cellPercent(relativeMisses(r.misses(), base.misses()));
        table.cellPercent(r.regularHitFraction());
        table.cellPercent(r.coalescedHitFraction());
        table.cell(r.translationCpi(), 4);
        table.cell(r.anchor_distance ? std::to_string(r.anchor_distance)
                                     : std::string("-"));
    }
    table.printAscii(std::cout);
    return 0;
}
