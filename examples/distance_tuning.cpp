/**
 * @file
 * Inside the dynamic anchor-distance selection (paper Section 4).
 *
 * Shows the OS-visible inputs and outputs of Algorithm 1 for one
 * workload/mapping pair: the contiguity histogram, the per-candidate
 * capacity costs, the chosen distance, and the epoch controller's
 * stability behaviour as the mapping evolves.
 */

#include <iostream>

#include "os/distance_selector.hh"
#include "os/scenario.hh"
#include "stats/table.hh"
#include "trace/workload.hh"

int
main()
{
    using namespace atlb;

    const WorkloadSpec &spec = findWorkload("mcf");
    ScenarioParams params;
    params.footprint_pages = spec.footprintPages() / 4;
    params.seed = 9;
    const MemoryMap map =
        buildScenario(ScenarioKind::MedContig, params);
    const Histogram hist = map.contiguityHistogram();

    std::cout << "contiguity histogram for mcf / medium contiguity ("
              << hist.samples() << " chunks, " << hist.weightedSum()
              << " pages):\n";
    Table cdf("pages in chunks of <= N pages",
              {"N", "chunks", "cumulative pages%"});
    std::uint64_t acc = 0;
    for (unsigned shift = 0; shift <= 10; ++shift) {
        const std::uint64_t limit = 1ULL << shift;
        std::uint64_t chunks = 0;
        acc = 0;
        for (const auto &[size, count] : hist.entries()) {
            if (size <= limit) {
                chunks += count;
                acc += size * count;
            }
        }
        cdf.beginRow();
        cdf.cell(limit);
        cdf.cell(chunks);
        cdf.cellPercent(static_cast<double>(acc) /
                        static_cast<double>(hist.weightedSum()));
    }
    cdf.printAscii(std::cout);

    const DistanceSelection sel = selectAnchorDistance(hist);
    Table costs("Algorithm 1 capacity cost per candidate distance",
                {"distance", "estimated TLB entries", "chosen"});
    for (const auto &[d, cost] : sel.candidates) {
        costs.beginRow();
        costs.cell(d);
        costs.cell(cost, 0);
        costs.cell(d == sel.distance ? std::string("<==")
                                     : std::string(""));
    }
    costs.printAscii(std::cout);

    // Epoch behaviour: stable mapping -> one change; drastic
    // re-mapping -> a second change (paper Section 4.1).
    DistanceController controller;
    for (int epoch = 0; epoch < 5; ++epoch)
        controller.epoch(hist);
    std::cout << "\nafter 5 epochs on the stable mapping: distance "
              << controller.distance() << ", " << controller.changes()
              << " change(s)\n";

    ScenarioParams compacted = params;
    compacted.seed = 10;
    const MemoryMap remapped =
        buildScenario(ScenarioKind::MaxContig, compacted);
    controller.epoch(remapped.contiguityHistogram());
    std::cout << "after the OS compacts memory (max contiguity): "
              << "distance " << controller.distance() << ", "
              << controller.changes() << " change(s) total\n";
    return 0;
}
