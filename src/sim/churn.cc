#include "churn.hh"

#include <memory>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "trace/workload.hh"

namespace atlb
{

ChurnResult
runMappingChurn(Scheme scheme, const std::vector<ChurnEpoch> &epochs,
                const ChurnOptions &options)
{
    ATLB_ASSERT(!epochs.empty(), "no churn epochs");

    WorkloadSpec spec = findWorkload(options.workload);
    spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprint_bytes) *
        options.footprint_scale);
    if (spec.footprint_bytes < pageBytes)
        spec.footprint_bytes = pageBytes;

    ScenarioParams params;
    params.footprint_pages = spec.footprintPages();
    params.demand_run_pages = spec.demand_run_pages;
    params.eager_run_pages = spec.eager_run_pages;
    params.demand_churn = spec.demand_churn;
    params.map_tail_run_pages = spec.map_tail_run_pages;
    params.map_tail_fraction = spec.map_tail_fraction;

    const bool is_anchor =
        scheme == Scheme::Anchor || scheme == Scheme::AnchorIdeal;
    const bool use_thp =
        scheme == Scheme::Thp || scheme == Scheme::Cluster2MB ||
        scheme == Scheme::Rmm || is_anchor;

    DistanceController controller(8, options.distance_threshold);
    ChurnResult result;

    // The workload's access stream is continuous across epochs: the
    // process doesn't notice its pages moving (that's the point of
    // virtual memory).
    PatternTrace trace(spec, vaOf(params.va_base), ~0ULL,
                       options.seed * 31);

    MemoryMap map;
    PageTable table;
    std::unique_ptr<Mmu> mmu;

    for (const ChurnEpoch &epoch : epochs) {
        params.seed = epoch.seed;
        MemoryMap next = buildScenario(epoch.scenario, params);

        ChurnResult::EpochStats es;
        es.scenario = scenarioName(epoch.scenario);

        // OS work at the boundary: rebuild the table, re-run the
        // distance controller, sweep if it changed, shoot down.
        if (is_anchor) {
            es.distance_changed =
                controller.epoch(next.contiguityHistogram());
            map = std::move(next);
            table = buildPageTable(map, true);
            es.sweep_touched = table.sweepAnchors(
                map, AnchorDist::fromPages(controller.distance()));
            es.anchor_distance = controller.distance();
            if (es.distance_changed)
                ++result.distance_changes;
        } else {
            map = std::move(next);
            table = buildPageTable(map, use_thp);
        }

        if (!mmu) {
            const MmuConfig &cfg = options.mmu;
            switch (scheme) {
              case Scheme::Base:
                mmu = std::make_unique<BaselineMmu>(cfg, table, "base");
                break;
              case Scheme::Thp:
                mmu = std::make_unique<BaselineMmu>(cfg, table, "thp");
                break;
              case Scheme::Cluster:
                mmu = std::make_unique<ClusterMmu>(cfg, table, false);
                break;
              case Scheme::Cluster2MB:
                mmu = std::make_unique<ClusterMmu>(cfg, table, true);
                break;
              case Scheme::Rmm:
                mmu = std::make_unique<RmmMmu>(cfg, table, map);
                break;
              case Scheme::Anchor:
              case Scheme::AnchorIdeal:
                mmu = std::make_unique<AnchorMmu>(
                    cfg, table,
                    AnchorDist::fromPages(controller.distance()));
                break;
            }
        } else {
            ProcessContext ctx;
            ctx.table = &table;
            ctx.map = &map;
            ctx.anchor_distance =
                is_anchor ? AnchorDist::fromPages(controller.distance())
                          : AnchorDist{};
            mmu->switchProcess(ctx);
        }

        const std::uint64_t misses_before = mmu->stats().page_walks;
        MemAccess access;
        for (std::uint64_t i = 0; i < epoch.accesses; ++i) {
            trace.next(access);
            mmu->translate(access.vaddr);
        }
        es.accesses = epoch.accesses;
        es.misses = mmu->stats().page_walks - misses_before;
        result.epochs.push_back(es);
    }
    result.stats = mmu->stats();
    return result;
}

} // namespace atlb
