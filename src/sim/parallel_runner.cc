#include "parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"

namespace atlb
{

namespace
{

/** Build-once slot for one pair, freed when its last leaf finishes. */
struct PairSlot
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::Demand;
    std::once_flag once;
    std::unique_ptr<CellPairState> shared;
    std::atomic<std::size_t> pending{0};
};

constexpr std::size_t noIdealRank = ~static_cast<std::size_t>(0);

/** One simulation: a cell, or one AnchorIdeal distance candidate. */
struct Leaf
{
    std::size_t cell = 0; //!< index into the submitted job list
    std::size_t pair = 0; //!< index into the slot list
    Scheme scheme = Scheme::Base;
    std::optional<std::uint64_t> distance_override{};
    /** AnchorIdeal only: candidate index and its distance. */
    std::size_t ideal_rank = noIdealRank;
    std::uint64_t ideal_distance = 0;
};

SimResult
runLeaf(const Leaf &leaf, const CellPairState &pair,
        const SimOptions &options)
{
    if (leaf.ideal_rank != noIdealRank) {
        // One AnchorIdeal distance candidate; the reduction after the
        // pool drains picks the canonical first minimum across ranks.
        const PageTable table = buildAnchorPageTable(
            pair.map(), AnchorDist::fromPages(leaf.ideal_distance));
        return runSchemeCell(options, pair.spec(), pair.scenario(),
                             pair.map(), table, Scheme::AnchorIdeal,
                             leaf.ideal_distance);
    }
    CellJob job;
    job.workload = pair.workload();
    job.scenario = pair.scenario();
    job.scheme = leaf.scheme;
    job.distance_override = leaf.distance_override;
    return runCellJob(options, pair, job);
}

std::vector<SimResult>
runParallel(const SimOptions &options, const std::vector<CellJob> &jobs,
            unsigned threads)
{
    // --- plan: one slot per distinct pair, one leaf per simulation ---
    std::vector<std::unique_ptr<PairSlot>> slots;
    std::vector<Leaf> leaves;
    const std::vector<std::uint64_t> distances = candidateDistances();

    const auto slotFor = [&slots](const CellJob &job) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i]->workload == job.workload &&
                slots[i]->scenario == job.scenario)
                return i;
        }
        auto slot = std::make_unique<PairSlot>();
        slot->workload = job.workload;
        slot->scenario = job.scenario;
        slots.push_back(std::move(slot));
        return slots.size() - 1;
    };

    for (std::size_t cell = 0; cell < jobs.size(); ++cell) {
        const CellJob &job = jobs[cell];
        const std::size_t pair = slotFor(job);
        if (job.scheme == Scheme::AnchorIdeal) {
            for (std::size_t r = 0; r < distances.size(); ++r) {
                Leaf leaf;
                leaf.cell = cell;
                leaf.pair = pair;
                leaf.scheme = job.scheme;
                leaf.ideal_rank = r;
                leaf.ideal_distance = distances[r];
                leaves.push_back(leaf);
            }
        } else {
            Leaf leaf;
            leaf.cell = cell;
            leaf.pair = pair;
            leaf.scheme = job.scheme;
            leaf.distance_override = job.distance_override;
            leaves.push_back(leaf);
        }
    }

    // Group leaves by pair so each pair's state has a short lifetime:
    // workers drain the queue in order, so at most ~threads pairs are
    // ever live at once.
    std::stable_sort(leaves.begin(), leaves.end(),
                     [](const Leaf &a, const Leaf &b) {
                         return a.pair < b.pair;
                     });
    for (const Leaf &leaf : leaves)
        slots[leaf.pair]->pending.fetch_add(1,
                                            std::memory_order_relaxed);

    // --- execute -----------------------------------------------------
    std::vector<SimResult> out(jobs.size());
    std::vector<std::vector<SimResult>> ideal_runs(jobs.size());
    for (const Leaf &leaf : leaves) {
        if (leaf.ideal_rank != noIdealRank &&
            ideal_runs[leaf.cell].empty())
            ideal_runs[leaf.cell].resize(distances.size());
    }

    if (leaves.empty())
        return out;

    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(threads, leaves.size())));
    for (const Leaf &leaf : leaves) {
        pool.submit([&options, &slots, &out, &ideal_runs, leaf] {
            PairSlot &slot = *slots[leaf.pair];
            std::call_once(slot.once, [&slot, &options] {
                slot.shared = std::make_unique<CellPairState>(
                    options, slot.workload, slot.scenario);
            });
            SimResult res = runLeaf(leaf, *slot.shared, options);
            if (leaf.ideal_rank == noIdealRank)
                out[leaf.cell] = std::move(res);
            else
                ideal_runs[leaf.cell][leaf.ideal_rank] = std::move(res);
            // Last leaf out frees the pair's mapping and tables.
            if (slot.pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
                slot.shared.reset();
        });
    }
    pool.wait();

    // --- reduce AnchorIdeal cells in canonical candidate order so the
    // --- tie-break (first minimum wins) matches the serial sweep ------
    for (std::size_t cell = 0; cell < jobs.size(); ++cell) {
        if (ideal_runs[cell].empty())
            continue;
        std::size_t best = 0;
        for (std::size_t r = 1; r < ideal_runs[cell].size(); ++r) {
            if (ideal_runs[cell][r].misses() <
                ideal_runs[cell][best].misses())
                best = r;
        }
        out[cell] = std::move(ideal_runs[cell][best]);
    }
    return out;
}

/** Distinct (workload, scenario) pairs a job list touches. */
std::size_t
distinctPairs(const std::vector<CellJob> &jobs)
{
    std::vector<std::pair<std::string, ScenarioKind>> seen;
    for (const CellJob &job : jobs) {
        const auto key = std::make_pair(job.workload, job.scenario);
        if (std::find(seen.begin(), seen.end(), key) == seen.end())
            seen.push_back(key);
    }
    return seen.size();
}

std::vector<SimResult>
runSerial(ExperimentContext &ctx, const std::vector<CellJob> &jobs)
{
    // Fit the pair cache to this sweep's shape so workload-major and
    // scenario-major iteration both keep every revisited pair warm
    // (ANCHORTLB_CACHE_PAIRS still clamps when set).
    ctx.sizeCacheForPairs(distinctPairs(jobs));
    std::vector<SimResult> out;
    out.reserve(jobs.size());
    for (const CellJob &job : jobs) {
        out.push_back(ctx.run(job.workload, job.scenario, job.scheme,
                              job.distance_override));
    }
    return out;
}

} // namespace

SimResult
runCellJob(const SimOptions &options, const CellPairState &pair,
           const CellJob &job)
{
    switch (job.scheme) {
      case Scheme::Base:
      case Scheme::Cluster:
        return runSchemeCell(options, pair.spec(), pair.scenario(),
                             pair.map(), pair.plainTable(), job.scheme,
                             0);
      case Scheme::Thp:
      case Scheme::Cluster2MB:
      case Scheme::Rmm:
        return runSchemeCell(options, pair.spec(), pair.scenario(),
                             pair.map(), pair.thpTable(), job.scheme, 0);
      case Scheme::Anchor: {
        const std::uint64_t distance = job.distance_override
                                           ? *job.distance_override
                                           : pair.dynamicDistance();
        const PageTable table = buildAnchorPageTable(
            pair.map(), AnchorDist::fromPages(distance));
        return runSchemeCell(options, pair.spec(), pair.scenario(),
                             pair.map(), table, job.scheme, distance);
      }
      case Scheme::AnchorIdeal: {
        // Exhaustive distance sweep inside one job; the first minimum
        // in canonical candidate order wins, matching both the serial
        // sweep and the parallel engine's reduction.
        const std::vector<std::uint64_t> distances = candidateDistances();
        ATLB_ASSERT(!distances.empty(), "no candidate anchor distances");
        SimResult best;
        bool have_best = false;
        for (const std::uint64_t distance : distances) {
            const PageTable table = buildAnchorPageTable(
                pair.map(), AnchorDist::fromPages(distance));
            SimResult res = runSchemeCell(options, pair.spec(),
                                          pair.scenario(), pair.map(),
                                          table, job.scheme, distance);
            if (!have_best || res.misses() < best.misses()) {
                best = std::move(res);
                have_best = true;
            }
        }
        return best;
      }
    }
    ATLB_FATAL("unhandled scheme in cell job");
}

ParallelRunner::ParallelRunner(SimOptions options)
    : options_(options)
{
    if (options_.threads == 0)
        options_.threads = 1;
}

std::vector<SimResult>
ParallelRunner::run(const std::vector<CellJob> &jobs)
{
    if (options_.threads <= 1) {
        ExperimentContext ctx(options_);
        return runSerial(ctx, jobs);
    }
    return runParallel(options_, jobs, options_.threads);
}

std::vector<SimResult>
runCells(ExperimentContext &ctx, const std::vector<CellJob> &jobs)
{
    if (ctx.options().threads <= 1)
        return runSerial(ctx, jobs);
    return runParallel(ctx.options(), jobs, ctx.options().threads);
}

} // namespace atlb
