#include "sharded_runner.hh"

#include <algorithm>
#include <memory>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "trace/workload.hh"

namespace atlb
{

std::vector<ShardSlice>
planShards(std::uint64_t accesses, unsigned shards, std::uint64_t warmup)
{
    ATLB_ASSERT(shards >= 1, "shard plan needs at least one shard");
    // More shards than accesses would leave trailing empty slices;
    // clamp so every shard has work (K is small, accesses is not).
    const std::uint64_t k = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(shards, std::max<std::uint64_t>(
                                               1, accesses)));
    const std::uint64_t base = accesses / k;
    const std::uint64_t rem = accesses % k;

    std::vector<ShardSlice> plan(static_cast<std::size_t>(k));
    std::uint64_t cursor = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
        ShardSlice &s = plan[static_cast<std::size_t>(i)];
        s.begin = cursor;
        s.end = cursor + base + (i < rem ? 1 : 0);
        // Warmup replays the tail of the previous shard's slice; shard
        // 0 starts exactly like the serial run and needs none.
        s.warmup = std::min<std::uint64_t>(warmup, s.begin);
        cursor = s.end;
    }
    ATLB_ASSERT(cursor == accesses, "shard plan must cover the stream");
    return plan;
}

namespace
{

/**
 * Simulate one slice: seek a fresh trace to (begin - warmup), replay
 * the warmup through the MMU, zero the counters, then measure the
 * slice. The trace is constructed with num_accesses = end so
 * exhaustion lands exactly on the slice boundary and runSimulation's
 * loop needs no extra bookkeeping.
 */
SimResult
runShard(const SimOptions &options, const WorkloadSpec &spec,
         ScenarioKind scenario, const MemoryMap &map,
         const PageTable &table, Scheme scheme,
         std::uint64_t anchor_distance, const ShardSlice &slice)
{
    const std::unique_ptr<TraceSource> trace =
        makeCellTrace(options, spec, slice.end);
    trace->skip(slice.begin - slice.warmup);

    const std::unique_ptr<Mmu> mmu =
        buildSchemeMmu(options.mmu, table, map, scheme, anchor_distance);

    if (slice.warmup > 0) {
        constexpr std::size_t batch = 1024;
        MemAccess buffer[batch];
        std::uint64_t left = slice.warmup;
        BatchStats warm; // discarded with the warmup stats
        while (left > 0) {
            const std::size_t n = trace->fill(
                buffer, static_cast<std::size_t>(
                            std::min<std::uint64_t>(batch, left)));
            ATLB_ASSERT(n > 0, "trace ended inside shard warmup");
            if (options.translate_mode == TranslateMode::Batch) {
                mmu->translateBatch(buffer, n, warm);
            } else {
                for (std::size_t i = 0; i < n; ++i)
                    mmu->translate(buffer[i].vaddr);
            }
            left -= n;
        }
        mmu->resetStats();
    }

    SimResult res = runSimulation(*mmu, *trace, spec.mem_per_instr,
                                  options.translate_mode);
    ANCHOR_DCHECK(res.stats.accesses == slice.length(),
                  "shard measured a wrong-sized slice");
    res.workload = spec.name;
    res.scenario = scenarioName(scenario);
    res.scheme = schemeName(scheme);
    if (scheme == Scheme::Anchor || scheme == Scheme::AnchorIdeal)
        res.anchor_distance = anchor_distance;
    return res;
}

} // namespace

ShardedResult
runShardedCell(const SimOptions &options, const WorkloadSpec &spec,
               ScenarioKind scenario, const MemoryMap &map,
               const PageTable &table, Scheme scheme,
               std::uint64_t anchor_distance)
{
    ShardedResult out;
    out.plan = planShards(cellAccesses(options, spec), options.shards,
                          options.shard_warmup);
    out.shards.resize(out.plan.size());

    // The serial path must stay byte-identical, so a one-shard plan
    // runs the exact unsharded cell body (no seek, no warmup, no merge
    // round-trip). runSchemeCell only routes here when shards > 1, but
    // direct callers may pass shards == 1 too.
    if (out.plan.size() == 1) {
        SimOptions serial = options;
        serial.shards = 1;
        out.shards[0] = runSchemeCell(serial, spec, scenario, map, table,
                                      scheme, anchor_distance);
        out.merged = out.shards[0];
        return out;
    }

    // Shards share only read-only state (map, table, options); each
    // builds its own trace and MMU, so execution order is irrelevant.
    // The worker count is bounded by the threads knob (an explicit
    // ANCHORTLB_THREADS is a budget; the default is the hardware
    // concurrency) — results are identical for any worker count.
    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        out.plan.size(),
        std::max<unsigned>(options.threads, 1)));
    if (workers <= 1) {
        for (std::size_t i = 0; i < out.plan.size(); ++i) {
            out.shards[i] =
                runShard(options, spec, scenario, map, table, scheme,
                         anchor_distance, out.plan[i]);
        }
    } else {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < out.plan.size(); ++i) {
            pool.submit([&, i] {
                out.shards[i] =
                    runShard(options, spec, scenario, map, table, scheme,
                             anchor_distance, out.plan[i]);
            });
        }
        pool.wait();
    }

    for (const SimResult &shard : out.shards)
        out.merged.merge(shard);
    return out;
}

ShardAccuracy
compareShardedToSerial(const SimOptions &options, const WorkloadSpec &spec,
                       ScenarioKind scenario, const MemoryMap &map,
                       const PageTable &table, Scheme scheme,
                       std::uint64_t anchor_distance)
{
    ShardAccuracy acc;
    acc.shard_count = std::max(1u, options.shards);

    SimOptions serial = options;
    serial.shards = 1;
    acc.serial = runSchemeCell(serial, spec, scenario, map, table, scheme,
                               anchor_distance);
    acc.sharded = runShardedCell(options, spec, scenario, map, table,
                                 scheme, anchor_distance)
                      .merged;
    return acc;
}

} // namespace atlb
