#include "experiment.hh"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "ingest/trace_open.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"
#include "sim/sharded_runner.hh"

namespace atlb
{

SimOptions
SimOptions::fromEnv()
{
    SimOptions opts;
    opts.accesses = envU64("ANCHORTLB_ACCESSES", opts.accesses);
    opts.footprint_scale =
        envDouble("ANCHORTLB_SCALE", opts.footprint_scale);
    opts.seed = envU64("ANCHORTLB_SEED", opts.seed);
    opts.threads = configuredThreadCount();
    opts.cache_pairs_from_env = envPresent("ANCHORTLB_CACHE_PAIRS");
    opts.cache_pairs = static_cast<std::size_t>(
        envU64("ANCHORTLB_CACHE_PAIRS", opts.cache_pairs));
    opts.shards = static_cast<unsigned>(
        envU64("ANCHORTLB_SHARDS", opts.shards));
    opts.shard_warmup =
        envU64("ANCHORTLB_SHARD_WARMUP", opts.shard_warmup);
    if (envPresent("ANCHORTLB_PER_ACCESS"))
        opts.translate_mode = TranslateMode::PerAccess;
    if (opts.accesses == 0)
        ATLB_FATAL("ANCHORTLB_ACCESSES must be positive");
    if (opts.footprint_scale <= 0.0 || opts.footprint_scale > 1.0)
        ATLB_FATAL("ANCHORTLB_SCALE must be in (0, 1]");
    if (opts.cache_pairs == 0)
        ATLB_FATAL("ANCHORTLB_CACHE_PAIRS must be >= 1");
    if (opts.shards == 0)
        ATLB_FATAL("ANCHORTLB_SHARDS must be >= 1");
    return opts;
}

namespace
{

/** Workload-name prefix selecting a trace-driven workload. */
constexpr const char *traceWorkloadPrefix = "trace:";

/**
 * Sanity cap on a trace-driven footprint (pages): a capture whose vaddr
 * span exceeds this was almost certainly imported without rebasing.
 */
constexpr std::uint64_t maxTraceFootprintPages = 1ULL << 25; // 128GB

WorkloadSpec
traceWorkloadSpec(const std::string &workload, const std::string &path)
{
    const TraceFileInfo info = inspectTraceFile(path);
    if (info.accesses == 0)
        ATLB_FATAL("trace '{}' is empty; nothing to simulate", path);
    if (info.min_vaddr < traceBaseVa().raw())
        ATLB_FATAL("trace '{}' touches vaddr {} below the simulated "
                   "region base {}; re-import it with --rebase",
                   path, info.min_vaddr, traceBaseVa());
    WorkloadSpec spec;
    spec.name = workload;
    spec.trace_path = path;
    spec.trace_accesses = info.accesses;
    spec.footprint_bytes = info.max_vaddr + 1 - traceBaseVa().raw();
    if (spec.footprintPages() > maxTraceFootprintPages)
        ATLB_FATAL("trace '{}' spans {} pages from the region base "
                   "(cap {}); re-import it with --rebase to compact "
                   "the address range",
                   path, spec.footprintPages(), maxTraceFootprintPages);
    return spec;
}

} // namespace

std::uint64_t
traceContentHash(const std::string &workload)
{
    if (workload.rfind(traceWorkloadPrefix, 0) != 0)
        return 0;
    const std::string path =
        workload.substr(std::strlen(traceWorkloadPrefix));
    std::uint64_t digest = 0;
    if (!fnv1a64File(path, digest))
        ATLB_FATAL("cannot read trace '{}' to content-hash it", path);
    return digest;
}

CellKey
cellKeyFor(const SimOptions &options, const CellSpec &spec,
           std::uint64_t trace_content_hash)
{
    // run() consults the distance override only for Scheme::Anchor;
    // canonicalize so a stray override on another scheme cannot split
    // one cell into two keys.
    const bool overridden = spec.scheme == Scheme::Anchor &&
                            spec.distance_override.has_value();

    Fnv1a h;
    h.addU64(1) // key format version: bump on any field change below
        .addString(spec.workload)
        .addString(scenarioName(spec.scenario))
        .addString(schemeName(spec.scheme))
        .addBool(overridden)
        .addU64(overridden ? *spec.distance_override : 0)
        .addU64(trace_content_hash);

    // The SimOptions knobs that shape result bytes. threads,
    // cache_pairs and translate_mode are deliberately absent: the test
    // suite pins them to byte-identical results.
    h.addU64(options.accesses)
        .addU64(options.seed)
        .addDouble(options.footprint_scale)
        .addU64(options.shards)
        .addU64(options.shard_warmup);

    // Every MmuConfig field, declaration order. Keep in sync with
    // mmu_config.hh: a new field must be folded here (and the version
    // above bumped if its default changes existing cells' meaning).
    const MmuConfig &m = options.mmu;
    h.addU64(m.l1_4k_entries)
        .addU64(m.l1_4k_ways)
        .addU64(m.l1_2m_entries)
        .addU64(m.l1_2m_ways)
        .addU64(m.l2_entries)
        .addU64(m.l2_ways)
        .addU64(m.l2_1g_entries)
        .addU64(m.l2_1g_ways)
        .addU64(m.cluster_regular_entries)
        .addU64(m.cluster_regular_ways)
        .addU64(m.cluster_entries)
        .addU64(m.cluster_ways)
        .addU64(m.cluster_span)
        .addU64(m.colt_fa_entries)
        .addU64(m.colt_fa_max_pages)
        .addU64(m.colt_fa_min_pages)
        .addU64(m.range_entries)
        .addU64(m.rmm_min_range_pages)
        .addU64(m.l2_hit_cycles)
        .addU64(m.coalesced_hit_cycles)
        .addU64(m.walk_cycles)
        .addBool(m.pwc_enabled)
        .addU64(m.pwc_pml4e_entries)
        .addU64(m.pwc_pdpte_entries)
        .addU64(m.pwc_pde_entries)
        .addU64(m.pwc_mem_ref_cycles)
        .addU64(m.max_contiguity)
        .addU64(m.nested_ref_cycles)
        .addU64(m.shootdown_initiator_cycles)
        .addU64(m.shootdown_responder_cycles)
        .addU64(m.shootdown_page_cycles)
        .addU64(m.shootdown_full_flush_pages);

    return CellKey{h.digest()};
}

WorkloadSpec
scaledWorkloadSpec(const SimOptions &options, const std::string &workload)
{
    if (workload.rfind(traceWorkloadPrefix, 0) == 0) {
        // Trace-driven: footprint comes from the capture's own vaddr
        // bounds, so footprint_scale does not apply.
        return traceWorkloadSpec(
            workload, workload.substr(std::strlen(traceWorkloadPrefix)));
    }
    WorkloadSpec spec = findWorkload(workload);
    spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.footprint_bytes) *
        options.footprint_scale);
    if (spec.footprint_bytes < pageBytes)
        spec.footprint_bytes = pageBytes;
    return spec;
}

ScenarioParams
scenarioParamsFor(const SimOptions &options, const WorkloadSpec &spec)
{
    ScenarioParams p;
    p.footprint_pages = spec.footprintPages();
    p.seed = options.seed * 0x9e3779b9ULL + std::hash<std::string>{}(
                                                spec.name);
    p.demand_run_pages = spec.demand_run_pages;
    p.eager_run_pages = spec.eager_run_pages;
    p.demand_churn = spec.demand_churn;
    p.map_tail_run_pages = spec.map_tail_run_pages;
    p.map_tail_fraction = spec.map_tail_fraction;
    return p;
}

std::uint64_t
traceSeedFor(const SimOptions &options, const WorkloadSpec &spec)
{
    return options.seed ^ (std::hash<std::string>{}(spec.name) * 31 + 7);
}

std::uint64_t
cellAccesses(const SimOptions &options, const WorkloadSpec &spec)
{
    if (!spec.traceDriven())
        return options.accesses;
    return std::min(options.accesses, spec.trace_accesses);
}

std::unique_ptr<TraceSource>
makeCellTrace(const SimOptions &options, const WorkloadSpec &spec,
              std::uint64_t num_accesses)
{
    if (spec.traceDriven()) {
        return std::make_unique<ClampedTraceSource>(
            openTraceFile(spec.trace_path), num_accesses);
    }
    return std::make_unique<PatternTrace>(spec, traceBaseVa(),
                                          num_accesses,
                                          traceSeedFor(options, spec));
}

std::unique_ptr<Mmu>
buildSchemeMmu(const MmuConfig &config, const PageTable &table,
               const MemoryMap &map, Scheme scheme,
               std::uint64_t anchor_distance)
{
    switch (scheme) {
      case Scheme::Base:
        return std::make_unique<BaselineMmu>(config, table, "base");
      case Scheme::Thp:
        return std::make_unique<BaselineMmu>(config, table, "thp");
      case Scheme::Cluster:
        return std::make_unique<ClusterMmu>(config, table, false);
      case Scheme::Cluster2MB:
        return std::make_unique<ClusterMmu>(config, table, true);
      case Scheme::Rmm:
        return std::make_unique<RmmMmu>(config, table, map);
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        return std::make_unique<AnchorMmu>(
            config, table, AnchorDist::fromPages(anchor_distance));
    }
    ATLB_FATAL("no MMU built for scheme");
}

SimResult
runSchemeCell(const SimOptions &options, const WorkloadSpec &spec,
              ScenarioKind scenario, const MemoryMap &map,
              const PageTable &table, Scheme scheme,
              std::uint64_t anchor_distance)
{
    // K > 1 routes the cell through the sharded runner; shards == 1 is
    // the exact serial walk below (the byte-identity anchor every
    // sharded-mode test compares against).
    if (options.shards > 1) {
        return runShardedCell(options, spec, scenario, map, table,
                              scheme, anchor_distance)
            .merged;
    }

    const std::unique_ptr<TraceSource> trace =
        makeCellTrace(options, spec, cellAccesses(options, spec));
    const std::unique_ptr<Mmu> mmu =
        buildSchemeMmu(options.mmu, table, map, scheme, anchor_distance);

    SimResult res = runSimulation(*mmu, *trace, spec.mem_per_instr,
                                  options.translate_mode);
    res.workload = spec.name;
    res.scenario = scenarioName(scenario);
    res.scheme = schemeName(scheme);
    if (scheme == Scheme::Anchor || scheme == Scheme::AnchorIdeal)
        res.anchor_distance = anchor_distance;
    return res;
}

CellPairState::CellPairState(const SimOptions &options,
                             std::string workload, ScenarioKind scenario)
    : workload_(std::move(workload)), scenario_(scenario),
      spec_(scaledWorkloadSpec(options, workload_)),
      map_(buildScenario(scenario_, scenarioParamsFor(options, spec_)))
{
    dynamic_distance_ =
        selectAnchorDistance(map_.contiguityHistogram()).distance;
}

const PageTable &
CellPairState::plainTable() const
{
    std::call_once(plain_once_, [this] {
        plain_table_ = buildPageTable(map_, false);
    });
    return *plain_table_;
}

const PageTable &
CellPairState::thpTable() const
{
    std::call_once(thp_once_, [this] {
        thp_table_ = buildPageTable(map_, true);
    });
    return *thp_table_;
}

/** Cached expensive state for one (workload, scenario) pair. */
struct ExperimentContext::PairState
{
    std::string workload;
    ScenarioKind scenario;
    WorkloadSpec spec;     //!< footprint already scaled
    MemoryMap map;
    std::uint64_t dynamic_distance = 0;

    // Lazily built page-table variants.
    std::optional<PageTable> plain_table; //!< all-4KB (Base, Cluster)
    std::optional<PageTable> thp_table;   //!< with 2MB leaves
    std::optional<PageTable> anchor_table;
    std::uint64_t anchor_table_distance = 0;
};

ExperimentContext::ExperimentContext(SimOptions options)
    : options_(options)
{
    if (options_.cache_pairs == 0)
        options_.cache_pairs = 1;
}

ExperimentContext::~ExperimentContext() = default;

void
ExperimentContext::clearCache()
{
    cache_.clear();
}

void
ExperimentContext::sizeCacheForPairs(std::size_t distinct_pairs)
{
    std::size_t desired = std::max<std::size_t>(
        {std::size_t{1}, distinct_pairs, options_.cache_pairs});
    if (options_.cache_pairs_from_env) {
        // The user budgeted memory explicitly: never exceed it.
        desired = std::max<std::size_t>(
            1, std::min<std::size_t>(distinct_pairs,
                                     options_.cache_pairs));
    }
    options_.cache_pairs = desired;
    while (cache_.size() > options_.cache_pairs)
        cache_.pop_front();
}

ExperimentContext::PairState &
ExperimentContext::pairState(const std::string &workload,
                             ScenarioKind scenario)
{
    ++counters_.lookups;
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if ((*it)->workload == workload && (*it)->scenario == scenario) {
            ++counters_.hits;
            // LRU: move the hit to the back (most recently used) so
            // revisited pairs survive sweeps over other pairs.
            if (std::next(it) != cache_.end()) {
                auto entry = std::move(*it);
                cache_.erase(it);
                cache_.push_back(std::move(entry));
            }
            return *cache_.back();
        }
    }

    auto state = std::make_unique<PairState>();
    state->workload = workload;
    state->scenario = scenario;
    state->spec = scaledWorkloadSpec(options_, workload);
    state->map = buildScenario(scenario,
                               scenarioParamsFor(options_, state->spec));
    state->dynamic_distance =
        selectAnchorDistance(state->map.contiguityHistogram()).distance;

    cache_.push_back(std::move(state));
    // Page tables are tens of MB for big footprints: bound the number of
    // pairs kept alive (ANCHORTLB_CACHE_PAIRS), evicting the LRU front.
    while (cache_.size() > options_.cache_pairs)
        cache_.pop_front();
    return *cache_.back();
}

const MemoryMap &
ExperimentContext::mapping(const std::string &workload,
                           ScenarioKind scenario)
{
    return pairState(workload, scenario).map;
}

std::uint64_t
ExperimentContext::dynamicDistance(const std::string &workload,
                                   ScenarioKind scenario)
{
    return pairState(workload, scenario).dynamic_distance;
}

SimResult
ExperimentContext::runScheme(PairState &state, Scheme scheme,
                             std::uint64_t anchor_distance)
{
    const PageTable *table = nullptr;
    switch (scheme) {
      case Scheme::Base:
      case Scheme::Cluster:
        if (!state.plain_table)
            state.plain_table = buildPageTable(state.map, false);
        table = &*state.plain_table;
        break;
      case Scheme::Thp:
      case Scheme::Cluster2MB:
      case Scheme::Rmm:
        if (!state.thp_table)
            state.thp_table = buildPageTable(state.map, true);
        table = &*state.thp_table;
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        if (!state.anchor_table) {
            state.anchor_table = buildPageTable(state.map, true);
            state.anchor_table_distance = 0;
        }
        if (state.anchor_table_distance != anchor_distance) {
            state.anchor_table->sweepAnchors(
                state.map, AnchorDist::fromPages(anchor_distance));
            state.anchor_table_distance = anchor_distance;
        }
        table = &*state.anchor_table;
        break;
    }
    ATLB_ASSERT(table, "no page table built for scheme");
    return runSchemeCell(options_, state.spec, state.scenario, state.map,
                         *table, scheme, anchor_distance);
}

SimResult
ExperimentContext::runIdealSweep(PairState &state)
{
    // Oracle: exhaustively sweep every candidate distance, keep the run
    // with the fewest misses (paper's "static ideal"). Candidates are
    // independent cells, so with threads > 1 they run across a pool —
    // each job builds its own anchor-swept table from the shared
    // read-only mapping, and the reduction below walks candidates in
    // their canonical order so ties resolve exactly as the serial loop.
    const std::vector<std::uint64_t> distances = candidateDistances();
    ATLB_ASSERT(!distances.empty(), "no candidate anchor distances");
    std::vector<SimResult> runs(distances.size());

    const unsigned threads = std::min<unsigned>(
        options_.threads, static_cast<unsigned>(distances.size()));
    if (threads > 1) {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < distances.size(); ++i) {
            pool.submit([this, &state, &distances, &runs, i] {
                const PageTable table = buildAnchorPageTable(
                    state.map, AnchorDist::fromPages(distances[i]));
                runs[i] = runSchemeCell(options_, state.spec,
                                        state.scenario, state.map, table,
                                        Scheme::AnchorIdeal, distances[i]);
            });
        }
        pool.wait();
    } else {
        for (std::size_t i = 0; i < distances.size(); ++i)
            runs[i] = runScheme(state, Scheme::AnchorIdeal, distances[i]);
    }

    std::size_t best = 0;
    std::uint64_t best_misses = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].misses() < best_misses) {
            best_misses = runs[i].misses();
            best = i;
        }
    }
    return runs[best];
}

std::uint64_t
ExperimentContext::traceHashFor(const std::string &workload)
{
    const auto it = trace_hashes_.find(workload);
    if (it != trace_hashes_.end())
        return it->second;
    const std::uint64_t digest = traceContentHash(workload);
    trace_hashes_.emplace(workload, digest);
    return digest;
}

CellKey
ExperimentContext::cellKey(const std::string &workload,
                           ScenarioKind scenario, Scheme scheme,
                           std::optional<std::uint64_t> distance_override)
{
    return cellKeyFor(options_,
                      CellSpec{workload, scenario, scheme,
                               distance_override},
                      traceHashFor(workload));
}

SimResult
ExperimentContext::run(const std::string &workload, ScenarioKind scenario,
                       Scheme scheme,
                       std::optional<std::uint64_t> distance_override)
{
    // An attached result cache is consulted before any expensive state
    // is built: a hit skips mapping/page-table construction entirely.
    CellKey key;
    if (result_cache_) {
        key = cellKey(workload, scenario, scheme, distance_override);
        ++counters_.result_lookups;
        if (std::optional<SimResult> cached = result_cache_->lookup(key)) {
            ++counters_.result_hits;
            return *std::move(cached);
        }
    }

    PairState &state = pairState(workload, scenario);

    SimResult result;
    if (scheme == Scheme::AnchorIdeal) {
        result = runIdealSweep(state);
    } else {
        std::uint64_t distance = 0;
        if (scheme == Scheme::Anchor) {
            distance = distance_override ? *distance_override
                                         : state.dynamic_distance;
        }
        result = runScheme(state, scheme, distance);
    }

    if (result_cache_)
        result_cache_->store(key, result);
    return result;
}

double
relativeMisses(std::uint64_t scheme_misses, std::uint64_t base_misses)
{
    if (base_misses == 0)
        return 1.0; // nothing to reduce: report parity
    return static_cast<double>(scheme_misses) /
           static_cast<double>(base_misses);
}

} // namespace atlb
