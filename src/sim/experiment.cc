#include "experiment.hh"

#include <cstdlib>
#include <functional>
#include <limits>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/table_builder.hh"

namespace atlb
{

SimOptions
SimOptions::fromEnv()
{
    SimOptions opts;
    if (const char *v = std::getenv("ANCHORTLB_ACCESSES"))
        opts.accesses = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("ANCHORTLB_SCALE"))
        opts.footprint_scale = std::strtod(v, nullptr);
    if (const char *v = std::getenv("ANCHORTLB_SEED"))
        opts.seed = std::strtoull(v, nullptr, 10);
    if (opts.accesses == 0)
        ATLB_FATAL("ANCHORTLB_ACCESSES must be positive");
    if (opts.footprint_scale <= 0.0 || opts.footprint_scale > 1.0)
        ATLB_FATAL("ANCHORTLB_SCALE must be in (0, 1]");
    return opts;
}

/** Cached expensive state for one (workload, scenario) pair. */
struct ExperimentContext::PairState
{
    std::string workload;
    ScenarioKind scenario;
    WorkloadSpec spec;     //!< footprint already scaled
    MemoryMap map;
    std::uint64_t dynamic_distance = 0;

    // Lazily built page-table variants.
    std::optional<PageTable> plain_table; //!< all-4KB (Base, Cluster)
    std::optional<PageTable> thp_table;   //!< with 2MB leaves
    std::optional<PageTable> anchor_table;
    std::uint64_t anchor_table_distance = 0;
};

ExperimentContext::ExperimentContext(SimOptions options)
    : options_(options)
{
}

ExperimentContext::~ExperimentContext() = default;

void
ExperimentContext::clearCache()
{
    cache_.clear();
}

ScenarioParams
ExperimentContext::scenarioParams(const WorkloadSpec &spec) const
{
    ScenarioParams p;
    p.footprint_pages = spec.footprintPages();
    p.seed = options_.seed * 0x9e3779b9ULL + std::hash<std::string>{}(
                                                 spec.name);
    p.demand_run_pages = spec.demand_run_pages;
    p.eager_run_pages = spec.eager_run_pages;
    p.demand_churn = spec.demand_churn;
    p.map_tail_run_pages = spec.map_tail_run_pages;
    p.map_tail_fraction = spec.map_tail_fraction;
    return p;
}

ExperimentContext::PairState &
ExperimentContext::pairState(const std::string &workload,
                             ScenarioKind scenario)
{
    for (auto &entry : cache_) {
        if (entry->workload == workload && entry->scenario == scenario)
            return *entry;
    }

    auto state = std::make_unique<PairState>();
    state->workload = workload;
    state->scenario = scenario;
    state->spec = findWorkload(workload);
    state->spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(state->spec.footprint_bytes) *
        options_.footprint_scale);
    if (state->spec.footprint_bytes < pageBytes)
        state->spec.footprint_bytes = pageBytes;

    state->map = buildScenario(scenario, scenarioParams(state->spec));
    state->dynamic_distance =
        selectAnchorDistance(state->map.contiguityHistogram()).distance;

    cache_.push_back(std::move(state));
    // Page tables are tens of MB for big footprints: keep only a couple
    // of pairs alive.
    while (cache_.size() > 2)
        cache_.pop_front();
    return *cache_.back();
}

const MemoryMap &
ExperimentContext::mapping(const std::string &workload,
                           ScenarioKind scenario)
{
    return pairState(workload, scenario).map;
}

std::uint64_t
ExperimentContext::dynamicDistance(const std::string &workload,
                                   ScenarioKind scenario)
{
    return pairState(workload, scenario).dynamic_distance;
}

SimResult
ExperimentContext::runScheme(PairState &state, Scheme scheme,
                             std::uint64_t anchor_distance)
{
    const std::uint64_t trace_seed =
        options_.seed ^ (std::hash<std::string>{}(state.workload) * 31 + 7);
    PatternTrace trace(state.spec, vaOf(0x7f0000000ULL), options_.accesses,
                       trace_seed);

    std::unique_ptr<Mmu> mmu;
    switch (scheme) {
      case Scheme::Base:
        if (!state.plain_table)
            state.plain_table = buildPageTable(state.map, false);
        mmu = std::make_unique<BaselineMmu>(options_.mmu,
                                            *state.plain_table, "base");
        break;
      case Scheme::Thp:
        if (!state.thp_table)
            state.thp_table = buildPageTable(state.map, true);
        mmu = std::make_unique<BaselineMmu>(options_.mmu, *state.thp_table,
                                            "thp");
        break;
      case Scheme::Cluster:
        if (!state.plain_table)
            state.plain_table = buildPageTable(state.map, false);
        mmu = std::make_unique<ClusterMmu>(options_.mmu,
                                           *state.plain_table, false);
        break;
      case Scheme::Cluster2MB:
        if (!state.thp_table)
            state.thp_table = buildPageTable(state.map, true);
        mmu = std::make_unique<ClusterMmu>(options_.mmu, *state.thp_table,
                                           true);
        break;
      case Scheme::Rmm:
        if (!state.thp_table)
            state.thp_table = buildPageTable(state.map, true);
        mmu = std::make_unique<RmmMmu>(options_.mmu, *state.thp_table,
                                       state.map);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal: {
        if (!state.anchor_table) {
            state.anchor_table = buildPageTable(state.map, true);
            state.anchor_table_distance = 0;
        }
        if (state.anchor_table_distance != anchor_distance) {
            state.anchor_table->sweepAnchors(state.map, anchor_distance);
            state.anchor_table_distance = anchor_distance;
        }
        mmu = std::make_unique<AnchorMmu>(options_.mmu,
                                          *state.anchor_table,
                                          anchor_distance);
        break;
      }
    }
    ATLB_ASSERT(mmu, "no MMU built for scheme");

    SimResult res = runSimulation(*mmu, trace, state.spec.mem_per_instr);
    res.workload = state.workload;
    res.scenario = scenarioName(state.scenario);
    res.scheme = schemeName(scheme);
    if (scheme == Scheme::Anchor || scheme == Scheme::AnchorIdeal)
        res.anchor_distance = anchor_distance;
    return res;
}

SimResult
ExperimentContext::run(const std::string &workload, ScenarioKind scenario,
                       Scheme scheme,
                       std::optional<std::uint64_t> distance_override)
{
    PairState &state = pairState(workload, scenario);

    if (scheme == Scheme::AnchorIdeal) {
        // Oracle: exhaustively sweep every candidate distance, keep the
        // run with the fewest misses (paper's "static ideal").
        SimResult best;
        std::uint64_t best_misses =
            std::numeric_limits<std::uint64_t>::max();
        for (const std::uint64_t d : candidateDistances()) {
            SimResult r = runScheme(state, scheme, d);
            if (r.misses() < best_misses) {
                best_misses = r.misses();
                best = r;
            }
        }
        return best;
    }

    std::uint64_t distance = 0;
    if (scheme == Scheme::Anchor) {
        distance = distance_override ? *distance_override
                                     : state.dynamic_distance;
    }
    return runScheme(state, scheme, distance);
}

double
relativeMisses(std::uint64_t scheme_misses, std::uint64_t base_misses)
{
    if (base_misses == 0)
        return 1.0; // nothing to reduce: report parity
    return static_cast<double>(scheme_misses) /
           static_cast<double>(base_misses);
}

} // namespace atlb
