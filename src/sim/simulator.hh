/**
 * @file
 * Trace-driven TLB simulator: streams accesses through an MMU and
 * derives the paper's metrics (relative misses, hit-type fractions,
 * translation CPI).
 */

#ifndef ANCHORTLB_SIM_SIMULATOR_HH
#define ANCHORTLB_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "mmu/mmu.hh"
#include "trace/access.hh"

namespace atlb
{

/** Everything measured by one simulation run. */
struct SimResult
{
    std::string workload;
    std::string scenario;
    std::string scheme;
    std::uint64_t anchor_distance = 0; //!< 0 for non-anchor schemes

    MmuStats stats;
    /** Estimated instruction count (accesses / mem_per_instr). */
    double instructions = 0.0;
    /** Cycle attribution (derived from per-bucket hit counts). */
    Cycles l2_hit_cycles = 0;
    Cycles coalesced_cycles = 0;
    Cycles walk_cycles = 0;

    /** Paper's "TLB misses": page walks. */
    std::uint64_t misses() const { return stats.page_walks; }

    /** Translation cycles added per instruction (paper Figs. 10-11). */
    double translationCpi() const
    {
        return instructions > 0.0
                   ? static_cast<double>(stats.translation_cycles) /
                         instructions
                   : 0.0;
    }

    double cpiL2() const
    {
        return instructions > 0.0
                   ? static_cast<double>(l2_hit_cycles) / instructions
                   : 0.0;
    }
    double cpiCoalesced() const
    {
        return instructions > 0.0
                   ? static_cast<double>(coalesced_cycles) / instructions
                   : 0.0;
    }
    double cpiWalk() const
    {
        return instructions > 0.0
                   ? static_cast<double>(walk_cycles) / instructions
                   : 0.0;
    }

    /** Fractions of L2-level accesses, for paper Table 5. */
    double regularHitFraction() const;
    double coalescedHitFraction() const;
    double l2MissFraction() const;

    /**
     * Fold another partial result into this one: every counter sums
     * (stats, instructions, the cycle buckets); derived metrics (CPI,
     * hit fractions) are recomputed from the merged counters by their
     * accessors, never averaged. A default-constructed SimResult is the
     * identity element. The operation is associative and commutative up
     * to floating-point rounding of `instructions` (the integer
     * counters merge exactly in any order); the sharded runner relies
     * on this to combine per-shard partials
     * (tests/sim/test_sharded_runner.cc).
     *
     * Both sides must describe the same cell: merging partials with
     * differing workload/scenario/scheme/anchor_distance labels is a
     * caller bug (checked builds panic).
     */
    SimResult &merge(const SimResult &other);
};

/**
 * How the replay loop feeds the MMU. The two modes are
 * counter-identical (tests/sim/test_batch_kernel.cc pins it); Batch is
 * the production path, PerAccess the reference it is verified against
 * and the slow side of bench_hotpath's ratio.
 */
enum class TranslateMode : std::uint8_t
{
    Batch,     //!< one translateBatch call per 1024-access buffer
    PerAccess, //!< one translate() call per access
};

/**
 * Run @p trace through @p mmu to completion.
 *
 * @param mem_per_instr data accesses per instruction (CPI conversion)
 * @param mode          batch kernel (default) or per-access reference
 * @param batch_stats   if non-null, accumulates the replay's
 *                      BatchStats (batch mode only; untouched in
 *                      per-access mode)
 */
SimResult runSimulation(Mmu &mmu, TraceSource &trace, double mem_per_instr,
                        TranslateMode mode = TranslateMode::Batch,
                        BatchStats *batch_stats = nullptr);

} // namespace atlb

#endif // ANCHORTLB_SIM_SIMULATOR_HH
