/**
 * @file
 * Within-cell sharded simulation with mergeable partial stats.
 *
 * The parallel sweep engine (parallel_runner.hh) parallelises *across*
 * cells; a single cell — `quickstart`, the long CPI runs — was still one
 * serial trace walk. This runner splits a cell's access stream into K
 * deterministic shards, simulates each on an independent TLB/MMU
 * instance over the same shared read-only mapping and page table, and
 * combines the per-shard partials with SimResult::merge (counters sum,
 * derived CPI recomputed from the merged counters).
 *
 * Determinism & accuracy contract:
 *
 *  - Shard k covers access slice [start_k, end_k) of the exact serial
 *    stream: every shard seeks a fresh PatternTrace (same seed) to its
 *    offset via TraceSource::skip, so the concatenated slices ARE the
 *    serial stream, independent of thread scheduling.
 *  - K = 1 is the serial path itself: output is byte-identical to
 *    runSimulation (enforced by tests/sim/test_sharded_runner.cc and
 *    the golden-file harness, which runs bench_fig9 under
 *    ANCHORTLB_SHARDS=1).
 *  - K > 1 is an approximation: each shard starts with cold TLBs, so it
 *    replays a warmup prefix drawn from the preceding shard's tail
 *    (SimOptions::shard_warmup accesses, stats discarded) before its
 *    measured slice. Residual error shows up as extra misses near shard
 *    boundaries; the declared contract is that every cell's miss rate
 *    (walks per access) stays within shardMissRateEpsilon of the serial
 *    run
 *    (asserted over the paper workloads by the checked-build ctest and
 *    recorded per cell by bench_shard_scaling).
 *  - Results depend only on (options, cell, K) — never on the worker
 *    count or interleaving: merge order is shard order.
 */

#ifndef ANCHORTLB_SIM_SHARDED_RUNNER_HH
#define ANCHORTLB_SIM_SHARDED_RUNNER_HH

#include <cstdint>
#include <vector>

#include "sim/experiment.hh"

namespace atlb
{

/**
 * Declared accuracy contract of sharded mode: the absolute difference
 * between the sharded and serial miss rates — page walks per access —
 * of one cell must stay within this bound for the paper workloads at
 * K <= 8 with the default warmup. Per access, not per L2 access: the
 * L2-access denominator collapses on L1-friendly cells and turns a
 * handful of boundary walks into a huge fraction, while the per-access
 * rate degrades predictably (the residual cost is a bounded number of
 * cold entries per shard boundary, so the delta shrinks as slices
 * grow). Empirical worst case at a 200k-access budget is ~0.005
 * (mummer/Dynamic at K = 8; BENCH_shard_scaling.json), so 0.01 gives
 * 2x headroom and still means "at most 10 extra walks per 1000
 * accesses".
 */
constexpr double shardMissRateEpsilon = 0.01;

/** One shard's slice of the cell's access stream. */
struct ShardSlice
{
    std::uint64_t begin = 0;  //!< first measured access (inclusive)
    std::uint64_t end = 0;    //!< one past the last measured access
    std::uint64_t warmup = 0; //!< replayed prefix accesses before begin

    std::uint64_t length() const { return end - begin; }
};

/**
 * Deterministic slicing of @p accesses into @p shards near-equal
 * contiguous slices (earlier shards take the remainder), each with a
 * warmup prefix of min(@p warmup, slice begin) accesses. Exposed for
 * the property tests.
 */
std::vector<ShardSlice> planShards(std::uint64_t accesses,
                                   unsigned shards,
                                   std::uint64_t warmup);

/** A sharded cell run: the merged result plus the per-shard partials. */
struct ShardedResult
{
    SimResult merged;
    /** Per-shard partials, in shard (i.e. stream) order. */
    std::vector<SimResult> shards;
    /** The slicing that produced them. */
    std::vector<ShardSlice> plan;
};

/**
 * Run one cell sharded SimOptions::shards ways. Mirrors runSchemeCell's
 * contract (@p table must match the scheme's flavour); shards execute
 * on a ThreadPool sized min(shards, threads-knob) but the result is
 * identical for any worker count. With shards <= 1 the single "shard"
 * is the exact serial simulation.
 */
ShardedResult runShardedCell(const SimOptions &options,
                             const WorkloadSpec &spec,
                             ScenarioKind scenario, const MemoryMap &map,
                             const PageTable &table, Scheme scheme,
                             std::uint64_t anchor_distance);

/** Per-cell accuracy report: the sharded run against the serial run. */
struct ShardAccuracy
{
    SimResult serial;
    SimResult sharded;
    unsigned shard_count = 1;

    /** Absolute page-walk count difference. */
    std::uint64_t missDelta() const
    {
        const std::uint64_t a = serial.misses();
        const std::uint64_t b = sharded.misses();
        return a > b ? a - b : b - a;
    }

    /** |sharded - serial| page walks per access (the contract metric). */
    double missRateDelta() const
    {
        if (serial.stats.accesses == 0 || sharded.stats.accesses == 0)
            return 0.0;
        const double d =
            static_cast<double>(sharded.misses()) /
                static_cast<double>(sharded.stats.accesses) -
            static_cast<double>(serial.misses()) /
                static_cast<double>(serial.stats.accesses);
        return d < 0.0 ? -d : d;
    }

    /** Informational: |sharded - serial| L2 miss fraction. */
    double l2FractionDelta() const
    {
        const double d =
            sharded.l2MissFraction() - serial.l2MissFraction();
        return d < 0.0 ? -d : d;
    }

    /** Relative page-walk error (0 when serial has no walks). */
    double relativeMissError() const
    {
        return serial.misses()
                   ? static_cast<double>(missDelta()) /
                         static_cast<double>(serial.misses())
                   : 0.0;
    }

    bool withinEpsilon(double epsilon = shardMissRateEpsilon) const
    {
        return missRateDelta() <= epsilon;
    }
};

/**
 * Run the cell both ways — serial (shards forced to 1) and sharded at
 * @p options.shards — and report the deltas. This is the bench and
 * ctest entry point for the accuracy contract.
 */
ShardAccuracy compareShardedToSerial(const SimOptions &options,
                                     const WorkloadSpec &spec,
                                     ScenarioKind scenario,
                                     const MemoryMap &map,
                                     const PageTable &table, Scheme scheme,
                                     std::uint64_t anchor_distance);

} // namespace atlb

#endif // ANCHORTLB_SIM_SHARDED_RUNNER_HH
