/**
 * @file
 * Parallel sweep engine for experiment grids.
 *
 * The paper's evaluation is a design-space sweep: workloads x mapping
 * scenarios x schemes, with AnchorIdeal cells additionally fanning out
 * over every candidate anchor distance. Cells are embarrassingly
 * parallel — every source of randomness derives from per-cell seeds
 * (SimOptions::seed x workload name x scenario), never from execution
 * order — so the engine runs them across a fixed-size thread pool and
 * collects results in submission order, making the output byte-identical
 * to a serial run for any thread count (enforced by
 * tests/sim/test_parallel_runner.cc).
 *
 * Scheduling: expensive per-(workload, scenario) state — the mapping and
 * the plain/THP page tables — is built once per pair (by whichever
 * worker gets there first) and shared read-only by that pair's scheme
 * jobs; anchor jobs build their own distance-swept table from the shared
 * mapping since the sweep mutates the table. Leaves are enqueued in pair
 * order and each pair's state is freed when its last leaf completes, so
 * peak memory stays near (threads + 1) live pairs rather than the whole
 * grid.
 */

#ifndef ANCHORTLB_SIM_PARALLEL_RUNNER_HH
#define ANCHORTLB_SIM_PARALLEL_RUNNER_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace atlb
{

/** One experiment cell: the unit of parallel scheduling. */
struct CellJob
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::Demand;
    Scheme scheme = Scheme::Base;
    /** Anchor scheme only: fixed distance instead of the dynamic one. */
    std::optional<std::uint64_t> distance_override{};
};

/**
 * Run one cell against shared @p pair state (which must be the pair
 * @p job names). This is the complete single-cell job body:
 * Base/Cluster use the pair's plain table, the THP-family schemes its
 * THP table, Anchor builds a private distance-swept table from the
 * shared mapping, and AnchorIdeal sweeps every candidate distance
 * serially within the job, keeping the first minimum-miss run (the
 * same tie-break as the serial sweep and the parallel reduction).
 * options.threads is not consulted — callers wanting within-cell
 * parallelism fan AnchorIdeal candidates out themselves. Safe for
 * concurrent calls sharing one @p pair; results are byte-identical to
 * ExperimentContext::run for the same options.
 */
SimResult runCellJob(const SimOptions &options, const CellPairState &pair,
                     const CellJob &job);

/**
 * Runs batches of cells, serially (threads == 1: the exact
 * ExperimentContext path) or across a thread pool. Results come back in
 * submission order and are identical either way.
 */
class ParallelRunner
{
  public:
    /** @p options.threads picks the worker count (1 = serial). */
    explicit ParallelRunner(SimOptions options);

    std::vector<SimResult> run(const std::vector<CellJob> &jobs);

    unsigned threads() const { return options_.threads; }
    const SimOptions &options() const { return options_; }

  private:
    SimOptions options_;
};

/**
 * Convenience for the bench helpers: run @p jobs through @p ctx when
 * ctx.options().threads == 1 (reusing its warm pair cache), else through
 * the parallel engine with the same options. Same results either way.
 */
std::vector<SimResult> runCells(ExperimentContext &ctx,
                                const std::vector<CellJob> &jobs);

} // namespace atlb

#endif // ANCHORTLB_SIM_PARALLEL_RUNNER_HH
