/**
 * @file
 * Experiment context: builds and caches mappings, page tables and
 * workload traces, and runs (workload x scenario x scheme) cells.
 *
 * This is the top-level API the bench binaries and examples use; one
 * cell corresponds to one bar of a paper figure. Page tables for big
 * footprints are large, so the context keeps a small LRU cache of
 * per-(workload, scenario) state (capacity cache_pairs, revisited
 * pairs move to the back) — iterate workloads in the outer loop for
 * locality.
 */

#ifndef ANCHORTLB_SIM_EXPERIMENT_HH
#define ANCHORTLB_SIM_EXPERIMENT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "mmu/mmu_config.hh"
#include "os/memory_map.hh"
#include "os/page_table.hh"
#include "os/scenario.hh"
#include "sim/scheme.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"

namespace atlb
{

/** Global knobs for an experiment campaign. */
struct SimOptions
{
    /** Accesses simulated per cell. */
    std::uint64_t accesses = 2'000'000;
    /** Base RNG seed (mapping and trace seeds derive from it). */
    std::uint64_t seed = 42;
    /**
     * Footprint scale factor (1.0 = paper-sized working sets). Smaller
     * values shrink memory and runtime for quick runs; relative scheme
     * behaviour is preserved as long as footprints stay well above the
     * L2 TLB reach.
     */
    double footprint_scale = 1.0;
    /**
     * Worker threads for the sweep engine and the AnchorIdeal distance
     * sweep. 1 (the default here) is the serial path; fromEnv() sets
     * ANCHORTLB_THREADS, falling back to the hardware concurrency.
     * Results are identical for every thread count — all randomness is
     * derived from per-cell seeds.
     */
    unsigned threads = 1;
    /**
     * Capacity of ExperimentContext's per-(workload, scenario) state
     * cache, in pairs (LRU eviction). Page tables dominate the cost:
     * budget roughly tens of MB per cached pair at full footprints.
     * Sweep drivers that know their run shape call
     * ExperimentContext::sizeCacheForPairs() to fit this to the number
     * of distinct pairs; an explicit ANCHORTLB_CACHE_PAIRS clamps it.
     */
    std::size_t cache_pairs = 2;
    /** True when ANCHORTLB_CACHE_PAIRS was set explicitly (clamp). */
    bool cache_pairs_from_env = false;
    /**
     * Within-cell shards (ANCHORTLB_SHARDS). 1 = the exact serial
     * simulation path, byte-identical to pre-sharding builds. K > 1
     * splits each cell's access stream into K deterministic slices
     * simulated concurrently on independent TLB/MMU instances and
     * merged via SimResult::merge — an *approximation* whose miss rates
     * stay within shardMissRateEpsilon of serial (sharded_runner.hh).
     */
    unsigned shards = 1;
    /**
     * Warmup accesses each shard k > 0 replays from the tail of the
     * preceding shard's slice before its measured run, rebuilding TLB
     * warmth the serial walk would have at that point
     * (ANCHORTLB_SHARD_WARMUP). Clamped to the shard's start offset.
     */
    std::uint64_t shard_warmup = 32'768;
    /**
     * Replay-loop flavour. Batch (the default) drives each scheme's
     * devirtualized translateBatch kernel; PerAccess is the
     * counter-identical reference loop, selectable with
     * ANCHORTLB_PER_ACCESS for differential runs (the golden harness
     * pins both spellings to the same bytes).
     */
    TranslateMode translate_mode = TranslateMode::Batch;
    /** Hardware parameters (paper Table 3 defaults). */
    MmuConfig mmu;

    /** Read accesses/scale/threads overrides from ANCHORTLB_* env vars. */
    static SimOptions fromEnv();
};

/**
 * Footprint-scaled catalog spec for @p workload (fatal if unknown).
 *
 * A name of the form "trace:<path>" instead names a trace-driven
 * workload: @p path must be a binary trace file (ATLBTRC1/2) whose
 * vaddrs all fall inside the simulated region starting at traceBaseVa()
 * (import with --rebase to guarantee this). Its footprint is taken from
 * the trace's vaddr bounds — footprint_scale deliberately does not
 * apply, since the addresses are fixed by the capture.
 */
WorkloadSpec scaledWorkloadSpec(const SimOptions &options,
                                const std::string &workload);

/**
 * Accesses one cell of @p spec actually simulates: options.accesses,
 * clamped to the trace length for trace-driven workloads (a capture
 * cannot be extended).
 */
std::uint64_t cellAccesses(const SimOptions &options,
                           const WorkloadSpec &spec);

/**
 * The access stream of one cell: a PatternTrace for synthetic specs, a
 * clamped file reader for trace-driven ones. Shared by the serial cell
 * body and the sharded runner (which passes each shard's slice end as
 * @p num_accesses), which is what keeps the two modes replaying the
 * same stream.
 */
std::unique_ptr<TraceSource> makeCellTrace(const SimOptions &options,
                                           const WorkloadSpec &spec,
                                           std::uint64_t num_accesses);

/** Scenario-construction parameters for @p spec under @p options. */
ScenarioParams scenarioParamsFor(const SimOptions &options,
                                 const WorkloadSpec &spec);

/** VA where every simulated workload's footprint is mapped. */
constexpr VirtAddr traceBaseVa()
{
    return vaOf(Vpn{0x7f0000000ULL});
}

/**
 * Seed of @p spec's access stream under @p options: every run of a cell
 * (serial, parallel sweep, or any shard of it) derives its trace from
 * this one value, which is what makes the execution modes comparable.
 */
std::uint64_t traceSeedFor(const SimOptions &options,
                           const WorkloadSpec &spec);

/**
 * Construct @p scheme's MMU over @p table. @p map is only read by RMM
 * (its range table); @p anchor_distance only by the anchor schemes.
 * Shared by the serial cell body and the sharded runner, which builds
 * one MMU per shard.
 */
std::unique_ptr<Mmu> buildSchemeMmu(const MmuConfig &config,
                                    const PageTable &table,
                                    const MemoryMap &map, Scheme scheme,
                                    std::uint64_t anchor_distance);

/**
 * Run one fully specified cell: build @p scheme's MMU over the prebuilt
 * @p table and stream the workload's trace through it. @p table must
 * match the scheme's table flavour (plain 4KB for Base/Cluster, THP for
 * THP/Cluster-2MB/RMM, anchor-swept at @p anchor_distance for the
 * anchor schemes). This is the shared cell body of both the serial
 * ExperimentContext path and the parallel sweep engine, which is what
 * makes the two bit-identical.
 */
SimResult runSchemeCell(const SimOptions &options, const WorkloadSpec &spec,
                        ScenarioKind scenario, const MemoryMap &map,
                        const PageTable &table, Scheme scheme,
                        std::uint64_t anchor_distance);

/**
 * Immutable expensive state for one (workload, scenario) pair, safe to
 * share read-only across threads: the footprint-scaled spec, the
 * scenario mapping and its dynamically selected anchor distance are
 * built eagerly by the constructor; the plain/THP page-table flavours
 * are built lazily on first use (std::call_once, so concurrent readers
 * share one build). Anchor-swept tables are deliberately absent — the
 * sweep mutates the table, so anchor jobs build a private one from
 * map().
 *
 * Construction reads exactly options.seed and options.footprint_scale
 * (via scaledWorkloadSpec / scenarioParamsFor); callers that cache pair
 * state across option sets key on those two fields plus the pair.
 *
 * This is the pair-state flavour the parallel sweep engine and the
 * serve-side cell scheduler share; ExperimentContext keeps its own
 * single-threaded incremental variant (PairState) for the serial path.
 */
class CellPairState
{
  public:
    CellPairState(const SimOptions &options, std::string workload,
                  ScenarioKind scenario);

    const std::string &workload() const { return workload_; }
    ScenarioKind scenario() const { return scenario_; }
    const WorkloadSpec &spec() const { return spec_; }
    const MemoryMap &map() const { return map_; }

    /** Distance Algorithm 1 selects for this pair's mapping. */
    std::uint64_t dynamicDistance() const { return dynamic_distance_; }

    /** All-4KB table (Base / Cluster); built on first call. */
    const PageTable &plainTable() const;

    /** THP table (THP / Cluster-2MB / RMM); built on first call. */
    const PageTable &thpTable() const;

  private:
    std::string workload_;
    ScenarioKind scenario_ = ScenarioKind::Demand;
    WorkloadSpec spec_;
    MemoryMap map_;
    std::uint64_t dynamic_distance_ = 0;
    mutable std::once_flag plain_once_;
    mutable std::optional<PageTable> plain_table_;
    mutable std::once_flag thp_once_;
    mutable std::optional<PageTable> thp_table_;
};

/**
 * Content address of one experiment cell: the canonical FNV-1a digest
 * of every input that shapes its SimResult (cellKeyFor). Equal keys
 * mean byte-identical results; a strong type so a key can never be
 * confused with a raw counter or address.
 */
class CellKey
{
  public:
    constexpr CellKey() = default;
    explicit constexpr CellKey(std::uint64_t digest) : digest_(digest) {}

    constexpr std::uint64_t raw() const { return digest_; }

    friend constexpr bool operator==(const CellKey &, const CellKey &) =
        default;
    friend constexpr auto operator<=>(const CellKey &, const CellKey &) =
        default;

  private:
    std::uint64_t digest_ = 0;
};

/** The coordinates of one cell, as ExperimentContext::run takes them. */
struct CellSpec
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::Demand;
    Scheme scheme = Scheme::Base;
    /** Anchor distance override; only meaningful for Scheme::Anchor. */
    std::optional<std::uint64_t> distance_override;
};

/**
 * Content hash of a trace-driven workload's trace file; 0 for synthetic
 * workloads (their streams are fully determined by name + options).
 * Fatal when the named trace file cannot be read — a cell key computed
 * from a missing input would silently alias.
 */
std::uint64_t traceContentHash(const std::string &workload);

/**
 * Canonical content address of the cell (@p options, @p spec): a fixed
 * field sequence folded through FNV-1a (see DESIGN.md section 13).
 * Hashes exactly the inputs that shape the result — workload, scenario,
 * scheme, the effective distance override, the trace content hash for
 * trace-driven workloads, the accesses/seed/footprint_scale/shards/
 * shard_warmup knobs, and every MmuConfig field. Deliberately excluded:
 * threads, cache_pairs and translate_mode, which the test suite pins to
 * byte-identical results. A stray distance_override on a non-Anchor
 * scheme is canonicalized away (run() ignores it there).
 */
CellKey cellKeyFor(const SimOptions &options, const CellSpec &spec,
                   std::uint64_t trace_content_hash = 0);

/**
 * A persistent (or otherwise external) cache of finished cells, keyed
 * by content address. ExperimentContext consults one when attached via
 * setResultCache(); serve/result_store.hh implements it on disk.
 */
class ResultCache
{
  public:
    virtual ~ResultCache() = default;

    /** The stored result for @p key, if any. */
    virtual std::optional<SimResult> lookup(CellKey key) = 0;

    /** Record @p result as the cell @p key's value. */
    virtual void store(CellKey key, const SimResult &result) = 0;
};

/** Runs experiment cells with caching of expensive per-pair state. */
class ExperimentContext
{
  public:
    explicit ExperimentContext(SimOptions options = SimOptions::fromEnv());
    ~ExperimentContext();

    ExperimentContext(const ExperimentContext &) = delete;
    ExperimentContext &operator=(const ExperimentContext &) = delete;

    /**
     * Run one cell. For Scheme::Anchor the distance comes from the
     * dynamic selection algorithm unless @p distance_override is given;
     * for Scheme::AnchorIdeal every candidate distance is swept and the
     * best (fewest misses) run is returned.
     */
    SimResult run(const std::string &workload, ScenarioKind scenario,
                  Scheme scheme,
                  std::optional<std::uint64_t> distance_override = {});

    /**
     * Attach (or detach, with nullptr) an external result cache. Borrowed:
     * @p cache must outlive the context or the next setResultCache().
     * While attached, run() answers from the cache when it holds the
     * cell's key and stores every freshly computed result back.
     */
    void setResultCache(ResultCache *cache) { result_cache_ = cache; }

    /**
     * The content address run() would use for this cell under the
     * context's options. Trace content hashes are memoized per workload
     * name, so sweeps over trace-driven workloads hash each file once.
     */
    CellKey cellKey(const std::string &workload, ScenarioKind scenario,
                    Scheme scheme,
                    std::optional<std::uint64_t> distance_override = {});

    /** Distance Algorithm 1 selects for this workload/scenario pair. */
    std::uint64_t dynamicDistance(const std::string &workload,
                                  ScenarioKind scenario);

    /** The (cached) mapping for a pair, for inspection. */
    const MemoryMap &mapping(const std::string &workload,
                             ScenarioKind scenario);

    const SimOptions &options() const { return options_; }

    /** Pair-cache effectiveness counters for the sweep summary. */
    struct CacheCounters
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        /** Attached-ResultCache consultations by run(). */
        std::uint64_t result_lookups = 0;
        /** ... of which answered without simulating. */
        std::uint64_t result_hits = 0;

        double hitRate() const
        {
            return lookups ? static_cast<double>(hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
        }
    };

    const CacheCounters &cacheCounters() const { return counters_; }

    /** Current pair-cache capacity (after any run-shape sizing). */
    std::size_t cacheCapacity() const { return options_.cache_pairs; }

    /**
     * Fit the pair cache to a sweep that touches @p distinct_pairs
     * distinct (workload, scenario) pairs, so revisiting schemes of a
     * pair always hits. An explicit ANCHORTLB_CACHE_PAIRS acts as an
     * upper clamp (the user is budgeting memory); without it the
     * capacity grows to the run shape and never shrinks below the
     * built-in default.
     */
    void sizeCacheForPairs(std::size_t distinct_pairs);

    /** Drop all cached state (frees page-table memory). */
    void clearCache();

  private:
    struct PairState;

    SimOptions options_;
    /** LRU order: front = coldest, back = most recently used. */
    std::deque<std::unique_ptr<PairState>> cache_;
    CacheCounters counters_;
    ResultCache *result_cache_ = nullptr; //!< borrowed, may be null
    /** Per-workload trace content hashes (files hashed once). */
    std::unordered_map<std::string, std::uint64_t> trace_hashes_;

    std::uint64_t traceHashFor(const std::string &workload);
    PairState &pairState(const std::string &workload,
                         ScenarioKind scenario);
    SimResult runScheme(PairState &state, Scheme scheme,
                        std::uint64_t anchor_distance);
    SimResult runIdealSweep(PairState &state);
};

/**
 * Geometric-free mean helper used by the figure benches: the paper
 * reports arithmetic means of relative misses; relative(a, base) guards
 * the base==0 corner (no misses anywhere -> ratio 1).
 */
double relativeMisses(std::uint64_t scheme_misses,
                      std::uint64_t base_misses);

} // namespace atlb

#endif // ANCHORTLB_SIM_EXPERIMENT_HH
