/**
 * @file
 * The translation schemes compared in the paper's evaluation.
 */

#ifndef ANCHORTLB_SIM_SCHEME_HH
#define ANCHORTLB_SIM_SCHEME_HH

#include <string>

namespace atlb
{

/** Schemes of paper Figures 7-11 (plus the static-ideal anchor oracle). */
enum class Scheme
{
    Base,       //!< 4KB-only two-level TLB
    Thp,        //!< baseline hardware + transparent huge pages
    Cluster,    //!< HW coalescing, 4KB only (CoLT/cluster TLB)
    Cluster2MB, //!< HW coalescing + 2MB pages in the regular partition
    Rmm,        //!< redundant memory mappings (range TLB)
    Anchor,     //!< hybrid coalescing, dynamic distance (paper "Dynamic")
    AnchorIdeal //!< hybrid coalescing, oracle distance ("Static Ideal")
};

/** All schemes in paper legend order. */
constexpr Scheme allSchemes[] = {
    Scheme::Base,    Scheme::Thp, Scheme::Cluster, Scheme::Cluster2MB,
    Scheme::Rmm,     Scheme::Anchor, Scheme::AnchorIdeal,
};

/** Paper legend name ("Base", "THP", "Cluster", ...). */
inline const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base: return "Base";
      case Scheme::Thp: return "THP";
      case Scheme::Cluster: return "Cluster";
      case Scheme::Cluster2MB: return "Cluster-2MB";
      case Scheme::Rmm: return "RMM";
      case Scheme::Anchor: return "Dynamic";
      case Scheme::AnchorIdeal: return "Static Ideal";
    }
    return "?";
}

} // namespace atlb

#endif // ANCHORTLB_SIM_SCHEME_HH
