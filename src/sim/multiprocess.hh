/**
 * @file
 * Multi-process simulation: weighted round-robin scheduling with either
 * TLB flushes or ASID-tagged retention on context switches.
 *
 * The paper's OS discussion (Section 3.3) leans on the fact that the
 * native x86 Linux kernel flushes the TLB on context switches, which is
 * what makes whole-TLB invalidation for anchor-distance changes cheap
 * in comparison. This module makes that cost-benefit analysis runnable
 * from both sides: several processes share one MMU, and each context
 * switch either flushes (SwitchPolicy::Flush, the paper's x86
 * assumption) or retains every entry under its owner's ASID tag
 * (SwitchPolicy::Asid). Retention re-warms instantly but pays for it
 * when mappings change: a remapped address space whose translations
 * survive in the TLB needs an explicit IPI shootdown round, charged
 * through the MmuConfig shootdown cost model. Coverage-oriented schemes
 * refill entire regions with a handful of walks, so their advantage
 * *grows* as the switch quantum shrinks — and shrinks back when
 * retention makes switches free for everyone.
 */

#ifndef ANCHORTLB_SIM_MULTIPROCESS_HH
#define ANCHORTLB_SIM_MULTIPROCESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mmu/mmu.hh"
#include "os/scenario.hh"
#include "sim/experiment.hh"
#include "sim/scheme.hh"

namespace atlb
{

/** One scheduled process. */
struct ProcessSpec
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::MedContig;
};

/** Knobs for a multi-process run. */
struct MultiProcessOptions
{
    /** Total accesses across all processes. */
    std::uint64_t total_accesses = 1'000'000;
    /** Accesses executed per scheduling quantum (weight 1). */
    std::uint64_t quantum_accesses = 50'000;
    /**
     * Scheduling weights, one per process: process i runs
     * quantum_accesses * weights[i] accesses per turn. Empty means
     * every weight is 1 (plain round-robin); otherwise the size must
     * match the process list and every weight must be positive.
     */
    std::vector<unsigned> weights;
    /** Flush-on-switch (default) or ASID-tagged retention. */
    SwitchPolicy policy = SwitchPolicy::Flush;
    /**
     * Remap churn period, in quantum boundaries; 0 disables. Every
     * remap_every_quanta boundaries, the incoming process's mapping is
     * rebuilt (its OS moved its pages) before it runs. Under the flush
     * policy the switch flush disposes of the stale translations for
     * free; under ASID retention the stale entries must be shot down
     * explicitly, which invalidates the process's ASID and charges one
     * shootdown round to the stats.
     */
    std::uint64_t remap_every_quanta = 0;
    /**
     * Cores sharing each address space besides the initiator: the
     * responder count of every shootdown round (see shootdownCost).
     */
    unsigned shared_cores = 1;
    std::uint64_t seed = 42;
    double footprint_scale = 1.0;
    MmuConfig mmu;
};

/** Per-process and aggregate outcome of a multi-process run. */
struct MultiProcessResult
{
    struct PerProcess
    {
        std::string workload;
        std::uint64_t accesses = 0;
        std::uint64_t anchor_distance = 0;
        /** ASID the process runs under (index + 1; 0 never used). */
        std::uint64_t asid = 0;
        /**
         * This process's slice of the aggregate stats: every counter
         * increment of the run lands in exactly one process's window
         * (boundary work — remap shootdowns, the switch itself — is
         * attributed to the incoming process), so the per-process
         * blocks sum to MultiProcessResult::stats exactly.
         */
        MmuStats stats;
        /**
         * FNV-1a hash over the process's translated PPN stream, in
         * access order. Two runs that schedule the same accesses must
         * produce the same hash no matter the switch policy — retained
         * entries may only ever change *where* a translation is found,
         * never what it translates to.
         */
        std::uint64_t ppn_hash = 14695981039346656037ULL;
    };

    std::vector<PerProcess> processes;
    std::uint64_t context_switches = 0;
    /** Remap-churn epochs that occurred (see remap_every_quanta). */
    std::uint64_t remap_epochs = 0;
    MmuStats stats; //!< aggregate over the whole run

    double
    missesPerKiloAccess() const
    {
        return stats.accesses
                   ? 1000.0 * static_cast<double>(stats.page_walks) /
                         static_cast<double>(stats.accesses)
                   : 0.0;
    }

    /** Fraction of accesses served without a page walk. */
    double
    hitRate() const
    {
        return stats.accesses
                   ? 1.0 - static_cast<double>(stats.page_walks) /
                               static_cast<double>(stats.accesses)
                   : 0.0;
    }

    /**
     * Translation CPI with the shootdown tax folded in: (translation
     * cycles + shootdown cycles) / instructions, at @p mem_per_instr
     * data accesses per instruction. This is the number the switch
     * policies trade against each other — retention removes re-warm
     * walks from the first term and adds IPI rounds to the second.
     */
    double
    chargedCpi(double mem_per_instr = 0.33) const
    {
        if (stats.accesses == 0 || mem_per_instr <= 0.0)
            return 0.0;
        const double instructions =
            static_cast<double>(stats.accesses) / mem_per_instr;
        return (static_cast<double>(stats.translation_cycles) +
                static_cast<double>(stats.shootdown_cycles)) /
               instructions;
    }
};

/**
 * Run @p processes round-robin under @p scheme.
 *
 * Every process gets its own mapping, page table and (for the anchor
 * schemes) dynamically selected distance; the shared MMU is context-
 * switched at each quantum boundary under options.policy. Process i
 * runs as ASID i + 1 so retained entries never alias across address
 * spaces. The access streams are derived only from the seed and the
 * schedule, never from the policy, so flush and ASID runs of the same
 * options translate identical access sequences (the differential
 * harness in tests/sim/test_switch_policy_differential.cc pins this).
 */
MultiProcessResult runMultiProcess(Scheme scheme,
                                   const std::vector<ProcessSpec> &processes,
                                   const MultiProcessOptions &options);

} // namespace atlb

#endif // ANCHORTLB_SIM_MULTIPROCESS_HH
