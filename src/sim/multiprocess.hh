/**
 * @file
 * Multi-process simulation: round-robin scheduling with TLB flushes on
 * context switches.
 *
 * The paper's OS discussion (Section 3.3) leans on the fact that the
 * native x86 Linux kernel flushes the TLB on context switches, which is
 * what makes whole-TLB invalidation for anchor-distance changes cheap
 * in comparison. This module makes that cost-benefit analysis runnable:
 * several processes share one MMU, each context switch loads the next
 * process's page table (and per-process anchor distance / range /
 * region state) and flushes, and we measure how quickly each scheme
 * re-warms. Coverage-oriented schemes refill entire regions with a
 * handful of walks, so their advantage *grows* as the switch quantum
 * shrinks.
 */

#ifndef ANCHORTLB_SIM_MULTIPROCESS_HH
#define ANCHORTLB_SIM_MULTIPROCESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mmu/mmu.hh"
#include "os/scenario.hh"
#include "sim/experiment.hh"
#include "sim/scheme.hh"

namespace atlb
{

/** One scheduled process. */
struct ProcessSpec
{
    std::string workload;
    ScenarioKind scenario = ScenarioKind::MedContig;
};

/** Knobs for a multi-process run. */
struct MultiProcessOptions
{
    /** Total accesses across all processes. */
    std::uint64_t total_accesses = 1'000'000;
    /** Accesses executed per scheduling quantum. */
    std::uint64_t quantum_accesses = 50'000;
    std::uint64_t seed = 42;
    double footprint_scale = 1.0;
    MmuConfig mmu;
};

/** Per-process and aggregate outcome of a multi-process run. */
struct MultiProcessResult
{
    struct PerProcess
    {
        std::string workload;
        std::uint64_t accesses = 0;
        std::uint64_t anchor_distance = 0;
    };

    std::vector<PerProcess> processes;
    std::uint64_t context_switches = 0;
    MmuStats stats; //!< aggregate over the whole run

    double
    missesPerKiloAccess() const
    {
        return stats.accesses
                   ? 1000.0 * static_cast<double>(stats.page_walks) /
                         static_cast<double>(stats.accesses)
                   : 0.0;
    }
};

/**
 * Run @p processes round-robin under @p scheme.
 *
 * Every process gets its own mapping, page table and (for the anchor
 * schemes) dynamically selected distance; the shared MMU is context-
 * switched at each quantum boundary.
 */
MultiProcessResult runMultiProcess(Scheme scheme,
                                   const std::vector<ProcessSpec> &processes,
                                   const MultiProcessOptions &options);

} // namespace atlb

#endif // ANCHORTLB_SIM_MULTIPROCESS_HH
