#include "simulator.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace atlb
{

SimResult &
SimResult::merge(const SimResult &other)
{
    // Identity element: an empty partial adopts the other side whole,
    // so std::accumulate over shards needs no special first step.
    if (scheme.empty() && stats.accesses == 0) {
        *this = other;
        return *this;
    }
    if (other.scheme.empty() && other.stats.accesses == 0)
        return *this;
    ANCHOR_DCHECK(workload == other.workload &&
                      scenario == other.scenario &&
                      scheme == other.scheme &&
                      anchor_distance == other.anchor_distance,
                  "merging partials of different cells");
    stats += other.stats;
    instructions += other.instructions;
    l2_hit_cycles += other.l2_hit_cycles;
    coalesced_cycles += other.coalesced_cycles;
    walk_cycles += other.walk_cycles;
    return *this;
}

double
SimResult::regularHitFraction() const
{
    const std::uint64_t l2 = stats.l2Accesses();
    return l2 ? static_cast<double>(stats.l2_regular_hits) /
                    static_cast<double>(l2)
              : 0.0;
}

double
SimResult::coalescedHitFraction() const
{
    const std::uint64_t l2 = stats.l2Accesses();
    return l2 ? static_cast<double>(stats.coalesced_hits) /
                    static_cast<double>(l2)
              : 0.0;
}

double
SimResult::l2MissFraction() const
{
    const std::uint64_t l2 = stats.l2Accesses();
    return l2 ? static_cast<double>(stats.page_walks) /
                    static_cast<double>(l2)
              : 0.0;
}

SimResult
runSimulation(Mmu &mmu, TraceSource &trace, double mem_per_instr,
              TranslateMode mode, BatchStats *batch_stats)
{
    ATLB_ASSERT(mem_per_instr > 0.0, "mem_per_instr must be positive");
    // Pull accesses in chunks: one virtual fill() per batch instead of
    // one virtual next() per access keeps the generator's state hot and
    // lets the translate loop run branch-predictably. Batch mode then
    // hands the whole buffer to the scheme's devirtualized kernel —
    // one virtual translateBatch call per 1024 accesses.
    constexpr std::size_t batch = 1024;
    MemAccess buffer[batch];
    if (mode == TranslateMode::Batch) {
        BatchStats bs;
        while (const std::size_t n = trace.fill(buffer, batch))
            mmu.translateBatch(buffer, n, bs);
        if (batch_stats)
            *batch_stats += bs;
    } else {
        while (const std::size_t n = trace.fill(buffer, batch)) {
            for (std::size_t i = 0; i < n; ++i)
                mmu.translate(buffer[i].vaddr);
        }
    }

    SimResult res;
    res.scheme = mmu.name();
    res.stats = mmu.stats();
    res.instructions =
        static_cast<double>(res.stats.accesses) / mem_per_instr;
    // Attribute cycles per bucket; the walk bucket absorbs the rest of
    // the exact total (walks include the preceding lookup latency).
    const MmuConfig &cfg = mmu.config();
    res.l2_hit_cycles = res.stats.l2_regular_hits * cfg.l2_hit_cycles;
    res.coalesced_cycles =
        res.stats.coalesced_hits * cfg.coalesced_hit_cycles;
    ATLB_ASSERT(res.stats.translation_cycles >=
                    res.l2_hit_cycles + res.coalesced_cycles,
                "cycle attribution underflow");
    res.walk_cycles = res.stats.translation_cycles - res.l2_hit_cycles -
                      res.coalesced_cycles;
    return res;
}

} // namespace atlb
