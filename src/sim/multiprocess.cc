#include "multiprocess.hh"

#include <functional>
#include <memory>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/region_partitioner.hh"
#include "os/table_builder.hh"
#include "trace/workload.hh"

namespace atlb
{

namespace
{

/** Everything owned per simulated process. */
struct ProcessState
{
    WorkloadSpec spec;
    MemoryMap map;
    PageTable table;
    AnchorDist anchor_distance{};
    RegionPartition partition;
    std::unique_ptr<PatternTrace> trace;

    ProcessContext
    context() const
    {
        ProcessContext ctx;
        ctx.table = &table;
        ctx.map = &map;
        ctx.anchor_distance = anchor_distance;
        ctx.partition = &partition;
        return ctx;
    }
};

ProcessState
buildProcess(Scheme scheme, const ProcessSpec &p,
             const MultiProcessOptions &options, std::uint64_t index)
{
    ProcessState state;
    state.spec = findWorkload(p.workload);
    state.spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(state.spec.footprint_bytes) *
        options.footprint_scale);
    if (state.spec.footprint_bytes < pageBytes)
        state.spec.footprint_bytes = pageBytes;

    ScenarioParams params;
    params.footprint_pages = state.spec.footprintPages();
    params.seed = options.seed + 1000 * (index + 1);
    params.demand_run_pages = state.spec.demand_run_pages;
    params.eager_run_pages = state.spec.eager_run_pages;
    params.demand_churn = state.spec.demand_churn;
    params.map_tail_run_pages = state.spec.map_tail_run_pages;
    params.map_tail_fraction = state.spec.map_tail_fraction;
    state.map = buildScenario(p.scenario, params);

    switch (scheme) {
      case Scheme::Base:
      case Scheme::Cluster:
        state.table = buildPageTable(state.map, false);
        break;
      case Scheme::Thp:
      case Scheme::Cluster2MB:
      case Scheme::Rmm:
        state.table = buildPageTable(state.map, true);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        state.anchor_distance = AnchorDist::fromPages(
            selectAnchorDistance(state.map.contiguityHistogram())
                .distance);
        state.table =
            buildAnchorPageTable(state.map, state.anchor_distance);
        break;
    }
    // The region partition is cheap; compute it for completeness (only
    // the region scheme consumes it).
    state.partition = partitionAnchorRegions(state.map);

    state.trace = std::make_unique<PatternTrace>(
        state.spec, vaOf(params.va_base),
        ~0ULL, // effectively unbounded; the scheduler decides the length
        options.seed * 977 + index);
    return state;
}

std::unique_ptr<Mmu>
buildMmu(Scheme scheme, const MultiProcessOptions &options,
         const ProcessState &first)
{
    const MmuConfig &cfg = options.mmu;
    switch (scheme) {
      case Scheme::Base:
        return std::make_unique<BaselineMmu>(cfg, first.table, "base");
      case Scheme::Thp:
        return std::make_unique<BaselineMmu>(cfg, first.table, "thp");
      case Scheme::Cluster:
        return std::make_unique<ClusterMmu>(cfg, first.table, false);
      case Scheme::Cluster2MB:
        return std::make_unique<ClusterMmu>(cfg, first.table, true);
      case Scheme::Rmm:
        return std::make_unique<RmmMmu>(cfg, first.table, first.map);
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        return std::make_unique<AnchorMmu>(cfg, first.table,
                                           first.anchor_distance);
    }
    ATLB_PANIC("unknown scheme");
}

} // namespace

MultiProcessResult
runMultiProcess(Scheme scheme, const std::vector<ProcessSpec> &processes,
                const MultiProcessOptions &options)
{
    ATLB_ASSERT(!processes.empty(), "no processes to schedule");
    ATLB_ASSERT(options.quantum_accesses > 0, "zero quantum");

    std::vector<ProcessState> states;
    states.reserve(processes.size());
    for (std::size_t i = 0; i < processes.size(); ++i)
        states.push_back(
            buildProcess(scheme, processes[i], options, i));

    std::unique_ptr<Mmu> mmu = buildMmu(scheme, options, states[0]);

    MultiProcessResult result;
    result.processes.resize(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        result.processes[i].workload = states[i].spec.name;
        result.processes[i].anchor_distance =
            states[i].anchor_distance.pages();
    }

    std::uint64_t executed = 0;
    std::size_t current = 0;
    bool first_quantum = true;
    while (executed < options.total_accesses) {
        if (!first_quantum) {
            current = (current + 1) % states.size();
            if (states.size() > 1) {
                mmu->switchProcess(states[current].context());
                ++result.context_switches;
            }
        }
        first_quantum = false;
        const std::uint64_t quantum = std::min(
            options.quantum_accesses, options.total_accesses - executed);
        MemAccess access;
        for (std::uint64_t i = 0; i < quantum; ++i) {
            if (!states[current].trace->next(access))
                break;
            mmu->translate(access.vaddr);
            ++result.processes[current].accesses;
        }
        executed += quantum;
    }
    result.stats = mmu->stats();
    return result;
}

} // namespace atlb
