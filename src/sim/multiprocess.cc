#include "multiprocess.hh"

#include <functional>
#include <memory>

#include "common/logging.hh"
#include "mmu/anchor_mmu.hh"
#include "mmu/baseline_mmu.hh"
#include "mmu/cluster_mmu.hh"
#include "mmu/region_anchor_mmu.hh"
#include "mmu/rmm_mmu.hh"
#include "os/distance_selector.hh"
#include "os/region_partitioner.hh"
#include "os/table_builder.hh"
#include "trace/workload.hh"

namespace atlb
{

namespace
{

/** Everything owned per simulated process. */
struct ProcessState
{
    WorkloadSpec spec;
    ScenarioKind scenario = ScenarioKind::MedContig;
    ScenarioParams params;
    Asid asid{};
    MemoryMap map;
    PageTable table;
    AnchorDist anchor_distance{};
    RegionPartition partition;
    std::unique_ptr<PatternTrace> trace;

    ProcessContext
    context() const
    {
        ProcessContext ctx;
        ctx.table = &table;
        ctx.map = &map;
        ctx.anchor_distance = anchor_distance;
        ctx.partition = &partition;
        ctx.asid = asid;
        return ctx;
    }
};

/**
 * (Re)build the process's mapping and derived OS state from
 * state.params. Called once at construction and again at every remap
 * epoch, with the scenario seed bumped in between; the trace is left
 * alone — the workload's access stream is continuous across remaps
 * (that's the point of virtual memory).
 */
void
buildMapping(ProcessState &state, Scheme scheme)
{
    state.map = buildScenario(state.scenario, state.params);

    switch (scheme) {
      case Scheme::Base:
      case Scheme::Cluster:
        state.table = buildPageTable(state.map, false);
        break;
      case Scheme::Thp:
      case Scheme::Cluster2MB:
      case Scheme::Rmm:
        state.table = buildPageTable(state.map, true);
        break;
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        state.anchor_distance = AnchorDist::fromPages(
            selectAnchorDistance(state.map.contiguityHistogram())
                .distance);
        state.table =
            buildAnchorPageTable(state.map, state.anchor_distance);
        break;
    }
    // The region partition is cheap; compute it for completeness (only
    // the region scheme consumes it).
    state.partition = partitionAnchorRegions(state.map);
}

ProcessState
buildProcess(Scheme scheme, const ProcessSpec &p,
             const MultiProcessOptions &options, std::uint64_t index)
{
    ProcessState state;
    state.spec = findWorkload(p.workload);
    state.scenario = p.scenario;
    state.asid = Asid{index + 1};
    state.spec.footprint_bytes = static_cast<std::uint64_t>(
        static_cast<double>(state.spec.footprint_bytes) *
        options.footprint_scale);
    if (state.spec.footprint_bytes < pageBytes)
        state.spec.footprint_bytes = pageBytes;

    state.params.footprint_pages = state.spec.footprintPages();
    state.params.seed = options.seed + 1000 * (index + 1);
    state.params.demand_run_pages = state.spec.demand_run_pages;
    state.params.eager_run_pages = state.spec.eager_run_pages;
    state.params.demand_churn = state.spec.demand_churn;
    state.params.map_tail_run_pages = state.spec.map_tail_run_pages;
    state.params.map_tail_fraction = state.spec.map_tail_fraction;
    buildMapping(state, scheme);

    state.trace = std::make_unique<PatternTrace>(
        state.spec, vaOf(state.params.va_base),
        ~0ULL, // effectively unbounded; the scheduler decides the length
        options.seed * 977 + index);
    return state;
}

std::unique_ptr<Mmu>
buildMmu(Scheme scheme, const MultiProcessOptions &options,
         const ProcessState &first)
{
    const MmuConfig &cfg = options.mmu;
    switch (scheme) {
      case Scheme::Base:
        return std::make_unique<BaselineMmu>(cfg, first.table, "base");
      case Scheme::Thp:
        return std::make_unique<BaselineMmu>(cfg, first.table, "thp");
      case Scheme::Cluster:
        return std::make_unique<ClusterMmu>(cfg, first.table, false);
      case Scheme::Cluster2MB:
        return std::make_unique<ClusterMmu>(cfg, first.table, true);
      case Scheme::Rmm:
        return std::make_unique<RmmMmu>(cfg, first.table, first.map);
      case Scheme::Anchor:
      case Scheme::AnchorIdeal:
        return std::make_unique<AnchorMmu>(cfg, first.table,
                                           first.anchor_distance);
    }
    ATLB_PANIC("unknown scheme");
}

/** Counter-by-counter difference of two snapshots of the same MMU. */
MmuStats
statsDelta(const MmuStats &after, const MmuStats &before)
{
    MmuStats d;
    d.accesses = after.accesses - before.accesses;
    d.l1_hits = after.l1_hits - before.l1_hits;
    d.l2_regular_hits = after.l2_regular_hits - before.l2_regular_hits;
    d.coalesced_hits = after.coalesced_hits - before.coalesced_hits;
    d.page_walks = after.page_walks - before.page_walks;
    d.translation_cycles =
        after.translation_cycles - before.translation_cycles;
    d.shootdowns = after.shootdowns - before.shootdowns;
    d.shootdown_cycles = after.shootdown_cycles - before.shootdown_cycles;
    return d;
}

} // namespace

MultiProcessResult
runMultiProcess(Scheme scheme, const std::vector<ProcessSpec> &processes,
                const MultiProcessOptions &options)
{
    ATLB_ASSERT(!processes.empty(), "no processes to schedule");
    ATLB_ASSERT(options.quantum_accesses > 0, "zero quantum");
    ATLB_ASSERT(options.weights.empty() ||
                    options.weights.size() == processes.size(),
                "weight list size {} does not match {} processes",
                options.weights.size(), processes.size());
    for (const unsigned w : options.weights)
        ATLB_ASSERT(w > 0, "zero scheduling weight");

    std::vector<ProcessState> states;
    states.reserve(processes.size());
    for (std::size_t i = 0; i < processes.size(); ++i)
        states.push_back(
            buildProcess(scheme, processes[i], options, i));

    std::unique_ptr<Mmu> mmu = buildMmu(scheme, options, states[0]);
    mmu->setSwitchPolicy(options.policy);
    // Load process 0 before its first quantum — uncounted, it's not a
    // switch. Under ASID retention this is what tags the very first
    // fills; under the flush policy it flushes an empty TLB.
    mmu->switchProcess(states[0].context());

    MultiProcessResult result;
    result.processes.resize(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        result.processes[i].workload = states[i].spec.name;
        result.processes[i].asid = states[i].asid.raw();
    }

    const auto weightOf = [&options](std::size_t i) {
        return options.weights.empty() ? 1u : options.weights[i];
    };

    std::uint64_t executed = 0;
    std::size_t current = 0;
    std::uint64_t boundaries = 0;
    bool first_quantum = true;
    while (executed < options.total_accesses) {
        // Snapshot spans the boundary work AND the quantum, so every
        // counter increment of the run lands in exactly one process's
        // window and the per-process blocks sum to the aggregate.
        const MmuStats before = mmu->stats();
        if (!first_quantum) {
            current = (current + 1) % states.size();
            ++boundaries;
            bool remapped = false;
            if (options.remap_every_quanta != 0 &&
                boundaries % options.remap_every_quanta == 0) {
                // The incoming process's OS moved its pages while it
                // was descheduled: rebuild its mapping, keeping the
                // access stream.
                states[current].params.seed += 7919;
                buildMapping(states[current], scheme);
                ++result.remap_epochs;
                remapped = true;
                if (options.policy == SwitchPolicy::Asid) {
                    // Retained translations of the remapped space are
                    // stale; shoot them down and charge the IPI round.
                    // The flush policy gets this for free from the
                    // switch flush below.
                    mmu->invalidateAsid(states[current].asid);
                    mmu->chargeShootdown(
                        options.shared_cores,
                        states[current].params.footprint_pages);
                }
            }
            if (states.size() > 1 || remapped) {
                mmu->switchProcess(states[current].context());
                if (states.size() > 1)
                    ++result.context_switches;
            }
        }
        first_quantum = false;
        const std::uint64_t turn = std::min(
            options.quantum_accesses * weightOf(current),
            options.total_accesses - executed);
        MultiProcessResult::PerProcess &proc = result.processes[current];
        MemAccess access;
        for (std::uint64_t i = 0; i < turn; ++i) {
            if (!states[current].trace->next(access))
                break;
            const TranslationResult r = mmu->translate(access.vaddr);
            proc.ppn_hash =
                (proc.ppn_hash ^ r.ppn.raw()) * 1099511628211ULL;
            ++proc.accesses;
        }
        executed += turn;
        proc.stats += statsDelta(mmu->stats(), before);
    }
    // Record distances last: remap epochs may have re-selected them.
    for (std::size_t i = 0; i < states.size(); ++i)
        result.processes[i].anchor_distance =
            states[i].anchor_distance.pages();
    result.stats = mmu->stats();
    return result;
}

} // namespace atlb
