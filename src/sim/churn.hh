/**
 * @file
 * Mapping-churn simulation: the OS reorganises a process's physical
 * memory while it runs.
 *
 * The paper's dynamic-distance machinery exists because mappings change
 * (Section 4): compaction creates contiguity, pressure destroys it, and
 * each change ends in a TLB shootdown. This module runs a workload
 * through a sequence of mapping epochs; at each boundary the OS
 * installs a new mapping (same VA space, new physical layout), re-runs
 * the epoch-based distance controller, re-sweeps anchors when the
 * distance changed, and flushes the TLBs. It measures what the paper
 * asserts qualitatively: re-selection is rare under stable allocation,
 * reacts to drastic change, and the post-shootdown warmup is far
 * cheaper for coverage-based schemes than for the baseline.
 */

#ifndef ANCHORTLB_SIM_CHURN_HH
#define ANCHORTLB_SIM_CHURN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mmu/mmu.hh"
#include "os/scenario.hh"
#include "sim/scheme.hh"

namespace atlb
{

/** One epoch's mapping regime. */
struct ChurnEpoch
{
    ScenarioKind scenario = ScenarioKind::MedContig;
    /** Accesses executed in this epoch. */
    std::uint64_t accesses = 200'000;
    /** Fresh seed => new physical layout even for the same scenario. */
    std::uint64_t seed = 1;
};

/** Knobs for a churn run. */
struct ChurnOptions
{
    std::string workload = "canneal";
    double footprint_scale = 1.0;
    std::uint64_t seed = 42;
    MmuConfig mmu;
    /** Hysteresis threshold of the distance controller. */
    double distance_threshold = 0.1;
};

/** Outcome of one churn run. */
struct ChurnResult
{
    struct EpochStats
    {
        std::string scenario;
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t anchor_distance = 0; //!< 0 for non-anchor schemes
        bool distance_changed = false;
        /** Page-table entries touched by the re-sweep (0 if none). */
        std::uint64_t sweep_touched = 0;
    };

    std::vector<EpochStats> epochs;
    std::uint64_t distance_changes = 0;
    MmuStats stats;
};

/**
 * Run @p epochs of mapping churn under @p scheme. Each epoch boundary
 * rebuilds the mapping/page table, updates scheme state and flushes —
 * never leaving a stale translation behind (verified by tests).
 */
ChurnResult runMappingChurn(Scheme scheme,
                            const std::vector<ChurnEpoch> &epochs,
                            const ChurnOptions &options);

} // namespace atlb

#endif // ANCHORTLB_SIM_CHURN_HH
