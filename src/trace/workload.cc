#include "workload.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

PatternTrace::PatternTrace(const WorkloadSpec &spec, VirtAddr va_base,
                           std::uint64_t num_accesses, std::uint64_t seed)
    : spec_(spec), va_base_(va_base), num_accesses_(num_accesses),
      seed_(seed), pages_(spec.footprintPages()), rng_(seed)
{
    ATLB_ASSERT(pages_ > 0, "workload '{}' has an empty footprint",
                spec.name);
    ATLB_ASSERT(!spec_.phases.empty(), "workload '{}' has no phases",
                spec.name);
    reset();
}

void
PatternTrace::reset()
{
    rng_.reseed(seed_);
    produced_ = 0;
    phase_ = 0;
    burst_left_ = 0;
    last_page_va_ = VirtAddr{};
    seq_pos_ = 0;
    chase_pos_ = 0;
    stencil_pos_ = 0;
    chase_a_ = rng_.next() | 1;
    chase_b_ = rng_.next();
    hot_base_.assign(spec_.phases.size(), 0);
    for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
        const std::uint64_t pinned = spec_.phases[i].hot_base_page;
        hot_base_[i] =
            pinned == ~0ULL ? rng_.nextBounded(pages_) : pinned % pages_;
    }
}

void
PatternTrace::pickPhase()
{
    double total = 0.0;
    for (const auto &p : spec_.phases)
        total += p.weight;
    double x = rng_.nextDouble() * total;
    phase_ = spec_.phases.size() - 1;
    for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
        x -= spec_.phases[i].weight;
        if (x <= 0.0) {
            phase_ = i;
            break;
        }
    }
    burst_left_ = std::max<std::uint64_t>(1, spec_.phases[phase_].burst);
}

std::uint64_t
PatternTrace::hotPages(double fraction) const
{
    const auto pages = static_cast<std::uint64_t>(
        static_cast<double>(pages_) * fraction);
    return std::max<std::uint64_t>(1, pages);
}

VirtAddr
PatternTrace::generate()
{
    if (burst_left_ == 0)
        pickPhase();
    --burst_left_;

    const PatternPhase &p = spec_.phases[phase_];
    const std::uint64_t footprint = spec_.footprint_bytes;
    std::uint64_t offset = 0;

    switch (p.kind) {
      case PatternKind::Sequential:
        offset = seq_pos_;
        seq_pos_ += p.stride_bytes;
        if (seq_pos_ >= footprint)
            seq_pos_ = 0;
        break;
      case PatternKind::Random:
        offset = rng_.nextBounded(pages_) * pageBytes +
                 rng_.nextBounded(pageBytes / 8) * 8;
        break;
      case PatternKind::Zipf: {
        // Popular ranks sit near the region base: hot data structures
        // occupy virtually contiguous memory.
        const std::uint64_t rank = rng_.nextZipf(pages_, p.zipf_theta);
        const std::uint64_t page = (hot_base_[phase_] + rank) % pages_;
        offset = page * pageBytes + rng_.nextBounded(pageBytes / 8) * 8;
        break;
      }
      case PatternKind::PointerChase: {
        const std::uint64_t region = hotPages(p.hot_fraction);
        if (rng_.nextBool(p.jump_prob)) {
            chase_pos_ = rng_.nextBounded(region);
        } else {
            chase_pos_ = (chase_pos_ * chase_a_ + chase_b_) % region;
        }
        const std::uint64_t page =
            (hot_base_[phase_] + chase_pos_) % pages_;
        offset = page * pageBytes + rng_.nextBounded(pageBytes / 8) * 8;
        break;
      }
      case PatternKind::Stencil: {
        const unsigned arrays = std::max(1u, p.stencil_arrays);
        const std::uint64_t array_bytes = footprint / arrays;
        const std::uint64_t elems = std::max<std::uint64_t>(
            1, array_bytes / p.stride_bytes);
        const unsigned array =
            static_cast<unsigned>(stencil_pos_ % arrays);
        const std::uint64_t elem = (stencil_pos_ / arrays) % elems;
        offset = static_cast<std::uint64_t>(array) * array_bytes +
                 elem * p.stride_bytes;
        ++stencil_pos_;
        break;
      }
      case PatternKind::HotCold: {
        const std::uint64_t hot = hotPages(p.hot_fraction);
        std::uint64_t page;
        if (rng_.nextBool(p.hot_prob))
            page = (hot_base_[phase_] + rng_.nextBounded(hot)) % pages_;
        else
            page = rng_.nextBounded(pages_);
        offset = page * pageBytes + rng_.nextBounded(pageBytes / 8) * 8;
        break;
      }
    }
    if (offset >= footprint)
        offset %= footprint;
    return va_base_ + offset;
}

void
PatternTrace::produceOne(MemAccess &out)
{
    if (last_page_va_ != VirtAddr{} && rng_.nextBool(spec_.page_reuse)) {
        out.vaddr = last_page_va_ + rng_.nextBounded(pageBytes / 8) * 8;
    } else {
        out.vaddr = generate();
        last_page_va_ = VirtAddr{out.vaddr.raw() & ~(pageBytes - 1)};
    }
    out.write = rng_.nextBool(spec_.write_fraction);
}

bool
PatternTrace::next(MemAccess &out)
{
    if (produced_ >= num_accesses_)
        return false;
    ++produced_;
    produceOne(out);
    return true;
}

void
PatternTrace::skip(std::uint64_t n)
{
    const std::uint64_t left = num_accesses_ - produced_;
    n = std::min(n, left);
    produced_ += n;
    MemAccess scratch;
    for (std::uint64_t i = 0; i < n; ++i)
        produceOne(scratch);
}

std::size_t
PatternTrace::fill(MemAccess *out, std::size_t max)
{
    const std::uint64_t left = num_accesses_ - produced_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, left));
    produced_ += n;
    for (std::size_t i = 0; i < n; ++i)
        produceOne(out[i]);
    return n;
}

namespace
{

constexpr std::uint64_t operator""_MB(unsigned long long v)
{
    return v * 1024 * 1024;
}
constexpr std::uint64_t operator""_GB(unsigned long long v)
{
    return v * 1024 * 1024 * 1024;
}

/**
 * Build the catalog. Footprints follow the paper (8GB for gups and
 * graph500; SPEC/biobench at reference-input scale).
 *
 * Calibration notes:
 *  - Hot regions (Zipf/PointerChase/HotCold) are sized in the 16-128MB
 *    band: larger than the baseline L2 TLB's 4MB reach (so baseline
 *    misses are plentiful) but coverable by 2MB pages, ranges, or
 *    moderate anchor distances — the regime the paper's evaluation
 *    exercises.
 *  - page_reuse and mem_per_instr set the absolute walk rate per
 *    instruction so baseline translation CPIs land near Figs. 10-11
 *    (graph500 ~12, gups/tigr ~3, most SPEC < 1).
 *  - The demand/eager free-run targets reproduce the per-workload
 *    contiguity spread the paper measured on its real machines (visible
 *    in Table 6): large-array scientific codes allocate big regions
 *    early on a lightly fragmented system; allocation-churny pointer
 *    codes (omnetpp, xalancbmk, soplex, sphinx3) face heavily
 *    fragmented pools.
 */
std::vector<WorkloadSpec>
makeCatalog()
{
    std::vector<WorkloadSpec> cat;
    const auto add = [&cat](WorkloadSpec spec) {
        cat.push_back(std::move(spec));
    };

    // --- SPEC CPU2006 ----------------------------------------------------
    {
        WorkloadSpec w;
        w.name = "astar_biglake";
        w.footprint_bytes = 450_MB;   // region-growing path search
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.90;
        w.phases = {
            // ~32MB active search frontier walked as a pointer graph
            {.kind = PatternKind::PointerChase, .weight = 0.55,
             .burst = 384, .jump_prob = 0.03, .hot_fraction = 0.07},
            {.kind = PatternKind::HotCold, .weight = 0.30, .burst = 256,
             .hot_fraction = 0.10, .hot_prob = 0.85},
            {.kind = PatternKind::Sequential, .weight = 0.15,
             .burst = 512, .stride_bytes = 64},
        };
        w.demand_run_pages = 16;
        w.eager_run_pages = 256;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "cactusADM";
        w.footprint_bytes = 700_MB;   // BSSN stencil grids
        w.mem_per_instr = 0.40;
        w.page_reuse = 0.85;
        w.phases = {
            {.kind = PatternKind::Stencil, .weight = 0.80, .burst = 2048,
             .stencil_arrays = 6, .stride_bytes = 64},
            // boundary/gauge updates touch the grid irregularly
            {.kind = PatternKind::HotCold, .weight = 0.20, .burst = 128,
             .hot_fraction = 0.12, .hot_prob = 0.75},
        };
        w.demand_run_pages = 4096;
        w.eager_run_pages = 8192;
        w.map_tail_run_pages = 256;
        w.map_tail_fraction = 0.20;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "canneal";
        w.footprint_bytes = 1_GB;     // netlist elements, random swaps
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.93;
        w.phases = {
            {.kind = PatternKind::Zipf, .weight = 0.55, .burst = 192,
             .zipf_theta = 0.90},
            {.kind = PatternKind::HotCold, .weight = 0.25, .burst = 128,
             .hot_fraction = 0.04, .hot_prob = 0.90},
            {.kind = PatternKind::Random, .weight = 0.20, .burst = 64},
        };
        w.demand_run_pages = 1024;
        w.eager_run_pages = 512;
        w.map_tail_run_pages = 64;
        w.map_tail_fraction = 0.25;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "GemsFDTD";
        w.footprint_bytes = 850_MB;   // finite-difference time domain
        w.mem_per_instr = 0.45;
        w.page_reuse = 0.90;
        w.phases = {
            {.kind = PatternKind::Stencil, .weight = 0.85, .burst = 4096,
             .stencil_arrays = 8, .stride_bytes = 128},
            {.kind = PatternKind::Sequential, .weight = 0.15,
             .burst = 1024, .stride_bytes = 128},
        };
        w.demand_run_pages = 8192;
        w.eager_run_pages = 8192;
        w.map_tail_run_pages = 256;
        w.map_tail_fraction = 0.20;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "mcf";
        w.footprint_bytes = 1700_MB;  // network simplex arc/node arrays
        w.mem_per_instr = 0.40;
        w.page_reuse = 0.88;
        w.phases = {
            // ~128MB of arcs under active re-pricing
            {.kind = PatternKind::PointerChase, .weight = 0.60,
             .burst = 512, .jump_prob = 0.04, .hot_fraction = 0.075},
            {.kind = PatternKind::Sequential, .weight = 0.25,
             .burst = 1024, .stride_bytes = 64},
            {.kind = PatternKind::Zipf, .weight = 0.15, .burst = 256,
             .zipf_theta = 0.85},
        };
        w.demand_run_pages = 65536;
        w.eager_run_pages = 65536;
        w.map_tail_run_pages = 512;
        w.map_tail_fraction = 0.30;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "milc";
        w.footprint_bytes = 700_MB;   // QCD lattice sweeps
        w.mem_per_instr = 0.40;
        w.page_reuse = 0.90;
        w.phases = {
            {.kind = PatternKind::Stencil, .weight = 0.70, .burst = 2048,
             .stencil_arrays = 4, .stride_bytes = 128},
            {.kind = PatternKind::HotCold, .weight = 0.30, .burst = 192,
             .hot_fraction = 0.09, .hot_prob = 0.80},
        };
        w.demand_run_pages = 16384;
        w.eager_run_pages = 8192;
        w.map_tail_run_pages = 256;
        w.map_tail_fraction = 0.20;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "omnetpp";
        w.footprint_bytes = 170_MB;   // discrete-event heap churn
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.90;
        w.phases = {
            {.kind = PatternKind::Zipf, .weight = 0.50, .burst = 192,
             .zipf_theta = 0.95},
            {.kind = PatternKind::PointerChase, .weight = 0.35,
             .burst = 256, .jump_prob = 0.04, .hot_fraction = 0.15},
            {.kind = PatternKind::HotCold, .weight = 0.15, .burst = 128,
             .hot_fraction = 0.10, .hot_prob = 0.90},
        };
        w.demand_run_pages = 4;
        w.eager_run_pages = 4;
        w.demand_churn = 0.05;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "soplex_pds";
        w.footprint_bytes = 430_MB;   // sparse LP column walks
        w.mem_per_instr = 0.40;
        w.page_reuse = 0.92;
        w.phases = {
            {.kind = PatternKind::HotCold, .weight = 0.45, .burst = 256,
             .hot_fraction = 0.11, .hot_prob = 0.85},
            {.kind = PatternKind::Sequential, .weight = 0.35,
             .burst = 768, .stride_bytes = 64},
            {.kind = PatternKind::Random, .weight = 0.20, .burst = 96},
        };
        w.demand_run_pages = 2;
        w.eager_run_pages = 2;
        w.demand_churn = 0.05;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "sphinx3";
        w.footprint_bytes = 45_MB;    // acoustic model scans
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.90;
        w.phases = {
            {.kind = PatternKind::Sequential, .weight = 0.45,
             .burst = 1024, .stride_bytes = 64},
            {.kind = PatternKind::Zipf, .weight = 0.40, .burst = 256,
             .zipf_theta = 0.90},
            {.kind = PatternKind::Random, .weight = 0.15, .burst = 128},
        };
        w.demand_run_pages = 4;
        w.eager_run_pages = 4;
        w.demand_churn = 0.04;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "xalancbmk";
        w.footprint_bytes = 430_MB;   // DOM tree pointer chasing
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.90;
        w.phases = {
            {.kind = PatternKind::PointerChase, .weight = 0.55,
             .burst = 320, .jump_prob = 0.06, .hot_fraction = 0.08},
            {.kind = PatternKind::Zipf, .weight = 0.30, .burst = 192,
             .zipf_theta = 0.90},
            {.kind = PatternKind::Random, .weight = 0.15, .burst = 96},
        };
        w.demand_run_pages = 4;
        w.eager_run_pages = 4;
        w.demand_churn = 0.06;
        add(w);
    }

    // --- biobench ----------------------------------------------------------
    {
        WorkloadSpec w;
        w.name = "mummer";
        w.footprint_bytes = 500_MB;   // suffix-tree walks
        w.mem_per_instr = 0.45;
        w.page_reuse = 0.82;
        w.phases = {
            {.kind = PatternKind::PointerChase, .weight = 0.70,
             .burst = 256, .jump_prob = 0.08, .hot_fraction = 0.13},
            {.kind = PatternKind::Sequential, .weight = 0.30,
             .burst = 2048, .stride_bytes = 64},
        };
        w.demand_run_pages = 2048;
        w.eager_run_pages = 32768;
        w.map_tail_run_pages = 128;
        w.map_tail_fraction = 0.25;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "tigr";
        w.footprint_bytes = 600_MB;   // assembly: scans + random probes
        w.mem_per_instr = 0.50;
        w.page_reuse = 0.70;
        w.phases = {
            {.kind = PatternKind::Random, .weight = 0.50, .burst = 96},
            {.kind = PatternKind::Sequential, .weight = 0.50,
             .burst = 3072, .stride_bytes = 64},
        };
        w.demand_run_pages = 2048;
        w.eager_run_pages = 512;
        w.map_tail_run_pages = 128;
        w.map_tail_fraction = 0.25;
        add(w);
    }

    // --- kernels -----------------------------------------------------------
    {
        WorkloadSpec w;
        w.name = "gups";
        w.footprint_bytes = 8_GB;     // RandomAccess table updates
        w.mem_per_instr = 0.06;
        w.write_fraction = 0.5;
        w.page_reuse = 0.0;
        w.phases = {
            {.kind = PatternKind::Random, .weight = 1.0, .burst = 1024},
        };
        w.demand_run_pages = 32768;
        w.eager_run_pages = 32768;
        // Half the pool's pages sit in ~2MB runs: the resulting 2MB
        // entries thrash the L2 while 64 anchors cover the big half
        // (paper Table 5's gups row).
        w.map_tail_run_pages = 512;
        w.map_tail_fraction = 0.5;
        add(w);
    }
    {
        WorkloadSpec w;
        w.name = "graph500";
        w.footprint_bytes = 8_GB;     // BFS over a scale-free graph
        w.mem_per_instr = 0.50;
        w.page_reuse = 0.15;
        w.phases = {
            {.kind = PatternKind::Random, .weight = 0.55, .burst = 128},
            {.kind = PatternKind::Zipf, .weight = 0.30, .burst = 192,
             .zipf_theta = 0.60},
            {.kind = PatternKind::Sequential, .weight = 0.15,
             .burst = 4096, .stride_bytes = 64},
        };
        w.demand_run_pages = 65536;
        w.eager_run_pages = 16384;
        w.map_tail_run_pages = 512;
        w.map_tail_fraction = 0.35;
        add(w);
    }

    // --- PARSEC extra for the Figure 1 chunk-CDF experiment -----------------
    {
        WorkloadSpec w;
        w.name = "raytrace";
        w.footprint_bytes = 1300_MB;
        w.mem_per_instr = 0.35;
        w.page_reuse = 0.92;
        w.phases = {
            {.kind = PatternKind::HotCold, .weight = 0.6, .burst = 256,
             .hot_fraction = 0.05, .hot_prob = 0.85},
            {.kind = PatternKind::Sequential, .weight = 0.4,
             .burst = 1024, .stride_bytes = 64},
        };
        w.demand_run_pages = 512;
        w.eager_run_pages = 1024;
        add(w);
    }

    return cat;
}

} // namespace

const std::vector<WorkloadSpec> &
workloadCatalog()
{
    static const std::vector<WorkloadSpec> catalog = makeCatalog();
    return catalog;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : workloadCatalog())
        if (w.name == name)
            return w;
    ATLB_FATAL("unknown workload '{}'", name);
}

std::vector<std::string>
paperWorkloadNames()
{
    return {
        "GemsFDTD", "astar_biglake", "cactusADM", "canneal", "graph500",
        "gups",     "mcf",           "milc",      "mummer",  "omnetpp",
        "soplex_pds", "sphinx3",     "tigr",      "xalancbmk",
    };
}

} // namespace atlb
