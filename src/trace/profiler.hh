/**
 * @file
 * Page-level trace profiling.
 *
 * TLB behaviour is a function of the page-level reference stream, so
 * validating (or characterising) a workload model means measuring
 * exactly the quantities the profiler reports: footprint touched,
 * page-level reuse distances (how many *distinct* pages intervene
 * between touches of the same page — the quantity TLB capacity filters
 * on), stride mix, and working-set sizes over windows. The test suite
 * uses it to pin each catalog workload's character; users use it to
 * compare their own traces against the models.
 */

#ifndef ANCHORTLB_TRACE_PROFILER_HH
#define ANCHORTLB_TRACE_PROFILER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "stats/histogram.hh"
#include "trace/access.hh"

namespace atlb
{

/** Summary of one trace's page-level behaviour. */
struct TraceProfile
{
    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    /** Distinct 4KB pages touched. */
    std::uint64_t unique_pages = 0;
    /** Fraction of accesses that stay on the previous page. */
    double same_page_fraction = 0.0;
    /** Fraction of page transitions to the VA-adjacent next page. */
    double sequential_fraction = 0.0;
    /**
     * Log2-bucketed histogram of page-level LRU reuse distances;
     * bucket i counts re-touches with 2^i..2^(i+1)-1 distinct pages in
     * between. Cold (first-touch) accesses are counted separately.
     */
    Log2Histogram reuse_distance{28};
    std::uint64_t cold_accesses = 0;

    /**
     * Smallest number of pages covering @p fraction of the re-touch
     * stream, estimated from the reuse-distance histogram. This is the
     * "hot set" a TLB of that reach would capture.
     */
    std::uint64_t hotSetPages(double fraction) const;

    /** Fraction of re-touches with reuse distance < @p pages. */
    double hitFractionAtReach(std::uint64_t pages) const;
};

/**
 * Streaming profiler. Reuse distances use an exact LRU stack
 * implemented over a balanced order-statistics structure; memory is
 * O(unique pages).
 */
class TraceProfiler
{
  public:
    TraceProfiler();
    ~TraceProfiler();

    TraceProfiler(const TraceProfiler &) = delete;
    TraceProfiler &operator=(const TraceProfiler &) = delete;

    /** Feed one access. */
    void record(const MemAccess &access);

    /** Drain @p source to exhaustion through the profiler. */
    void consume(TraceSource &source);

    /** Snapshot the profile (may be called repeatedly). */
    TraceProfile profile() const;

  private:
    struct LruStack;
    std::unique_ptr<LruStack> stack_;
    TraceProfile acc_;
    Vpn last_vpn_ = invalidVpn;
    std::uint64_t transitions_ = 0;
    std::uint64_t sequential_transitions_ = 0;
    std::uint64_t same_page_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_TRACE_PROFILER_HH
