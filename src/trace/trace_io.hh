/**
 * @file
 * Binary trace-file format: capture and replay of access streams.
 *
 * Users with real traces (e.g. Pin captures) can convert them to this
 * format and drive the simulator with TraceFileSource instead of the
 * synthetic generators. The format is deliberately simple:
 *
 *   [0..8)   magic "ATLBTRC1"
 *   [8..16)  little-endian access count
 *   then per access: 8-byte little-endian word whose low bit is the
 *   write flag and whose remaining 63 bits are vaddr >> 1 (vaddr's own
 *   low bit is never meaningful for a memory access).
 */

#ifndef ANCHORTLB_TRACE_TRACE_IO_HH
#define ANCHORTLB_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/access.hh"

namespace atlb
{

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one access. */
    void append(const MemAccess &access);

    /** Flush and patch the header count; called by the destructor too. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** TraceSource replaying a file written by TraceWriter. */
class TraceFileSource : public TraceSource
{
  public:
    /** Open @p path; fatal on missing file or bad magic. */
    explicit TraceFileSource(const std::string &path);

    bool next(MemAccess &out) override;

    /** O(1) seek: records are fixed-width, so skipping is a file seek. */
    void skip(std::uint64_t n) override;

    void reset() override;

    std::uint64_t length() const { return count_; }

  private:
    std::ifstream in_;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_TRACE_TRACE_IO_HH
