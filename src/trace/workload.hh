/**
 * @file
 * Synthetic workload models standing in for the paper's Pin traces.
 *
 * The paper evaluates SPEC CPU2006, biobench, gups and graph500 (8GB
 * working sets for the latter two, 12B-instruction Pin traces). We
 * cannot re-run Pin over licensed binaries, so each workload is modelled
 * as a deterministic mixture of access-pattern phases whose page-level
 * behaviour (footprint, reuse, spatial locality, skew) matches the
 * qualitative TLB character the paper reports. TLB studies are sensitive
 * to the *page-level* reference stream, not the exact byte stream, so
 * this substitution preserves the per-scheme orderings the paper's
 * claims rest on (see DESIGN.md, "Substitutions").
 *
 * Each spec also carries the per-workload mapping-realism knobs consumed
 * by the demand/eager scenarios: the mean free-run length of the
 * pre-fragmented physical pool (standing in for the co-runner pressure
 * that shaped the paper's real-machine pagemaps, Table 6's spread) and a
 * fault-churn probability.
 */

#ifndef ANCHORTLB_TRACE_WORKLOAD_HH
#define ANCHORTLB_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/access.hh"

namespace atlb
{

/**
 * Families of access behaviour composable into a workload.
 *
 * Hot regions are virtually *contiguous* (anchored at a random base per
 * phase): hot program data lives in data structures that were allocated
 * together, which is precisely why coverage-oriented translation schemes
 * work at all. Fully scattered hotness (gups) is expressed with Random.
 */
enum class PatternKind
{
    Sequential,   //!< streaming sweep with a fixed stride
    Random,       //!< uniform random over the footprint
    Zipf,         //!< skewed page popularity within a contiguous region
    PointerChase, //!< dependent chain walk inside a hot region
    Stencil,      //!< several arrays swept in lockstep
    HotCold,      //!< contiguous hot region plus cold background
};

/** One phase of a workload's behaviour mixture. */
struct PatternPhase
{
    PatternKind kind = PatternKind::Random;
    /** Relative probability of entering this phase. */
    double weight = 1.0;
    /** Accesses generated per visit to this phase. */
    std::uint64_t burst = 256;

    // Kind-specific parameters (unused ones ignored).
    double zipf_theta = 0.9;        //!< Zipf skew
    unsigned stencil_arrays = 4;    //!< Stencil: number of arrays
    double jump_prob = 0.02;        //!< PointerChase: global jump prob.
    /** Hot/chase region size as a fraction of the footprint. */
    double hot_fraction = 0.05;
    double hot_prob = 0.9;          //!< HotCold: P(access is hot)
    std::uint64_t stride_bytes = 64; //!< Sequential: stride
    /**
     * Hot-region base as a page offset into the footprint; the default
     * (~0) picks a random base per seed. Pin it to place hot regions
     * deliberately (e.g. the multi-region experiments).
     */
    std::uint64_t hot_base_page = ~0ULL;
};

/** Full description of one synthetic workload. */
struct WorkloadSpec
{
    std::string name;
    std::uint64_t footprint_bytes = 0;
    /** Data memory accesses per instruction (for the CPI model). */
    double mem_per_instr = 0.33;
    /** Fraction of accesses that are writes. */
    double write_fraction = 0.3;
    /**
     * Probability that an access re-touches the previous page (stack,
     * locals, adjacent fields). This intra-page locality keeps absolute
     * walk rates per access realistic without changing the structure of
     * the TLB-miss stream.
     */
    double page_reuse = 0.85;
    std::vector<PatternPhase> phases;

    // Mapping-realism knobs for the demand/eager scenarios.
    std::uint64_t demand_run_pages = 0; //!< 0 = pristine pool
    std::uint64_t eager_run_pages = 0;
    double demand_churn = 0.0;
    /** Page-weighted fraction of the pool in small "tail" runs. */
    std::uint64_t map_tail_run_pages = 0;
    double map_tail_fraction = 0.0;

    /**
     * Non-empty: replay this binary trace file (ATLBTRC1/2) instead of
     * generating the phase mixture. Built by scaledWorkloadSpec for
     * "trace:<path>" workload names; the phases above are then unused.
     */
    std::string trace_path;
    /** Access count of trace_path, recorded when the spec is built. */
    std::uint64_t trace_accesses = 0;

    bool traceDriven() const { return !trace_path.empty(); }

    std::uint64_t footprintPages() const
    {
        return (footprint_bytes + pageBytes - 1) / pageBytes;
    }
};

/** The paper's 14-workload evaluation set plus PARSEC extras (Fig. 1). */
const std::vector<WorkloadSpec> &workloadCatalog();

/** Look up a catalog workload by name; fatal if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** Names of the 14 workloads in the paper's figure order. */
std::vector<std::string> paperWorkloadNames();

/**
 * Deterministic generator realising a WorkloadSpec as an access stream.
 */
class PatternTrace : public TraceSource
{
  public:
    /**
     * @param spec          workload description (copied)
     * @param va_base       first byte of the mapped region
     * @param num_accesses  stream length
     * @param seed          RNG seed; equal seeds reproduce the stream
     */
    PatternTrace(const WorkloadSpec &spec, VirtAddr va_base,
                 std::uint64_t num_accesses, std::uint64_t seed);

    bool next(MemAccess &out) override;

    /**
     * Batched generation: one virtual call per chunk instead of one per
     * access. Produces exactly the stream next() would (the two paths
     * share produceOne(); tests/trace/test_trace_fill.cc enforces it).
     */
    std::size_t fill(MemAccess *out, std::size_t max) override;

    /**
     * Fast-forward without materialising accesses: advances the
     * generator state (RNG, cursors, phase machine) exactly as
     * producing @p n accesses would, so skip(n) + next() equals
     * n x next() + next() (tests/trace/test_trace_fill.cc).
     */
    void skip(std::uint64_t n) override;

    void reset() override;

    const WorkloadSpec &spec() const { return spec_; }
    std::uint64_t length() const { return num_accesses_; }

  private:
    WorkloadSpec spec_;
    VirtAddr va_base_;
    std::uint64_t num_accesses_;
    std::uint64_t seed_;
    std::uint64_t pages_;

    Rng rng_;
    std::uint64_t produced_ = 0;
    std::size_t phase_ = 0;
    std::uint64_t burst_left_ = 0;

    // Per-pattern cursors.
    VirtAddr last_page_va_{};       // previous page, for intra-page reuse
    std::uint64_t seq_pos_ = 0;     // byte offset (Sequential)
    std::uint64_t chase_pos_ = 0;   // position within chase region
    std::uint64_t stencil_pos_ = 0; // element index (Stencil)

    // Chain-walk constants (odd multiplier, derived from the seed).
    std::uint64_t chase_a_ = 1;
    std::uint64_t chase_b_ = 0;
    /** Per-phase hot-region base page, fixed for the whole run. */
    std::vector<std::uint64_t> hot_base_;

    void pickPhase();
    std::uint64_t hotPages(double fraction) const;
    VirtAddr generate();
    /** Shared body of next()/fill(): one access, no exhaustion check. */
    void produceOne(MemAccess &out);
};

} // namespace atlb

#endif // ANCHORTLB_TRACE_WORKLOAD_HH
