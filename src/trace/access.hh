/**
 * @file
 * Memory-access records and the trace-source abstraction.
 *
 * The paper drives its TLB simulator with Pin-captured traces of 12B
 * instructions. We drive ours with TraceSource implementations: either
 * synthetic pattern generators (workload.hh) standing in for the Pin
 * traces, or binary trace files (trace_io.hh) for users who bring their
 * own captures.
 */

#ifndef ANCHORTLB_TRACE_ACCESS_HH
#define ANCHORTLB_TRACE_ACCESS_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace atlb
{

/** One data memory access. */
struct MemAccess
{
    VirtAddr vaddr{};
    bool write = false;
};

// The strong-typed address must not change the record layout the
// batched fill()/replay paths (and the mmap'd codecs) rely on.
static_assert(sizeof(MemAccess) == 16 &&
              std::is_trivially_copyable_v<MemAccess>);

/** Pull-based stream of memory accesses. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next access.
     * @return false when the trace is exhausted (@p out untouched).
     */
    virtual bool next(MemAccess &out) = 0;

    /**
     * Produce up to @p max accesses into @p out and return how many
     * were written (0 only when the trace is exhausted). The batched
     * stream is identical to repeated next() calls; the base
     * implementation simply loops, while hot generators override it to
     * amortise the virtual dispatch across a whole chunk.
     */
    virtual std::size_t fill(MemAccess *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * Discard the next @p n accesses (or fewer if the trace ends
     * first), advancing the stream exactly as @p n next() calls would.
     * The sharded runner uses this to seek each shard to its slice; the
     * base implementation drains through fill() into a scratch buffer,
     * while sources with cheap positioning (file seeks, generator
     * fast-forward) override it.
     */
    virtual void skip(std::uint64_t n)
    {
        MemAccess scratch[256];
        while (n > 0) {
            const std::size_t want = static_cast<std::size_t>(
                n < 256 ? n : 256);
            const std::size_t got = fill(scratch, want);
            if (got == 0)
                return;
            n -= got;
        }
    }

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;
};

} // namespace atlb

#endif // ANCHORTLB_TRACE_ACCESS_HH
