/**
 * @file
 * Memory-access records and the trace-source abstraction.
 *
 * The paper drives its TLB simulator with Pin-captured traces of 12B
 * instructions. We drive ours with TraceSource implementations: either
 * synthetic pattern generators (workload.hh) standing in for the Pin
 * traces, or binary trace files (trace_io.hh) for users who bring their
 * own captures.
 */

#ifndef ANCHORTLB_TRACE_ACCESS_HH
#define ANCHORTLB_TRACE_ACCESS_HH

#include <cstdint>

#include "common/types.hh"

namespace atlb
{

/** One data memory access. */
struct MemAccess
{
    VirtAddr vaddr = 0;
    bool write = false;
};

/** Pull-based stream of memory accesses. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next access.
     * @return false when the trace is exhausted (@p out untouched).
     */
    virtual bool next(MemAccess &out) = 0;

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;
};

} // namespace atlb

#endif // ANCHORTLB_TRACE_ACCESS_HH
