#include "profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace atlb
{

/**
 * Exact LRU reuse distances via a Fenwick tree over time slots: each
 * tracked page owns one set bit at its most recent access time, so the
 * number of set bits between two touches of a page equals the number of
 * distinct pages touched in between. Time slots are compacted when the
 * tree fills, keeping memory proportional to the live page count.
 */
struct TraceProfiler::LruStack
{
    std::vector<std::uint32_t> tree; // 1-based Fenwick array
    std::unordered_map<Vpn, std::uint64_t> last_time;
    std::uint64_t now = 0;

    explicit LruStack(std::size_t capacity = 1 << 20)
        : tree(capacity + 1, 0)
    {
    }

    std::size_t capacity() const { return tree.size() - 1; }

    void
    update(std::uint64_t pos, int delta)
    {
        for (std::uint64_t i = pos + 1; i < tree.size(); i += i & (~i + 1))
            tree[i] = static_cast<std::uint32_t>(
                static_cast<int>(tree[i]) + delta);
    }

    std::uint64_t
    prefix(std::uint64_t pos) const // sum of [0, pos]
    {
        std::uint64_t sum = 0;
        for (std::uint64_t i = pos + 1; i > 0; i -= i & (~i + 1))
            sum += tree[i];
        return sum;
    }

    /** Re-number live pages to time slots 0..n-1 (and grow if tight). */
    void
    compact()
    {
        std::vector<std::pair<std::uint64_t, Vpn>> order;
        order.reserve(last_time.size());
        for (const auto &[vpn, t] : last_time)
            order.emplace_back(t, vpn);
        std::sort(order.begin(), order.end());

        std::size_t cap = capacity();
        while (order.size() * 2 > cap)
            cap *= 2;
        tree.assign(cap + 1, 0);
        now = 0;
        for (const auto &[t, vpn] : order) {
            last_time[vpn] = now;
            update(now, +1);
            ++now;
        }
    }

    /** Touch @p vpn; returns reuse distance, or ~0ULL when cold. */
    std::uint64_t
    touch(Vpn vpn)
    {
        if (now == capacity())
            compact();
        std::uint64_t dist = ~0ULL;
        const auto it = last_time.find(vpn);
        if (it != last_time.end()) {
            // Distinct pages touched strictly after this page's last
            // access: set bits in (last, now).
            dist = prefix(now == 0 ? 0 : now - 1) - prefix(it->second);
            update(it->second, -1);
        }
        update(now, +1);
        last_time[vpn] = now;
        ++now;
        return dist;
    }
};

TraceProfiler::TraceProfiler() : stack_(std::make_unique<LruStack>()) {}
TraceProfiler::~TraceProfiler() = default;

void
TraceProfiler::record(const MemAccess &access)
{
    ++acc_.accesses;
    acc_.writes += access.write;

    const Vpn vpn = vpnOf(access.vaddr);
    if (vpn == last_vpn_) {
        ++same_page_;
        return; // same-page touches don't change the LRU stack
    }
    if (last_vpn_ != invalidVpn) {
        ++transitions_;
        sequential_transitions_ += vpn == last_vpn_ + 1;
    }
    last_vpn_ = vpn;

    const std::uint64_t dist = stack_->touch(vpn);
    if (dist == ~0ULL)
        ++acc_.cold_accesses;
    else
        acc_.reuse_distance.add(dist);
}

void
TraceProfiler::consume(TraceSource &source)
{
    MemAccess access;
    while (source.next(access))
        record(access);
}

TraceProfile
TraceProfiler::profile() const
{
    TraceProfile p = acc_;
    p.unique_pages = stack_->last_time.size();
    p.same_page_fraction =
        p.accesses ? static_cast<double>(same_page_) /
                         static_cast<double>(p.accesses)
                   : 0.0;
    p.sequential_fraction =
        transitions_ ? static_cast<double>(sequential_transitions_) /
                           static_cast<double>(transitions_)
                     : 0.0;
    return p;
}

std::uint64_t
TraceProfile::hotSetPages(double fraction) const
{
    const std::uint64_t total = reuse_distance.samples();
    if (total == 0)
        return 0;
    const double target = fraction * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < reuse_distance.numBuckets(); ++b) {
        cum += reuse_distance.bucket(b);
        if (static_cast<double>(cum) >= target)
            return 1ULL << (b + 1); // distances < 2^(b+1) suffice
    }
    return 1ULL << reuse_distance.numBuckets();
}

double
TraceProfile::hitFractionAtReach(std::uint64_t pages) const
{
    const std::uint64_t total = reuse_distance.samples();
    if (total == 0 || pages == 0)
        return 0.0;
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < reuse_distance.numBuckets(); ++b) {
        if ((1ULL << (b + 1)) > pages)
            break;
        cum += reuse_distance.bucket(b);
    }
    return static_cast<double>(cum) / static_cast<double>(total);
}

} // namespace atlb
