#include "trace_io.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace atlb
{

namespace
{

constexpr char magic[8] = {'A', 'T', 'L', 'B', 'T', 'R', 'C', '1'};

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), 8);
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    std::array<char, 8> buf;
    if (!is.read(buf.data(), 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        ATLB_FATAL("cannot open trace file '{}' for writing", path);
    out_.write(magic, sizeof(magic));
    putU64(out_, 0); // count patched in close()
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const MemAccess &access)
{
    ATLB_ASSERT(!closed_, "append to a closed trace writer");
    const std::uint64_t word = // lint-allow: page-shift
        (access.vaddr.raw() >> 1 << 1) | (access.write ? 1 : 0);
    putU64(out_, word);
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(sizeof(magic), std::ios::beg);
    putU64(out_, count_);
    out_.flush();
    if (!out_)
        ATLB_FATAL("error writing trace file '{}'", path_);
    out_.close();
}

TraceFileSource::TraceFileSource(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        ATLB_FATAL("cannot open trace file '{}'", path);
    in_.seekg(0, std::ios::end);
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
    char got[8];
    if (!in_.read(got, 8) || std::memcmp(got, magic, 8) != 0)
        ATLB_FATAL("'{}' is not an anchortlb trace file", path);
    if (!getU64(in_, count_))
        ATLB_FATAL("'{}': truncated trace header", path);
    // Don't trust the header count blindly: a truncated copy would
    // otherwise fail mid-replay (or an oversized one silently drop its
    // tail), so reconcile it with the actual size up front. Bound the
    // count by division before multiplying — a crafted count can make
    // count_ * 8 wrap past 2^64 and sneak through the equality check.
    if (count_ > (file_bytes - 16) / 8 || 16 + count_ * 8 != file_bytes)
        ATLB_FATAL("'{}': header counts {} accesses but the file holds "
                   "{} bytes (truncated or oversized)",
                   path, count_, file_bytes);
}

bool
TraceFileSource::next(MemAccess &out)
{
    if (consumed_ >= count_)
        return false;
    std::uint64_t word = 0;
    if (!getU64(in_, word))
        ATLB_FATAL("'{}': truncated trace body at record {}", path_,
                   consumed_);
    out.vaddr = VirtAddr{word & ~1ULL};
    out.write = word & 1;
    ++consumed_;
    return true;
}

void
TraceFileSource::skip(std::uint64_t n)
{
    const std::uint64_t left = count_ - consumed_;
    if (n > left)
        n = left;
    consumed_ += n;
    in_.seekg(static_cast<std::streamoff>(16 + consumed_ * 8),
              std::ios::beg);
}

void
TraceFileSource::reset()
{
    in_.clear();
    in_.seekg(16, std::ios::beg);
    consumed_ = 0;
}

} // namespace atlb
