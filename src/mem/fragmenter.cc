#include "fragmenter.hh"

#include <algorithm>
#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

Fragmenter::Fragmenter(BuddyAllocator &buddy, Rng &rng)
    : buddy_(buddy), rng_(rng)
{
}

Fragmenter::~Fragmenter()
{
    releaseAll();
}

void
Fragmenter::pinRun(Ppn base, std::uint64_t pages)
{
    // Record the pinned run as aligned buddy blocks so releaseAll() can
    // hand them back with valid (base, order) pairs.
    while (pages > 0) {
        unsigned order = static_cast<unsigned>(
            std::min<std::uint64_t>(std::countr_zero(base.raw() | (1ULL << 63)),
                                    floorLog2(pages)));
        order = std::min(order, buddy_.maxOrder());
        pinned_.emplace_back(base, order);
        pinned_pages_ += 1ULL << order;
        base += 1ULL << order;
        pages -= 1ULL << order;
    }
}

namespace
{

/** Free an arbitrary run back to the buddy as maximal aligned blocks. */
void
freeRun(BuddyAllocator &buddy, Ppn base, std::uint64_t pages)
{
    while (pages > 0) {
        unsigned order = static_cast<unsigned>(
            std::min<std::uint64_t>(std::countr_zero(base.raw() | (1ULL << 63)),
                                    floorLog2(pages)));
        order = std::min(order, buddy.maxOrder());
        buddy.free(base, order);
        base += 1ULL << order;
        pages -= 1ULL << order;
    }
}

} // namespace

void
Fragmenter::apply(const FragmentProfile &profile)
{
    ATLB_ASSERT(!applied_, "Fragmenter::apply() called twice");
    applied_ = true;
    if (profile.mean_free_run_pages == 0)
        return; // pristine pool requested

    // Drain the entire pool so we control the exact layout of free space.
    std::vector<std::pair<Ppn, std::uint64_t>> spans; // (base, pages)
    for (;;) {
        unsigned order = 0;
        const Ppn base = buddy_.allocateLargest(buddy_.maxOrder(), order);
        if (base == invalidPpn)
            break;
        spans.emplace_back(base, 1ULL << order);
    }
    std::sort(spans.begin(), spans.end());
    // Merge adjacent spans so runs can cross buddy block boundaries.
    std::vector<std::pair<Ppn, std::uint64_t>> merged;
    for (const auto &[base, pages] : spans) {
        if (!merged.empty() &&
            merged.back().first + merged.back().second == base) {
            merged.back().second += pages;
        } else {
            merged.emplace_back(base, pages);
        }
    }

    const std::uint64_t pin_budget = static_cast<std::uint64_t>(
        static_cast<double>(buddy_.totalPages()) *
        profile.max_pinned_fraction);

    // tail_fraction is a *page*-weighted mix: convert it to a per-run
    // probability (small runs must be drawn far more often to hold the
    // same number of pages as large ones).
    double tail_run_prob = 0.0;
    if (profile.tail_run_pages != 0 && profile.tail_fraction > 0.0) {
        const double tf = profile.tail_fraction;
        const double primary =
            static_cast<double>(profile.mean_free_run_pages);
        const double tail = static_cast<double>(profile.tail_run_pages);
        tail_run_prob =
            tf * primary / (tf * primary + (1.0 - tf) * tail);
    }

    // Carve each span into [free run][1-page pinned separator] repeats.
    for (const auto &[span_base, span_pages] : merged) {
        Ppn cur = span_base;
        std::uint64_t remaining = span_pages;
        while (remaining > 0) {
            std::uint64_t mean = profile.mean_free_run_pages;
            if (tail_run_prob > 0.0 && rng_.nextBool(tail_run_prob))
                mean = profile.tail_run_pages;
            std::uint64_t run =
                profile.randomize
                    ? rng_.nextGeometric(static_cast<double>(mean),
                                         remaining)
                    : std::min(mean, remaining);
            if (run == 0)
                run = 1;
            if (pinned_pages_ >= pin_budget || run >= remaining) {
                // Budget exhausted or span tail: leave the rest free.
                freeRun(buddy_, cur, remaining);
                break;
            }
            freeRun(buddy_, cur, run);
            cur += run;
            remaining -= run;
            // Pin a single separator frame to cap the free run.
            pinRun(cur, 1);
            cur += 1;
            remaining -= 1;
        }
    }
}

void
Fragmenter::releaseAll()
{
    for (const auto &[base, order] : pinned_)
        buddy_.free(base, order);
    pinned_.clear();
    pinned_pages_ = 0;
}

} // namespace atlb
