/**
 * @file
 * Fragmentation injector for the physical page pool.
 *
 * The paper's mappings come from real multi-socket machines whose memory
 * was pressured by random background jobs (Section 2.3, Fig. 1). We stand
 * in for that machinery by carving the buddy pool into free runs of a
 * target length separated by pinned "background" frames, so that the OS
 * model subsequently allocates chunk distributions with a controlled
 * contiguity profile.
 */

#ifndef ANCHORTLB_MEM_FRAGMENTER_HH
#define ANCHORTLB_MEM_FRAGMENTER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"

namespace atlb
{

/** Parameters describing a fragmentation state to inject. */
struct FragmentProfile
{
    /**
     * Mean length, in 4KB pages, of the free runs that survive injection.
     * Large values leave the pool nearly pristine; 1 shatters it to
     * single pages. 0 disables injection entirely.
     */
    std::uint64_t mean_free_run_pages = 0;

    /**
     * Optional secondary run scale: with probability @c tail_fraction a
     * free run is drawn around @c tail_run_pages instead of the primary
     * mean. Real machines show such multi-scale mixtures (paper Fig. 1:
     * a few huge runs plus a long tail of small ones).
     */
    std::uint64_t tail_run_pages = 0;
    double tail_fraction = 0.0;

    /**
     * Fraction of the pool the injector may pin as background memory.
     * Pinned frames stay allocated for the lifetime of the scenario.
     */
    double max_pinned_fraction = 0.35;

    /** Randomize run lengths geometrically around the mean. */
    bool randomize = true;
};

/**
 * Injects fragmentation into a BuddyAllocator and owns the pinned frames.
 *
 * After apply(), the allocator's free space consists of runs whose length
 * distribution is centred on the profile's mean, emulating a machine whose
 * memory has been churned by co-running jobs.
 */
class Fragmenter
{
  public:
    Fragmenter(BuddyAllocator &buddy, Rng &rng);

    /** Carve the pool according to @p profile. May be called once. */
    void apply(const FragmentProfile &profile);

    /** Frames pinned as background memory. */
    std::uint64_t pinnedPages() const { return pinned_pages_; }

    /** Release all pinned frames back to the pool. */
    void releaseAll();

    ~Fragmenter();

    Fragmenter(const Fragmenter &) = delete;
    Fragmenter &operator=(const Fragmenter &) = delete;

  private:
    BuddyAllocator &buddy_;
    Rng &rng_;
    bool applied_ = false;
    std::uint64_t pinned_pages_ = 0;
    /** Pinned blocks as (base, order). */
    std::vector<std::pair<Ppn, unsigned>> pinned_;

    void pinRun(Ppn base, std::uint64_t pages);
};

} // namespace atlb

#endif // ANCHORTLB_MEM_FRAGMENTER_HH
