#include "buddy_allocator.hh"

#include <algorithm>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

BuddyAllocator::BuddyAllocator(std::uint64_t total_pages, unsigned max_order)
    : total_pages_(total_pages), max_order_(max_order),
      free_lists_(max_order + 1)
{
    ATLB_ASSERT(max_order < 40, "absurd max order {}", max_order);
    // Seed the pool greedily with the largest aligned blocks that fit.
    Ppn base{0};
    std::uint64_t remaining = total_pages;
    while (remaining > 0) {
        unsigned order = max_order_;
        while (order > 0 &&
               ((1ULL << order) > remaining || !base.isAligned(1ULL << order)))
            --order;
        free_lists_[order].insert(base);
        free_pages_ += 1ULL << order;
        base += 1ULL << order;
        remaining -= 1ULL << order;
    }
}

Ppn
BuddyAllocator::allocate(unsigned order)
{
    if (order > max_order_)
        return invalidPpn;
    // Address-ordered first fit: among all blocks large enough, take the
    // lowest-address one. This makes sequential allocations walk free
    // runs in address order, so consecutive faults land on consecutive
    // frames whenever the pool permits — the behaviour that gives
    // demand/eager paging their mapping contiguity.
    unsigned avail = max_order_ + 1;
    Ppn best = invalidPpn;
    for (unsigned o = order; o <= max_order_; ++o) {
        if (free_lists_[o].empty())
            continue;
        const Ppn base = *free_lists_[o].begin();
        if (base < best) {
            best = base;
            avail = o;
        }
    }
    if (avail > max_order_)
        return invalidPpn;

    const Ppn base = best;
    free_lists_[avail].erase(free_lists_[avail].begin());
    // Split down to the requested order, returning the low half each time
    // and freeing the high half (buddy) at each level.
    while (avail > order) {
        --avail;
        free_lists_[avail].insert(base + (1ULL << avail));
    }
    free_pages_ -= 1ULL << order;
    return base;
}

Ppn
BuddyAllocator::allocateLargest(unsigned max_order_wanted, unsigned &got_order)
{
    if (max_order_wanted > max_order_)
        max_order_wanted = max_order_;
    for (int order = static_cast<int>(max_order_wanted); order >= 0;
         --order) {
        if (!free_lists_[order].empty()) {
            got_order = static_cast<unsigned>(order);
            const Ppn base = *free_lists_[order].begin();
            free_lists_[order].erase(free_lists_[order].begin());
            free_pages_ -= 1ULL << got_order;
            return base;
        }
    }
    // No block <= wanted size free: fall back to splitting a larger one.
    const Ppn base = allocate(max_order_wanted);
    if (base != invalidPpn)
        got_order = max_order_wanted;
    return base;
}

void
BuddyAllocator::free(Ppn base, unsigned order)
{
    ATLB_ASSERT(order <= max_order_, "free of order {} > max {}", order,
                max_order_);
    ATLB_ASSERT(base.isAligned(1ULL << order),
                "free of misaligned block {} order {}", base, order);
    ATLB_ASSERT(base.raw() + (1ULL << order) <= total_pages_,
                "free past end of pool");
    free_pages_ += 1ULL << order;
    // Coalesce with the buddy while it is free, up to max order.
    while (order < max_order_) {
        const Ppn buddy{base.raw() ^ (1ULL << order)};
        auto &list = free_lists_[order];
        const auto it = list.find(buddy);
        if (it == list.end())
            break;
        list.erase(it);
        base = std::min(base, buddy);
        ++order;
    }
    const bool inserted = free_lists_[order].insert(base).second;
    ATLB_ASSERT(inserted, "double free of block {} order {}", base, order);
}

std::uint64_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    ATLB_ASSERT(order <= max_order_, "order out of range");
    return free_lists_[order].size();
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int order = static_cast<int>(max_order_); order >= 0; --order)
        if (!free_lists_[order].empty())
            return order;
    return -1;
}

Histogram
BuddyAllocator::freeBlockHistogram() const
{
    Histogram h;
    for (unsigned order = 0; order <= max_order_; ++order) {
        if (!free_lists_[order].empty())
            h.add(1ULL << order, free_lists_[order].size());
    }
    return h;
}

std::vector<BuddyAllocator::FreeBlock>
BuddyAllocator::freeBlockList() const
{
    std::vector<FreeBlock> blocks;
    for (unsigned order = 0; order <= max_order_; ++order)
        for (const Ppn base : free_lists_[order])
            blocks.push_back({base, order});
    std::sort(blocks.begin(), blocks.end(),
              [](const FreeBlock &a, const FreeBlock &b) {
                  return a.base < b.base;
              });
    return blocks;
}

void
BuddyAllocator::plantFreeBlockForTest(Ppn base, unsigned order)
{
    free_lists_[order].insert(base);
    free_pages_ += 1ULL << order;
}

bool
BuddyAllocator::isFree(Ppn base, unsigned order) const
{
    return free_lists_[order].count(base) > 0;
}

bool
BuddyAllocator::checkInvariants() const
{
    std::uint64_t counted = 0;
    Ppn prev_end{0};
    bool first = true;
    // Collect all (base, order) and verify alignment and disjointness.
    std::vector<std::pair<Ppn, unsigned>> blocks;
    for (unsigned order = 0; order <= max_order_; ++order) {
        for (const Ppn base : free_lists_[order]) {
            if (!base.isAligned(1ULL << order))
                return false;
            blocks.emplace_back(base, order);
            counted += 1ULL << order;
        }
    }
    if (counted != free_pages_)
        return false;
    std::sort(blocks.begin(), blocks.end());
    for (const auto &[base, order] : blocks) {
        if (!first && base < prev_end)
            return false; // overlap
        prev_end = base + (1ULL << order);
        first = false;
        if (prev_end.raw() > total_pages_)
            return false;
        // A free block must not have a free buddy (should have coalesced),
        // unless it is already at max order.
        if (order < max_order_ && isFree(Ppn{base.raw() ^ (1ULL << order)}, order))
            return false;
    }
    return true;
}

} // namespace atlb
