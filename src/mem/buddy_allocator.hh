/**
 * @file
 * Binary buddy allocator over a physical page-frame pool.
 *
 * This is the physical-memory substrate beneath the OS model: demand and
 * eager paging both draw frames from here, and the fragmentation injector
 * (see fragmenter.hh) manipulates its free lists to emulate the diverse
 * allocation states the paper measures on real machines (Fig. 1).
 *
 * Blocks of order k contain 2^k contiguous frames and are 2^k-aligned,
 * matching the Linux page allocator's invariants. Allocation is
 * lowest-address-first, which (as on real systems) makes successive
 * allocations likely to be physically adjacent, so virtual-address-
 * sequential faults can merge into contiguity runs larger than any single
 * buddy block.
 */

#ifndef ANCHORTLB_MEM_BUDDY_ALLOCATOR_HH
#define ANCHORTLB_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.hh"
#include "stats/histogram.hh"

namespace atlb
{

/** Binary buddy allocator managing frames [0, totalPages). */
class BuddyAllocator
{
  public:
    /** Default maximum block order (2^16 pages = 256MB). */
    static constexpr unsigned defaultMaxOrder = 16;

    /**
     * Create an allocator over @p total_pages frames.
     *
     * @param total_pages pool size in 4KB frames; need not be a power of
     *                    two — the pool is seeded with the maximal blocks
     *                    that tile it.
     * @param max_order   largest supported block order.
     */
    explicit BuddyAllocator(std::uint64_t total_pages,
                            unsigned max_order = defaultMaxOrder);

    /**
     * Allocate a block of 2^order frames.
     * @return base frame number, or invalidPpn if no memory.
     */
    [[nodiscard]] Ppn allocate(unsigned order);

    /**
     * Allocate the largest available block of order <= @p max_order_wanted.
     * @param[out] got_order the order actually allocated.
     * @return base frame number, or invalidPpn if the pool is empty.
     */
    [[nodiscard]] Ppn allocateLargest(unsigned max_order_wanted,
                                      unsigned &got_order);

    /**
     * Free a block previously returned by allocate()/allocateLargest().
     * The base must be 2^order aligned. Buddies coalesce eagerly.
     */
    void free(Ppn base, unsigned order);

    /** Frames currently free. */
    std::uint64_t freePages() const { return free_pages_; }

    /** Frames in the pool. */
    std::uint64_t totalPages() const { return total_pages_; }

    /** Number of free blocks at @p order. */
    std::uint64_t freeBlocksAt(unsigned order) const;

    /** Largest order with at least one free block; -1 if none. */
    int largestFreeOrder() const;

    /** Histogram of free block sizes in pages (key = 2^order). */
    Histogram freeBlockHistogram() const;

    unsigned maxOrder() const { return max_order_; }

    /** Internal consistency check (tests): free lists sane, no overlap. */
    [[nodiscard]] bool checkInvariants() const;

    /** One block on a free list (for inspection / invariant checking). */
    struct FreeBlock
    {
        Ppn base;
        unsigned order;
    };

    /** Snapshot of every free block, ascending by base frame. */
    std::vector<FreeBlock> freeBlockList() const;

    /**
     * Insert a block on a free list unchecked, bypassing free()'s
     * assertions and coalescing (the counter is kept consistent).
     * Corruption-injection tests use this to plant states the checked
     * mutators refuse to create.
     */
    void plantFreeBlockForTest(Ppn base, unsigned order);

  private:
    std::uint64_t total_pages_;
    unsigned max_order_;
    std::uint64_t free_pages_ = 0;
    /** Per-order ordered free lists; ordered => deterministic policy. */
    std::vector<std::set<Ppn>> free_lists_;

    bool isFree(Ppn base, unsigned order) const;
};

} // namespace atlb

#endif // ANCHORTLB_MEM_BUDDY_ALLOCATOR_HH
