#include "walk_cache.hh"

namespace atlb
{

namespace
{

TlbEntry
prefixEntry(EntryKind kind, TlbKey key)
{
    TlbEntry e;
    e.kind = kind;
    e.key = key;
    e.ppn = Ppn{0}; // modelled caches track presence, not payloads
    e.valid = true;
    return e;
}

} // namespace

WalkCache::WalkCache(unsigned pml4e_entries, unsigned pdpte_entries,
                     unsigned pde_entries)
    : pml4e_(pml4e_entries, pml4e_entries, "pwc.pml4e"),
      pdpte_(pdpte_entries, pdpte_entries, "pwc.pdpte"),
      pde_(pde_entries, pde_entries, "pwc.pde")
{
}

unsigned
WalkCache::walkRefs(Vpn vpn, unsigned leaf_level)
{
    // Deepest cached prefix decides where the walk resumes. Prefix
    // granularities: PDE covers 2MB (vpn>>9), PDPTE 1GB (vpn>>18),
    // PML4E 512GB (vpn>>27). The leaf entry itself is never PWC-cached.
    unsigned start_level = 0; // next level whose entry must be fetched
    if (leaf_level >= 4 && pde_.lookup(EntryKind::Page4K, groupKey(vpn, 9))) {
        start_level = 3;
    } else if (pdpte_.lookup(EntryKind::Page2M, groupKey(vpn, 18))) {
        start_level = 2;
    } else if (pml4e_.lookup(EntryKind::Anchor, groupKey(vpn, 27))) {
        start_level = 1;
    }

    const unsigned refs = leaf_level - start_level;

    // Refill the caches with the prefixes this walk resolved.
    pml4e_.insert(prefixEntry(EntryKind::Anchor, groupKey(vpn, 27)));
    pdpte_.insert(prefixEntry(EntryKind::Page2M, groupKey(vpn, 18)));
    if (leaf_level >= 4)
        pde_.insert(prefixEntry(EntryKind::Page4K, groupKey(vpn, 9)));
    return refs;
}

void
WalkCache::flush()
{
    pml4e_.flush();
    pdpte_.flush();
    pde_.flush();
}

} // namespace atlb
