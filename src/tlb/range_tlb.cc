#include "range_tlb.hh"

#include "common/logging.hh"

namespace atlb
{

RangeTlb::RangeTlb(unsigned entries) : capacity_(entries), slots_(entries)
{
    ATLB_ASSERT(entries > 0, "empty range TLB");
}

const RangeEntry *
RangeTlb::lookup(Vpn vpn)
{
    ++stats_.lookups;
    for (auto &slot : slots_) {
        if (slot.valid && slot.asid == asid_ &&
            slot.range.contains(vpn)) {
            slot.last_use = ++tick_;
            ++stats_.hits;
            return &slot.range;
        }
    }
    return nullptr;
}

void
RangeTlb::insert(const RangeEntry &range)
{
    ATLB_ASSERT(range.vpn_end > range.vpn_start, "empty range");
    Slot *victim = nullptr;
    for (auto &slot : slots_) {
        if (slot.valid && slot.asid == asid_ &&
            slot.range.vpn_start == range.vpn_start &&
            slot.range.vpn_end == range.vpn_end) {
            victim = &slot; // refresh duplicate in place
            break;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
        } else if (!victim ||
                   (victim->valid && slot.last_use < victim->last_use)) {
            victim = &slot;
        }
    }
    if (victim->valid && (victim->asid != asid_ ||
                          victim->range.vpn_start != range.vpn_start))
        ++stats_.evictions;
    victim->valid = true;
    victim->range = range;
    victim->asid = asid_;
    victim->last_use = ++tick_;
    ++stats_.insertions;
}

void
RangeTlb::flush()
{
    for (auto &slot : slots_)
        slot.valid = false;
}

void
RangeTlb::invalidateContaining(Vpn vpn)
{
    invalidateContaining(vpn, asid_);
}

void
RangeTlb::invalidateContaining(Vpn vpn, Asid asid)
{
    for (auto &slot : slots_)
        if (slot.valid && slot.asid == asid &&
            slot.range.contains(vpn))
            slot.valid = false;
}

void
RangeTlb::invalidateAsid(Asid asid)
{
    for (auto &slot : slots_)
        if (slot.valid && slot.asid == asid)
            slot.valid = false;
}

unsigned
RangeTlb::size() const
{
    unsigned n = 0;
    for (const auto &slot : slots_)
        if (slot.valid)
            ++n;
    return n;
}

} // namespace atlb
