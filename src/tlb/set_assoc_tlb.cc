#include "set_assoc_tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

SetAssocTlb::SetAssocTlb(unsigned entries, unsigned ways, std::string name)
    : num_sets_(entries / ways), ways_(ways), name_(std::move(name))
{
    ATLB_ASSERT(ways > 0 && entries > 0 && entries % ways == 0,
                "TLB '{}': {} entries not divisible by {} ways", name_,
                entries, ways);
    ATLB_ASSERT(isPow2(num_sets_),
                "TLB '{}': {} sets is not a power of two", name_,
                num_sets_);
    ways_storage_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

const TlbEntry *
SetAssocTlb::lookup(EntryKind kind, std::uint64_t key)
{
    ++stats_.lookups;
    Way *set = setBase(setIndex(key));
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].entry.valid && set[w].entry.kind == kind &&
            set[w].entry.key == key) {
            set[w].last_use = ++tick_;
            ++stats_.hits;
            return &set[w].entry;
        }
    }
    return nullptr;
}

const TlbEntry *
SetAssocTlb::probe(EntryKind kind, std::uint64_t key) const
{
    const Way *set = setBase(setIndex(key));
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].entry.valid && set[w].entry.kind == kind &&
            set[w].entry.key == key) {
            return &set[w].entry;
        }
    }
    return nullptr;
}

void
SetAssocTlb::insert(const TlbEntry &entry)
{
    ATLB_ASSERT(entry.valid, "inserting invalid entry into '{}'", name_);
    Way *set = setBase(setIndex(entry.key));
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].entry.valid && set[w].entry.kind == entry.kind &&
            set[w].entry.key == entry.key) {
            victim = &set[w]; // overwrite in place
            break;
        }
        if (!set[w].entry.valid) {
            if (!victim || victim->entry.valid)
                victim = &set[w];
        } else if (!victim ||
                   (victim->entry.valid &&
                    set[w].last_use < victim->last_use)) {
            victim = &set[w];
        }
    }
    if (victim->entry.valid &&
        (victim->entry.kind != entry.kind || victim->entry.key != entry.key))
        ++stats_.evictions;
    victim->entry = entry;
    victim->last_use = ++tick_;
    ++stats_.insertions;
}

void
SetAssocTlb::flush()
{
    for (auto &w : ways_storage_) {
        w.entry.valid = false;
        w.last_use = 0;
    }
}

void
SetAssocTlb::invalidate(EntryKind kind, std::uint64_t key)
{
    Way *set = setBase(setIndex(key));
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].entry.valid && set[w].entry.kind == kind &&
            set[w].entry.key == key) {
            set[w].entry.valid = false;
            return;
        }
    }
}

const TlbEntry &
SetAssocTlb::entryAt(unsigned set, unsigned way) const
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "entryAt({}, {}) out of range in '{}'", set, way, name_);
    return setBase(set)[way].entry;
}

std::uint64_t
SetAssocTlb::lastUseAt(unsigned set, unsigned way) const
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "lastUseAt({}, {}) out of range in '{}'", set, way, name_);
    return setBase(set)[way].last_use;
}

TlbEntry &
SetAssocTlb::entryAtForTest(unsigned set, unsigned way)
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "entryAtForTest({}, {}) out of range in '{}'", set, way,
                name_);
    return setBase(set)[way].entry;
}

void
SetAssocTlb::setLastUseForTest(unsigned set, unsigned way, std::uint64_t t)
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "setLastUseForTest({}, {}) out of range in '{}'", set,
                way, name_);
    setBase(set)[way].last_use = t;
}

unsigned
SetAssocTlb::validCount() const
{
    unsigned n = 0;
    for (const auto &w : ways_storage_)
        if (w.entry.valid)
            ++n;
    return n;
}

} // namespace atlb
