#include "set_assoc_tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

SetAssocTlb::SetAssocTlb(unsigned entries, unsigned ways, std::string name,
                         SetProbe probe)
    : num_sets_(entries / ways), ways_(ways), set_mask_(num_sets_ - 1),
      name_(std::move(name))
{
    // simdFindU64Fn returns null for SimdLevel::Scalar, which keeps
    // lookup() on the inline scan — the policy degrades to
    // ScalarInline wherever no vector probe exists.
    if (probe == SetProbe::SimdDispatch)
        find_ = simdFindU64Fn(simdLevel());
    ATLB_ASSERT(ways > 0 && entries > 0 && entries % ways == 0,
                "TLB '{}': {} entries not divisible by {} ways", name_,
                entries, ways);
    ATLB_ASSERT(isPow2(num_sets_),
                "TLB '{}': {} sets is not a power of two", name_,
                num_sets_);
    entries_.resize(static_cast<std::size_t>(num_sets_) * ways_);
    cmp_.reset(entries_.size());
    last_use_.resize(entries_.size(), 0);
}

const TlbEntry *
SetAssocTlb::probe(EntryKind kind, TlbKey key) const
{
    key = TlbKey{key.raw() | asid_key_};
    const std::size_t base =
        static_cast<std::size_t>(setIndex(key)) * ways_;
    const std::uint64_t want = tlbCmpWord(kind, key);
    for (unsigned w = 0; w < ways_; ++w) {
        if (cmp_[base + w] == want)
            return &entries_[base + w];
    }
    return nullptr;
}

void
SetAssocTlb::insert(const TlbEntry &entry)
{
    ATLB_ASSERT(entry.valid, "inserting invalid entry into '{}'", name_);
    ATLB_ASSERT(entry.key.raw() < (std::uint64_t{1} << tlbKeyAsidShift),
                "TLB '{}': key {} overflows the {}-bit scheme-key "
                "budget (would alias the ASID tag)",
                name_, entry.key, tlbKeyAsidShift);
    // The stored key carries the tag, so the entries_/cmp_ mirror
    // relation, the home-set invariant and invalidateAsid's scan all
    // see one consistent encoding.
    const TlbKey tagged{entry.key.raw() | asid_key_};
    const std::uint64_t want = tlbCmpWord(entry.kind, tagged);
    const std::size_t base =
        static_cast<std::size_t>(setIndex(tagged)) * ways_;
    // Victim selection stays scalar (and identical under every SIMD
    // level): same (kind, key) overwrites in place, else the first
    // invalid way, else the least recently used way.
    std::size_t victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        const std::size_t i = base + w;
        if (cmp_[i] == want) {
            victim = i; // overwrite in place
            break;
        }
        if (cmp_[i] == 0) {
            if (cmp_[victim] != 0)
                victim = i; // first invalid way wins
        } else if (cmp_[victim] != 0 &&
                   last_use_[i] < last_use_[victim]) {
            victim = i; // least recently used valid way
        }
    }
    if (cmp_[victim] != 0 && cmp_[victim] != want)
        ++stats_.evictions;
    entries_[victim] = entry;
    entries_[victim].key = tagged;
    cmp_[victim] = want;
    last_use_[victim] = ++tick_;
    ++stats_.insertions;
    ++mutations_;
}

void
SetAssocTlb::flush()
{
    for (TlbEntry &e : entries_)
        e.valid = false;
    for (std::size_t i = 0; i < cmp_.size(); ++i)
        cmp_[i] = 0;
    for (std::uint64_t &t : last_use_)
        t = 0;
    ++mutations_;
}

void
SetAssocTlb::invalidate(EntryKind kind, TlbKey key)
{
    invalidate(kind, key, asid());
}

void
SetAssocTlb::invalidate(EntryKind kind, TlbKey key, Asid target)
{
    ++mutations_;
    const TlbKey tagged = tlbTagKey(key, target);
    const std::size_t base =
        static_cast<std::size_t>(setIndex(tagged)) * ways_;
    const std::uint64_t want = tlbCmpWord(kind, tagged);
    for (unsigned w = 0; w < ways_; ++w) {
        if (cmp_[base + w] == want) {
            entries_[base + w].valid = false;
            cmp_[base + w] = 0;
            return;
        }
    }
}

void
SetAssocTlb::invalidateAsid(Asid target)
{
    ++mutations_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].valid && tlbKeyAsid(entries_[i].key) == target) {
            entries_[i].valid = false;
            cmp_[i] = 0;
            last_use_[i] = 0;
        }
    }
}

void
SetAssocTlb::setAsid(Asid asid)
{
    ATLB_ASSERT(asid.raw() <= tlbMaxAsid,
                "TLB '{}': ASID {} overflows the {}-bit tag field",
                name_, asid, tlbAsidBits);
    // Tag-word packing, not page math. lint-allow: page-shift
    asid_key_ = asid.raw() << tlbKeyAsidShift;
    // The hot entry the L0 filter cached belongs to the previous
    // address space; a mutation bump forces the re-probe.
    ++mutations_;
}

const TlbEntry &
SetAssocTlb::entryAt(unsigned set, unsigned way) const
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "entryAt({}, {}) out of range in '{}'", set, way, name_);
    return entries_[slot(set, way)];
}

std::uint64_t
SetAssocTlb::lastUseAt(unsigned set, unsigned way) const
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "lastUseAt({}, {}) out of range in '{}'", set, way, name_);
    return last_use_[slot(set, way)];
}

TlbEntry &
SetAssocTlb::entryAtForTest(unsigned set, unsigned way)
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "entryAtForTest({}, {}) out of range in '{}'", set, way,
                name_);
    // The caller may scribble on the entry through the reference, so
    // conservatively count the access as a mutation (invalidates any
    // outstanding L0-filter snapshot).
    ++mutations_;
    return entries_[slot(set, way)];
}

void
SetAssocTlb::setLastUseForTest(unsigned set, unsigned way, std::uint64_t t)
{
    ATLB_ASSERT(set < num_sets_ && way < ways_,
                "setLastUseForTest({}, {}) out of range in '{}'", set,
                way, name_);
    ++mutations_;
    last_use_[slot(set, way)] = t;
}

unsigned
SetAssocTlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace atlb
