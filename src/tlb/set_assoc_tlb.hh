/**
 * @file
 * Set-associative TLB with per-set LRU replacement.
 *
 * One structure serves every set-associative TLB in the design space:
 * L1 4KB, L1 2MB, the unified L2 (which, for the anchor scheme, holds
 * 4KB, 2MB and anchor entries side by side, paper Table 3), and the
 * cluster TLB (whose entries carry a sub-block bitmap).
 *
 * An entry is identified by (kind, key). The TlbKey has already been
 * shifted to the entry's natural granularity by the caller (via the
 * named makers in common/types.hh):
 *   - Page4K:  pageKey(vpn)            (the VPN itself)
 *   - Page2M:  hugeKey(vpn)            (VPN >> 9)
 *   - Anchor:  groupKey(avpn, log2(d)) (paper Fig. 6's indexing:
 *              consecutive anchors map to consecutive sets)
 *   - Cluster: the VPN's span group
 * The set index is the key's low bits; the full key is stored, so
 * distinct kinds never produce false matches.
 */

#ifndef ANCHORTLB_TLB_SET_ASSOC_TLB_HH
#define ANCHORTLB_TLB_SET_ASSOC_TLB_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "common/types.hh"

namespace atlb
{

/** What a TLB entry translates. */
enum class EntryKind : std::uint8_t
{
    Page4K,  //!< one 4KB page
    Page2M,  //!< one 2MB page
    Page1G,  //!< one 1GB page
    Anchor,  //!< anchor entry covering up to `aux` pages from its AVPN
    Cluster, //!< 8-page cluster with validity bitmap in `aux`
};

/** One TLB entry; `aux` is contiguity (Anchor) or bitmap (Cluster). */
struct TlbEntry
{
    TlbKey key{};
    Ppn ppn = invalidPpn;
    std::uint32_t aux = 0;
    EntryKind kind = EntryKind::Page4K;
    bool valid = false;
};

// The strong-typed fields must not change the entry layout the SoA
// lookup loop was tuned for (one 24-byte record, 8-byte aligned).
static_assert(sizeof(TlbEntry) == 24 && alignof(TlbEntry) == 8 &&
              std::is_trivially_copyable_v<TlbEntry>);

/**
 * Layout of a slot's compare word, the one u64 the probe path (scalar
 * and SIMD alike) tests per way:
 *
 *   [63:4] key   [3:1] kind   [0] valid
 *
 * An invalid slot stores 0 — bit 0 clear can never equal a probe word,
 * whose bit 0 is always set, so validity needs no separate test.
 *
 * The 60-bit key field itself splits into an ASID tag and the
 * scheme-computed key:
 *
 *   key = [59:48] asid   [47:0] scheme key
 *
 * Scheme keys must fit 48 bits; every maker in common/types.hh stays
 * below 2^48 (the widest is the multi-region anchor key: a 43-bit
 * AVPN-derived key with log2(distance) packed at bit 43), and insert()
 * asserts the budget so a future key maker cannot silently alias an
 * ASID tag. The TLB's current ASID (setAsid) is OR-ed into every key
 * at the lookup/insert/invalidate boundary, so the word layout, the
 * static_asserts and the SIMD probe kernels are all untouched —
 * tagging is just a different 64-bit constant to compare against.
 * ASID 0 (the single-process default) leaves every compare word
 * byte-identical to the untagged encoding.
 */
constexpr unsigned tlbCmpKindShift = 1;
constexpr unsigned tlbCmpKeyShift = 4;
constexpr unsigned tlbCmpKeyBits = 64 - tlbCmpKeyShift;
constexpr std::uint64_t tlbCmpValidBit = 1;

/** Bit position of the ASID tag within a TlbKey. */
constexpr unsigned tlbKeyAsidShift = 48;
/** Width of the ASID tag field. */
constexpr unsigned tlbAsidBits = 12;
/** Largest ASID the tag field can hold. */
constexpr std::uint64_t tlbMaxAsid = (1ULL << tlbAsidBits) - 1;

// The ASID tag and the scheme key must exactly fill the compare
// word's key field — no aliasing, no dead bits.
static_assert(tlbKeyAsidShift + tlbAsidBits == tlbCmpKeyBits);

/** @p key with @p asid folded into the tag bits ([59:48]). */
constexpr TlbKey
tlbTagKey(TlbKey key, Asid asid)
{
    // Tag-word packing, not page math. lint-allow: page-shift
    return TlbKey{key.raw() | (asid.raw() << tlbKeyAsidShift)};
}

/** The ASID tag of a stored (tagged) key. */
inline Asid
tlbKeyAsid(TlbKey key)
{
    // Tag-word unpacking, not page math. lint-allow: page-shift
    return Asid{key.raw() >> tlbKeyAsidShift};
}

// Every EntryKind must fit the compare word's kind field.
static_assert(static_cast<unsigned>(EntryKind::Cluster) <
              (1U << (tlbCmpKeyShift - tlbCmpKindShift)));

/** The compare word a valid (kind, key) slot stores and probes seek. */
inline std::uint64_t
tlbCmpWord(EntryKind kind, TlbKey key)
{
    // Tag-word packing, not page math. lint-allow: page-shift
    return (key.raw() << tlbCmpKeyShift) |
           (static_cast<std::uint64_t>(kind) << tlbCmpKindShift) |
           tlbCmpValidBit;
}

/**
 * Reference probe: index of the first way whose compare word equals
 * @p want, or -1. The scalar flavour every lookup() uses, and the
 * behavioural specification the SIMD probes are tested against.
 */
inline int
scalarFindWay(const std::uint64_t *cmp, unsigned ways,
              std::uint64_t want)
{
    for (unsigned w = 0; w < ways; ++w)
        if (cmp[w] == want)
            return static_cast<int>(w);
    return -1;
}

/** Hit/miss and occupancy statistics for one TLB. */
struct TlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    std::uint64_t misses() const { return lookups - hits; }
};

/**
 * Probe policy for SetAssocTlb::lookup(), chosen at construction.
 *
 * ScalarInline (the default) keeps the inlined scalar scan: on the
 * narrow 4-way L1s, probed on every access, an indirect call costs
 * more than the scan it would replace (DESIGN.md §7.3). Wide
 * structures — the 8-way scheme L2s, probed only after an L1 miss —
 * opt into SimdDispatch: the construction-time SIMD probe covers the
 * set in a vector compare or two instead of up to `ways` scalar
 * iterations, and the one indirect call amortises against the miss
 * path it sits on. Either way the same single way is found (the
 * no-duplicate invariant), so results are byte-identical.
 */
enum class SetProbe
{
    ScalarInline,
    SimdDispatch,
};

/** Set-associative TLB with true-LRU replacement within each set. */
class SetAssocTlb
{
  public:
    /**
     * @param entries total entry count
     * @param ways    associativity; must divide entries into a
     *                power-of-two number of sets
     * @param name    display name for reports
     * @param probe   lookup() probe policy (see SetProbe)
     */
    SetAssocTlb(unsigned entries, unsigned ways, std::string name,
                SetProbe probe = SetProbe::ScalarInline);

    /**
     * Look up (kind, key) with the probe flavour supplied by the
     * caller; updates LRU on hit.
     * @param find  callable (cmp_words, ways, want) -> matching way
     *              index or -1; the batch kernels pass their inlined
     *              vector probe, everything else uses lookup().
     * @return the entry, or nullptr on miss.
     *
     * Defined inline: this is the hottest function in the simulator
     * (several lookups per simulated access) and must disappear into
     * its callers in optimised builds. On the per-access path the
     * probe flavour is a compile-time parameter of the *calling TU*
     * (the batch-kernel TUs pass their inlined vector probe):
     * dispatching every lookup through a pointer was measured to cost
     * more than the 4-way scan it replaced (DESIGN.md §7.3). The one
     * sanctioned pointer dispatch is lookup() on SetProbe::SimdDispatch
     * TLBs, where the call sits on the L1-miss path and amortises.
     *
     * Every probe flavour reads the same bytes: the set's compare
     * words in cmp_. The scalar loop and the SIMD kernels are
     * interchangeable because a set holds at most one slot matching a
     * (kind, key) word (insert() overwrites in place; src/check pins
     * the no-duplicate invariant), so whatever order ways are compared
     * in, the same single way — or none — is found, and the LRU touch,
     * stats increments and returned entry are identical.
     */
    template <class FindFn>
    const TlbEntry *lookupWith(EntryKind kind, TlbKey key, FindFn &&find)
    {
        ++stats_.lookups;
        // The ASID tag lives in the key's high bits, so the set index
        // (low bits) is untouched and tagging is one OR on the probe
        // word — zero-cost for ASID 0, and invisible to the SIMD
        // kernels, which only ever see the final 64-bit compare word.
        key = TlbKey{key.raw() | asid_key_};
        const std::size_t base =
            static_cast<std::size_t>(key.raw() & set_mask_) * ways_;
        const std::uint64_t want = tlbCmpWord(kind, key);
        const int w = find(cmp_.data() + base, ways_, want);
        if (w < 0)
            return nullptr;
        last_use_[base + static_cast<unsigned>(w)] = ++tick_;
        ++stats_.hits;
        return &entries_[base + static_cast<unsigned>(w)];
    }

    /**
     * Look up (kind, key) with this TLB's construction-time probe:
     * the inlined scalar scan, or — for SetProbe::SimdDispatch TLBs
     * on SIMD-capable hardware — the dispatched vector probe. The
     * null check is one well-predicted branch; ScalarInline TLBs
     * never pay an indirect call.
     */
    const TlbEntry *lookup(EntryKind kind, TlbKey key)
    {
        if (find_ != nullptr)
            return lookupWith(kind, key, find_);
        return lookupWith(kind, key, scalarFindWay);
    }

    /**
     * Hint the prefetcher at @p key's set — the compare words the
     * probe will scan and the first payload line a hit will read — so
     * a batch kernel can warm the translate path a few *probes* ahead
     * of the lookup (mmu/mmu.hh, kBatchPrefetchDistance).
     * Semantics-free.
     */
    void prefetchSet(TlbKey key) const
    {
        const std::size_t base =
            static_cast<std::size_t>(key.raw() & set_mask_) * ways_;
        __builtin_prefetch(cmp_.data() + base, 0, 3);
        __builtin_prefetch(entries_.data() + base, 0, 2);
    }

    /**
     * Probe without updating LRU or statistics (for tests/inspection).
     */
    const TlbEntry *probe(EntryKind kind, TlbKey key) const;

    /**
     * Insert an entry, evicting the set's LRU victim if needed. If an
     * entry with the same (kind, key) exists it is overwritten in place.
     */
    void insert(const TlbEntry &entry);

    /** Invalidate everything (TLB shootdown / distance change). */
    void flush();

    /** Invalidate one entry of the current ASID if present. */
    void invalidate(EntryKind kind, TlbKey key);

    /** Invalidate one entry of a specific ASID if present. */
    void invalidate(EntryKind kind, TlbKey key, Asid asid);

    /**
     * Invalidate every entry tagged with @p asid (address-space
     * teardown, or a shootdown hitting a descheduled process). Entries
     * of other ASIDs are untouched — the whole point of tagging.
     */
    void invalidateAsid(Asid asid);

    /**
     * Set the ASID tagged onto subsequent lookups/inserts/invalidates.
     * Retained entries of other ASIDs stay resident and simply stop
     * matching. Must fit the tag field (<= tlbMaxAsid); bumps
     * mutations() so the L0 filter can never replay across a switch.
     */
    void setAsid(Asid asid);

    /** The current ASID (0 = untagged single-process default). */
    Asid asid() const
    {
        // Tag-word unpacking, not page math. lint-allow: page-shift
        return Asid{asid_key_ >> tlbKeyAsidShift};
    }

    const TlbStats &stats() const { return stats_; }

    /**
     * Monotone count of state mutations: insert(), invalidate() and
     * flush() each bump it (invalidate even when the entry is absent —
     * callers snapshot-compare, so over-counting is merely
     * conservative). Together with stats().lookups this defines the
     * L0-filter invalidation contract (mmu/mmu.hh): a cached "the last
     * translation is still the hot entry" shortcut is valid only while
     * *both* counters are unchanged, i.e. while the TLB has been
     * neither probed nor mutated since the snapshot. Lookups matter
     * too, not just mutations: an intervening probe of another key
     * advances the LRU clock, so replaying the filter without
     * re-touching the entry would change relative recency.
     */
    std::uint64_t mutations() const { return mutations_; }

    unsigned numSets() const { return num_sets_; }
    unsigned numWays() const { return ways_; }
    const std::string &name() const { return name_; }

    /** Number of currently valid entries (for occupancy reports). */
    unsigned validCount() const;

    /** Inspection: the entry stored at (set, way), valid or not. */
    const TlbEntry &entryAt(unsigned set, unsigned way) const;

    /** Inspection: LRU timestamp of (set, way); 0 = never touched. */
    std::uint64_t lastUseAt(unsigned set, unsigned way) const;

    /** Current LRU clock (upper bound on every lastUseAt). */
    std::uint64_t lruTick() const { return tick_; }

    /**
     * Mutable access to a stored entry for corruption-injection tests
     * of the invariant checkers (src/check). Never called by the
     * simulator itself. Scribbles land only on entries_ — the
     * compare-word mirror is deliberately left stale, which is fine
     * because the invariant checkers read entryAt() directly and the
     * corruption tests never probe through lookup().
     */
    TlbEntry &entryAtForTest(unsigned set, unsigned way);

    /** Same, for the LRU timestamp of (set, way). */
    void setLastUseForTest(unsigned set, unsigned way, std::uint64_t t);

  private:
    unsigned num_sets_;
    unsigned ways_;
    std::uint64_t set_mask_; //!< num_sets_ - 1, hoisted off the hot path
    std::string name_;
    /**
     * Flat set-major storage, split structure-of-arrays style. The
     * probe path touches only cmp_ — one tlbCmpWord per slot, a set's
     * ways contiguous, the array simdAlignBytes-aligned so a 4-way set
     * is one aligned 256-bit load. entries_ carries the payload
     * (returned pointers keep their type and meaning); LRU timestamps
     * live in a third array so they stay off the compare path's cache
     * lines. cmp_[slot] is non-zero iff entries_[slot].valid — insert,
     * invalidate and flush maintain the mirror (entryAtForTest
     * deliberately does not; see its contract).
     */
    std::vector<TlbEntry> entries_;       // num_sets_ * ways_
    AlignedU64Buffer cmp_;                // parallel: compare words
    std::vector<std::uint64_t> last_use_; // parallel to entries_
    /**
     * lookup()'s dispatched probe, or null for the inline scalar scan.
     * Non-null only for SetProbe::SimdDispatch TLBs when the
     * construction-time SIMD level has a findU64 kernel (so a
     * scalar-forced run never dispatches and stays the reference).
     */
    SimdFindU64Fn find_ = nullptr;
    /**
     * The current ASID pre-shifted into key space
     * (asid << tlbKeyAsidShift), so tagging a key is a single OR on
     * the probe path. 0 reproduces the untagged encoding exactly.
     */
    std::uint64_t asid_key_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t mutations_ = 0;
    TlbStats stats_;

    unsigned setIndex(TlbKey key) const
    {
        return static_cast<unsigned>(key.raw() & set_mask_);
    }

    std::size_t slot(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

} // namespace atlb

#endif // ANCHORTLB_TLB_SET_ASSOC_TLB_HH
