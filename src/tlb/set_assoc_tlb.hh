/**
 * @file
 * Set-associative TLB with per-set LRU replacement.
 *
 * One structure serves every set-associative TLB in the design space:
 * L1 4KB, L1 2MB, the unified L2 (which, for the anchor scheme, holds
 * 4KB, 2MB and anchor entries side by side, paper Table 3), and the
 * cluster TLB (whose entries carry a sub-block bitmap).
 *
 * An entry is identified by (kind, key). The TlbKey has already been
 * shifted to the entry's natural granularity by the caller (via the
 * named makers in common/types.hh):
 *   - Page4K:  pageKey(vpn)            (the VPN itself)
 *   - Page2M:  hugeKey(vpn)            (VPN >> 9)
 *   - Anchor:  groupKey(avpn, log2(d)) (paper Fig. 6's indexing:
 *              consecutive anchors map to consecutive sets)
 *   - Cluster: the VPN's span group
 * The set index is the key's low bits; the full key is stored, so
 * distinct kinds never produce false matches.
 */

#ifndef ANCHORTLB_TLB_SET_ASSOC_TLB_HH
#define ANCHORTLB_TLB_SET_ASSOC_TLB_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace atlb
{

/** What a TLB entry translates. */
enum class EntryKind : std::uint8_t
{
    Page4K,  //!< one 4KB page
    Page2M,  //!< one 2MB page
    Page1G,  //!< one 1GB page
    Anchor,  //!< anchor entry covering up to `aux` pages from its AVPN
    Cluster, //!< 8-page cluster with validity bitmap in `aux`
};

/** One TLB entry; `aux` is contiguity (Anchor) or bitmap (Cluster). */
struct TlbEntry
{
    TlbKey key{};
    Ppn ppn = invalidPpn;
    std::uint32_t aux = 0;
    EntryKind kind = EntryKind::Page4K;
    bool valid = false;
};

// The strong-typed fields must not change the entry layout the SoA
// lookup loop was tuned for (one 24-byte record, 8-byte aligned).
static_assert(sizeof(TlbEntry) == 24 && alignof(TlbEntry) == 8 &&
              std::is_trivially_copyable_v<TlbEntry>);

/** Hit/miss and occupancy statistics for one TLB. */
struct TlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    std::uint64_t misses() const { return lookups - hits; }
};

/** Set-associative TLB with true-LRU replacement within each set. */
class SetAssocTlb
{
  public:
    /**
     * @param entries total entry count
     * @param ways    associativity; must divide entries into a
     *                power-of-two number of sets
     * @param name    display name for reports
     */
    SetAssocTlb(unsigned entries, unsigned ways, std::string name);

    /**
     * Look up (kind, key); updates LRU on hit.
     * @return the entry, or nullptr on miss.
     *
     * Defined inline: this is the hottest function in the simulator
     * (several lookups per simulated access) and must disappear into
     * its callers in optimised builds.
     */
    const TlbEntry *lookup(EntryKind kind, TlbKey key)
    {
        ++stats_.lookups;
        const std::size_t base =
            static_cast<std::size_t>(key.raw() & set_mask_) * ways_;
        const TlbEntry *set = entries_.data() + base;
        for (unsigned w = 0; w < ways_; ++w) {
            const TlbEntry &e = set[w];
            if (e.key == key && e.valid && e.kind == kind) {
                last_use_[base + w] = ++tick_;
                ++stats_.hits;
                return &e;
            }
        }
        return nullptr;
    }

    /**
     * Probe without updating LRU or statistics (for tests/inspection).
     */
    const TlbEntry *probe(EntryKind kind, TlbKey key) const;

    /**
     * Insert an entry, evicting the set's LRU victim if needed. If an
     * entry with the same (kind, key) exists it is overwritten in place.
     */
    void insert(const TlbEntry &entry);

    /** Invalidate everything (TLB shootdown / distance change). */
    void flush();

    /** Invalidate one entry if present. */
    void invalidate(EntryKind kind, TlbKey key);

    const TlbStats &stats() const { return stats_; }

    /**
     * Monotone count of state mutations: insert(), invalidate() and
     * flush() each bump it (invalidate even when the entry is absent —
     * callers snapshot-compare, so over-counting is merely
     * conservative). Together with stats().lookups this defines the
     * L0-filter invalidation contract (mmu/mmu.hh): a cached "the last
     * translation is still the hot entry" shortcut is valid only while
     * *both* counters are unchanged, i.e. while the TLB has been
     * neither probed nor mutated since the snapshot. Lookups matter
     * too, not just mutations: an intervening probe of another key
     * advances the LRU clock, so replaying the filter without
     * re-touching the entry would change relative recency.
     */
    std::uint64_t mutations() const { return mutations_; }

    unsigned numSets() const { return num_sets_; }
    unsigned numWays() const { return ways_; }
    const std::string &name() const { return name_; }

    /** Number of currently valid entries (for occupancy reports). */
    unsigned validCount() const;

    /** Inspection: the entry stored at (set, way), valid or not. */
    const TlbEntry &entryAt(unsigned set, unsigned way) const;

    /** Inspection: LRU timestamp of (set, way); 0 = never touched. */
    std::uint64_t lastUseAt(unsigned set, unsigned way) const;

    /** Current LRU clock (upper bound on every lastUseAt). */
    std::uint64_t lruTick() const { return tick_; }

    /**
     * Mutable access to a stored entry for corruption-injection tests
     * of the invariant checkers (src/check). Never called by the
     * simulator itself.
     */
    TlbEntry &entryAtForTest(unsigned set, unsigned way);

    /** Same, for the LRU timestamp of (set, way). */
    void setLastUseForTest(unsigned set, unsigned way, std::uint64_t t);

  private:
    unsigned num_sets_;
    unsigned ways_;
    std::uint64_t set_mask_; //!< num_sets_ - 1, hoisted off the hot path
    std::string name_;
    /**
     * Flat set-major storage, split structure-of-arrays style: the
     * lookup loop touches only entries_ (compare fields packed
     * contiguously per set); LRU timestamps live in a parallel array so
     * they stay off the compare path's cache lines.
     */
    std::vector<TlbEntry> entries_;       // num_sets_ * ways_
    std::vector<std::uint64_t> last_use_; // parallel to entries_
    std::uint64_t tick_ = 0;
    std::uint64_t mutations_ = 0;
    TlbStats stats_;

    unsigned setIndex(TlbKey key) const
    {
        return static_cast<unsigned>(key.raw() & set_mask_);
    }

    std::size_t slot(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

} // namespace atlb

#endif // ANCHORTLB_TLB_SET_ASSOC_TLB_HH
