/**
 * @file
 * Fully-associative range TLB for the RMM scheme (Karakostas et al.,
 * ISCA 2015; paper Section 2.1 and Table 3).
 *
 * Each entry maps a variable-length virtual range [vpn_start, vpn_end)
 * to a physically contiguous region starting at ppn_start. The paper's
 * configuration is 32 entries with full associativity (a range lookup
 * requires comparing against every entry's bounds), replaced LRU.
 */

#ifndef ANCHORTLB_TLB_RANGE_TLB_HH
#define ANCHORTLB_TLB_RANGE_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

/** One variable-length range translation. */
struct RangeEntry
{
    Vpn vpn_start{};
    Vpn vpn_end{}; //!< exclusive
    Ppn ppn_start = invalidPpn;

    bool contains(Vpn vpn) const
    {
        return vpn >= vpn_start && vpn < vpn_end;
    }

    Ppn translate(Vpn vpn) const { return ppn_start + (vpn - vpn_start); }
};

/**
 * Fully-associative, LRU-replaced cache of range translations.
 *
 * Slots are ASID-tagged the same way SetAssocTlb tags its compare
 * words: lookups/inserts/invalidations match only slots of the
 * current ASID (setAsid), so ranges of different address spaces
 * coexist; ASID 0 reproduces the untagged single-process behaviour.
 */
class RangeTlb
{
  public:
    explicit RangeTlb(unsigned entries);

    /** Find the current ASID's range containing @p vpn; updates LRU. */
    const RangeEntry *lookup(Vpn vpn);

    /** Insert a range, evicting LRU if full; deduplicates exact ranges. */
    void insert(const RangeEntry &range);

    void flush();

    /**
     * Invalidate the current ASID's ranges containing @p vpn
     * (targeted shootdown).
     */
    void invalidateContaining(Vpn vpn);

    /** Same, but against a specific address space. */
    void invalidateContaining(Vpn vpn, Asid asid);

    /** Invalidate every range tagged with @p asid. */
    void invalidateAsid(Asid asid);

    /** Set the ASID tagged onto subsequent operations. */
    void setAsid(Asid asid) { asid_ = asid; }

    /** The current ASID (0 = untagged single-process default). */
    Asid asid() const { return asid_; }

    const TlbStats &stats() const { return stats_; }
    unsigned capacity() const { return capacity_; }
    unsigned size() const;

  private:
    struct Slot
    {
        RangeEntry range;
        std::uint64_t last_use = 0;
        Asid asid{};
        bool valid = false;
    };

    unsigned capacity_;
    std::vector<Slot> slots_;
    std::uint64_t tick_ = 0;
    Asid asid_{};
    TlbStats stats_;
};

} // namespace atlb

#endif // ANCHORTLB_TLB_RANGE_TLB_HH
