/**
 * @file
 * Page-walk cache (MMU caches): small translation caches for the upper
 * page-table levels, as in real x86 implementations (Barr et al., ISCA
 * 2010; Bhattacharjee, MICRO 2013 — paper Section 6, "Reducing TLB Miss
 * Penalty").
 *
 * The paper charges a fixed 50-cycle walk (Table 3). This optional
 * model refines that: a walk costs one memory reference per page-table
 * level not covered by the PWC, so warm walks touch only the PTE while
 * cold ones traverse all four levels. Used by the walk-latency ablation
 * to show the paper's conclusions are robust to the walk model.
 */

#ifndef ANCHORTLB_TLB_WALK_CACHE_HH
#define ANCHORTLB_TLB_WALK_CACHE_HH

#include <cstdint>

#include "common/types.hh"
#include "tlb/set_assoc_tlb.hh"

namespace atlb
{

/** Per-level caches of upper page-table entries. */
class WalkCache
{
  public:
    /**
     * @param pml4e_entries,pdpte_entries,pde_entries capacities of the
     *        per-level fully-associative caches.
     */
    WalkCache(unsigned pml4e_entries, unsigned pdpte_entries,
              unsigned pde_entries);

    /**
     * Memory references needed to walk to the leaf for @p vpn and to
     * refill the caches along the way.
     *
     * @param leaf_level levels the radix walk traverses to reach the
     *        leaf (3 for a 2MB leaf, 4 for a 4KB PTE).
     * @return references performed, in [1, leaf_level].
     */
    unsigned walkRefs(Vpn vpn, unsigned leaf_level);

    void flush();

    const TlbStats &pdeStats() const { return pde_.stats(); }

  private:
    SetAssocTlb pml4e_;
    SetAssocTlb pdpte_;
    SetAssocTlb pde_;
};

} // namespace atlb

#endif // ANCHORTLB_TLB_WALK_CACHE_HH
