#include "trace_open.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/logging.hh"
#include "ingest/mapped_trace.hh"
#include "ingest/trace_v2.hh"

namespace atlb
{

namespace
{

std::uint64_t
fileBytes(std::ifstream &in)
{
    in.seekg(0, std::ios::end);
    const std::uint64_t bytes = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    return bytes;
}

} // namespace

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::V1: return "atlbtrc1";
      case TraceKind::V2: return "atlbtrc2";
    }
    return "?";
}

TraceKind
sniffTraceKind(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        ATLB_FATAL("cannot open trace file '{}'", path);
    char magic[8] = {};
    if (!in.read(magic, 8))
        ATLB_FATAL("'{}' is too short to be a trace file", path);
    if (std::memcmp(magic, "ATLBTRC1", 8) == 0)
        return TraceKind::V1;
    if (std::memcmp(magic, "ATLBTRC2", 8) == 0)
        return TraceKind::V2;
    ATLB_FATAL("'{}' is neither an ATLBTRC1 nor an ATLBTRC2 trace file",
               path);
}

TraceFileInfo
inspectTraceFile(const std::string &path)
{
    TraceFileInfo info;
    info.kind = sniffTraceKind(path);
    {
        std::ifstream in(path, std::ios::binary);
        info.file_bytes = fileBytes(in);
    }
    if (info.kind == TraceKind::V2) {
        TraceV2Source src(path);
        info.accesses = src.length();
        info.min_vaddr = src.length() > 0 ? src.minVaddr() : 0;
        info.max_vaddr = src.length() > 0 ? src.maxVaddr() : 0;
        info.block_capacity = src.blockCapacity();
        info.blocks = src.blockCount();
        return info;
    }
    // v1 stores no bounds; one sequential pass over the mapping.
    MappedTraceSource src(path);
    info.accesses = src.length();
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    MemAccess batch[1024];
    std::size_t got;
    while ((got = src.fill(batch, 1024)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            lo = std::min(lo, batch[i].vaddr.raw());
            hi = std::max(hi, batch[i].vaddr.raw());
        }
    }
    info.min_vaddr = info.accesses > 0 ? lo : 0;
    info.max_vaddr = info.accesses > 0 ? hi : 0;
    return info;
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    switch (sniffTraceKind(path)) {
      case TraceKind::V1:
        return std::make_unique<MappedTraceSource>(path);
      case TraceKind::V2:
        return std::make_unique<TraceV2Source>(path);
    }
    ATLB_PANIC("unreachable trace kind");
}

ClampedTraceSource::ClampedTraceSource(std::unique_ptr<TraceSource> inner,
                                       std::uint64_t limit)
    : inner_(std::move(inner)), limit_(limit)
{
    ATLB_ASSERT(inner_ != nullptr, "clamping a null trace source");
}

bool
ClampedTraceSource::next(MemAccess &out)
{
    if (consumed_ >= limit_)
        return false;
    if (!inner_->next(out))
        return false;
    ++consumed_;
    return true;
}

std::size_t
ClampedTraceSource::fill(MemAccess *out, std::size_t max)
{
    const std::uint64_t left = limit_ - consumed_;
    if (left == 0)
        return 0;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, left));
    const std::size_t got = inner_->fill(out, want);
    consumed_ += got;
    return got;
}

void
ClampedTraceSource::skip(std::uint64_t n)
{
    n = std::min(n, limit_ - consumed_);
    inner_->skip(n);
    consumed_ += n;
}

void
ClampedTraceSource::reset()
{
    inner_->reset();
    consumed_ = 0;
}

} // namespace atlb
