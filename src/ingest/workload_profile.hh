/**
 * @file
 * Whole-workload characterisation of an imported trace.
 *
 * The page-level TraceProfiler (trace/profiler.hh) answers the TLB-side
 * questions (reuse, strides); a trace-driven *workload* additionally
 * needs the OS-side view: how big is the footprint, and how contiguous
 * are the touched virtual pages? The latter is exactly the quantity
 * os/distance_selector consumes — the paper's OS summarises a mapping
 * as a chunk-size histogram and picks the anchor distance from it — so
 * the profiler emits its contiguity histogram in that shape
 * (chunk size in pages -> number of chunks over the sorted touched-VPN
 * set) and can run Algorithm 1 on it directly. Tests cross-check this
 * histogram against MemoryMap::contiguityHistogram for a mapping built
 * from the same pages.
 */

#ifndef ANCHORTLB_INGEST_WORKLOAD_PROFILE_HH
#define ANCHORTLB_INGEST_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_set>

#include "common/types.hh"
#include "os/distance_selector.hh"
#include "stats/histogram.hh"
#include "trace/access.hh"
#include "trace/profiler.hh"

namespace atlb
{

/** OS-facing summary of one trace-driven workload. */
struct WorkloadProfile
{
    TraceProfile pages; //!< page-level reuse/stride profile

    std::uint64_t footprint_pages = 0; //!< distinct 4KB pages touched
    std::uint64_t footprint_bytes = 0;
    std::uint64_t min_vaddr = 0; //!< 0 when the trace is empty
    std::uint64_t max_vaddr = 0;

    /**
     * |Δvpn| between consecutive accesses, log2-bucketed (bucket 0 =
     * same or adjacent page, bucket i = [2^i, 2^(i+1)) pages).
     */
    Log2Histogram stride{33};

    /**
     * Chunk-size histogram of the touched-VPN set: maximal runs of
     * consecutive VPNs, size in pages -> run count. Same shape as
     * MemoryMap::contiguityHistogram, so it feeds
     * selectAnchorDistance unchanged.
     */
    Histogram contiguity;

    /** Algorithm 1 run on `contiguity` (EntryCount cost model). */
    DistanceSelection anchor_distance;
};

/** Streaming builder for WorkloadProfile; memory is O(unique pages). */
class WorkloadProfiler
{
  public:
    WorkloadProfiler() = default;
    WorkloadProfiler(const WorkloadProfiler &) = delete;
    WorkloadProfiler &operator=(const WorkloadProfiler &) = delete;

    /** Feed one access. */
    void record(const MemAccess &access);

    /** Drain @p source to exhaustion through the profiler. */
    void consume(TraceSource &source);

    /**
     * Snapshot the profile: sorts the touched-VPN set into contiguity
     * runs and runs the distance selection (may be called repeatedly).
     */
    WorkloadProfile profile() const;

  private:
    TraceProfiler pages_;
    std::unordered_set<Vpn> touched_;
    Log2Histogram stride_{33};
    Vpn last_vpn_ = invalidVpn;
    std::uint64_t min_vaddr_ = ~0ULL;
    std::uint64_t max_vaddr_ = 0;
    std::uint64_t accesses_ = 0;
};

/**
 * Emit @p profile as one JSON document to @p os (used by
 * `anchortlb profile --json` and `anchortlb trace info --profile`).
 */
void writeWorkloadProfileJson(std::ostream &os,
                              const WorkloadProfile &profile);

} // namespace atlb

#endif // ANCHORTLB_INGEST_WORKLOAD_PROFILE_HH
