/**
 * @file
 * ATLBTRC2: block-based compressed, seekable on-disk trace format.
 *
 * The v1 format (trace_io.hh) spends a fixed 8 bytes per access, which
 * makes real captured traces impractically large: a 2B-access stream is
 * 16GB. Real access streams are highly local — most accesses land on or
 * near the previous page — so v2 delta-encodes them:
 *
 *   [0..8)   magic "ATLBTRC2"
 *   [8..16)  little-endian block capacity (accesses per full block)
 *   blocks   back to back; block i holds exactly `capacity` accesses
 *            (the last block holds the remainder)
 *   index    one 32-byte entry per block:
 *            {file offset, payload bytes, access count, FNV-1a checksum}
 *   trailer  64 bytes: {index offset, block count, total accesses,
 *            min vaddr, max vaddr, index FNV-1a, reserved,
 *            magic "ATLBEND2"}
 *
 * A block encodes words word = (vaddr << 1) | write as zigzagged
 * first-order deltas (the first access of a block deltas against 0, so
 * every block decodes independently). Virtual addresses must fit 63
 * bits (x86-64 uses 57); the writer rejects larger ones. The block body
 * starts with one encoding-tag byte; the writer picks whichever
 * encoding is smaller for that block:
 *
 *   tag 0  varint: each delta is one LEB128 varint. Wins on local
 *          streams, where most deltas fit 1-2 bytes.
 *   tag 1  bit-packed: a width byte w, the first word as one varint,
 *          then the remaining count-1 zigzag deltas packed at w bits
 *          each (little-endian bit order). Wins on uniformly scattered
 *          streams (gups-like), where varint's per-byte continuation
 *          bits waste ~12% and every delta is large anyway.
 *
 * Why this shape:
 *  - Fixed access count per block means TraceSource::skip computes the
 *    target block as consumed / capacity — O(1) across block
 *    boundaries, which sim/sharded_runner's exact-slice seeking
 *    requires. Only the landing block is decoded.
 *  - Per-block checksums mean a flipped bit is detected at decode time
 *    with a fatal diagnostic instead of silently simulating garbage;
 *    the checksummed index means footer corruption is caught at open.
 *  - Delta coding brings paper-style streams to ~2-3 bytes/access and
 *    caps pathological random streams near 4.5 (bench_trace_codec
 *    records the measured ratio against v1).
 */

#ifndef ANCHORTLB_INGEST_TRACE_V2_HH
#define ANCHORTLB_INGEST_TRACE_V2_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace atlb
{

/** Accesses per full block; 64Ki keeps blocks ~100-200KB encoded. */
constexpr std::uint64_t traceV2DefaultBlockCapacity = 64 * 1024;

/** FNV-1a 64-bit over @p size bytes (the v2 payload/index checksum). */
std::uint64_t fnv1a64(const void *data, std::size_t size);

/** Streaming writer for the ATLBTRC2 format. */
class TraceV2Writer
{
  public:
    /**
     * Open @p path for writing; fatal on failure.
     * @param block_capacity accesses per block — the seek granularity;
     *        tests shrink it to force multi-block files on tiny streams.
     */
    explicit TraceV2Writer(
        const std::string &path,
        std::uint64_t block_capacity = traceV2DefaultBlockCapacity);
    ~TraceV2Writer();

    TraceV2Writer(const TraceV2Writer &) = delete;
    TraceV2Writer &operator=(const TraceV2Writer &) = delete;

    /** Append one access; fatal if vaddr needs more than 63 bits. */
    void append(const MemAccess &access);

    /** Flush the tail block, index and trailer; idempotent. */
    void close();

    std::uint64_t written() const { return total_; }

  private:
    struct BlockEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint64_t count = 0;
        std::uint64_t fnv = 0;
    };

    void flushBlock();

    std::ofstream out_;
    std::string path_;
    std::uint64_t block_capacity_;
    std::vector<std::uint64_t> deltas_;  //!< zigzag deltas, current block
    std::vector<std::uint8_t> body_;     //!< encode scratch
    std::uint64_t prev_word_ = 0;        //!< delta base within the block
    std::uint64_t cursor_;               //!< next block's file offset
    std::vector<BlockEntry> index_;
    std::uint64_t total_ = 0;
    std::uint64_t min_vaddr_ = ~0ULL;
    std::uint64_t max_vaddr_ = 0;
    bool closed_ = false;
};

/** TraceSource replaying an ATLBTRC2 file. */
class TraceV2Source : public TraceSource
{
  public:
    /** Open and validate @p path; fatal on any inconsistency. */
    explicit TraceV2Source(const std::string &path);

    bool next(MemAccess &out) override;

    /** Batched decode: copies runs out of the decoded block buffer. */
    std::size_t fill(MemAccess *out, std::size_t max) override;

    /**
     * O(1) reposition: the target block index is a division; no
     * intervening block is read or decoded (the landing block decodes
     * lazily on the next read).
     */
    void skip(std::uint64_t n) override;

    void reset() override;

    std::uint64_t length() const { return total_; }
    std::uint64_t blockCapacity() const { return block_capacity_; }
    std::uint64_t blockCount() const { return index_.size(); }
    /** Smallest/largest vaddr in the stream (from the trailer). */
    std::uint64_t minVaddr() const { return min_vaddr_; }
    std::uint64_t maxVaddr() const { return max_vaddr_; }

  private:
    struct BlockEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint64_t count = 0;
        std::uint64_t fnv = 0;
    };

    /** Read, checksum and decode block @p b into decoded_. */
    void loadBlock(std::size_t b);

    std::ifstream in_;
    std::string path_;
    std::uint64_t block_capacity_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t min_vaddr_ = ~0ULL;
    std::uint64_t max_vaddr_ = 0;
    std::vector<BlockEntry> index_;

    std::vector<MemAccess> decoded_;
    std::size_t loaded_block_ = ~std::size_t{0};
    std::uint64_t consumed_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_INGEST_TRACE_V2_HH
