/**
 * @file
 * ATLBTRC2: block-based compressed, seekable on-disk trace format.
 *
 * The v1 format (trace_io.hh) spends a fixed 8 bytes per access, which
 * makes real captured traces impractically large: a 2B-access stream is
 * 16GB. Real access streams are highly local — most accesses land on or
 * near the previous page — so v2 delta-encodes them:
 *
 *   [0..8)   magic "ATLBTRC2"
 *   [8..16)  little-endian block capacity (accesses per full block)
 *   blocks   back to back; block i holds exactly `capacity` accesses
 *            (the last block holds the remainder)
 *   index    one 32-byte entry per block:
 *            {file offset, payload bytes, access count, FNV-1a checksum}
 *   trailer  64 bytes: {index offset, block count, total accesses,
 *            min vaddr, max vaddr, index FNV-1a, reserved,
 *            magic "ATLBEND2"}
 *
 * A block encodes words word = (vaddr << 1) | write as zigzagged
 * first-order deltas (the first access of a block deltas against 0, so
 * every block decodes independently). Virtual addresses must fit 63
 * bits (x86-64 uses 57); the writer rejects larger ones. The block body
 * starts with one encoding-tag byte; the writer picks whichever
 * encoding is smaller for that block:
 *
 *   tag 0  varint: each delta is one LEB128 varint. Wins on local
 *          streams, where most deltas fit 1-2 bytes.
 *   tag 1  bit-packed: a width byte w, the first word as one varint,
 *          then the remaining count-1 zigzag deltas packed at w bits
 *          each (little-endian bit order). Wins on uniformly scattered
 *          streams (gups-like), where varint's per-byte continuation
 *          bits waste ~12% and every delta is large anyway.
 *
 * Why this shape:
 *  - Fixed access count per block means TraceSource::skip computes the
 *    target block as consumed / capacity — O(1) across block
 *    boundaries, which sim/sharded_runner's exact-slice seeking
 *    requires. Only the landing block is decoded.
 *  - Per-block checksums mean a flipped bit is detected at decode time
 *    with a fatal diagnostic instead of silently simulating garbage;
 *    the checksummed index means footer corruption is caught at open.
 *  - Delta coding brings paper-style streams to ~2-3 bytes/access and
 *    caps pathological random streams near 4.5 (bench_trace_codec
 *    records the measured ratio against v1).
 */

#ifndef ANCHORTLB_INGEST_TRACE_V2_HH
#define ANCHORTLB_INGEST_TRACE_V2_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.hh" // fnv1a64: the v2 payload/index checksum
#include "common/simd.hh"
#include "trace/access.hh"

namespace atlb
{

/** Accesses per full block; 64Ki keeps blocks ~100-200KB encoded. */
constexpr std::uint64_t traceV2DefaultBlockCapacity = 64 * 1024;

/** Block-body encoding tags (the body's first byte). */
constexpr std::uint8_t traceV2EncodingVarint = 0;
constexpr std::uint8_t traceV2EncodingPacked = 1;

/** Streaming writer for the ATLBTRC2 format. */
class TraceV2Writer
{
  public:
    /**
     * Open @p path for writing; fatal on failure.
     * @param block_capacity accesses per block — the seek granularity;
     *        tests shrink it to force multi-block files on tiny streams.
     */
    explicit TraceV2Writer(
        const std::string &path,
        std::uint64_t block_capacity = traceV2DefaultBlockCapacity);
    ~TraceV2Writer();

    TraceV2Writer(const TraceV2Writer &) = delete;
    TraceV2Writer &operator=(const TraceV2Writer &) = delete;

    /** Append one access; fatal if vaddr needs more than 63 bits. */
    void append(const MemAccess &access);

    /** Flush the tail block, index and trailer; idempotent. */
    void close();

    std::uint64_t written() const { return total_; }

  private:
    struct BlockEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint64_t count = 0;
        std::uint64_t fnv = 0;
    };

    void flushBlock();

    std::ofstream out_;
    std::string path_;
    std::uint64_t block_capacity_;
    std::vector<std::uint64_t> deltas_;  //!< zigzag deltas, current block
    std::vector<std::uint8_t> body_;     //!< encode scratch
    std::uint64_t prev_word_ = 0;        //!< delta base within the block
    std::uint64_t cursor_;               //!< next block's file offset
    std::vector<BlockEntry> index_;
    std::uint64_t total_ = 0;
    std::uint64_t min_vaddr_ = ~0ULL;
    std::uint64_t max_vaddr_ = 0;
    bool closed_ = false;
};

/**
 * Per-block encoding facts for `anchortlb trace info`. count/bytes come
 * from the (already checksummed) index; encoding and packed_width from
 * the block body's 1-2 header bytes.
 */
struct TraceV2BlockStats
{
    std::uint64_t count = 0;      //!< accesses encoded in the block
    std::uint64_t bytes = 0;      //!< payload bytes incl. the tag byte
    std::uint8_t encoding = 0;    //!< traceV2EncodingVarint / ...Packed
    std::uint8_t packed_width = 0; //!< delta bit width (packed only)
};

/**
 * TraceSource replaying an ATLBTRC2 file.
 *
 * The decoder is *streamed*: fill() runs the delta decode directly into
 * the caller's buffer, so the only per-source allocation is one block's
 * compressed body (raw_). There is no decoded std::vector<MemAccess>
 * stage anywhere — replaying a 2B-access capture holds O(block) bytes,
 * independent of trace length (asserted by bench_trace_codec's
 * peak-RSS phase).
 */
class TraceV2Source : public TraceSource
{
  public:
    /** Open and validate @p path; fatal on any inconsistency. */
    explicit TraceV2Source(const std::string &path);

    bool next(MemAccess &out) override;

    /** Streamed decode straight into @p out (no intermediate buffer). */
    std::size_t fill(MemAccess *out, std::size_t max) override;

    /**
     * O(1) reposition: the target block index is a division; no
     * intervening block is read or decoded. Landing mid-block costs a
     * decode-and-discard of the block prefix on the next read (delta
     * coding is sequential within a block).
     */
    void skip(std::uint64_t n) override;

    void reset() override;

    std::uint64_t length() const { return total_; }
    std::uint64_t blockCapacity() const { return block_capacity_; }
    std::uint64_t blockCount() const { return index_.size(); }
    /** Smallest/largest vaddr in the stream (from the trailer). */
    std::uint64_t minVaddr() const { return min_vaddr_; }
    std::uint64_t maxVaddr() const { return max_vaddr_; }

    /**
     * Encoding facts of block @p b for `trace info` reports. Reads at
     * most two bytes from the block head; does not disturb the replay
     * cursor (the loaded block's body stays cached).
     */
    TraceV2BlockStats blockStats(std::size_t b);

  private:
    struct BlockEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint64_t count = 0;
        std::uint64_t fnv = 0;
    };

    /** Read + checksum block @p b's compressed body into raw_. */
    void loadBlockRaw(std::size_t b);
    /** Restart the incremental decoder at the loaded block's head. */
    void restartBlockDecode();
    /** Decode the loaded block's next word into word_. */
    void decodeNext();
    /** One bounds-checked LEB128 varint at pos_. */
    std::uint64_t readVarintAt();

    std::ifstream in_;
    std::string path_;
    std::uint64_t block_capacity_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t min_vaddr_ = ~0ULL;
    std::uint64_t max_vaddr_ = 0;
    std::vector<BlockEntry> index_;

    /** Compressed body of the loaded block (the only block storage). */
    std::vector<std::uint8_t> raw_;
    /**
     * Vectorised decode (construction-time SIMD level != scalar): a
     * packed block's count-1 deltas are unpacked once, here, by
     * unpack_fn_ — width-specialised AVX2 kernels, or the shared
     * scalar unpack on NEON. Sized by one block, so the O(block)
     * peak-RSS contract of the streamed decoder is unchanged. The
     * scalar reference path (unpack_fn_ == nullptr) extracts each
     * delta on demand with getBits and never touches this buffer.
     */
    std::vector<std::uint64_t> unpacked_;
    bool block_unpacked_ = false; //!< unpacked_ matches loaded_block_
    SimdUnpackFn unpack_fn_ = nullptr;
    std::size_t loaded_block_ = ~std::size_t{0};
    /** Incremental decode cursor within the loaded block. */
    std::uint64_t emitted_ = 0;     //!< words decoded so far
    std::uint64_t word_ = 0;        //!< running delta accumulator
    std::size_t pos_ = 0;           //!< byte cursor (varints)
    std::size_t packed_base_ = 0;   //!< first byte of the packed bits
    std::uint8_t encoding_ = 0;
    unsigned width_ = 0;            //!< packed delta width

    std::uint64_t consumed_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_INGEST_TRACE_V2_HH
