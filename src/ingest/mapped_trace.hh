/**
 * @file
 * mmap-backed zero-copy reader for ATLBTRC1 trace files.
 *
 * TraceFileSource (trace_io.hh) pulls fixed-width records through an
 * ifstream one read at a time; for replaying large captured traces the
 * kernel's page cache is the better buffer. MappedTraceSource maps the
 * whole file read-only and decodes records straight out of the mapping
 * in the batched fill() hot path — no user-space buffering, no seeks,
 * and skip() is a cursor assignment. bench_trace_codec records the
 * measured throughput advantage over the ifstream reader.
 *
 * The v1 format is the natural fit for zero-copy (records are fixed
 * 8-byte words); ATLBTRC2 blocks must be decoded anyway, so the v2
 * reader keeps its own buffering. ingest/trace_open.hh picks the right
 * reader per file.
 */

#ifndef ANCHORTLB_INGEST_MAPPED_TRACE_HH
#define ANCHORTLB_INGEST_MAPPED_TRACE_HH

#include <cstdint>
#include <string>

#include "trace/access.hh"

namespace atlb
{

/** Zero-copy TraceSource over an mmap'd ATLBTRC1 file. */
class MappedTraceSource : public TraceSource
{
  public:
    /**
     * Map @p path; fatal on missing file, bad magic, or a file size
     * inconsistent with the header count (16 + count * 8 bytes).
     */
    explicit MappedTraceSource(const std::string &path);
    ~MappedTraceSource() override;

    MappedTraceSource(const MappedTraceSource &) = delete;
    MappedTraceSource &operator=(const MappedTraceSource &) = delete;

    bool next(MemAccess &out) override;

    /** Decode up to @p max records straight from the mapping. */
    std::size_t fill(MemAccess *out, std::size_t max) override;

    /** O(1): advancing the stream is a cursor addition. */
    void skip(std::uint64_t n) override;

    void reset() override;

    std::uint64_t length() const { return count_; }

  private:
    void *base_ = nullptr;
    std::size_t mapped_bytes_ = 0;
    const unsigned char *records_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_INGEST_MAPPED_TRACE_HH
