#include "text_importer.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace atlb
{

namespace
{

/** Content lines sampled when auto-detecting the grammar. */
constexpr std::size_t detectSampleLines = 64;

struct ParsedLine
{
    bool emits = false;   //!< false: recognised but skipped (e.g. `I`)
    MemAccess first;
    bool modify = false;  //!< lackey `M`: emit first as read, then write
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Lines that no grammar should ever see: blanks, `#`, `==` banners. */
bool
isNoise(const std::string &line)
{
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    if (i == line.size() || line[i] == '#')
        return true;
    return line.compare(i, 2, "==") == 0;
}

/** Parse an unsigned integer in @p base (10 or 16); hex accepts an
 *  optional 0x prefix. */
bool
parseUint(const std::string &tok, int base, std::uint64_t &out)
{
    std::size_t start = 0;
    if (base == 16 && tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
        start = 2;
    if (start == tok.size())
        return false;
    for (std::size_t i = start; i < tok.size(); ++i) {
        const char c = tok[i];
        if (c >= '0' && c <= '9')
            continue;
        if (base == 16 &&
            ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
            continue;
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(tok.c_str() + start, &end, base);
    if (errno != 0 || end != tok.c_str() + tok.size())
        return false;
    out = v;
    return true;
}

/**
 * The radix of an address is a property of the grammar, never of the
 * token: capture tools that emit hex without a 0x prefix (lackey,
 * champsim dumpers) produce digit-only tokens like `04025310` that a
 * per-token guess would silently read as decimal, corrupting every
 * intra-stream distance. Fixed-radix grammars call parseUint(_, 16, _)
 * directly; only the plain grammar keeps the documented heuristic.
 */
bool
parseHeuristicAddr(const std::string &tok, std::uint64_t &out)
{
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
        return parseUint(tok, 16, out);
    for (const char c : tok) {
        if ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
            return parseUint(tok, 16, out); // bare hex like `7fff5a8`
    }
    return parseUint(tok, 10, out);
}

bool
parseReadWrite(const std::string &tok, bool &write)
{
    if (tok == "R" || tok == "r") {
        write = false;
        return true;
    }
    if (tok == "W" || tok == "w") {
        write = true;
        return true;
    }
    return false;
}

bool
parsePlain(const std::vector<std::string> &toks, ParsedLine &out)
{
    if (toks.size() != 2)
        return false;
    if (!parseReadWrite(toks[0], out.first.write))
        return false;
    std::uint64_t va = 0;
    if (!parseHeuristicAddr(toks[1], va))
        return false;
    out.first.vaddr = VirtAddr{va};
    out.emits = true;
    return true;
}

bool
parseLackey(const std::vector<std::string> &toks, ParsedLine &out)
{
    if (toks.size() != 2 || toks[0].size() != 1)
        return false;
    const char kind = toks[0][0];
    if (kind != 'I' && kind != 'L' && kind != 'S' && kind != 'M')
        return false;
    const std::string &operand = toks[1];
    const std::size_t comma = operand.find(',');
    if (comma == std::string::npos || comma == 0 ||
        comma + 1 >= operand.size())
        return false;
    // Lackey addresses are always hex (usually without 0x); sizes are
    // always decimal — exactly what valgrind's `%08lx,%lu` emits.
    std::uint64_t size = 0;
    std::uint64_t va = 0;
    if (!parseUint(operand.substr(0, comma), 16, va) ||
        !parseUint(operand.substr(comma + 1), 10, size) || size == 0)
        return false;
    out.first.vaddr = VirtAddr{va};
    if (kind == 'I') {
        out.emits = false; // instruction fetch; we model data TLBs
        return true;
    }
    out.emits = true;
    out.first.write = kind == 'S';
    out.modify = kind == 'M';
    return true;
}

bool
parseChampSim(const std::vector<std::string> &toks, ParsedLine &out)
{
    if (toks.size() != 3)
        return false;
    // ChampSim dumpers print the ip/seq and the vaddr in hex, with or
    // without a 0x prefix.
    std::uint64_t ignored = 0;
    if (!parseUint(toks[0], 16, ignored))
        return false;
    if (!parseReadWrite(toks[1], out.first.write))
        return false;
    std::uint64_t va = 0;
    if (!parseUint(toks[2], 16, va))
        return false;
    out.first.vaddr = VirtAddr{va};
    out.emits = true;
    return true;
}

bool
parseLine(TextTraceFormat format, const std::vector<std::string> &toks,
          ParsedLine &out)
{
    out = ParsedLine{};
    switch (format) {
      case TextTraceFormat::Plain: return parsePlain(toks, out);
      case TextTraceFormat::Lackey: return parseLackey(toks, out);
      case TextTraceFormat::ChampSim: return parseChampSim(toks, out);
      case TextTraceFormat::Auto: break;
    }
    ATLB_PANIC("auto format must be resolved before parsing");
}

/**
 * One parsing pass over @p path; @p emit sees each access with the
 * rebase shift already applied.
 */
void
scanFile(const std::string &path, TextTraceFormat format,
         std::int64_t shift, ImportResult &result,
         const std::function<void(const MemAccess &)> &emit)
{
    std::ifstream in(path);
    if (!in)
        ATLB_FATAL("cannot open text trace '{}'", path);
    result.lines = 0;
    result.accesses = 0;
    result.skipped = 0;
    result.min_vaddr = std::numeric_limits<std::uint64_t>::max();
    result.max_vaddr = 0;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (isNoise(line)) {
            ++result.skipped;
            continue;
        }
        ParsedLine parsed;
        if (!parseLine(format, tokenize(line), parsed))
            ATLB_FATAL("{}:{}: malformed {} trace line: '{}'", path,
                       lineno, textTraceFormatName(format), line);
        ++result.lines;
        if (!parsed.emits) {
            ++result.skipped;
            continue;
        }
        MemAccess access = parsed.first;
        access.vaddr = VirtAddr{static_cast<std::uint64_t>(
            static_cast<std::int64_t>(access.vaddr.raw()) + shift)};
        result.min_vaddr = std::min(result.min_vaddr, access.vaddr.raw());
        result.max_vaddr = std::max(result.max_vaddr, access.vaddr.raw());
        if (parsed.modify) {
            // lackey `M addr,size` is a read-modify-write pair.
            MemAccess read = access;
            read.write = false;
            emit(read);
            ++result.accesses;
            access.write = true;
        }
        emit(access);
        ++result.accesses;
    }
}

} // namespace

const char *
textTraceFormatName(TextTraceFormat format)
{
    switch (format) {
      case TextTraceFormat::Auto: return "auto";
      case TextTraceFormat::Plain: return "plain";
      case TextTraceFormat::Lackey: return "lackey";
      case TextTraceFormat::ChampSim: return "champsim";
    }
    return "?";
}

TextTraceFormat
parseTextTraceFormat(const std::string &name)
{
    for (const TextTraceFormat f :
         {TextTraceFormat::Auto, TextTraceFormat::Plain,
          TextTraceFormat::Lackey, TextTraceFormat::ChampSim}) {
        if (name == textTraceFormatName(f))
            return f;
    }
    ATLB_FATAL("unknown text trace format '{}' (expected auto, plain, "
               "lackey or champsim)",
               name);
}

TextTraceFormat
detectTextTraceFormat(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ATLB_FATAL("cannot open text trace '{}'", path);
    std::vector<std::vector<std::string>> sample;
    std::string line;
    while (sample.size() < detectSampleLines && std::getline(in, line)) {
        if (isNoise(line))
            continue;
        sample.push_back(tokenize(line));
    }
    if (sample.empty())
        ATLB_FATAL("'{}' holds no trace lines to detect a format from",
                   path);
    // Lackey first: its L/S lines must not be mistaken for plain ones.
    for (const TextTraceFormat f :
         {TextTraceFormat::Lackey, TextTraceFormat::Plain,
          TextTraceFormat::ChampSim}) {
        bool all = true;
        for (const std::vector<std::string> &toks : sample) {
            ParsedLine parsed;
            if (!parseLine(f, toks, parsed)) {
                all = false;
                break;
            }
        }
        if (all)
            return f;
    }
    ATLB_FATAL("cannot detect the trace format of '{}' (tried lackey, "
               "plain, champsim over the first {} lines)",
               path, sample.size());
}

ImportResult
importTextTrace(const std::string &path, const ImportOptions &options,
                const std::function<void(const MemAccess &)> &sink)
{
    ImportResult result;
    result.format = options.format == TextTraceFormat::Auto
                        ? detectTextTraceFormat(path)
                        : options.format;

    std::int64_t shift = 0;
    if (options.rebase) {
        // Pass 1: find the lowest vaddr so the stream can be shifted by
        // a page-aligned delta (intra-stream distances are preserved).
        ImportResult scan;
        scanFile(path, result.format, 0, scan,
                 [](const MemAccess &) {});
        if (scan.accesses > 0) {
            const std::uint64_t low_page =
                scan.min_vaddr & ~(pageBytes - 1);
            shift = static_cast<std::int64_t>(options.rebase_to) -
                    static_cast<std::int64_t>(low_page);
        }
    }
    result.rebase_shift = shift;

    scanFile(path, result.format, shift, result, sink);
    if (result.accesses == 0) {
        result.min_vaddr = 0;
        result.max_vaddr = 0;
    }
    return result;
}

} // namespace atlb
