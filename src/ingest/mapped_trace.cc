#include "mapped_trace.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace atlb
{

namespace
{

constexpr char magic[8] = {'A', 'T', 'L', 'B', 'T', 'R', 'C', '1'};
constexpr std::uint64_t headerBytes = 16;

std::uint64_t
readU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

MappedTraceSource::MappedTraceSource(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        ATLB_FATAL("cannot open trace file '{}': {}", path,
                   std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        ATLB_FATAL("cannot stat trace file '{}': {}", path,
                   std::strerror(err));
    }
    const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
    if (file_bytes < headerBytes) {
        ::close(fd);
        ATLB_FATAL("'{}' is too short for an anchortlb trace file",
                   path);
    }

    void *map = ::mmap(nullptr, static_cast<std::size_t>(file_bytes),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    const int map_err = errno;
    ::close(fd);
    if (map == MAP_FAILED)
        ATLB_FATAL("cannot mmap trace file '{}': {}", path,
                   std::strerror(map_err));
    base_ = map;
    mapped_bytes_ = static_cast<std::size_t>(file_bytes);
    ::madvise(base_, mapped_bytes_, MADV_SEQUENTIAL);

    const auto *head = static_cast<const unsigned char *>(base_);
    if (std::memcmp(head, magic, 8) != 0)
        ATLB_FATAL("'{}' is not an anchortlb trace file", path);
    count_ = readU64(head + 8);
    // Bound the count by division before multiplying: a crafted header
    // whose count makes count_ * 8 wrap past 2^64 would otherwise pass
    // the size check and send fill() reading far beyond the mapping.
    if (count_ > (file_bytes - headerBytes) / 8 ||
        headerBytes + count_ * 8 != file_bytes)
        ATLB_FATAL("'{}': header counts {} accesses but the file holds "
                   "{} bytes (truncated or oversized)",
                   path, count_, file_bytes);
    records_ = head + headerBytes;
}

MappedTraceSource::~MappedTraceSource()
{
    if (base_ != nullptr)
        ::munmap(base_, mapped_bytes_);
}

bool
MappedTraceSource::next(MemAccess &out)
{
    return fill(&out, 1) == 1;
}

std::size_t
MappedTraceSource::fill(MemAccess *out, std::size_t max)
{
    const std::uint64_t left = count_ - consumed_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, left));
    const unsigned char *p = records_ + consumed_ * 8;
    for (std::size_t i = 0; i < n; ++i, p += 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8); // files are written little-endian
        out[i].vaddr = VirtAddr{word & ~1ULL};
        out[i].write = word & 1;
    }
    consumed_ += n;
    return n;
}

void
MappedTraceSource::skip(std::uint64_t n)
{
    consumed_ = std::min(consumed_ + n, count_);
}

void
MappedTraceSource::reset()
{
    consumed_ = 0;
}

} // namespace atlb
