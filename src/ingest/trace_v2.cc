#include "trace_v2.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/bitpack.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace atlb
{

namespace
{

constexpr char magicHead[8] = {'A', 'T', 'L', 'B', 'T', 'R', 'C', '2'};
constexpr char magicTail[8] = {'A', 'T', 'L', 'B', 'E', 'N', 'D', '2'};
constexpr std::uint64_t trailerBytes = 64;
constexpr std::uint64_t indexEntryBytes = 32;
constexpr std::uint64_t headerBytes = 16;

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), 8);
}

std::uint64_t
readU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
zigzag(std::int64_t d)
{
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t
varintBytes(std::uint64_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

unsigned
bitWidth(std::uint64_t v)
{
    unsigned w = 0;
    while (v != 0) {
        v >>= 1;
        ++w;
    }
    return w;
}

// putBits/getBits live in common/bitpack.hh now, shared with the SIMD
// unpack kernels and the width-exhaustive round-trip tests.

/** Block-body encodings (the body's first byte). */
constexpr std::uint8_t encodingVarint = traceV2EncodingVarint;
constexpr std::uint8_t encodingPacked = traceV2EncodingPacked;

} // namespace

TraceV2Writer::TraceV2Writer(const std::string &path,
                             std::uint64_t block_capacity)
    : out_(path, std::ios::binary), path_(path),
      block_capacity_(block_capacity), cursor_(headerBytes)
{
    if (!out_)
        ATLB_FATAL("cannot open trace file '{}' for writing", path);
    if (block_capacity_ == 0)
        ATLB_FATAL("ATLBTRC2 block capacity must be positive");
    out_.write(magicHead, sizeof(magicHead));
    putU64(out_, block_capacity_);
}

TraceV2Writer::~TraceV2Writer()
{
    close();
}

void
TraceV2Writer::append(const MemAccess &access)
{
    ATLB_ASSERT(!closed_, "append to a closed trace writer");
    // Codec bit packing, not page math. lint-allow: page-shift
    if (access.vaddr.raw() >> 63)
        ATLB_FATAL("ATLBTRC2 cannot encode vaddr {} (needs 64 bits; "
                   "63 supported)",
                   access.vaddr);
    const std::uint64_t word = // lint-allow: page-shift
        (access.vaddr.raw() << 1) | (access.write ? 1 : 0);
    const std::int64_t delta =
        static_cast<std::int64_t>(word - prev_word_);
    deltas_.push_back(zigzag(delta));
    prev_word_ = word;
    ++total_;
    min_vaddr_ = std::min(min_vaddr_, access.vaddr.raw());
    max_vaddr_ = std::max(max_vaddr_, access.vaddr.raw());
    if (deltas_.size() == block_capacity_)
        flushBlock();
}

void
TraceV2Writer::flushBlock()
{
    if (deltas_.empty())
        return;

    // Size both encodings; emit the smaller. The block's first delta
    // IS its base word (prev 0), typically far larger than the rest,
    // so the packed encoding keeps it as a varint and sizes the width
    // from the real deltas only.
    std::size_t varint_bytes = 1;
    for (const std::uint64_t z : deltas_)
        varint_bytes += varintBytes(z);

    unsigned width = 0;
    for (std::size_t i = 1; i < deltas_.size(); ++i)
        width = std::max(width, bitWidth(deltas_[i]));
    const std::size_t packed_bytes =
        2 + varintBytes(deltas_.front()) +
        ((deltas_.size() - 1) * width + 7) / 8;

    body_.clear();
    if (packed_bytes < varint_bytes) {
        body_.reserve(packed_bytes);
        body_.push_back(encodingPacked);
        body_.push_back(static_cast<std::uint8_t>(width));
        putVarint(body_, deltas_.front());
        const std::size_t payload = body_.size();
        body_.resize(packed_bytes, 0);
        std::uint64_t bitpos = 0;
        for (std::size_t i = 1; i < deltas_.size(); ++i) {
            putBits(body_.data() + payload, bitpos, deltas_[i], width);
            bitpos += width;
        }
    } else {
        body_.reserve(varint_bytes);
        body_.push_back(encodingVarint);
        for (const std::uint64_t z : deltas_)
            putVarint(body_, z);
    }

    BlockEntry entry;
    entry.offset = cursor_;
    entry.bytes = body_.size();
    entry.count = deltas_.size();
    entry.fnv = fnv1a64(body_.data(), body_.size());
    out_.write(reinterpret_cast<const char *>(body_.data()),
               static_cast<std::streamsize>(body_.size()));
    cursor_ += body_.size();
    index_.push_back(entry);
    deltas_.clear();
    prev_word_ = 0;
}

void
TraceV2Writer::close()
{
    if (closed_)
        return;
    closed_ = true;
    flushBlock();

    const std::uint64_t index_offset = cursor_;
    std::vector<std::uint8_t> raw;
    raw.reserve(index_.size() * indexEntryBytes);
    for (const BlockEntry &e : index_) {
        for (const std::uint64_t v :
             {e.offset, e.bytes, e.count, e.fnv}) {
            for (int i = 0; i < 8; ++i)
                raw.push_back(
                    static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
        }
    }
    out_.write(reinterpret_cast<const char *>(raw.data()),
               static_cast<std::streamsize>(raw.size()));

    putU64(out_, index_offset);
    putU64(out_, index_.size());
    putU64(out_, total_);
    putU64(out_, min_vaddr_);
    putU64(out_, max_vaddr_);
    putU64(out_, fnv1a64(raw.data(), raw.size()));
    putU64(out_, 0); // reserved
    out_.write(magicTail, sizeof(magicTail));
    out_.flush();
    if (!out_)
        ATLB_FATAL("error writing trace file '{}'", path_);
    out_.close();
}

TraceV2Source::TraceV2Source(const std::string &path)
    : in_(path, std::ios::binary), path_(path),
      unpack_fn_(simdBlockUnpackFn(simdLevel()))
{
    if (!in_)
        ATLB_FATAL("cannot open trace file '{}'", path);
    in_.seekg(0, std::ios::end);
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(in_.tellg());
    if (file_bytes < headerBytes + trailerBytes)
        ATLB_FATAL("'{}': too short for an ATLBTRC2 file ({} bytes)",
                   path, file_bytes);

    std::array<unsigned char, headerBytes> head;
    in_.seekg(0, std::ios::beg);
    if (!in_.read(reinterpret_cast<char *>(head.data()), head.size()) ||
        std::memcmp(head.data(), magicHead, 8) != 0)
        ATLB_FATAL("'{}' is not an ATLBTRC2 trace file", path);
    block_capacity_ = readU64(head.data() + 8);
    if (block_capacity_ == 0)
        ATLB_FATAL("'{}': zero block capacity in header", path);

    std::array<unsigned char, trailerBytes> tail;
    in_.seekg(static_cast<std::streamoff>(file_bytes - trailerBytes),
              std::ios::beg);
    if (!in_.read(reinterpret_cast<char *>(tail.data()), tail.size()))
        ATLB_FATAL("'{}': truncated ATLBTRC2 trailer", path);
    if (std::memcmp(tail.data() + 56, magicTail, 8) != 0)
        ATLB_FATAL("'{}': bad ATLBTRC2 trailer magic (corrupt or "
                   "truncated file)",
                   path);
    const std::uint64_t index_offset = readU64(tail.data());
    const std::uint64_t block_count = readU64(tail.data() + 8);
    total_ = readU64(tail.data() + 16);
    min_vaddr_ = readU64(tail.data() + 24);
    max_vaddr_ = readU64(tail.data() + 32);
    const std::uint64_t index_fnv = readU64(tail.data() + 40);

    // Bound block_count by division before any multiplication: a
    // crafted trailer with a huge count could wrap the geometry sum
    // past 2^64 into a pass, then blow up the index allocation below.
    if (block_count >
            (file_bytes - headerBytes - trailerBytes) / indexEntryBytes ||
        index_offset !=
            file_bytes - trailerBytes - block_count * indexEntryBytes)
        ATLB_FATAL("'{}': ATLBTRC2 index geometry disagrees with the "
                   "file size (truncated or oversized file)",
                   path);

    std::vector<unsigned char> raw(
        static_cast<std::size_t>(block_count * indexEntryBytes));
    in_.seekg(static_cast<std::streamoff>(index_offset), std::ios::beg);
    if (!raw.empty() &&
        !in_.read(reinterpret_cast<char *>(raw.data()),
                  static_cast<std::streamsize>(raw.size())))
        ATLB_FATAL("'{}': truncated ATLBTRC2 block index", path);
    if (fnv1a64(raw.data(), raw.size()) != index_fnv)
        ATLB_FATAL("'{}': ATLBTRC2 block index fails its checksum "
                   "(corrupt footer)",
                   path);

    index_.resize(static_cast<std::size_t>(block_count));
    std::uint64_t counted = 0;
    std::uint64_t expect_offset = headerBytes;
    for (std::size_t b = 0; b < index_.size(); ++b) {
        const unsigned char *p = raw.data() + b * indexEntryBytes;
        index_[b].offset = readU64(p);
        index_[b].bytes = readU64(p + 8);
        index_[b].count = readU64(p + 16);
        index_[b].fnv = readU64(p + 24);
        if (index_[b].offset != expect_offset ||
            index_[b].offset + index_[b].bytes > index_offset)
            ATLB_FATAL("'{}': ATLBTRC2 block {} lies outside the "
                       "payload region",
                       path, b);
        expect_offset += index_[b].bytes;
        const bool last = b + 1 == index_.size();
        if (index_[b].count == 0 ||
            (!last && index_[b].count != block_capacity_) ||
            (last && index_[b].count > block_capacity_))
            ATLB_FATAL("'{}': ATLBTRC2 block {} holds {} accesses "
                       "(capacity {})",
                       path, b, index_[b].count, block_capacity_);
        counted += index_[b].count;
    }
    if (expect_offset != index_offset)
        ATLB_FATAL("'{}': ATLBTRC2 payload ends at byte {} but the "
                   "block index starts at byte {} (gap or overlap)",
                   path, expect_offset, index_offset);
    if (counted != total_)
        ATLB_FATAL("'{}': ATLBTRC2 blocks hold {} accesses but the "
                   "trailer says {}",
                   path, counted, total_);
}

void
TraceV2Source::loadBlockRaw(std::size_t b)
{
    const BlockEntry &entry = index_[b];
    raw_.resize(static_cast<std::size_t>(entry.bytes));
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(entry.offset), std::ios::beg);
    if (!raw_.empty() &&
        !in_.read(reinterpret_cast<char *>(raw_.data()),
                  static_cast<std::streamsize>(raw_.size())))
        ATLB_FATAL("'{}': short read of ATLBTRC2 block {}", path_, b);
    if (fnv1a64(raw_.data(), raw_.size()) != entry.fnv)
        ATLB_FATAL("'{}': ATLBTRC2 block {} fails its checksum "
                   "(corrupt block body)",
                   path_, b);
    if (raw_.empty())
        ATLB_FATAL("'{}': ATLBTRC2 block {} has an empty body", path_, b);
    loaded_block_ = b;
    block_unpacked_ = false;
    restartBlockDecode();
}

void
TraceV2Source::restartBlockDecode()
{
    const std::size_t b = loaded_block_;
    emitted_ = 0;
    word_ = 0;
    encoding_ = raw_[0];
    if (encoding_ == encodingVarint) {
        pos_ = 1;
    } else if (encoding_ == encodingPacked) {
        if (raw_.size() < 2)
            ATLB_FATAL("'{}': ATLBTRC2 block {} too short for a packed "
                       "header",
                       path_, b);
        width_ = raw_[1];
        if (width_ > 64)
            ATLB_FATAL("'{}': ATLBTRC2 block {} declares packed width "
                       "{} > 64",
                       path_, b, width_);
        pos_ = 2;
    } else {
        ATLB_FATAL("'{}': ATLBTRC2 block {} uses unknown encoding {}",
                   path_, b, encoding_);
    }
}

std::uint64_t
TraceV2Source::readVarintAt()
{
    std::uint64_t z = 0;
    unsigned shift = 0;
    while (true) {
        if (pos_ >= raw_.size())
            ATLB_FATAL("'{}': ATLBTRC2 block {} truncated inside "
                       "access {}",
                       path_, loaded_block_, emitted_);
        const std::uint8_t byte = raw_[pos_++];
        z |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
        if (shift >= 64)
            ATLB_FATAL("'{}': ATLBTRC2 block {} holds an over-long "
                       "varint at access {}",
                       path_, loaded_block_, emitted_);
    }
    return z;
}

void
TraceV2Source::decodeNext()
{
    const BlockEntry &entry = index_[loaded_block_];
    std::uint64_t z;
    if (encoding_ == encodingVarint) {
        z = readVarintAt();
        // Exactly at block end the byte cursor must land on the last
        // byte — same trailing-bytes check the one-shot decoder made,
        // deferred to the moment the block completes.
        if (emitted_ + 1 == entry.count && pos_ != raw_.size())
            ATLB_FATAL("'{}': ATLBTRC2 block {} carries {} trailing "
                       "bytes",
                       path_, loaded_block_, raw_.size() - pos_);
    } else if (emitted_ == 0) {
        // Packed block: the base word is one varint; the remaining
        // count-1 deltas follow bit-packed, so the geometry can only
        // be validated once the varint's width is known.
        z = readVarintAt();
        packed_base_ = pos_;
        if (packed_base_ + ((entry.count - 1) * width_ + 7) / 8 !=
            raw_.size())
            ATLB_FATAL("'{}': ATLBTRC2 block {} packed payload size "
                       "disagrees with its access count",
                       path_, loaded_block_);
        // Vectorised path: unpack the whole block's deltas once (and
        // only once — a restartBlockDecode over the same cached block
        // reuses the buffer). Byte-identical to per-delta getBits; the
        // tests pin that per width.
        if (unpack_fn_ != nullptr && !block_unpacked_ &&
            entry.count > 1) {
            unpacked_.resize(
                static_cast<std::size_t>(entry.count - 1));
            unpack_fn_(raw_.data() + packed_base_,
                       raw_.size() - packed_base_, width_,
                       unpacked_.data(), unpacked_.size());
            block_unpacked_ = true;
        }
    } else if (block_unpacked_) {
        z = unpacked_[static_cast<std::size_t>(emitted_ - 1)];
    } else {
        z = getBits(raw_.data() + packed_base_, (emitted_ - 1) * width_,
                    width_);
    }
    word_ += static_cast<std::uint64_t>(unzigzag(z));
    ++emitted_;
}

TraceV2BlockStats
TraceV2Source::blockStats(std::size_t b)
{
    ATLB_ASSERT(b < index_.size(), "'{}': block {} out of range", path_,
                b);
    TraceV2BlockStats s;
    s.count = index_[b].count;
    s.bytes = index_[b].bytes;
    // The loaded block's body is already in memory; otherwise peek the
    // 1-2 header bytes without disturbing the replay cursor.
    std::uint8_t head[2] = {0, 0};
    if (b == loaded_block_) {
        head[0] = raw_[0];
        if (raw_.size() > 1)
            head[1] = raw_[1];
    } else {
        in_.clear();
        in_.seekg(static_cast<std::streamoff>(index_[b].offset),
                  std::ios::beg);
        const std::streamsize want =
            static_cast<std::streamsize>(std::min<std::uint64_t>(
                2, index_[b].bytes));
        if (want == 0 ||
            !in_.read(reinterpret_cast<char *>(head), want))
            ATLB_FATAL("'{}': short read of ATLBTRC2 block {} header",
                       path_, b);
    }
    s.encoding = head[0];
    if (s.encoding == encodingPacked)
        s.packed_width = head[1];
    return s;
}

bool
TraceV2Source::next(MemAccess &out)
{
    return fill(&out, 1) == 1;
}

std::size_t
TraceV2Source::fill(MemAccess *out, std::size_t max)
{
    std::size_t produced = 0;
    while (produced < max && consumed_ < total_) {
        const std::size_t block =
            static_cast<std::size_t>(consumed_ / block_capacity_);
        if (block != loaded_block_)
            loadBlockRaw(block);
        const std::uint64_t target = consumed_ % block_capacity_;
        if (emitted_ > target) {
            // reset()/re-read of an earlier position within the cached
            // block: the delta chain only runs forward, restart it.
            restartBlockDecode();
        }
        while (emitted_ < target)
            decodeNext(); // skip() landed mid-block: decode and discard
        const std::uint64_t run = std::min<std::uint64_t>(
            max - produced, index_[block].count - target);
        for (std::uint64_t i = 0; i < run; ++i) {
            decodeNext();
            out[produced].vaddr = VirtAddr{word_ >> 1};
            out[produced].write = (word_ & 1) != 0;
            ++produced;
        }
        consumed_ += run;
    }
    return produced;
}

void
TraceV2Source::skip(std::uint64_t n)
{
    consumed_ = std::min(consumed_ + n, total_);
}

void
TraceV2Source::reset()
{
    consumed_ = 0;
}

} // namespace atlb
