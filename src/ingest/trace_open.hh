/**
 * @file
 * Format-dispatching open/inspect entry points for binary trace files.
 *
 * Everything downstream of ingestion (the CLI, the experiment grid, the
 * benches) should not care whether a trace on disk is ATLBTRC1 or
 * ATLBTRC2. openTraceFile() sniffs the magic and returns the right
 * TraceSource — the mmap zero-copy reader for v1, the block decoder for
 * v2 — and inspectTraceFile() answers the cheap metadata questions
 * (count, vaddr bounds) without replaying anything, which is what the
 * grid needs to size an address space for a trace-driven workload.
 */

#ifndef ANCHORTLB_INGEST_TRACE_OPEN_HH
#define ANCHORTLB_INGEST_TRACE_OPEN_HH

#include <cstdint>
#include <memory>
#include <string>

#include "trace/access.hh"

namespace atlb
{

/** On-disk trace container formats. */
enum class TraceKind
{
    V1, //!< ATLBTRC1: fixed 8-byte words
    V2, //!< ATLBTRC2: delta-compressed blocks + index
};

/** Short name for messages and JSON ("atlbtrc1" / "atlbtrc2"). */
const char *traceKindName(TraceKind kind);

/** Read the magic of @p path; fatal if it is neither trace format. */
TraceKind sniffTraceKind(const std::string &path);

/** Cheap metadata about a trace file (no replay). */
struct TraceFileInfo
{
    TraceKind kind = TraceKind::V1;
    std::uint64_t file_bytes = 0;
    std::uint64_t accesses = 0;
    std::uint64_t min_vaddr = 0; //!< 0 when the trace is empty
    std::uint64_t max_vaddr = 0;
    std::uint64_t block_capacity = 0; //!< v2 only, else 0
    std::uint64_t blocks = 0;         //!< v2 only, else 0
};

/**
 * Validate @p path and return its metadata. v2 answers from the
 * trailer; v1 stores no bounds, so the record words are scanned (one
 * sequential mmap pass, no decode into MemAccess).
 */
TraceFileInfo inspectTraceFile(const std::string &path);

/** Open @p path with the reader matching its format; fatal on error. */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path);

/**
 * Limit an underlying source to its first @p limit accesses. The grid
 * replays trace prefixes when the requested cell accesses are fewer
 * than the trace length; fill/skip/reset all respect the clamp so the
 * sharded runner's exact-slice maths holds.
 */
class ClampedTraceSource : public TraceSource
{
  public:
    ClampedTraceSource(std::unique_ptr<TraceSource> inner,
                       std::uint64_t limit);

    bool next(MemAccess &out) override;
    std::size_t fill(MemAccess *out, std::size_t max) override;
    void skip(std::uint64_t n) override;
    void reset() override;

    std::uint64_t length() const { return limit_; }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t consumed_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_INGEST_TRACE_OPEN_HH
