/**
 * @file
 * Importers for text-format memory traces from external capture tools.
 *
 * Three line grammars are recognised (blank lines and `#` comments are
 * always skipped):
 *
 *  - plain:    `R 0x7f00001000` / `W 4096` — two tokens, access kind
 *              then address (hex with 0x, bare hex with letters, or
 *              decimal; the radix heuristic applies to this grammar
 *              only).
 *  - lackey:   Valgrind `--tool=lackey --trace-mem=yes` output:
 *              ` L 04025310,8` loads, ` S …` stores, ` M …` modify
 *              (expands to a load then a store), `I …` instruction
 *              fetches (skipped — we model data TLBs). Addresses are
 *              always hex (valgrind omits the 0x), sizes always
 *              decimal. Lines starting with `==` (valgrind banners)
 *              are skipped.
 *  - champsim: three tokens `<seq-or-ip> <R|W> <vaddr>` as emitted by
 *              common ChampSim trace dumpers; both numbers are hex
 *              (0x optional) and the first token is ignored.
 *
 * Auto-detection samples the first content lines and picks the grammar
 * that parses all of them, preferring lackey (its `L` lines also look
 * plain-ish) then plain then champsim. Import is fatal on the first
 * malformed line — a half-imported trace is worse than no trace.
 *
 * Rebasing: captured traces carry whatever virtual addresses the traced
 * process used, but the simulator's OS model hands out mappings from a
 * fixed region base (sim/experiment.hh traceBaseVa). With rebasing on,
 * the importer shifts the whole stream by a page-aligned delta so its
 * lowest page lands on `rebase_to`, preserving all intra-stream
 * distances (which is all the TLB cares about).
 */

#ifndef ANCHORTLB_INGEST_TEXT_IMPORTER_HH
#define ANCHORTLB_INGEST_TEXT_IMPORTER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "trace/access.hh"

namespace atlb
{

enum class TextTraceFormat
{
    Auto,     //!< detect from the first content lines
    Plain,    //!< `R|W <addr>`
    Lackey,   //!< valgrind lackey `I|L|S|M addr,size`
    ChampSim, //!< `<seq> <R|W> <vaddr>`
};

/** Short name for messages and the CLI (`plain`, `lackey`, ...). */
const char *textTraceFormatName(TextTraceFormat format);

/** Parse a CLI format name; fatal on an unknown one. */
TextTraceFormat parseTextTraceFormat(const std::string &name);

/**
 * Inspect the first content lines of @p path and return the grammar
 * that parses all of them; fatal if none does.
 */
TextTraceFormat detectTextTraceFormat(const std::string &path);

struct ImportOptions
{
    TextTraceFormat format = TextTraceFormat::Auto;
    /** Shift the stream so its lowest page starts at rebase_to. */
    bool rebase = false;
    std::uint64_t rebase_to = 0;
};

struct ImportResult
{
    TextTraceFormat format = TextTraceFormat::Plain; //!< grammar used
    std::uint64_t lines = 0;      //!< content lines parsed
    std::uint64_t accesses = 0;   //!< accesses emitted (M counts as 2)
    std::uint64_t skipped = 0;    //!< skipped lines (comments, I, ==)
    std::uint64_t min_vaddr = 0;  //!< after rebasing
    std::uint64_t max_vaddr = 0;  //!< after rebasing
    std::int64_t rebase_shift = 0; //!< bytes added to every vaddr
};

/**
 * Parse @p path and hand each access to @p sink in trace order.
 * Rebasing makes this two-pass (scan for the minimum vaddr first).
 * Fatal on unreadable files or malformed lines.
 */
ImportResult importTextTrace(const std::string &path,
                             const ImportOptions &options,
                             const std::function<void(const MemAccess &)>
                                 &sink);

} // namespace atlb

#endif // ANCHORTLB_INGEST_TEXT_IMPORTER_HH
