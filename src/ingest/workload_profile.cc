#include "workload_profile.hh"

#include <algorithm>
#include <ostream>
#include <vector>

#include "stats/json_writer.hh"

namespace atlb
{

void
WorkloadProfiler::record(const MemAccess &access)
{
    pages_.record(access);
    const Vpn vpn = vpnOf(access.vaddr);
    touched_.insert(vpn);
    if (last_vpn_ != invalidVpn) {
        const std::uint64_t delta =
            vpn > last_vpn_ ? vpn - last_vpn_ : last_vpn_ - vpn;
        stride_.add(delta);
    }
    last_vpn_ = vpn;
    min_vaddr_ = std::min(min_vaddr_, access.vaddr.raw());
    max_vaddr_ = std::max(max_vaddr_, access.vaddr.raw());
    ++accesses_;
}

void
WorkloadProfiler::consume(TraceSource &source)
{
    MemAccess batch[1024];
    std::size_t got;
    while ((got = source.fill(batch, 1024)) > 0) {
        for (std::size_t i = 0; i < got; ++i)
            record(batch[i]);
    }
}

WorkloadProfile
WorkloadProfiler::profile() const
{
    WorkloadProfile out;
    out.pages = pages_.profile();
    out.footprint_pages = touched_.size();
    out.footprint_bytes = out.footprint_pages * pageBytes;
    out.min_vaddr = accesses_ > 0 ? min_vaddr_ : 0;
    out.max_vaddr = accesses_ > 0 ? max_vaddr_ : 0;
    out.stride = stride_;

    // Maximal runs of consecutive VPNs over the sorted touched set —
    // the chunk-size histogram shape Algorithm 1 consumes.
    std::vector<Vpn> vpns(touched_.begin(), touched_.end());
    std::sort(vpns.begin(), vpns.end());
    std::size_t i = 0;
    while (i < vpns.size()) {
        std::size_t j = i + 1;
        while (j < vpns.size() && vpns[j] == vpns[j - 1] + 1)
            ++j;
        out.contiguity.add(j - i);
        i = j;
    }
    out.anchor_distance = selectAnchorDistance(out.contiguity);
    return out;
}

void
writeWorkloadProfileJson(std::ostream &os, const WorkloadProfile &p)
{
    JsonWriter json(os);
    json.beginObject();
    json.field("accesses", p.pages.accesses);
    json.field("writes", p.pages.writes);
    json.field("footprint_pages", p.footprint_pages);
    json.field("footprint_bytes", p.footprint_bytes);
    json.field("min_vaddr", p.min_vaddr);
    json.field("max_vaddr", p.max_vaddr);
    json.field("same_page_fraction", p.pages.same_page_fraction);
    json.field("sequential_fraction", p.pages.sequential_fraction);
    json.field("cold_accesses", p.pages.cold_accesses);
    json.field("hot_set_pages_90", p.pages.hotSetPages(0.9));

    json.key("reuse_distance_log2");
    json.beginArray();
    for (unsigned b = 0; b < p.pages.reuse_distance.numBuckets(); ++b)
        json.value(p.pages.reuse_distance.bucket(b));
    json.endArray();

    json.key("stride_log2");
    json.beginArray();
    for (unsigned b = 0; b < p.stride.numBuckets(); ++b)
        json.value(p.stride.bucket(b));
    json.endArray();

    json.key("contiguity");
    json.beginArray();
    for (const auto &[chunk, count] : p.contiguity.entries()) {
        json.beginObject();
        json.field("chunk_pages", chunk);
        json.field("chunks", count);
        json.endObject();
    }
    json.endArray();

    json.key("anchor_distance");
    json.beginObject();
    json.field("selected", p.anchor_distance.distance);
    json.field("cost", p.anchor_distance.cost);
    json.key("candidates");
    json.beginArray();
    for (const auto &[distance, cost] : p.anchor_distance.candidates) {
        json.beginObject();
        json.field("distance", distance);
        json.field("cost", cost);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.endObject();
    os << "\n";
}

} // namespace atlb
