#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace atlb
{

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    ATLB_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::beginRow()
{
    if (!rows_.empty() && rows_.back().size() != headers_.size()) {
        ATLB_PANIC("row {} has {} cells, expected {}", rows_.size() - 1,
                   rows_.back().size(), headers_.size());
    }
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
}

void
Table::cell(std::string value)
{
    ATLB_ASSERT(!rows_.empty(), "cell() before beginRow()");
    ATLB_ASSERT(rows_.back().size() < headers_.size(), "row overflow");
    rows_.back().push_back(std::move(value));
}

void
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    cell(os.str());
}

void
Table::cell(std::uint64_t value)
{
    cell(std::to_string(value));
}

void
Table::cellPercent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    cell(os.str());
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    ATLB_ASSERT(row < rows_.size() && col < rows_[row].size(),
                "table index out of range");
    return rows_[row][col];
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto hline = [&] {
        os << '+';
        for (const auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    hline();
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
           << headers_[c] << " |";
    os << '\n';
    hline();
    for (const auto &row : rows_) {
        os << '|';
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << ' ' << std::setw(static_cast<int>(widths[c])) << std::right
               << v << " |";
        }
        os << '\n';
    }
    hline();
}

namespace
{

std::string
csvEscape(const std::string &v)
{
    if (v.find_first_of(",\"\n") == std::string::npos)
        return v;
    std::string out = "\"";
    for (const char ch : v) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << csvEscape(headers_[c]);
    os << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << (c ? "," : "") << csvEscape(v);
        }
        os << '\n';
    }
}

std::string
Table::toAscii() const
{
    std::ostringstream os;
    printAscii(os);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    printCsv(os);
    return os.str();
}

} // namespace atlb
