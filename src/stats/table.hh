/**
 * @file
 * ASCII and CSV table emission for the benchmark harness.
 *
 * Every table/figure regenerator builds one of these and prints it, so the
 * bench output looks like the rows of the paper's tables. Cells are stored
 * as strings; numeric helpers format with fixed precision.
 */

#ifndef ANCHORTLB_STATS_TABLE_HH
#define ANCHORTLB_STATS_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace atlb
{

/** A rectangular table with a header row, printable as ASCII or CSV. */
class Table
{
  public:
    /** Create a table titled @p title with the given column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Start a new row; subsequent cell() calls append to it. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(std::string value);

    /** Append a numeric cell formatted with @p precision decimals. */
    void cell(double value, int precision = 1);

    /** Append an integer cell. */
    void cell(std::uint64_t value);

    /** Append a percentage cell ("12.3%"). */
    void cellPercent(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }
    const std::string &title() const { return title_; }

    /** Read back a cell (row-major; for tests). */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render as an aligned ASCII table. */
    void printAscii(std::ostream &os) const;

    /** Render as CSV (no title line). */
    void printCsv(std::ostream &os) const;

    /** ASCII rendering as a string. */
    std::string toAscii() const;

    /** CSV rendering as a string. */
    std::string toCsv() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace atlb

#endif // ANCHORTLB_STATS_TABLE_HH
