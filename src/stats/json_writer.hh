/**
 * @file
 * Minimal streaming JSON emitter for the bench reports.
 *
 * The perf benches write machine-readable BENCH_*.json files consumed
 * by CI greps and by humans diffing runs; this writer centralises the
 * comma/indent bookkeeping those files were assembling by hand. It is
 * an emitter only (no parsing, no DOM): keys and values stream straight
 * to the ostream in call order, two-space indented, so the output is
 * stable across runs for stable inputs.
 */

#ifndef ANCHORTLB_STATS_JSON_WRITER_HH
#define ANCHORTLB_STATS_JSON_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace atlb
{

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    /** Writes to @p os; emit exactly one top-level beginObject(). */
    explicit JsonWriter(std::ostream &os);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start a named member; follow with a value or begin*(). */
    JsonWriter &key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(int v);
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    void separate();
    void indent();

    std::ostream &os_;
    int depth_ = 0;
    bool first_in_scope_ = true; //!< no comma before the next element
    bool after_key_ = false;     //!< value attaches to a pending key
};

} // namespace atlb

#endif // ANCHORTLB_STATS_JSON_WRITER_HH
