#include "histogram.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace atlb
{

void
Histogram::add(std::uint64_t key, std::uint64_t count)
{
    if (count == 0)
        return;
    counts_[key] += count;
    samples_ += count;
    weighted_sum_ += key * count;
}

std::uint64_t
Histogram::count(std::uint64_t key) const
{
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

void
Histogram::clear()
{
    counts_.clear();
    samples_ = 0;
    weighted_sum_ = 0;
}

std::vector<std::pair<std::uint64_t, double>>
Histogram::weightedCdf() const
{
    std::vector<std::pair<std::uint64_t, double>> out;
    if (weighted_sum_ == 0)
        return out;
    out.reserve(counts_.size());
    std::uint64_t acc = 0;
    for (const auto &[key, cnt] : counts_) {
        acc += key * cnt;
        out.emplace_back(key,
                         static_cast<double>(acc) /
                             static_cast<double>(weighted_sum_));
    }
    return out;
}

std::vector<std::pair<std::uint64_t, double>>
Histogram::cdf() const
{
    std::vector<std::pair<std::uint64_t, double>> out;
    if (samples_ == 0)
        return out;
    out.reserve(counts_.size());
    std::uint64_t acc = 0;
    for (const auto &[key, cnt] : counts_) {
        acc += cnt;
        out.emplace_back(key, static_cast<double>(acc) /
                                  static_cast<double>(samples_));
    }
    return out;
}

std::uint64_t
Histogram::minKey() const
{
    return counts_.empty() ? 0 : counts_.begin()->first;
}

std::uint64_t
Histogram::maxKey() const
{
    return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::uint64_t
Histogram::weightedQuantile(double q) const
{
    if (counts_.empty())
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(weighted_sum_);
    std::uint64_t acc = 0;
    for (const auto &[key, cnt] : counts_) {
        acc += key * cnt;
        if (static_cast<double>(acc) >= target)
            return key;
    }
    return counts_.rbegin()->first;
}

Log2Histogram::Log2Histogram(unsigned num_buckets)
    : buckets_(num_buckets, 0)
{
    ATLB_ASSERT(num_buckets > 0, "need at least one bucket");
}

void
Log2Histogram::add(std::uint64_t value)
{
    unsigned idx = value == 0 ? 0 : floorLog2(value);
    if (idx >= buckets_.size())
        idx = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[idx];
    ++samples_;
    sum_ += value;
    if (value > max_)
        max_ = value;
}

std::uint64_t
Log2Histogram::bucket(unsigned i) const
{
    ATLB_ASSERT(i < buckets_.size(), "bucket index out of range");
    return buckets_[i];
}

std::uint64_t
Log2Histogram::bucketUpperBound(unsigned i) const
{
    ATLB_ASSERT(i < buckets_.size(), "bucket index out of range");
    if (i >= 63)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << (i + 1)) - 1;
}

std::uint64_t
Log2Histogram::quantile(double q) const
{
    if (samples_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile observation, 1-based, at least the first.
    std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(samples_) + 0.999999);
    if (target == 0)
        target = 1;
    if (target > samples_)
        target = samples_;
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= target)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

void
Log2Histogram::clear()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0;
    max_ = 0;
}

} // namespace atlb
