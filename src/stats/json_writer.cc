#include "json_writer.hh"

#include <ostream>

#include "common/logging.hh"

namespace atlb
{

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return; // value attaches directly after "key":
    }
    if (!first_in_scope_)
        os_ << ",";
    if (depth_ > 0) {
        os_ << "\n";
        indent();
    }
    first_in_scope_ = false;
}

void
JsonWriter::indent()
{
    for (int i = 0; i < depth_; ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    ++depth_;
    first_in_scope_ = true;
}

void
JsonWriter::endObject()
{
    ATLB_ASSERT(depth_ > 0 && !after_key_, "unbalanced endObject()");
    const bool empty = first_in_scope_;
    --depth_;
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "}";
    first_in_scope_ = false;
    if (depth_ == 0)
        os_ << "\n";
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    ++depth_;
    first_in_scope_ = true;
}

void
JsonWriter::endArray()
{
    ATLB_ASSERT(depth_ > 0 && !after_key_, "unbalanced endArray()");
    const bool empty = first_in_scope_;
    --depth_;
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "]";
    first_in_scope_ = false;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    ATLB_ASSERT(!after_key_, "key() twice without a value");
    separate();
    os_ << "\"" << name << "\": ";
    after_key_ = true;
    return *this;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    // Bench strings are identifiers (workload/scheme/scenario names);
    // escape the two characters that could break the document anyway.
    os_ << "\"";
    for (const char c : v) {
        if (c == '"' || c == '\\')
            os_ << '\\';
        os_ << c;
    }
    os_ << "\"";
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(int v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

} // namespace atlb
