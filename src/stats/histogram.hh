/**
 * @file
 * Histogram statistics used for chunk-size CDFs and latency distributions.
 *
 * Two flavours:
 *  - Histogram: arbitrary integer keys -> counts (sparse, exact). Used for
 *    the OS contiguity histogram where the key is a chunk size in pages.
 *  - Log2Histogram: power-of-two bucketed counts for compact summaries.
 */

#ifndef ANCHORTLB_STATS_HISTOGRAM_HH
#define ANCHORTLB_STATS_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

namespace atlb
{

/** Sparse exact histogram over uint64 keys. */
class Histogram
{
  public:
    /** Add @p count observations of @p key. */
    void add(std::uint64_t key, std::uint64_t count = 1);

    /** Total number of observations. */
    std::uint64_t samples() const { return samples_; }

    /** Sum of key * count over all entries (e.g. total pages). */
    std::uint64_t weightedSum() const { return weighted_sum_; }

    /** Number of distinct keys. */
    std::size_t distinct() const { return counts_.size(); }

    /** Count recorded for @p key (0 if absent). */
    std::uint64_t count(std::uint64_t key) const;

    /** True iff no observations have been added. */
    bool empty() const { return samples_ == 0; }

    /** Remove all observations. */
    void clear();

    /**
     * Cumulative distribution by *weight* (key x count), i.e. the
     * fraction of total pages residing in chunks of size <= key.
     * Returns (key, cumulative fraction) points in ascending key order.
     */
    std::vector<std::pair<std::uint64_t, double>> weightedCdf() const;

    /** Cumulative distribution by observation count. */
    std::vector<std::pair<std::uint64_t, double>> cdf() const;

    /** Smallest key with an observation; 0 when empty. */
    std::uint64_t minKey() const;

    /** Largest key with an observation; 0 when empty. */
    std::uint64_t maxKey() const;

    /** Key at or above which @p q of the weight lies (weighted quantile). */
    std::uint64_t weightedQuantile(double q) const;

    /** Iterate over (key, count) pairs in ascending key order. */
    const std::map<std::uint64_t, std::uint64_t> &entries() const
    {
        return counts_;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
    std::uint64_t weighted_sum_ = 0;
};

/**
 * Fixed power-of-two bucketed histogram (bucket i holds [2^i, 2^(i+1))).
 *
 * Beyond raw bucket counts it tracks the exact sum and maximum, and can
 * answer approximate quantiles (the containing bucket's upper bound,
 * clamped to the observed maximum) — enough for the latency summaries
 * the sweep service reports without storing every sample.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned num_buckets = 33);

    /** Record one observation of @p value (value 0 lands in bucket 0). */
    void add(std::uint64_t value);

    std::uint64_t samples() const { return samples_; }

    /** Exact sum of every recorded value. */
    std::uint64_t sum() const { return sum_; }

    /** Largest recorded value (0 when empty). */
    std::uint64_t maxValue() const { return max_; }

    /** Count in bucket @p i. */
    std::uint64_t bucket(unsigned i) const;

    /** Inclusive upper bound of bucket @p i (2^(i+1) - 1). */
    std::uint64_t bucketUpperBound(unsigned i) const;

    /**
     * Approximate @p q quantile (q in [0, 1]): the upper bound of the
     * bucket holding the ceil(q * samples)-th smallest observation,
     * clamped to maxValue(). 0 when empty. Within 2x of the exact
     * value by construction of the power-of-two buckets.
     */
    std::uint64_t quantile(double q) const;

    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    void clear();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace atlb

#endif // ANCHORTLB_STATS_HISTOGRAM_HH
