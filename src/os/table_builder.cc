#include "table_builder.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "os/memory_map.hh"
#include "os/region_partitioner.hh"

namespace atlb
{

namespace
{

/** Map [*vpn, limit) with 2MB leaves where possible, 4KB otherwise. */
void
mapUpTo(PageTable &table, const Chunk &c, Vpn &vpn, Vpn limit,
        bool thp_ok)
{
    if (thp_ok) {
        const Vpn huge_lo = std::min(vpn.alignUp(hugePages), limit);
        const Vpn huge_hi =
            std::max(limit.alignDown(hugePages), huge_lo);
        for (; vpn < huge_lo; ++vpn)
            table.map4K(vpn, c.translate(vpn));
        for (; vpn < huge_hi; vpn += hugePages)
            table.map2M(vpn, c.translate(vpn));
    }
    for (; vpn < limit; ++vpn)
        table.map4K(vpn, c.translate(vpn));
}

} // namespace

PageTable
buildPageTable(const MemoryMap &map, bool use_thp, bool use_1g)
{
    ATLB_ASSERT(map.finalized(), "building table from unfinalized map");
    PageTable table;
    for (const Chunk &c : map.chunks()) {
        Vpn vpn = c.vpn;
        const Vpn end = c.vpnEnd();
        // A chunk is promotable iff VA and PA agree modulo the block
        // size: then every aligned virtual block inside it has a
        // naturally aligned physical base.
        // VA and PA must agree modulo the block size (offsetIn equality
        // is the typed spelling of (ppn - vpn) % block == 0).
        const bool thp_ok =
            use_thp &&
            c.ppn.offsetIn(hugePages) == c.vpn.offsetIn(hugePages);
        const bool giant_ok =
            use_1g &&
            c.ppn.offsetIn(giantPages) == c.vpn.offsetIn(giantPages);
        if (giant_ok) {
            const Vpn giant_lo = std::min(vpn.alignUp(giantPages), end);
            const Vpn giant_hi =
                std::max(end.alignDown(giantPages), giant_lo);
            mapUpTo(table, c, vpn, giant_lo, thp_ok);
            for (; vpn < giant_hi; vpn += giantPages)
                table.map1G(vpn, c.translate(vpn));
        }
        mapUpTo(table, c, vpn, end, thp_ok);
    }
    return table;
}

PageTable
buildAnchorPageTable(const MemoryMap &map, AnchorDist distance)
{
    PageTable table = buildPageTable(map, true);
    table.sweepAnchors(map, distance);
    return table;
}

PageTable
buildRegionAnchorPageTable(const MemoryMap &map,
                           const RegionPartition &partition)
{
    PageTable table = buildPageTable(map, true);
    for (const AnchorRegion &region : partition.regions) {
        table.sweepAnchorsRange(map, region.distance, region.begin,
                                region.end);
    }
    return table;
}

} // namespace atlb
