/**
 * @file
 * Dynamic anchor-distance selection (paper Section 4, Algorithm 1).
 *
 * The OS periodically summarises a process's mapping as a contiguity
 * histogram (chunk size -> number of chunks) and picks the anchor
 * distance that minimises an estimate of the TLB capacity needed to
 * cover the whole footprint: the number of hypothetical TLB entries
 * (anchor + 2MB + 4KB) required, where each entry type covers
 * distance/512/1 pages respectively — i.e. pages of each type weighted
 * by the inverse of that type's coverage, as the paper describes.
 *
 * EntryCount is the default cost model; it reproduces the distances of
 * paper Table 6 (4 for the low-contiguity mapping, 16-32 for medium,
 * very large for the skewed demand/eager mappings). CoverageWeighted
 * additionally divides each entry-count term by its coverage — the most
 * literal reading of the pseudocode's lines 17-19 — and is kept for the
 * selection-policy ablation bench; it systematically favours smaller
 * distances and underperforms (see bench_ablation_selection).
 */

#ifndef ANCHORTLB_OS_DISTANCE_SELECTOR_HH
#define ANCHORTLB_OS_DISTANCE_SELECTOR_HH

#include <cstdint>
#include <vector>

#include "stats/histogram.hh"

namespace atlb
{

/** Outcome of one run of the selection algorithm. */
struct DistanceSelection
{
    /** Chosen anchor distance in pages (power of two in [2, 2^16]). */
    std::uint64_t distance = 2;
    /** Estimated capacity cost of the chosen distance. */
    double cost = 0.0;
    /** (distance, cost) for every candidate, ascending by distance. */
    std::vector<std::pair<std::uint64_t, double>> candidates;
};

/** Candidate anchor distances: 2, 4, 8, ..., 2^16 (paper Algorithm 1). */
std::vector<std::uint64_t> candidateDistances();

/** How to turn per-type entry counts into a scalar cost. */
enum class DistanceCostModel
{
    EntryCount,       //!< total hypothetical TLB entries (default)
    CoverageWeighted, //!< entries additionally down-weighted by coverage
    /**
     * Models what the hardware actually covers: the final partial
     * anchor covers a chunk's tail, while the misaligned *prefix*
     * before the first anchor boundary (expected (d-1)/2 pages for a
     * random chunk placement) goes uncovered. More accurate than the
     * paper's heuristic under capacity pressure; used by the
     * multi-region partitioner.
     */
    CoverageAware,
};

/**
 * Run Algorithm 1 on @p contiguity (chunk size in pages -> chunk count).
 *
 * For each candidate distance d and each (cont, freq) histogram entry:
 *   anchors   = floor(cont / d) * freq          (anchor TLB entries)
 *   remainder = cont mod d                      (pages not anchor-covered)
 *   large     = floor(remainder / 512) * freq   (2MB entries)
 *   pages     = (remainder mod 512) * freq      (4KB entries)
 *   EntryCount:       cost(d) += anchors + large + pages
 *   CoverageWeighted: cost(d) += anchors/d + large/512 + pages
 *
 * Ties resolve to the smaller distance (cheaper distance changes).
 * An empty histogram selects the smallest candidate.
 */
DistanceSelection
selectAnchorDistance(const Histogram &contiguity,
                     DistanceCostModel model = DistanceCostModel::EntryCount);

/**
 * Epoch-driven distance controller with hysteresis (paper Section 4.1,
 * "Distance Stability").
 *
 * The controller re-runs selection once per epoch but only commits a
 * change when the newly selected distance's estimated cost improves on
 * the current distance's cost by at least @c improvement_threshold
 * (relative), matching the paper's observation that the distance should
 * change rarely once allocation stabilises.
 */
class DistanceController
{
  public:
    /**
     * @param initial_distance  distance a fresh process starts with
     * @param improvement_threshold minimum relative cost improvement
     *        required to commit a distance change (e.g. 0.1 = 10%).
     */
    explicit DistanceController(std::uint64_t initial_distance = 8,
                                double improvement_threshold = 0.1);

    /**
     * Run one epoch: evaluate @p contiguity, possibly change distance.
     * @return true iff the distance changed this epoch.
     */
    bool epoch(const Histogram &contiguity);

    std::uint64_t distance() const { return distance_; }

    /** Number of committed distance changes since construction. */
    std::uint64_t changes() const { return changes_; }

    /** Number of epochs evaluated. */
    std::uint64_t epochs() const { return epochs_; }

  private:
    std::uint64_t distance_;
    double threshold_;
    std::uint64_t changes_ = 0;
    std::uint64_t epochs_ = 0;
    bool initialized_ = false;
};

} // namespace atlb

#endif // ANCHORTLB_OS_DISTANCE_SELECTOR_HH
