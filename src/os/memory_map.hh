/**
 * @file
 * Virtual-to-physical mapping as a set of contiguity chunks.
 *
 * Every translation scheme in the paper consumes the same underlying
 * object: the process's VA->PA mapping, viewed as maximal runs ("chunks")
 * that are contiguous in both virtual and physical address space. THP
 * promotes 2MB-aligned pieces of chunks, RMM's ranges are chunks, HW
 * clustering finds <=8-page pieces of chunks, and the anchor scheme's
 * contiguity field is the distance from an anchor to the end of its chunk.
 *
 * MemoryMap stores the chunks sorted by VPN and answers point lookups by
 * binary search. It is immutable after finalize(), which is when adjacent
 * compatible chunks are merged into maximal runs.
 */

#ifndef ANCHORTLB_OS_MEMORY_MAP_HH
#define ANCHORTLB_OS_MEMORY_MAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/histogram.hh"

namespace atlb
{

/** A maximal VA/PA-contiguous run of 4KB pages. */
struct Chunk
{
    Vpn vpn;         //!< first virtual page of the run
    Ppn ppn;         //!< first physical page of the run
    PageCount pages; //!< run length in 4KB pages

    /** One past the last virtual page. */
    Vpn vpnEnd() const { return vpn + pages; }

    /** True iff @p v lies inside this chunk. */
    bool contains(Vpn v) const { return v >= vpn && v < vpnEnd(); }

    /** Translate a VPN inside this chunk. */
    Ppn translate(Vpn v) const { return ppn + (v - vpn); }
};

/** Immutable (after finalize) set of mapping chunks for one process. */
class MemoryMap
{
  public:
    /**
     * Record a mapping of @p pages pages starting at (vpn, ppn).
     * Ranges must not overlap previously added ones; they may be added
     * in any order. Must be called before finalize().
     */
    void add(Vpn vpn, Ppn ppn, PageCount pages);

    /**
     * Sort and merge adjacent compatible chunks into maximal runs.
     * Must be called exactly once, after which the map is queryable.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    /** Chunk containing @p vpn, or nullptr if unmapped. */
    const Chunk *chunkContaining(Vpn vpn) const;

    /** Translate a VPN; invalidPpn when unmapped. */
    Ppn translate(Vpn vpn) const;

    /** True iff @p vpn is mapped. */
    bool mapped(Vpn vpn) const { return chunkContaining(vpn) != nullptr; }

    /**
     * Number of pages mapped contiguously starting at @p vpn, i.e. the
     * remaining length of the chunk from @p vpn (0 if unmapped). This is
     * exactly the value the OS writes into an anchor entry (before
     * clamping to the contiguity-field width).
     */
    PageCount contiguityFrom(Vpn vpn) const;

    /**
     * True iff the 2MB-aligned virtual block containing @p vpn can be a
     * transparent huge page: fully mapped by one chunk with a 512-page-
     * aligned physical base. This models ideal THP promotion.
     */
    bool hugeEligible(Vpn vpn) const;

    /** Same test for the 1GB-aligned block containing @p vpn. */
    bool giantEligible(Vpn vpn) const;

    /** All chunks, ascending by VPN. */
    const std::vector<Chunk> &chunks() const { return chunks_; }

    /** Total mapped pages. */
    PageCount mappedPages() const { return mapped_pages_; }

    /**
     * Histogram of chunk sizes: key = run length in pages, count = number
     * of runs. This is the "contiguity histogram" the OS feeds to the
     * dynamic anchor-distance selection algorithm (paper Section 4.1).
     */
    Histogram contiguityHistogram() const;

  private:
    std::vector<Chunk> chunks_;
    PageCount mapped_pages_{};
    bool finalized_ = false;
};

} // namespace atlb

#endif // ANCHORTLB_OS_MEMORY_MAP_HH
