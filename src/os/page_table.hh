/**
 * @file
 * x86-64-style 4-level radix page table with anchor entries.
 *
 * The table stores 4KB leaf PTEs at the PT level and 2MB leaf entries
 * (PS bit) at the PD level, mirroring x86-64. Anchor support follows the
 * paper's Figure 4: the entry whose VPN is aligned to the process's
 * anchor distance additionally carries a contiguity count in spare bits.
 *
 * For a 4KB anchor PTE, values that do not fit in one entry's ignored
 * bits are distributed across the *next* PTE of the same 64B cache line
 * (paper Section 3.1): the low byte of (contiguity - 1) lives in the
 * anchor entry's bits [52, 60) and, for distances > 256 pages, the high
 * byte lives in the following entry's bits [52, 60). Distances > 256 are
 * always >= 512, so the anchor is the first entry of its cache line and
 * the neighbour is guaranteed to exist in the same line; reading it
 * costs no extra memory access, exactly as argued in the paper.
 *
 * An anchor VPN may itself be mapped by a 2MB page (possible only for
 * distances >= 512, which make the anchor VPN 2MB-aligned). The anchor
 * then lives in the PD-level leaf entry, whose physical-address field
 * only starts at bit 21: bits [13, 21) plus ignored bits [52, 60) give
 * the full 16-bit contiguity in a single entry. This is the natural
 * extension of the paper's scheme to THP-mapped regions and lets one
 * anchor cover runs spanning many 2MB pages.
 *
 * The contiguity value stored is min(run length from the anchor, anchor
 * distance, 2^16): contiguity beyond the anchor distance is useless for
 * translation because any VPN farther than the distance from the anchor
 * has a closer anchor of its own.
 */

#ifndef ANCHORTLB_OS_PAGE_TABLE_HH
#define ANCHORTLB_OS_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace atlb
{

class MemoryMap;

/** 64-bit PTE bit-field helpers (subset of x86-64 layout). */
namespace pte
{

constexpr std::uint64_t presentBit = 1ULL << 0;
constexpr std::uint64_t writeBit = 1ULL << 1;
/** Page-size bit: set on a PD entry that is a 2MB leaf. */
constexpr std::uint64_t psBit = 1ULL << 7;
/** PFN field occupies bits [12, 52). */
constexpr std::uint64_t pfnMask = ((1ULL << 52) - 1) & ~(pageBytes - 1);
/** Ignored bits [52, 60) hold one byte of anchor contiguity. */
constexpr unsigned contigShift = 52;
constexpr std::uint64_t contigMask = 0xffULL << contigShift;

constexpr bool present(std::uint64_t e) { return e & presentBit; }
constexpr bool huge(std::uint64_t e) { return e & psBit; }

/** PFN of a 4KB leaf. */
constexpr Ppn pfn(std::uint64_t e)
{
    // Raw PTE-word bit layout. lint-allow: page-shift
    return Ppn{(e & pfnMask) >> pageShift};
}

constexpr std::uint64_t
make(Ppn ppn, bool is_huge = false)
{
    // Raw PTE-word bit layout. lint-allow: page-shift
    return (ppn.raw() << pageShift) | presentBit | writeBit |
           (is_huge ? psBit : 0);
}

constexpr std::uint8_t contigByte(std::uint64_t e)
{
    return static_cast<std::uint8_t>((e & contigMask) >> contigShift);
}

constexpr std::uint64_t
withContigByte(std::uint64_t e, std::uint8_t b)
{
    return (e & ~contigMask) |
           (static_cast<std::uint64_t>(b) << contigShift);
}

/**
 * 2MB leaf entries keep their low contiguity byte in bits [13, 21),
 * which sit below the 2MB frame field and above the PAT bit.
 */
constexpr unsigned hugeContigShift = 13;
constexpr std::uint64_t hugeContigMask = 0xffULL << hugeContigShift;

constexpr std::uint8_t hugeContigByte(std::uint64_t e)
{
    return static_cast<std::uint8_t>((e & hugeContigMask) >>
                                     hugeContigShift);
}

constexpr std::uint64_t
withHugeContigByte(std::uint64_t e, std::uint8_t b)
{
    return (e & ~hugeContigMask) |
           (static_cast<std::uint64_t>(b) << hugeContigShift);
}

/** PFN of a 2MB leaf (its frame bits start above the contiguity byte). */
constexpr Ppn
hugePfn(std::uint64_t e)
{
    // Raw PTE-word bit layout. lint-allow: page-shift
    return Ppn{(e & pfnMask & ~hugeContigMask) >> pageShift};
}

} // namespace pte

/** Result of walking the page table for one VPN. */
struct WalkResult
{
    bool present = false;
    Ppn ppn = invalidPpn;      //!< PFN of the *4KB page* containing the VPN
    PageSize size = PageSize::Base4K;
    /** Number of page-table levels touched (for cost accounting). */
    unsigned levels = 0;
};

/**
 * Four-level radix page table for one process.
 *
 * Not thread-safe; each simulated process owns one instance.
 */
class PageTable
{
  public:
    /** Entries per node (512 for x86-64). */
    static constexpr unsigned fanout = 512;
    /** Maximum anchor contiguity representable (16-bit field). */
    static constexpr std::uint64_t maxContiguity = 1ULL << 16;

    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;
    PageTable(PageTable &&) noexcept;
    PageTable &operator=(PageTable &&) noexcept;

    /** Map one 4KB page. Must not already be mapped. */
    void map4K(Vpn vpn, Ppn ppn);

    /**
     * Map one 2MB page; @p vpn and @p ppn must be 512-page aligned and
     * the region must not intersect existing mappings.
     */
    void map2M(Vpn vpn, Ppn ppn);

    /**
     * Map one 1GB page at the PDPT level; @p vpn and @p ppn must be
     * 2^18-page aligned.
     */
    void map1G(Vpn vpn, Ppn ppn);

    /**
     * Change the frame of an existing 4KB mapping (page migration).
     * Anchor contiguity bytes stored in the entry are preserved; the
     * OS is responsible for updating the affected anchor via
     * setAnchorContiguity and shooting down stale TLB entries.
     */
    void remap4K(Vpn vpn, Ppn ppn);

    /** Remove a 4KB mapping; the PTE's ignored bits are cleared too. */
    void unmap4K(Vpn vpn);

    /** Translate @p vpn. */
    WalkResult walk(Vpn vpn) const;

    /**
     * Prefetch hint for a walk of @p vpn a batch kernel expects to
     * issue shortly (mmu/mmu.hh, prefetchTranslate). Semantics-free.
     *
     * The interior levels are a handful of nodes that stay cache-hot
     * under any footprint (one PML4, and one PDPT/PD node per 512GB /
     * 1GB of address space), so chasing them here costs a few hot
     * loads — but they yield the *address* of the leaf PTE, which
     * lives in one line of a leaf-node population proportional to the
     * mapped footprint. That line is the walk's cache miss, and the
     * one this prefetches.
     */
    void prefetchWalk(Vpn vpn) const;

    /**
     * Set the anchor contiguity stored at the leaf entry for @p avpn.
     * @param avpn      anchor VPN (aligned to the anchor distance)
     * @param contig    pages contiguous from the anchor, in [1, 2^16];
     *                  0 clears the anchor.
     * @param distance  current anchor distance (decides the encoding).
     *
     * The anchor lives in the 4KB PTE for @p avpn, or — when @p avpn is
     * the 2MB-aligned start of a huge mapping — in the PD leaf entry.
     * An anchor VPN that falls strictly inside a huge page (only
     * possible for distances < 512) cannot hold an anchor; such calls
     * are rejected for non-zero @p contig.
     */
    void setAnchorContiguity(Vpn avpn, std::uint64_t contig,
                             AnchorDist distance);

    /**
     * Read back the anchor contiguity at @p avpn (0 if the entry is not
     * present, is huge-mapped, or carries no anchor).
     */
    std::uint64_t anchorContiguity(Vpn avpn, AnchorDist distance) const;

    /**
     * Recompute every anchor entry for @p distance from the mapping.
     * Clears stale contiguity bytes first (the previous distance's
     * anchors), then writes min(run, distance, 2^16) at each aligned
     * anchor whose PTE is a present 4KB entry.
     *
     * @return number of page-table entries visited (the paper's
     *         distance-change cost is proportional to this).
     */
    std::uint64_t sweepAnchors(const MemoryMap &map, AnchorDist distance);

    /**
     * Sweep anchors for @p distance only within [begin, end) — used by
     * the multi-region extension, where each VA region carries its own
     * distance. Performs no clearing pass: intended for freshly built
     * tables (or after sweepAnchorsRange over the same bounds).
     *
     * @return number of page-table entries visited.
     */
    std::uint64_t sweepAnchorsRange(const MemoryMap &map,
                                    AnchorDist distance, Vpn begin,
                                    Vpn end);

    /** Count of present 4KB leaf entries. */
    std::uint64_t mapped4K() const { return mapped_4k_; }

    /** Count of 2MB leaf entries. */
    std::uint64_t mapped2M() const { return mapped_2m_; }

    /** Count of 1GB leaf entries. */
    std::uint64_t mapped1G() const { return mapped_1g_; }

    /** Total interior + leaf nodes allocated (memory footprint proxy). */
    std::uint64_t nodeCount() const { return node_count_; }

  private:
    struct Node;
    std::unique_ptr<Node> root_;
    std::uint64_t mapped_4k_ = 0;
    std::uint64_t mapped_2m_ = 0;
    std::uint64_t mapped_1g_ = 0;
    std::uint64_t node_count_ = 0;
    /** Anchor distance of the most recent sweep (none() = never). */
    AnchorDist swept_distance_{};

    Node *ensurePath(Vpn vpn, unsigned leaf_level);
    const std::uint64_t *findLeaf(Vpn vpn, unsigned leaf_level) const;
    std::uint64_t *findLeaf(Vpn vpn, unsigned leaf_level);

    /**
     * Locate the leaf entry that can hold an anchor for @p avpn: the PD
     * leaf when @p avpn starts a huge mapping, else the 4KB PTE slot.
     * Returns nullptr when @p avpn lies strictly inside a huge page or
     * no PT node exists.
     */
    std::uint64_t *findAnchorSlot(Vpn avpn, bool &is_huge);
    const std::uint64_t *findAnchorSlot(Vpn avpn, bool &is_huge) const;
};

} // namespace atlb

#endif // ANCHORTLB_OS_PAGE_TABLE_HH
