/**
 * @file
 * Memory-mapping scenario engine (paper Section 5.1, "Methodology").
 *
 * The paper evaluates six mappings per workload: two captured from real
 * Linux machines (demand paging and eager paging, both with THP enabled)
 * and four synthetic ones with uniform chunk-size distributions
 * (Table 4). We regenerate all six:
 *
 *  - Synthetic scenarios construct chunks directly with sizes drawn
 *    uniformly from the Table 4 ranges, placing each chunk at a fresh
 *    physical location (with a guard gap so chunks never merge) and
 *    preserving 2MB alignment for chunks of >= 512 pages so THP remains
 *    possible exactly when the paper intends it to be.
 *
 *  - Demand and eager scenarios run a faithful allocation process over a
 *    buddy allocator whose free space was pre-fragmented to a
 *    per-workload profile (standing in for the co-runner pressure the
 *    paper applied on real machines): demand faults pages in first-touch
 *    order, trying a 2MB THP allocation at aligned boundaries first,
 *    like Linux; eager allocates the whole region up-front in maximal
 *    VA-aligned buddy blocks.
 */

#ifndef ANCHORTLB_OS_SCENARIO_HH
#define ANCHORTLB_OS_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "os/memory_map.hh"

namespace atlb
{

/** The six mapping scenarios of the paper's evaluation. */
enum class ScenarioKind
{
    Demand,     //!< real-system-style demand paging (THP on)
    Eager,      //!< real-system-style eager paging (THP on)
    LowContig,  //!< synthetic, chunks uniform in [1, 16] pages
    MedContig,  //!< synthetic, chunks uniform in [1, 512] pages
    HighContig, //!< synthetic, chunks uniform in [512, 65536] pages
    MaxContig,  //!< synthetic, one maximal chunk
};

/** All scenarios in paper order (Figure 9's x-axis). */
constexpr ScenarioKind allScenarios[] = {
    ScenarioKind::Demand,     ScenarioKind::Eager,
    ScenarioKind::LowContig,  ScenarioKind::MedContig,
    ScenarioKind::HighContig, ScenarioKind::MaxContig,
};

/** Short display name ("demand", "eager", "low", ...). */
const char *scenarioName(ScenarioKind kind);

/** Parse a scenario name; fatal on unknown names. */
ScenarioKind scenarioFromName(const std::string &name);

/** Inputs to scenario construction. */
struct ScenarioParams
{
    /** Footprint to map, in 4KB pages. */
    std::uint64_t footprint_pages = 0;
    /** First VPN of the mapped region (2MB-aligned by default). */
    Vpn va_base{0x7f0000000ULL}; // VA 0x7f0000000000
    /** RNG seed; equal seeds reproduce the mapping exactly. */
    std::uint64_t seed = 1;
    /**
     * Demand/Eager only: mean free-run length (pages) of the
     * pre-fragmented physical pool. 0 = pristine pool. This is the knob
     * standing in for real-machine co-runner pressure.
     */
    std::uint64_t demand_run_pages = 0;
    std::uint64_t eager_run_pages = 0;
    /**
     * Multi-scale tail for demand/eager pools: this page-weighted
     * fraction of free space is carved into runs around
     * @c map_tail_run_pages instead of the primary mean (Fig. 1's long
     * tails).
     */
    std::uint64_t map_tail_run_pages = 0;
    double map_tail_fraction = 0.0;
    /**
     * Demand only: probability that a background job steals frames
     * between two faults, breaking physical adjacency.
     */
    double demand_churn = 0.0;
    /** Physical pool size in pages; 0 = 2.5x footprint. */
    std::uint64_t pool_pages = 0;
};

/**
 * Build the VA->PA mapping for one (scenario, parameters) pair.
 * The returned map is finalized and ready for page-table construction.
 */
MemoryMap buildScenario(ScenarioKind kind, const ScenarioParams &params);

/**
 * Build a demand-paging mapping over a pool fragmented with an explicit
 * mean free-run length. Exposed separately for the Figure 1 chunk-CDF
 * experiment, which sweeps the pressure level.
 */
MemoryMap buildDemandWithPressure(const ScenarioParams &params,
                                  std::uint64_t mean_free_run_pages);

/** One VA segment of a mixed-contiguity mapping. */
struct ScenarioSegment
{
    /** Segment length in pages. */
    std::uint64_t pages = 0;
    /** Chunk sizes drawn uniformly from [chunk_lo, chunk_hi] pages. */
    std::uint64_t chunk_lo = 1;
    std::uint64_t chunk_hi = 1;
};

/**
 * Build a mapping whose VA space is a sequence of segments with
 * *different* contiguity regimes — the situation motivating the paper's
 * Section 4.2 multi-region extension (a single process-wide anchor
 * distance cannot fit all segments at once).
 */
MemoryMap buildSegmentedScenario(const ScenarioParams &params,
                                 const std::vector<ScenarioSegment> &segs);

} // namespace atlb

#endif // ANCHORTLB_OS_SCENARIO_HH
