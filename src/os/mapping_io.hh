/**
 * @file
 * Import/export of VA->PA mappings as text.
 *
 * The paper captured its real mappings from Linux's pagemap interface
 * (Section 5.1). This module defines the equivalent exchange format so
 * users can run the simulator against mappings harvested from real
 * machines: one chunk per line,
 *
 *     <vpn> <ppn> <pages>
 *
 * in decimal or 0x-hex, '#' comments and blank lines ignored. A small
 * converter from `/proc/<pid>/pagemap` to this format is a few lines of
 * Python (documented in the README); the simulator side stays
 * dependency-free.
 */

#ifndef ANCHORTLB_OS_MAPPING_IO_HH
#define ANCHORTLB_OS_MAPPING_IO_HH

#include <iosfwd>
#include <string>

#include "os/memory_map.hh"

namespace atlb
{

/** Parse a mapping from a stream; fatal on malformed input. */
MemoryMap readMappingText(std::istream &in, const std::string &origin);

/** Parse a mapping file; fatal on missing file or malformed input. */
MemoryMap loadMapping(const std::string &path);

/** Write @p map in the text format (chunks ascending by VPN). */
void writeMappingText(std::ostream &out, const MemoryMap &map);

/** Write @p map to @p path; fatal on I/O failure. */
void saveMapping(const std::string &path, const MemoryMap &map);

} // namespace atlb

#endif // ANCHORTLB_OS_MAPPING_IO_HH
