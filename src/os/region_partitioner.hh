/**
 * @file
 * VA-region partitioning for the multi-region anchor TLB — the paper's
 * Section 4.2 extension, implemented.
 *
 * A single process-wide anchor distance cannot fit an address space
 * whose semantic regions have different contiguity (code vs heap vs a
 * big mapped file). The extension partitions the VA space into a small
 * number of regions, each with its own anchor distance, held by an
 * additional region table in hardware (searched in parallel with the
 * TLB lookup, like RMM's range TLB, so the region count stays small).
 *
 * The partitioner segments the mapping at big shifts in chunk scale,
 * merges segments down to the hardware budget, and runs Algorithm 1 on
 * each segment's own contiguity histogram.
 */

#ifndef ANCHORTLB_OS_REGION_PARTITIONER_HH
#define ANCHORTLB_OS_REGION_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "os/distance_selector.hh"

namespace atlb
{

class MemoryMap;

/** One VA region with its own anchor distance. */
struct AnchorRegion
{
    Vpn begin{};   //!< first VPN of the region
    Vpn end{};     //!< one past the last VPN
    /** Anchor distance within the region. */
    AnchorDist distance = AnchorDist::fromPages(2);

    bool contains(Vpn vpn) const { return vpn >= begin && vpn < end; }
    PageCount pages() const { return end - begin; }
};

/** Result of partitioning one process's mapping. */
struct RegionPartition
{
    /** Regions sorted by VPN, disjoint, covering all mapped chunks. */
    std::vector<AnchorRegion> regions;
    /** Process-wide fallback distance (Algorithm 1 on the full map). */
    AnchorDist default_distance = AnchorDist::fromPages(2);
};

/** Tuning knobs for the partitioner. */
struct RegionPartitionConfig
{
    /** Hardware region-table capacity. */
    unsigned max_regions = 8;
    /** Don't open a new region for less than this many pages. */
    std::uint64_t min_region_pages = 4096;
    /**
     * Log2 chunk-scale shift that justifies a region boundary
     * (e.g. 3 = an 8x change in typical chunk size).
     */
    unsigned scale_shift_log2 = 3;
    /**
     * Cost model for the per-region selection. CoverageAware by
     * default: the region extension exists to squeeze capacity out of
     * every regime, so it models prefix/tail coverage accurately.
     */
    DistanceCostModel cost_model = DistanceCostModel::CoverageAware;
};

/**
 * Partition @p map into anchor regions.
 *
 * Guarantees: regions are sorted, disjoint, within [first, last] mapped
 * VPNs, at most config.max_regions of them, and each region's distance
 * is a valid Algorithm 1 candidate.
 */
RegionPartition
partitionAnchorRegions(const MemoryMap &map,
                       const RegionPartitionConfig &config = {});

} // namespace atlb

#endif // ANCHORTLB_OS_REGION_PARTITIONER_HH
