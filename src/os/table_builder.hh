/**
 * @file
 * Page-table construction policies, one per translation scheme.
 *
 * All schemes translate the same MemoryMap; they differ in how the OS
 * lays it into the page table:
 *
 *  - Base / plain cluster: every page is a 4KB PTE (no THP).
 *  - THP / cluster-2MB / RMM: 2MB-eligible blocks become PD-level huge
 *    leaves (ideal transparent-huge-page promotion), the rest 4KB.
 *  - Anchor: THP layout plus an anchor sweep at the process's anchor
 *    distance (paper Section 3.1).
 */

#ifndef ANCHORTLB_OS_TABLE_BUILDER_HH
#define ANCHORTLB_OS_TABLE_BUILDER_HH

#include <cstdint>

#include "os/page_table.hh"

namespace atlb
{

class MemoryMap;

/**
 * Build a page table for @p map.
 * @param use_thp promote every huge-eligible 2MB block to a PD leaf.
 * @param use_1g  additionally promote 1GB-eligible blocks to PDPT
 *                leaves (off in the paper's Table 3 configuration; used
 *                by the 1GB-page ablation).
 */
PageTable buildPageTable(const MemoryMap &map, bool use_thp,
                         bool use_1g = false);

/**
 * Build the anchor scheme's page table: THP layout plus anchors swept
 * at @p distance (power of two in [2, 2^16]).
 */
PageTable buildAnchorPageTable(const MemoryMap &map, AnchorDist distance);

struct RegionPartition;

/**
 * Build the multi-region anchor page table (paper Section 4.2): THP
 * layout plus per-region anchor sweeps at each region's own distance.
 */
PageTable buildRegionAnchorPageTable(const MemoryMap &map,
                                     const RegionPartition &partition);

} // namespace atlb

#endif // ANCHORTLB_OS_TABLE_BUILDER_HH
