#include "mapping_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace atlb
{

MemoryMap
readMappingText(std::istream &in, const std::string &origin)
{
    MemoryMap map;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string vpn_s, ppn_s, pages_s;
        if (!(fields >> vpn_s))
            continue; // blank or comment-only line
        if (!(fields >> ppn_s >> pages_s)) {
            ATLB_FATAL("{}:{}: expected '<vpn> <ppn> <pages>'", origin,
                       lineno);
        }
        std::string extra;
        if (fields >> extra)
            ATLB_FATAL("{}:{}: trailing field '{}'", origin, lineno,
                       extra);
        const auto parse = [&](const std::string &s) -> std::uint64_t {
            std::size_t pos = 0;
            std::uint64_t v = 0;
            try {
                v = std::stoull(s, &pos, 0); // decimal or 0x-hex
            } catch (const std::exception &) {
                pos = 0;
            }
            if (pos != s.size())
                ATLB_FATAL("{}:{}: bad number '{}'", origin, lineno, s);
            return v;
        };
        const std::uint64_t vpn = parse(vpn_s);
        const std::uint64_t ppn = parse(ppn_s);
        const std::uint64_t pages = parse(pages_s);
        if (pages == 0)
            ATLB_FATAL("{}:{}: zero-length chunk", origin, lineno);
        map.add(Vpn{vpn}, Ppn{ppn}, PageCount{pages});
    }
    map.finalize();
    return map;
}

MemoryMap
loadMapping(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ATLB_FATAL("cannot open mapping file '{}'", path);
    return readMappingText(in, path);
}

void
writeMappingText(std::ostream &out, const MemoryMap &map)
{
    out << "# anchortlb mapping: <vpn> <ppn> <pages> per chunk\n";
    for (const Chunk &c : map.chunks())
        out << c.vpn << ' ' << c.ppn << ' ' << c.pages << '\n';
}

void
saveMapping(const std::string &path, const MemoryMap &map)
{
    std::ofstream out(path);
    if (!out)
        ATLB_FATAL("cannot open mapping file '{}' for writing", path);
    writeMappingText(out, map);
    out.flush();
    if (!out)
        ATLB_FATAL("error writing mapping file '{}'", path);
}

} // namespace atlb
