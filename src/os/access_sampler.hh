/**
 * @file
 * Access-frequency sampling and capacity-aware distance selection —
 * an extension closing the gap the paper admits in Section 5.2.1: the
 * dynamic algorithm "finds the distance based on the allocation
 * snapshot, without knowing access frequency", so it can miss the
 * access-weighted optimum (their cactusADM example).
 *
 * The OS can cheaply sample translated addresses (e.g. every N-th TLB
 * miss during a profiling epoch). AccessSampler attributes samples to
 * mapping chunks; selectAnchorDistanceCapacityAware then picks the
 * distance minimising a *predicted miss fraction* instead of a raw
 * entry count: it knows the real TLB capacity, charges each candidate
 * distance for the uncovered chunk prefixes, and discounts coverage
 * when the entries needed to hold the sampled hot set oversubscribe
 * the TLB.
 */

#ifndef ANCHORTLB_OS_ACCESS_SAMPLER_HH
#define ANCHORTLB_OS_ACCESS_SAMPLER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "os/distance_selector.hh"

namespace atlb
{

class MemoryMap;

/** Per-chunk access weight: (chunk length in pages, sampled accesses). */
struct ChunkAccess
{
    std::uint64_t pages = 0;
    std::uint64_t samples = 0;
};

/** Attributes sampled VPNs to the chunks of one mapping. */
class AccessSampler
{
  public:
    explicit AccessSampler(const MemoryMap &map);

    /** Record one sampled access; unmapped VPNs are ignored. */
    void sample(Vpn vpn);

    std::uint64_t totalSamples() const { return total_; }

    /** Chunks that received at least one sample. */
    std::vector<ChunkAccess> chunkAccesses() const;

    void reset();

  private:
    const MemoryMap &map_;
    /** chunk index (into map.chunks()) -> sample count */
    std::unordered_map<std::size_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Result of the capacity-aware selection. */
struct CapacitySelection
{
    std::uint64_t distance = 2;
    /** Predicted miss fraction of the sampled accesses. */
    double predicted_miss = 1.0;
    std::vector<std::pair<std::uint64_t, double>> candidates;
};

/**
 * Pick the distance minimising the predicted miss fraction of the
 * sampled access stream on a TLB of @p capacity_entries:
 *
 *   miss(d) = uncovered(d) + covered(d) * max(0, 1 - capacity/entries(d))
 *
 * where, per sampled chunk, the expected uncovered prefix is
 * min((d-1)/2, pages) (served by 2MB entries when the chunk can hold
 * them), entries(d) counts the anchor + 2MB entries needed to keep the
 * chunk resident, and everything is weighted by the chunk's sample
 * share.
 */
CapacitySelection
selectAnchorDistanceCapacityAware(const std::vector<ChunkAccess> &chunks,
                                  std::uint64_t capacity_entries);

} // namespace atlb

#endif // ANCHORTLB_OS_ACCESS_SAMPLER_HH
